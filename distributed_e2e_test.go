package uots_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// shardProc is one running uotsshard process plus the address it
// actually bound (parsed from its stdout, so -addr :0 works).
type shardProc struct {
	cmd  *exec.Cmd
	addr string
}

// startShard launches uotsshard serving partition idx of n and waits
// for its "listening on" line.
func startShard(t *testing.T, bin, data string, idx, n int) *shardProc {
	t.Helper()
	cmd := exec.Command(bin, "-data", data, "-addr", "127.0.0.1:0",
		"-shard", fmt.Sprint(idx), "-shards", fmt.Sprint(n), "-drain", "5s")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("uotsshard stdout pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("uotsshard start: %v", err)
	}
	p := &shardProc{cmd: cmd}
	t.Cleanup(func() {
		if p.cmd.ProcessState == nil {
			p.cmd.Process.Kill()
			p.cmd.Wait()
		}
	})
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if a, ok := strings.CutPrefix(sc.Text(), "uotsshard: listening on "); ok {
				addrc <- a
				break
			}
		}
		close(addrc)
	}()
	select {
	case a, ok := <-addrc:
		if !ok || a == "" {
			t.Fatalf("uotsshard %d/%d exited before announcing its address", idx, n)
		}
		p.addr = a
	case <-time.After(30 * time.Second):
		t.Fatalf("uotsshard %d/%d never announced its address", idx, n)
	}
	return p
}

// searchVariants are the five query shapes the distributed path must
// serve; every body targets the same dataset region so each variant has
// candidates to rank.
var searchVariants = []struct {
	name string
	body string
}{
	{"default", `{"points":[[1.0,1.0],[1.5,1.2]],"keywords":"t0_kw0 t0_kw1","k":5}`},
	{"threshold", `{"points":[[1.0,1.0],[1.5,1.2]],"keywords":"t0_kw0 t0_kw1","k":5,"theta":0.35}`},
	{"windowed", `{"points":[[1.0,1.0],[1.5,1.2]],"keywords":"t0_kw0 t0_kw1","k":5,"window":"06:00-18:00"}`},
	{"orderaware", `{"points":[[1.0,1.0],[1.5,1.2]],"keywords":"t0_kw0 t0_kw1","k":5,"orderAware":true}`},
	{"diversified", `{"points":[[1.0,1.0],[1.5,1.2]],"keywords":"t0_kw0 t0_kw1","k":5,"diversifyMu":0.4}`},
}

type searchResp struct {
	Results []struct {
		Trajectory int32   `json:"trajectory"`
		Score      float64 `json:"score"`
	} `json:"results"`
}

func postSearch(t *testing.T, base, body string) searchResp {
	t.Helper()
	resp, err := http.Post(base+"/search", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("search request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var sr searchResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("search decode: %v", err)
	}
	return sr
}

// scrapeCounter reads one un-labelled counter from a Prometheus text
// exposition endpoint.
func scrapeCounter(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics scrape: %v", err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if val, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(val, "%g", &v); err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

// TestDistributedServing drives the full remote topology end to end:
// two uotsshard partitions with two replicas each behind a
// -remote-shards uotsserve router, cross-validated against a monolithic
// uotsserve on the same dataset — then a replica is SIGKILLed mid-run
// (answers must stay correct via failover), the whole partition is
// killed (answers must degrade, flagged in metrics, not error), and the
// router must still drain cleanly on SIGTERM.
func TestDistributedServing(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, name := range []string{"uotsdgen", "uotsshard", "uotsserve"} {
		out, err := exec.Command("go", "build", "-o", bin(name), "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}
	data := filepath.Join(dir, "world")
	out, err := exec.Command(bin("uotsdgen"),
		"-city", "brn", "-scale", "0.1", "-trajs", "500", "-mean", "15", "-out", data).CombinedOutput()
	if err != nil {
		t.Fatalf("uotsdgen: %v\n%s", err, out)
	}

	// 2 partitions x 2 replicas; replicas of a partition serve identical
	// shard engines, so any one of them can answer for the group.
	const partitions = 2
	grid := make([][]*shardProc, partitions)
	for p := 0; p < partitions; p++ {
		for r := 0; r < 2; r++ {
			grid[p] = append(grid[p], startShard(t, bin("uotsshard"), data, p, partitions))
		}
	}
	var topo []string
	for _, group := range grid {
		var bases []string
		for _, sp := range group {
			bases = append(bases, sp.addr)
		}
		topo = append(topo, strings.Join(bases, ","))
	}

	const monoAddr = "127.0.0.1:18936"
	const routerAddr = "127.0.0.1:18937"
	startServe := func(args ...string) *exec.Cmd {
		cmd := exec.Command(bin("uotsserve"), append([]string{"-data", data, "-drain", "5s"}, args...)...)
		if err := cmd.Start(); err != nil {
			t.Fatalf("uotsserve start: %v", err)
		}
		t.Cleanup(func() {
			if cmd.ProcessState == nil {
				cmd.Process.Kill()
				cmd.Wait()
			}
		})
		return cmd
	}
	waitHealthy := func(addr string) {
		t.Helper()
		for attempt := 0; ; attempt++ {
			resp, err := http.Get("http://" + addr + "/healthz")
			if err == nil {
				resp.Body.Close()
				return
			}
			if attempt >= 100 {
				t.Fatalf("server on %s never came up: %v", addr, err)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	startServe("-addr", monoAddr)
	router := startServe("-addr", routerAddr,
		"-remote-shards", strings.Join(topo, ";"),
		"-rpc-partial", "degrade", "-rpc-retries", "3", "-rpc-timeout", "30s",
		"-probe-interval", "200ms",
		"-slow-query-ms", "0.0001") // far below any real query: every search is "slow"
	waitHealthy(monoAddr)
	waitHealthy(routerAddr)
	mono := "http://" + monoAddr
	remote := "http://" + routerAddr

	checkAllVariants := func(phase string) {
		t.Helper()
		for _, v := range searchVariants {
			want := postSearch(t, mono, v.body)
			got := postSearch(t, remote, v.body)
			if len(got.Results) != len(want.Results) {
				t.Fatalf("%s/%s: %d results, monolithic returned %d",
					phase, v.name, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i].Trajectory != want.Results[i].Trajectory {
					t.Fatalf("%s/%s: rank %d is trajectory %d, monolithic ranked %d",
						phase, v.name, i, got.Results[i].Trajectory, want.Results[i].Trajectory)
				}
				if math.Abs(got.Results[i].Score-want.Results[i].Score) > 1e-9 {
					t.Fatalf("%s/%s: rank %d score %v, monolithic %v",
						phase, v.name, i, got.Results[i].Score, want.Results[i].Score)
				}
			}
		}
	}
	checkAllVariants("healthy")

	// /batch also routes through the remote executor (expansion-only on
	// the wire); the aggregate answer must match the monolithic server.
	batchBody := `{"queries":[` + searchVariants[0].body + `,` + searchVariants[0].body + `]}`
	for _, base := range []string{mono, remote} {
		resp, err := http.Post(base+"/batch", "application/json", strings.NewReader(batchBody))
		if err != nil {
			t.Fatalf("batch request: %v", err)
		}
		var br struct {
			Responses []struct {
				Results []json.RawMessage `json:"results"`
				Error   string            `json:"error"`
			} `json:"responses"`
		}
		err = json.NewDecoder(resp.Body).Decode(&br)
		resp.Body.Close()
		if err != nil || len(br.Responses) != 2 {
			t.Fatalf("batch via %s: err=%v responses=%d", base, err, len(br.Responses))
		}
		for i, e := range br.Responses {
			if e.Error != "" || len(e.Results) == 0 {
				t.Fatalf("batch via %s entry %d: error=%q results=%d", base, i, e.Error, len(e.Results))
			}
		}
	}

	// A sampled query ("X-Trace: 1") must come back as one cross-node
	// tree: the router's /debug/trace/{id} replays both partitions'
	// remote child spans inside partition brackets with per-hop
	// wall-clock attribution, and the shard fleet retains its halves
	// under the same ID.
	req, err := http.NewRequest("POST", remote+"/search", strings.NewReader(searchVariants[0].body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("traced search: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("traced search status %d", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Request-ID")
	if traceID == "" {
		t.Fatal("traced search carries no request id")
	}

	type traceEvent struct {
		Kind string `json:"kind"`
		Note string `json:"note"`
	}
	var tr struct {
		Events []traceEvent `json:"events"`
		Hops   []struct {
			Partition int      `json:"partition"`
			Events    int      `json:"events"`
			Replicas  []string `json:"replicas"`
		} `json:"hops"`
	}
	resp, err = http.Get(remote + "/debug/trace/" + traceID)
	if err != nil {
		t.Fatalf("/debug/trace: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&tr)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/trace decode: %v", err)
	}
	if len(tr.Hops) != partitions {
		t.Fatalf("cross-node trace has %d hops, want %d: %+v", len(tr.Hops), partitions, tr.Hops)
	}
	for _, hop := range tr.Hops {
		if hop.Events == 0 || len(hop.Replicas) == 0 {
			t.Fatalf("hop %d replayed no remote span: %+v", hop.Partition, hop)
		}
	}
	kinds := map[string]int{}
	for _, ev := range tr.Events {
		kinds[ev.Kind]++
	}
	if kinds["rpc_remote_span"] != partitions || kinds["rpc_attempt"] < partitions {
		t.Fatalf("trace kinds %v: want %d rpc_remote_span and >= %d rpc_attempt", kinds, partitions, partitions)
	}
	if kinds["begin"] < partitions {
		t.Fatalf("trace kinds %v: want >= %d replayed shard engine spans (begin)", kinds, partitions)
	}
	// Each partition's serving replica retained its half of the trace.
	for p, group := range grid {
		retained := 0
		for _, sp := range group {
			r, err := http.Get("http://" + sp.addr + "/debug/trace/" + traceID)
			if err != nil {
				t.Fatalf("shard /debug/trace: %v", err)
			}
			if r.StatusCode == http.StatusOK {
				var shardTr struct {
					Shard  int          `json:"shard"`
					Events []traceEvent `json:"events"`
				}
				if err := json.NewDecoder(r.Body).Decode(&shardTr); err != nil {
					t.Fatalf("shard trace decode: %v", err)
				}
				if shardTr.Shard != p || len(shardTr.Events) == 0 {
					t.Fatalf("shard trace for partition %d: shard=%d events=%d", p, shardTr.Shard, len(shardTr.Events))
				}
				retained++
			}
			r.Body.Close()
		}
		if retained == 0 {
			t.Fatalf("no replica of partition %d retained trace %s", p, traceID)
		}
	}

	// The slow-query flight recorder captured the traffic above without
	// any X-Trace header — the threshold is far below real latency, so
	// every /search counts as slow.
	var slow struct {
		Count   int `json:"count"`
		Queries []struct {
			Route  string       `json:"route"`
			Events []traceEvent `json:"events"`
		} `json:"queries"`
	}
	resp, err = http.Get(remote + "/debug/slow")
	if err != nil {
		t.Fatalf("/debug/slow: %v", err)
	}
	err = json.NewDecoder(resp.Body).Decode(&slow)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("/debug/slow decode: %v", err)
	}
	if slow.Count == 0 {
		t.Fatal("slow-query flight recorder captured nothing")
	}
	slowSearches := 0
	for _, q := range slow.Queries {
		if q.Route == "/search" && len(q.Events) > 0 {
			slowSearches++
		}
	}
	if slowSearches == 0 {
		t.Fatalf("no /search capture with events in /debug/slow (%d captures)", slow.Count)
	}

	// SIGKILL one replica of partition 0 mid-run: the group fails over to
	// the surviving replica and answers stay identical to monolithic.
	grid[0][0].cmd.Process.Kill()
	grid[0][0].cmd.Wait()
	checkAllVariants("one-replica-down")
	if v := scrapeCounter(t, remote, "uots_shard_degraded_queries_total"); v != 0 {
		t.Fatalf("degraded queries after single-replica kill: %g, want 0 (failover must hide it)", v)
	}

	// Kill the other replica too: partition 0 is gone. Under
	// -rpc-partial degrade the router keeps answering from partition 1,
	// flags the loss in uots_shard_degraded_queries_total, and never
	// serves a 5xx for it.
	grid[0][1].cmd.Process.Kill()
	grid[0][1].cmd.Wait()
	deadline := time.Now().Add(30 * time.Second)
	for {
		sr := postSearch(t, remote, searchVariants[0].body)
		if len(sr.Results) == 0 {
			t.Fatalf("degraded search returned no results")
		}
		if scrapeCounter(t, remote, "uots_shard_degraded_queries_total") > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partition kill never surfaced in uots_shard_degraded_queries_total")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if v := scrapeCounter(t, remote, "uots_rpc_group_exhausted_total"); v == 0 {
		t.Fatalf("uots_rpc_group_exhausted_total = 0 after killing a whole partition")
	}

	// The router must still shut down cleanly with a partition dead.
	if err := router.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM router: %v", err)
	}
	exitc := make(chan error, 1)
	go func() { exitc <- router.Wait() }()
	select {
	case err := <-exitc:
		if err != nil {
			t.Fatalf("router exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("router did not exit after SIGTERM")
	}

	// And so must a shard server.
	sp := grid[1][0]
	if err := sp.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM shard: %v", err)
	}
	shardExit := make(chan error, 1)
	go func() { shardExit <- sp.cmd.Wait() }()
	select {
	case err := <-shardExit:
		if err != nil {
			t.Fatalf("shard exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("shard did not exit after SIGTERM")
	}
}
