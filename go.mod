module uots

go 1.22
