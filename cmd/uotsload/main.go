// Command uotsload drives a running uotsserve with a deterministic,
// seeded open-loop workload and reports the latency distribution the
// server actually delivered.
//
// Usage:
//
//	uotsload -target http://127.0.0.1:8080 [-qps 50 -duration 10s -seed 1]
//	         [-mix 'search=70,batch=10,ingest=20' -zipf 1.2 -k 5]
//	         [-timeout 5s -out BENCH_LOAD.json]
//
// The driver is open-loop: requests launch on a fixed schedule derived
// from -qps regardless of how fast earlier ones complete, so a slow
// server accumulates in-flight work and its queueing delay shows up in
// the measured percentiles instead of silently throttling the offered
// load. Query vertices are drawn zipf-hot (-zipf is the skew exponent,
// > 1) so a small set of sources dominates, the way real trip queries
// concentrate on popular places.
//
// -mix weights the operations: "search" (POST /search), "batch"
// (POST /batch of three queries), and "ingest" (POST /trajectories,
// requiring a server started with -ingest; the weight is dropped with a
// warning when the target has no write path). Everything — operation
// choice, query shape, ingested trajectories — derives from -seed, so
// two runs against equivalent servers issue byte-identical request
// streams.
//
// On exit (including failure or interruption) the run's metrics land in
// -out as BENCH_LOAD.json: a {"harness", "seed", "config", "summary",
// "metrics"} wrapper whose summary carries achieved QPS, error rate,
// per-operation p50/p95/p99 milliseconds, and the server's ingest lag
// (accepted minus committed trajectories plus queue depth) sampled at
// the end of the run. The metrics field is the uots_load_* registry
// snapshot in the same format uotsbench writes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"uots/internal/experiments"
	"uots/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// opNames fixes the operation order everywhere: mix parsing, weighted
// sampling, and the summary table.
var opNames = []string{"search", "batch", "ingest"}

// loadQuerySecondsBuckets span in-memory hits to badly queued tails.
var loadQuerySecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// summary is the digest embedded in BENCH_LOAD.json next to the raw
// registry snapshot. Filled progressively so an interrupted run still
// records what it measured.
type summary struct {
	// Aborted is true until the run completes at least one request: a
	// BENCH_LOAD.json from a probe failure or an immediately cancelled
	// run carries zero-valued percentiles, and this flag is what tells a
	// reader (or a CI diff) those zeros are "never measured", not "served
	// in zero milliseconds".
	Aborted       bool               `json:"aborted"`
	Sent          uint64             `json:"sent"`
	Completed     uint64             `json:"completed"`
	Errors        uint64             `json:"errors"`
	ErrorRate     float64            `json:"error_rate"`
	AchievedQPS   float64            `json:"achieved_qps"`
	ElapsedSec    float64            `json:"elapsed_sec"`
	PerOp         map[string]opStats `json:"per_op"`
	IngestLag     int64              `json:"ingest_lag_trajectories"`
	IngestQueue   int64              `json:"ingest_queue_depth"`
	IngestSampled bool               `json:"ingest_lag_sampled"`
}

type opStats struct {
	Count  uint64 `json:"count"`
	Errors uint64 `json:"errors"`
	// Samples is the number of ok-outcome latencies backing the
	// percentiles below. Failed requests are excluded from the
	// distribution — a timeout's ceiling or a refused connection's
	// instant error is not a service latency — so Samples equals
	// Count−Errors, and 0 means the percentiles are unmeasured, not
	// zero.
	Samples uint64  `json:"ok_samples"`
	P50ms   float64 `json:"p50_ms"`
	P95ms   float64 `json:"p95_ms"`
	P99ms   float64 `json:"p99_ms"`
}

// run is main minus process globals, so tests can drive every exit
// path. The named return lets the deferred BENCH_LOAD.json flush both
// see the outcome and fail the process itself.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("uotsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of the uotsserve under load")
	qps := fs.Float64("qps", 50, "offered load in requests per second (open loop)")
	duration := fs.Duration("duration", 10*time.Second, "how long to offer load")
	seed := fs.Int64("seed", 1, "PRNG seed; equal seeds issue identical request streams")
	mix := fs.String("mix", "search=70,batch=10,ingest=20", "operation weights: search,batch,ingest")
	zipfS := fs.Float64("zipf", 1.2, "zipf skew for query source vertices (> 1; larger = hotter)")
	k := fs.Int("k", 5, "results requested per search")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request client timeout")
	out := fs.String("out", "BENCH_LOAD.json", "metrics file written on every exit path ('' disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *qps <= 0 || *duration <= 0 {
		fmt.Fprintln(stderr, "uotsload: -qps and -duration must be positive")
		return 2
	}
	if *zipfS <= 1 {
		fmt.Fprintln(stderr, "uotsload: -zipf must be > 1")
		return 2
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintln(stderr, "uotsload:", err)
		return 2
	}

	reg := obs.NewRegistry()
	requests := reg.CounterVec("uots_load_requests_total",
		"Requests completed, by operation and outcome.", "op", "outcome")
	latency := reg.HistogramVec("uots_load_request_seconds",
		"Request wall time in seconds, by operation.", loadQuerySecondsBuckets, "op")
	sent := reg.Counter("uots_load_sent_total", "Requests launched by the scheduler.")
	lagGauge := reg.Gauge("uots_load_ingest_lag_trajectories",
		"Server-side accepted minus committed trajectories at run end.")
	queueGauge := reg.Gauge("uots_load_ingest_queue_depth",
		"Server-side ingest queue depth at run end.")

	sum := &summary{PerOp: map[string]opStats{}, Aborted: true}
	if *out != "" {
		defer func() {
			if err := writeLoadFile(*out, *seed, *qps, *duration, *mix, sum, reg); err != nil {
				fmt.Fprintln(stderr, "uotsload:", err)
				if code == 0 {
					code = 1
				}
				return
			}
			fmt.Fprintf(stdout, "\nwrote %s\n", *out)
		}()
	}

	client := &http.Client{Timeout: *timeout}
	base := strings.TrimRight(*target, "/")
	shape, err := fetchStats(ctx, client, base)
	if err != nil {
		fmt.Fprintln(stderr, "uotsload:", err)
		return 1
	}
	if weights["ingest"] > 0 && !shape.liveIngest {
		fmt.Fprintln(stderr, "uotsload: target has no write path (-ingest); dropping ingest from the mix")
		weights["ingest"] = 0
		if weights["search"]+weights["batch"] == 0 {
			fmt.Fprintln(stderr, "uotsload: nothing left to send")
			return 2
		}
	}
	fmt.Fprintf(stdout, "uotsload: %s — %d vertices, %d trajectories, liveIngest=%v\n",
		base, shape.vertices, shape.trajectories, shape.liveIngest)
	fmt.Fprintf(stdout, "uotsload: offering %.4g req/s for %s (seed %d, mix %s, zipf %.4g)\n",
		*qps, *duration, *seed, *mix, *zipfS)

	// All randomness flows from this single-goroutine source: the
	// scheduler draws the operation and fully renders its body before
	// dispatch, so the request stream is a pure function of the seed.
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, *zipfS, 1, uint64(shape.vertices-1))
	gen := &payloadGen{rng: rng, zipf: zipf, vertices: shape.vertices, k: *k}

	rec := newRecorder()
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / *qps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	deadline := time.NewTimer(*duration)
	defer deadline.Stop()
	start := time.Now()

loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-deadline.C:
			break loop
		case <-ticker.C:
			op := pickOp(rng, weights)
			path, body := gen.render(op)
			sent.Inc()
			sum.Sent++
			wg.Add(1)
			go func() {
				defer wg.Done()
				t0 := time.Now()
				outcome := send(ctx, client, base+path, body)
				d := time.Since(t0).Seconds()
				latency.With(op).Observe(d)
				requests.With(op, outcome).Inc()
				rec.record(op, d, outcome == "ok")
			}()
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Digest: per-op percentiles from the recorded samples, overall
	// throughput and error rate, then the server's own ingest lag.
	sum.ElapsedSec = elapsed.Seconds()
	rec.mu.Lock()
	for _, op := range opNames {
		n := rec.attempts[op]
		if n == 0 {
			continue
		}
		s := rec.oks[op]
		sort.Float64s(s)
		st := opStats{Count: n, Errors: rec.errors[op], Samples: uint64(len(s))}
		if len(s) > 0 {
			st.P50ms = quantile(s, 0.50) * 1000
			st.P95ms = quantile(s, 0.95) * 1000
			st.P99ms = quantile(s, 0.99) * 1000
		}
		sum.PerOp[op] = st
		sum.Completed += n
		sum.Errors += rec.errors[op]
	}
	rec.mu.Unlock()
	sum.Aborted = sum.Completed == 0
	if sum.Completed > 0 {
		sum.ErrorRate = float64(sum.Errors) / float64(sum.Completed)
	}
	if sum.ElapsedSec > 0 {
		sum.AchievedQPS = float64(sum.Completed) / sum.ElapsedSec
	}
	if shape.liveIngest {
		if lag, depth, err := fetchIngestLag(ctx, client, base); err == nil {
			sum.IngestLag, sum.IngestQueue, sum.IngestSampled = lag, depth, true
			lagGauge.Set(lag)
			queueGauge.Set(depth)
		} else if ctx.Err() == nil {
			fmt.Fprintln(stderr, "uotsload: ingest lag sample:", err)
		}
	}

	fmt.Fprintf(stdout, "\n%-8s %8s %8s %10s %10s %10s\n", "op", "count", "errors", "p50 ms", "p95 ms", "p99 ms")
	for _, op := range opNames {
		st, ok := sum.PerOp[op]
		if !ok {
			continue
		}
		fmt.Fprintf(stdout, "%-8s %8d %8d %10.2f %10.2f %10.2f\n",
			op, st.Count, st.Errors, st.P50ms, st.P95ms, st.P99ms)
	}
	fmt.Fprintf(stdout, "\nsent %d, completed %d in %.2fs: %.2f req/s achieved, error rate %.2f%%\n",
		sum.Sent, sum.Completed, sum.ElapsedSec, sum.AchievedQPS, 100*sum.ErrorRate)
	if sum.IngestSampled {
		fmt.Fprintf(stdout, "ingest lag at run end: %d trajectories (queue depth %d)\n",
			sum.IngestLag, sum.IngestQueue)
	}
	if ctx.Err() != nil {
		fmt.Fprintln(stdout, "uotsload: interrupted; partial run recorded")
	}
	if sum.Completed == 0 {
		fmt.Fprintln(stderr, "uotsload: no requests completed")
		return 1
	}
	return 0
}

// recorder accumulates raw per-op latencies for exact percentiles; the
// registry histograms carry the same data in fixed buckets for the
// snapshot file. Only ok outcomes contribute latency samples — errored
// requests are counted, never mixed into the distribution.
type recorder struct {
	mu       sync.Mutex
	oks      map[string][]float64 // ok-outcome latencies only
	attempts map[string]uint64
	errors   map[string]uint64
}

func newRecorder() *recorder {
	return &recorder{
		oks:      map[string][]float64{},
		attempts: map[string]uint64{},
		errors:   map[string]uint64{},
	}
}

func (r *recorder) record(op string, seconds float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts[op]++
	if ok {
		r.oks[op] = append(r.oks[op], seconds)
	} else {
		r.errors[op]++
	}
}

// quantile reads q from ascending-sorted s by nearest rank:
// ceil(q·n)−1, clamped. The previous floor-based index underreported
// upper quantiles on small runs — with two samples it returned the
// MINIMUM as the p99, so a load run cut short after a handful of
// requests published a tail it never achieved.
func quantile(s []float64, q float64) float64 {
	if len(s) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// parseMix parses "search=70,batch=10,ingest=20" into weights.
func parseMix(s string) (map[string]int, error) {
	w := map[string]int{}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -mix entry %q (want op=weight)", part)
		}
		n, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("bad -mix weight %q", part)
		}
		name = strings.TrimSpace(name)
		known := false
		for _, op := range opNames {
			if op == name {
				known = true
			}
		}
		if !known {
			return nil, fmt.Errorf("unknown -mix op %q (want search, batch, or ingest)", name)
		}
		w[name] = n
	}
	total := 0
	for _, n := range w {
		total += n
	}
	if total == 0 {
		return nil, errors.New("-mix has zero total weight")
	}
	return w, nil
}

// pickOp draws one operation by weight, in the fixed opNames order so
// the draw depends only on the rng state.
func pickOp(rng *rand.Rand, weights map[string]int) string {
	total := 0
	for _, op := range opNames {
		total += weights[op]
	}
	n := rng.Intn(total)
	for _, op := range opNames {
		n -= weights[op]
		if n < 0 {
			return op
		}
	}
	return opNames[0]
}

// loadWords is the keyword pool shared by ingested trajectories and
// textual queries, so queries actually hit what the run writes.
var loadWords = []string{
	"museum", "park", "harbor", "jazz", "garden", "market",
	"castle", "beach", "gallery", "bistro",
}

// payloadGen renders request bodies. Only the scheduler goroutine
// touches it, keeping the stream deterministic.
type payloadGen struct {
	rng      *rand.Rand
	zipf     *rand.Zipf
	vertices int
	k        int
	clock    float64 // monotone ingest timestamp, seconds of day
}

func (g *payloadGen) render(op string) (path string, body []byte) {
	switch op {
	case "batch":
		qs := make([]json.RawMessage, 3)
		for i := range qs {
			qs[i] = g.searchBody()
		}
		raw, _ := json.Marshal(map[string]any{"queries": qs, "workers": 2})
		return "/batch", raw
	case "ingest":
		return "/trajectories", g.ingestBody()
	default:
		return "/search", g.searchBody()
	}
}

// searchBody draws one to two zipf-hot source vertices and sometimes a
// keyword phrase.
func (g *payloadGen) searchBody() []byte {
	verts := make([]int, 1+g.rng.Intn(2))
	for i := range verts {
		verts[i] = g.hotVertex()
	}
	q := map[string]any{"vertexIds": verts, "k": g.k, "lambda": 0.5}
	if g.rng.Intn(2) == 0 {
		q["keywords"] = g.phrase(1 + g.rng.Intn(2))
	}
	raw, _ := json.Marshal(q)
	return raw
}

// ingestBody renders one to three short trajectories walking outward
// from hot vertices with strictly advancing times.
func (g *payloadGen) ingestBody() []byte {
	type sample struct {
		Vertex int     `json:"vertex"`
		T      float64 `json:"t"`
	}
	type traj struct {
		Samples  []sample `json:"samples"`
		Keywords string   `json:"keywords"`
	}
	trajs := make([]traj, 1+g.rng.Intn(3))
	for i := range trajs {
		n := 2 + g.rng.Intn(4)
		tr := traj{Keywords: g.phrase(1 + g.rng.Intn(3))}
		for j := 0; j < n; j++ {
			g.clock += 1 + g.rng.Float64()*5
			if g.clock >= 86000 { // stay inside the store's seconds-of-day range
				g.clock = g.rng.Float64() * 100
				tr.Samples = nil
				j = -1
				continue
			}
			tr.Samples = append(tr.Samples, sample{Vertex: g.hotVertex(), T: g.clock})
		}
		trajs[i] = tr
	}
	raw, _ := json.Marshal(map[string]any{"trajectories": trajs})
	return raw
}

func (g *payloadGen) hotVertex() int {
	if g.vertices <= 1 {
		return 0
	}
	return int(g.zipf.Uint64())
}

func (g *payloadGen) phrase(n int) string {
	words := make([]string, n)
	for i := range words {
		words[i] = loadWords[g.rng.Intn(len(loadWords))]
	}
	return strings.Join(words, " ")
}

// send posts body and classifies the outcome: "ok", "http_<code>", or
// "transport". Bodies are drained so connections get reused.
func send(ctx context.Context, client *http.Client, url string, body []byte) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return "transport"
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return "transport"
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return "ok"
	}
	return "http_" + strconv.Itoa(resp.StatusCode)
}

// serverShape is the target description read from GET /stats.
type serverShape struct {
	vertices     int
	trajectories int
	liveIngest   bool
}

func fetchStats(ctx context.Context, client *http.Client, base string) (serverShape, error) {
	var out struct {
		Vertices     int  `json:"vertices"`
		Trajectories int  `json:"trajectories"`
		LiveIngest   bool `json:"liveIngest"`
	}
	if err := getJSON(ctx, client, base+"/stats", &out); err != nil {
		return serverShape{}, fmt.Errorf("probing %s/stats: %w", base, err)
	}
	if out.Vertices <= 0 {
		return serverShape{}, fmt.Errorf("%s/stats reports %d vertices", base, out.Vertices)
	}
	return serverShape{vertices: out.Vertices, trajectories: out.Trajectories, liveIngest: out.LiveIngest}, nil
}

// fetchIngestLag samples the server's write-path backlog: trajectories
// accepted but not yet committed, plus the queue depth.
func fetchIngestLag(ctx context.Context, client *http.Client, base string) (lag, depth int64, err error) {
	var out struct {
		Accepted   int64 `json:"accepted"`
		Committed  int64 `json:"committed"`
		QueueDepth int64 `json:"queue_depth"`
	}
	if err := getJSON(ctx, client, base+"/ingest/stats", &out); err != nil {
		return 0, 0, err
	}
	return out.Accepted - out.Committed, out.QueueDepth, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, into any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s answered %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

// writeLoadFile writes the BENCH_LOAD.json wrapper: run identity, the
// human-level summary, and the raw registry snapshot.
func writeLoadFile(path string, seed int64, qps float64, duration time.Duration, mix string, sum *summary, reg *obs.Registry) error {
	var snap bytes.Buffer
	if err := experiments.WriteSnapshot(&snap, reg); err != nil {
		return err
	}
	sumRaw, err := json.Marshal(sum)
	if err != nil {
		return err
	}
	cfgRaw, err := json.Marshal(map[string]any{
		"qps": qps, "duration": duration.String(), "mix": mix,
	})
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(map[string]json.RawMessage{
		"harness": json.RawMessage(`"uotsload"`),
		"seed":    json.RawMessage(strconv.FormatInt(seed, 10)),
		"config":  json.RawMessage(cfgRaw),
		"summary": json.RawMessage(sumRaw),
		"metrics": json.RawMessage(bytes.TrimSpace(snap.Bytes())),
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
