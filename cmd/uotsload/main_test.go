package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uots/internal/ingest"
	"uots/internal/roadnet"
	"uots/internal/server"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// liveTarget boots a real live-ingest server on a loopback listener.
func liveTarget(t *testing.T) string {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 8, Cols: 8, Style: roadnet.StyleDense, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	vocab := textual.NewVocab()
	store := trajdb.NewDynamic(g, vocab)
	svc, err := ingest.Open(store, ingest.Config{
		WALPath: filepath.Join(t.TempDir(), "ingest.wal"),
		Fsync:   ingest.FsyncNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := server.NewWithConfig(nil, vocab, nil, server.Config{Live: svc})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRunAgainstLiveServer(t *testing.T) {
	url := liveTarget(t)
	path := filepath.Join(t.TempDir(), "BENCH_LOAD.json")
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{
		"-target", url, "-qps", "200", "-duration", "500ms",
		"-seed", "7", "-out", path,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("BENCH_LOAD.json not written: %v", err)
	}
	var wrapper struct {
		Harness string  `json:"harness"`
		Seed    int64   `json:"seed"`
		Summary summary `json:"summary"`
		Metrics any     `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &wrapper); err != nil {
		t.Fatalf("BENCH_LOAD.json is not valid JSON: %v\n%s", err, raw)
	}
	if wrapper.Harness != "uotsload" || wrapper.Seed != 7 {
		t.Fatalf("wrapper identity = %q seed %d", wrapper.Harness, wrapper.Seed)
	}
	if wrapper.Summary.Completed == 0 || wrapper.Summary.AchievedQPS <= 0 {
		t.Fatalf("summary reports no work: %+v", wrapper.Summary)
	}
	if wrapper.Metrics == nil {
		t.Fatal("wrapper has no metrics snapshot")
	}
	if _, ok := wrapper.Summary.PerOp["ingest"]; !ok {
		t.Fatalf("mix issued no ingest ops: %+v", wrapper.Summary.PerOp)
	}
	if !strings.Contains(stdout.String(), "achieved") {
		t.Fatalf("stdout has no summary line: %s", stdout.String())
	}
}

// TestRunFlushesOnProbeFailure: an unreachable target still writes the
// (empty) snapshot file — the flush shares uotsbench's every-exit-path
// guarantee.
func TestRunFlushesOnProbeFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_LOAD.json")
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{
		"-target", "http://127.0.0.1:1", "-qps", "10", "-duration", "100ms",
		"-timeout", "200ms", "-out", path,
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unreachable target should exit non-zero")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot not written on probe failure: %v", err)
	}
	var wrapper map[string]any
	if err := json.Unmarshal(raw, &wrapper); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, raw)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-qps", "0"},
		{"-duration", "0s"},
		{"-zipf", "1"},
		{"-mix", "search=0,batch=0,ingest=0"},
		{"-mix", "teleport=5"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(t.Context(), append(args, "-out", ""), &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, stderr.String())
		}
	}
}

// TestPayloadDeterminism: equal seeds render byte-identical request
// streams — the property that makes two load runs comparable.
func TestPayloadDeterminism(t *testing.T) {
	render := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, 1.2, 1, 63)
		g := &payloadGen{rng: rng, zipf: zipf, vertices: 64, k: 5}
		weights := map[string]int{"search": 70, "batch": 10, "ingest": 20}
		var out []string
		for i := 0; i < 200; i++ {
			op := pickOp(rng, weights)
			path, body := g.render(op)
			out = append(out, path+" "+string(body))
		}
		return out
	}
	a, b := render(42), render(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged:\n%s\n%s", i, a[i], b[i])
		}
	}
	c := render(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds rendered identical streams")
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("search=1, ingest=3")
	if err != nil {
		t.Fatal(err)
	}
	if w["search"] != 1 || w["ingest"] != 3 || w["batch"] != 0 {
		t.Fatalf("weights = %v", w)
	}
	if _, err := parseMix("search"); err == nil {
		t.Error("missing weight accepted")
	}
	if _, err := parseMix("search=-1"); err == nil {
		t.Error("negative weight accepted")
	}
}
