package main

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uots/internal/ingest"
	"uots/internal/roadnet"
	"uots/internal/server"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// liveTarget boots a real live-ingest server on a loopback listener.
func liveTarget(t *testing.T) string {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 8, Cols: 8, Style: roadnet.StyleDense, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	vocab := textual.NewVocab()
	store := trajdb.NewDynamic(g, vocab)
	svc, err := ingest.Open(store, ingest.Config{
		WALPath: filepath.Join(t.TempDir(), "ingest.wal"),
		Fsync:   ingest.FsyncNone,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	srv := server.NewWithConfig(nil, vocab, nil, server.Config{Live: svc})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

func TestRunAgainstLiveServer(t *testing.T) {
	url := liveTarget(t)
	path := filepath.Join(t.TempDir(), "BENCH_LOAD.json")
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{
		"-target", url, "-qps", "200", "-duration", "500ms",
		"-seed", "7", "-out", path,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("BENCH_LOAD.json not written: %v", err)
	}
	var wrapper struct {
		Harness string  `json:"harness"`
		Seed    int64   `json:"seed"`
		Summary summary `json:"summary"`
		Metrics any     `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &wrapper); err != nil {
		t.Fatalf("BENCH_LOAD.json is not valid JSON: %v\n%s", err, raw)
	}
	if wrapper.Harness != "uotsload" || wrapper.Seed != 7 {
		t.Fatalf("wrapper identity = %q seed %d", wrapper.Harness, wrapper.Seed)
	}
	if wrapper.Summary.Completed == 0 || wrapper.Summary.AchievedQPS <= 0 {
		t.Fatalf("summary reports no work: %+v", wrapper.Summary)
	}
	if wrapper.Metrics == nil {
		t.Fatal("wrapper has no metrics snapshot")
	}
	if _, ok := wrapper.Summary.PerOp["ingest"]; !ok {
		t.Fatalf("mix issued no ingest ops: %+v", wrapper.Summary.PerOp)
	}
	if !strings.Contains(stdout.String(), "achieved") {
		t.Fatalf("stdout has no summary line: %s", stdout.String())
	}
}

// TestRunFlushesOnProbeFailure: an unreachable target still writes the
// (empty) snapshot file — the flush shares uotsbench's every-exit-path
// guarantee.
func TestRunFlushesOnProbeFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_LOAD.json")
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{
		"-target", "http://127.0.0.1:1", "-qps", "10", "-duration", "100ms",
		"-timeout", "200ms", "-out", path,
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unreachable target should exit non-zero")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot not written on probe failure: %v", err)
	}
	var wrapper map[string]any
	if err := json.Unmarshal(raw, &wrapper); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, raw)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-qps", "0"},
		{"-duration", "0s"},
		{"-zipf", "1"},
		{"-mix", "search=0,batch=0,ingest=0"},
		{"-mix", "teleport=5"},
	}
	for _, args := range cases {
		var stdout, stderr bytes.Buffer
		if code := run(t.Context(), append(args, "-out", ""), &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) = %d, want 2 (stderr %q)", args, code, stderr.String())
		}
	}
}

// TestPayloadDeterminism: equal seeds render byte-identical request
// streams — the property that makes two load runs comparable.
func TestPayloadDeterminism(t *testing.T) {
	render := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		zipf := rand.NewZipf(rng, 1.2, 1, 63)
		g := &payloadGen{rng: rng, zipf: zipf, vertices: 64, k: 5}
		weights := map[string]int{"search": 70, "batch": 10, "ingest": 20}
		var out []string
		for i := 0; i < 200; i++ {
			op := pickOp(rng, weights)
			path, body := g.render(op)
			out = append(out, path+" "+string(body))
		}
		return out
	}
	a, b := render(42), render(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged:\n%s\n%s", i, a[i], b[i])
		}
	}
	c := render(43)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds rendered identical streams")
	}
}

// TestQuantileNearestRank: the percentile read is nearest-rank over
// small synthetic sample sets — the regression here is the floor-based
// index that reported the minimum of a two-sample run as its p99.
func TestQuantileNearestRank(t *testing.T) {
	cases := []struct {
		name string
		s    []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.99, 0},
		{"single", []float64{7}, 0.5, 7},
		{"single-p99", []float64{7}, 0.99, 7},
		{"two-p99-is-max", []float64{1, 9}, 0.99, 9},
		{"two-p50-is-min", []float64{1, 9}, 0.50, 1},
		{"three-p50-is-median", []float64{1, 5, 9}, 0.50, 5},
		{"four-p95-is-max", []float64{1, 2, 3, 10}, 0.95, 10},
		{"five-p50", []float64{1, 2, 3, 4, 5}, 0.50, 3},
		{"ten-p90", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.90, 9},
		{"ten-p99-is-max", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		{"q-one-is-max", []float64{1, 2, 3}, 1.0, 3},
	}
	for _, tc := range cases {
		if got := quantile(tc.s, tc.q); got != tc.want {
			t.Errorf("%s: quantile(%v, %g) = %g, want %g", tc.name, tc.s, tc.q, got, tc.want)
		}
	}
}

// TestRecorderExcludesErrorsFromPercentiles: failed requests count as
// attempts and errors but contribute no latency sample, so a run whose
// errors all fail instantly cannot drag the published tail toward zero.
func TestRecorderExcludesErrorsFromPercentiles(t *testing.T) {
	rec := newRecorder()
	rec.record("search", 0.010, true)
	rec.record("search", 0.020, true)
	rec.record("search", 0.0001, false) // instant connection refusal
	rec.record("search", 5.0, false)    // timeout ceiling
	if got := rec.attempts["search"]; got != 4 {
		t.Errorf("attempts = %d, want 4", got)
	}
	if got := rec.errors["search"]; got != 2 {
		t.Errorf("errors = %d, want 2", got)
	}
	if got := len(rec.oks["search"]); got != 2 {
		t.Fatalf("ok samples = %d, want 2", got)
	}
	for _, d := range rec.oks["search"] {
		if d == 0.0001 || d == 5.0 {
			t.Errorf("error latency %g leaked into the percentile samples", d)
		}
	}
}

// TestRunAbortedSummary: a probe failure writes BENCH_LOAD.json whose
// summary is explicitly aborted with no fabricated per-op percentiles.
func TestRunAbortedSummary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_LOAD.json")
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{
		"-target", "http://127.0.0.1:1", "-qps", "10", "-duration", "100ms",
		"-timeout", "200ms", "-out", path,
	}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unreachable target should exit non-zero")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var wrapper struct {
		Summary summary `json:"summary"`
	}
	if err := json.Unmarshal(raw, &wrapper); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, raw)
	}
	if !wrapper.Summary.Aborted {
		t.Errorf("aborted run not flagged: %+v", wrapper.Summary)
	}
	if len(wrapper.Summary.PerOp) != 0 {
		t.Errorf("aborted run fabricated per-op stats: %+v", wrapper.Summary.PerOp)
	}
	if wrapper.Summary.AchievedQPS != 0 {
		t.Errorf("aborted run reports achieved QPS %g", wrapper.Summary.AchievedQPS)
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("search=1, ingest=3")
	if err != nil {
		t.Fatal(err)
	}
	if w["search"] != 1 || w["ingest"] != 3 || w["batch"] != 0 {
		t.Fatalf("weights = %v", w)
	}
	if _, err := parseMix("search"); err == nil {
		t.Error("missing weight accepted")
	}
	if _, err := parseMix("search=-1"); err == nil {
		t.Error("negative weight accepted")
	}
}
