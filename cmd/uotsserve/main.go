// Command uotsserve exposes a dataset written by uotsdgen as a JSON HTTP
// search API.
//
// Usage:
//
//	uotsserve -data dataset -addr :8080 [-cache 67108864 -disk dataset.dsk]
//
// Endpoints:
//
//	GET  /healthz             liveness
//	GET  /stats               dataset shape
//	POST /search              {"points":[[x,y],...], "keywords":"...", "lambda":0.5, "k":5}
//	POST /batch               {"queries":[<search bodies>...], "workers":4}
//	GET  /trajectory/{id}     full trajectory record
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"uots"
	"uots/internal/core"
	"uots/internal/diskstore"
	"uots/internal/server"
)

func main() {
	data := flag.String("data", "dataset", "dataset path prefix (expects <prefix>.graph and <prefix>.trajs)")
	addr := flag.String("addr", ":8080", "listen address")
	disk := flag.String("disk", "", "serve from a disk-resident store file instead of loading trajectories into memory")
	cache := flag.Int("cache", 0, "disk-store LRU buffer budget in bytes (0 = 64 MiB default)")
	flag.Parse()

	gf, err := os.Open(*data + ".graph")
	if err != nil {
		fatal(err)
	}
	g, err := uots.ReadGraph(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}

	var store core.TrajStore
	var vocab *uots.Vocab
	if *disk != "" {
		ds, err := diskstore.Open(*disk, g, *cache)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		store, vocab = ds, ds.Vocab()
		log.Printf("serving disk-resident store %s (buffer %d bytes)", *disk, ds.CacheBytes())
	} else {
		tf, err := os.Open(*data + ".trajs")
		if err != nil {
			fatal(err)
		}
		db, err := uots.ReadStore(tf, g)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		store, vocab = db, db.Vocab()
	}

	engine, err := core.NewEngine(store, core.Options{})
	if err != nil {
		fatal(err)
	}
	srv := server.New(engine, vocab, nil)
	log.Printf("uotsserve: %d vertices, %d trajectories, listening on %s",
		g.NumVertices(), store.NumTrajectories(), *addr)
	fatal(srv.ListenAndServe(*addr))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uotsserve:", err)
	os.Exit(1)
}
