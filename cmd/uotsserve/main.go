// Command uotsserve exposes a dataset written by uotsdgen as a JSON HTTP
// search API.
//
// Usage:
//
//	uotsserve -data dataset -addr :8080 [-cache 67108864 -disk dataset.dsk]
//	          [-timeout 10s -max-inflight 64 -max-body 8388608 -drain 10s]
//	          [-debug-addr 127.0.0.1:6060 -trace-depth 64 -log-requests]
//	          [-slow-query-ms 250 -slow-query-depth 32]
//	          [-shards 4 -partition hash -cache-size 1024]
//	          [-remote-shards 'h1:p,h2:p;h3:p,h4:p' -rpc-timeout 2s -rpc-retries 3
//	           -hedge-delay 5ms -probe-interval 5s -rpc-partial degrade]
//	          [-ingest -wal-dir walblocks -fsync always]
//
// Endpoints:
//
//	GET  /healthz             liveness
//	GET  /stats               dataset shape + serving and search counters
//	GET  /metrics             Prometheus text exposition
//	GET  /debug/trace/{id}    replay of a traced request's search events
//	GET  /debug/slow          slow-query flight recorder (needs -slow-query-ms)
//	POST /search              {"points":[[x,y],...], "keywords":"...", "lambda":0.5, "k":5}
//	POST /batch               {"queries":[<search bodies>...], "workers":4}
//	GET  /trajectory/{id}     full trajectory record
//	POST /trajectories        live write path (needs -ingest)
//	GET  /ingest/stats        write-path counters (needs -ingest)
//
// Search requests run under the -timeout deadline (503 on expiry),
// concurrency beyond -max-inflight is shed with 429, and bodies beyond
// -max-body are rejected with 413. On SIGINT/SIGTERM the server stops
// accepting connections, gives in-flight requests up to -drain to finish,
// then exits 0.
//
// -debug-addr starts a second listener (keep it private) carrying
// net/http/pprof under /debug/pprof/ and a /metrics mirror, so profiling
// traffic never competes with the serving listener. Sending "X-Trace: 1"
// with a search records its expansion events for /debug/trace/{id}; on
// the remote-shards topology the replay is a cross-node tree — every
// RPC attempt, retry, and hedge plus each shard server's own span,
// grouped per partition with wall-clock attribution.
//
// -slow-query-ms N > 0 turns on the always-on slow-query flight
// recorder: every /search and /batch request runs traced (no header
// needed), and requests taking at least N milliseconds keep their spans
// in a ring of the most recent -slow-query-depth captures, served by
// GET /debug/slow.
//
// -shards N > 1 serves the default search algorithm from a sharded
// scatter-gather engine (internal/shard): the store is partitioned N
// ways (-partition hash|region) and every query fans out over the
// shards, with per-shard work visible as uots_shard_* series on
// /metrics. -cache-size adds a result cache in front of the shards
// (entries; 0 disables). The exhaustive/textfirst baselines and /batch
// keep running on the monolithic engine.
//
// -remote-shards routes the default search to remote uotsshard
// processes instead: "hostA:1,hostA2:1;hostB:2,hostB2:2" lists one
// replica group per partition (';' separates partitions in partition
// order, ',' separates that partition's interchangeable replicas; a
// bare host:port gets http://). Every node must serve the same dataset
// partitioned the same way (-partition, partition count = group count).
// Per-attempt deadlines (-rpc-timeout), bounded retries (-rpc-retries),
// hedged requests (-hedge-delay; 0 disables), and health probes
// (-probe-interval) guard the wire; -rpc-partial picks whether a dead
// partition fails queries ("fail") or serves degraded answers from the
// survivors ("degrade"), flagged in traces and uots_shard_* metrics.
// uots_rpc_* series on /metrics account the transport. Mutually
// exclusive with -shards.
//
// -ingest turns on the live write path: the dataset becomes the boot
// snapshot of a mutable store, POST /trajectories appends through a
// write-ahead log in -wal-dir (replayed on boot, so a crash loses
// nothing that was acknowledged), and every read pins an immutable MVCC
// snapshot so ingest never blocks or tears a search. -fsync picks the
// durability point: "always" (fsync every group commit, the default),
// "interval" (time-based), or "none" (page cache only). On shutdown the
// commit queue is drained and the WAL synced after the HTTP listener
// stops. Mutually exclusive with -disk, -shards, and -remote-shards;
// uots_ingest_* series on /metrics account the write path.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"uots"
	"uots/internal/core"
	"uots/internal/diskstore"
	"uots/internal/index"
	"uots/internal/ingest"
	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/rpc"
	"uots/internal/server"
	"uots/internal/shard"
	"uots/internal/trajdb"
)

func main() {
	data := flag.String("data", "dataset", "dataset path prefix (expects <prefix>.graph and <prefix>.trajs)")
	addr := flag.String("addr", ":8080", "listen address")
	disk := flag.String("disk", "", "serve from a disk-resident store file instead of loading trajectories into memory")
	cache := flag.Int("cache", 0, "disk-store LRU buffer budget in bytes (0 = 64 MiB default)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request search deadline (0 disables; expiry answers 503)")
	maxInflight := flag.Int("max-inflight", 64, "max concurrent search weight before shedding with 429 (0 = unlimited)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "max request body bytes (oversized bodies answer 413)")
	drain := flag.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	debugAddr := flag.String("debug-addr", "", "private listener for /debug/pprof/ and a /metrics mirror (empty = disabled)")
	traceDepth := flag.Int("trace-depth", 0, "recent traced requests kept for /debug/trace (0 = default)")
	slowQueryMS := flag.Float64("slow-query-ms", 0, "capture /search and /batch requests at or above this many milliseconds for /debug/slow (0 disables)")
	slowQueryDepth := flag.Int("slow-query-depth", 0, "slow queries retained by the flight recorder (0 = default)")
	logRequests := flag.Bool("log-requests", false, "log one line per request, tagged with its request ID")
	shards := flag.Int("shards", 1, "serve the default search from this many store shards (1 = monolithic)")
	partition := flag.String("partition", "hash", "shard partitioner: hash or region")
	cacheSize := flag.Int("cache-size", 0, "sharded result-cache capacity in entries (0 disables; needs -shards > 1)")
	remoteShards := flag.String("remote-shards", "", "route the default search to remote uotsshard replica groups: 'a,b;c,d' (';' partitions, ',' replicas)")
	rpcTimeout := flag.Duration("rpc-timeout", 2*time.Second, "per-attempt deadline for remote shard calls (0 = caller deadline only)")
	rpcRetries := flag.Int("rpc-retries", 3, "total attempts per remote shard call before the partition counts as faulted")
	hedgeDelay := flag.Duration("hedge-delay", 0, "duplicate a remote call on a second replica after this tail-latency delay (0 disables)")
	probeInterval := flag.Duration("probe-interval", 5*time.Second, "background health-probe period for remote replicas (0 disables)")
	rpcPartial := flag.String("rpc-partial", "fail", "dead remote partition policy: fail (query errors) or degrade (serve survivors)")
	ingestMode := flag.Bool("ingest", false, "enable the live write path (POST /trajectories) backed by a write-ahead log")
	walDir := flag.String("wal-dir", "", "directory holding the ingest WAL (required with -ingest; replayed on boot)")
	fsyncPolicy := flag.String("fsync", "always", "ingest WAL durability point: always, interval, or none")
	landmarksK := flag.Int("landmarks", 0, "build this many ALT landmarks plus a per-trajectory pruning index for every search engine (0 disables)")
	flag.Parse()

	if *ingestMode {
		if *disk != "" || *shards > 1 || *remoteShards != "" {
			fatal(errors.New("-ingest is mutually exclusive with -disk, -shards, and -remote-shards"))
		}
		if *walDir == "" {
			fatal(errors.New("-ingest requires -wal-dir"))
		}
	}

	gf, err := os.Open(*data + ".graph")
	if err != nil {
		fatal(err)
	}
	g, err := uots.ReadGraph(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}

	var store core.TrajStore
	var vocab *uots.Vocab
	var memStore *trajdb.Store // in-memory dataset, the ingest boot snapshot
	if *disk != "" {
		ds, err := diskstore.Open(*disk, g, *cache)
		if err != nil {
			fatal(err)
		}
		defer ds.Close()
		store, vocab = ds, ds.Vocab()
		log.Printf("serving disk-resident store %s (buffer %d bytes)", *disk, ds.CacheBytes())
	} else {
		tf, err := os.Open(*data + ".trajs")
		if err != nil {
			fatal(err)
		}
		db, err := uots.ReadStore(tf, g)
		tf.Close()
		if err != nil {
			fatal(err)
		}
		store, vocab = db, db.Vocab()
		memStore = db
	}

	// -landmarks K builds the pruning index once over the boot store and
	// threads it into every engine (monolithic, per-shard rebuilds, and
	// the ingest snapshot path, which keeps it extended incrementally).
	engineOpts := core.Options{}
	var indexBuildSecs float64
	if *landmarksK > 0 {
		start := time.Now()
		lm := roadnet.NewLandmarks(g, *landmarksK, 0)
		engineOpts.Index = index.NewTrajBounds(store, lm)
		indexBuildSecs = time.Since(start).Seconds()
		log.Printf("uotsserve: pruning index ready (%d landmarks, %d trajectories, %.2fs)",
			lm.Count(), engineOpts.Index.NumTrajectories(), indexBuildSecs)
	}
	// indexObs registers the uots_index_* instruments on the serving
	// registry and backfills the boot-time events (index build, sidecar
	// warm start vs rebuild scan).
	indexObs := func(reg *obs.Registry) *obs.IndexMetrics {
		m := obs.NewIndexMetrics(reg)
		if ds, ok := store.(*diskstore.Store); ok {
			m.RecordOpen(ds.WarmStart())
		}
		if engineOpts.Index != nil {
			m.RecordBuild(engineOpts.Index.Landmarks().Count(),
				engineOpts.Index.NumTrajectories(), indexBuildSecs)
		}
		return m
	}

	// In live-ingest mode engines are resolved per request from the
	// service's MVCC snapshot cache; the fixed boot engine stays nil.
	var engine *core.Engine
	if !*ingestMode {
		engine, err = core.NewEngine(store, engineOpts)
		if err != nil {
			fatal(err)
		}
	}
	cfg := server.Config{
		Timeout:            *timeout,
		MaxInFlight:        *maxInflight,
		MaxBodyBytes:       *maxBody,
		TraceDepth:         *traceDepth,
		SlowQueryThreshold: time.Duration(*slowQueryMS * float64(time.Millisecond)),
		SlowQueryDepth:     *slowQueryDepth,
	}
	if *logRequests {
		cfg.Logger = log.Default()
	}
	if *remoteShards != "" && *shards > 1 {
		fatal(errors.New("-remote-shards and -shards are mutually exclusive"))
	}
	if *remoteShards != "" {
		var partial shard.PartialPolicy
		switch *rpcPartial {
		case "fail":
			partial = shard.PartialFail
		case "degrade":
			partial = shard.PartialDegrade
		default:
			fatal(fmt.Errorf("unknown -rpc-partial %q (want fail or degrade)", *rpcPartial))
		}
		reg := obs.NewRegistry()
		indexObs(reg)
		m := rpc.NewMetrics(reg)
		gcfg := rpc.GroupConfig{
			CallTimeout:   *rpcTimeout,
			MaxAttempts:   *rpcRetries,
			HedgeDelay:    *hedgeDelay,
			ProbeInterval: *probeInterval,
		}
		var groups []*rpc.Group
		for i, partSpec := range strings.Split(*remoteShards, ";") {
			var bases []string
			for _, b := range strings.Split(partSpec, ",") {
				b = strings.TrimSpace(b)
				if b == "" {
					continue
				}
				if !strings.Contains(b, "://") {
					b = "http://" + b
				}
				bases = append(bases, b)
			}
			g, err := rpc.NewGroup(bases, gcfg, m)
			if err != nil {
				fatal(fmt.Errorf("remote partition %d: %w", i, err))
			}
			groups = append(groups, g)
		}
		remote, err := shard.NewRemoteExecutor(groups, shard.RemoteConfig{
			Global:  engine,
			Partial: partial,
			Metrics: reg,
		})
		if err != nil {
			fatal(err)
		}
		defer remote.Close()
		cfg.Metrics = reg
		cfg.Searcher = remote
		log.Printf("uotsserve: remote search over %d partitions (%s; retries=%d timeout=%s hedge=%s probe=%s)",
			len(groups), partial, *rpcRetries, *rpcTimeout, *hedgeDelay, *probeInterval)
	}
	if *shards > 1 {
		part, ok := shard.PartitionerByName(*partition)
		if !ok {
			fatal(fmt.Errorf("unknown partitioner %q (want hash or region)", *partition))
		}
		// One registry feeds both the HTTP instruments and the per-shard
		// uots_shard_* counters, so /metrics shows the whole picture.
		reg := obs.NewRegistry()
		indexObs(reg)
		sharded, err := shard.NewEngine(store, engineOpts, shard.Config{
			Shards:      *shards,
			Partitioner: part,
			CacheSize:   *cacheSize,
			Metrics:     reg,
		})
		if err != nil {
			fatal(err)
		}
		defer sharded.Close()
		cfg.Metrics = reg
		cfg.Searcher = sharded
		log.Printf("uotsserve: sharded search over %d shards (%s partitioning, cache %d entries)",
			sharded.NumShards(), part, *cacheSize)
	}
	var live *ingest.Service
	if *ingestMode {
		pol, err := ingest.ParseFsyncPolicy(*fsyncPolicy)
		if err != nil {
			fatal(err)
		}
		if err := os.MkdirAll(*walDir, 0o755); err != nil {
			fatal(err)
		}
		walPath := filepath.Join(*walDir, "ingest.wal")
		reg := obs.NewRegistry()
		dyn := trajdb.NewDynamicFromStore(memStore)
		svc, err := ingest.Open(dyn, ingest.Config{
			WALPath:      walPath,
			Fsync:        pol,
			Engine:       engineOpts,
			Metrics:      obs.NewIngestMetrics(reg),
			IndexMetrics: indexObs(reg),
		})
		if err != nil {
			fatal(err)
		}
		live = svc
		cfg.Metrics = reg
		cfg.Live = svc
		rec := svc.Recovery()
		log.Printf("uotsserve: live ingest (wal=%s fsync=%s): replayed %d records / %d trajectories (%d truncated tail bytes), %d live",
			walPath, pol, rec.Records, rec.Trajs, rec.TruncatedBytes, dyn.Len())
	}
	if cfg.Metrics == nil {
		// Monolithic path: give the server its registry up front so the
		// uots_index_* boot events appear on /metrics here too.
		reg := obs.NewRegistry()
		indexObs(reg)
		cfg.Metrics = reg
	}
	srv := server.NewWithConfig(engine, vocab, nil, cfg)
	log.Printf("uotsserve: %d vertices, %d trajectories, listening on %s (timeout=%s max-inflight=%d)",
		g.NumVertices(), store.NumTrajectories(), *addr, *timeout, *maxInflight)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *debugAddr != "" {
		go serveDebug(ctx, *debugAddr, srv)
	}
	if err := srv.Serve(ctx, *addr, *drain); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	if live != nil {
		// The HTTP listener is down; drain queued commits and sync the
		// WAL so nothing acknowledged rides only in memory.
		if err := live.Close(); err != nil {
			log.Printf("uotsserve: ingest close: %v", err)
		} else {
			log.Printf("uotsserve: ingest drained, WAL synced")
		}
	}
	log.Printf("uotsserve: shut down cleanly")
}

// serveDebug runs the private observability listener: pprof profiling
// endpoints and a /metrics mirror sharing the serving registry. It uses a
// fresh mux — importing net/http/pprof only for its handler funcs keeps
// the profiling routes off http.DefaultServeMux and off the public
// listener. The listener dies with ctx; a failed debug listener is logged
// but never takes the serving process down.
func serveDebug(ctx context.Context, addr string, srv *server.Server) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", srv.Metrics().Handler())
	dbg := &http.Server{Addr: addr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		<-ctx.Done()
		dbg.Close()
	}()
	log.Printf("uotsserve: debug listener (pprof, metrics) on %s", addr)
	if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("uotsserve: debug listener failed: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uotsserve:", err)
	os.Exit(1)
}
