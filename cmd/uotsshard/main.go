// Command uotsshard serves one partition of a dataset written by
// uotsdgen as a remote shard server for uotsserve's -remote-shards
// router (the internal/rpc wire protocol).
//
// Usage:
//
//	uotsshard -data dataset -addr 127.0.0.1:0 -shard 0 -shards 2
//	          [-partition hash -drain 10s]
//
// The process loads the full dataset, derives partition -shard of
// -shards with the named partitioner — the same derivation the router
// uses, which is the topology contract that makes shard-local answers
// mergeable — and serves that piece's engine over HTTP:
//
//	POST /rpc/v1/search      one search, any variant (gob)
//	POST /rpc/v1/batch       a whole query batch (gob)
//	GET  /rpc/v1/health      shard identity + liveness (gob)
//	GET  /metrics            Prometheus text exposition
//	GET  /debug/trace/{id}   this shard's span of a sampled request (JSON)
//
// A request the router sampled (the client sent "X-Trace: 1") carries
// its trace ID on the wire; this shard retains its half of the trace
// under that ID, so the same /debug/trace/{id} key works hop by hop
// across the fleet.
//
// The actual listen address is printed to stdout as
// "uotsshard: listening on HOST:PORT" — with -addr :0 that line is how
// scripts learn the kernel-assigned port. On SIGINT/SIGTERM the server
// stops accepting, gives in-flight requests up to -drain, then exits 0.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"uots"
	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/rpc"
	"uots/internal/shard"
)

func main() {
	data := flag.String("data", "dataset", "dataset path prefix (expects <prefix>.graph and <prefix>.trajs)")
	addr := flag.String("addr", "127.0.0.1:0", "listen address (port 0 = kernel-assigned, printed on stdout)")
	shardIdx := flag.Int("shard", 0, "partition index served by this process")
	shards := flag.Int("shards", 1, "total partition count of the topology")
	partition := flag.String("partition", "hash", "shard partitioner: hash or region (must match the router)")
	drain := flag.Duration("drain", 10*time.Second, "grace period for in-flight requests on shutdown")
	flag.Parse()

	gf, err := os.Open(*data + ".graph")
	if err != nil {
		fatal(err)
	}
	g, err := uots.ReadGraph(gf)
	gf.Close()
	if err != nil {
		fatal(err)
	}
	tf, err := os.Open(*data + ".trajs")
	if err != nil {
		fatal(err)
	}
	db, err := uots.ReadStore(tf, g)
	tf.Close()
	if err != nil {
		fatal(err)
	}

	part, ok := shard.PartitionerByName(*partition)
	if !ok {
		fatal(fmt.Errorf("unknown partitioner %q (want hash or region)", *partition))
	}
	engine, globals, err := shard.BuildShardEngine(db, core.Options{}, part, *shards, *shardIdx)
	if err != nil {
		fatal(err)
	}
	ss, err := rpc.NewShardServer(engine, globals, *shardIdx, *shards)
	if err != nil {
		fatal(err)
	}

	reg := obs.NewRegistry()
	mux := http.NewServeMux()
	mux.Handle("/", ss.Handler())
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("GET /debug/trace/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		rec, ok := ss.Traces().Get(id)
		if !ok {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": "no trace recorded for id " + id})
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{
			"id":      id,
			"shard":   *shardIdx,
			"events":  rec.Events(),
			"dropped": rec.Dropped(),
		})
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Stdout, not the log: scripts parse this line for the actual port.
	fmt.Printf("uotsshard: listening on %s\n", ln.Addr())
	log.Printf("uotsshard: shard %d/%d (%s partitioning, %d of %d trajectories) on %s",
		*shardIdx, *shards, part, len(globals), db.NumTrajectories(), ln.Addr())

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case <-ctx.Done():
		dctx, cancel := context.WithTimeout(context.Background(), *drain)
		err := srv.Shutdown(dctx)
		cancel()
		if err != nil {
			srv.Close() // drain window expired: cancel the stragglers
		}
	}
	log.Printf("uotsshard: shut down cleanly")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uotsshard:", err)
	os.Exit(1)
}
