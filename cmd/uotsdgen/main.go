// Command uotsdgen generates a synthetic dataset — a city road network
// shaped like one of the paper's evaluation cities plus a keyword-annotated
// trajectory corpus — and writes it to disk in the library's binary
// formats (<out>.graph and <out>.trajs, readable with uots.ReadGraph and
// uots.ReadStore).
//
// Usage:
//
//	uotsdgen -city brn -scale 0.5 -trajs 50000 -out data/beijing
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"uots"
)

func main() {
	city := flag.String("city", "brn", "city shape: brn (sparse) or nrn (dense)")
	scale := flag.Float64("scale", 0.5, "city size relative to the published network")
	trajs := flag.Int("trajs", 50000, "number of trajectories")
	mean := flag.Int("mean", 72, "mean samples per trajectory")
	topics := flag.Int("topics", 12, "keyword topics")
	terms := flag.Int("terms", 80, "terms per topic")
	seed := flag.Uint64("seed", 1, "generation seed")
	out := flag.String("out", "dataset", "output path prefix")
	flag.Parse()

	var g *uots.Graph
	switch *city {
	case "brn":
		g = uots.BRNLike(*scale, *seed)
	case "nrn":
		g = uots.NRNLike(*scale, *seed)
	default:
		fatal(fmt.Errorf("unknown city %q (want brn or nrn)", *city))
	}
	vocab := uots.GenerateVocab(*topics, *terms, 1.0, *seed^0x5bf0f3a9)
	db, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
		Count:       *trajs,
		MeanSamples: *mean,
		Vocab:       vocab,
		Seed:        *seed ^ 0x243f6a88,
	})
	if err != nil {
		fatal(err)
	}

	if dir := filepath.Dir(*out); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fatal(err)
		}
	}
	if err := writeFile(*out+".graph", func(f *os.File) error { return uots.WriteGraph(f, g) }); err != nil {
		fatal(err)
	}
	if err := writeFile(*out+".trajs", func(f *os.File) error { return uots.WriteStore(f, db) }); err != nil {
		fatal(err)
	}
	st := db.Stats()
	fmt.Printf("wrote %s.graph (%d vertices, %d edges) and %s.trajs (%d trajectories, avg %.1f samples, avg %.1f keywords)\n",
		*out, g.NumVertices(), g.NumEdges(), *out, st.Trajectories, st.AvgSamples, st.AvgKeywords)
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("writing %s: %w", path, err)
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uotsdgen:", err)
	os.Exit(1)
}
