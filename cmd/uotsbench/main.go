// Command uotsbench regenerates the evaluation: every table and figure of
// the reproduced paper, as aligned text tables on stdout.
//
// Usage:
//
//	uotsbench [-profile small|medium|full] [-exp all|settings|pruning|...]
//	          [-metrics-out metrics.json]
//
// Profiles scale the datasets to the host; the experiment set and
// expected result shapes are documented in EXPERIMENTS.md. Interrupting
// the run (SIGINT/SIGTERM) cancels the in-flight experiment's searches
// and exits promptly.
//
// -metrics-out writes a machine-readable JSON snapshot of the run's
// uots_bench_* work counters and latency histograms (per algorithm
// configuration) next to the human-readable tables, for regression
// tracking across runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"uots/internal/experiments"
	"uots/internal/obs"
)

func main() {
	profile := flag.String("profile", "medium", "dataset scale: small, medium or full")
	exp := flag.String("exp", "all", "experiment to run (name or ID), or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	metricsOut := flag.String("metrics-out", "", "write a JSON metrics snapshot of the run to this file ('-' = stdout)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-12s %s\n", e.ID, e.Name, e.Desc)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var reg *obs.Registry
	if *metricsOut != "" {
		reg = obs.NewRegistry()
		ctx = experiments.WithMetrics(ctx, reg)
	}

	p, err := experiments.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if *exp == "all" {
		if err := experiments.RunAll(ctx, os.Stdout, p); err != nil {
			fatal(err)
		}
	} else {
		e, err := experiments.ByName(*exp)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("=== %s %s — %s ===\n\n", e.ID, e.Name, e.Desc)
		if err := e.Run(ctx, os.Stdout, p); err != nil {
			fatal(err)
		}
	}
	if reg != nil {
		if err := writeMetrics(*metricsOut, reg); err != nil {
			fatal(err)
		}
	}
}

// writeMetrics dumps the registry snapshot as indented JSON.
func writeMetrics(path string, reg *obs.Registry) error {
	raw, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(raw)
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uotsbench:", err)
	os.Exit(1)
}
