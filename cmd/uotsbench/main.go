// Command uotsbench regenerates the evaluation: every table and figure of
// the reproduced paper, as aligned text tables on stdout.
//
// Usage:
//
//	uotsbench [-profile small|medium|full] [-exp all|settings|pruning|...]
//	          [-metrics-out metrics.json]
//
// Profiles scale the datasets to the host; the experiment set and
// expected result shapes are documented in EXPERIMENTS.md. Interrupting
// the run (SIGINT/SIGTERM) cancels the in-flight experiment's searches
// and exits promptly.
//
// -metrics-out writes a machine-readable JSON snapshot of the run's
// uots_bench_* work counters and latency histograms (per algorithm
// configuration) next to the human-readable tables, for regression
// tracking across runs. The snapshot is taken once at exit and flushed
// on every exit path — a run that fails or is interrupted partway still
// writes what it measured.
//
// Running one of the distributed-fleet experiments alone (-exp F10, F11
// or F12, by ID or name) additionally writes a BENCH_<ID>.json
// trajectory file — {"experiment", "profile", "metrics"} wrapping the
// same snapshot — into -bench-dir (default the working directory),
// unless -metrics-out already captures the run. These files are the
// committed baselines regression tooling diffs against; the flush
// shares every exit-path guarantee of -metrics-out.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"

	"uots/internal/experiments"
	"uots/internal/obs"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	os.Exit(code)
}

// run is main minus the process globals (signal wiring, exit), so tests
// can drive every exit path. The named return lets the deferred metrics
// flush both see the run's outcome and fail the process itself.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("uotsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	profile := fs.String("profile", "medium", "dataset scale: small, medium or full")
	exp := fs.String("exp", "all", "experiment to run (name or ID), or 'all'")
	list := fs.Bool("list", false, "list experiments and exit")
	metricsOut := fs.String("metrics-out", "", "write a JSON metrics snapshot of the run to this file ('-' = stdout)")
	benchDir := fs.String("bench-dir", ".", "directory receiving the default BENCH_<ID>.json files of single F10-F12 runs")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Fprintf(stdout, "%-4s %-12s %s\n", e.ID, e.Name, e.Desc)
		}
		return 0
	}
	var reg *obs.Registry
	switch {
	case *metricsOut != "":
		reg = obs.NewRegistry()
		ctx = experiments.WithMetrics(ctx, reg)
		// Deferred, not sequenced after the run: the snapshot must land
		// even when an experiment fails or the run is interrupted.
		defer func() {
			if err := writeMetrics(*metricsOut, stdout, reg); err != nil {
				fmt.Fprintln(stderr, "uotsbench:", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	case benchExperimentID(*exp) != "":
		id := benchExperimentID(*exp)
		path := filepath.Join(*benchDir, "BENCH_"+id+".json")
		reg = obs.NewRegistry()
		ctx = experiments.WithMetrics(ctx, reg)
		defer func() {
			if err := writeBench(path, id, *profile, reg); err != nil {
				fmt.Fprintln(stderr, "uotsbench:", err)
				if code == 0 {
					code = 1
				}
				return
			}
			fmt.Fprintf(stdout, "\nwrote %s\n", path)
		}()
	}

	p, err := experiments.ProfileByName(*profile)
	if err != nil {
		fmt.Fprintln(stderr, "uotsbench:", err)
		return 1
	}
	if *exp == "all" {
		if err := experiments.RunAll(ctx, stdout, p); err != nil {
			fmt.Fprintln(stderr, "uotsbench:", err)
			return 1
		}
		return 0
	}
	e, err := experiments.ByName(*exp)
	if err != nil {
		fmt.Fprintln(stderr, "uotsbench:", err)
		return 1
	}
	fmt.Fprintf(stdout, "=== %s %s — %s ===\n\n", e.ID, e.Name, e.Desc)
	if err := e.Run(ctx, stdout, p); err != nil {
		fmt.Fprintln(stderr, "uotsbench:", err)
		return 1
	}
	return 0
}

// benchExperimentID resolves exp (name or ID) to its experiment ID when
// it is one of the distributed-fleet experiments that emit a
// BENCH_<ID>.json baseline by default, and "" otherwise.
func benchExperimentID(exp string) string {
	e, err := experiments.ByName(exp)
	if err != nil {
		return ""
	}
	switch e.ID {
	case "F10", "F11", "F12", "F13":
		return e.ID
	}
	return ""
}

// writeBench writes the committed-baseline trajectory file: the run's
// registry snapshot wrapped with the experiment and profile that
// produced it, so a diff against a checked-in BENCH_<ID>.json is
// self-describing.
func writeBench(path, experiment, profile string, reg *obs.Registry) error {
	var snap bytes.Buffer
	if err := experiments.WriteSnapshot(&snap, reg); err != nil {
		return err
	}
	out, err := json.MarshalIndent(map[string]json.RawMessage{
		"experiment": json.RawMessage(fmt.Sprintf("%q", experiment)),
		"profile":    json.RawMessage(fmt.Sprintf("%q", profile)),
		"metrics":    json.RawMessage(bytes.TrimSpace(snap.Bytes())),
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}

// writeMetrics dumps the registry snapshot to path ('-' = stdout).
func writeMetrics(path string, stdout io.Writer, reg *obs.Registry) error {
	if path == "-" {
		return experiments.WriteSnapshot(stdout, reg)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := experiments.WriteSnapshot(f, reg); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
