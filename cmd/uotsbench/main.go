// Command uotsbench regenerates the evaluation: every table and figure of
// the reproduced paper, as aligned text tables on stdout.
//
// Usage:
//
//	uotsbench [-profile small|medium|full] [-exp all|settings|pruning|...]
//
// Profiles scale the datasets to the host; the experiment set and
// expected result shapes are documented in EXPERIMENTS.md. Interrupting
// the run (SIGINT/SIGTERM) cancels the in-flight experiment's searches
// and exits promptly.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"uots/internal/experiments"
)

func main() {
	profile := flag.String("profile", "medium", "dataset scale: small, medium or full")
	exp := flag.String("exp", "all", "experiment to run (name or ID), or 'all'")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %-12s %s\n", e.ID, e.Name, e.Desc)
		}
		return
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	p, err := experiments.ProfileByName(*profile)
	if err != nil {
		fatal(err)
	}
	if *exp == "all" {
		if err := experiments.RunAll(ctx, os.Stdout, p); err != nil {
			fatal(err)
		}
		return
	}
	e, err := experiments.ByName(*exp)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("=== %s %s — %s ===\n\n", e.ID, e.Name, e.Desc)
	if err := e.Run(ctx, os.Stdout, p); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uotsbench:", err)
	os.Exit(1)
}
