package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlushesMetricsOnErrorExit is the regression for the lost
// snapshot: a run that fails partway must still write -metrics-out
// (previously the error path exited before the flush).
func TestRunFlushesMetricsOnErrorExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-exp", "no-such-experiment", "-metrics-out", path}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown experiment should exit non-zero")
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr = %q, want the unknown-experiment error", stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics snapshot not written on error exit: %v", err)
	}
	var snap any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, raw)
	}
}

func TestRunFlushesMetricsToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-profile", "bogus", "-metrics-out", "-"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown profile should exit non-zero")
	}
	var snap any
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatalf("stdout snapshot is not valid JSON: %v\n%s", err, stdout.String())
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, want := range []string{"T1", "F10", "sharding"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}
