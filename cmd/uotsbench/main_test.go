package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunFlushesMetricsOnErrorExit is the regression for the lost
// snapshot: a run that fails partway must still write -metrics-out
// (previously the error path exited before the flush).
func TestRunFlushesMetricsOnErrorExit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-exp", "no-such-experiment", "-metrics-out", path}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown experiment should exit non-zero")
	}
	if !strings.Contains(stderr.String(), "unknown experiment") {
		t.Fatalf("stderr = %q, want the unknown-experiment error", stderr.String())
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("metrics snapshot not written on error exit: %v", err)
	}
	var snap any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, raw)
	}
}

func TestRunFlushesMetricsToStdout(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-profile", "bogus", "-metrics-out", "-"}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown profile should exit non-zero")
	}
	var snap any
	if err := json.Unmarshal(stdout.Bytes(), &snap); err != nil {
		t.Fatalf("stdout snapshot is not valid JSON: %v\n%s", err, stdout.String())
	}
}

// TestRunEmitsBenchBaseline: a single F10-F12 run with no -metrics-out
// writes BENCH_<ID>.json into -bench-dir, wrapping the metrics snapshot
// with the experiment and profile that produced it.
func TestRunEmitsBenchBaseline(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-exp", "sharding", "-profile", "small", "-bench-dir", dir}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("F10 run exited %d: %s", code, stderr.String())
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_F10.json"))
	if err != nil {
		t.Fatalf("BENCH_F10.json not written: %v", err)
	}
	var bench struct {
		Experiment string `json:"experiment"`
		Profile    string `json:"profile"`
		Metrics    []any  `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatalf("BENCH_F10.json is not valid JSON: %v\n%s", err, raw)
	}
	if bench.Experiment != "F10" || bench.Profile != "small" {
		t.Errorf("bench header = %q/%q, want F10/small", bench.Experiment, bench.Profile)
	}
	if len(bench.Metrics) == 0 {
		t.Error("bench metrics snapshot is empty")
	}
	if !strings.Contains(stdout.String(), "BENCH_F10.json") {
		t.Error("stdout does not mention the written baseline")
	}
}

// TestRunBenchFlushesOnErrorExit mirrors the -metrics-out guarantee: a
// failed F10-F12 run still writes its baseline with what it measured.
func TestRunBenchFlushesOnErrorExit(t *testing.T) {
	dir := t.TempDir()
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-exp", "F12", "-profile", "bogus", "-bench-dir", dir}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown profile should exit non-zero")
	}
	raw, err := os.ReadFile(filepath.Join(dir, "BENCH_F12.json"))
	if err != nil {
		t.Fatalf("BENCH_F12.json not written on error exit: %v", err)
	}
	var snap any
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatalf("baseline is not valid JSON: %v\n%s", err, raw)
	}
}

// TestRunMetricsOutSupersedesBench: an explicit -metrics-out captures
// the run; no BENCH file appears.
func TestRunMetricsOutSupersedesBench(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "metrics.json")
	var stdout, stderr bytes.Buffer
	code := run(t.Context(), []string{"-exp", "F11", "-profile", "bogus", "-bench-dir", dir, "-metrics-out", path}, &stdout, &stderr)
	if code == 0 {
		t.Fatal("unknown profile should exit non-zero")
	}
	if _, err := os.Stat(path); err != nil {
		t.Errorf("-metrics-out not written: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_F11.json")); err == nil {
		t.Error("BENCH_F11.json written despite -metrics-out")
	}
}

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(t.Context(), []string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d: %s", code, stderr.String())
	}
	for _, want := range []string{"T1", "F10", "sharding"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}
