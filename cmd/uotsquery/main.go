// Command uotsquery answers a single UOTS query against a dataset written
// by uotsdgen, printing the recommended trajectories with their score
// decomposition.
//
// Query locations are given either as vertex IDs (-loc "120,3456") or as
// planar coordinates in kilometres snapped to the nearest vertices
// (-at "3.5,4.1;7.0,2.2"). Keywords are free text (-keywords
// "t0_kw1 t0_kw2" — for generated datasets the vocabulary uses
// t<topic>_kw<rank> naming).
//
// Usage:
//
//	uotsquery -data dataset -loc 120,3456 -keywords "t0_kw1 t0_kw2" -lambda 0.5 -k 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"uots"
)

func main() {
	data := flag.String("data", "dataset", "dataset path prefix (expects <prefix>.graph and <prefix>.trajs)")
	locStr := flag.String("loc", "", "comma-separated query vertex IDs")
	atStr := flag.String("at", "", "semicolon-separated planar coordinates x,y (km), snapped to nearest vertices")
	keywords := flag.String("keywords", "", "travel-intention keywords (free text)")
	lambda := flag.Float64("lambda", 0.5, "spatial/textual preference λ in [0,1]")
	k := flag.Int("k", 5, "number of trajectories to recommend")
	algo := flag.String("algo", "expansion", "algorithm: expansion, exhaustive or textfirst")
	window := flag.String("window", "", "optional departure window HH:MM-HH:MM")
	geojson := flag.String("geojson", "", "write the result trajectories as GeoJSON to this file")
	flag.Parse()

	g, db := load(*data)
	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		fatal(err)
	}

	q := uots.Query{Lambda: *lambda, K: *k}
	if *locStr != "" {
		for _, part := range strings.Split(*locStr, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad vertex id %q: %w", part, err))
			}
			q.Locations = append(q.Locations, uots.VertexID(id))
		}
	}
	if *atStr != "" {
		idx := uots.NewVertexIndex(g, 0)
		for _, part := range strings.Split(*atStr, ";") {
			xy := strings.Split(part, ",")
			if len(xy) != 2 {
				fatal(fmt.Errorf("bad coordinate %q (want x,y)", part))
			}
			x, errX := strconv.ParseFloat(strings.TrimSpace(xy[0]), 64)
			y, errY := strconv.ParseFloat(strings.TrimSpace(xy[1]), 64)
			if errX != nil || errY != nil {
				fatal(fmt.Errorf("bad coordinate %q", part))
			}
			v, d := idx.Nearest(uots.Point{X: x, Y: y})
			fmt.Printf("snapped (%.2f, %.2f) to vertex %d (%.0f m away)\n", x, y, v, d*1000)
			q.Locations = append(q.Locations, v)
		}
	}
	if vocab := db.Vocab(); vocab != nil && *keywords != "" {
		q.Keywords = vocab.InternAll(uots.Tokenize(*keywords))
	}

	var results []uots.Result
	var stats uots.SearchStats
	switch *algo {
	case "expansion":
		if *window != "" {
			w, err := parseWindow(*window)
			if err != nil {
				fatal(err)
			}
			results, stats, err = engine.SearchWindowed(q, w)
			if err != nil {
				fatal(err)
			}
		} else {
			results, stats, err = engine.Search(q)
		}
	case "exhaustive":
		results, stats, err = engine.ExhaustiveSearch(q)
	case "textfirst":
		results, stats, err = engine.TextFirstSearch(q, uots.TextFirstOptions{})
	default:
		err = fmt.Errorf("unknown algorithm %q", *algo)
	}
	if err != nil {
		fatal(err)
	}

	if *geojson != "" && len(results) > 0 {
		ids := make([]uots.TrajID, len(results))
		for i, r := range results {
			ids[i] = r.Traj
		}
		f, err := os.Create(*geojson)
		if err != nil {
			fatal(err)
		}
		if err := uots.ExportGeoJSON(f, db, ids...); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d result trajectories to %s\n", len(ids), *geojson)
	}

	fmt.Printf("\n%d result(s) in %v (visited %d trajectories, %d candidates scored)\n\n",
		len(results), stats.Elapsed, stats.VisitedTrajectories, stats.Candidates)
	for rank, r := range results {
		traj := db.Traj(r.Traj)
		fmt.Printf("#%d trajectory %d  score=%.4f (spatial %.4f, textual %.4f)\n",
			rank+1, r.Traj, r.Score, r.Spatial, r.Textual)
		fmt.Printf("    departs %s, %d samples, keywords: %s\n",
			clock(traj.Start()), traj.Len(), keywordNames(db, r.Traj))
		for i, d := range r.Dists {
			fmt.Printf("    d(o%d, τ) = %.2f km\n", i+1, d)
		}
	}
}

func load(prefix string) (*uots.Graph, *uots.Store) {
	gf, err := os.Open(prefix + ".graph")
	if err != nil {
		fatal(err)
	}
	defer gf.Close()
	g, err := uots.ReadGraph(gf)
	if err != nil {
		fatal(err)
	}
	tf, err := os.Open(prefix + ".trajs")
	if err != nil {
		fatal(err)
	}
	defer tf.Close()
	db, err := uots.ReadStore(tf, g)
	if err != nil {
		fatal(err)
	}
	return g, db
}

func parseWindow(s string) (uots.TimeWindow, error) {
	parts := strings.Split(s, "-")
	if len(parts) != 2 {
		return uots.TimeWindow{}, fmt.Errorf("bad window %q (want HH:MM-HH:MM)", s)
	}
	from, err := parseClock(parts[0])
	if err != nil {
		return uots.TimeWindow{}, err
	}
	to, err := parseClock(parts[1])
	if err != nil {
		return uots.TimeWindow{}, err
	}
	return uots.TimeWindow{From: from, To: to}, nil
}

func parseClock(s string) (float64, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	if len(parts) != 2 {
		return 0, fmt.Errorf("bad time %q (want HH:MM)", s)
	}
	h, errH := strconv.Atoi(parts[0])
	m, errM := strconv.Atoi(parts[1])
	if errH != nil || errM != nil || h < 0 || h > 23 || m < 0 || m > 59 {
		return 0, fmt.Errorf("bad time %q", s)
	}
	return float64(h*3600 + m*60), nil
}

func clock(seconds float64) string {
	s := int(seconds)
	return fmt.Sprintf("%02d:%02d", s/3600, s%3600/60)
}

func keywordNames(db *uots.Store, id uots.TrajID) string {
	vocab := db.Vocab()
	if vocab == nil {
		return "(none)"
	}
	var names []string
	for _, t := range db.Keywords(id) {
		if name, ok := vocab.Term(t); ok {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return "(none)"
	}
	return strings.Join(names, ", ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "uotsquery:", err)
	os.Exit(1)
}
