// Command uotsvet runs the project's contract analyzers. Use it as a
// vet tool (go vet -vettool=bin/uotsvet ./...) or standalone
// (bin/uotsvet ./...); `uotsvet help` prints the contract docs.
package main

import (
	"uots/internal/analysis/driver"
	"uots/internal/analysis/uotsvet"
)

func main() {
	driver.Main(uotsvet.Analyzers())
}
