# Development targets. `make check` is the pre-merge gate: vet, the
# project's own contract analyzers (uotsvet), and the full test suite
# under the race detector.

GO ?= go

.PHONY: build vet lint test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint builds the project's analyzer suite and runs it over every
# package through go vet's vettool protocol. See CONTRIBUTING.md for
# the enforced contracts and the //uots:allow escape hatch.
lint:
	$(GO) build -o bin/uotsvet ./cmd/uotsvet
	$(GO) vet -vettool=$(CURDIR)/bin/uotsvet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

check: vet lint race
