# Development targets. `make check` is the pre-merge gate: vet plus the
# full test suite under the race detector.

GO ?= go

.PHONY: build vet test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

check: vet race
