# Development targets. `make check` is the pre-merge gate: vet, the
# project's own contract analyzers (uotsvet), and the full test suite
# under the race detector.

GO ?= go

.PHONY: build vet lint lint-audit wire-schema test race bench check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint builds the project's analyzer suite and runs it over every
# package through go vet's vettool protocol. See CONTRIBUTING.md for
# the enforced contracts and the //uots:allow escape hatch.
lint:
	$(GO) build -o bin/uotsvet ./cmd/uotsvet
	$(GO) vet -vettool=$(CURDIR)/bin/uotsvet ./...

# lint-audit runs the analyzers in standalone mode with the
# unused-allows audit: every //uots:allow directive must still suppress
# a diagnostic, or the target fails and the directive must be pruned.
lint-audit:
	$(GO) build -o bin/uotsvet ./cmd/uotsvet
	./bin/uotsvet -unused-allows ./...

# wire-schema regenerates internal/rpc/wire_schema.golden from the
# compiled wire structs. Run it only for a deliberate wire change, and
# commit the golden diff (wirecompat and TestWireSchemaGolden fail
# until you do).
wire-schema:
	cd internal/rpc && $(GO) test -run TestWireSchemaGolden -args -update-wire-schema

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

check: vet lint lint-audit race
