// Benchmarks regenerating the paper's evaluation, one per table/figure
// (see DESIGN.md §5 and EXPERIMENTS.md). Each benchmark measures per-query
// cost under one workload cell and reports the paper's auxiliary metric —
// visited trajectories per query — via ReportMetric. The uotsbench command
// prints the same numbers as full tables at larger profiles.
package uots_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"uots/internal/core"
	"uots/internal/diskstore"
	"uots/internal/experiments"
)

// benchWorld returns the small-profile BRN-like dataset (cached across
// benchmarks within the process).
func benchWorld(b *testing.B) *experiments.Dataset {
	b.Helper()
	p := experiments.SmallProfile()
	ds, err := experiments.BuildCached(p.BRNSpec(0))
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchEngine(b *testing.B, ds *experiments.Dataset, cfg experiments.AlgoConfig) *core.Engine {
	b.Helper()
	opts := cfg.Opts
	if cfg.Kind == core.AlgoExpansion && !cfg.NoLandmarks {
		opts.Landmarks = ds.Landmarks()
	}
	e, err := core.NewEngine(ds.Store, opts)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// runQueries cycles the workload through b.N iterations and reports the
// mean visited-trajectory count.
func runQueries(b *testing.B, e *core.Engine, cfg experiments.AlgoConfig, ds *experiments.Dataset, queries []core.Query, theta float64) {
	b.Helper()
	visited := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		var stats core.SearchStats
		var err error
		switch {
		case theta > 0 && cfg.Kind == core.AlgoExpansion:
			_, stats, err = e.SearchThreshold(q, theta)
		case theta > 0 && cfg.Kind == core.AlgoExhaustive:
			_, stats, err = e.ExhaustiveThreshold(q, theta)
		case cfg.Kind == core.AlgoExhaustive:
			_, stats, err = e.ExhaustiveSearch(q)
		case cfg.Kind == core.AlgoTextFirst:
			_, stats, err = e.TextFirstSearch(q, core.TextFirstOptions{Landmarks: ds.Landmarks()})
		default:
			_, stats, err = e.Search(q)
		}
		if err != nil {
			b.Fatal(err)
		}
		visited += stats.VisitedTrajectories
	}
	b.ReportMetric(float64(visited)/float64(b.N), "visited/query")
}

// benchCell runs one (algorithm, query-spec) cell as a sub-benchmark.
func benchCell(b *testing.B, spec experiments.QuerySpec, cfg experiments.AlgoConfig, theta float64) {
	ds := benchWorld(b)
	queries := experiments.GenQueries(ds, spec, 8)
	e := benchEngine(b, ds, cfg)
	runQueries(b, e, cfg, ds, queries, theta)
}

func algoPair() []experiments.AlgoConfig {
	all := experiments.DefaultAlgos()
	return []experiments.AlgoConfig{all[0], all[3]} // expansion vs exhaustive
}

// BenchmarkPruningEffectiveness regenerates table T2: the four standing
// algorithm configurations at default settings.
func BenchmarkPruningEffectiveness(b *testing.B) {
	for _, cfg := range experiments.DefaultAlgos() {
		b.Run(cfg.Name, func(b *testing.B) {
			benchCell(b, experiments.DefaultQuerySpec(), cfg, 0)
		})
	}
}

// BenchmarkCardinality regenerates figure F1: runtime vs corpus size.
func BenchmarkCardinality(b *testing.B) {
	p := experiments.SmallProfile()
	for _, frac := range []float64{0.25, 0.5, 1.0} {
		trajs := int(frac * float64(p.BRNTrajs))
		ds, err := experiments.BuildCached(p.BRNSpec(trajs))
		if err != nil {
			b.Fatal(err)
		}
		for _, cfg := range algoPair() {
			b.Run(fmt.Sprintf("T=%d/%s", trajs, cfg.Name), func(b *testing.B) {
				queries := experiments.GenQueries(ds, experiments.DefaultQuerySpec(), 8)
				e := benchEngine(b, ds, cfg)
				runQueries(b, e, cfg, ds, queries, 0)
			})
		}
	}
}

// BenchmarkQueryLocations regenerates figure F2: runtime vs |O|.
func BenchmarkQueryLocations(b *testing.B) {
	for _, nLoc := range []int{1, 4, 8} {
		for _, cfg := range algoPair() {
			b.Run(fmt.Sprintf("O=%d/%s", nLoc, cfg.Name), func(b *testing.B) {
				spec := experiments.DefaultQuerySpec()
				spec.Locations = nLoc
				benchCell(b, spec, cfg, 0)
			})
		}
	}
}

// BenchmarkLambda regenerates figure F3: runtime vs preference λ.
func BenchmarkLambda(b *testing.B) {
	for _, lambda := range []float64{0.1, 0.5, 0.9} {
		for _, cfg := range algoPair() {
			b.Run(fmt.Sprintf("lambda=%.1f/%s", lambda, cfg.Name), func(b *testing.B) {
				spec := experiments.DefaultQuerySpec()
				spec.Lambda = lambda
				benchCell(b, spec, cfg, 0)
			})
		}
	}
}

// BenchmarkTopK regenerates figure F4: runtime vs k.
func BenchmarkTopK(b *testing.B) {
	for _, k := range []int{1, 10, 50} {
		for _, cfg := range algoPair() {
			b.Run(fmt.Sprintf("k=%d/%s", k, cfg.Name), func(b *testing.B) {
				spec := experiments.DefaultQuerySpec()
				spec.K = k
				benchCell(b, spec, cfg, 0)
			})
		}
	}
}

// BenchmarkKeywords regenerates figure F5: runtime vs |ψ|.
func BenchmarkKeywords(b *testing.B) {
	for _, kw := range []int{1, 4, 8} {
		for _, cfg := range algoPair() {
			b.Run(fmt.Sprintf("kw=%d/%s", kw, cfg.Name), func(b *testing.B) {
				spec := experiments.DefaultQuerySpec()
				spec.Keywords = kw
				benchCell(b, spec, cfg, 0)
			})
		}
	}
}

// BenchmarkWorkers regenerates figure F6: batch wall clock vs worker count
// (shape limited by the host's core count, recorded in EXPERIMENTS.md).
func BenchmarkWorkers(b *testing.B) {
	ds := benchWorld(b)
	queries := experiments.GenQueries(ds, experiments.DefaultQuerySpec(), 32)
	e := benchEngine(b, ds, experiments.DefaultAlgos()[0])
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("m=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := e.SearchBatch(context.Background(), queries,
					core.BatchOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(queries)), "queries/op")
		})
	}
}

// BenchmarkThreshold regenerates figure F7: runtime vs threshold θ
// (threshold query variant).
func BenchmarkThreshold(b *testing.B) {
	for _, theta := range []float64{0.6, 0.8, 0.9} {
		for _, cfg := range algoPair() {
			b.Run(fmt.Sprintf("theta=%.1f/%s", theta, cfg.Name), func(b *testing.B) {
				benchCell(b, experiments.DefaultQuerySpec(), cfg, theta)
			})
		}
	}
}

// BenchmarkScheduling regenerates table T3: the source-scheduling and
// probe ablations.
func BenchmarkScheduling(b *testing.B) {
	cfgs := []experiments.AlgoConfig{
		{Name: "heuristic", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleHeuristic}},
		{Name: "minradius", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleMinRadius}},
		{Name: "roundrobin", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleRoundRobin}},
		{Name: "no-probe", Kind: core.AlgoExpansion, Opts: core.Options{DisableTextProbe: true}},
		{Name: "no-landmarks", Kind: core.AlgoExpansion, NoLandmarks: true},
	}
	for _, cfg := range cfgs {
		b.Run(cfg.Name, func(b *testing.B) {
			benchCell(b, experiments.DefaultQuerySpec(), cfg, 0)
		})
	}
}

// BenchmarkDiskResident regenerates figure F8: the expansion search over
// the disk-resident store at two buffer budgets, against the in-memory
// rows of BenchmarkPruningEffectiveness.
func BenchmarkDiskResident(b *testing.B) {
	ds := benchWorld(b)
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.dsk")
	if err := diskstore.Create(path, ds.Store); err != nil {
		b.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	for _, frac := range []float64{1.0, 0.05} {
		b.Run(fmt.Sprintf("buffer=%.0f%%", frac*100), func(b *testing.B) {
			disk, err := diskstore.Open(path, ds.Graph, int(frac*float64(info.Size())))
			if err != nil {
				b.Fatal(err)
			}
			defer disk.Close()
			e, err := core.NewEngine(disk, core.Options{Landmarks: ds.Landmarks()})
			if err != nil {
				b.Fatal(err)
			}
			// Textual-leaning workload: the pure expansion search is
			// index-only, so payload I/O appears on the probe paths,
			// which small λ exercises (see EXPERIMENTS.md F8).
			spec := experiments.DefaultQuerySpec()
			spec.Lambda = 0.2
			queries := experiments.GenQueries(ds, spec, 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := e.Search(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
			st := disk.Stats()
			if st.Loads > 0 {
				b.ReportMetric(float64(st.Hits)/float64(st.Loads), "hit-rate")
			}
		})
	}
}

// BenchmarkSettings regenerates table T1's cost side: dataset construction
// itself (city generation + trajectory synthesis + index build).
func BenchmarkSettings(b *testing.B) {
	p := experiments.SmallProfile()
	b.Run("build-BRN-like", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spec := p.BRNSpec(0)
			spec.Seed = uint64(i + 1000) // defeat the cache: measure real builds
			if _, err := spec.Build(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
