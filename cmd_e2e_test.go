package uots_test

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCommandLineTools builds the real binaries and drives the dataset →
// query → serve pipeline end to end, the way a downstream user would.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, name := range []string{"uotsdgen", "uotsquery", "uotsserve"} {
		out, err := exec.Command("go", "build", "-o", bin(name), "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}

	// Generate a small dataset.
	data := filepath.Join(dir, "world")
	out, err := exec.Command(bin("uotsdgen"),
		"-city", "brn", "-scale", "0.1", "-trajs", "500", "-mean", "15", "-out", data).CombinedOutput()
	if err != nil {
		t.Fatalf("uotsdgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wrote") {
		t.Fatalf("uotsdgen output: %s", out)
	}
	for _, suffix := range []string{".graph", ".trajs"} {
		if _, err := os.Stat(data + suffix); err != nil {
			t.Fatalf("missing %s: %v", suffix, err)
		}
	}

	// Query it, with GeoJSON export.
	gj := filepath.Join(dir, "results.json")
	out, err = exec.Command(bin("uotsquery"),
		"-data", data, "-at", "1.0,1.0;1.5,1.2", "-keywords", "t0_kw0 t0_kw1",
		"-lambda", "0.5", "-k", "3", "-geojson", gj).CombinedOutput()
	if err != nil {
		t.Fatalf("uotsquery: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "result(s)") || !strings.Contains(string(out), "score=") {
		t.Fatalf("uotsquery output: %s", out)
	}
	raw, err := os.ReadFile(gj)
	if err != nil {
		t.Fatalf("geojson: %v", err)
	}
	var fc struct {
		Features []json.RawMessage `json:"features"`
	}
	if err := json.Unmarshal(raw, &fc); err != nil || len(fc.Features) == 0 {
		t.Fatalf("geojson parse: %v (%d features)", err, len(fc.Features))
	}

	// Serve it and hit the API.
	srv := exec.Command(bin("uotsserve"), "-data", data, "-addr", "127.0.0.1:18931")
	if err := srv.Start(); err != nil {
		t.Fatalf("uotsserve start: %v", err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	var resp *http.Response
	for attempt := 0; attempt < 50; attempt++ {
		resp, err = http.Get("http://127.0.0.1:18931/healthz")
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	searchBody := strings.NewReader(`{"points":[[1.0,1.0]],"keywords":"t0_kw0","k":2}`)
	resp, err = http.Post("http://127.0.0.1:18931/search", "application/json", searchBody)
	if err != nil {
		t.Fatalf("search request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var sr struct {
		Results []struct {
			Trajectory int32   `json:"trajectory"`
			Score      float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("search decode: %v", err)
	}
	if len(sr.Results) != 2 {
		t.Fatalf("search returned %d results", len(sr.Results))
	}
}
