package uots_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestCommandLineTools builds the real binaries and drives the dataset →
// query → serve pipeline end to end, the way a downstream user would.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("CLI end-to-end skipped in -short mode")
	}
	dir := t.TempDir()
	bin := func(name string) string { return filepath.Join(dir, name) }
	for _, name := range []string{"uotsdgen", "uotsquery", "uotsserve"} {
		out, err := exec.Command("go", "build", "-o", bin(name), "./cmd/"+name).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
	}

	// Generate a small dataset.
	data := filepath.Join(dir, "world")
	out, err := exec.Command(bin("uotsdgen"),
		"-city", "brn", "-scale", "0.1", "-trajs", "500", "-mean", "15", "-out", data).CombinedOutput()
	if err != nil {
		t.Fatalf("uotsdgen: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "wrote") {
		t.Fatalf("uotsdgen output: %s", out)
	}
	for _, suffix := range []string{".graph", ".trajs"} {
		if _, err := os.Stat(data + suffix); err != nil {
			t.Fatalf("missing %s: %v", suffix, err)
		}
	}

	// Query it, with GeoJSON export.
	gj := filepath.Join(dir, "results.json")
	out, err = exec.Command(bin("uotsquery"),
		"-data", data, "-at", "1.0,1.0;1.5,1.2", "-keywords", "t0_kw0 t0_kw1",
		"-lambda", "0.5", "-k", "3", "-geojson", gj).CombinedOutput()
	if err != nil {
		t.Fatalf("uotsquery: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "result(s)") || !strings.Contains(string(out), "score=") {
		t.Fatalf("uotsquery output: %s", out)
	}
	raw, err := os.ReadFile(gj)
	if err != nil {
		t.Fatalf("geojson: %v", err)
	}
	var fc struct {
		Features []json.RawMessage `json:"features"`
	}
	if err := json.Unmarshal(raw, &fc); err != nil || len(fc.Features) == 0 {
		t.Fatalf("geojson parse: %v (%d features)", err, len(fc.Features))
	}

	// Serve it and hit the API.
	srv := exec.Command(bin("uotsserve"), "-data", data, "-addr", "127.0.0.1:18931", "-drain", "10s")
	if err := srv.Start(); err != nil {
		t.Fatalf("uotsserve start: %v", err)
	}
	exited := false
	defer func() {
		if !exited {
			srv.Process.Kill()
			srv.Wait()
		}
	}()
	var resp *http.Response
	for attempt := 0; attempt < 50; attempt++ {
		resp, err = http.Get("http://127.0.0.1:18931/healthz")
		if err == nil {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()

	searchBody := strings.NewReader(`{"points":[[1.0,1.0]],"keywords":"t0_kw0","k":2}`)
	resp, err = http.Post("http://127.0.0.1:18931/search", "application/json", searchBody)
	if err != nil {
		t.Fatalf("search request: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	var sr struct {
		Results []struct {
			Trajectory int32   `json:"trajectory"`
			Score      float64 `json:"score"`
		} `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("search decode: %v", err)
	}
	if len(sr.Results) != 2 {
		t.Fatalf("search returned %d results", len(sr.Results))
	}

	// Graceful shutdown: put a large batch in flight, SIGTERM the server
	// mid-request, and verify the in-flight work drains to a full 200
	// response and the process exits 0 (not killed, not erroring out).
	var batch struct {
		Queries []map[string]any `json:"queries"`
	}
	for i := 0; i < 400; i++ {
		batch.Queries = append(batch.Queries, map[string]any{
			"points":   [][2]float64{{1.0, 1.0}, {1.5, 1.2}},
			"keywords": "t0_kw0 t0_kw1",
			"k":        3,
		})
	}
	batchRaw, err := json.Marshal(batch)
	if err != nil {
		t.Fatal(err)
	}
	batchDone := make(chan error, 1)
	var batchStatus int
	go func() {
		resp, err := http.Post("http://127.0.0.1:18931/batch", "application/json", bytes.NewReader(batchRaw))
		if err != nil {
			batchDone <- err
			return
		}
		batchStatus = resp.StatusCode
		_, err = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		batchDone <- err
	}()

	// Wait until /stats shows the batch actually in flight so the SIGTERM
	// demonstrably lands mid-request. If the batch somehow finishes first,
	// the drain assertion degenerates but the clean-exit one still holds.
	waitInFlight := time.Now().Add(10 * time.Second)
poll:
	for {
		select {
		case err := <-batchDone:
			batchDone <- err
			break poll
		default:
		}
		resp, err := http.Get("http://127.0.0.1:18931/stats")
		if err == nil {
			var stats struct {
				Serving struct {
					InFlight int `json:"inFlight"`
				} `json:"serving"`
			}
			decodeErr := json.NewDecoder(resp.Body).Decode(&stats)
			resp.Body.Close()
			if decodeErr == nil && stats.Serving.InFlight > 0 {
				break poll
			}
		}
		if time.Now().After(waitInFlight) {
			t.Fatal("batch never showed up in /stats inFlight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	select {
	case err := <-batchDone:
		if err != nil {
			t.Fatalf("in-flight batch was not drained: %v", err)
		}
		if batchStatus != http.StatusOK {
			t.Fatalf("in-flight batch status %d, want 200", batchStatus)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("in-flight batch never completed after SIGTERM")
	}

	exitc := make(chan error, 1)
	go func() { exitc <- srv.Wait() }()
	select {
	case err := <-exitc:
		exited = true
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}

	// The listener must actually be gone.
	if _, err := http.Get("http://127.0.0.1:18931/healthz"); err == nil {
		t.Fatal("server still answering after shutdown")
	}
}
