package uots_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"uots"
)

// TestFacadeWrappers touches every thin facade constructor and helper so
// the public surface stays wired to the implementation packages.
func TestFacadeWrappers(t *testing.T) {
	g, err := uots.GenerateCity(uots.CityOptions{
		Rows: 8, Cols: 8, Style: uots.StyleDense, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 64 {
		t.Fatalf("city has %d vertices", g.NumVertices())
	}
	if lm := uots.NewLandmarks(g, 4, 0); lm.Count() != 4 {
		t.Errorf("landmarks = %d", lm.Count())
	}
	if got := uots.Tokenize("Market, Food!"); len(got) != 2 {
		t.Errorf("Tokenize = %v", got)
	}
	if got := uots.CollapseRepeats([]uots.VertexID{1, 1, 2}); len(got) != 2 {
		t.Errorf("CollapseRepeats = %v", got)
	}

	vocab := uots.GenerateVocab(2, 10, 1, 3)
	db, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
		Count: 50, MeanSamples: 8, Vocab: vocab, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}

	// CSV round trip through the facade.
	var csvBuf bytes.Buffer
	if err := uots.ExportCSV(&csvBuf, db); err != nil {
		t.Fatal(err)
	}
	back, err := uots.ImportCSV(bytes.NewReader(csvBuf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTrajectories() != db.NumTrajectories() {
		t.Errorf("CSV round trip: %d vs %d", back.NumTrajectories(), db.NumTrajectories())
	}

	// GeoJSON export.
	var gjBuf bytes.Buffer
	if err := uots.ExportGeoJSON(&gjBuf, db, 0); err != nil {
		t.Fatal(err)
	}
	if gjBuf.Len() == 0 {
		t.Error("empty GeoJSON")
	}

	// Disk store through the facade, driving an engine.
	path := filepath.Join(t.TempDir(), "facade.dsk")
	if err := uots.CreateDiskStore(path, db); err != nil {
		t.Fatal(err)
	}
	disk, err := uots.OpenDiskStore(path, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	engine, err := uots.NewEngine(disk, uots.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := engine.Search(uots.Query{Locations: []uots.VertexID{3}, Lambda: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("disk engine results = %d", len(res))
	}

	// ShortestPath helper.
	if _, d, ok := uots.ShortestPath(g, 0, 63); !ok || d <= 0 {
		t.Errorf("ShortestPath = (%g, %v)", d, ok)
	}

	// Matcher construction through the facade.
	m := uots.NewMatcher(g, uots.NewVertexIndex(g, 0), uots.MatchOptions{})
	if _, err := m.Match([]uots.Point{g.Point(0)}); err != nil {
		t.Errorf("Match: %v", err)
	}

	// Dynamic store, route reconstruction and diversified search.
	dyn := uots.NewDynamicStore(g, vocab.Vocab)
	h1, err := dyn.AddWithKeywords([]uots.Sample{{V: 0, T: 100}, {V: 1, T: 200}}, []string{"t0_kw0"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyn.AddWithKeywords([]uots.Sample{{V: 8, T: 300}}, []string{"t1_kw0"}); err != nil {
		t.Fatal(err)
	}
	snap, handles := dyn.Snapshot()
	if snap.NumTrajectories() != 2 || handles[0] != h1 {
		t.Fatalf("snapshot = %d trajectories, handles %v", snap.NumTrajectories(), handles)
	}
	dynEngine, err := uots.NewEngine(snap, uots.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res, _, err := dynEngine.Search(uots.Query{Locations: []uots.VertexID{0}, Lambda: 1, K: 1}); err != nil || len(res) != 1 {
		t.Fatalf("dynamic snapshot search = (%v, %v)", res, err)
	}
	route, dist, err := uots.ReconstructRoute(g, snap.Traj(0), uots.NewBidirectional(g))
	if err != nil || len(route) < 2 || dist <= 0 {
		t.Fatalf("ReconstructRoute = (%v, %g, %v)", route, dist, err)
	}
	full, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		t.Fatal(err)
	}
	div, _, err := full.DiversifiedSearch(uots.Query{Locations: []uots.VertexID{3, 40}, Lambda: 0.8, K: 3},
		uots.DiversifyOptions{Mu: 0.5})
	if err != nil || len(div) == 0 {
		t.Fatalf("DiversifiedSearch = (%d results, %v)", len(div), err)
	}
}
