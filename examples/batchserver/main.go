// Batchserver: the recommendation-service scenario. A provider answers
// many independent UOTS queries against one shared corpus; because each
// search is independent, a fixed pool of worker goroutines processes them
// in parallel — the parallel mechanism the paper's evaluation scales over
// thread counts. The example measures batch wall-clock time for growing
// worker pools and prints the aggregate work counters.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand/v2"
	"runtime"

	"uots"
)

func main() {
	g := uots.NRNLike(0.12, 11) // dense city, ~1.4k vertices
	vocab := uots.GenerateVocab(10, 60, 1.0, 13)
	db, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
		Count:       20000,
		MeanSamples: 40,
		Vocab:       vocab,
		Seed:        17,
	})
	if err != nil {
		log.Fatal(err)
	}
	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// 64 queries from simulated users: clustered locations, topic-matched
	// keywords.
	idx := uots.NewVertexIndex(g, 0)
	rng := rand.New(rand.NewPCG(23, 29))
	queries := make([]uots.Query, 64)
	for i := range queries {
		anchor := uots.VertexID(rng.IntN(g.NumVertices()))
		near := idx.Within(g.Point(anchor), 1.5)
		locs := []uots.VertexID{anchor}
		for len(locs) < 3 && len(near) > 0 {
			locs = append(locs, near[rng.IntN(len(near))])
		}
		topic := rng.IntN(vocab.NumTopics())
		queries[i] = uots.Query{
			Locations: locs,
			Keywords:  vocab.DrawQueryTerms(topic, 3, 0.8, rng),
			Lambda:    0.5,
			K:         5,
		}
	}

	fmt.Printf("host has %d core(s); batch of %d queries over %d trajectories\n\n",
		runtime.NumCPU(), len(queries), db.NumTrajectories())
	for _, workers := range []int{1, 2, 4, 8} {
		results, stats, err := engine.SearchBatch(context.Background(), queries,
			uots.BatchOptions{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		failed := 0
		for _, r := range results {
			if r.Err != nil {
				failed++
			}
		}
		fmt.Printf("m=%d workers: wallclock %8.1fms  (%.2fms/query, %d visited trajectories total, %d failed)\n",
			workers,
			float64(stats.WallClock.Microseconds())/1000,
			float64(stats.WallClock.Microseconds())/1000/float64(len(queries)),
			stats.PerQuery.VisitedTrajectories, failed)
	}
}
