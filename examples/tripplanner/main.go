// Tripplanner: the paper's motivating scenario. A tourist plans a day in
// an unfamiliar city: they know roughly where they want to be (the old
// town and the riverside) and what they want from the day ("market",
// "food", "gallery"). Previous visitors have shared their keyword-tagged
// trips. The UOTS query recommends the shared trips that best match both
// the places and the intent — and sweeping λ shows how the preference
// parameter trades the two off.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"uots"
)

// A shared trip a previous visitor uploaded: where it went (waypoints to
// route through) and how they tagged it.
type sharedTrip struct {
	name      string
	waypoints []uots.Point
	tags      []string
	departure float64 // seconds of day
}

func main() {
	// A dense downtown grid, 3 km × 3 km.
	g, err := uots.GenerateCity(uots.CityOptions{
		Rows: 13, Cols: 13, Spacing: 0.25, Style: uots.StyleDense, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	idx := uots.NewVertexIndex(g, 0)

	trips := []sharedTrip{
		{"old-town food crawl", []uots.Point{{X: 0.5, Y: 0.5}, {X: 1.0, Y: 1.0}, {X: 1.5, Y: 0.8}}, []string{"market", "food", "street-food", "spices"}, hm(10, 30)},
		{"riverside gallery walk", []uots.Point{{X: 1.2, Y: 2.5}, {X: 2.0, Y: 2.8}, {X: 2.8, Y: 2.6}}, []string{"gallery", "art", "river", "coffee"}, hm(11, 0)},
		{"market-to-river day", []uots.Point{{X: 0.6, Y: 0.6}, {X: 1.5, Y: 1.6}, {X: 2.2, Y: 2.6}}, []string{"market", "food", "river", "gallery"}, hm(9, 45)},
		{"shopping loop", []uots.Point{{X: 2.5, Y: 0.5}, {X: 2.9, Y: 1.2}, {X: 2.4, Y: 1.5}}, []string{"mall", "fashion", "shopping"}, hm(13, 15)},
		{"night food tour", []uots.Point{{X: 0.8, Y: 0.4}, {X: 1.2, Y: 0.9}}, []string{"food", "bar", "live-music"}, hm(19, 30)},
		{"museum sprint", []uots.Point{{X: 1.8, Y: 1.8}, {X: 2.1, Y: 2.2}}, []string{"museum", "history", "art"}, hm(14, 0)},
	}

	vocab := uots.NewVocab()
	builder := uots.NewStoreBuilder(g, vocab)
	rng := rand.New(rand.NewPCG(5, 8))
	names := make(map[uots.TrajID]string)
	for _, trip := range trips {
		id, err := builder.AddWithKeywords(routeTrip(g, idx, trip, rng), trip.tags)
		if err != nil {
			log.Fatalf("adding %q: %v", trip.name, err)
		}
		names[id] = trip.name
	}
	db := builder.Freeze()

	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		log.Fatal(err)
	}

	oldTown, _ := idx.Nearest(uots.Point{X: 0.7, Y: 0.7})
	riverside, _ := idx.Nearest(uots.Point{X: 2.2, Y: 2.7})
	query := uots.Query{
		Locations: []uots.VertexID{oldTown, riverside},
		Keywords:  vocab.InternAll(uots.Tokenize("market food gallery")),
		K:         3,
	}

	fmt.Println("visitor intent: old town + riverside, tags: market food gallery")
	for _, lambda := range []float64{0.2, 0.5, 0.8} {
		query.Lambda = lambda
		results, _, err := engine.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nλ = %.1f (%s):\n", lambda, describe(lambda))
		for i, r := range results {
			fmt.Printf("  %d. %-24s score %.3f (spatial %.3f, textual %.3f)\n",
				i+1, names[r.Traj], r.Score, r.Spatial, r.Textual)
		}
	}

	// The extension: only recommend trips departing in the morning.
	query.Lambda = 0.5
	results, _, err := engine.SearchWindowed(query, uots.TimeWindow{From: hm(8, 0), To: hm(12, 0)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndeparting 08:00–12:00 only:")
	for i, r := range results {
		dep := db.Traj(r.Traj).Start()
		fmt.Printf("  %d. %-24s departs %02d:%02d, score %.3f\n",
			i+1, names[r.Traj], int(dep)/3600, int(dep)%3600/60, r.Score)
	}
}

// routeTrip turns waypoints into a map-matched sample sequence: snap each
// waypoint, connect with shortest paths, and timestamp at ~20 km/h.
func routeTrip(g *uots.Graph, idx *uots.VertexIndex, trip sharedTrip, rng *rand.Rand) []uots.Sample {
	var verts []uots.VertexID
	for i, wp := range trip.waypoints {
		v, _ := idx.Nearest(wp)
		if i == 0 {
			verts = append(verts, v)
			continue
		}
		path, _, ok := uots.ShortestPath(g, verts[len(verts)-1], v)
		if !ok {
			continue
		}
		verts = append(verts, path[1:]...)
	}
	samples := make([]uots.Sample, len(verts))
	t := trip.departure
	for i, v := range verts {
		if i > 0 {
			// ~20 km/h with some dwell time at each stop.
			t += 45 + rng.Float64()*30
		}
		samples[i] = uots.Sample{V: v, T: t}
	}
	return samples
}

func describe(lambda float64) string {
	switch {
	case lambda < 0.4:
		return "intent first"
	case lambda > 0.6:
		return "places first"
	default:
		return "balanced"
	}
}

func hm(h, m int) float64 { return float64(h*3600 + m*60) }
