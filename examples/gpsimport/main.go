// Gpsimport: the raw-data ingestion pipeline the paper assumes has already
// happened. A vehicle's noisy GPS trace is map matched onto the road
// network (HMM + Viterbi), timestamped samples are built from the fixes,
// the matched trip is inserted into a trajectory store alongside a
// synthetic corpus — and a query near the trip's route then surfaces it.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"uots"
)

func main() {
	g := uots.BRNLike(0.15, 99)
	idx := uots.NewVertexIndex(g, 0)
	rng := rand.New(rand.NewPCG(3, 141))

	// Ground truth: a real drive along a shortest path across town.
	from, _ := idx.Nearest(uots.Point{X: 1.0, Y: 1.0})
	to, _ := idx.Nearest(uots.Point{X: 4.0, Y: 3.5})
	truth, dist, ok := uots.ShortestPath(g, from, to)
	if !ok {
		log.Fatal("no path between the chosen endpoints")
	}
	fmt.Printf("ground-truth drive: %d vertices, %.2f km\n", len(truth), dist)

	// The GPS receiver reports the drive with ~25 m Gaussian noise.
	fixes := make([]uots.Point, len(truth))
	for i, v := range truth {
		p := g.Point(v)
		fixes[i] = uots.Point{
			X: p.X + rng.NormFloat64()*0.025,
			Y: p.Y + rng.NormFloat64()*0.025,
		}
	}

	// Map matching recovers the vertex sequence.
	matcher := uots.NewMatcher(g, idx, uots.MatchOptions{SigmaKm: 0.025})
	matched, err := matcher.Match(fixes)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i := range matched {
		if matched[i] == truth[i] {
			correct++
		}
	}
	fmt.Printf("map matching: %d/%d fixes snapped to the true vertex (%.1f%%)\n",
		correct, len(truth), 100*float64(correct)/float64(len(truth)))

	// Build the trajectory (09:00 departure, one fix every 30 s) and
	// insert it into a store next to background trips.
	vocab := uots.GenerateVocab(6, 40, 1.0, 5)
	background, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
		Count: 3000, MeanSamples: 25, Vocab: vocab, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	builder := uots.NewStoreBuilder(g, vocab.Vocab)
	for id := 0; id < background.NumTrajectories(); id++ {
		t := background.Traj(uots.TrajID(id))
		if _, err := builder.Add(t.Samples, t.Keywords); err != nil {
			log.Fatal(err)
		}
	}
	samples := make([]uots.Sample, len(matched))
	for i, v := range matched {
		samples[i] = uots.Sample{V: v, T: 9*3600 + float64(i)*30}
	}
	imported, err := builder.Add(samples, vocab.Vocab.InternAll([]string{"t0_kw0", "t0_kw1"}))
	if err != nil {
		log.Fatal(err)
	}
	db := builder.Freeze()

	// A query along the drive's corridor with the same intent finds the
	// imported trip.
	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		log.Fatal(err)
	}
	mid := truth[len(truth)/2]
	results, _, err := engine.Search(uots.Query{
		Locations: []uots.VertexID{from, mid, to},
		Keywords:  vocab.Vocab.InternAll([]string{"t0_kw0", "t0_kw1"}),
		Lambda:    0.5,
		K:         3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntop matches for the corridor query (imported trip is %d):\n", imported)
	for i, r := range results {
		marker := ""
		if r.Traj == imported {
			marker = "   ← the imported GPS trip"
		}
		fmt.Printf("%d. trajectory %-5d score %.4f%s\n", i+1, r.Traj, r.Score, marker)
	}
}
