// Liveupdates: an operational trajectory service. Shared trips arrive and
// expire continuously; the DynamicStore absorbs mutations while queries
// run against consistent dense snapshots, and the diversified search keeps
// the recommendations from being k copies of the same route.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"uots"
)

func main() {
	g := uots.BRNLike(0.15, 21)
	vocab := uots.GenerateVocab(6, 40, 1.0, 22)

	// Seed the service with an initial corpus.
	seed, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
		Count: 2000, MeanSamples: 25, Vocab: vocab, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	dyn := uots.NewDynamicStore(g, vocab.Vocab)
	var handles []uots.ExternalID
	for id := 0; id < seed.NumTrajectories(); id++ {
		t := seed.Traj(uots.TrajID(id))
		h, err := dyn.Add(t.Samples, t.Keywords)
		if err != nil {
			log.Fatal(err)
		}
		handles = append(handles, h)
	}

	idx := uots.NewVertexIndex(g, 0)
	anchor, _ := idx.Nearest(uots.Point{X: 2.5, Y: 2.5})
	near := idx.Within(g.Point(anchor), 1.5)
	query := uots.Query{
		Locations: []uots.VertexID{anchor, near[len(near)/2]},
		Keywords:  vocab.Vocab.InternAll([]string{"t0_kw0", "t0_kw1"}),
		Lambda:    0.6,
		K:         3,
	}

	rng := rand.New(rand.NewPCG(31, 32))
	for epoch := 0; epoch < 3; epoch++ {
		// Mutation burst: 100 new trips arrive, 150 old ones expire.
		fresh, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
			Count: 100, MeanSamples: 25, Vocab: vocab, Seed: uint64(100 + epoch),
		})
		if err != nil {
			log.Fatal(err)
		}
		for id := 0; id < fresh.NumTrajectories(); id++ {
			t := fresh.Traj(uots.TrajID(id))
			h, err := dyn.Add(t.Samples, t.Keywords)
			if err != nil {
				log.Fatal(err)
			}
			handles = append(handles, h)
		}
		for i := 0; i < 150 && len(handles) > 0; i++ {
			j := rng.IntN(len(handles))
			dyn.Remove(handles[j])
			handles[j] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		}

		// Queries see a consistent snapshot of the current epoch.
		snap, mapping := dyn.Snapshot()
		engine, err := uots.NewEngine(snap, uots.Options{})
		if err != nil {
			log.Fatal(err)
		}
		plain, _, err := engine.Search(query)
		if err != nil {
			log.Fatal(err)
		}
		diverse, _, err := engine.DiversifiedSearch(query, uots.DiversifyOptions{Mu: 0.5})
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("epoch %d: %d live trips\n", epoch, dyn.Len())
		fmt.Printf("  plain top-3:      ")
		printRow(plain, mapping)
		fmt.Printf("  diversified top-3:")
		printRow(diverse, mapping)
	}
}

func printRow(rs []uots.Result, mapping []uots.ExternalID) {
	for _, r := range rs {
		fmt.Printf("  trip#%-5d (%.3f)", mapping[r.Traj], r.Score)
	}
	fmt.Println()
}
