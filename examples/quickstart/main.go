// Quickstart: generate a small city and trajectory corpus, run one UOTS
// query, and print the recommended trips — the minimal end-to-end use of
// the public API.
package main

import (
	"fmt"
	"log"

	"uots"
)

func main() {
	// A sparse Beijing-like city at 15% scale (~600 vertices).
	g := uots.BRNLike(0.15, 42)

	// A topic-structured keyword universe and 5,000 synthetic trips.
	vocab := uots.GenerateVocab(8, 50, 1.0, 7)
	db, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
		Count:       5000,
		MeanSamples: 30,
		Vocab:       vocab,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// The user intends to visit two places (snapped from coordinates) and
	// describes the trip with keywords from topic 0.
	idx := uots.NewVertexIndex(g, 0)
	a, _ := idx.Nearest(uots.Point{X: 2.0, Y: 2.0})
	b, _ := idx.Nearest(uots.Point{X: 2.8, Y: 2.4})
	query := uots.Query{
		Locations: []uots.VertexID{a, b},
		Keywords:  vocab.Vocab.InternAll([]string{"t0_kw0", "t0_kw1", "t0_kw2"}),
		Lambda:    0.5, // balance spatial closeness and textual intent
		K:         3,
	}

	results, stats, err := engine.Search(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top %d of %d trajectories (%.2fms, %d visited, %d scored exactly):\n",
		len(results), db.NumTrajectories(),
		float64(stats.Elapsed.Microseconds())/1000, stats.VisitedTrajectories, stats.Candidates)
	for i, r := range results {
		fmt.Printf("%d. trajectory %-5d score %.4f  (spatial %.4f, textual %.4f)\n",
			i+1, r.Traj, r.Score, r.Spatial, r.Textual)
	}
}
