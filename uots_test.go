package uots_test

import (
	"bytes"
	"math"
	"testing"

	"uots"
)

// TestPublicAPIEndToEnd drives the whole system through the facade only:
// generate a world, build an engine, query it, round-trip it through the
// binary formats, and query again.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := uots.BRNLike(0.1, 42)
	if g.NumVertices() == 0 || !g.IsConnected() {
		t.Fatal("generated city is unusable")
	}
	vocab := uots.GenerateVocab(6, 30, 1.0, 7)
	db, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
		Count: 800, MeanSamples: 15, Vocab: vocab, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := uots.NewVertexIndex(g, 0)
	a, _ := idx.Nearest(uots.Point{X: 1, Y: 1})
	c, _ := idx.Nearest(uots.Point{X: 1.5, Y: 1.2})
	q := uots.Query{
		Locations: []uots.VertexID{a, c},
		Keywords:  vocab.Vocab.InternAll([]string{"t0_kw0", "t0_kw1"}),
		Lambda:    0.5,
		K:         5,
	}
	res, stats, err := engine.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	if stats.VisitedTrajectories == 0 {
		t.Error("no work recorded")
	}
	// The expansion result must agree with the exhaustive baseline.
	want, _, err := engine.ExhaustiveSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if math.Abs(res[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("rank %d: %g vs %g", i, res[i].Score, want[i].Score)
		}
	}

	// Serialization round trip through the facade.
	var gbuf, tbuf bytes.Buffer
	if err := uots.WriteGraph(&gbuf, g); err != nil {
		t.Fatal(err)
	}
	if err := uots.WriteStore(&tbuf, db); err != nil {
		t.Fatal(err)
	}
	g2, err := uots.ReadGraph(&gbuf)
	if err != nil {
		t.Fatal(err)
	}
	db2, err := uots.ReadStore(&tbuf, g2)
	if err != nil {
		t.Fatal(err)
	}
	engine2, err := uots.NewEngine(db2, uots.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, _, err := engine2.Search(q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res {
		if res[i].Traj != res2[i].Traj || math.Abs(res[i].Score-res2[i].Score) > 1e-9 {
			t.Fatalf("round-tripped engine disagrees at rank %d", i)
		}
	}
}

// TestPublicAPIMapMatchPipeline drives the GPS ingestion path through the
// facade: noisy trace → matcher → store → search finds the trip.
func TestPublicAPIMapMatchPipeline(t *testing.T) {
	g := uots.NRNLike(0.06, 5)
	idx := uots.NewVertexIndex(g, 0)
	from, _ := idx.Nearest(uots.Point{X: 0.5, Y: 0.5})
	to, _ := idx.Nearest(uots.Point{X: 3.5, Y: 3.5})
	truth, _, ok := uots.ShortestPath(g, from, to)
	if !ok {
		t.Fatal("no path")
	}
	fixes := make([]uots.Point, len(truth))
	for i, v := range truth {
		fixes[i] = g.Point(v)
	}
	matcher := uots.NewMatcher(g, idx, uots.MatchOptions{})
	matched, err := matcher.Match(fixes)
	if err != nil {
		t.Fatal(err)
	}
	vocab := uots.NewVocab()
	builder := uots.NewStoreBuilder(g, vocab)
	samples := make([]uots.Sample, len(matched))
	for i, v := range matched {
		samples[i] = uots.Sample{V: v, T: 8*3600 + float64(i)*20}
	}
	id, err := builder.AddWithKeywords(samples, uots.Tokenize("morning commute, riverside"))
	if err != nil {
		t.Fatal(err)
	}
	db := builder.Freeze()
	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := engine.Search(uots.Query{
		Locations: []uots.VertexID{from, to},
		Keywords:  vocab.InternAll([]string{"commute"}),
		Lambda:    0.7,
		K:         1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Traj != id {
		t.Fatalf("pipeline did not surface the imported trip: %+v", res)
	}
	if res[0].Spatial < 0.99 {
		t.Errorf("imported trip spatial score %g, want ≈ 1", res[0].Spatial)
	}
	if collapsed := uots.CollapseRepeats(matched); len(collapsed) > len(matched) {
		t.Error("CollapseRepeats grew the sequence")
	}
}

// TestPublicAPIWindowAndOrderExtensions exercises the two documented
// extensions through the facade.
func TestPublicAPIWindowAndOrderExtensions(t *testing.T) {
	g := uots.BRNLike(0.1, 9)
	vocab := uots.GenerateVocab(4, 20, 1.0, 3)
	db, err := uots.GenerateTrajectories(g, uots.TrajGenOptions{
		Count: 500, MeanSamples: 12, Vocab: vocab, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := uots.NewEngine(db, uots.Options{})
	if err != nil {
		t.Fatal(err)
	}
	q := uots.Query{Locations: []uots.VertexID{10, 40}, Lambda: 0.8, K: 3}
	win := uots.TimeWindow{From: 6 * 3600, To: 14 * 3600}
	res, _, err := engine.SearchWindowed(q, win)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if start := db.Traj(r.Traj).Start(); !win.Contains(start) {
			t.Errorf("windowed result departs at %g", start)
		}
	}
	ores, _, err := engine.OrderAwareSearch(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(ores) == 0 {
		t.Fatal("order-aware search returned nothing")
	}
	for _, r := range ores {
		plain, err := engine.Evaluate(q, r.Traj)
		if err != nil {
			t.Fatal(err)
		}
		if r.Spatial > plain.Spatial+1e-9 {
			t.Errorf("order-aware spatial %g exceeds unordered %g", r.Spatial, plain.Spatial)
		}
	}
}
