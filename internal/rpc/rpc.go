// Package rpc takes the sharded scatter-gather over the network: it
// promotes the per-shard core.Engines of internal/shard to remote shard
// servers behind a dependency-free transport (gob request/response
// bodies over net/http), and gives the client side the robustness
// machinery a networked scatter needs — per-call deadlines, capped
// exponential backoff with seeded jitter, bounded retries on the
// (idempotent) search reads, hedged requests after a tail-latency
// delay, and replica groups per partition with health-checked failover.
//
// The wire contract preserves the repo's determinism bar: gob encodes
// float64 scores and distances bit-exactly (including the +Inf used for
// unreachable query locations, which JSON cannot carry), responses carry
// trajectory IDs already remapped to the global corpus, and the
// core.SharedBound k-th-score exchange flows as piggybacked bound
// values — requests carry the client's best known global bound as a
// pruning hint, responses carry the shard's final local threshold back.
// Because the bound only ever affects *pruning work*, never which
// results survive (see core.SharedBound), distributed answers stay
// byte-identical to the monolithic engine regardless of retry, hedge,
// or failover timing.
//
// Failures map onto the existing shard policy: every wire error carries
// a machine-readable code (see the Code* constants), the client decodes
// codes back into the canonical sentinel errors (core.ErrStoreFault,
// context.Canceled, context.DeadlineExceeded), and an exhausted replica
// group surfaces as an error wrapping core.ErrStoreFault — so
// shard.PartialFail / shard.PartialDegrade handle a dead partition
// exactly as they handle an injected *trajdb.StoreError today.
package rpc

import (
	"context"
	"errors"
	"fmt"

	"uots/internal/core"
)

// Wire error codes. Every error that crosses the transport carries one;
// the client maps codes back onto the canonical in-process errors so
// errors.Is keeps working across the network.
const (
	// CodeStoreFault marks a shard-side trajectory-store failure
	// (core.ErrStoreFault). Definitive: retrying the same replica would
	// re-read the same broken store.
	CodeStoreFault = "store_fault"
	// CodeCanceled marks a search aborted by context cancellation on the
	// server (normally because the client went away).
	CodeCanceled = "canceled"
	// CodeDeadline marks a search that exceeded its deadline server-side.
	CodeDeadline = "deadline_exceeded"
	// CodeBadQuery marks a query the engine rejected (validation).
	// Definitive: every replica would reject it identically.
	CodeBadQuery = "bad_query"
	// CodeInternal marks an unexpected server-side failure. Treated as
	// transport-class by the client: another replica may be healthy.
	CodeInternal = "internal_error"
)

// Error is the coded error envelope every non-200 response body carries.
// It implements error so servers can return it directly.
type Error struct {
	Code string
	Msg  string
}

// Error implements error.
func (e *Error) Error() string { return fmt.Sprintf("rpc: %s: %s", e.Code, e.Msg) }

// TransportError wraps a failure of the transport itself — a dial
// failure, a broken connection, an undecodable response, a per-attempt
// timeout — as opposed to a definitive answer from the shard engine.
// Transport errors are retryable on another replica and count against
// the failing replica's error budget; coded engine errors are neither.
type TransportError struct {
	Replica string // base URL of the replica that failed
	Err     error
}

// Error implements error.
func (e *TransportError) Error() string {
	return fmt.Sprintf("rpc: transport to %s: %v", e.Replica, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *TransportError) Unwrap() error { return e.Err }

// IsTransient reports whether err is a transport-class failure worth
// retrying on another replica (and worth counting against the failing
// replica's error budget). Coded internal errors (a server-side panic)
// count too: another replica may well be healthy.
func IsTransient(err error) bool {
	var te *TransportError
	if errors.As(err, &te) {
		return true
	}
	var we *Error
	return errors.As(err, &we) && we.Code == CodeInternal
}

// ErrGroupExhausted is wrapped (together with core.ErrStoreFault) around
// the last transport error when every retry and failover attempt against
// a replica group failed. Wrapping core.ErrStoreFault makes an
// unreachable partition a shard-level store fault for the scatter-gather
// policy layer: PartialFail fails the query, PartialDegrade drops the
// partition from the merge.
var ErrGroupExhausted = errors.New("rpc: replica group exhausted")

// errorToCode maps a shard-engine error onto its wire code.
func errorToCode(err error) string {
	switch {
	case errors.Is(err, core.ErrStoreFault):
		return CodeStoreFault
	case errors.Is(err, context.Canceled):
		return CodeCanceled
	case errors.Is(err, context.DeadlineExceeded):
		return CodeDeadline
	default:
		return CodeBadQuery
	}
}

// codeToError maps a wire code back onto the canonical in-process error,
// preserving errors.Is identities across the network.
func codeToError(code, msg string) error {
	switch code {
	case CodeStoreFault:
		return fmt.Errorf("%w: remote shard: %s", core.ErrStoreFault, msg)
	case CodeCanceled:
		return fmt.Errorf("remote shard: %s: %w", msg, context.Canceled)
	case CodeDeadline:
		return fmt.Errorf("remote shard: %s: %w", msg, context.DeadlineExceeded)
	default:
		return &Error{Code: code, Msg: msg}
	}
}
