package rpc

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
)

// maxErrorBody caps how much of an error response the client reads while
// looking for the coded envelope; anything bigger is a broken peer.
const maxErrorBody = 1 << 16

// Client speaks the shard wire protocol to one replica. It is a thin,
// stateless codec around an *http.Client — retries, hedging, and health
// tracking live in Group, one level up. Safe for concurrent use.
type Client struct {
	base string // "http://host:port", no trailing slash
	hc   *http.Client
}

// NewClient builds a client for the replica at base (scheme://host:port).
// hc is the HTTP client to use; nil uses a private client with default
// transport settings (connection pooling, keep-alives). Per-call
// deadlines come from the caller's context, not from hc.Timeout — Group
// manages attempt timeouts explicitly so hedged calls share one clock.
func NewClient(base string, hc *http.Client) *Client {
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	if hc == nil {
		hc = &http.Client{}
	}
	return &Client{base: base, hc: hc}
}

// Base returns the replica's base URL (the identity used in metrics
// labels and error messages).
func (c *Client) Base() string { return c.base }

// do posts one gob-encoded request and decodes the response into out.
// Failures of the transport itself come back as *TransportError;
// a coded envelope decodes into the canonical error it names; the
// caller's own context error takes precedence over both.
func (c *Client) do(ctx context.Context, path string, in, out any) error {
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(in); err != nil {
		return fmt.Errorf("rpc: encoding %T: %w", in, err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, &body)
	if err != nil {
		return fmt.Errorf("rpc: building request: %w", err)
	}
	hreq.Header.Set("Content-Type", ContentType)
	hres, err := c.hc.Do(hreq)
	if err != nil {
		// The caller's context outranks the transport: a cancelled or
		// expired attempt is the caller's outcome, not the replica's
		// fault.
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return &TransportError{Replica: c.base, Err: err}
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return c.decodeError(hres)
	}
	if err := gob.NewDecoder(hres.Body).Decode(out); err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		return &TransportError{Replica: c.base, Err: fmt.Errorf("decoding %T: %w", out, err)}
	}
	return nil
}

// decodeError extracts the coded envelope from a non-200 response; a
// response without one (a proxy error page, a truncated body) is a
// transport failure.
func (c *Client) decodeError(hres *http.Response) error {
	var we Error
	if err := gob.NewDecoder(io.LimitReader(hres.Body, maxErrorBody)).Decode(&we); err != nil || we.Code == "" {
		return &TransportError{Replica: c.base,
			Err: fmt.Errorf("status %d with no coded envelope", hres.StatusCode)}
	}
	return codeToError(we.Code, we.Msg)
}

// Search runs one search request against the replica.
func (c *Client) Search(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	var resp SearchResponse
	if err := c.do(ctx, PathSearch, &req, &resp); err != nil {
		return SearchResponse{}, err
	}
	return resp, nil
}

// Batch runs one batch request against the replica.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var resp BatchResponse
	if err := c.do(ctx, PathBatch, &req, &resp); err != nil {
		return BatchResponse{}, err
	}
	return resp, nil
}

// Health probes the replica, returning its identity on success.
func (c *Client) Health(ctx context.Context) (HealthResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+PathHealth, nil)
	if err != nil {
		return HealthResponse{}, fmt.Errorf("rpc: building request: %w", err)
	}
	hres, err := c.hc.Do(hreq)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return HealthResponse{}, cerr
		}
		return HealthResponse{}, &TransportError{Replica: c.base, Err: err}
	}
	defer hres.Body.Close()
	if hres.StatusCode != http.StatusOK {
		return HealthResponse{}, c.decodeError(hres)
	}
	var resp HealthResponse
	if err := gob.NewDecoder(hres.Body).Decode(&resp); err != nil {
		return HealthResponse{}, &TransportError{Replica: c.base, Err: fmt.Errorf("decoding health: %w", err)}
	}
	return resp, nil
}
