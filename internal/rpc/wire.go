package rpc

import (
	"uots/internal/core"
	"uots/internal/obs"
)

// Transport constants shared by client and server.
const (
	// ContentType tags gob-encoded request and response bodies. Gob (not
	// JSON) because search results carry float64 scores and distances
	// that must round-trip bit-exactly — including the +Inf distance of
	// an unreachable query location, which JSON rejects outright.
	ContentType = "application/x-uots-gob"

	// PathSearch serves one search (any variant) over the replica's
	// shard.
	PathSearch = "/rpc/v1/search"
	// PathBatch serves a whole query batch over the replica's shard.
	PathBatch = "/rpc/v1/batch"
	// PathHealth is the liveness/identity probe.
	PathHealth = "/rpc/v1/health"
)

// Search variants carried in SearchRequest.Variant. They mirror the five
// core.Engine entry points the sharded executor scatters.
const (
	VariantSearch      = "search"
	VariantThreshold   = "threshold"
	VariantWindowed    = "windowed"
	VariantOrderAware  = "orderaware"
	VariantDiversified = "diversified"
)

// SearchRequest is the wire form of one scattered shard search. Exactly
// one variant's auxiliary field is meaningful, selected by Variant.
type SearchRequest struct {
	// Variant selects the engine entry point (Variant* constants).
	Variant string
	// Query is the search itself. Keyword term IDs are meaningful only
	// when client and server were built from the same vocabulary — the
	// topology contract is that every node loads the same dataset.
	Query core.Query
	// Theta is the score bar of VariantThreshold.
	Theta float64
	// Window is the departure filter of VariantWindowed.
	Window core.TimeWindow
	// Div are the re-ranking options of VariantDiversified.
	Div core.DiversifyOptions
	// Bound is the client's best known global k-th-score lower bound at
	// send time (0 = none). The shard seeds its core.SharedBound with it
	// so a late, retried, or hedged call starts pruning at the level the
	// rest of the scatter already reached. A pruning hint only: results
	// are identical with or without it.
	Bound float64
	// Trace asks the shard to run this search under a TraceRecorder and
	// return the recorded span in the response envelope, extending the
	// caller's trace across the wire. Tracing never changes results.
	Trace bool
	// TraceID is the parent trace's request ID. The shard retains its
	// local span under it (GET /debug/trace/{id} on the shard's debug
	// mux), so a cross-node trace can be inspected hop by hop.
	TraceID string
}

// SearchResponse is the wire form of one shard's answer.
type SearchResponse struct {
	// Results carry trajectory IDs remapped to the global corpus — the
	// shard-local numbering never crosses the wire.
	Results []core.Result
	// Stats is the shard-side work accounting.
	Stats core.SearchStats
	// Bound is the shard's final local k-th threshold (0 = none), the
	// piggybacked update the client folds into its scatter-wide
	// core.SharedBound.
	Bound float64
	// Span is the shard-side trace replay, present only when the request
	// set Trace. Events carry the shard engine's step ordinals; the
	// client replays them into the parent trace as a child span.
	Span []obs.SpanEvent
	// SpanDropped is the number of shard-side span events lost over the
	// shard recorder's limit (the replay also ends with a synthetic
	// obs.TraceTruncated marker when non-zero).
	SpanDropped int
}

// BatchOptions is the wire-safe subset of core.BatchOptions. Remote
// batches are expansion-only: the text-first baseline is tuned with an
// in-process landmark index (core.TextFirstOptions.Landmarks) that
// cannot cross the wire, and the RemoteExecutor rejects it before
// scattering.
type BatchOptions struct {
	Workers         int
	SharedExpansion bool
}

// Core expands the wire options back into the engine's batch options.
func (o BatchOptions) Core() core.BatchOptions {
	return core.BatchOptions{
		Workers:         o.Workers,
		Algorithm:       core.AlgoExpansion,
		SharedExpansion: o.SharedExpansion,
	}
}

// BatchRequest is the wire form of a whole-batch scatter: the shard runs
// every query (sharing expansion frontiers per BatchOptions) and answers
// per slot.
type BatchRequest struct {
	Queries []core.Query
	Opts    BatchOptions
	// Trace and TraceID mirror SearchRequest: the shard runs the whole
	// batch under one TraceRecorder (batch workers share it) and returns
	// the span in the response envelope.
	Trace   bool
	TraceID string
}

// BatchEntry is one query's outcome within a batch response. Errors
// cross the wire as (code, message) pairs — core.BatchResult.Err is an
// interface gob cannot carry — and the client rebuilds canonical errors
// with codeToError.
type BatchEntry struct {
	Index   int
	Results []core.Result // global trajectory IDs
	Stats   core.SearchStats
	ErrCode string // empty on success
	ErrMsg  string
}

// Err rebuilds the entry's canonical error: nil when the entry
// succeeded, otherwise the coded envelope decoded back into the
// sentinel-preserving error codeToError produces.
func (e BatchEntry) Err() error {
	if e.ErrCode == "" {
		return nil
	}
	return codeToError(e.ErrCode, e.ErrMsg)
}

// BatchResponse is the wire form of a shard's batch answer.
type BatchResponse struct {
	Entries []BatchEntry
	Stats   core.BatchStats
	// Span and SpanDropped mirror SearchResponse (one shared recorder
	// for the whole batch, so cross-query event order is scheduling-
	// dependent — per-query order is not).
	Span        []obs.SpanEvent
	SpanDropped int
}

// HealthResponse answers the probe endpoint.
type HealthResponse struct {
	Status string // "ok"
	Shard  int    // partition index i
	Shards int    // partition count N
	Trajs  int    // trajectories served by this shard (0 = empty shard)
}
