package rpc

import (
	"math/rand/v2"
	"time"
)

// BackoffConfig is a capped-exponential retry schedule with proportional
// jitter. The schedule is a pure function of (attempt, rng) — no wall
// clock, no hidden state — so tests drive it with a seeded rng and
// assert exact delays.
type BackoffConfig struct {
	// Base is the delay before the first retry (attempt 1). Zero or
	// negative disables waiting entirely.
	Base time.Duration
	// Cap bounds the exponential growth. Zero or negative means the
	// pre-jitter delay is capped at Base (no growth).
	Cap time.Duration
	// JitterFrac spreads each delay uniformly over
	// [d*(1-JitterFrac), d*(1+JitterFrac)], desynchronising replicas
	// that fail together. Values outside [0,1] are clamped.
	JitterFrac float64
}

// DefaultBackoff is the schedule used when a GroupConfig leaves Backoff
// zero: 10ms doubling to 250ms, ±50% jitter.
var DefaultBackoff = BackoffConfig{Base: 10 * time.Millisecond, Cap: 250 * time.Millisecond, JitterFrac: 0.5}

// Delay returns the pause before retry number attempt (1-based; attempt
// 0 — the initial call — always returns 0). rng supplies the jitter
// draw; nil rng means no jitter. Delay never returns a negative
// duration.
func (b BackoffConfig) Delay(attempt int, rng *rand.Rand) time.Duration {
	if attempt <= 0 || b.Base <= 0 {
		return 0
	}
	d := b.Base
	cap := b.Cap
	if cap < b.Base {
		cap = b.Base
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= cap || d <= 0 { // d <= 0: overflow guard
			d = cap
			break
		}
	}
	if d > cap {
		d = cap
	}
	frac := b.JitterFrac
	if frac < 0 {
		frac = 0
	} else if frac > 1 {
		frac = 1
	}
	if frac == 0 || rng == nil {
		return d
	}
	// Uniform over [d*(1-frac), d*(1+frac)].
	lo := float64(d) * (1 - frac)
	span := 2 * frac * float64(d)
	jittered := time.Duration(lo + rng.Float64()*span)
	if jittered < 0 {
		return 0
	}
	return jittered
}
