package rpc

import (
	"flag"
	"os"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// updateWireSchema rewrites wire_schema.golden from the compiled wire
// structs: go test ./internal/rpc -run TestWireSchemaGolden -args
// -update-wire-schema (or make wire-schema). Regenerating is the
// deliberate act the wirecompat analyzer exists to force - do it only
// when a wire change is intended, and plan the rolling upgrade.
var updateWireSchema = flag.Bool("update-wire-schema", false,
	"rewrite wire_schema.golden from the compiled wire structs")

// wireRoots enumerates every struct gob-encoded onto the wire. Keep in
// lockstep with wire.go: the wirecompat analyzer independently derives
// the same set from the wire.go declarations, so a struct added there
// but not here shows up as a schema mismatch.
func wireRoots() []reflect.Type {
	return []reflect.Type{
		reflect.TypeOf(SearchRequest{}),
		reflect.TypeOf(SearchResponse{}),
		reflect.TypeOf(BatchOptions{}),
		reflect.TypeOf(BatchRequest{}),
		reflect.TypeOf(BatchEntry{}),
		reflect.TypeOf(BatchResponse{}),
		reflect.TypeOf(HealthResponse{}),
	}
}

// wireSchema renders the canonical wire schema: a version header, then
// one block per named struct reachable from the roots through exported
// fields, blocks sorted by qualified name and fields sorted by name.
// The rendering must stay in lockstep with the go/types-based
// generator in internal/analysis/wirecompat (Schema): both sides use
// package-name qualifiers and "  Name Type" field lines, so the same
// golden satisfies the test and the analyzer. Avoid []byte fields in
// wire structs: reflect renders them []uint8 while go/types renders
// []byte, and the generators would disagree.
func wireSchema(roots []reflect.Type) string {
	blocks := make(map[string][]string)
	seen := make(map[string]bool)
	var visit func(t reflect.Type)
	visit = func(t reflect.Type) {
		if t.PkgPath() != "" { // named type
			qname := t.String()
			if seen[qname] {
				return
			}
			seen[qname] = true
			if t.Kind() == reflect.Struct {
				var lines []string
				for i := 0; i < t.NumField(); i++ {
					f := t.Field(i)
					if !f.IsExported() {
						continue
					}
					lines = append(lines, "  "+f.Name+" "+f.Type.String())
					visit(f.Type)
				}
				sort.Strings(lines)
				blocks[qname] = lines
				return
			}
			// Named non-struct (e.g. a named slice): fall through to the
			// kind walk, its element may reach structs.
		}
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Array:
			visit(t.Elem())
		case reflect.Map:
			visit(t.Key())
			visit(t.Elem())
		case reflect.Struct:
			for i := 0; i < t.NumField(); i++ {
				if f := t.Field(i); f.IsExported() {
					visit(f.Type)
				}
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}
	names := make([]string, 0, len(blocks))
	for qname := range blocks {
		names = append(names, qname)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("wire schema v1\n")
	for _, qname := range names {
		b.WriteString("\n")
		b.WriteString(qname)
		b.WriteString("\n")
		for _, line := range blocks[qname] {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

// TestWireSchemaGolden pins the wire schema: it fails when a wire
// struct (or any struct reachable from one) gains, loses, renames or
// retypes an exported field without wire_schema.golden being
// regenerated. That makes every wire change a reviewed diff instead of
// a silent decode break in a mixed-version fleet.
func TestWireSchemaGolden(t *testing.T) {
	const golden = "wire_schema.golden"
	schema := wireSchema(wireRoots())
	if *updateWireSchema {
		if err := os.WriteFile(golden, []byte(schema), 0o644); err != nil {
			t.Fatalf("writing %s: %v", golden, err)
		}
		t.Logf("rewrote %s", golden)
		return
	}
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s: %v (generate it with make wire-schema)", golden, err)
	}
	got := strings.TrimRight(schema, "\n")
	want := strings.TrimRight(string(data), "\n")
	if got == want {
		return
	}
	gotLines := strings.Split(got, "\n")
	wantLines := strings.Split(want, "\n")
	for i := 0; i < len(gotLines) || i < len(wantLines); i++ {
		var g, w string
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if g != w {
			t.Errorf("wire schema line %d: compiled %q, golden %q", i+1, g, w)
		}
	}
	t.Errorf("wire schema does not match %s; if the wire change is deliberate, run make wire-schema and coordinate a rolling upgrade", golden)
}
