package rpc

import (
	"context"
	"errors"

	"uots/internal/obs"
)

// Span kinds emitted by the client-side robustness ladder into the
// caller's trace. Together with the shard-side span replayed between a
// TraceRemoteSpan / TraceRemoteSpanEnd bracket, they render one
// cross-node tree in GET /debug/trace/{id}: every attempt, retry,
// hedge, ejection, and re-admission that served the query, attributed
// to the replica (Note) it concerned.
//
// Determinism: the attempt, retry, hedge, and remote-span kinds are
// emitted only from single-threaded coordination code (the retry loop
// and the hedge select loop), so a replayed query with the same
// topology, seed, and injected timers produces the same event sequence.
// The health-transition kinds (TraceEject / TraceReadmit) ride the
// attempt that caused them and appear only in failure scenarios. The
// only run-dependent values are the wall-clock attributions, confined
// to the Extra field of TraceAttemptOK / TraceAttemptErr — mask Extra
// on those two kinds to compare traces across runs.
const (
	// TraceAttempt marks one RPC attempt being issued. Note is the
	// replica base URL, Value the retry ordinal (0 = first try), Extra 1
	// when the attempt is a hedge.
	TraceAttempt = "rpc_attempt"
	// TraceAttemptOK marks an attempt answering successfully. Note is
	// the replica, Extra its wall-clock latency in milliseconds.
	TraceAttemptOK = "rpc_attempt_ok"
	// TraceAttemptErr marks an attempt failing. Note is
	// "replica: outcome" (see the Outcome* labels), Extra the wall-clock
	// latency in milliseconds.
	TraceAttemptErr = "rpc_attempt_err"
	// TraceRetry marks the ladder rotating to another attempt after a
	// transient failure. Value is the upcoming retry ordinal, Extra the
	// seeded backoff delay in milliseconds (deterministic per seed).
	TraceRetry = "rpc_retry"
	// TraceHedge marks the tail-latency timer firing a duplicate attempt.
	// Note is the hedge replica.
	TraceHedge = "rpc_hedge"
	// TraceHedgeWin marks the hedge answering before the primary. Note is
	// the hedge replica.
	TraceHedgeWin = "rpc_hedge_win"
	// TraceHedgeCancel marks the losing attempt being cancelled after a
	// winner returned. Note is the loser replica.
	TraceHedgeCancel = "rpc_hedge_cancel"
	// TraceEject marks a replica exhausting its error budget and leaving
	// rotation. Note is the replica.
	TraceEject = "rpc_eject"
	// TraceReadmit marks an ejected replica re-entering rotation after a
	// success. Note is the replica.
	TraceReadmit = "rpc_readmit"
	// TraceProbeFail marks a failed health probe (GroupConfig.HealthTrace
	// traces only; probes run outside any request). Note is the replica.
	TraceProbeFail = "rpc_probe_fail"
	// TraceExhausted marks the whole ladder failing: every retry and
	// failover attempt lost. Value is the attempt budget, Note the last
	// failure's outcome label.
	TraceExhausted = "rpc_exhausted"
	// TraceRemoteSpan opens a remote child span: the events that follow,
	// until the matching TraceRemoteSpanEnd, were recorded on the shard
	// server that answered. Note is the serving replica, Value the
	// remote event count, Extra the remote dropped count.
	TraceRemoteSpan = "rpc_remote_span"
	// TraceRemoteSpanEnd closes the remote child span. Note is the
	// serving replica.
	TraceRemoteSpanEnd = "rpc_remote_span_end"
)

// Outcome labels classifying how one RPC attempt ended — the "outcome"
// label of uots_rpc_attempt_outcomes_total and the Note suffix of
// TraceAttemptErr events.
const (
	// OutcomeOK: the replica answered.
	OutcomeOK = "ok"
	// OutcomeTransport: the transport failed (dial, connection, decode,
	// attempt timeout) or the server answered CodeInternal — retryable,
	// charged against the replica's error budget.
	OutcomeTransport = "transport"
	// OutcomeEngine: the shard engine answered with a definitive error
	// (store fault, bad query) — not the replica's fault.
	OutcomeEngine = "engine"
	// OutcomeCanceled: the caller's context ended (cancellation,
	// deadline, a lost hedge) — the attempt's fate says nothing about
	// the replica.
	OutcomeCanceled = "canceled"
)

// classifyOutcome maps one attempt error onto its Outcome* label.
// Callers must resolve the caller-context case (OutcomeCanceled) before
// transport classification, exactly as callOnce orders its checks.
func classifyOutcome(err error) string {
	switch {
	case err == nil:
		return OutcomeOK
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return OutcomeCanceled
	case IsTransient(err):
		return OutcomeTransport
	default:
		return OutcomeEngine
	}
}

// emitRPC emits one client-side ladder event. The RPC layer has no
// query step ordinal, source, or trajectory — events carry the ladder's
// own coordinates (replica in Note, ordinals in Value) instead.
func emitRPC(t obs.Tracer, kind, note string, value, extra float64) {
	if t == nil {
		return
	}
	t.Emit(obs.SpanEvent{Kind: kind, Source: -1, Traj: -1, Value: value, Extra: extra, Note: note})
}

// replaySpan merges a shard's remote span into the parent trace as a
// child bracket: TraceRemoteSpan, the remote events verbatim (their
// Step ordinals are the shard engine's own), TraceRemoteSpanEnd. A
// remote span that recorded nothing (an empty partition) still gets an
// empty bracket so the tree shows the hop happened.
func replaySpan(t obs.Tracer, replica string, span []obs.SpanEvent, dropped int) {
	if t == nil {
		return
	}
	emitRPC(t, TraceRemoteSpan, replica, float64(len(span)), float64(dropped))
	for _, ev := range span {
		t.Emit(ev)
	}
	emitRPC(t, TraceRemoteSpanEnd, replica, 0, 0)
}
