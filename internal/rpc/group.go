package rpc

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
)

// TimerFunc abstracts the one timer the robustness machinery arms — the
// hedge delay and retry backoff waits. It returns a channel that fires
// once after d and a stop function (time.Timer semantics). Tests inject
// a gated implementation so hedging decisions are driven by the test,
// not the wall clock.
type TimerFunc func(d time.Duration) (<-chan time.Time, func() bool)

func stdTimer(d time.Duration) (<-chan time.Time, func() bool) {
	t := time.NewTimer(d)
	return t.C, t.Stop
}

// GroupConfig tunes one partition's replica group.
type GroupConfig struct {
	// CallTimeout bounds each individual attempt (not the whole call —
	// retries and hedges each get a fresh one). Zero means attempts run
	// on the caller's deadline alone.
	CallTimeout time.Duration
	// MaxAttempts is the total number of tries (initial + retries)
	// across the group before it reports exhaustion. Zero means 3.
	MaxAttempts int
	// Backoff is the retry schedule. The zero value means DefaultBackoff.
	Backoff BackoffConfig
	// HedgeDelay arms a duplicate request on a second replica when the
	// first has not answered within the delay; first response wins and
	// the loser is cancelled. Zero disables hedging. Hedging needs at
	// least two replicas.
	HedgeDelay time.Duration
	// FailureThreshold is the consecutive-transport-failure budget after
	// which a replica is ejected from rotation. Zero means 3.
	FailureThreshold int
	// ProbeInterval runs a background health prober at this period,
	// re-admitting ejected replicas that answer the probe. Zero disables
	// the prober (call ProbeAll directly, as the tests do).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one health probe. Zero means 1s.
	ProbeTimeout time.Duration
	// Seed seeds the backoff jitter rng, making retry schedules
	// reproducible. Zero picks a fixed default.
	Seed uint64
	// Timer overrides the timer used for hedge delays and backoff waits.
	// Nil means the real clock.
	Timer TimerFunc
	// HealthTrace receives the fleet-health events the background prober
	// generates (probe failures, ejections, re-admissions) — those happen
	// outside any request, so they cannot ride a request trace. Nil
	// disables them. Request-driven health transitions additionally land
	// in the active request's trace.
	HealthTrace obs.Tracer
	// HTTPClient carries the transport shared by the group's replicas.
	// Nil means a private client with default pooling.
	HTTPClient *http.Client
}

// Sentinel errors of the group layer.
var (
	// ErrNoReplicas rejects construction of an empty group.
	ErrNoReplicas = errors.New("rpc: replica group needs at least one replica")
	// ErrGroupClosed answers calls issued after Close.
	ErrGroupClosed = errors.New("rpc: replica group closed")
)

// replica is one backend plus its health state.
type replica struct {
	client   *Client
	counters replicaCounters

	mu          sync.Mutex
	consecFails int
	ejected     bool
}

func (r *replica) isEjected() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.ejected
}

// noteFailure charges one transport-class failure against the error
// budget, reporting whether this failure tripped the ejection.
func (r *replica) noteFailure(threshold int) (ejected bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails++
	if !r.ejected && r.consecFails >= threshold {
		r.ejected = true
		return true
	}
	return false
}

// noteSuccess resets the error budget, reporting whether it re-admitted
// an ejected replica.
func (r *replica) noteSuccess() (readmitted bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.consecFails = 0
	if r.ejected {
		r.ejected = false
		return true
	}
	return false
}

// ReplicaStatus is one replica's health snapshot (see Group.Status).
type ReplicaStatus struct {
	Base                string
	Ejected             bool
	ConsecutiveFailures int
}

// Group fans calls over one partition's replicas with retries, hedging,
// and health-checked failover. Safe for concurrent use.
type Group struct {
	cfg      GroupConfig
	replicas []*replica
	metrics  *Metrics
	timerFn  TimerFunc
	hc       *http.Client

	rngMu sync.Mutex
	rng   *rand.Rand

	next      atomic.Uint64 // round-robin cursor
	closed    atomic.Bool
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewGroup builds a replica group over the given base URLs. All
// replicas must serve the same shard (same partition of the same
// dataset) — the group assumes their answers are interchangeable. If
// cfg.ProbeInterval > 0 a background prober starts immediately; Close
// stops it.
func NewGroup(bases []string, cfg GroupConfig, m *Metrics) (*Group, error) {
	if len(bases) == 0 {
		return nil, ErrNoReplicas
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = time.Second
	}
	if (cfg.Backoff == BackoffConfig{}) {
		cfg.Backoff = DefaultBackoff
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	hc := cfg.HTTPClient
	if hc == nil {
		hc = &http.Client{}
	}
	timer := cfg.Timer
	if timer == nil {
		timer = stdTimer
	}
	g := &Group{
		cfg:     cfg,
		metrics: m,
		timerFn: timer,
		hc:      hc,
		rng:     rand.New(rand.NewPCG(seed, seed)),
		stop:    make(chan struct{}),
	}
	for _, base := range bases {
		c := NewClient(base, hc)
		g.replicas = append(g.replicas, &replica{client: c, counters: m.forReplica(c.Base())})
	}
	if cfg.ProbeInterval > 0 {
		g.wg.Add(1)
		go g.prober()
	}
	return g, nil
}

// Close stops the health prober and releases idle connections. It is
// idempotent and safe to call concurrently with in-flight calls (those
// finish normally; new calls get ErrGroupClosed).
func (g *Group) Close() {
	g.closeOnce.Do(func() {
		g.closed.Store(true)
		close(g.stop)
		g.wg.Wait()
		g.hc.CloseIdleConnections()
	})
}

// Status snapshots every replica's health, in construction order.
func (g *Group) Status() []ReplicaStatus {
	out := make([]ReplicaStatus, len(g.replicas))
	for i, r := range g.replicas {
		r.mu.Lock()
		out[i] = ReplicaStatus{Base: r.client.Base(), Ejected: r.ejected, ConsecutiveFailures: r.consecFails}
		r.mu.Unlock()
	}
	return out
}

// prober periodically probes every replica, restoring ejected ones that
// recover. The loop polls g.stop so Close drains it promptly.
func (g *Group) prober() {
	defer g.wg.Done()
	t := time.NewTicker(g.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-t.C:
			g.ProbeAll()
		}
	}
}

// ProbeAll health-checks every replica once: a failed probe counts
// against the replica's error budget (ejecting it at the threshold), a
// successful probe resets the budget and re-admits an ejected replica.
// The background prober calls this on its ticker; tests call it
// directly for deterministic health transitions.
//
//uots:allow ctxflow -- probes run on the group's lifetime, not any caller's request; there is no inbound context to thread.
func (g *Group) ProbeAll() {
	tr := g.cfg.HealthTrace
	for _, r := range g.replicas {
		ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ProbeTimeout)
		_, err := r.client.Health(ctx)
		cancel()
		if err != nil {
			r.counters.probeFailure()
			emitRPC(tr, TraceProbeFail, r.client.Base(), 0, 0)
			g.markFailure(tr, r)
			continue
		}
		g.markSuccess(tr, r)
	}
}

// markFailure charges one transport-class failure; an ejection lands in
// tr (the active request's trace, or HealthTrace for probes).
func (g *Group) markFailure(tr obs.Tracer, r *replica) {
	if r.noteFailure(g.cfg.FailureThreshold) {
		r.counters.ejection()
		emitRPC(tr, TraceEject, r.client.Base(), 0, 0)
	}
}

func (g *Group) markSuccess(tr obs.Tracer, r *replica) {
	if r.noteSuccess() {
		r.counters.readmission()
		emitRPC(tr, TraceReadmit, r.client.Base(), 0, 0)
	}
}

// pick chooses the next replica round-robin, preferring healthy ones
// and skipping exclude (the hedge's primary). With every replica
// ejected it still returns one — a last-resort attempt beats refusing
// to try — and returns nil only when exclusion leaves nothing.
func (g *Group) pick(exclude *replica) *replica {
	n := len(g.replicas)
	start := int(g.next.Add(1)-1) % n
	var fallback *replica
	for i := 0; i < n; i++ {
		r := g.replicas[(start+i)%n]
		if r == exclude {
			continue
		}
		if !r.isEjected() {
			return r
		}
		if fallback == nil {
			fallback = r
		}
	}
	return fallback
}

// delay serialises the jitter rng draw.
func (g *Group) delay(attempt int) time.Duration {
	g.rngMu.Lock()
	defer g.rngMu.Unlock()
	return g.cfg.Backoff.Delay(attempt, g.rng)
}

// callOnce runs one attempt against one replica: per-attempt deadline,
// latency accounting, and failure classification. The caller's own
// context outcome (cancellation, deadline, a lost hedge) never counts
// against the replica's health; an attempt-level timeout or transport
// failure does. The returned duration is the attempt's wall-clock
// latency, for the per-hop attribution in attempt trace events.
func callOnce[T any](g *Group, ctx context.Context, r *replica, do func(context.Context, *Client) (T, error)) (T, time.Duration, error) {
	actx := ctx
	cancel := func() {}
	if g.cfg.CallTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, g.cfg.CallTimeout)
	}
	defer cancel()
	r.counters.request()
	sw := obs.Stopwatch()
	out, err := do(actx, r.client)
	elapsed := sw()
	r.counters.observe(elapsed.Seconds())
	tr := obs.TracerFromContext(ctx)
	if err == nil {
		g.markSuccess(tr, r)
		r.counters.attempt(OutcomeOK)
		return out, elapsed, nil
	}
	var zero T
	if cerr := ctx.Err(); cerr != nil {
		// The caller went away (or a hedge sibling won): the attempt's
		// fate is the caller's outcome, not the replica's fault.
		r.counters.attempt(OutcomeCanceled)
		return zero, elapsed, cerr
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		// The per-attempt deadline fired while the caller is still
		// alive: a tail-latency event, charged like any transport fault.
		err = &TransportError{Replica: r.client.Base(), Err: fmt.Errorf("attempt aborted: %w", err)}
	}
	if IsTransient(err) {
		r.counters.transportError()
		g.markFailure(tr, r)
	}
	r.counters.attempt(classifyOutcome(err))
	return zero, elapsed, err
}

// emitOutcome records one finished attempt into the trace: success with
// its latency, or failure with its outcome classification. Emitted only
// from single-threaded coordination code so event order stays
// deterministic (see the Trace* kind docs).
func emitOutcome(tr obs.Tracer, base string, elapsed time.Duration, err error) {
	ms := float64(elapsed) / float64(time.Millisecond)
	if err == nil {
		emitRPC(tr, TraceAttemptOK, base, 0, ms)
		return
	}
	emitRPC(tr, TraceAttemptErr, base+": "+classifyOutcome(err), 0, ms)
}

// seqCall runs one un-hedged attempt with its trace bracket: issue
// event, the call, outcome event.
func seqCall[T any](g *Group, ctx context.Context, r *replica, attempt int, do func(context.Context, *Client) (T, error)) (T, error) {
	tr := obs.TracerFromContext(ctx)
	base := r.client.Base()
	emitRPC(tr, TraceAttempt, base, float64(attempt), 0)
	out, elapsed, err := callOnce(g, ctx, r, do)
	emitOutcome(tr, base, elapsed, err)
	return out, err
}

// hedged runs one logical attempt with tail-latency hedging: if the
// primary has not answered within HedgeDelay, a duplicate fires on a
// second replica; the first success wins and the loser is cancelled
// via the shared hedge context. attempt is the retry ordinal, carried
// into trace events. The returned string is the base URL of the replica
// whose answer won (meaningful only on success) — the identity the
// remote span gets attributed to.
//
// All trace emission happens in this function's select loop, never in
// the attempt goroutines, so the event sequence is a deterministic
// function of which outcomes arrive in which order — under injected
// timers and a parked replica, a test replays the exact sequence.
func hedged[T any](g *Group, ctx context.Context, primary *replica, attempt int, do func(context.Context, *Client) (T, error)) (T, string, error) {
	var zero T
	primaryBase := primary.client.Base()
	if g.cfg.HedgeDelay <= 0 {
		out, err := seqCall(g, ctx, primary, attempt, do)
		return out, primaryBase, err
	}
	secondary := g.pick(primary)
	if secondary == nil {
		out, err := seqCall(g, ctx, primary, attempt, do)
		return out, primaryBase, err
	}
	secondaryBase := secondary.client.Base()
	tr := obs.TracerFromContext(ctx)
	hctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser once a winner returns

	type outcome struct {
		out     T
		err     error
		hedge   bool
		replica string
		elapsed time.Duration
	}
	results := make(chan outcome, 2) // buffered: losers never block
	launch := func(r *replica, isHedge bool) {
		go func() {
			out, elapsed, err := callOnce(g, hctx, r, do)
			results <- outcome{out: out, err: err, hedge: isHedge, replica: r.client.Base(), elapsed: elapsed}
		}()
	}
	emitRPC(tr, TraceAttempt, primaryBase, float64(attempt), 0)
	launch(primary, false)
	timerC, stopTimer := g.timerFn(g.cfg.HedgeDelay)
	defer stopTimer()

	inFlight := 1
	for {
		select {
		case o := <-results:
			inFlight--
			emitOutcome(tr, o.replica, o.elapsed, o.err)
			if o.err == nil {
				if o.hedge {
					g.metrics.recordHedgeWin()
					emitRPC(tr, TraceHedgeWin, o.replica, 0, 0)
				}
				if inFlight > 0 {
					loser := primaryBase
					if !o.hedge {
						loser = secondaryBase
					}
					emitRPC(tr, TraceHedgeCancel, loser, 0, 0)
				}
				return o.out, o.replica, nil
			}
			if cerr := ctx.Err(); cerr != nil {
				return zero, "", cerr
			}
			if inFlight == 0 {
				return zero, "", o.err
			}
			// The other attempt is still running; its answer may yet
			// succeed, so keep waiting.
		case <-timerC:
			g.metrics.recordHedge()
			emitRPC(tr, TraceHedge, secondaryBase, float64(attempt), 0)
			emitRPC(tr, TraceAttempt, secondaryBase, float64(attempt), 1)
			launch(secondary, true)
			inFlight++
			timerC = nil // fires once
		case <-ctx.Done():
			return zero, "", ctx.Err()
		}
	}
}

// callGroup is the full robustness ladder: bounded retries with backoff
// across the group, each attempt hedged. Transient failures rotate to
// the next replica; definitive answers (engine errors, the caller's own
// context) return immediately. Exhaustion surfaces as a store fault so
// the scatter-gather policy layer treats the partition as faulted.
func callGroup[T any](g *Group, ctx context.Context, do func(context.Context, *Client) (T, error)) (T, string, error) {
	var zero T
	if g.closed.Load() {
		return zero, "", ErrGroupClosed
	}
	tr := obs.TracerFromContext(ctx)
	var lastErr error
	var lastTried *replica
	for attempt := 0; attempt < g.cfg.MaxAttempts; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return zero, "", cerr
		}
		if attempt > 0 {
			g.metrics.recordRetry()
			d := g.delay(attempt)
			emitRPC(tr, TraceRetry, "", float64(attempt), float64(d)/float64(time.Millisecond))
			if d > 0 {
				timerC, stopTimer := g.timerFn(d)
				select {
				case <-timerC:
				case <-ctx.Done():
					stopTimer()
					return zero, "", ctx.Err()
				}
			}
		}
		// Retries fail over: prefer any replica but the one that just
		// failed (a single-replica group has no choice but to re-try it).
		primary := g.pick(lastTried)
		if primary == nil {
			primary = lastTried
		}
		lastTried = primary
		out, winner, err := hedged(g, ctx, primary, attempt, do)
		if err == nil {
			return out, winner, nil
		}
		if cerr := ctx.Err(); cerr != nil {
			return zero, "", cerr
		}
		if !IsTransient(err) {
			return zero, "", err
		}
		lastErr = err
	}
	g.metrics.recordGroupExhausted()
	emitRPC(tr, TraceExhausted, classifyOutcome(lastErr), float64(g.cfg.MaxAttempts), 0)
	return zero, "", fmt.Errorf("%w (%w): %w", ErrGroupExhausted, core.ErrStoreFault, lastErr)
}

// Search runs one search against the group with the full retry/hedge/
// failover ladder. When bound is non-nil the request carries the
// scatter's current global k-th bound as a pruning hint (re-read before
// every attempt, so retries and hedges start from the level the rest of
// the scatter has already reached) and the response's piggybacked shard
// threshold is folded back in.
//
// When the caller's context carries a tracer, the request asks the
// shard to record its own span (stamped with the context's trace ID)
// and the winning response's remote span is replayed into the caller's
// trace as a child bracket attributed to the serving replica.
func (g *Group) Search(ctx context.Context, req SearchRequest, bound *core.SharedBound) (SearchResponse, error) {
	tr := obs.TracerFromContext(ctx)
	if tr != nil {
		req.Trace = true
		req.TraceID = obs.TraceIDFromContext(ctx)
	}
	resp, winner, err := callGroup(g, ctx, func(ctx context.Context, c *Client) (SearchResponse, error) {
		if bound != nil {
			if v, ok := bound.Load(); ok {
				req.Bound = v
			}
		}
		return c.Search(ctx, req)
	})
	if err != nil {
		return SearchResponse{}, err
	}
	if bound != nil && resp.Bound != 0 {
		bound.Raise(resp.Bound)
	}
	if tr != nil {
		replaySpan(tr, winner, resp.Span, resp.SpanDropped)
	}
	return resp, nil
}

// Batch runs one batch request against the group with the full ladder,
// with the same remote-span handling as Search.
func (g *Group) Batch(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	tr := obs.TracerFromContext(ctx)
	if tr != nil {
		req.Trace = true
		req.TraceID = obs.TraceIDFromContext(ctx)
	}
	resp, winner, err := callGroup(g, ctx, func(ctx context.Context, c *Client) (BatchResponse, error) {
		return c.Batch(ctx, req)
	})
	if err != nil {
		return BatchResponse{}, err
	}
	if tr != nil {
		replaySpan(tr, winner, resp.Span, resp.SpanDropped)
	}
	return resp, nil
}

// Health probes one replica chosen round-robin (the router's own
// liveness view; per-replica probing is ProbeAll's job).
func (g *Group) Health(ctx context.Context) (HealthResponse, error) {
	resp, _, err := callGroup(g, ctx, func(ctx context.Context, c *Client) (HealthResponse, error) {
		return c.Health(ctx)
	})
	return resp, err
}
