package rpc

import (
	"context"
	"encoding/gob"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/trajdb"
)

// fakeReplica is a hand-driven shard server: it answers PathSearch with
// a canned response and can be switched into failure or blocking modes.
type fakeReplica struct {
	*httptest.Server
	results  []core.Result
	broken   atomic.Bool   // break the connection mid-response
	gate     chan struct{} // when non-nil, handlers block until it closes
	searches atomic.Int64
	probes   atomic.Int64
}

func newFakeReplica(t *testing.T, results []core.Result) *fakeReplica {
	t.Helper()
	f := &fakeReplica{results: results}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathSearch, func(w http.ResponseWriter, r *http.Request) {
		f.searches.Add(1)
		if f.broken.Load() {
			panic(http.ErrAbortHandler) // connection dies mid-flight
		}
		if f.gate != nil {
			select {
			case <-f.gate:
			case <-r.Context().Done():
				return
			}
		}
		var req SearchRequest
		if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("fake replica: decoding request: %v", err)
		}
		writeGob(w, &SearchResponse{Results: f.results, Bound: req.Bound})
	})
	mux.HandleFunc("GET "+PathHealth, func(w http.ResponseWriter, r *http.Request) {
		f.probes.Add(1)
		if f.broken.Load() {
			panic(http.ErrAbortHandler)
		}
		writeGob(w, &HealthResponse{Status: "ok"})
	})
	f.Server = httptest.NewServer(mux)
	t.Cleanup(f.Server.Close)
	return f
}

func resultsOf(id trajdb.TrajID) []core.Result {
	return []core.Result{{Traj: id, Score: 0.5}}
}

// fastCfg is a test config with no real waiting: zero-jitter nanosecond
// backoff and no hedging unless a test overrides it.
func fastCfg() GroupConfig {
	return GroupConfig{
		MaxAttempts:      3,
		Backoff:          BackoffConfig{Base: time.Nanosecond},
		FailureThreshold: 2,
		Seed:             1,
	}
}

func mustGroup(t *testing.T, bases []string, cfg GroupConfig, m *Metrics) *Group {
	t.Helper()
	g, err := NewGroup(bases, cfg, m)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	t.Cleanup(g.Close)
	return g
}

func counterValue(t *testing.T, reg *obs.Registry, name string, labels ...string) uint64 {
	t.Helper()
	if len(labels) > 0 {
		return reg.CounterVec(name, "", "replica").With(labels...).Value()
	}
	return reg.Counter(name, "").Value()
}

func TestGroupFailoverToHealthyReplica(t *testing.T) {
	reg := obs.NewRegistry()
	bad := newFakeReplica(t, resultsOf(1))
	bad.broken.Store(true)
	good := newFakeReplica(t, resultsOf(2))
	g := mustGroup(t, []string{bad.URL, good.URL}, fastCfg(), NewMetrics(reg))

	resp, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Traj != 2 {
		t.Fatalf("Search answered %+v, want replica good's results", resp.Results)
	}
	if got := counterValue(t, reg, "uots_rpc_retries_total"); got != 1 {
		t.Errorf("retries_total = %d, want 1", got)
	}
	if got := counterValue(t, reg, "uots_rpc_transport_errors_total", bad.URL); got != 1 {
		t.Errorf("transport_errors_total{%s} = %d, want 1", bad.URL, got)
	}
}

func TestGroupEjectionAndReadmission(t *testing.T) {
	reg := obs.NewRegistry()
	bad := newFakeReplica(t, resultsOf(1))
	bad.broken.Store(true)
	good := newFakeReplica(t, resultsOf(2))
	g := mustGroup(t, []string{bad.URL, good.URL}, fastCfg(), NewMetrics(reg))

	// Each call that lands on bad charges one failure; threshold 2.
	for i := 0; i < 6; i++ {
		if _, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil); err != nil {
			t.Fatalf("Search %d: %v", i, err)
		}
	}
	st := g.Status()
	if !st[0].Ejected {
		t.Fatalf("bad replica not ejected after repeated failures: %+v", st)
	}
	if got := counterValue(t, reg, "uots_rpc_replica_ejections_total", bad.URL); got != 1 {
		t.Errorf("ejections_total{bad} = %d, want 1", got)
	}

	// Ejected replicas stop receiving traffic (healthy rotation only).
	before := bad.searches.Load()
	for i := 0; i < 4; i++ {
		if _, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil); err != nil {
			t.Fatalf("Search post-ejection: %v", err)
		}
	}
	if after := bad.searches.Load(); after != before {
		t.Errorf("ejected replica served %d more searches, want 0", after-before)
	}

	// Recovery: probes re-admit it.
	bad.broken.Store(false)
	g.ProbeAll()
	st = g.Status()
	if st[0].Ejected {
		t.Fatalf("recovered replica still ejected after successful probe: %+v", st)
	}
	if got := counterValue(t, reg, "uots_rpc_replica_readmissions_total", bad.URL); got != 1 {
		t.Errorf("readmissions_total{bad} = %d, want 1", got)
	}
}

func TestGroupProbeFailuresEject(t *testing.T) {
	reg := obs.NewRegistry()
	bad := newFakeReplica(t, resultsOf(1))
	bad.broken.Store(true)
	good := newFakeReplica(t, resultsOf(2))
	g := mustGroup(t, []string{bad.URL, good.URL}, fastCfg(), NewMetrics(reg))

	g.ProbeAll()
	g.ProbeAll()
	if st := g.Status(); !st[0].Ejected {
		t.Fatalf("replica not ejected after %d failed probes: %+v", 2, st)
	}
	if got := counterValue(t, reg, "uots_rpc_probe_failures_total", bad.URL); got != 2 {
		t.Errorf("probe_failures_total{bad} = %d, want 2", got)
	}
}

func TestGroupExhaustedIsStoreFault(t *testing.T) {
	reg := obs.NewRegistry()
	bad := newFakeReplica(t, resultsOf(1))
	bad.broken.Store(true)
	g := mustGroup(t, []string{bad.URL}, fastCfg(), NewMetrics(reg))

	_, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil)
	if !errors.Is(err, ErrGroupExhausted) {
		t.Fatalf("err = %v, want ErrGroupExhausted", err)
	}
	if !errors.Is(err, core.ErrStoreFault) {
		t.Fatalf("err = %v, want it to wrap core.ErrStoreFault for the shard policy layer", err)
	}
	if got := bad.searches.Load(); got != 3 {
		t.Errorf("dead replica attempted %d times, want MaxAttempts=3", got)
	}
	if got := counterValue(t, reg, "uots_rpc_group_exhausted_total"); got != 1 {
		t.Errorf("group_exhausted_total = %d, want 1", got)
	}
}

// TestGroupDefinitiveErrorNoRetry: coded engine errors return
// immediately — retrying a query every replica would reject identically
// only burns the error budget of healthy replicas.
func TestGroupDefinitiveErrorNoRetry(t *testing.T) {
	calls := atomic.Int64{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathSearch, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeWireError(w, http.StatusBadRequest, CodeBadQuery, "bad K")
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	g := mustGroup(t, []string{srv.URL}, fastCfg(), nil)

	_, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil)
	var we *Error
	if !errors.As(err, &we) || we.Code != CodeBadQuery {
		t.Fatalf("err = %v, want coded bad_query", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("definitive error retried: %d calls, want 1", got)
	}
	if st := g.Status(); st[0].ConsecutiveFailures != 0 {
		t.Errorf("definitive error charged the replica's budget: %+v", st)
	}
}

// TestGroupCallerCancellation: the caller's own cancellation surfaces
// as context.Canceled and never penalises the replica that happened to
// be serving the call.
func TestGroupCallerCancellation(t *testing.T) {
	slow := newFakeReplica(t, resultsOf(1))
	slow.gate = make(chan struct{})
	defer close(slow.gate)
	g := mustGroup(t, []string{slow.URL}, fastCfg(), nil)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := g.Search(ctx, SearchRequest{Variant: VariantSearch}, nil)
		done <- err
	}()
	// Wait until the request is parked in the handler, then cancel.
	waitFor(t, func() bool { return slow.searches.Load() > 0 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := g.Status(); st[0].ConsecutiveFailures != 0 || st[0].Ejected {
		t.Errorf("caller cancellation charged the replica: %+v", st)
	}
}

// TestGroupAttemptTimeoutIsTransient: a per-attempt deadline with the
// caller still alive is a tail-latency event — retried, and charged.
func TestGroupAttemptTimeoutIsTransient(t *testing.T) {
	slow := newFakeReplica(t, resultsOf(1))
	slow.gate = make(chan struct{})
	defer close(slow.gate)
	fast := newFakeReplica(t, resultsOf(2))
	cfg := fastCfg()
	cfg.CallTimeout = 20 * time.Millisecond
	g := mustGroup(t, []string{slow.URL, fast.URL}, cfg, nil)

	resp, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Traj != 2 {
		t.Fatalf("Search answered %+v, want failover to the fast replica", resp.Results)
	}
	if st := g.Status(); st[0].ConsecutiveFailures == 0 {
		t.Errorf("attempt timeout did not charge the slow replica: %+v", st)
	}
}

// TestHedgeBeatsSlowPrimary drives the hedge timer by hand: the primary
// is gated shut, the injected timer fires, and the hedge's answer wins.
// No wall clock is involved in the hedging decision.
func TestHedgeBeatsSlowPrimary(t *testing.T) {
	reg := obs.NewRegistry()
	slow := newFakeReplica(t, resultsOf(1))
	slow.gate = make(chan struct{})
	defer close(slow.gate)
	fast := newFakeReplica(t, resultsOf(2))

	fire := make(chan time.Time, 1)
	cfg := fastCfg()
	cfg.HedgeDelay = time.Hour // the injected timer decides, not the clock
	cfg.Timer = func(d time.Duration) (<-chan time.Time, func() bool) {
		return fire, func() bool { return true }
	}
	g := mustGroup(t, []string{slow.URL, fast.URL}, cfg, NewMetrics(reg))

	done := make(chan SearchResponse, 1)
	errs := make(chan error, 1)
	go func() {
		resp, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil)
		done <- resp
		errs <- err
	}()
	// Primary (replica 0) is parked in its handler; fire the hedge.
	waitFor(t, func() bool { return slow.searches.Load() > 0 })
	fire <- time.Time{}

	resp, err := <-done, <-errs
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Traj != 2 {
		t.Fatalf("Search answered %+v, want the hedge replica's results", resp.Results)
	}
	if got := counterValue(t, reg, "uots_rpc_hedges_total"); got != 1 {
		t.Errorf("hedges_total = %d, want 1", got)
	}
	if got := counterValue(t, reg, "uots_rpc_hedge_wins_total"); got != 1 {
		t.Errorf("hedge_wins_total = %d, want 1", got)
	}
	if st := g.Status(); st[0].ConsecutiveFailures != 0 {
		t.Errorf("losing a hedge charged the slow replica's budget: %+v", st)
	}
}

// TestHedgePrimaryWins: when the primary answers before the timer
// fires, no hedge is sent at all.
func TestHedgePrimaryWins(t *testing.T) {
	reg := obs.NewRegistry()
	a := newFakeReplica(t, resultsOf(1))
	b := newFakeReplica(t, resultsOf(2))
	cfg := fastCfg()
	cfg.HedgeDelay = time.Hour
	cfg.Timer = func(d time.Duration) (<-chan time.Time, func() bool) {
		return make(chan time.Time), func() bool { return true } // never fires
	}
	g := mustGroup(t, []string{a.URL, b.URL}, cfg, NewMetrics(reg))

	resp, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Traj != 1 {
		t.Fatalf("Search answered %+v, want the primary's results", resp.Results)
	}
	if got := counterValue(t, reg, "uots_rpc_hedges_total"); got != 0 {
		t.Errorf("hedges_total = %d, want 0", got)
	}
	if got := b.searches.Load(); got != 0 {
		t.Errorf("secondary served %d searches, want 0", got)
	}
}

// TestGroupBoundPiggyback: the request carries the shared bound's
// current value and the response's bound folds back in.
func TestGroupBoundPiggyback(t *testing.T) {
	var lastSeen atomic.Value // float64: Bound of the last request
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathSearch, func(w http.ResponseWriter, r *http.Request) {
		var req SearchRequest
		if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		lastSeen.Store(req.Bound)
		writeGob(w, &SearchResponse{Bound: 0.75})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	g := mustGroup(t, []string{srv.URL}, fastCfg(), nil)

	bound := &core.SharedBound{}
	bound.Raise(0.25)
	if _, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, bound); err != nil {
		t.Fatalf("Search: %v", err)
	}
	if got := lastSeen.Load().(float64); got != 0.25 {
		t.Errorf("request carried bound %v, want 0.25", got)
	}
	if v, ok := bound.Load(); !ok || v != 0.75 {
		t.Errorf("shard bound not folded back: got (%v, %v), want (0.75, true)", v, ok)
	}
}

func TestGroupClosed(t *testing.T) {
	a := newFakeReplica(t, resultsOf(1))
	g := mustGroup(t, []string{a.URL}, fastCfg(), nil)
	g.Close()
	g.Close() // idempotent
	if _, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil); !errors.Is(err, ErrGroupClosed) {
		t.Fatalf("Search after Close: err = %v, want ErrGroupClosed", err)
	}
}

func TestGroupNoReplicas(t *testing.T) {
	if _, err := NewGroup(nil, GroupConfig{}, nil); !errors.Is(err, ErrNoReplicas) {
		t.Fatalf("NewGroup(nil) err = %v, want ErrNoReplicas", err)
	}
}

// waitFor spins until cond holds (bounded); the conditions it waits on
// are "request reached the handler" barriers, not timing assumptions.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
