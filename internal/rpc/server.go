package rpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net/http"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/trajdb"
)

// ShardServer serves one partition of the corpus over the wire: the five
// search variants, the batch path, and a health probe. It is an
// http.Handler factory — mount Handler on any listener. A ShardServer is
// immutable after construction and safe for concurrent use.
//
// The topology contract: every shard server and every router loads the
// same dataset with the same engine options and the same partitioner, so
// keyword term IDs, trajectory IDs, and scores agree across the fleet.
// Results leave the server already remapped to global trajectory IDs.
type ShardServer struct {
	engine  *core.Engine    // nil for an empty partition
	globals []trajdb.TrajID // shard-local index → global ID; nil = identity
	shard   int
	shards  int
	mux     *http.ServeMux
	traces  *obs.TraceStore // shard-local spans of sampled requests, by trace ID
}

// ErrBadGlobals rejects a globals mapping that does not cover the
// engine's store.
var ErrBadGlobals = errors.New("rpc: globals mapping does not match the shard store")

// NewShardServer builds a server over one partition's engine. globals
// maps the engine's shard-local trajectory IDs to global corpus IDs
// (shard.BuildShardEngine returns it); nil means the engine already
// speaks global IDs (single-shard or whole-corpus serving). A nil engine
// serves an empty partition: every search answers success with no
// results, mirroring how the in-process executor skips empty shards.
// shardIdx/shards are echoed by the health probe so operators can verify
// a fleet's wiring.
func NewShardServer(engine *core.Engine, globals []trajdb.TrajID, shardIdx, shards int) (*ShardServer, error) {
	if engine != nil && globals != nil && len(globals) != engine.Store().NumTrajectories() {
		return nil, fmt.Errorf("%w: %d global IDs for %d trajectories",
			ErrBadGlobals, len(globals), engine.Store().NumTrajectories())
	}
	s := &ShardServer{
		engine:  engine,
		globals: append([]trajdb.TrajID(nil), globals...),
		shard:   shardIdx,
		shards:  shards,
		mux:     http.NewServeMux(),
		traces:  obs.NewTraceStore(0),
	}
	s.mux.HandleFunc("POST "+PathSearch, s.handleSearch)
	s.mux.HandleFunc("POST "+PathBatch, s.handleBatch)
	s.mux.HandleFunc("GET "+PathHealth, s.handleHealth)
	return s, nil
}

// Traces exposes the shard's retained spans of sampled requests, keyed
// by the trace ID the client stamped on the wire. cmd/uotsshard mounts
// its own GET /debug/trace/{id} over it so a cross-node trace can be
// inspected hop by hop.
func (s *ShardServer) Traces() *obs.TraceStore { return s.traces }

// beginTrace attaches a fresh recorder to ctx when the request asked
// for tracing, retaining it under the request's trace ID (when the
// client sent one). The returned recorder is nil for unsampled
// requests.
func (s *ShardServer) beginTrace(ctx context.Context, trace bool, traceID string) (context.Context, *obs.TraceRecorder) {
	if !trace {
		return ctx, nil
	}
	rec := obs.NewTraceRecorder(0)
	if traceID != "" {
		s.traces.Add(traceID, rec)
	}
	return obs.ContextWithTracer(ctx, rec), rec
}

// Handler returns the server's HTTP handler: the RPC routes wrapped in
// panic recovery, so a malformed request can never take the shard down.
func (s *ShardServer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { // net/http's own control flow
				panic(rec)
			}
			writeWireError(w, http.StatusInternalServerError, CodeInternal, fmt.Sprintf("panic: %v", rec))
		}()
		s.mux.ServeHTTP(w, r)
	})
}

// statusOf maps a wire code onto its HTTP status. The client keys off
// the code, not the status; the status exists for proxies and logs.
func statusOf(code string) int {
	switch code {
	case CodeStoreFault, CodeInternal:
		return http.StatusInternalServerError
	case CodeBadQuery:
		return http.StatusBadRequest
	case CodeDeadline:
		return http.StatusGatewayTimeout
	case CodeCanceled:
		return 499 // client closed request (nginx convention)
	default:
		return http.StatusInternalServerError
	}
}

// writeWireError is the only place a ShardServer emits an error
// response: status plus a gob-encoded coded Error envelope, the wire
// half of the serving layer's machine-readable error contract.
func writeWireError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(status)
	_ = gob.NewEncoder(w).Encode(&Error{Code: code, Msg: msg}) // the connection is the only failure mode
}

// writeEngineError maps an engine failure onto the coded envelope.
func writeEngineError(w http.ResponseWriter, err error) {
	code := errorToCode(err)
	writeWireError(w, statusOf(code), code, err.Error())
}

func writeGob(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", ContentType)
	w.WriteHeader(http.StatusOK)
	_ = gob.NewEncoder(w).Encode(v)
}

func (s *ShardServer) handleHealth(w http.ResponseWriter, r *http.Request) {
	trajs := 0
	if s.engine != nil {
		trajs = s.engine.Store().NumTrajectories()
	}
	writeGob(w, &HealthResponse{Status: "ok", Shard: s.shard, Shards: s.shards, Trajs: trajs})
}

// remap rewrites shard-local trajectory IDs to global ones in place.
func (s *ShardServer) remap(results []core.Result) {
	if s.globals == nil {
		return
	}
	for i := range results {
		results[i].Traj = s.globals[results[i].Traj]
	}
}

func (s *ShardServer) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		writeWireError(w, http.StatusBadRequest, CodeBadQuery, "undecodable search request: "+err.Error())
		return
	}
	if s.engine == nil {
		writeGob(w, &SearchResponse{}) // empty partition: no candidates
		return
	}

	// Seed the shard-local bound exchange with the client's piggybacked
	// global bound; read the final local threshold back out afterwards.
	// Variants whose scatter runs boundless (threshold: the bar is
	// global already; orderaware: shard-local K' rounds break the
	// same-K precondition) skip the exchange, mirroring the in-process
	// executor.
	ctx, rec := s.beginTrace(r.Context(), req.Trace, req.TraceID)
	var bound *core.SharedBound
	switch req.Variant {
	case VariantSearch, VariantWindowed:
		bound = &core.SharedBound{}
		bound.Raise(req.Bound)
		ctx = core.ContextWithSharedBound(ctx, bound)
	}

	var (
		results []core.Result
		stats   core.SearchStats
		err     error
	)
	switch req.Variant {
	case VariantSearch:
		results, stats, err = s.engine.SearchCtx(ctx, req.Query)
	case VariantThreshold:
		results, stats, err = s.engine.SearchThresholdCtx(ctx, req.Query, req.Theta)
	case VariantWindowed:
		results, stats, err = s.engine.SearchWindowedCtx(ctx, req.Query, req.Window)
	case VariantOrderAware:
		results, stats, err = s.engine.OrderAwareSearchCtx(ctx, req.Query)
	case VariantDiversified:
		// Shard-local diversification: exact only over this partition.
		// The distributed executor does NOT scatter this variant — it
		// scatters the relevance pool as VariantSearch and runs the MMR
		// selection globally — but the wire exposes it so a shard can be
		// queried standalone with every engine entry point.
		results, stats, err = s.engine.DiversifiedSearchCtx(ctx, req.Query, req.Div)
	default:
		writeWireError(w, http.StatusBadRequest, CodeBadQuery, fmt.Sprintf("unknown search variant %q", req.Variant))
		return
	}
	if err != nil {
		writeEngineError(w, err)
		return
	}
	s.remap(results)
	resp := SearchResponse{Results: results, Stats: stats}
	if bound != nil {
		if v, ok := bound.Load(); ok {
			resp.Bound = v
		}
	}
	if rec != nil {
		resp.Span = rec.Events()
		resp.SpanDropped = rec.Dropped()
	}
	writeGob(w, &resp)
}

func (s *ShardServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
		writeWireError(w, http.StatusBadRequest, CodeBadQuery, "undecodable batch request: "+err.Error())
		return
	}
	if s.engine == nil {
		resp := BatchResponse{Entries: make([]BatchEntry, len(req.Queries))}
		for i := range resp.Entries {
			resp.Entries[i].Index = i
		}
		resp.Stats.Queries = len(req.Queries)
		writeGob(w, &resp)
		return
	}
	ctx, rec := s.beginTrace(r.Context(), req.Trace, req.TraceID)
	out, bstats, err := s.engine.SearchBatch(ctx, req.Queries, req.Opts.Core())
	// SearchBatch returns ctx.Err() as the batch-level error while still
	// filling every slot; a cancelled batch answers with the coded
	// envelope (the client's own context is authoritative anyway).
	if err != nil && out == nil {
		writeEngineError(w, err)
		return
	}
	if cerr := r.Context().Err(); cerr != nil {
		writeEngineError(w, cerr)
		return
	}
	resp := BatchResponse{Entries: make([]BatchEntry, len(out)), Stats: bstats}
	for i, br := range out {
		e := BatchEntry{Index: br.Index, Results: br.Results, Stats: br.Stats}
		if br.Err != nil {
			e.Results = nil
			e.ErrCode = errorToCode(br.Err)
			e.ErrMsg = br.Err.Error()
		} else {
			s.remap(e.Results)
		}
		resp.Entries[i] = e
	}
	if rec != nil {
		resp.Span = rec.Events()
		resp.SpanDropped = rec.Dropped()
	}
	writeGob(w, &resp)
}
