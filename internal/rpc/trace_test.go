package rpc

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
)

func TestClassifyOutcome(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, OutcomeOK},
		{context.Canceled, OutcomeCanceled},
		{context.DeadlineExceeded, OutcomeCanceled},
		{&TransportError{Replica: "r", Err: errors.New("dial")}, OutcomeTransport},
		{&Error{Code: CodeInternal, Msg: "panic"}, OutcomeTransport},
		{fmt.Errorf("shard: %w", core.ErrStoreFault), OutcomeEngine},
		{&Error{Code: CodeBadQuery, Msg: "no locations"}, OutcomeEngine},
	}
	for _, tc := range cases {
		if got := classifyOutcome(tc.err); got != tc.want {
			t.Errorf("classifyOutcome(%v) = %q, want %q", tc.err, got, tc.want)
		}
	}
}

// kindsOf projects a recorded trace onto its event-kind sequence.
func kindsOf(events []obs.SpanEvent) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = ev.Kind
	}
	return out
}

// tracedReplica answers PathSearch with a canned remote span when the
// request asks for tracing, and records the trace fields it saw.
func tracedReplica(t *testing.T, span []obs.SpanEvent, dropped int) (*httptest.Server, *atomic.Value) {
	t.Helper()
	var lastReq atomic.Value // SearchRequest
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+PathSearch, func(w http.ResponseWriter, r *http.Request) {
		var req SearchRequest
		if err := gob.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		lastReq.Store(req)
		resp := SearchResponse{Results: resultsOf(1)}
		if req.Trace {
			resp.Span = span
			resp.SpanDropped = dropped
		}
		writeGob(w, &resp)
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, &lastReq
}

// TestGroupSearchTracedAttempt: a traced call stamps the wire request,
// brackets the attempt in the caller's trace, and replays the remote
// span as a child bracket attributed to the serving replica.
func TestGroupSearchTracedAttempt(t *testing.T) {
	remote := []obs.SpanEvent{
		{Step: 0, Kind: "begin", Source: -1, Traj: -1},
		{Step: 7, Kind: "terminate", Source: -1, Traj: -1, Note: "exhausted"},
	}
	srv, lastReq := tracedReplica(t, remote, 3)
	g := mustGroup(t, []string{srv.URL}, fastCfg(), nil)

	rec := obs.NewTraceRecorder(0)
	ctx := obs.ContextWithTracer(context.Background(), rec)
	ctx = obs.ContextWithTraceID(ctx, "req-777")
	if _, err := g.Search(ctx, SearchRequest{Variant: VariantSearch}, nil); err != nil {
		t.Fatalf("Search: %v", err)
	}

	req := lastReq.Load().(SearchRequest)
	if !req.Trace || req.TraceID != "req-777" {
		t.Errorf("wire request trace fields = (%v, %q), want (true, req-777)", req.Trace, req.TraceID)
	}

	events := rec.Events()
	wantKinds := []string{
		TraceAttempt, TraceAttemptOK,
		TraceRemoteSpan, "begin", "terminate", TraceRemoteSpanEnd,
	}
	if got := kindsOf(events); len(got) != len(wantKinds) {
		t.Fatalf("event kinds = %v, want %v", got, wantKinds)
	} else {
		for i := range wantKinds {
			if got[i] != wantKinds[i] {
				t.Fatalf("event kinds = %v, want %v", got, wantKinds)
			}
		}
	}
	if events[0].Note != srv.URL || events[0].Value != 0 || events[0].Extra != 0 {
		t.Errorf("attempt event = %+v, want replica %s, ordinal 0, not a hedge", events[0], srv.URL)
	}
	open := events[2]
	if open.Note != srv.URL || open.Value != 2 || open.Extra != 3 {
		t.Errorf("remote-span bracket = %+v, want (replica, 2 events, 3 dropped)", open)
	}
	// The remote events replay verbatim, shard step ordinals intact.
	if events[3].Step != 0 || events[4].Step != 7 || events[4].Note != "exhausted" {
		t.Errorf("remote events mangled: %+v / %+v", events[3], events[4])
	}
}

// TestGroupSearchUntracedStaysDark: without a context tracer the wire
// request carries no trace flag and no span work happens anywhere.
func TestGroupSearchUntracedStaysDark(t *testing.T) {
	srv, lastReq := tracedReplica(t, []obs.SpanEvent{{Kind: "begin"}}, 0)
	g := mustGroup(t, []string{srv.URL}, fastCfg(), nil)
	resp, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil)
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	req := lastReq.Load().(SearchRequest)
	if req.Trace || req.TraceID != "" {
		t.Errorf("untraced request carried trace fields: %+v", req)
	}
	if resp.Span != nil {
		t.Errorf("untraced response carried a span: %+v", resp.Span)
	}
}

// TestGroupRetryTraceSequence: a broken first replica produces a failed
// attempt, a retry marker with the seeded backoff delay, then the
// failover attempt — all in the caller's trace.
func TestGroupRetryTraceSequence(t *testing.T) {
	bad := newFakeReplica(t, resultsOf(1))
	bad.broken.Store(true)
	good := newFakeReplica(t, resultsOf(2))
	g := mustGroup(t, []string{bad.URL, good.URL}, fastCfg(), nil)

	rec := obs.NewTraceRecorder(0)
	ctx := obs.ContextWithTracer(context.Background(), rec)
	if _, err := g.Search(ctx, SearchRequest{Variant: VariantSearch}, nil); err != nil {
		t.Fatalf("Search: %v", err)
	}
	events := rec.Events()
	wantKinds := []string{
		TraceAttempt, TraceAttemptErr, TraceRetry,
		TraceAttempt, TraceAttemptOK,
		TraceRemoteSpan, TraceRemoteSpanEnd,
	}
	got := kindsOf(events)
	if fmt.Sprint(got) != fmt.Sprint(wantKinds) {
		t.Fatalf("event kinds = %v, want %v", got, wantKinds)
	}
	if want := bad.URL + ": " + OutcomeTransport; events[1].Note != want {
		t.Errorf("failed attempt note = %q, want %q", events[1].Note, want)
	}
	if events[2].Value != 1 {
		t.Errorf("retry ordinal = %v, want 1", events[2].Value)
	}
	if events[3].Note != good.URL || events[3].Value != 1 {
		t.Errorf("failover attempt = %+v, want replica %s at ordinal 1", events[3], good.URL)
	}
}

// TestHedgeTraceSequence drives the injected hedge timer by hand and
// pins the full hedge story in the trace: primary issued, hedge fired,
// hedge attempt issued, hedge answered, hedge won, loser cancelled.
func TestHedgeTraceSequence(t *testing.T) {
	slow := newFakeReplica(t, resultsOf(1))
	slow.gate = make(chan struct{})
	defer close(slow.gate)
	fast := newFakeReplica(t, resultsOf(2))

	fire := make(chan time.Time, 1)
	cfg := fastCfg()
	cfg.HedgeDelay = time.Hour // the injected timer decides, not the clock
	cfg.Timer = func(d time.Duration) (<-chan time.Time, func() bool) {
		return fire, func() bool { return true }
	}
	g := mustGroup(t, []string{slow.URL, fast.URL}, cfg, nil)

	rec := obs.NewTraceRecorder(0)
	ctx := obs.ContextWithTracer(context.Background(), rec)
	done := make(chan error, 1)
	go func() {
		_, err := g.Search(ctx, SearchRequest{Variant: VariantSearch}, nil)
		done <- err
	}()
	waitFor(t, func() bool { return slow.searches.Load() > 0 })
	fire <- time.Time{}
	if err := <-done; err != nil {
		t.Fatalf("Search: %v", err)
	}

	events := rec.Events()
	wantKinds := []string{
		TraceAttempt,                  // primary issued
		TraceHedge, TraceAttempt,      // timer fired, hedge issued
		TraceAttemptOK, TraceHedgeWin, // hedge answered first
		TraceHedgeCancel, // primary cancelled
		TraceRemoteSpan, TraceRemoteSpanEnd,
	}
	got := kindsOf(events)
	if fmt.Sprint(got) != fmt.Sprint(wantKinds) {
		t.Fatalf("event kinds = %v, want %v", got, wantKinds)
	}
	if events[0].Note != slow.URL || events[0].Extra != 0 {
		t.Errorf("primary attempt = %+v", events[0])
	}
	if events[2].Note != fast.URL || events[2].Extra != 1 {
		t.Errorf("hedge attempt = %+v, want replica %s with hedge flag", events[2], fast.URL)
	}
	if events[5].Note != slow.URL {
		t.Errorf("hedge-cancel note = %q, want the losing primary %s", events[5].Note, slow.URL)
	}
	if events[6].Note != fast.URL {
		t.Errorf("remote span attributed to %q, want the winning hedge %s", events[6].Note, fast.URL)
	}
}

// TestGroupExhaustedTraced: every attempt failing leaves a terminal
// exhaustion marker carrying the attempt budget.
func TestGroupExhaustedTraced(t *testing.T) {
	bad := newFakeReplica(t, resultsOf(1))
	bad.broken.Store(true)
	cfg := fastCfg()
	g := mustGroup(t, []string{bad.URL}, cfg, nil)

	rec := obs.NewTraceRecorder(0)
	ctx := obs.ContextWithTracer(context.Background(), rec)
	if _, err := g.Search(ctx, SearchRequest{Variant: VariantSearch}, nil); !errors.Is(err, ErrGroupExhausted) {
		t.Fatalf("Search err = %v, want ErrGroupExhausted", err)
	}
	events := rec.Events()
	last := events[len(events)-1]
	if last.Kind != TraceExhausted || last.Value != float64(cfg.MaxAttempts) || last.Note != OutcomeTransport {
		t.Fatalf("terminal event = %+v, want %s with budget %d and outcome %s",
			last, TraceExhausted, cfg.MaxAttempts, OutcomeTransport)
	}
	// The single replica trips its threshold-2 budget on the second
	// failure: the ejection rides the attempt that caused it.
	var sawEject bool
	for _, ev := range events {
		if ev.Kind == TraceEject && ev.Note == bad.URL {
			sawEject = true
		}
	}
	if !sawEject {
		t.Errorf("no %s event in %v", TraceEject, kindsOf(events))
	}
}

// TestAttemptOutcomeMetrics: the uots_rpc_attempt_outcomes_total family
// classifies attempts per replica.
func TestAttemptOutcomeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	bad := newFakeReplica(t, resultsOf(1))
	bad.broken.Store(true)
	good := newFakeReplica(t, resultsOf(2))
	g := mustGroup(t, []string{bad.URL, good.URL}, fastCfg(), NewMetrics(reg))
	if _, err := g.Search(context.Background(), SearchRequest{Variant: VariantSearch}, nil); err != nil {
		t.Fatalf("Search: %v", err)
	}
	vec := reg.CounterVec("uots_rpc_attempt_outcomes_total", "", "replica", "outcome")
	if got := vec.With(bad.URL, OutcomeTransport).Value(); got != 1 {
		t.Errorf("attempt_outcomes{bad,transport} = %d, want 1", got)
	}
	if got := vec.With(good.URL, OutcomeOK).Value(); got != 1 {
		t.Errorf("attempt_outcomes{good,ok} = %d, want 1", got)
	}
}

// TestServerSearchSpanRoundTrip: a traced wire request runs the shard
// engine under a recorder, answers with the span, and retains it under
// the trace ID for the shard's own /debug/trace endpoint.
func TestServerSearchSpanRoundTrip(t *testing.T) {
	f := testServerFixture(t)
	s, err := NewShardServer(f.engine, nil, 0, 1)
	if err != nil {
		t.Fatalf("NewShardServer: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, nil)

	rng := rand.New(rand.NewPCG(31, 0))
	q := f.query(rng, 5)
	resp, err := c.Search(context.Background(), SearchRequest{
		Variant: VariantSearch, Query: q, Trace: true, TraceID: "trace-xyz",
	})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	if len(resp.Span) == 0 {
		t.Fatal("traced request answered with an empty span")
	}
	if first := resp.Span[0].Kind; first != core.TraceBegin {
		t.Errorf("first remote event kind = %q, want %q", first, core.TraceBegin)
	}
	if last := resp.Span[len(resp.Span)-1].Kind; last != core.TraceTerminate {
		t.Errorf("last remote event kind = %q, want %q", last, core.TraceTerminate)
	}

	rec, ok := s.Traces().Get("trace-xyz")
	if !ok {
		t.Fatal("shard did not retain the trace under its ID")
	}
	if got := len(rec.Events()); got != len(resp.Span) {
		t.Errorf("retained trace has %d events, wire span %d", got, len(resp.Span))
	}

	// An untraced request must not leave a recorder behind.
	if _, err := c.Search(context.Background(), SearchRequest{Variant: VariantSearch, Query: q}); err != nil {
		t.Fatalf("untraced Search: %v", err)
	}
	if ids := s.Traces().IDs(); len(ids) != 1 {
		t.Errorf("trace store IDs = %v, want only trace-xyz", ids)
	}
}

// TestServerBatchSpanRoundTrip: the batch path shares one recorder
// across the whole batch and answers with its span.
func TestServerBatchSpanRoundTrip(t *testing.T) {
	f := testServerFixture(t)
	s, err := NewShardServer(f.engine, nil, 0, 1)
	if err != nil {
		t.Fatalf("NewShardServer: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	c := NewClient(hs.URL, nil)

	rng := rand.New(rand.NewPCG(31, 0))
	queries := []core.Query{f.query(rng, 3), f.query(rng, 3)}
	resp, err := c.Batch(context.Background(), BatchRequest{
		Queries: queries, Opts: BatchOptions{Workers: 1}, Trace: true, TraceID: "batch-1",
	})
	if err != nil {
		t.Fatalf("Batch: %v", err)
	}
	if len(resp.Span) == 0 {
		t.Fatal("traced batch answered with an empty span")
	}
	if _, ok := s.Traces().Get("batch-1"); !ok {
		t.Error("shard did not retain the batch trace under its ID")
	}
}
