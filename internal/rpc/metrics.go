package rpc

import (
	"uots/internal/obs"
)

// Metrics are the client-side uots_rpc_* instruments shared by every
// replica group a remote executor drives. A nil *Metrics disables
// everything; every method is nil-receiver-safe so call sites stay
// unconditional. Exported (unlike the shard package's private metrics)
// so the obs encoding tests can assert the family's exact Prometheus
// text form.
type Metrics struct {
	requests        *obs.CounterVec // per replica
	transportErrors *obs.CounterVec // per replica
	attemptOutcomes *obs.CounterVec // per replica × outcome
	retries         *obs.Counter
	hedges          *obs.Counter
	hedgeWins       *obs.Counter
	ejections       *obs.CounterVec // per replica
	readmissions    *obs.CounterVec // per replica
	probeFailures   *obs.CounterVec // per replica
	groupExhausted  *obs.Counter
	latency         *obs.HistogramVec // per replica
}

// NewMetrics registers the uots_rpc_* family on reg. A nil registry
// returns nil, which disables recording.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		return nil
	}
	return &Metrics{
		requests: reg.CounterVec("uots_rpc_requests_total",
			"RPC attempts sent, by replica (includes retries and hedges).", "replica"),
		transportErrors: reg.CounterVec("uots_rpc_transport_errors_total",
			"RPC attempts that failed in the transport (dial, connection, decode, attempt timeout), by replica.", "replica"),
		attemptOutcomes: reg.CounterVec("uots_rpc_attempt_outcomes_total",
			"RPC attempt outcomes by replica and classification (ok, transport, engine, canceled).", "replica", "outcome"),
		retries: reg.Counter("uots_rpc_retries_total",
			"RPC calls re-sent after a transient failure."),
		hedges: reg.Counter("uots_rpc_hedges_total",
			"Hedged (duplicate) RPC attempts fired after the tail-latency delay."),
		hedgeWins: reg.Counter("uots_rpc_hedge_wins_total",
			"Hedged attempts that answered before the primary."),
		ejections: reg.CounterVec("uots_rpc_replica_ejections_total",
			"Replicas ejected from rotation after exhausting their error budget, by replica.", "replica"),
		readmissions: reg.CounterVec("uots_rpc_replica_readmissions_total",
			"Ejected replicas re-admitted after a successful health probe, by replica.", "replica"),
		probeFailures: reg.CounterVec("uots_rpc_probe_failures_total",
			"Failed health probes, by replica.", "replica"),
		groupExhausted: reg.Counter("uots_rpc_group_exhausted_total",
			"Calls that failed every retry and failover attempt across a whole replica group."),
		latency: reg.HistogramVec("uots_rpc_request_seconds",
			"RPC attempt latency by replica (successful and failed attempts).", nil, "replica"),
	}
}

// replicaCounters are one replica's pre-resolved series, looked up once
// at group construction so the per-attempt path does no label
// resolution.
type replicaCounters struct {
	requests        *obs.Counter
	transportErrors *obs.Counter
	ejections       *obs.Counter
	readmissions    *obs.Counter
	probeFailures   *obs.Counter
	latency         *obs.Histogram

	attemptOK        *obs.Counter
	attemptTransport *obs.Counter
	attemptEngine    *obs.Counter
	attemptCanceled  *obs.Counter
}

func (m *Metrics) forReplica(base string) replicaCounters {
	if m == nil {
		return replicaCounters{}
	}
	return replicaCounters{
		requests:        m.requests.With(base),
		transportErrors: m.transportErrors.With(base),
		ejections:       m.ejections.With(base),
		readmissions:    m.readmissions.With(base),
		probeFailures:   m.probeFailures.With(base),
		latency:         m.latency.With(base),

		attemptOK:        m.attemptOutcomes.With(base, OutcomeOK),
		attemptTransport: m.attemptOutcomes.With(base, OutcomeTransport),
		attemptEngine:    m.attemptOutcomes.With(base, OutcomeEngine),
		attemptCanceled:  m.attemptOutcomes.With(base, OutcomeCanceled),
	}
}

// attempt counts one attempt under its outcome label.
func (c replicaCounters) attempt(outcome string) {
	var ctr *obs.Counter
	switch outcome {
	case OutcomeOK:
		ctr = c.attemptOK
	case OutcomeTransport:
		ctr = c.attemptTransport
	case OutcomeEngine:
		ctr = c.attemptEngine
	case OutcomeCanceled:
		ctr = c.attemptCanceled
	}
	if ctr != nil {
		ctr.Inc()
	}
}

func (c replicaCounters) request() {
	if c.requests != nil {
		c.requests.Inc()
	}
}

func (c replicaCounters) transportError() {
	if c.transportErrors != nil {
		c.transportErrors.Inc()
	}
}

func (c replicaCounters) ejection() {
	if c.ejections != nil {
		c.ejections.Inc()
	}
}

func (c replicaCounters) readmission() {
	if c.readmissions != nil {
		c.readmissions.Inc()
	}
}

func (c replicaCounters) probeFailure() {
	if c.probeFailures != nil {
		c.probeFailures.Inc()
	}
}

func (c replicaCounters) observe(seconds float64) {
	if c.latency != nil {
		c.latency.Observe(seconds)
	}
}

func (m *Metrics) recordRetry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

func (m *Metrics) recordHedge() {
	if m == nil {
		return
	}
	m.hedges.Inc()
}

func (m *Metrics) recordHedgeWin() {
	if m == nil {
		return
	}
	m.hedgeWins.Inc()
}

func (m *Metrics) recordGroupExhausted() {
	if m == nil {
		return
	}
	m.groupExhausted.Inc()
}
