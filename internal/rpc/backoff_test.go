package rpc

import (
	"math/rand/v2"
	"testing"
	"time"
)

// TestBackoffSchedule pins the jitterless schedule exactly: capped
// doubling from Base, zero before the first retry.
func TestBackoffSchedule(t *testing.T) {
	b := BackoffConfig{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}
	want := []time.Duration{
		0,                     // attempt 0: the initial call never waits
		10 * time.Millisecond, // attempt 1
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped
		80 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", attempt, got, w)
		}
	}
}

func TestBackoffEdgeCases(t *testing.T) {
	cases := []struct {
		name    string
		b       BackoffConfig
		attempt int
		want    time.Duration
	}{
		{"zero base disables", BackoffConfig{Base: 0, Cap: time.Second}, 3, 0},
		{"negative base disables", BackoffConfig{Base: -time.Second}, 1, 0},
		{"negative attempt", BackoffConfig{Base: time.Millisecond}, -1, 0},
		{"cap below base clamps to base", BackoffConfig{Base: 50 * time.Millisecond, Cap: time.Millisecond}, 4, 50 * time.Millisecond},
		{"zero cap means no growth", BackoffConfig{Base: 7 * time.Millisecond}, 5, 7 * time.Millisecond},
		{"huge attempt does not overflow", BackoffConfig{Base: time.Hour, Cap: 2 * time.Hour}, 400, 2 * time.Hour},
	}
	for _, c := range cases {
		if got := c.b.Delay(c.attempt, nil); got != c.want {
			t.Errorf("%s: Delay(%d) = %v, want %v", c.name, c.attempt, got, c.want)
		}
	}
}

// TestBackoffJitterBounds draws many jittered delays and asserts every
// one lands in [d·(1−frac), d·(1+frac)].
func TestBackoffJitterBounds(t *testing.T) {
	b := BackoffConfig{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, JitterFrac: 0.5}
	rng := rand.New(rand.NewPCG(7, 7))
	for attempt := 1; attempt <= 6; attempt++ {
		pre := BackoffConfig{Base: b.Base, Cap: b.Cap}.Delay(attempt, nil)
		lo := time.Duration(float64(pre) * 0.5)
		hi := time.Duration(float64(pre) * 1.5)
		for i := 0; i < 200; i++ {
			got := b.Delay(attempt, rng)
			if got < lo || got > hi {
				t.Fatalf("attempt %d draw %d: Delay = %v outside [%v, %v]", attempt, i, got, lo, hi)
			}
		}
	}
}

// TestBackoffJitterDeterministic: the same seed yields the same
// schedule — the whole retry cadence is reproducible from cfg.Seed.
func TestBackoffJitterDeterministic(t *testing.T) {
	b := BackoffConfig{Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond, JitterFrac: 0.3}
	a := rand.New(rand.NewPCG(42, 42))
	c := rand.New(rand.NewPCG(42, 42))
	for attempt := 1; attempt <= 8; attempt++ {
		da, dc := b.Delay(attempt, a), b.Delay(attempt, c)
		if da != dc {
			t.Fatalf("attempt %d: same seed produced %v and %v", attempt, da, dc)
		}
	}
}

// TestBackoffJitterFracClamped: out-of-range fractions clamp instead of
// producing negative or runaway delays.
func TestBackoffJitterFracClamped(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	over := BackoffConfig{Base: 10 * time.Millisecond, JitterFrac: 5}
	for i := 0; i < 100; i++ {
		got := over.Delay(1, rng)
		if got < 0 || got > 20*time.Millisecond {
			t.Fatalf("JitterFrac>1 clamp: Delay = %v outside [0, 20ms]", got)
		}
	}
	neg := BackoffConfig{Base: 10 * time.Millisecond, JitterFrac: -1}
	if got := neg.Delay(1, rng); got != 10*time.Millisecond {
		t.Fatalf("JitterFrac<0 clamp: Delay = %v, want 10ms", got)
	}
}
