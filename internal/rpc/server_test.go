package rpc

import (
	"context"
	"errors"
	"math"
	"math/rand/v2"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// serverFixture is a small engine world for wire-protocol tests.
type serverFixture struct {
	g      *roadnet.Graph
	vocab  *textual.SyntheticVocab
	db     *trajdb.Store
	engine *core.Engine
}

var (
	serverFixtureOnce sync.Once
	serverFixtureVal  serverFixture
)

func testServerFixture(t *testing.T) serverFixture {
	t.Helper()
	serverFixtureOnce.Do(func() {
		g := roadnet.BRNLike(0.12, 7)
		vocab := textual.GenerateVocab(6, 40, 1.0, 11)
		db, err := trajdb.Generate(g, trajdb.GenOptions{Count: 80, MeanSamples: 15, Vocab: vocab, Seed: 17})
		if err != nil {
			panic("fixture: " + err.Error())
		}
		engine, err := core.NewEngine(db, core.Options{})
		if err != nil {
			panic("fixture: " + err.Error())
		}
		serverFixtureVal = serverFixture{g: g, vocab: vocab, db: db, engine: engine}
	})
	return serverFixtureVal
}

func (f serverFixture) query(rng *rand.Rand, k int) core.Query {
	locs := make([]roadnet.VertexID, 3)
	for i := range locs {
		locs[i] = roadnet.VertexID(rng.IntN(f.g.NumVertices()))
	}
	regions := trajdb.NewRegionTopics(f.g.Bounds(), f.vocab.NumTopics())
	topic := regions.TopicOf(f.g.Point(locs[0]))
	kws := f.vocab.DrawQueryTerms(topic, 3, 0.8, rng)
	return core.Query{Locations: locs, Keywords: kws, Lambda: 0.5, K: k}
}

func startShardServer(t *testing.T, engine *core.Engine, globals []trajdb.TrajID, idx, n int) *Client {
	t.Helper()
	s, err := NewShardServer(engine, globals, idx, n)
	if err != nil {
		t.Fatalf("NewShardServer: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return NewClient(hs.URL, nil)
}

// TestServerSearchRoundTrip: every variant's wire answer is exactly the
// engine's in-process answer — gob must round-trip float64 scores and
// distances bit-for-bit.
func TestServerSearchRoundTrip(t *testing.T) {
	f := testServerFixture(t)
	c := startShardServer(t, f.engine, nil, 0, 1)
	rng := rand.New(rand.NewPCG(19, 0))
	q := f.query(rng, 5)
	ctx := context.Background()
	window := core.TimeWindow{From: 6 * 3600, To: 18 * 3600}
	div := core.DiversifyOptions{Mu: 0.4}

	cases := []struct {
		req  SearchRequest
		want func() ([]core.Result, core.SearchStats, error)
	}{
		{SearchRequest{Variant: VariantSearch, Query: q},
			func() ([]core.Result, core.SearchStats, error) { return f.engine.SearchCtx(ctx, q) }},
		{SearchRequest{Variant: VariantThreshold, Query: q, Theta: 0.35},
			func() ([]core.Result, core.SearchStats, error) { return f.engine.SearchThresholdCtx(ctx, q, 0.35) }},
		{SearchRequest{Variant: VariantWindowed, Query: q, Window: window},
			func() ([]core.Result, core.SearchStats, error) { return f.engine.SearchWindowedCtx(ctx, q, window) }},
		{SearchRequest{Variant: VariantOrderAware, Query: q},
			func() ([]core.Result, core.SearchStats, error) { return f.engine.OrderAwareSearchCtx(ctx, q) }},
		{SearchRequest{Variant: VariantDiversified, Query: q, Div: div},
			func() ([]core.Result, core.SearchStats, error) { return f.engine.DiversifiedSearchCtx(ctx, q, div) }},
	}
	for _, tc := range cases {
		want, _, err := tc.want()
		if err != nil {
			t.Fatalf("%s: engine: %v", tc.req.Variant, err)
		}
		resp, err := c.Search(ctx, tc.req)
		if err != nil {
			t.Fatalf("%s: wire: %v", tc.req.Variant, err)
		}
		// nil and empty both mean "no results" (gob does not preserve
		// the distinction); normalise before the exact comparison.
		got := resp.Results
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: wire results differ from engine results\n got: %+v\nwant: %+v", tc.req.Variant, got, want)
		}
	}
}

// TestServerBatchRoundTrip: the batch path answers exactly like the
// in-process batch, slot for slot.
func TestServerBatchRoundTrip(t *testing.T) {
	f := testServerFixture(t)
	c := startShardServer(t, f.engine, nil, 0, 1)
	rng := rand.New(rand.NewPCG(23, 0))
	queries := []core.Query{f.query(rng, 5), f.query(rng, 3), {Locations: nil, K: 5}} // last one invalid
	opts := BatchOptions{SharedExpansion: true}
	ctx := context.Background()

	want, _, err := f.engine.SearchBatch(ctx, queries, opts.Core())
	if err != nil {
		t.Fatalf("engine batch: %v", err)
	}
	resp, err := c.Batch(ctx, BatchRequest{Queries: queries, Opts: opts})
	if err != nil {
		t.Fatalf("wire batch: %v", err)
	}
	if len(resp.Entries) != len(want) {
		t.Fatalf("wire batch answered %d entries, want %d", len(resp.Entries), len(want))
	}
	for i, e := range resp.Entries {
		w := want[i]
		if e.Index != w.Index {
			t.Errorf("entry %d: index %d, want %d", i, e.Index, w.Index)
		}
		if (e.Err() == nil) != (w.Err == nil) {
			t.Errorf("entry %d: err %v, want %v", i, e.Err(), w.Err)
			continue
		}
		if w.Err != nil {
			continue
		}
		if len(e.Results) == 0 && len(w.Results) == 0 {
			continue
		}
		if !reflect.DeepEqual(e.Results, w.Results) {
			t.Errorf("entry %d: results differ\n got: %+v\nwant: %+v", i, e.Results, w.Results)
		}
	}
}

// TestServerGlobalsRemap: results cross the wire in global IDs.
func TestServerGlobalsRemap(t *testing.T) {
	f := testServerFixture(t)
	n := f.db.NumTrajectories()
	globals := make([]trajdb.TrajID, n)
	const shift = 1000
	for i := range globals {
		globals[i] = trajdb.TrajID(i + shift)
	}
	c := startShardServer(t, f.engine, globals, 0, 1)
	rng := rand.New(rand.NewPCG(29, 0))
	q := f.query(rng, 5)

	want, _, err := f.engine.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	resp, err := c.Search(context.Background(), SearchRequest{Variant: VariantSearch, Query: q})
	if err != nil {
		t.Fatalf("wire: %v", err)
	}
	if len(resp.Results) != len(want) {
		t.Fatalf("wire answered %d results, want %d", len(resp.Results), len(want))
	}
	for i, r := range resp.Results {
		if r.Traj != want[i].Traj+shift {
			t.Errorf("rank %d: wire traj %d, want %d (local %d remapped)", i, r.Traj, want[i].Traj+shift, want[i].Traj)
		}
	}
}

func TestServerBadGlobals(t *testing.T) {
	f := testServerFixture(t)
	if _, err := NewShardServer(f.engine, []trajdb.TrajID{1, 2, 3}, 0, 1); !errors.Is(err, ErrBadGlobals) {
		t.Fatalf("NewShardServer with short globals: err = %v, want ErrBadGlobals", err)
	}
}

// TestServerErrorEnvelope: engine rejections cross the wire as coded
// envelopes and decode back into recognisable errors.
func TestServerErrorEnvelope(t *testing.T) {
	f := testServerFixture(t)
	c := startShardServer(t, f.engine, nil, 0, 1)
	ctx := context.Background()

	// Unknown variant → coded bad_query.
	_, err := c.Search(ctx, SearchRequest{Variant: "bogus"})
	var we *Error
	if !errors.As(err, &we) || we.Code != CodeBadQuery {
		t.Fatalf("unknown variant: err = %v, want coded bad_query", err)
	}

	// Engine validation error (no locations) → coded bad_query, and not
	// a transport error (it must not trigger retries).
	_, err = c.Search(ctx, SearchRequest{Variant: VariantSearch, Query: core.Query{K: 5}})
	if !errors.As(err, &we) || we.Code != CodeBadQuery {
		t.Fatalf("invalid query: err = %v, want coded bad_query", err)
	}
	if IsTransient(err) {
		t.Fatalf("engine validation error classified transient: %v", err)
	}
}

// TestServerEmptyShard: a nil engine serves every request with zero
// results, mirroring how the in-process executor skips empty shards.
func TestServerEmptyShard(t *testing.T) {
	c := startShardServer(t, nil, nil, 1, 4)
	ctx := context.Background()
	resp, err := c.Search(ctx, SearchRequest{Variant: VariantSearch, Query: core.Query{K: 5}})
	if err != nil || len(resp.Results) != 0 {
		t.Fatalf("empty shard search: (%d results, %v), want (0, nil)", len(resp.Results), err)
	}
	bresp, err := c.Batch(ctx, BatchRequest{Queries: make([]core.Query, 3)})
	if err != nil || len(bresp.Entries) != 3 {
		t.Fatalf("empty shard batch: (%d entries, %v), want (3, nil)", len(bresp.Entries), err)
	}
	h, err := c.Health(ctx)
	if err != nil || h.Shard != 1 || h.Shards != 4 || h.Trajs != 0 {
		t.Fatalf("empty shard health: (%+v, %v), want shard 1/4 with 0 trajs", h, err)
	}
}

func TestServerHealth(t *testing.T) {
	f := testServerFixture(t)
	c := startShardServer(t, f.engine, nil, 2, 3)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" || h.Shard != 2 || h.Shards != 3 || h.Trajs != f.db.NumTrajectories() {
		t.Fatalf("Health = %+v, want ok 2/3 with %d trajs", h, f.db.NumTrajectories())
	}
}

// TestServerBoundPiggyback: a same-K variant seeds its SharedBound from
// the request and reports its final threshold back; the hint changes
// pruning only, never the answer.
func TestServerBoundPiggyback(t *testing.T) {
	f := testServerFixture(t)
	c := startShardServer(t, f.engine, nil, 0, 1)
	rng := rand.New(rand.NewPCG(31, 0))
	q := f.query(rng, 5)
	ctx := context.Background()

	base, err := c.Search(ctx, SearchRequest{Variant: VariantSearch, Query: q})
	if err != nil {
		t.Fatalf("wire: %v", err)
	}
	if base.Bound <= 0 {
		t.Fatalf("no piggybacked bound on a full-K answer: %v", base.Bound)
	}
	hinted, err := c.Search(ctx, SearchRequest{Variant: VariantSearch, Query: q, Bound: base.Bound})
	if err != nil {
		t.Fatalf("wire (hinted): %v", err)
	}
	// A tight seed bound can resolve a winner's distances via the probe
	// path instead of incremental relaxation — same shortest paths, last
	// ULP may differ — so compare the ranking and scores, not raw bytes.
	if len(hinted.Results) != len(base.Results) {
		t.Fatalf("bound hint changed result count: %d, want %d", len(hinted.Results), len(base.Results))
	}
	for i := range base.Results {
		h, b := hinted.Results[i], base.Results[i]
		if h.Traj != b.Traj || math.Abs(h.Score-b.Score) > 1e-9 {
			t.Fatalf("bound hint changed rank %d: (%d, %v), want (%d, %v)", i, h.Traj, h.Score, b.Traj, b.Score)
		}
	}
}

// TestServerCanceledContext: errors.Is works across the network for the
// canonical context sentinels.
func TestServerCanceledContext(t *testing.T) {
	f := testServerFixture(t)
	c := startShardServer(t, f.engine, nil, 0, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Search(ctx, SearchRequest{Variant: VariantSearch, Query: core.Query{K: 5}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled search: err = %v, want context.Canceled", err)
	}
}
