package mapmatch

import (
	"errors"
	"math/rand/v2"
	"testing"

	"uots/internal/geo"
	"uots/internal/roadnet"
)

func cityAndPath(t *testing.T, seed uint64) (*roadnet.Graph, []roadnet.VertexID) {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 15, Cols: 15, Style: roadnet.StyleDense, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	path, _, ok := roadnet.ShortestPath(g, 0, roadnet.VertexID(g.NumVertices()-1))
	if !ok || len(path) < 10 {
		t.Fatalf("bad test path (len %d)", len(path))
	}
	return g, path
}

func noisyFixes(g *roadnet.Graph, path []roadnet.VertexID, sigma float64, rng *rand.Rand) []geo.Point {
	fixes := make([]geo.Point, len(path))
	for i, v := range path {
		p := g.Point(v)
		fixes[i] = geo.Point{X: p.X + rng.NormFloat64()*sigma, Y: p.Y + rng.NormFloat64()*sigma}
	}
	return fixes
}

func TestMatchRecoversCleanTrace(t *testing.T) {
	g, path := cityAndPath(t, 1)
	fixes := make([]geo.Point, len(path))
	for i, v := range path {
		fixes[i] = g.Point(v) // zero noise
	}
	m := NewMatcher(g, nil, Options{})
	got, err := m.Match(fixes)
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != path[i] {
			t.Fatalf("clean trace mismatched at %d: %d vs %d", i, got[i], path[i])
		}
	}
}

func TestMatchRecoversNoisyTrace(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	g, path := cityAndPath(t, 2)
	fixes := noisyFixes(g, path, 0.02, rng) // 20 m noise on a 250 m grid
	m := NewMatcher(g, nil, Options{SigmaKm: 0.02})
	got, err := m.Match(fixes)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i := range got {
		if got[i] == path[i] {
			correct++
		}
	}
	if frac := float64(correct) / float64(len(path)); frac < 0.9 {
		t.Errorf("noisy recovery %.2f, want ≥ 0.9", frac)
	}
}

func TestMatchPrefersNetworkContinuity(t *testing.T) {
	// A fix exactly between two vertices must resolve toward the one the
	// route passes through: build a line graph and perturb a middle fix
	// sideways.
	var b roadnet.Builder
	for i := 0; i < 6; i++ {
		b.AddVertex(geo.Point{X: float64(i) * 0.2, Y: 0})
	}
	// An off-route decoy vertex near fix 3 but disconnected from the line
	// except via a long detour.
	decoy := b.AddVertex(geo.Point{X: 0.6, Y: 0.05})
	for i := 0; i < 5; i++ {
		if err := b.AddEdge(roadnet.VertexID(i), roadnet.VertexID(i+1), 0.2); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.AddEdge(0, decoy, 5); err != nil { // decoy is far in network terms
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fixes := []geo.Point{
		{X: 0.0, Y: 0}, {X: 0.2, Y: 0}, {X: 0.4, Y: 0},
		{X: 0.6, Y: 0.04}, // closer to decoy's y but on the route's path
		{X: 0.8, Y: 0}, {X: 1.0, Y: 0},
	}
	m := NewMatcher(g, nil, Options{SigmaKm: 0.05, CandidateRadiusKm: 0.15})
	got, err := m.Match(fixes)
	if err != nil {
		t.Fatal(err)
	}
	if got[3] == decoy {
		t.Error("matcher chose the network-implausible decoy")
	}
	if got[3] != 3 {
		t.Errorf("fix 3 matched to %d, want 3", got[3])
	}
}

func TestMatchErrors(t *testing.T) {
	g, _ := cityAndPath(t, 3)
	m := NewMatcher(g, nil, Options{})
	if _, err := m.Match(nil); !errors.Is(err, ErrNoPoints) {
		t.Errorf("no points: %v", err)
	}
	// A fix kilometres off the network has no candidates.
	if _, err := m.Match([]geo.Point{{X: 999, Y: 999}}); !errors.Is(err, ErrNoCandidates) {
		t.Errorf("off-network fix: %v", err)
	}
}

func TestMatchSingleFix(t *testing.T) {
	g, path := cityAndPath(t, 4)
	m := NewMatcher(g, nil, Options{})
	got, err := m.Match([]geo.Point{g.Point(path[0])})
	if err != nil || len(got) != 1 || got[0] != path[0] {
		t.Fatalf("single fix = (%v, %v)", got, err)
	}
}

func TestCollapseRepeats(t *testing.T) {
	in := []roadnet.VertexID{1, 1, 2, 2, 2, 3, 1, 1}
	want := []roadnet.VertexID{1, 2, 3, 1}
	got := CollapseRepeats(in)
	if len(got) != len(want) {
		t.Fatalf("CollapseRepeats = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CollapseRepeats = %v, want %v", got, want)
		}
	}
	if CollapseRepeats(nil) != nil {
		t.Error("nil input should give nil")
	}
}

func TestMatcherSharedIndex(t *testing.T) {
	g, path := cityAndPath(t, 7)
	idx := roadnet.NewVertexIndex(g, 0)
	m1 := NewMatcher(g, idx, Options{})
	m2 := NewMatcher(g, idx, Options{})
	fixes := make([]geo.Point, len(path))
	for i, v := range path {
		fixes[i] = g.Point(v)
	}
	a, err1 := m1.Match(fixes)
	b, err2 := m2.Match(fixes)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("matchers with shared index disagree")
		}
	}
}
