package mapmatch

import (
	"math/rand/v2"
	"testing"

	"uots/internal/geo"
	"uots/internal/roadnet"
)

func BenchmarkMatchTrace(b *testing.B) {
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 30, Cols: 30, Style: roadnet.StyleDense, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	path, _, ok := roadnet.ShortestPath(g, 0, roadnet.VertexID(g.NumVertices()-1))
	if !ok {
		b.Fatal("no path")
	}
	rng := rand.New(rand.NewPCG(2, 3))
	fixes := make([]geo.Point, len(path))
	for i, v := range path {
		p := g.Point(v)
		fixes[i] = geo.Point{X: p.X + rng.NormFloat64()*0.02, Y: p.Y + rng.NormFloat64()*0.02}
	}
	m := NewMatcher(g, nil, Options{SigmaKm: 0.02})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(fixes); err != nil {
			b.Fatal(err)
		}
	}
}
