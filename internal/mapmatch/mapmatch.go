// Package mapmatch implements the preprocessing substrate the UOTS paper
// assumes: snapping raw (noisy) GPS point sequences onto the vertices of a
// spatial network. It uses the standard HMM formulation — candidate
// vertices near each fix, Gaussian emission costs on the snap distance,
// and transition costs penalizing disagreement between network distance
// and straight-line movement — solved exactly with Viterbi dynamic
// programming over per-step candidate sets.
package mapmatch

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"uots/internal/geo"
	"uots/internal/roadnet"
)

// Options tunes the matcher. The zero value selects reasonable defaults
// for urban GPS traces (≈20 m noise, 250 m candidate radius).
type Options struct {
	// SigmaKm is the GPS noise standard deviation in kilometres
	// (default 0.02 = 20 m).
	SigmaKm float64
	// CandidateRadiusKm bounds the snap distance of candidate vertices
	// (default 0.25).
	CandidateRadiusKm float64
	// MaxCandidates caps the per-point candidate set, keeping Viterbi
	// transitions cheap (default 6; nearest candidates win).
	MaxCandidates int
	// Beta scales the transition cost |networkDist − straightDist| in
	// kilometres (default 0.5).
	Beta float64
	// MaxDetourFactor bounds the network-distance search per transition:
	// the Dijkstra stops beyond MaxDetourFactor·straightDist +
	// CandidateRadiusKm (default 4).
	MaxDetourFactor float64
}

func (o *Options) applyDefaults() {
	if o.SigmaKm <= 0 {
		o.SigmaKm = 0.02
	}
	if o.CandidateRadiusKm <= 0 {
		o.CandidateRadiusKm = 0.25
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 6
	}
	if o.Beta <= 0 {
		o.Beta = 0.5
	}
	if o.MaxDetourFactor <= 0 {
		o.MaxDetourFactor = 4
	}
}

// Errors returned by Match.
var (
	ErrNoPoints     = errors.New("mapmatch: no input points")
	ErrNoCandidates = errors.New("mapmatch: a fix has no network vertex within the candidate radius")
)

// Matcher snaps GPS traces onto one road network. It is not safe for
// concurrent use (it owns a Dijkstra workspace); create one per goroutine.
type Matcher struct {
	g    *roadnet.Graph
	idx  *roadnet.VertexIndex
	sssp *roadnet.SSSP
	opts Options
}

// NewMatcher returns a matcher over g using idx for candidate lookup.
// A nil idx builds a fresh index.
func NewMatcher(g *roadnet.Graph, idx *roadnet.VertexIndex, opts Options) *Matcher {
	opts.applyDefaults()
	if idx == nil {
		idx = roadnet.NewVertexIndex(g, 0)
	}
	return &Matcher{g: g, idx: idx, sssp: roadnet.NewSSSP(g), opts: opts}
}

// Match snaps the fixes onto the network, returning one vertex per input
// point (consecutive duplicates preserved; use CollapseRepeats for a
// vertex path). The i-th error position is reported when a fix has no
// candidate vertex in range.
func (m *Matcher) Match(points []geo.Point) ([]roadnet.VertexID, error) {
	if len(points) == 0 {
		return nil, ErrNoPoints
	}
	// Candidate generation.
	cands := make([][]candidate, len(points))
	for i, p := range points {
		cs, err := m.candidates(p)
		if err != nil {
			return nil, fmt.Errorf("%w (fix %d at %v)", err, i, p)
		}
		cands[i] = cs
	}
	// Viterbi.
	n := len(points)
	prevCost := make([]float64, len(cands[0]))
	for c, cand := range cands[0] {
		prevCost[c] = m.emission(cand.snapDist)
	}
	back := make([][]int, n) // back[i][c] = argmin predecessor index
	for i := 1; i < n; i++ {
		cur := cands[i]
		curCost := make([]float64, len(cur))
		back[i] = make([]int, len(cur))
		straight := points[i-1].Dist(points[i])
		// Network distances from every previous candidate to all current
		// candidates, with one bounded Dijkstra per previous candidate.
		trans := m.transitions(cands[i-1], cur, straight)
		for c := range cur {
			best := math.Inf(1)
			arg := 0
			for p := range cands[i-1] {
				cost := prevCost[p] + trans[p][c]
				if cost < best {
					best = cost
					arg = p
				}
			}
			curCost[c] = best + m.emission(cur[c].snapDist)
			back[i][c] = arg
		}
		prevCost = curCost
	}
	// Backtrack.
	bestC, bestCost := 0, math.Inf(1)
	for c, cost := range prevCost {
		if cost < bestCost {
			bestC, bestCost = c, cost
		}
	}
	out := make([]roadnet.VertexID, n)
	c := bestC
	for i := n - 1; i >= 1; i-- {
		out[i] = cands[i][c].v
		c = back[i][c]
	}
	out[0] = cands[0][c].v
	return out, nil
}

type candidate struct {
	v        roadnet.VertexID
	snapDist float64
}

func (m *Matcher) candidates(p geo.Point) ([]candidate, error) {
	ids := m.idx.Within(p, m.opts.CandidateRadiusKm)
	if len(ids) == 0 {
		// Fall back to the single nearest vertex if it is anywhere close
		// (2× radius); otherwise the fix is off-network.
		v, d := m.idx.Nearest(p)
		if v < 0 || d > 2*m.opts.CandidateRadiusKm {
			return nil, ErrNoCandidates
		}
		return []candidate{{v, d}}, nil
	}
	cs := make([]candidate, len(ids))
	for i, v := range ids {
		cs[i] = candidate{v, p.Dist(m.g.Point(v))}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].snapDist < cs[j].snapDist })
	if len(cs) > m.opts.MaxCandidates {
		cs = cs[:m.opts.MaxCandidates]
	}
	return cs, nil
}

// emission is the negative log-likelihood (up to constants) of snapping a
// fix at snapDist under Gaussian noise.
func (m *Matcher) emission(snapDist float64) float64 {
	z := snapDist / m.opts.SigmaKm
	return 0.5 * z * z
}

// transitions returns trans[p][c] = cost of moving from prev[p] to cur[c].
func (m *Matcher) transitions(prev, cur []candidate, straight float64) [][]float64 {
	limit := m.opts.MaxDetourFactor*straight + m.opts.CandidateRadiusKm
	trans := make([][]float64, len(prev))
	for p := range prev {
		row := make([]float64, len(cur))
		for c := range row {
			row[c] = math.Inf(1)
		}
		remaining := 0
		want := make(map[roadnet.VertexID][]int, len(cur))
		for c, cand := range cur {
			if len(want[cand.v]) == 0 {
				remaining++
			}
			want[cand.v] = append(want[cand.v], c)
		}
		m.sssp.RunUntil(prev[p].v, func(v roadnet.VertexID, d float64) bool {
			if d > limit {
				return false
			}
			if idxs, ok := want[v]; ok {
				for _, c := range idxs {
					row[c] = math.Abs(d-straight) / m.opts.Beta
				}
				delete(want, v)
				remaining--
				if remaining == 0 {
					return false
				}
			}
			return true
		})
		trans[p] = row
	}
	return trans
}

// CollapseRepeats removes consecutive duplicate vertices from a matched
// sequence, yielding a vertex path.
func CollapseRepeats(vs []roadnet.VertexID) []roadnet.VertexID {
	if len(vs) == 0 {
		return nil
	}
	out := make([]roadnet.VertexID, 1, len(vs))
	out[0] = vs[0]
	for _, v := range vs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
