package experiments

import (
	"context"
	"fmt"
	"io"
)

// Locality is a reconstruction-specific ablation (F9): how the spatial
// spread of the query locations changes the algorithms' behaviour. Trip
// intentions are local in practice (the default workload clusters
// locations within 15 % of the city diagonal); this sweep widens the
// cluster up to uniform city-wide locations — the stress regime in which
// any location-driven pruning must degrade, because no trajectory can be
// near all the intended places.
func Locality(ctx context.Context, w io.Writer, p Profile) error {
	dss, err := bothDatasets(p)
	if err != nil {
		return err
	}
	spreads := []float64{0.05, 0.15, 0.4, 1.0}
	algos := []AlgoConfig{DefaultAlgos()[0], DefaultAlgos()[3]}
	for _, ds := range dss {
		rt := NewTable(fmt.Sprintf("F9 effect of query locality — runtime ms (%s)", ds.Name),
			header("spread", algos)...)
		vt := NewTable(fmt.Sprintf("F9 effect of query locality — visited trajectories (%s)", ds.Name),
			header("spread", algos)...)
		for _, spread := range spreads {
			spec := DefaultQuerySpec()
			spec.SpreadFrac = spread
			queries := GenQueries(ds, spec, p.Queries)
			aggs, err := MeasureAll(ctx, ds, algos, queries, 0)
			if err != nil {
				return err
			}
			rrow := []string{fmt.Sprintf("%.2f", spread)}
			vrow := []string{fmt.Sprintf("%.2f", spread)}
			for _, a := range aggs {
				rrow = append(rrow, fmtMs(a.MeanMs))
				vrow = append(vrow, fmtCount(a.MeanVisited))
			}
			rt.AddRow(rrow...)
			vt.AddRow(vrow...)
		}
		if err := rt.Fprint(w); err != nil {
			return err
		}
		if err := vt.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}
