// Package experiments implements the evaluation harness: dataset
// construction mirroring the paper's two cities, workload generation,
// per-algorithm measurement, and one function per table/figure of the
// reproduced evaluation (see EXPERIMENTS.md for the experiment index and
// recorded outcomes).
package experiments

import (
	"fmt"
	"sync"

	"uots/internal/index"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// Dataset bundles one evaluation world: a road network shaped like one of
// the paper's cities, a keyword universe, and a trajectory corpus.
type Dataset struct {
	Name  string
	Graph *roadnet.Graph
	Vocab *textual.SyntheticVocab
	Store *trajdb.Store

	lmOnce sync.Once
	lm     *roadnet.Landmarks

	ixOnce sync.Once
	ix     *roadnet.VertexIndex

	tbOnce sync.Once
	tb     *index.TrajBounds
}

// Landmarks returns (building lazily, once) the ALT landmark set the
// TextFirst baseline uses for distance lower bounds.
func (d *Dataset) Landmarks() *roadnet.Landmarks {
	d.lmOnce.Do(func() {
		d.lm = roadnet.NewLandmarks(d.Graph, 16, 0)
	})
	return d.lm
}

// Bounds returns (building lazily, once) the per-trajectory landmark
// interval index over the dataset's corpus, sharing the Landmarks
// distance tables. Experiments opt into it explicitly (F13); Measure
// never attaches it, so the committed F1–F12 baselines are unaffected.
func (d *Dataset) Bounds() *index.TrajBounds {
	d.tbOnce.Do(func() {
		d.tb = index.NewTrajBounds(d.Store, d.Landmarks())
	})
	return d.tb
}

// VertexIndex returns (building lazily, once) the nearest-vertex grid
// index used by the workload generator and coordinate-based tooling.
func (d *Dataset) VertexIndex() *roadnet.VertexIndex {
	d.ixOnce.Do(func() {
		d.ix = roadnet.NewVertexIndex(d.Graph, 0)
	})
	return d.ix
}

// vertexIndexFor is a tiny indirection so workload code reads naturally.
func vertexIndexFor(d *Dataset) *roadnet.VertexIndex { return d.VertexIndex() }

// DatasetSpec parameterizes dataset construction.
type DatasetSpec struct {
	Name        string
	City        CityKind
	Scale       float64 // city size relative to the published network
	Trajs       int     // trajectory count
	MeanSamples int     // mean samples per trajectory (default 72)
	Topics      int     // keyword topics (default 12)
	TermsPer    int     // terms per topic (default 80)
	Seed        uint64
}

// CityKind selects which published road network the synthetic city mimics.
type CityKind int

const (
	// CityBRN mimics the Beijing Road Network (sparse, degree ≈ 2).
	CityBRN CityKind = iota
	// CityNRN mimics the New York Road Network (dense, degree ≈ 5.4).
	CityNRN
)

// String implements fmt.Stringer.
func (c CityKind) String() string {
	if c == CityNRN {
		return "NRN"
	}
	return "BRN"
}

// Build constructs the dataset. Construction is deterministic in the spec.
func (spec DatasetSpec) Build() (*Dataset, error) {
	if spec.Scale <= 0 {
		return nil, fmt.Errorf("experiments: dataset scale must be positive, got %g", spec.Scale)
	}
	if spec.MeanSamples == 0 {
		spec.MeanSamples = 72
	}
	if spec.Topics == 0 {
		spec.Topics = 12
	}
	if spec.TermsPer == 0 {
		spec.TermsPer = 80
	}
	var g *roadnet.Graph
	switch spec.City {
	case CityNRN:
		g = roadnet.NRNLike(spec.Scale, spec.Seed)
	default:
		g = roadnet.BRNLike(spec.Scale, spec.Seed)
	}
	vocab := textual.GenerateVocab(spec.Topics, spec.TermsPer, 1.0, spec.Seed^0x5bf0f3a9)
	store, err := trajdb.Generate(g, trajdb.GenOptions{
		Count:       spec.Trajs,
		MeanSamples: spec.MeanSamples,
		Vocab:       vocab,
		Seed:        spec.Seed ^ 0x243f6a88,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: building %s: %w", spec.Name, err)
	}
	name := spec.Name
	if name == "" {
		name = fmt.Sprintf("%s-like(scale=%.2f,|T|=%d)", spec.City, spec.Scale, spec.Trajs)
	}
	return &Dataset{Name: name, Graph: g, Vocab: vocab, Store: store}, nil
}

// datasetCache memoizes datasets per process so benchmarks and experiment
// sweeps sharing a spec pay construction once.
var datasetCache sync.Map // DatasetSpec → *Dataset

// BuildCached returns the dataset for spec, constructing it at most once
// per process.
func BuildCached(spec DatasetSpec) (*Dataset, error) {
	if d, ok := datasetCache.Load(spec); ok {
		return d.(*Dataset), nil
	}
	d, err := spec.Build()
	if err != nil {
		return nil, err
	}
	actual, _ := datasetCache.LoadOrStore(spec, d)
	return actual.(*Dataset), nil
}

// Profile scales the whole evaluation to the host: city sizes, corpus
// sizes and query counts for each of the two datasets.
type Profile struct {
	Name       string
	BRNScale   float64
	BRNTrajs   int
	NRNScale   float64
	NRNTrajs   int
	Queries    int // queries per measurement cell
	MeanLength int // mean samples per trajectory
	Seed       uint64
}

// SmallProfile fits unit-test and quick-bench budgets (seconds).
func SmallProfile() Profile {
	return Profile{
		Name: "small", BRNScale: 0.2, BRNTrajs: 4000,
		NRNScale: 0.12, NRNTrajs: 6000,
		Queries: 8, MeanLength: 30, Seed: 1,
	}
}

// MediumProfile is the default for the uotsbench CLI (minutes).
func MediumProfile() Profile {
	return Profile{
		Name: "medium", BRNScale: 0.5, BRNTrajs: 30000,
		NRNScale: 0.25, NRNTrajs: 60000,
		Queries: 10, MeanLength: 50, Seed: 1,
	}
}

// FullProfile approaches the paper's published dataset shapes (tens of
// minutes, several GB of memory).
func FullProfile() Profile {
	return Profile{
		Name: "full", BRNScale: 1.0, BRNTrajs: 100000,
		NRNScale: 1.0, NRNTrajs: 1000000,
		Queries: 10, MeanLength: 72, Seed: 1,
	}
}

// ProfileByName resolves small/medium/full.
func ProfileByName(name string) (Profile, error) {
	switch name {
	case "small":
		return SmallProfile(), nil
	case "medium":
		return MediumProfile(), nil
	case "full":
		return FullProfile(), nil
	default:
		return Profile{}, fmt.Errorf("experiments: unknown profile %q (want small, medium or full)", name)
	}
}

// BRNSpec returns the profile's Beijing-like dataset spec, with the
// trajectory count overridable (0 keeps the profile value).
func (p Profile) BRNSpec(trajs int) DatasetSpec {
	if trajs == 0 {
		trajs = p.BRNTrajs
	}
	return DatasetSpec{
		City: CityBRN, Scale: p.BRNScale, Trajs: trajs,
		MeanSamples: p.MeanLength, Seed: p.Seed,
	}
}

// NRNSpec returns the profile's New-York-like dataset spec.
func (p Profile) NRNSpec(trajs int) DatasetSpec {
	if trajs == 0 {
		trajs = p.NRNTrajs
	}
	return DatasetSpec{
		City: CityNRN, Scale: p.NRNScale, Trajs: trajs,
		MeanSamples: p.MeanLength, Seed: p.Seed,
	}
}
