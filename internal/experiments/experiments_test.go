package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"uots/internal/core"
)

// tinyProfile keeps experiment tests fast.
func tinyProfile() Profile {
	return Profile{
		Name: "tiny", BRNScale: 0.08, BRNTrajs: 400,
		NRNScale: 0.05, NRNTrajs: 500,
		Queries: 2, MeanLength: 12, Seed: 3,
	}
}

func TestDatasetSpecBuild(t *testing.T) {
	ds, err := DatasetSpec{City: CityBRN, Scale: 0.08, Trajs: 200, MeanSamples: 10, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Store.NumTrajectories() != 200 {
		t.Fatalf("trajs = %d", ds.Store.NumTrajectories())
	}
	if ds.Graph.NumVertices() == 0 || !strings.Contains(ds.Name, "BRN") {
		t.Errorf("dataset = %q with %d vertices", ds.Name, ds.Graph.NumVertices())
	}
	if _, err := (DatasetSpec{Scale: 0}).Build(); err == nil {
		t.Error("zero scale should error")
	}
	nrn, err := DatasetSpec{City: CityNRN, Scale: 0.05, Trajs: 50, MeanSamples: 8, Seed: 1}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nrn.Name, "NRN") {
		t.Errorf("NRN name = %q", nrn.Name)
	}
}

func TestBuildCachedMemoizes(t *testing.T) {
	spec := DatasetSpec{City: CityBRN, Scale: 0.08, Trajs: 100, MeanSamples: 8, Seed: 77}
	a, err := BuildCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildCached(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same spec should return the same dataset instance")
	}
	if a.Landmarks() != b.Landmarks() || a.VertexIndex() == nil {
		t.Error("lazy accessories should be shared")
	}
}

func TestProfileByName(t *testing.T) {
	for _, name := range []string{"small", "medium", "full"} {
		p, err := ProfileByName(name)
		if err != nil || p.Name != name {
			t.Errorf("ProfileByName(%q) = (%+v, %v)", name, p, err)
		}
	}
	if _, err := ProfileByName("huge"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestGenQueriesShape(t *testing.T) {
	p := tinyProfile()
	ds, err := BuildCached(p.BRNSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	spec := DefaultQuerySpec()
	spec.Locations = 3
	spec.Keywords = 2
	queries := GenQueries(ds, spec, 5)
	if len(queries) != 5 {
		t.Fatalf("got %d queries", len(queries))
	}
	bounds := ds.Graph.Bounds()
	diag := bounds.Min.Dist(bounds.Max)
	for i, q := range queries {
		if len(q.Locations) != 3 {
			t.Fatalf("query %d has %d locations", i, len(q.Locations))
		}
		if len(q.Keywords) == 0 || len(q.Keywords) > 2 {
			t.Fatalf("query %d has %d keywords", i, len(q.Keywords))
		}
		if q.Lambda != spec.Lambda || q.K != spec.K {
			t.Fatalf("query %d params wrong", i)
		}
		// Locality: every location within the spread of the anchor.
		anchor := ds.Graph.Point(q.Locations[0])
		for _, v := range q.Locations[1:] {
			if d := anchor.Dist(ds.Graph.Point(v)); d > 0.15*diag/2+1e-9 {
				t.Fatalf("query %d location %.2f km from anchor (spread %.2f)", i, d, 0.15*diag/2)
			}
		}
	}
	// Determinism.
	again := GenQueries(ds, spec, 5)
	for i := range queries {
		if queries[i].Locations[0] != again[i].Locations[0] {
			t.Fatal("GenQueries not deterministic")
		}
	}
}

func TestMeasureAgainstAllAlgorithms(t *testing.T) {
	p := tinyProfile()
	ds, err := BuildCached(p.BRNSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	queries := GenQueries(ds, DefaultQuerySpec(), 2)
	aggs, err := MeasureAll(context.Background(), ds, DefaultAlgos(), queries, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 4 {
		t.Fatalf("got %d aggregates", len(aggs))
	}
	for _, a := range aggs {
		if a.Queries != 2 {
			t.Errorf("%s: queries = %d", a.Algo, a.Queries)
		}
		if a.MeanVisited <= 0 || a.MeanCandidates <= 0 {
			t.Errorf("%s: zero work recorded: %+v", a.Algo, a)
		}
		if a.CandRatio < 0 || a.CandRatio > 1 || a.VisitRatio < 0 || a.VisitRatio > 1 {
			t.Errorf("%s: ratios out of range: %+v", a.Algo, a)
		}
	}
	// Exhaustive must visit everything; expansion must visit less.
	var exp, exh Aggregate
	for _, a := range aggs {
		switch a.Algo {
		case "expansion":
			exp = a
		case "exhaustive":
			exh = a
		}
	}
	if exh.VisitRatio != 1 {
		t.Errorf("exhaustive visit ratio = %g", exh.VisitRatio)
	}
	if exp.CandRatio >= exh.CandRatio {
		t.Errorf("expansion candidate ratio %g not below exhaustive %g", exp.CandRatio, exh.CandRatio)
	}
	// Threshold mode.
	aggs, err = MeasureAll(context.Background(), ds, []AlgoConfig{DefaultAlgos()[0], DefaultAlgos()[3]}, queries, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	if len(aggs) != 2 {
		t.Fatalf("threshold mode: %d aggregates", len(aggs))
	}
}

func TestMeasurePropagatesErrors(t *testing.T) {
	p := tinyProfile()
	ds, err := BuildCached(p.BRNSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	bad := []core.Query{{Lambda: 0.5, K: 1}} // no locations
	if _, err := Measure(context.Background(), ds, DefaultAlgos()[0], bad, 0); err == nil {
		t.Error("invalid query should propagate an error")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := NewTable("demo", "a", "bbbb", "c")
	tab.AddRow("1", "2")
	tab.AddRow("long-cell", "x", "y")
	var buf bytes.Buffer
	if err := tab.Fprint(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: the header's second column starts where rows' do.
	hIdx := strings.Index(lines[1], "bbbb")
	rIdx := strings.Index(lines[4], "x")
	if hIdx != rIdx {
		t.Errorf("column misaligned: header at %d, row at %d\n%s", hIdx, rIdx, out)
	}
}

func TestFormatHelpers(t *testing.T) {
	if fmtMs(250) != "250" || fmtMs(2.5) != "2.5" || fmtMs(0.25) != "0.250" {
		t.Error("fmtMs wrong")
	}
	if fmtCount(1500) != "1500" || fmtCount(3.25) != "3.2" {
		t.Error("fmtCount wrong")
	}
	if fmtRatio(0.1234) != "0.123" {
		t.Error("fmtRatio wrong")
	}
}

func TestExperimentsRegistry(t *testing.T) {
	all := All()
	if len(all) != 16 {
		t.Fatalf("registry has %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Name == "" || e.Run == nil {
			t.Errorf("experiment %+v incomplete", e)
		}
		if seen[e.Name] {
			t.Errorf("duplicate experiment name %q", e.Name)
		}
		seen[e.Name] = true
	}
	if _, err := ByName("pruning"); err != nil {
		t.Errorf("ByName(pruning): %v", err)
	}
	if _, err := ByName("T2"); err != nil {
		t.Errorf("ByName(T2): %v", err)
	}
	if _, err := ByName("nonsense"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

// TestRunAllExperimentsTiny executes every registered experiment end to
// end on a tiny profile, checking they produce output and no errors.
func TestRunAllExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep skipped in -short mode")
	}
	p := tinyProfile()
	var buf bytes.Buffer
	if err := RunAll(context.Background(), &buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, e := range All() {
		if !strings.Contains(out, "=== "+e.ID) {
			t.Errorf("output missing experiment %s", e.ID)
		}
	}
	if !strings.Contains(out, "expansion") || !strings.Contains(out, "exhaustive") {
		t.Error("output missing algorithm rows")
	}
}
