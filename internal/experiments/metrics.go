package experiments

import (
	"context"
	"encoding/json"
	"io"

	"uots/internal/core"
	"uots/internal/obs"
)

// Benchmark metrics: uotsbench -metrics-out attaches an obs.Registry to
// the run context, and Measure populates per-algorithm uots_bench_*
// instruments alongside the human-readable tables. The registry snapshot
// is what lands in the machine-readable output file.

type metricsKey struct{}

// WithMetrics returns a context carrying reg so Measure records
// per-query work into it. A nil reg returns ctx unchanged.
func WithMetrics(ctx context.Context, reg *obs.Registry) context.Context {
	if reg == nil {
		return ctx
	}
	return context.WithValue(ctx, metricsKey{}, reg)
}

// MetricsFrom extracts the registry attached by WithMetrics, or nil.
func MetricsFrom(ctx context.Context) *obs.Registry {
	if ctx == nil {
		return nil
	}
	reg, _ := ctx.Value(metricsKey{}).(*obs.Registry)
	return reg
}

// WriteSnapshot writes reg's current state as indented JSON — the
// machine-readable side of a benchmark run. Callers flush it once at
// process exit, on every exit path: a partial snapshot of a failed or
// interrupted run is still a record worth keeping.
func WriteSnapshot(w io.Writer, reg *obs.Registry) error {
	raw, err := json.MarshalIndent(reg.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	raw = append(raw, '\n')
	_, err = w.Write(raw)
	return err
}

// benchQuerySecondsBuckets spans microsecond probes to multi-second
// exhaustive scans.
var benchQuerySecondsBuckets = []float64{
	1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3, 10,
}

// benchCollector bundles the per-algorithm instruments Measure updates.
// Registry lookups are idempotent, so building a collector per Measure
// call reuses the same underlying series.
type benchCollector struct {
	algo       string
	queries    *obs.Counter
	visited    *obs.Counter
	candidates *obs.Counter
	settled    *obs.Counter
	seconds    *obs.Histogram
}

func newBenchCollector(reg *obs.Registry, algo string) *benchCollector {
	if reg == nil {
		return nil
	}
	return &benchCollector{
		algo: algo,
		queries: reg.CounterVec("uots_bench_queries_total",
			"Benchmark queries completed, by algorithm configuration.", "algo").With(algo),
		visited: reg.CounterVec("uots_bench_visited_trajectories_total",
			"Distinct trajectories touched by benchmark queries, by algorithm.", "algo").With(algo),
		candidates: reg.CounterVec("uots_bench_candidates_total",
			"Exactly-scored candidates across benchmark queries, by algorithm.", "algo").With(algo),
		settled: reg.CounterVec("uots_bench_settled_vertices_total",
			"Dijkstra-settled vertices across benchmark queries, by algorithm.", "algo").With(algo),
		seconds: reg.HistogramVec("uots_bench_query_seconds",
			"Per-query wall time in seconds, by algorithm.", benchQuerySecondsBuckets, "algo").With(algo),
	}
}

// record accumulates one query's outcome.
func (c *benchCollector) record(st core.SearchStats, seconds float64) {
	if c == nil {
		return
	}
	c.queries.Inc()
	c.visited.AddInt(st.VisitedTrajectories)
	c.candidates.AddInt(st.Candidates)
	c.settled.AddInt(st.SettledVertices)
	c.seconds.Observe(seconds)
}
