package experiments

import (
	"context"
	"fmt"
	"time"

	"uots/internal/core"
)

// AlgoConfig names one algorithm configuration under measurement.
type AlgoConfig struct {
	Name string
	Kind core.Algorithm
	Opts core.Options
	// NoLandmarks keeps the dataset's landmark accelerator out of an
	// expansion configuration (ablation).
	NoLandmarks bool
}

// DefaultAlgos returns the evaluation's four standing configurations:
// the paper's expansion search, its no-heuristic ablation, and the two
// baselines.
func DefaultAlgos() []AlgoConfig {
	return []AlgoConfig{
		{Name: "expansion", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleHeuristic}},
		{Name: "expansion-w/o-h", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleRoundRobin}},
		{Name: "textfirst", Kind: core.AlgoTextFirst},
		{Name: "exhaustive", Kind: core.AlgoExhaustive},
	}
}

// Aggregate is the measurement of one (algorithm, workload cell) pair,
// averaged over the cell's queries.
type Aggregate struct {
	Algo           string
	Queries        int
	MeanMs         float64 // mean per-query CPU time, milliseconds
	MeanVisited    float64 // mean visited trajectories (the paper's access metric)
	MeanCandidates float64
	MeanSettled    float64 // mean Dijkstra-settled vertices
	EarlyTermRate  float64 // fraction of queries that terminated early
	CandRatio      float64 // MeanCandidates / |T| (pruning table)
	VisitRatio     float64 // MeanVisited / |T|
}

// Measure runs every query under one algorithm configuration and averages
// the work counters. theta > 0 switches the expansion/exhaustive
// algorithms to their threshold variants (TextFirst has no threshold
// variant and keeps using top-k). Cancelling ctx aborts the in-flight
// search and returns its error.
func Measure(ctx context.Context, ds *Dataset, cfg AlgoConfig, queries []core.Query, theta float64) (Aggregate, error) {
	if cfg.Kind == core.AlgoExpansion && cfg.Opts.Landmarks == nil && !cfg.NoLandmarks {
		cfg.Opts.Landmarks = ds.Landmarks()
	}
	e, err := core.NewEngine(ds.Store, cfg.Opts)
	if err != nil {
		return Aggregate{}, fmt.Errorf("experiments: %s: %w", cfg.Name, err)
	}
	agg := Aggregate{Algo: cfg.Name, Queries: len(queries)}
	collector := newBenchCollector(MetricsFrom(ctx), cfg.Name)
	var totalMs float64
	for _, q := range queries {
		var stats core.SearchStats
		var runErr error
		start := time.Now()
		switch {
		case theta > 0 && cfg.Kind == core.AlgoExpansion:
			_, stats, runErr = e.SearchThreshold(q, theta)
		case theta > 0 && cfg.Kind == core.AlgoExhaustive:
			_, stats, runErr = e.ExhaustiveThreshold(q, theta)
		case cfg.Kind == core.AlgoExhaustive:
			_, stats, runErr = e.ExhaustiveSearch(q)
		case cfg.Kind == core.AlgoTextFirst:
			_, stats, runErr = e.TextFirstSearch(q, core.TextFirstOptions{Landmarks: ds.Landmarks()})
		default:
			_, stats, runErr = e.Search(q)
		}
		if runErr != nil {
			return Aggregate{}, fmt.Errorf("experiments: %s: %w", cfg.Name, runErr)
		}
		elapsed := time.Since(start)
		totalMs += float64(elapsed.Microseconds()) / 1000.0
		collector.record(stats, elapsed.Seconds())
		agg.MeanVisited += float64(stats.VisitedTrajectories)
		agg.MeanCandidates += float64(stats.Candidates)
		agg.MeanSettled += float64(stats.SettledVertices)
		if stats.EarlyTerminated {
			agg.EarlyTermRate++
		}
	}
	n := float64(len(queries))
	if n > 0 {
		agg.MeanMs = totalMs / n
		agg.MeanVisited /= n
		agg.MeanCandidates /= n
		agg.MeanSettled /= n
		agg.EarlyTermRate /= n
	}
	if t := float64(ds.Store.NumTrajectories()); t > 0 {
		agg.CandRatio = agg.MeanCandidates / t
		agg.VisitRatio = agg.MeanVisited / t
	}
	return agg, nil
}

// MeasureAll measures every configuration over the same workload.
func MeasureAll(ctx context.Context, ds *Dataset, cfgs []AlgoConfig, queries []core.Query, theta float64) ([]Aggregate, error) {
	out := make([]Aggregate, 0, len(cfgs))
	for _, cfg := range cfgs {
		agg, err := Measure(ctx, ds, cfg, queries, theta)
		if err != nil {
			return nil, err
		}
		out = append(out, agg)
	}
	return out, nil
}
