package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"uots/internal/core"
	"uots/internal/shard"
)

// Sharding reproduces the F10 scaling experiment: the expansion search
// run monolithically and as a sharded scatter-gather at growing shard
// counts, on both cities. The table records the work decomposition
// behind the shard benchmarks: the summed per-shard work (visited
// trajectories, settled vertices) grows with N because every shard
// re-expands its own Dijkstra frontier, while cross-shard bound-exchange
// prunes (xprunes) claw part of it back. Mean ms is wall-clock on this
// host — on a single core it tracks the total work and grows with N; on
// a machine with ≥ N cores the per-query latency instead drops toward
// the slowest shard's share of the work (see BenchmarkShardedSearch in
// internal/shard).
func Sharding(ctx context.Context, w io.Writer, p Profile) error {
	dss, err := bothDatasets(p)
	if err != nil {
		return err
	}
	counts := []int{1, 2, 4, 8}
	reg := MetricsFrom(ctx)
	t := NewTable("F10 sharded scatter-gather vs monolithic (expansion, default settings)",
		"dataset", "config", "mean ms", "visited", "settled", "xprunes")
	for _, ds := range dss {
		queries := GenQueries(ds, DefaultQuerySpec(), p.Queries)
		opts := core.Options{Landmarks: ds.Landmarks()}

		mono, err := core.NewEngine(ds.Store, opts)
		if err != nil {
			return err
		}
		cell, err := runShardCell(newBenchCollector(reg, "monolithic"), queries,
			func(q core.Query) (core.SearchStats, error) {
				_, st, err := mono.SearchCtx(ctx, q)
				return st, err
			})
		if err != nil {
			return err
		}
		t.AddRow(ds.Name, "monolithic", fmtMs(cell.ms), fmtCount(cell.visited), fmtCount(cell.settled), "-")

		for _, n := range counts {
			ex, err := shard.NewExecutor(ds.Store, opts, shard.Config{Shards: n})
			if err != nil {
				return err
			}
			cell, err := runShardCell(newBenchCollector(reg, fmt.Sprintf("sharded-%d", n)), queries,
				func(q core.Query) (core.SearchStats, error) {
					_, st, err := ex.SearchCtx(ctx, q)
					return st, err
				})
			ex.Close()
			if err != nil {
				return err
			}
			t.AddRow(ds.Name, fmt.Sprintf("N=%d", n),
				fmtMs(cell.ms), fmtCount(cell.visited), fmtCount(cell.settled), fmtCount(cell.xprunes))
		}
	}
	return t.Fprint(w)
}

// shardCell is one (config, workload) measurement, per-query means.
type shardCell struct{ ms, visited, settled, xprunes float64 }

func runShardCell(c *benchCollector, queries []core.Query,
	search func(core.Query) (core.SearchStats, error)) (shardCell, error) {
	var cell shardCell
	for _, q := range queries {
		start := time.Now()
		st, err := search(q)
		if err != nil {
			return cell, err
		}
		elapsed := time.Since(start)
		c.record(st, elapsed.Seconds())
		cell.ms += float64(elapsed.Microseconds()) / 1000
		cell.visited += float64(st.VisitedTrajectories)
		cell.settled += float64(st.SettledVertices)
		cell.xprunes += float64(st.SharedBoundPrunes)
	}
	if n := float64(len(queries)); n > 0 {
		cell.ms /= n
		cell.visited /= n
		cell.settled /= n
		cell.xprunes /= n
	}
	return cell, nil
}
