package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"uots/internal/core"
)

// Experiment is one reproducible table/figure of the evaluation.
type Experiment struct {
	ID   string // experiment index used in DESIGN.md / EXPERIMENTS.md (e.g. "F2")
	Name string // CLI name (e.g. "locations")
	Desc string
	Run  func(ctx context.Context, w io.Writer, p Profile) error
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "settings", "dataset and parameter settings", Settings},
		{"T2", "pruning", "pruning effectiveness (candidate/visited ratios)", Pruning},
		{"T3", "scheduling", "scheduling-strategy and probe ablation", SchedulingAblation},
		{"F1", "cardinality", "effect of trajectory cardinality |T|", Cardinality},
		{"F2", "locations", "effect of query location count |O|", Locations},
		{"F3", "lambda", "effect of preference parameter λ", Lambda},
		{"F4", "topk", "effect of result count k", TopK},
		{"F5", "keywords", "effect of query keyword count |ψ|", Keywords},
		{"F6", "workers", "effect of worker count m (batch throughput)", Workers},
		{"F7", "threshold", "effect of similarity threshold θ", Threshold},
		{"F8", "disk", "disk-resident store vs memory (LRU buffer budgets)", DiskResident},
		{"F9", "locality", "effect of query-location spread (clustered → city-wide)", Locality},
		{"F10", "sharding", "sharded scatter-gather vs monolithic (shard count N)", Sharding},
		{"F11", "batchshare", "shared-expansion batch planner vs independent execution (source-overlap rate)", BatchShare},
		{"F12", "hedging", "hedged requests vs tail latency (distributed path, injected slow replica)", Hedging},
		{"F13", "indexing", "landmark/TrajBounds pruning index vs unassisted scan (per-query latency, byte-identical results)", Indexing},
	}
}

// ByName returns the experiment with the given CLI name.
func ByName(name string) (Experiment, error) {
	for _, e := range All() {
		if e.Name == name || e.ID == name {
			return e, nil
		}
	}
	names := make([]string, 0)
	for _, e := range All() {
		names = append(names, e.Name)
	}
	sort.Strings(names)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, names)
}

// RunAll executes every experiment against the profile. Cancelling ctx
// aborts the in-flight experiment's searches and stops the sequence.
func RunAll(ctx context.Context, w io.Writer, p Profile) error {
	for _, e := range All() {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "=== %s %s — %s ===\n\n", e.ID, e.Name, e.Desc); err != nil {
			return err
		}
		if err := e.Run(ctx, w, p); err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
	}
	return nil
}

// bothDatasets builds (cached) the profile's two cities.
func bothDatasets(p Profile) ([]*Dataset, error) {
	brn, err := BuildCached(p.BRNSpec(0))
	if err != nil {
		return nil, err
	}
	nrn, err := BuildCached(p.NRNSpec(0))
	if err != nil {
		return nil, err
	}
	return []*Dataset{brn, nrn}, nil
}

// Settings reproduces the settings table: the two datasets' shapes and
// the evaluation's default parameters.
func Settings(ctx context.Context, w io.Writer, p Profile) error {
	dss, err := bothDatasets(p)
	if err != nil {
		return err
	}
	t := NewTable("T1 dataset settings (profile "+p.Name+")",
		"dataset", "vertices", "edges", "trajectories", "avg samples", "avg keywords", "vocab")
	for _, ds := range dss {
		st := ds.Store.Stats()
		t.AddRow(ds.Name,
			fmt.Sprint(ds.Graph.NumVertices()),
			fmt.Sprint(ds.Graph.NumEdges()),
			fmt.Sprint(st.Trajectories),
			fmt.Sprintf("%.1f", st.AvgSamples),
			fmt.Sprintf("%.1f", st.AvgKeywords),
			fmt.Sprint(ds.Vocab.Vocab.Size()))
	}
	if err := t.Fprint(w); err != nil {
		return err
	}
	d := DefaultQuerySpec()
	t2 := NewTable("T1b default query parameters",
		"|O|", "|ψ|", "λ", "k", "queries/cell")
	t2.AddRow(fmt.Sprint(d.Locations), fmt.Sprint(d.Keywords),
		fmt.Sprintf("%.1f", d.Lambda), fmt.Sprint(d.K), fmt.Sprint(p.Queries))
	return t2.Fprint(w)
}

// Pruning reproduces the pruning-effectiveness table: candidate and
// visited ratios per algorithm at default settings.
func Pruning(ctx context.Context, w io.Writer, p Profile) error {
	dss, err := bothDatasets(p)
	if err != nil {
		return err
	}
	t := NewTable("T2 pruning effectiveness (default settings)",
		"dataset", "algorithm", "cand ratio", "prune ratio", "visit ratio", "mean ms")
	for _, ds := range dss {
		queries := GenQueries(ds, DefaultQuerySpec(), p.Queries)
		aggs, err := MeasureAll(ctx, ds, DefaultAlgos(), queries, 0)
		if err != nil {
			return err
		}
		for _, a := range aggs {
			t.AddRow(ds.Name, a.Algo, fmtRatio(a.CandRatio),
				fmtRatio(1-a.CandRatio), fmtRatio(a.VisitRatio), fmtMs(a.MeanMs))
		}
	}
	return t.Fprint(w)
}

// sweep runs one single-parameter sweep on both datasets, producing the
// runtime and visited-trajectory series the paper's figures plot.
func sweep[T any](ctx context.Context, w io.Writer, p Profile, title, param string, values []T,
	makeSpec func(base QuerySpec, v T) QuerySpec, algos []AlgoConfig, theta func(v T) float64) error {
	dss, err := bothDatasets(p)
	if err != nil {
		return err
	}
	for _, ds := range dss {
		rt := NewTable(fmt.Sprintf("%s — runtime ms (%s)", title, ds.Name), header(param, algos)...)
		vt := NewTable(fmt.Sprintf("%s — visited trajectories (%s)", title, ds.Name), header(param, algos)...)
		for _, v := range values {
			spec := makeSpec(DefaultQuerySpec(), v)
			queries := GenQueries(ds, spec, p.Queries)
			th := 0.0
			if theta != nil {
				th = theta(v)
			}
			aggs, err := MeasureAll(ctx, ds, algos, queries, th)
			if err != nil {
				return err
			}
			rrow := []string{fmt.Sprint(v)}
			vrow := []string{fmt.Sprint(v)}
			for _, a := range aggs {
				rrow = append(rrow, fmtMs(a.MeanMs))
				vrow = append(vrow, fmtCount(a.MeanVisited))
			}
			rt.AddRow(rrow...)
			vt.AddRow(vrow...)
		}
		if err := rt.Fprint(w); err != nil {
			return err
		}
		if err := vt.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}

func header(param string, algos []AlgoConfig) []string {
	h := []string{param}
	for _, a := range algos {
		h = append(h, a.Name)
	}
	return h
}

// Cardinality reproduces the |T| figures: both cities at 25/50/75/100% of
// the profile's corpus size.
func Cardinality(ctx context.Context, w io.Writer, p Profile) error {
	fractions := []float64{0.25, 0.5, 0.75, 1.0}
	for _, city := range []CityKind{CityBRN, CityNRN} {
		rtTitle := fmt.Sprintf("F1 effect of |T| — runtime ms (%s-like)", city)
		vtTitle := fmt.Sprintf("F1 effect of |T| — visited trajectories (%s-like)", city)
		algos := DefaultAlgos()
		rt := NewTable(rtTitle, header("|T|", algos)...)
		vt := NewTable(vtTitle, header("|T|", algos)...)
		baseTrajs := p.BRNTrajs
		spec := func(tr int) DatasetSpec { return p.BRNSpec(tr) }
		if city == CityNRN {
			baseTrajs = p.NRNTrajs
			spec = func(tr int) DatasetSpec { return p.NRNSpec(tr) }
		}
		for _, f := range fractions {
			trajs := int(f * float64(baseTrajs))
			ds, err := BuildCached(spec(trajs))
			if err != nil {
				return err
			}
			queries := GenQueries(ds, DefaultQuerySpec(), p.Queries)
			aggs, err := MeasureAll(ctx, ds, algos, queries, 0)
			if err != nil {
				return err
			}
			rrow := []string{fmt.Sprint(trajs)}
			vrow := []string{fmt.Sprint(trajs)}
			for _, a := range aggs {
				rrow = append(rrow, fmtMs(a.MeanMs))
				vrow = append(vrow, fmtCount(a.MeanVisited))
			}
			rt.AddRow(rrow...)
			vt.AddRow(vrow...)
		}
		if err := rt.Fprint(w); err != nil {
			return err
		}
		if err := vt.Fprint(w); err != nil {
			return err
		}
	}
	return nil
}

// Locations reproduces the |O| figures.
func Locations(ctx context.Context, w io.Writer, p Profile) error {
	return sweep(ctx, w, p, "F2 effect of |O|", "|O|", []int{1, 2, 4, 6, 8},
		func(b QuerySpec, v int) QuerySpec { b.Locations = v; return b },
		DefaultAlgos(), nil)
}

// Lambda reproduces the preference-parameter figures.
func Lambda(ctx context.Context, w io.Writer, p Profile) error {
	return sweep(ctx, w, p, "F3 effect of λ", "λ", []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		func(b QuerySpec, v float64) QuerySpec { b.Lambda = v; return b },
		DefaultAlgos(), nil)
}

// TopK reproduces the k figures.
func TopK(ctx context.Context, w io.Writer, p Profile) error {
	return sweep(ctx, w, p, "F4 effect of k", "k", []int{1, 5, 10, 20, 50},
		func(b QuerySpec, v int) QuerySpec { b.K = v; return b },
		DefaultAlgos(), nil)
}

// Keywords reproduces the |ψ| figures.
func Keywords(ctx context.Context, w io.Writer, p Profile) error {
	return sweep(ctx, w, p, "F5 effect of |ψ|", "|ψ|", []int{1, 2, 4, 8},
		func(b QuerySpec, v int) QuerySpec { b.Keywords = v; return b },
		DefaultAlgos(), nil)
}

// Threshold reproduces the θ figures (threshold query variant; expansion
// vs exhaustive — TextFirst has no threshold form).
func Threshold(ctx context.Context, w io.Writer, p Profile) error {
	algos := []AlgoConfig{DefaultAlgos()[0], DefaultAlgos()[3]}
	return sweep(ctx, w, p, "F7 effect of θ", "θ", []float64{0.5, 0.6, 0.7, 0.8, 0.9},
		func(b QuerySpec, v float64) QuerySpec { return b },
		algos, func(v float64) float64 { return v })
}

// SchedulingAblation reproduces the strategy ablation: the three source
// schedulers plus the no-text-probe configuration.
func SchedulingAblation(ctx context.Context, w io.Writer, p Profile) error {
	algos := []AlgoConfig{
		{Name: "heuristic", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleHeuristic}},
		{Name: "minradius", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleMinRadius}},
		{Name: "roundrobin", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleRoundRobin}},
		{Name: "heuristic-no-probe", Kind: core.AlgoExpansion, Opts: core.Options{Scheduling: core.ScheduleHeuristic, DisableTextProbe: true}},
	}
	dss, err := bothDatasets(p)
	if err != nil {
		return err
	}
	t := NewTable("T3 scheduling ablation (default settings)",
		"dataset", "strategy", "mean ms", "visited", "settled", "early-term")
	for _, ds := range dss {
		queries := GenQueries(ds, DefaultQuerySpec(), p.Queries)
		aggs, err := MeasureAll(ctx, ds, algos, queries, 0)
		if err != nil {
			return err
		}
		for _, a := range aggs {
			t.AddRow(ds.Name, a.Algo, fmtMs(a.MeanMs), fmtCount(a.MeanVisited),
				fmtCount(a.MeanSettled), fmtRatio(a.EarlyTermRate))
		}
	}
	return t.Fprint(w)
}

// Workers reproduces the thread-count figure: wall-clock time of a fixed
// query batch under growing worker pools. (On a single-core host the
// curve flattens at one; the shape is recorded with the host's core count
// in EXPERIMENTS.md.)
func Workers(ctx context.Context, w io.Writer, p Profile) error {
	dss, err := bothDatasets(p)
	if err != nil {
		return err
	}
	counts := []int{1, 2, 4, 8}
	t := NewTable("F6 effect of worker count m (batch of queries, expansion)",
		"dataset", "m", "wallclock ms", "ms/query")
	for _, ds := range dss {
		e, err := core.NewEngine(ds.Store, core.Options{})
		if err != nil {
			return err
		}
		batch := GenQueries(ds, DefaultQuerySpec(), p.Queries*4)
		for _, m := range counts {
			_, stats, err := e.SearchBatch(ctx, batch, core.BatchOptions{Workers: m})
			if err != nil {
				return err
			}
			ms := float64(stats.WallClock.Microseconds()) / 1000.0
			t.AddRow(ds.Name, fmt.Sprint(m), fmtMs(ms), fmtMs(ms/float64(len(batch))))
		}
	}
	return t.Fprint(w)
}
