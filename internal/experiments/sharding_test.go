package experiments

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"uots/internal/obs"
)

func TestShardingExperiment(t *testing.T) {
	reg := obs.NewRegistry()
	ctx := WithMetrics(context.Background(), reg)
	var buf bytes.Buffer
	if err := Sharding(ctx, &buf, tinyProfile()); err != nil {
		t.Fatalf("Sharding: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"F10", "monolithic", "N=1", "N=8"} {
		if !strings.Contains(out, want) {
			t.Errorf("F10 output missing %q:\n%s", want, out)
		}
	}
	// The sweep records per-configuration bench metrics like any other
	// experiment, so -metrics-out captures the sharded runs too.
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "uots_bench_queries_total" {
			for _, s := range m.Series {
				for _, v := range s.Labels {
					if strings.HasPrefix(v, "sharded-") {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Error("no sharded-* series recorded in the bench registry")
	}
}
