package experiments

import (
	"context"
	"testing"

	"uots/internal/obs"
)

func TestMeasurePopulatesMetrics(t *testing.T) {
	p := tinyProfile()
	ds, err := BuildCached(p.BRNSpec(0))
	if err != nil {
		t.Fatal(err)
	}
	queries := GenQueries(ds, DefaultQuerySpec(), 2)

	reg := obs.NewRegistry()
	ctx := WithMetrics(context.Background(), reg)
	aggs, err := MeasureAll(ctx, ds, DefaultAlgos(), queries, 0)
	if err != nil {
		t.Fatal(err)
	}

	byName := make(map[string]obs.MetricSnapshot)
	for _, m := range reg.Snapshot() {
		byName[m.Name] = m
	}
	qc, ok := byName["uots_bench_queries_total"]
	if !ok {
		t.Fatalf("no uots_bench_queries_total in snapshot (have %d families)", len(byName))
	}
	if len(qc.Series) != len(aggs) {
		t.Fatalf("queries_total has %d algo series, want %d", len(qc.Series), len(aggs))
	}
	for _, s := range qc.Series {
		if s.Value == nil || *s.Value != float64(len(queries)) {
			t.Errorf("algo %v recorded %v queries, want %d", s.Labels, s.Value, len(queries))
		}
	}
	hist, ok := byName["uots_bench_query_seconds"]
	if !ok {
		t.Fatal("no uots_bench_query_seconds in snapshot")
	}
	for _, s := range hist.Series {
		if s.Count == nil || *s.Count != uint64(len(queries)) {
			t.Errorf("latency histogram %v observed %v samples, want %d", s.Labels, s.Count, len(queries))
		}
	}
	if _, ok := byName["uots_bench_visited_trajectories_total"]; !ok {
		t.Error("no uots_bench_visited_trajectories_total in snapshot")
	}

	// Without an attached registry the collector is inert.
	if c := newBenchCollector(MetricsFrom(context.Background()), "x"); c != nil {
		t.Error("collector built without a registry")
	}
}
