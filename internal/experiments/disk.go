package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"uots/internal/core"
	"uots/internal/diskstore"
)

// DiskResident reproduces the storage experiment (F8): the same expansion
// queries over the in-memory store and over the disk-resident store at
// shrinking LRU buffer budgets. Indexes stay memory resident in both; the
// disk rows pay I/O on the trajectory-payload access paths.
func DiskResident(ctx context.Context, w io.Writer, p Profile) error {
	ds, err := BuildCached(p.BRNSpec(0))
	if err != nil {
		return err
	}
	// A textual-leaning workload (λ=0.2): the pure expansion search is
	// index-only (inverted lists and bounds live in memory), so payload
	// I/O appears on the probe access paths, which small λ exercises.
	spec := DefaultQuerySpec()
	spec.Lambda = 0.2
	queries := GenQueries(ds, spec, p.Queries)

	dir, err := os.MkdirTemp("", "uots-disk-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "store.dsk")
	if err := diskstore.Create(path, ds.Store); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	dataBytes := int(info.Size())

	t := NewTable(fmt.Sprintf("F8 disk-resident store (%s, data file %.1f MiB)", ds.Name, float64(dataBytes)/(1<<20)),
		"storage", "buffer", "mean ms", "hit rate", "MiB read", "visited")

	run := func(label, buffer string, store core.TrajStore, stats func() (hits, loads, bytes int64)) error {
		e, err := core.NewEngine(store, core.Options{Landmarks: ds.Landmarks()})
		if err != nil {
			return err
		}
		var ms float64
		var visited int
		for _, q := range queries {
			start := time.Now()
			_, st, err := e.SearchCtx(ctx, q)
			if err != nil {
				return err
			}
			ms += float64(time.Since(start).Microseconds()) / 1000
			visited += st.VisitedTrajectories
		}
		n := float64(len(queries))
		hitRate, mib := "-", "-"
		if stats != nil {
			hits, loads, bytes := stats()
			if loads > 0 {
				hitRate = fmt.Sprintf("%.3f", float64(hits)/float64(loads))
			}
			mib = fmt.Sprintf("%.2f", float64(bytes)/(1<<20))
		}
		t.AddRow(label, buffer, fmtMs(ms/n), hitRate, mib, fmtCount(float64(visited)/n))
		return nil
	}

	if err := run("memory", "-", ds.Store, nil); err != nil {
		return err
	}
	for _, frac := range []float64{1.0, 0.25, 0.05, 0.01} {
		budget := int(frac * float64(dataBytes))
		disk, err := diskstore.Open(path, ds.Graph, budget)
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%.0f%% of data", frac*100)
		err = run("disk", label, disk, func() (int64, int64, int64) {
			st := disk.Stats()
			return st.Hits, st.Loads, st.BytesRead
		})
		disk.Close()
		if err != nil {
			return err
		}
	}
	return t.Fprint(w)
}
