package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"
	"sort"
	"time"

	"uots/internal/core"
)

// Indexing reproduces the F13 pruning-index experiment: the expansion
// search and the TextFirst baseline on the scan-dominated BRN corpus,
// each measured unassisted, with the on-demand ALT landmark bounds
// (Options.Landmarks — O(K·|τ|) per check, touches the store), and with
// the precomputed TrajBounds interval index (Options.Index — O(K) per
// check, no store access, enables the admission-time prune).
//
// Unlike the work-counter experiments this one reports per-query
// latency percentiles: the index's claim is that it removes Dijkstra
// and record-scan work from the hot path, which only wall clock shows
// honestly — landmark prunes that merely relabel work the engine would
// have skipped anyway move counters without moving time.
//
// Every assisted configuration is cross-validated in-experiment: its
// per-query results must be deeply equal to the unassisted run of the
// same algorithm (the strict-< prune contract), so a speedup reported
// here can never come from answering a different question.
func Indexing(ctx context.Context, w io.Writer, p Profile) error {
	ds, err := BuildCached(p.BRNSpec(0))
	if err != nil {
		return err
	}
	queries := GenQueries(ds, DefaultQuerySpec(), p.Queries*4)

	plain, err := core.NewEngine(ds.Store, core.Options{})
	if err != nil {
		return err
	}
	withLM, err := core.NewEngine(ds.Store, core.Options{Landmarks: ds.Landmarks()})
	if err != nil {
		return err
	}
	withIx, err := core.NewEngine(ds.Store, core.Options{Index: ds.Bounds()})
	if err != nil {
		return err
	}

	type config struct {
		name     string
		baseline string // name whose results these must equal ("" = is a baseline)
		run      func(q core.Query) ([]core.Result, core.SearchStats, error)
	}
	configs := []config{
		{"expansion/no-assist", "", plain.Search},
		{"expansion/landmarks", "expansion/no-assist", withLM.Search},
		{"expansion/trajbounds", "expansion/no-assist", withIx.Search},
		{"textfirst/no-assist", "", func(q core.Query) ([]core.Result, core.SearchStats, error) {
			return plain.TextFirstSearch(q, core.TextFirstOptions{})
		}},
		{"textfirst/trajbounds", "textfirst/no-assist", func(q core.Query) ([]core.Result, core.SearchStats, error) {
			return plain.TextFirstSearch(q, core.TextFirstOptions{Index: ds.Bounds()})
		}},
	}

	t := NewTable(fmt.Sprintf("F13 landmark/TrajBounds pruning index (%s, per-query latency)", ds.Name),
		"config", "p50 ms", "mean ms", "visited", "scans", "settled", "lm prunes", "speedup p50")
	baselines := make(map[string][][]core.Result)
	baselineP50 := make(map[string]float64)
	for _, cfg := range configs {
		if err := ctx.Err(); err != nil {
			return err
		}
		bench := newBenchCollector(MetricsFrom(ctx), cfg.name)
		lat := make([]float64, 0, len(queries))
		results := make([][]core.Result, 0, len(queries))
		var sum core.SearchStats
		for qi, q := range queries {
			start := time.Now()
			res, st, err := cfg.run(q)
			if err != nil {
				return fmt.Errorf("experiments: F13 %s: %w", cfg.name, err)
			}
			elapsed := time.Since(start)
			bench.record(st, elapsed.Seconds())
			lat = append(lat, float64(elapsed.Microseconds())/1000)
			results = append(results, res)
			sum.Add(st)
			if cfg.baseline != "" && !reflect.DeepEqual(res, baselines[cfg.baseline][qi]) {
				return fmt.Errorf("experiments: F13 %s: query %d results diverged from %s — the prune is not byte-identical",
					cfg.name, qi, cfg.baseline)
			}
		}
		if breg := MetricsFrom(ctx); breg != nil {
			breg.CounterVec("uots_bench_landmark_prunes_total",
				"Trajectories discarded purely from landmark lower bounds, by configuration.", "algo").
				With(cfg.name).AddInt(sum.LandmarkPrunes)
		}
		sort.Float64s(lat)
		p50 := percentile(lat, 0.50)
		mean := 0.0
		for _, v := range lat {
			mean += v
		}
		n := float64(len(lat))
		mean /= n
		speedup := "—"
		if cfg.baseline == "" {
			baselines[cfg.name] = results
			baselineP50[cfg.name] = p50
		} else if p50 > 0 {
			speedup = fmt.Sprintf("%.1fx", baselineP50[cfg.baseline]/p50)
		}
		t.AddRow(cfg.name, fmtMs(p50), fmtMs(mean),
			fmtCount(float64(sum.VisitedTrajectories)/n),
			fmtCount(float64(sum.ScanEvents)/n),
			fmtCount(float64(sum.SettledVertices)/n),
			fmtCount(float64(sum.LandmarkPrunes)/n),
			speedup)
	}
	return t.Fprint(w)
}
