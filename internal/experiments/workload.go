package experiments

import (
	"math/rand/v2"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// QuerySpec describes one workload cell: the shape of the queries a
// measurement averages over.
type QuerySpec struct {
	Locations int     // number of intended places |O|
	Keywords  int     // number of intention keywords |ψ|
	Lambda    float64 // spatial/textual preference
	K         int     // result count
	// SpreadFrac is the diameter of the query-location cluster as a
	// fraction of the city diagonal. A trip's intended places are local —
	// a user plans a day around a neighbourhood, not across the whole
	// metropolis — so locations are drawn near a random anchor vertex.
	// 0 selects the default 0.15; values ≥ 1 degenerate to uniform
	// city-wide locations (used as a stress workload).
	SpreadFrac float64
	Seed       uint64
}

// DefaultQuerySpec is the evaluation's default cell: 4 locations, 3
// keywords, balanced λ, top-10, locally clustered — the defaults every
// sweep holds fixed while varying one parameter.
func DefaultQuerySpec() QuerySpec {
	return QuerySpec{Locations: 4, Keywords: 3, Lambda: 0.5, K: 10, Seed: 99}
}

// GenQueries draws n queries against ds: an anchor vertex uniform over the
// network, the remaining locations within the spread radius of the anchor,
// and keywords drawn from the topic of the anchor's region (the same
// region→topic map the trajectory generator used), so queries exhibit the
// spatial and spatial–textual locality of real trip intentions.
func GenQueries(ds *Dataset, spec QuerySpec, n int) []core.Query {
	rng := rand.New(rand.NewPCG(spec.Seed, spec.Seed^0x94d049bb133111eb))
	regions := trajdb.NewRegionTopics(ds.Graph.Bounds(), ds.Vocab.NumTopics())
	if spec.SpreadFrac == 0 {
		spec.SpreadFrac = 0.15
	}
	bounds := ds.Graph.Bounds()
	diag := bounds.Min.Dist(bounds.Max)
	radius := spec.SpreadFrac * diag / 2
	var idx *roadnet.VertexIndex
	if spec.SpreadFrac < 1 {
		idx = vertexIndexFor(ds)
	}
	queries := make([]core.Query, n)
	for i := range queries {
		anchor := roadnet.VertexID(rng.IntN(ds.Graph.NumVertices()))
		locs := make([]roadnet.VertexID, spec.Locations)
		locs[0] = anchor
		var nearby []roadnet.VertexID
		if idx != nil {
			nearby = idx.Within(ds.Graph.Point(anchor), radius)
		}
		for j := 1; j < len(locs); j++ {
			if len(nearby) > 0 {
				locs[j] = nearby[rng.IntN(len(nearby))]
			} else {
				locs[j] = roadnet.VertexID(rng.IntN(ds.Graph.NumVertices()))
			}
		}
		topic := regions.TopicOf(ds.Graph.Point(anchor))
		queries[i] = core.Query{
			Locations: locs,
			Keywords:  ds.Vocab.DrawQueryTerms(topic, spec.Keywords, 0.8, rng),
			Lambda:    spec.Lambda,
			K:         spec.K,
		}
	}
	return queries
}
