package experiments

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/rpc"
	"uots/internal/shard"
)

// hedgeSlowDelay is the latency injected into one replica of partition
// 0, standing in for a GC pause / noisy neighbour; hedgeFireDelay is
// how long the router waits before duplicating the call on the other
// replica. The experiment's claim is that the hedged tail tracks
// hedgeFireDelay + a fast attempt instead of hedgeSlowDelay.
const (
	hedgeSlowDelay = 25 * time.Millisecond
	hedgeFireDelay = 5 * time.Millisecond
)

// Hedging reproduces the F12 tail-latency experiment: the distributed
// search path (real HTTP servers on the loopback, 2 partitions × 2
// replicas) with one deterministically slow replica, measured with
// hedged requests disabled and enabled. Unlike the work-counter
// experiments this one is pure wall clock — the quantity hedging buys
// is time, not work (it strictly adds duplicate attempts).
func Hedging(ctx context.Context, w io.Writer, p Profile) error {
	ds, err := BuildCached(p.BRNSpec(0))
	if err != nil {
		return err
	}
	const partitions = 2
	// Every replica of a partition serves the same shard engine; replica
	// 0 of partition 0 answers searches hedgeSlowDelay late.
	var servers [partitions][2]*httptest.Server
	for pi := 0; pi < partitions; pi++ {
		eng, globals, err := shard.BuildShardEngine(ds.Store, core.Options{}, shard.HashPartitioner{}, partitions, pi)
		if err != nil {
			return err
		}
		ss, err := rpc.NewShardServer(eng, globals, pi, partitions)
		if err != nil {
			return err
		}
		for ri := 0; ri < 2; ri++ {
			h := http.Handler(ss.Handler())
			if pi == 0 && ri == 0 {
				inner := h
				h = http.HandlerFunc(func(rw http.ResponseWriter, req *http.Request) {
					if req.URL.Path == rpc.PathSearch {
						time.Sleep(hedgeSlowDelay)
					}
					inner.ServeHTTP(rw, req)
				})
			}
			srv := httptest.NewServer(h)
			defer srv.Close()
			servers[pi][ri] = srv
		}
	}

	queries := GenQueries(ds, DefaultQuerySpec(), p.Queries*8)
	configs := []struct {
		name  string
		hedge time.Duration
	}{
		{"no-hedge", 0},
		{fmt.Sprintf("hedge=%s", hedgeFireDelay), hedgeFireDelay},
	}
	t := NewTable(fmt.Sprintf("F12 hedged requests vs tail latency (%s, 2 partitions x 2 replicas, one replica +%s)",
		ds.Name, hedgeSlowDelay),
		"config", "p50 ms", "p90 ms", "p99 ms", "mean ms", "hedges", "hedge wins")
	for _, cfg := range configs {
		bench := newBenchCollector(MetricsFrom(ctx), cfg.name)
		reg := obs.NewRegistry()
		m := rpc.NewMetrics(reg)
		groups := make([]*rpc.Group, partitions)
		for pi := 0; pi < partitions; pi++ {
			g, err := rpc.NewGroup([]string{servers[pi][0].URL, servers[pi][1].URL},
				rpc.GroupConfig{HedgeDelay: cfg.hedge}, m)
			if err != nil {
				return err
			}
			groups[pi] = g
		}
		re, err := shard.NewRemoteExecutor(groups, shard.RemoteConfig{Metrics: reg})
		if err != nil {
			return err
		}
		lat := make([]float64, 0, len(queries))
		for _, q := range queries {
			start := time.Now()
			_, st, err := re.SearchCtx(ctx, q)
			if err != nil {
				re.Close()
				return err
			}
			elapsed := time.Since(start)
			bench.record(st, elapsed.Seconds())
			lat = append(lat, float64(elapsed.Microseconds())/1000)
		}
		re.Close()
		// Mirror the hedge counters into the bench registry so the
		// BENCH_F12.json baseline captures them per configuration.
		if breg := MetricsFrom(ctx); breg != nil {
			breg.CounterVec("uots_bench_hedges_total",
				"Hedged attempts fired during the benchmark run, by configuration.", "algo").
				With(cfg.name).AddInt(int(reg.Counter("uots_rpc_hedges_total", "").Value()))
			breg.CounterVec("uots_bench_hedge_wins_total",
				"Hedged attempts that answered first, by configuration.", "algo").
				With(cfg.name).AddInt(int(reg.Counter("uots_rpc_hedge_wins_total", "").Value()))
		}
		sort.Float64s(lat)
		mean := 0.0
		for _, v := range lat {
			mean += v
		}
		mean /= float64(len(lat))
		t.AddRow(cfg.name,
			fmtMs(percentile(lat, 0.50)), fmtMs(percentile(lat, 0.90)), fmtMs(percentile(lat, 0.99)),
			fmtMs(mean),
			fmt.Sprint(reg.Counter("uots_rpc_hedges_total", "").Value()),
			fmt.Sprint(reg.Counter("uots_rpc_hedge_wins_total", "").Value()))
	}
	return t.Fprint(w)
}

// percentile reads the q-quantile from an ascending-sorted series
// (nearest-rank).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
