package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand/v2"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/roadnet"
)

// BatchShare reproduces the F11 batch-planner experiment: a fixed query
// batch run with and without cross-query expansion sharing, at growing
// source-overlap rates. The workload remaps query locations onto a
// shrinking pool of hotspot vertices — the serving shape where many
// users ask about the same few places — while "uniform" keeps the
// generator's natural city-wide spread. The table records the planner
// counters behind the uots_batch_* metrics: served settles (expansion
// work the queries consumed) versus frontier settles (Dijkstra work
// actually performed), whose ratio is the fraction of vertex expansions
// sharing eliminated. Results are byte-identical either way (the
// planner's correctness contract, cross-validated in internal/core), so
// the saved column is pure overhead removed.
func BatchShare(ctx context.Context, w io.Writer, p Profile) error {
	dss, err := bothDatasets(p)
	if err != nil {
		return err
	}
	reg := MetricsFrom(ctx)
	bm := obs.NewBatchMetrics(reg) // nil-safe: no-op without -metrics-out
	batchSize := p.Queries * 4

	t := NewTable("F11 shared-expansion batch planner vs independent execution (expansion, default settings)",
		"dataset", "workload", "refs", "sources", "served", "frontier", "saved", "shared ms", "indep ms")
	for _, ds := range dss {
		e, err := core.NewEngine(ds.Store, core.Options{Landmarks: ds.Landmarks()})
		if err != nil {
			return err
		}
		for _, cfg := range []struct {
			name string
			pool int // 0 = natural city-wide workload
		}{
			{"uniform", 0},
			{"pool=64", 64},
			{"pool=16", 16},
			{"pool=4", 4},
		} {
			queries := GenQueries(ds, DefaultQuerySpec(), batchSize)
			if cfg.pool > 0 {
				remapToHotspots(queries, ds, cfg.pool)
			}

			shared, sstats, err := e.SearchBatch(ctx, queries, core.BatchOptions{SharedExpansion: true})
			if err != nil {
				return err
			}
			if n := countFailed(shared); n > 0 {
				return fmt.Errorf("experiments: %d shared batch queries failed", n)
			}
			indep, istats, err := e.SearchBatch(ctx, queries, core.BatchOptions{})
			if err != nil {
				return err
			}
			if n := countFailed(indep); n > 0 {
				return fmt.Errorf("experiments: %d independent batch queries failed", n)
			}
			bm.RecordBatch(sstats.Queries, sstats.Failed, sstats.DistinctSources,
				sstats.SourceRefs, sstats.FrontierSettles, sstats.ServedSettles, true)

			saved := 0.0
			if sstats.ServedSettles > 0 {
				saved = 1 - float64(sstats.FrontierSettles)/float64(sstats.ServedSettles)
			}
			t.AddRow(ds.Name, cfg.name,
				fmt.Sprint(sstats.SourceRefs), fmt.Sprint(sstats.DistinctSources),
				fmt.Sprint(sstats.ServedSettles), fmt.Sprint(sstats.FrontierSettles),
				fmtRatio(saved),
				fmtMs(float64(sstats.WallClock.Microseconds())/1000),
				fmtMs(float64(istats.WallClock.Microseconds())/1000))
		}
	}
	return t.Fprint(w)
}

// remapToHotspots rewrites every query location onto a pool of n
// hotspot vertices drawn deterministically from the network, raising
// the batch's source-overlap rate as the pool shrinks.
func remapToHotspots(queries []core.Query, ds *Dataset, n int) {
	rng := rand.New(rand.NewPCG(uint64(n), 0x5eed))
	pool := make([]roadnet.VertexID, n)
	for i := range pool {
		pool[i] = roadnet.VertexID(rng.IntN(ds.Graph.NumVertices()))
	}
	for qi := range queries {
		for j := range queries[qi].Locations {
			queries[qi].Locations[j] = pool[rng.IntN(n)]
		}
	}
}

// countFailed reports the failed slots of a batch run.
func countFailed(out []core.BatchResult) int {
	n := 0
	for _, o := range out {
		if o.Err != nil {
			n++
		}
	}
	return n
}
