package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled, aligned text table — the output format of every
// experiment, mirroring one table or figure of the paper's evaluation.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column header.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Header))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Fprint writes the table to w with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString("## " + t.Title + "\n")
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// fmtMs formats a milliseconds value with sensible precision.
func fmtMs(ms float64) string {
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 1:
		return fmt.Sprintf("%.1f", ms)
	default:
		return fmt.Sprintf("%.3f", ms)
	}
}

// fmtCount formats a mean count.
func fmtCount(x float64) string {
	if x >= 1000 {
		return fmt.Sprintf("%.0f", x)
	}
	return fmt.Sprintf("%.1f", x)
}

// fmtRatio formats a ratio in [0,1].
func fmtRatio(x float64) string { return fmt.Sprintf("%.3f", x) }
