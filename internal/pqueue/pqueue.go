// Package pqueue provides the priority-queue building blocks used across
// the road-network and search engines: an indexed min-heap with
// decrease-key (Dijkstra), a plain generic binary heap, and a bounded
// top-k heap.
//
// All queues in this package are hand-rolled binary heaps rather than
// wrappers over container/heap: the hot loops of the search engine pop and
// push millions of items per query, and avoiding the interface indirection
// of container/heap measurably reduces per-operation cost.
package pqueue

// Min is a plain binary min-heap over items of type T ordered by a float64
// priority. The zero value is an empty, ready-to-use queue.
type Min[T any] struct {
	items []minItem[T]
}

type minItem[T any] struct {
	prio float64
	val  T
}

// Len returns the number of queued items.
func (q *Min[T]) Len() int { return len(q.items) }

// Push adds val with the given priority.
func (q *Min[T]) Push(prio float64, val T) {
	q.items = append(q.items, minItem[T]{prio, val})
	q.up(len(q.items) - 1)
}

// Pop removes and returns the item with the smallest priority.
// ok is false when the queue is empty.
func (q *Min[T]) Pop() (prio float64, val T, ok bool) {
	if len(q.items) == 0 {
		return 0, val, false
	}
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = minItem[T]{} // release references held by popped slot
	q.items = q.items[:last]
	if last > 0 {
		q.down(0)
	}
	return top.prio, top.val, true
}

// Peek returns the smallest-priority item without removing it.
func (q *Min[T]) Peek() (prio float64, val T, ok bool) {
	if len(q.items) == 0 {
		return 0, val, false
	}
	return q.items[0].prio, q.items[0].val, true
}

// Reset empties the queue but keeps its backing storage for reuse.
func (q *Min[T]) Reset() {
	clear(q.items)
	q.items = q.items[:0]
}

func (q *Min[T]) up(i int) {
	item := q.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if q.items[parent].prio <= item.prio {
			break
		}
		q.items[i] = q.items[parent]
		i = parent
	}
	q.items[i] = item
}

func (q *Min[T]) down(i int) {
	n := len(q.items)
	item := q.items[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && q.items[r].prio < q.items[child].prio {
			child = r
		}
		if item.prio <= q.items[child].prio {
			break
		}
		q.items[i] = q.items[child]
		i = child
	}
	q.items[i] = item
}

// Max is a plain binary max-heap over items of type T ordered by a float64
// priority. The zero value is an empty, ready-to-use queue.
type Max[T any] struct {
	inner Min[T]
}

// Len returns the number of queued items.
func (q *Max[T]) Len() int { return q.inner.Len() }

// Push adds val with the given priority.
func (q *Max[T]) Push(prio float64, val T) { q.inner.Push(-prio, val) }

// Pop removes and returns the item with the largest priority.
func (q *Max[T]) Pop() (prio float64, val T, ok bool) {
	p, v, ok := q.inner.Pop()
	return -p, v, ok
}

// Peek returns the largest-priority item without removing it.
func (q *Max[T]) Peek() (prio float64, val T, ok bool) {
	p, v, ok := q.inner.Peek()
	return -p, v, ok
}

// Reset empties the queue but keeps its backing storage for reuse.
func (q *Max[T]) Reset() { q.inner.Reset() }
