package pqueue

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestMinBasic(t *testing.T) {
	var q Min[string]
	if _, _, ok := q.Pop(); ok {
		t.Fatal("pop from empty queue should fail")
	}
	q.Push(3, "c")
	q.Push(1, "a")
	q.Push(2, "b")
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	if p, v, ok := q.Peek(); !ok || p != 1 || v != "a" {
		t.Fatalf("Peek = (%g, %q, %v)", p, v, ok)
	}
	want := []string{"a", "b", "c"}
	for _, w := range want {
		_, v, ok := q.Pop()
		if !ok || v != w {
			t.Fatalf("Pop = %q, want %q", v, w)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("Len after drain = %d", q.Len())
	}
}

func TestMinSortsProperty(t *testing.T) {
	f := func(prios []float64) bool {
		var q Min[int]
		for i, p := range prios {
			q.Push(p, i)
		}
		var popped []float64
		for {
			p, _, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, p)
		}
		if len(popped) != len(prios) {
			return false
		}
		return sort.Float64sAreSorted(popped)
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMinReset(t *testing.T) {
	var q Min[int]
	for i := 0; i < 10; i++ {
		q.Push(float64(10-i), i)
	}
	q.Reset()
	if q.Len() != 0 {
		t.Fatalf("Len after Reset = %d", q.Len())
	}
	q.Push(5, 1)
	q.Push(2, 2)
	if _, v, _ := q.Pop(); v != 2 {
		t.Fatal("queue unusable after Reset")
	}
}

func TestMaxBasic(t *testing.T) {
	var q Max[int]
	for _, p := range []float64{0.3, 0.9, 0.1, 0.5} {
		q.Push(p, int(p*10))
	}
	if p, v, ok := q.Peek(); !ok || p != 0.9 || v != 9 {
		t.Fatalf("Peek = (%g, %d, %v)", p, v, ok)
	}
	var prev = 2.0
	for {
		p, _, ok := q.Pop()
		if !ok {
			break
		}
		if p > prev {
			t.Fatalf("max heap popped %g after %g", p, prev)
		}
		prev = p
	}
}

func TestIndexedAsDijkstraHeap(t *testing.T) {
	h := NewIndexed(10)
	h.Push(3, 5.0)
	h.Push(7, 2.0)
	h.Push(1, 9.0)
	if !h.Contains(3) || h.Contains(0) {
		t.Fatal("Contains is wrong")
	}
	if h.Priority(7) != 2.0 {
		t.Fatalf("Priority(7) = %g", h.Priority(7))
	}
	// Push with higher priority is a no-op.
	h.Push(7, 4.0)
	if h.Priority(7) != 2.0 {
		t.Fatal("push with higher priority should not update")
	}
	// Push with lower priority decreases the key.
	h.Push(1, 1.0)
	if h.Priority(1) != 1.0 {
		t.Fatal("decrease-key failed")
	}
	k, p, ok := h.Pop()
	if !ok || k != 1 || p != 1.0 {
		t.Fatalf("Pop = (%d, %g)", k, p)
	}
	if h.Contains(1) {
		t.Fatal("popped key still contained")
	}
}

func TestIndexedPopOrderRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	const n = 500
	h := NewIndexed(n)
	want := make([]float64, n)
	for i := range want {
		want[i] = rng.Float64()
		h.Push(int32(i), want[i])
	}
	// Randomly decrease half the keys.
	for i := 0; i < n/2; i++ {
		k := int32(rng.IntN(n))
		np := h.Priority(k) * rng.Float64()
		h.Push(k, np)
		want[k] = np
	}
	prev := -1.0
	count := 0
	for {
		k, p, ok := h.Pop()
		if !ok {
			break
		}
		count++
		if p < prev {
			t.Fatalf("pop order violated: %g after %g", p, prev)
		}
		if p != want[k] {
			t.Fatalf("key %d popped with %g, want %g", k, p, want[k])
		}
		prev = p
	}
	if count != n {
		t.Fatalf("popped %d of %d", count, n)
	}
}

func TestIndexedReset(t *testing.T) {
	h := NewIndexed(8)
	for i := int32(0); i < 8; i++ {
		h.Push(i, float64(8-i))
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatalf("Len after Reset = %d", h.Len())
	}
	for i := int32(0); i < 8; i++ {
		if h.Contains(i) {
			t.Fatalf("key %d still contained after Reset", i)
		}
	}
	h.Push(4, 1)
	if k, _, _ := h.Pop(); k != 4 {
		t.Fatal("heap unusable after Reset")
	}
}

func TestTopKKeepsBest(t *testing.T) {
	tk := NewTopK[int](3)
	if tk.K() != 3 {
		t.Fatalf("K = %d", tk.K())
	}
	if _, ok := tk.Threshold(); ok {
		t.Fatal("threshold should not exist before full")
	}
	scores := []float64{0.5, 0.9, 0.1, 0.7, 0.3, 0.8}
	for i, s := range scores {
		tk.Offer(s, int64(i), i)
	}
	if th, ok := tk.Threshold(); !ok || th != 0.7 {
		t.Fatalf("Threshold = (%g, %v), want 0.7", th, ok)
	}
	got := tk.Results()
	want := []int{1, 5, 3} // scores 0.9, 0.8, 0.7
	if len(got) != len(want) {
		t.Fatalf("Results len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Results[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestTopKTieBreaksTowardSmallerID(t *testing.T) {
	tk := NewTopK[int](2)
	tk.Offer(0.5, 9, 9)
	tk.Offer(0.5, 3, 3)
	tk.Offer(0.5, 7, 7)
	tk.Offer(0.5, 1, 1)
	got := tk.Results()
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("tie results = %v, want [1 3]", got)
	}
}

func TestTopKRejectsWeaker(t *testing.T) {
	tk := NewTopK[string](1)
	if !tk.Offer(0.5, 1, "first") {
		t.Fatal("first offer must be kept")
	}
	if tk.Offer(0.4, 2, "weaker") {
		t.Fatal("weaker offer must be rejected")
	}
	if tk.Offer(0.5, 2, "tied, larger id") {
		t.Fatal("equal-score larger-id offer must be rejected")
	}
	if !tk.Offer(0.5, 0, "tied, smaller id") {
		t.Fatal("equal-score smaller-id offer must be kept")
	}
	if got := tk.Results(); len(got) != 1 || got[0] != "tied, smaller id" {
		t.Fatalf("Results = %v", got)
	}
}

func TestTopKMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 10))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.IntN(200)
		k := 1 + rng.IntN(20)
		scores := make([]float64, n)
		tk := NewTopK[int](k)
		for i := range scores {
			scores[i] = float64(rng.IntN(50)) / 50 // force ties
			tk.Offer(scores[i], int64(i), i)
		}
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			if scores[idx[a]] != scores[idx[b]] {
				return scores[idx[a]] > scores[idx[b]]
			}
			return idx[a] < idx[b]
		})
		wantLen := k
		if n < k {
			wantLen = n
		}
		got := tk.Results()
		if len(got) != wantLen {
			t.Fatalf("Results len = %d, want %d", len(got), wantLen)
		}
		for i := 0; i < wantLen; i++ {
			if got[i] != idx[i] {
				t.Fatalf("trial %d rank %d: got %d (%.2f), want %d (%.2f)",
					trial, i, got[i], scores[got[i]], idx[i], scores[idx[i]])
			}
		}
	}
}

func TestNewTopKPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTopK(0) should panic")
		}
	}()
	NewTopK[int](0)
}
