package pqueue

// Indexed is an indexed binary min-heap over integer keys in [0, n) with
// float64 priorities. It supports DecreaseKey in O(log n), the operation
// Dijkstra needs, and O(1) membership and priority lookups.
//
// Keys are dense small integers (vertex IDs); the heap keeps a position
// table of size n. Create one per graph and Reset it between runs — Reset
// is O(number of touched keys), not O(n).
type Indexed struct {
	prio    []float64 // prio[key] = current priority (valid while queued)
	pos     []int32   // pos[key] = index into keys, or posAbsent
	keys    []int32   // heap array of keys, ordered by prio
	touched []int32   // keys whose pos entry must be cleared on Reset
}

const posAbsent = int32(-1)

// NewIndexed returns an indexed heap for keys in [0, n).
func NewIndexed(n int) *Indexed {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = posAbsent
	}
	return &Indexed{
		prio: make([]float64, n),
		pos:  pos,
	}
}

// Len returns the number of queued keys.
func (h *Indexed) Len() int { return len(h.keys) }

// Contains reports whether key is currently queued.
func (h *Indexed) Contains(key int32) bool { return h.pos[key] != posAbsent }

// Priority returns the current priority of a queued key. The result is
// undefined for keys that are not queued.
func (h *Indexed) Priority(key int32) float64 { return h.prio[key] }

// Push inserts key with the given priority. If the key is already queued,
// Push behaves as DecreaseKey when prio is lower than the current priority
// and does nothing otherwise, so Dijkstra can use a single "relax" call.
func (h *Indexed) Push(key int32, prio float64) {
	if p := h.pos[key]; p != posAbsent {
		if prio < h.prio[key] {
			h.prio[key] = prio
			h.up(int(p))
		}
		return
	}
	h.prio[key] = prio
	h.pos[key] = int32(len(h.keys))
	h.keys = append(h.keys, key)
	h.touched = append(h.touched, key)
	h.up(len(h.keys) - 1)
}

// Pop removes and returns the queued key with the smallest priority.
// ok is false when the heap is empty.
func (h *Indexed) Pop() (key int32, prio float64, ok bool) {
	if len(h.keys) == 0 {
		return 0, 0, false
	}
	key = h.keys[0]
	prio = h.prio[key]
	last := len(h.keys) - 1
	h.keys[0] = h.keys[last]
	h.pos[h.keys[0]] = 0
	h.keys = h.keys[:last]
	h.pos[key] = posAbsent
	if last > 0 {
		h.down(0)
	}
	return key, prio, true
}

// Peek returns the smallest-priority key without removing it.
func (h *Indexed) Peek() (key int32, prio float64, ok bool) {
	if len(h.keys) == 0 {
		return 0, 0, false
	}
	return h.keys[0], h.prio[h.keys[0]], true
}

// Reset empties the heap in time proportional to the number of keys pushed
// since the previous Reset, keeping all backing storage.
func (h *Indexed) Reset() {
	for _, k := range h.touched {
		h.pos[k] = posAbsent
	}
	h.touched = h.touched[:0]
	h.keys = h.keys[:0]
}

func (h *Indexed) up(i int) {
	key := h.keys[i]
	p := h.prio[key]
	for i > 0 {
		parent := (i - 1) / 2
		pk := h.keys[parent]
		if h.prio[pk] <= p {
			break
		}
		h.keys[i] = pk
		h.pos[pk] = int32(i)
		i = parent
	}
	h.keys[i] = key
	h.pos[key] = int32(i)
}

func (h *Indexed) down(i int) {
	n := len(h.keys)
	key := h.keys[i]
	p := h.prio[key]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		ck := h.keys[child]
		if r := child + 1; r < n {
			if rk := h.keys[r]; h.prio[rk] < h.prio[ck] {
				child, ck = r, rk
			}
		}
		if p <= h.prio[ck] {
			break
		}
		h.keys[i] = ck
		h.pos[ck] = int32(i)
		i = child
	}
	h.keys[i] = key
	h.pos[key] = int32(i)
}
