package pqueue

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// Interleaved push/pop property tests: every queue in this package is
// exercised against a naive reference model under adversarial random
// operation sequences (the shard merger and the scatter-gather paths
// interleave offers and drains rather than doing one bulk load), with
// the heap invariant checked after every mutation.

// checkMinInvariant verifies the binary-heap ordering of a Min queue.
func checkMinInvariant[T any](t *testing.T, q *Min[T]) {
	t.Helper()
	for i := 1; i < len(q.items); i++ {
		parent := (i - 1) / 2
		if q.items[parent].prio > q.items[i].prio {
			t.Fatalf("heap invariant broken: items[%d].prio=%g > items[%d].prio=%g",
				parent, q.items[parent].prio, i, q.items[i].prio)
		}
	}
}

// checkTopKInvariant verifies the min-heap-on-weakness ordering of a
// TopK collector (the root is the weakest kept item).
func checkTopKInvariant[T any](t *testing.T, tk *TopK[T]) {
	t.Helper()
	for i := 1; i < len(tk.items); i++ {
		parent := (i - 1) / 2
		if weaker(tk.items[i], tk.items[parent]) {
			t.Fatalf("topk invariant broken: items[%d] weaker than its parent", i)
		}
	}
}

func TestMinInterleavedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(201, 1))
	for trial := 0; trial < 50; trial++ {
		var q Min[int]
		var ref []float64 // sorted ascending: ref[0] is the model's min
		next := 0
		for op := 0; op < 400; op++ {
			// Push-biased early, drain-biased late, with duplicate
			// priorities forced so equal keys interleave.
			if rng.IntN(3) != 0 || len(ref) == 0 {
				p := float64(rng.IntN(40)) / 8
				q.Push(p, next)
				next++
				at := sort.SearchFloat64s(ref, p)
				ref = append(ref, 0)
				copy(ref[at+1:], ref[at:])
				ref[at] = p
			} else {
				p, _, ok := q.Pop()
				if !ok {
					t.Fatalf("trial %d op %d: Pop failed with %d queued", trial, op, len(ref))
				}
				if p != ref[0] {
					t.Fatalf("trial %d op %d: popped prio %g, reference min %g", trial, op, p, ref[0])
				}
				ref = ref[1:]
			}
			if q.Len() != len(ref) {
				t.Fatalf("trial %d op %d: Len=%d, reference %d", trial, op, q.Len(), len(ref))
			}
			checkMinInvariant(t, &q)
			if len(ref) > 0 {
				if p, _, ok := q.Peek(); !ok || p != ref[0] {
					t.Fatalf("trial %d op %d: Peek=%g, reference min %g", trial, op, p, ref[0])
				}
			}
		}
		// Drain: remaining pops must come out exactly sorted.
		for len(ref) > 0 {
			p, _, ok := q.Pop()
			if !ok || p != ref[0] {
				t.Fatalf("trial %d drain: popped (%g,%v), want %g", trial, p, ok, ref[0])
			}
			ref = ref[1:]
		}
		if _, _, ok := q.Pop(); ok {
			t.Fatalf("trial %d: Pop succeeded on empty queue", trial)
		}
	}
}

func TestMaxInterleavedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(202, 2))
	for trial := 0; trial < 20; trial++ {
		var q Max[int]
		var ref []float64 // sorted ascending: last is the model's max
		for op := 0; op < 300; op++ {
			if rng.IntN(3) != 0 || len(ref) == 0 {
				p := float64(rng.IntN(32)) / 4
				q.Push(p, op)
				at := sort.SearchFloat64s(ref, p)
				ref = append(ref, 0)
				copy(ref[at+1:], ref[at:])
				ref[at] = p
			} else {
				p, _, ok := q.Pop()
				want := ref[len(ref)-1]
				if !ok || p != want {
					t.Fatalf("trial %d op %d: popped (%g,%v), reference max %g", trial, op, p, ok, want)
				}
				ref = ref[:len(ref)-1]
			}
			checkMinInvariant(t, &q.inner)
		}
	}
}

// TestTopKInterleavedOffersAndResults drives a TopK collector with
// adversarial offer sequences — duplicate scores, NaN-free extremes,
// interleaved Results() calls (which must not disturb the collection) —
// against a sort-based reference.
func TestTopKInterleavedOffersAndResults(t *testing.T) {
	rng := rand.New(rand.NewPCG(203, 3))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.IntN(12)
		tk := NewTopK[int64](k)
		type item struct {
			score float64
			id    int64
		}
		var all []item
		nOps := 50 + rng.IntN(300)
		for op := 0; op < nOps; op++ {
			score := float64(rng.IntN(20)) / 20 // dense ties
			if rng.IntN(16) == 0 {
				score = math.Inf(1) // extremes must not corrupt ordering
			}
			id := int64(op)
			if rng.IntN(8) == 0 && len(all) > 0 {
				id = all[rng.IntN(len(all))].id // duplicate tiebreak values
			}
			tk.Offer(score, id, id)
			all = append(all, item{score, id})
			checkTopKInvariant(t, tk)

			if rng.IntN(10) != 0 {
				continue
			}
			// Mid-stream Results() must match the reference and leave the
			// collector intact.
			ref := make([]item, len(all))
			copy(ref, all)
			sort.Slice(ref, func(a, b int) bool {
				if ref[a].score != ref[b].score {
					return ref[a].score > ref[b].score
				}
				return ref[a].id < ref[b].id
			})
			want := k
			if len(ref) < k {
				want = len(ref)
			}
			got := tk.Results()
			if len(got) != want {
				t.Fatalf("trial %d op %d: %d results, want %d", trial, op, len(got), want)
			}
			for i := 0; i < want; i++ {
				if got[i] != ref[i].id {
					t.Fatalf("trial %d op %d rank %d: got id %d, want %d (score %g)",
						trial, op, i, got[i], ref[i].id, ref[i].score)
				}
			}
			checkTopKInvariant(t, tk)
		}
	}
}

// TestIndexedInterleavedMatchesReference mixes pushes, decrease-keys and
// pops on the Dijkstra heap against a map-based reference.
func TestIndexedInterleavedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewPCG(204, 4))
	const n = 64
	for trial := 0; trial < 30; trial++ {
		h := NewIndexed(n)
		ref := make(map[int32]float64)
		for op := 0; op < 500; op++ {
			switch {
			case rng.IntN(3) != 0: // push or decrease-key
				k := int32(rng.IntN(n))
				p := rng.Float64() * 10
				h.Push(k, p)
				old, ok := ref[k]
				if !ok || p < old {
					ref[k] = p
				}
			case len(ref) > 0: // pop must return the reference minimum
				k, p, ok := h.Pop()
				if !ok {
					t.Fatalf("trial %d op %d: Pop failed with %d keys in reference", trial, op, len(ref))
				}
				want, inRef := ref[k]
				if !inRef || p != want {
					t.Fatalf("trial %d op %d: popped (%d,%g), reference has (%v,%g)", trial, op, k, p, inRef, want)
				}
				for _, rp := range ref {
					if rp < p {
						t.Fatalf("trial %d op %d: popped %g but reference holds smaller %g", trial, op, p, rp)
					}
				}
				delete(ref, k)
			}
			if h.Len() != len(ref) {
				t.Fatalf("trial %d op %d: Len=%d, reference %d", trial, op, h.Len(), len(ref))
			}
			for k, p := range ref {
				if !h.Contains(k) || h.Priority(k) != p {
					t.Fatalf("trial %d op %d: key %d priority %g missing or wrong", trial, op, k, p)
				}
			}
		}
	}
}
