package pqueue

import "sort"

// TopK keeps the k largest-scoring items seen so far, in O(log k) per
// insertion. Ties are broken toward smaller tiebreak values (deterministic
// results when scores collide: the item with the smaller ID wins a slot).
type TopK[T any] struct {
	k     int
	items []topkItem[T] // min-heap on (score, -tiebreak): root is the weakest kept item
}

type topkItem[T any] struct {
	score    float64
	tiebreak int64
	val      T
}

// NewTopK returns a collector for the k best items. k must be positive.
func NewTopK[T any](k int) *TopK[T] {
	if k <= 0 {
		panic("pqueue: NewTopK requires k > 0")
	}
	return &TopK[T]{k: k, items: make([]topkItem[T], 0, k)}
}

// K returns the capacity of the collector.
func (t *TopK[T]) K() int { return t.k }

// Len returns the number of items currently kept (≤ k).
func (t *TopK[T]) Len() int { return len(t.items) }

// Full reports whether k items have been collected.
func (t *TopK[T]) Full() bool { return len(t.items) == t.k }

// Threshold returns the score an item must strictly beat (or tie with a
// smaller tiebreak) to enter the collection, and whether the collection is
// full. While not full the threshold is -Inf semantics: ok is false and
// every offer is accepted.
func (t *TopK[T]) Threshold() (score float64, ok bool) {
	if len(t.items) < t.k {
		return 0, false
	}
	return t.items[0].score, true
}

// Offer proposes an item; it returns true if the item was kept.
func (t *TopK[T]) Offer(score float64, tiebreak int64, val T) bool {
	it := topkItem[T]{score, tiebreak, val}
	if len(t.items) < t.k {
		t.items = append(t.items, it)
		t.up(len(t.items) - 1)
		return true
	}
	if !weaker(t.items[0], it) {
		return false
	}
	t.items[0] = it
	t.down(0)
	return true
}

// weaker reports whether a ranks strictly below b: lower score, or equal
// score with a larger tiebreak.
func weaker[T any](a, b topkItem[T]) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.tiebreak > b.tiebreak
}

// Results returns the kept items ordered best-first (descending score,
// ascending tiebreak among ties). The collector remains usable afterwards.
func (t *TopK[T]) Results() []T {
	sorted := make([]topkItem[T], len(t.items))
	copy(sorted, t.items)
	sort.Slice(sorted, func(i, j int) bool { return weaker(sorted[j], sorted[i]) })
	out := make([]T, len(sorted))
	for i, it := range sorted {
		out[i] = it.val
	}
	return out
}

func (t *TopK[T]) up(i int) {
	it := t.items[i]
	for i > 0 {
		parent := (i - 1) / 2
		if !weaker(it, t.items[parent]) {
			break
		}
		t.items[i] = t.items[parent]
		i = parent
	}
	t.items[i] = it
}

func (t *TopK[T]) down(i int) {
	n := len(t.items)
	it := t.items[i]
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && weaker(t.items[r], t.items[child]) {
			child = r
		}
		if !weaker(t.items[child], it) {
			break
		}
		t.items[i] = t.items[child]
		i = child
	}
	t.items[i] = it
}
