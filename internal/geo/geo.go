// Package geo provides the planar geometry primitives used by the road
// network and map-matching substrates.
//
// Coordinates are planar and expressed in kilometres. Synthetic city
// networks are generated directly in this plane; real longitude/latitude
// data would be projected before entering the system (the projection is
// outside the scope of this library).
package geo

import (
	"fmt"
	"math"
)

// Point is a location in the plane, in kilometres.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q in kilometres.
func (p Point) Dist(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// DistSq returns the squared Euclidean distance between p and q. It avoids
// the square root for comparison-only call sites (nearest-neighbour scans).
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Add returns the component-wise sum p+q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns the component-wise difference p-q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Lerp returns the point at parameter t on the segment p→q
// (t=0 yields p, t=1 yields q; t is not clamped).
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.4f, %.4f)", p.X, p.Y) }

// Rect is an axis-aligned bounding box. The zero Rect is empty.
type Rect struct {
	Min, Max Point
}

// EmptyRect returns the identity element for Rect.Union: a rectangle that
// contains nothing and leaves any rectangle unchanged when united with it.
func EmptyRect() Rect {
	return Rect{
		Min: Point{math.Inf(1), math.Inf(1)},
		Max: Point{math.Inf(-1), math.Inf(-1)},
	}
}

// RectOf returns the smallest rectangle containing all the given points.
// With no points it returns EmptyRect().
func RectOf(pts ...Point) Rect {
	r := EmptyRect()
	for _, p := range pts {
		r = r.ExtendPoint(p)
	}
	return r
}

// IsEmpty reports whether the rectangle contains no points.
func (r Rect) IsEmpty() bool { return r.Min.X > r.Max.X || r.Min.Y > r.Max.Y }

// Width returns the horizontal extent of r (0 for empty rectangles).
func (r Rect) Width() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.X - r.Min.X
}

// Height returns the vertical extent of r (0 for empty rectangles).
func (r Rect) Height() float64 {
	if r.IsEmpty() {
		return 0
	}
	return r.Max.Y - r.Min.Y
}

// Contains reports whether p lies inside r (boundaries included).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X <= r.Max.X && p.Y >= r.Min.Y && p.Y <= r.Max.Y
}

// ExtendPoint returns the smallest rectangle containing r and p.
func (r Rect) ExtendPoint(p Point) Rect {
	return Rect{
		Min: Point{math.Min(r.Min.X, p.X), math.Min(r.Min.Y, p.Y)},
		Max: Point{math.Max(r.Max.X, p.X), math.Max(r.Max.Y, p.Y)},
	}
}

// Union returns the smallest rectangle containing both r and s.
func (r Rect) Union(s Rect) Rect {
	if r.IsEmpty() {
		return s
	}
	if s.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Max: Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	if r.IsEmpty() || s.IsEmpty() {
		return false
	}
	return r.Min.X <= s.Max.X && s.Min.X <= r.Max.X &&
		r.Min.Y <= s.Max.Y && s.Min.Y <= r.Max.Y
}

// Center returns the midpoint of r. Center of an empty rectangle is
// undefined; callers must check IsEmpty first.
func (r Rect) Center() Point {
	return Point{(r.Min.X + r.Max.X) / 2, (r.Min.Y + r.Max.Y) / 2}
}

// Expand returns r grown by margin on every side. A negative margin shrinks
// the rectangle and may make it empty.
func (r Rect) Expand(margin float64) Rect {
	if r.IsEmpty() {
		return r
	}
	return Rect{
		Min: Point{r.Min.X - margin, r.Min.Y - margin},
		Max: Point{r.Max.X + margin, r.Max.Y + margin},
	}
}

// DistToPoint returns the distance from p to the rectangle (0 if inside).
func (r Rect) DistToPoint(p Point) float64 {
	if r.IsEmpty() {
		return math.Inf(1)
	}
	dx := math.Max(0, math.Max(r.Min.X-p.X, p.X-r.Max.X))
	dy := math.Max(0, math.Max(r.Min.Y-p.Y, p.Y-r.Max.Y))
	return math.Hypot(dx, dy)
}

// SegmentDist returns the distance from point p to segment a→b, and the
// parameter t ∈ [0,1] of the closest point on the segment.
func SegmentDist(p, a, b Point) (dist, t float64) {
	ab := b.Sub(a)
	den := ab.X*ab.X + ab.Y*ab.Y
	if den == 0 {
		return p.Dist(a), 0
	}
	ap := p.Sub(a)
	t = (ap.X*ab.X + ap.Y*ab.Y) / den
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.Dist(a.Lerp(b, t)), t
}

// PolylineLength returns the total length of the polyline through pts.
func PolylineLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}
