package geo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestPointDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{1.5, 2.5}, Point{1.5, 2.5}, 0},
	}
	for _, c := range cases {
		if got := c.p.Dist(c.q); !almostEq(got, c.want) {
			t.Errorf("Dist(%v, %v) = %g, want %g", c.p, c.q, got, c.want)
		}
		if got := c.p.DistSq(c.q); !almostEq(got, c.want*c.want) {
			t.Errorf("DistSq(%v, %v) = %g, want %g", c.p, c.q, got, c.want*c.want)
		}
	}
}

func TestDistSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := Point{ax, ay}, Point{bx, by}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 500; i++ {
		a := Point{rng.Float64() * 100, rng.Float64() * 100}
		b := Point{rng.Float64() * 100, rng.Float64() * 100}
		c := Point{rng.Float64() * 100, rng.Float64() * 100}
		if a.Dist(c) > a.Dist(b)+b.Dist(c)+1e-9 {
			t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
		}
	}
}

func TestPointArithmetic(t *testing.T) {
	p, q := Point{1, 2}, Point{3, -4}
	if got := p.Add(q); got != (Point{4, -2}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != (Point{-2, 6}) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != (Point{2, 4}) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Lerp(q, 0); got != p {
		t.Errorf("Lerp(0) = %v, want %v", got, p)
	}
	if got := p.Lerp(q, 1); got != q {
		t.Errorf("Lerp(1) = %v, want %v", got, q)
	}
	if got := p.Lerp(q, 0.5); got != (Point{2, -1}) {
		t.Errorf("Lerp(0.5) = %v", got)
	}
}

func TestEmptyRect(t *testing.T) {
	r := EmptyRect()
	if !r.IsEmpty() {
		t.Fatal("EmptyRect should be empty")
	}
	if r.Width() != 0 || r.Height() != 0 {
		t.Errorf("empty rect has extent %g×%g", r.Width(), r.Height())
	}
	if r.Contains(Point{0, 0}) {
		t.Error("empty rect contains a point")
	}
	if !math.IsInf(r.DistToPoint(Point{0, 0}), 1) {
		t.Error("distance to empty rect should be +Inf")
	}
	one := RectOf(Point{1, 1})
	if got := r.Union(one); got != one {
		t.Errorf("empty ∪ r = %v, want %v", got, one)
	}
	if got := one.Union(r); got != one {
		t.Errorf("r ∪ empty = %v, want %v", got, one)
	}
}

func TestRectOfAndContains(t *testing.T) {
	r := RectOf(Point{1, 5}, Point{3, 2}, Point{2, 7})
	if r.Min != (Point{1, 2}) || r.Max != (Point{3, 7}) {
		t.Fatalf("RectOf bounds = %v..%v", r.Min, r.Max)
	}
	for _, p := range []Point{{1, 2}, {3, 7}, {2, 4}} {
		if !r.Contains(p) {
			t.Errorf("rect should contain %v", p)
		}
	}
	for _, p := range []Point{{0.9, 4}, {3.1, 4}, {2, 1.9}, {2, 7.1}} {
		if r.Contains(p) {
			t.Errorf("rect should not contain %v", p)
		}
	}
}

func TestRectUnionContainsBothProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		r := RectOf(Point{ax, ay}, Point{bx, by})
		s := RectOf(Point{cx, cy}, Point{dx, dy})
		u := r.Union(s)
		return u.Contains(r.Min) && u.Contains(r.Max) && u.Contains(s.Min) && u.Contains(s.Max)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRectIntersects(t *testing.T) {
	a := RectOf(Point{0, 0}, Point{2, 2})
	b := RectOf(Point{1, 1}, Point{3, 3})
	c := RectOf(Point{2.5, 2.5}, Point{4, 4})
	if !a.Intersects(b) || !b.Intersects(a) {
		t.Error("a and b should intersect")
	}
	if a.Intersects(c) {
		t.Error("a and c should not intersect")
	}
	if !b.Intersects(c) {
		t.Error("b and c should intersect")
	}
	if a.Intersects(EmptyRect()) || EmptyRect().Intersects(a) {
		t.Error("nothing intersects the empty rect")
	}
	// Touching edges count as intersecting.
	d := RectOf(Point{2, 0}, Point{3, 2})
	if !a.Intersects(d) {
		t.Error("edge-touching rects should intersect")
	}
}

func TestRectExpand(t *testing.T) {
	r := RectOf(Point{1, 1}, Point{2, 2}).Expand(0.5)
	if r.Min != (Point{0.5, 0.5}) || r.Max != (Point{2.5, 2.5}) {
		t.Errorf("Expand = %v..%v", r.Min, r.Max)
	}
	if !EmptyRect().Expand(1).IsEmpty() {
		t.Error("expanding the empty rect should stay empty")
	}
}

func TestRectDistToPoint(t *testing.T) {
	r := RectOf(Point{0, 0}, Point{2, 2})
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{1, 1}, 0},    // inside
		{Point{2, 2}, 0},    // corner
		{Point{3, 1}, 1},    // right of
		{Point{1, -2}, 2},   // below
		{Point{5, 6}, 5},    // diagonal 3-4-5
		{Point{-3, -4}, 5},  // diagonal other corner
		{Point{0, 2.5}, .5}, // above edge
	}
	for _, c := range cases {
		if got := r.DistToPoint(c.p); !almostEq(got, c.want) {
			t.Errorf("DistToPoint(%v) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestRectDistLowerBoundsMemberDistProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		members := make([]Point, 1+rng.IntN(6))
		for j := range members {
			members[j] = Point{rng.Float64() * 10, rng.Float64() * 10}
		}
		r := RectOf(members...)
		p := Point{rng.Float64()*30 - 10, rng.Float64()*30 - 10}
		lb := r.DistToPoint(p)
		for _, m := range members {
			if lb > p.Dist(m)+1e-9 {
				t.Fatalf("rect distance %g exceeds member distance %g", lb, p.Dist(m))
			}
		}
	}
}

func TestSegmentDist(t *testing.T) {
	a, b := Point{0, 0}, Point{4, 0}
	cases := []struct {
		p     Point
		wantD float64
		wantT float64
	}{
		{Point{2, 3}, 3, 0.5},
		{Point{-3, 4}, 5, 0},
		{Point{7, 4}, 5, 1},
		{Point{0, 0}, 0, 0},
		{Point{4, 0}, 0, 1},
	}
	for _, c := range cases {
		d, tt := SegmentDist(c.p, a, b)
		if !almostEq(d, c.wantD) || !almostEq(tt, c.wantT) {
			t.Errorf("SegmentDist(%v) = (%g, %g), want (%g, %g)", c.p, d, tt, c.wantD, c.wantT)
		}
	}
	// Degenerate segment.
	d, tt := SegmentDist(Point{3, 4}, Point{0, 0}, Point{0, 0})
	if !almostEq(d, 5) || tt != 0 {
		t.Errorf("degenerate SegmentDist = (%g, %g)", d, tt)
	}
}

func TestPolylineLength(t *testing.T) {
	if got := PolylineLength(nil); got != 0 {
		t.Errorf("empty polyline length %g", got)
	}
	if got := PolylineLength([]Point{{1, 1}}); got != 0 {
		t.Errorf("single-point polyline length %g", got)
	}
	pts := []Point{{0, 0}, {3, 4}, {3, 8}}
	if got := PolylineLength(pts); !almostEq(got, 9) {
		t.Errorf("polyline length %g, want 9", got)
	}
}

func TestCenter(t *testing.T) {
	r := RectOf(Point{0, 0}, Point{4, 2})
	if got := r.Center(); got != (Point{2, 1}) {
		t.Errorf("Center = %v", got)
	}
}
