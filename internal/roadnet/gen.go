package roadnet

import (
	"fmt"
	"math/rand/v2"

	"uots/internal/geo"
)

// GridStyle selects the structural family of a generated city network.
type GridStyle int

const (
	// StyleSparse produces maze-like sparse networks (edge count ≈ vertex
	// count, mean degree ≈ 2): a random spanning tree over the grid plus a
	// small fraction of extra edges. This matches the published shape of
	// the Beijing Road Network dataset (28,342 vertices / 27,690 edges).
	StyleSparse GridStyle = iota
	// StyleDense produces dense urban grids (mean degree ≈ 5–6): full
	// horizontal/vertical connectivity plus probabilistic diagonals. This
	// matches the published shape of the New York Road Network dataset
	// (95,581 vertices / 260,855 edges).
	StyleDense
)

// CityOptions parameterizes GenerateCity.
type CityOptions struct {
	Rows, Cols int       // grid dimensions; Rows*Cols vertices before pruning
	Spacing    float64   // grid pitch in kilometres (default 0.25)
	Perturb    float64   // vertex jitter as a fraction of Spacing (default 0.3)
	Style      GridStyle // sparse (maze) or dense (urban grid)
	DiagProb   float64   // StyleDense: probability of each diagonal edge (default 0.35)
	ExtraFrac  float64   // StyleSparse: extra edges beyond the spanning tree, as a fraction of vertices (default 0.02)
	WeightLift float64   // edge weight = euclidean · U(1, 1+WeightLift); keeps A* admissible (default 0.15)
	Seed       uint64    // deterministic generation seed
}

func (o *CityOptions) applyDefaults() {
	if o.Spacing <= 0 {
		o.Spacing = 0.25
	}
	if o.Perturb < 0 {
		o.Perturb = 0
	} else if o.Perturb == 0 {
		o.Perturb = 0.3
	}
	if o.DiagProb <= 0 {
		o.DiagProb = 0.35
	}
	if o.ExtraFrac <= 0 {
		// Pure spanning-tree mazes produce absurdly windy shortest paths;
		// a modest shortcut fraction keeps edge count ≈ vertex count (the
		// published BRN shape) while restoring road-like distances.
		o.ExtraFrac = 0.06
	}
	if o.WeightLift <= 0 {
		o.WeightLift = 0.15
	}
}

// GenerateCity builds a synthetic road network with the given options.
// The result is always connected (the largest component is kept when
// pruning could disconnect the grid, though the construction below never
// disconnects it).
func GenerateCity(opts CityOptions) (*Graph, error) {
	if opts.Rows < 2 || opts.Cols < 2 {
		return nil, fmt.Errorf("roadnet: city grid needs at least 2x2, got %dx%d", opts.Rows, opts.Cols)
	}
	opts.applyDefaults()
	rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed^0x9e3779b97f4a7c15))

	var b Builder
	rows, cols := opts.Rows, opts.Cols
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			jx := (rng.Float64()*2 - 1) * opts.Perturb * opts.Spacing
			jy := (rng.Float64()*2 - 1) * opts.Perturb * opts.Spacing
			b.AddVertex(geo.Point{
				X: float64(c)*opts.Spacing + jx,
				Y: float64(r)*opts.Spacing + jy,
			})
		}
	}
	weight := func(u, v VertexID) float64 {
		d := b.pts[u].Dist(b.pts[v])
		if d == 0 {
			d = 1e-6 // perturbation collisions are astronomically unlikely but must not yield zero weights
		}
		return d * (1 + rng.Float64()*opts.WeightLift)
	}

	switch opts.Style {
	case StyleDense:
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if c+1 < cols {
					if err := b.AddEdge(id(r, c), id(r, c+1), weight(id(r, c), id(r, c+1))); err != nil {
						return nil, err
					}
				}
				if r+1 < rows {
					if err := b.AddEdge(id(r, c), id(r+1, c), weight(id(r, c), id(r+1, c))); err != nil {
						return nil, err
					}
				}
				if r+1 < rows && c+1 < cols && rng.Float64() < opts.DiagProb {
					if err := b.AddEdge(id(r, c), id(r+1, c+1), weight(id(r, c), id(r+1, c+1))); err != nil {
						return nil, err
					}
				}
				if r+1 < rows && c > 0 && rng.Float64() < opts.DiagProb {
					if err := b.AddEdge(id(r, c), id(r+1, c-1), weight(id(r, c), id(r+1, c-1))); err != nil {
						return nil, err
					}
				}
			}
		}
	case StyleSparse:
		if err := buildMaze(&b, rows, cols, opts, rng, weight); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("roadnet: unknown grid style %d", opts.Style)
	}
	return b.Build()
}

// buildMaze carves a uniform-ish random spanning tree over the grid with an
// iterative randomized DFS, then sprinkles extra grid edges.
func buildMaze(b *Builder, rows, cols int, opts CityOptions, rng *rand.Rand, weight func(u, v VertexID) float64) error {
	id := func(r, c int) VertexID { return VertexID(r*cols + c) }
	visited := make([]bool, rows*cols)
	type cell struct{ r, c int }
	stack := []cell{{rng.IntN(rows), rng.IntN(cols)}}
	visited[int(id(stack[0].r, stack[0].c))] = true
	dirs := [4][2]int{{0, 1}, {0, -1}, {1, 0}, {-1, 0}}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		// Collect unvisited neighbours.
		var opts4 [4]cell
		n := 0
		for _, d := range dirs {
			nr, nc := cur.r+d[0], cur.c+d[1]
			if nr >= 0 && nr < rows && nc >= 0 && nc < cols && !visited[int(id(nr, nc))] {
				opts4[n] = cell{nr, nc}
				n++
			}
		}
		if n == 0 {
			stack = stack[:len(stack)-1]
			continue
		}
		next := opts4[rng.IntN(n)]
		u, v := id(cur.r, cur.c), id(next.r, next.c)
		if err := b.AddEdge(u, v, weight(u, v)); err != nil {
			return err
		}
		visited[int(v)] = true
		stack = append(stack, next)
	}
	// Extra edges: random grid-adjacent pairs not already connected.
	extra := int(opts.ExtraFrac * float64(rows*cols))
	for added, attempts := 0, 0; added < extra && attempts < extra*20; attempts++ {
		r, c := rng.IntN(rows), rng.IntN(cols)
		d := dirs[rng.IntN(4)]
		nr, nc := r+d[0], c+d[1]
		if nr < 0 || nr >= rows || nc < 0 || nc >= cols {
			continue
		}
		u, v := id(r, c), id(nr, nc)
		if b.HasEdge(u, v) {
			continue
		}
		if err := b.AddEdge(u, v, weight(u, v)); err != nil {
			return err
		}
		added++
	}
	return nil
}

// BRNLike generates a sparse, Beijing-Road-Network-shaped city. scale=1
// yields ≈28.4k vertices and ≈29k edges (mean degree ≈2, matching the
// published BRN statistics); smaller scales shrink the vertex count
// quadratically for test- and laptop-sized runs.
func BRNLike(scale float64, seed uint64) *Graph {
	rows := max(2, int(168*scale))
	cols := max(2, int(169*scale))
	g, err := GenerateCity(CityOptions{
		Rows: rows, Cols: cols,
		Style: StyleSparse,
		Seed:  seed,
	})
	if err != nil {
		panic("roadnet: BRNLike generation cannot fail: " + err.Error())
	}
	return g
}

// NRNLike generates a dense, New-York-Road-Network-shaped city. scale=1
// yields ≈96k vertices and ≈260k edges (mean degree ≈5.4, matching the
// published NRN statistics).
func NRNLike(scale float64, seed uint64) *Graph {
	rows := max(2, int(310*scale))
	cols := max(2, int(310*scale))
	g, err := GenerateCity(CityOptions{
		Rows: rows, Cols: cols,
		Style:    StyleDense,
		DiagProb: 0.36,
		Seed:     seed,
	})
	if err != nil {
		panic("roadnet: NRNLike generation cannot fail: " + err.Error())
	}
	return g
}
