package roadnet

import (
	"math"

	"uots/internal/pqueue"
)

// Unreachable is the distance reported for vertices that cannot be reached
// from the source.
var Unreachable = math.Inf(1)

// SSSP is a reusable single-source shortest-path workspace for one graph.
// It amortizes the O(n) allocations across runs: Reset between runs costs
// time proportional to the vertices touched by the previous run, not to
// the graph size.
//
// An SSSP is not safe for concurrent use; allocate one per goroutine.
type SSSP struct {
	g       *Graph
	dist    []float64
	parent  []int32
	settled []bool
	touched []int32
	heap    *pqueue.Indexed
}

// NewSSSP returns a workspace for shortest-path runs on g.
func NewSSSP(g *Graph) *SSSP {
	n := g.NumVertices()
	s := &SSSP{
		g:       g,
		dist:    make([]float64, n),
		parent:  make([]int32, n),
		settled: make([]bool, n),
		heap:    pqueue.NewIndexed(n),
	}
	for i := range s.dist {
		s.dist[i] = Unreachable
		s.parent[i] = -1
	}
	return s
}

// Graph returns the graph this workspace operates on.
func (s *SSSP) Graph() *Graph { return s.g }

func (s *SSSP) reset() {
	for _, v := range s.touched {
		s.dist[v] = Unreachable
		s.parent[v] = -1
		s.settled[v] = false
	}
	s.touched = s.touched[:0]
	s.heap.Reset()
}

func (s *SSSP) relax(v int32, d float64, parent int32) {
	if d < s.dist[v] {
		if s.dist[v] == Unreachable {
			s.touched = append(s.touched, v)
		}
		s.dist[v] = d
		s.parent[v] = parent
		s.heap.Push(v, d)
	}
}

// Run computes shortest-path distances from src to every reachable vertex.
// Afterwards Dist and PathTo report the results until the next Run.
func (s *SSSP) Run(src VertexID) {
	s.RunUntil(src, nil)
}

// RunUntil runs Dijkstra from src, invoking visit for every settled vertex
// in non-decreasing distance order. If visit returns false the search stops
// early; distances of vertices settled so far remain valid, and every other
// vertex reports a distance of at least the last settled distance.
// A nil visit runs to completion.
func (s *SSSP) RunUntil(src VertexID, visit func(v VertexID, d float64) bool) {
	s.reset()
	s.relax(int32(src), 0, -1)
	//uots:allow looppoll -- the visit callback is the cancellation point; core's search loops poll their canceller inside it
	for {
		v, d, ok := s.heap.Pop()
		if !ok {
			return
		}
		s.settled[v] = true
		if visit != nil && !visit(VertexID(v), d) {
			return
		}
		to, w := s.g.Neighbors(VertexID(v))
		for i, t := range to {
			if !s.settled[t] {
				s.relax(t, d+w[i], v)
			}
		}
	}
}

// Dist returns the distance to v computed by the last run
// (Unreachable if v was not reached or the run stopped before settling v
// without relaxing it).
func (s *SSSP) Dist(v VertexID) float64 { return s.dist[v] }

// Settled reports whether v's distance was finalized by the last run.
func (s *SSSP) Settled(v VertexID) bool { return s.settled[v] }

// PathTo reconstructs the shortest path from the last run's source to v as
// a vertex sequence (source first). It returns nil if v was not settled.
func (s *SSSP) PathTo(v VertexID) []VertexID {
	if !s.settled[v] {
		return nil
	}
	var rev []VertexID
	for u := int32(v); u != -1; u = s.parent[u] {
		rev = append(rev, VertexID(u))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// DistToSet runs Dijkstra from src until the first vertex of targets is
// settled and returns that vertex and its distance. Membership is tested
// with the targets predicate. If no target is reachable it returns
// (-1, Unreachable). This is the primitive behind "network distance from a
// query location to the nearest sample of a trajectory".
func (s *SSSP) DistToSet(src VertexID, targets func(VertexID) bool) (VertexID, float64) {
	found := VertexID(-1)
	dist := Unreachable
	s.RunUntil(src, func(v VertexID, d float64) bool {
		if targets(v) {
			found, dist = v, d
			return false
		}
		return true
	})
	return found, dist
}

// ShortestPath returns a shortest path between u and v and its length,
// using the bidirectional Dijkstra in bidir.go. ok is false when v is not
// reachable from u.
func ShortestPath(g *Graph, u, v VertexID) (path []VertexID, dist float64, ok bool) {
	b := NewBidirectional(g)
	return b.Path(u, v)
}
