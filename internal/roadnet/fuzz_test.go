package roadnet

import (
	"bytes"
	"testing"
)

// FuzzReadGraph asserts the binary graph reader never panics on arbitrary
// input: it must either parse a valid graph or return an error.
func FuzzReadGraph(f *testing.F) {
	// Seed with a real serialized graph plus structured corruptions.
	g := randomConnected(12, 8, 1)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(graphMagic))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[len(graphMagic)+2] = 0xFF // corrupt the vertex count
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadGraph(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A successfully parsed graph must be structurally sound.
		if got.NumVertices() == 0 {
			t.Fatal("parsed graph has no vertices")
		}
		for v := 0; v < got.NumVertices(); v++ {
			to, w := got.Neighbors(VertexID(v))
			for i, tt := range to {
				if int(tt) >= got.NumVertices() || tt < 0 {
					t.Fatalf("edge to out-of-range vertex %d", tt)
				}
				if !(w[i] > 0) {
					t.Fatalf("non-positive edge weight %g", w[i])
				}
			}
		}
	})
}
