package roadnet

import "uots/internal/pqueue"

// AStar is a reusable A* workspace for point-to-point queries, using the
// Euclidean distance to the target (scaled by the graph's HeuristicScale so
// it stays admissible even when edge weights undercut straight-line
// lengths) as the lower-bounding heuristic.
//
// An AStar is not safe for concurrent use.
type AStar struct {
	g       *Graph
	dist    []float64 // g-cost
	parent  []int32
	settled []bool
	touched []int32
	heap    *pqueue.Indexed
}

// NewAStar returns a workspace for A* queries on g.
func NewAStar(g *Graph) *AStar {
	n := g.NumVertices()
	a := &AStar{
		g:       g,
		dist:    make([]float64, n),
		parent:  make([]int32, n),
		settled: make([]bool, n),
		heap:    pqueue.NewIndexed(n),
	}
	for i := range a.dist {
		a.dist[i] = Unreachable
		a.parent[i] = -1
	}
	return a
}

func (a *AStar) reset() {
	for _, v := range a.touched {
		a.dist[v] = Unreachable
		a.parent[v] = -1
		a.settled[v] = false
	}
	a.touched = a.touched[:0]
	a.heap.Reset()
}

// Dist returns the shortest-path distance from u to v. ok is false when v
// is unreachable from u.
func (a *AStar) Dist(u, v VertexID) (float64, bool) {
	d, _ := a.run(u, v, false)
	return d, d != Unreachable
}

// Path returns a shortest path from u to v (u first) and its length.
// ok is false when v is unreachable from u.
func (a *AStar) Path(u, v VertexID) (path []VertexID, dist float64, ok bool) {
	dist, _ = a.run(u, v, true)
	if dist == Unreachable {
		return nil, Unreachable, false
	}
	var rev []VertexID
	for x := int32(v); x != -1; x = a.parent[x] {
		rev = append(rev, VertexID(x))
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, dist, true
}

func (a *AStar) run(u, v VertexID, needPath bool) (float64, int) {
	_ = needPath // parents are always recorded; the flag documents intent
	a.reset()
	scale := a.g.HeuristicScale()
	target := a.g.Point(v)
	h := func(x int32) float64 { return a.g.pts[x].Dist(target) * scale }

	a.dist[u] = 0
	a.touched = append(a.touched, int32(u))
	a.heap.Push(int32(u), h(int32(u)))
	settledCount := 0
	//uots:allow looppoll -- single point-to-point A*: bounded by one component's vertices, callers poll between calls
	for {
		x, _, ok := a.heap.Pop()
		if !ok {
			return Unreachable, settledCount
		}
		if a.settled[x] {
			continue
		}
		a.settled[x] = true
		settledCount++
		if VertexID(x) == v {
			return a.dist[x], settledCount
		}
		d := a.dist[x]
		to, w := a.g.Neighbors(VertexID(x))
		for i, t := range to {
			if a.settled[t] {
				continue
			}
			nd := d + w[i]
			if nd < a.dist[t] {
				if a.dist[t] == Unreachable {
					a.touched = append(a.touched, t)
				}
				a.dist[t] = nd
				a.parent[t] = x
				a.heap.Push(t, nd+h(t))
			}
		}
	}
}
