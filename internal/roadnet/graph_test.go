package roadnet

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"uots/internal/geo"
)

// line builds the path graph 0-1-2-...-(n-1) with unit weights.
func line(t *testing.T, n int) *Graph {
	t.Helper()
	var b Builder
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{X: float64(i), Y: 0})
	}
	for i := 0; i < n-1; i++ {
		if err := b.AddEdge(VertexID(i), VertexID(i+1), 1); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// randomConnected builds a connected random graph: a random spanning tree
// plus extra random edges, with weights ≥ Euclidean length.
func randomConnected(n, extra int, seed uint64) *Graph {
	rng := rand.New(rand.NewPCG(seed, seed+1))
	var b Builder
	for i := 0; i < n; i++ {
		b.AddVertex(geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10})
	}
	for i := 1; i < n; i++ {
		j := VertexID(rng.IntN(i))
		w := b.pts[i].Dist(b.pts[j]) * (1 + rng.Float64())
		if w == 0 {
			w = 0.001
		}
		if err := b.AddEdge(VertexID(i), j, w); err != nil {
			panic(err)
		}
	}
	for e := 0; e < extra; e++ {
		u, v := VertexID(rng.IntN(n)), VertexID(rng.IntN(n))
		if u == v || b.HasEdge(u, v) {
			continue
		}
		w := b.pts[u].Dist(b.pts[v]) * (1 + rng.Float64())
		if w == 0 {
			w = 0.001
		}
		if err := b.AddEdge(u, v, w); err != nil {
			panic(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestBuilderValidation(t *testing.T) {
	var b Builder
	a := b.AddVertex(geo.Point{})
	c := b.AddVertex(geo.Point{X: 1})
	if err := b.AddEdge(a, a, 1); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: %v", err)
	}
	if err := b.AddEdge(a, 5, 1); !errors.Is(err, ErrBadVertex) {
		t.Errorf("bad vertex: %v", err)
	}
	if err := b.AddEdge(a, c, 0); !errors.Is(err, ErrBadWeight) {
		t.Errorf("zero weight: %v", err)
	}
	if err := b.AddEdge(a, c, -2); !errors.Is(err, ErrBadWeight) {
		t.Errorf("negative weight: %v", err)
	}
	if err := b.AddEdge(a, c, 1); err != nil {
		t.Fatalf("valid edge: %v", err)
	}
	if err := b.AddEdge(c, a, 2); !errors.Is(err, ErrDuplicateEdge) {
		t.Errorf("duplicate edge (reversed): %v", err)
	}
	var empty Builder
	if _, err := empty.Build(); !errors.Is(err, ErrEmptyGraph) {
		t.Errorf("empty build: %v", err)
	}
}

func TestGraphAccessors(t *testing.T) {
	g := line(t, 4)
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Fatalf("shape = %d vertices, %d edges", g.NumVertices(), g.NumEdges())
	}
	if g.Degree(0) != 1 || g.Degree(1) != 2 {
		t.Errorf("degrees: %d, %d", g.Degree(0), g.Degree(1))
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || w != 1 {
		t.Errorf("EdgeWeight(1,2) = (%g, %v)", w, ok)
	}
	if _, ok := g.EdgeWeight(0, 3); ok {
		t.Error("EdgeWeight(0,3) should not exist")
	}
	to, w := g.Neighbors(1)
	if len(to) != 2 || len(w) != 2 {
		t.Fatalf("Neighbors(1) sizes %d, %d", len(to), len(w))
	}
	if g.TotalEdgeLength() != 3 {
		t.Errorf("TotalEdgeLength = %g", g.TotalEdgeLength())
	}
	b := g.Bounds()
	if b.Min != (geo.Point{X: 0, Y: 0}) || b.Max != (geo.Point{X: 3, Y: 0}) {
		t.Errorf("Bounds = %v..%v", b.Min, b.Max)
	}
}

func TestConnectedComponents(t *testing.T) {
	var b Builder
	for i := 0; i < 6; i++ {
		b.AddVertex(geo.Point{X: float64(i)})
	}
	mustEdge := func(u, v VertexID) {
		if err := b.AddEdge(u, v, 1); err != nil {
			t.Fatal(err)
		}
	}
	mustEdge(0, 1)
	mustEdge(1, 2)
	mustEdge(3, 4)
	// 5 isolated
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	labels, count := g.ConnectedComponents()
	if count != 3 {
		t.Fatalf("component count = %d", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Error("0,1,2 should share a component")
	}
	if labels[3] != labels[4] || labels[3] == labels[0] {
		t.Error("3,4 should share a different component")
	}
	if labels[5] == labels[0] || labels[5] == labels[3] {
		t.Error("5 should be isolated")
	}
	if g.IsConnected() {
		t.Error("graph should not be connected")
	}
	lc := g.LargestComponent()
	if len(lc) != 3 || lc[0] != 0 || lc[1] != 1 || lc[2] != 2 {
		t.Errorf("LargestComponent = %v", lc)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := randomConnected(30, 20, 1)
	keep := g.LargestComponent() // whole graph, but exercises the path
	sub, mapping, err := g.InducedSubgraph(keep[:10])
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != 10 || len(mapping) != 10 {
		t.Fatalf("subgraph has %d vertices", sub.NumVertices())
	}
	// Every subgraph edge must exist in the original with the same weight.
	for v := 0; v < sub.NumVertices(); v++ {
		to, w := sub.Neighbors(VertexID(v))
		for i, tt := range to {
			ow, ok := g.EdgeWeight(mapping[v], mapping[tt])
			if !ok || ow != w[i] {
				t.Fatalf("subgraph edge {%d,%d} missing or wrong weight", v, tt)
			}
		}
	}
	if _, _, err := g.InducedSubgraph([]VertexID{0, 0}); err == nil {
		t.Error("duplicate vertices should error")
	}
	if _, _, err := g.InducedSubgraph([]VertexID{-1}); err == nil {
		t.Error("negative vertex should error")
	}
}

func TestGenerateCityShapes(t *testing.T) {
	sparse, err := GenerateCity(CityOptions{Rows: 20, Cols: 20, Style: StyleSparse, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !sparse.IsConnected() {
		t.Error("sparse city must be connected")
	}
	n := sparse.NumVertices()
	if n != 400 {
		t.Fatalf("sparse city has %d vertices", n)
	}
	if e := sparse.NumEdges(); e < n-1 || e > n+n/5 {
		t.Errorf("sparse city has %d edges for %d vertices (want ≈ n)", e, n)
	}

	dense, err := GenerateCity(CityOptions{Rows: 20, Cols: 20, Style: StyleDense, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !dense.IsConnected() {
		t.Error("dense city must be connected")
	}
	if deg := 2 * float64(dense.NumEdges()) / float64(dense.NumVertices()); deg < 4 || deg > 7 {
		t.Errorf("dense city mean degree %g, want ≈ 5", deg)
	}
	if _, err := GenerateCity(CityOptions{Rows: 1, Cols: 5}); err == nil {
		t.Error("too-small grid should error")
	}
}

func TestGenerateCityDeterministic(t *testing.T) {
	a := BRNLike(0.05, 9)
	b := BRNLike(0.05, 9)
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different shapes")
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.Point(VertexID(v)) != b.Point(VertexID(v)) {
			t.Fatal("same seed produced different coordinates")
		}
	}
	c := BRNLike(0.05, 10)
	same := true
	for v := 0; v < a.NumVertices() && v < c.NumVertices(); v++ {
		if a.Point(VertexID(v)) != c.Point(VertexID(v)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical coordinates")
	}
}

func TestCityWeightsAdmissible(t *testing.T) {
	g := NRNLike(0.05, 3)
	// Generated weights are euclidean × lift ≥ euclidean, so the A*
	// heuristic scale must be 1.
	if g.HeuristicScale() != 1 {
		t.Errorf("HeuristicScale = %g, want 1", g.HeuristicScale())
	}
	for v := 0; v < g.NumVertices(); v++ {
		to, w := g.Neighbors(VertexID(v))
		for i, tt := range to {
			d := g.Point(VertexID(v)).Dist(g.Point(VertexID(tt)))
			if w[i] < d-1e-12 {
				t.Fatalf("edge {%d,%d} weight %g below euclidean %g", v, tt, w[i], d)
			}
		}
	}
}

func TestGraphIORoundTrip(t *testing.T) {
	g := randomConnected(50, 40, 7)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip shape: %d/%d vs %d/%d",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got.Point(VertexID(v)) != g.Point(VertexID(v)) {
			t.Fatalf("vertex %d moved", v)
		}
		to, w := g.Neighbors(VertexID(v))
		for i, tt := range to {
			gw, ok := got.EdgeWeight(VertexID(v), VertexID(tt))
			if !ok || gw != w[i] {
				t.Fatalf("edge {%d,%d} lost or changed", v, tt)
			}
		}
	}
}

func TestReadGraphRejectsGarbage(t *testing.T) {
	if _, err := ReadGraph(bytes.NewReader([]byte("not a graph at all"))); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadGraph(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
	// Correct magic, truncated body.
	if _, err := ReadGraph(bytes.NewReader([]byte(graphMagic))); err == nil {
		t.Error("truncated header should fail")
	}
}
