package roadnet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"uots/internal/geo"
)

// graphMagic identifies the binary graph format, version 1.
const graphMagic = "UOTSGRF1"

// WriteGraph serializes g to w in a compact little-endian binary format:
// magic, vertex count, edge count, vertex coordinates, then each undirected
// edge once (smaller endpoint first).
func WriteGraph(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(graphMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.NumVertices()))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(g.NumEdges()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		p := g.Point(VertexID(v))
		if err := writeFloat64(bw, p.X); err != nil {
			return err
		}
		if err := writeFloat64(bw, p.Y); err != nil {
			return err
		}
	}
	written := 0
	for v := 0; v < g.NumVertices(); v++ {
		to, wts := g.Neighbors(VertexID(v))
		for i, t := range to {
			if int32(v) >= t {
				continue
			}
			var rec [8]byte
			binary.LittleEndian.PutUint32(rec[0:4], uint32(v))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(t))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
			if err := writeFloat64(bw, wts[i]); err != nil {
				return err
			}
			written++
		}
	}
	if written != g.NumEdges() {
		return fmt.Errorf("roadnet: wrote %d edges, graph reports %d", written, g.NumEdges())
	}
	return bw.Flush()
}

// ReadGraph deserializes a graph written by WriteGraph.
func ReadGraph(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(graphMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("roadnet: reading magic: %w", err)
	}
	if string(magic) != graphMagic {
		return nil, fmt.Errorf("roadnet: bad magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("roadnet: reading header: %w", err)
	}
	nv := binary.LittleEndian.Uint64(hdr[0:8])
	ne := binary.LittleEndian.Uint64(hdr[8:16])
	const maxReasonable = 1 << 31
	if nv == 0 || nv > maxReasonable || ne > maxReasonable {
		return nil, fmt.Errorf("roadnet: implausible graph header (%d vertices, %d edges)", nv, ne)
	}
	var b Builder
	for i := uint64(0); i < nv; i++ {
		x, err := readFloat64(br)
		if err != nil {
			return nil, fmt.Errorf("roadnet: reading vertex %d: %w", i, err)
		}
		y, err := readFloat64(br)
		if err != nil {
			return nil, fmt.Errorf("roadnet: reading vertex %d: %w", i, err)
		}
		b.AddVertex(geo.Point{X: x, Y: y})
	}
	for i := uint64(0); i < ne; i++ {
		var rec [8]byte
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("roadnet: reading edge %d: %w", i, err)
		}
		u := VertexID(binary.LittleEndian.Uint32(rec[0:4]))
		v := VertexID(binary.LittleEndian.Uint32(rec[4:8]))
		w, err := readFloat64(br)
		if err != nil {
			return nil, fmt.Errorf("roadnet: reading edge %d weight: %w", i, err)
		}
		if err := b.AddEdge(u, v, w); err != nil {
			return nil, fmt.Errorf("roadnet: edge %d: %w", i, err)
		}
	}
	return b.Build()
}

func writeFloat64(w io.Writer, f float64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
	_, err := w.Write(buf[:])
	return err
}

func readFloat64(r io.Reader) (float64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
}
