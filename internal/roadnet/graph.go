// Package roadnet implements the spatial-network substrate: a connected,
// undirected, weighted graph modelling a road network, together with the
// shortest-path machinery the trajectory search engine is built on —
// single-source Dijkstra, early-terminating multi-target search,
// bidirectional point-to-point queries, A*, ALT landmark lower bounds, and
// the incremental network Expander that drives the UOTS expansion search.
//
// Vertices model road intersections (or ends of roads) and carry planar
// coordinates in kilometres; edge weights are road-segment lengths in
// kilometres. Trajectory sample points are assumed to be map matched onto
// vertices (package mapmatch provides the matching step for raw GPS input).
package roadnet

import (
	"errors"
	"fmt"
	"math"

	"uots/internal/geo"
)

// VertexID identifies a vertex of a Graph. IDs are dense: a graph with n
// vertices uses IDs 0..n-1.
type VertexID int32

// Graph is an immutable undirected weighted graph in compressed
// sparse-row form. Build one with a Builder, a generator from gen.go, or
// ReadGraph.
type Graph struct {
	pts      []geo.Point
	adjStart []int32 // len = n+1; adjacency of v is adj{To,W}[adjStart[v]:adjStart[v+1]]
	adjTo    []int32
	adjW     []float64
	numEdges int     // undirected edge count (len(adjTo)/2)
	hScale   float64 // admissible A* heuristic scale: min over edges of W/geoDist, capped at 1
	bounds   geo.Rect
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return len(g.pts) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.numEdges }

// Point returns the planar coordinates of v.
func (g *Graph) Point(v VertexID) geo.Point { return g.pts[v] }

// Bounds returns the bounding rectangle of all vertex coordinates.
func (g *Graph) Bounds() geo.Rect { return g.bounds }

// Degree returns the number of edges incident to v.
func (g *Graph) Degree(v VertexID) int {
	return int(g.adjStart[v+1] - g.adjStart[v])
}

// Neighbors returns the adjacency of v as parallel slices of neighbour IDs
// and edge weights. The returned slices alias the graph's internal storage
// and must not be modified.
func (g *Graph) Neighbors(v VertexID) (to []int32, w []float64) {
	lo, hi := g.adjStart[v], g.adjStart[v+1]
	return g.adjTo[lo:hi], g.adjW[lo:hi]
}

// EdgeWeight returns the weight of edge {u, v} and whether the edge exists.
func (g *Graph) EdgeWeight(u, v VertexID) (float64, bool) {
	to, w := g.Neighbors(u)
	for i, t := range to {
		if VertexID(t) == v {
			return w[i], true
		}
	}
	return 0, false
}

// HeuristicScale returns the factor by which Euclidean distances must be
// scaled to stay admissible as A* lower bounds on this graph
// (min over edges of weight/Euclidean-length, capped at 1).
func (g *Graph) HeuristicScale() float64 { return g.hScale }

// TotalEdgeLength returns the sum of all undirected edge weights.
func (g *Graph) TotalEdgeLength() float64 {
	var sum float64
	for _, w := range g.adjW {
		sum += w
	}
	return sum / 2
}

// Builder assembles a Graph incrementally. The zero value is ready to use.
type Builder struct {
	pts   []geo.Point
	adj   [][]halfEdge
	edges int
}

type halfEdge struct {
	to int32
	w  float64
}

// NumVertices returns the number of vertices added so far.
func (b *Builder) NumVertices() int { return len(b.pts) }

// AddVertex adds a vertex at p and returns its ID.
func (b *Builder) AddVertex(p geo.Point) VertexID {
	b.pts = append(b.pts, p)
	b.adj = append(b.adj, nil)
	return VertexID(len(b.pts) - 1)
}

// Errors returned by Builder.AddEdge and Builder.Build.
var (
	ErrBadVertex     = errors.New("roadnet: vertex id out of range")
	ErrSelfLoop      = errors.New("roadnet: self loops are not allowed")
	ErrBadWeight     = errors.New("roadnet: edge weight must be positive and finite")
	ErrDuplicateEdge = errors.New("roadnet: duplicate edge")
	ErrEmptyGraph    = errors.New("roadnet: graph has no vertices")
)

// AddEdge adds the undirected edge {u, v} with weight w (kilometres).
func (b *Builder) AddEdge(u, v VertexID, w float64) error {
	n := VertexID(len(b.pts))
	if u < 0 || u >= n || v < 0 || v >= n {
		return fmt.Errorf("%w: {%d, %d} with %d vertices", ErrBadVertex, u, v, n)
	}
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	if !(w > 0) || math.IsInf(w, 1) {
		return fmt.Errorf("%w: got %g", ErrBadWeight, w)
	}
	for _, he := range b.adj[u] {
		if he.to == int32(v) {
			return fmt.Errorf("%w: {%d, %d}", ErrDuplicateEdge, u, v)
		}
	}
	b.adj[u] = append(b.adj[u], halfEdge{int32(v), w})
	b.adj[v] = append(b.adj[v], halfEdge{int32(u), w})
	b.edges++
	return nil
}

// HasEdge reports whether the undirected edge {u, v} has been added.
func (b *Builder) HasEdge(u, v VertexID) bool {
	if u < 0 || int(u) >= len(b.adj) || v < 0 || int(v) >= len(b.adj) {
		return false
	}
	for _, he := range b.adj[u] {
		if he.to == int32(v) {
			return true
		}
	}
	return false
}

// Build freezes the builder into an immutable Graph. The builder can keep
// being used afterwards; the Graph does not alias its storage.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.pts)
	if n == 0 {
		return nil, ErrEmptyGraph
	}
	g := &Graph{
		pts:      append([]geo.Point(nil), b.pts...),
		adjStart: make([]int32, n+1),
		adjTo:    make([]int32, 0, 2*b.edges),
		adjW:     make([]float64, 0, 2*b.edges),
		numEdges: b.edges,
		hScale:   1,
	}
	bounds := geo.EmptyRect()
	for v := 0; v < n; v++ {
		g.adjStart[v] = int32(len(g.adjTo))
		for _, he := range b.adj[v] {
			g.adjTo = append(g.adjTo, he.to)
			g.adjW = append(g.adjW, he.w)
			if d := b.pts[v].Dist(b.pts[he.to]); d > 0 {
				if r := he.w / d; r < g.hScale {
					g.hScale = r
				}
			}
		}
		bounds = bounds.ExtendPoint(b.pts[v])
	}
	g.adjStart[n] = int32(len(g.adjTo))
	g.bounds = bounds
	return g, nil
}

// ConnectedComponents labels every vertex with a component number in
// [0, count) and returns the labels and the component count. Labels are
// assigned in order of first discovery (vertex 0 is always in component 0).
func (g *Graph) ConnectedComponents() (labels []int32, count int) {
	n := g.NumVertices()
	labels = make([]int32, n)
	for i := range labels {
		labels[i] = -1
	}
	var stack []int32
	for start := 0; start < n; start++ {
		if labels[start] != -1 {
			continue
		}
		labels[start] = int32(count)
		stack = append(stack[:0], int32(start))
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			to, _ := g.Neighbors(VertexID(v))
			for _, t := range to {
				if labels[t] == -1 {
					labels[t] = int32(count)
					stack = append(stack, t)
				}
			}
		}
		count++
	}
	return labels, count
}

// IsConnected reports whether the graph is a single connected component.
func (g *Graph) IsConnected() bool {
	_, count := g.ConnectedComponents()
	return count == 1
}

// LargestComponent returns the vertex IDs of the largest connected
// component, in increasing order.
func (g *Graph) LargestComponent() []VertexID {
	labels, count := g.ConnectedComponents()
	sizes := make([]int, count)
	for _, l := range labels {
		sizes[l]++
	}
	best := 0
	for c := 1; c < count; c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	out := make([]VertexID, 0, sizes[best])
	for v, l := range labels {
		if int(l) == best {
			out = append(out, VertexID(v))
		}
	}
	return out
}

// InducedSubgraph returns the subgraph induced by keep (which must contain
// valid, distinct vertex IDs) plus the mapping from new IDs to old IDs.
// Vertex i of the result corresponds to keep[i].
func (g *Graph) InducedSubgraph(keep []VertexID) (*Graph, []VertexID, error) {
	newID := make(map[VertexID]VertexID, len(keep))
	var b Builder
	for i, v := range keep {
		if v < 0 || int(v) >= g.NumVertices() {
			return nil, nil, fmt.Errorf("%w: %d", ErrBadVertex, v)
		}
		if _, dup := newID[v]; dup {
			return nil, nil, fmt.Errorf("roadnet: duplicate vertex %d in InducedSubgraph", v)
		}
		newID[v] = VertexID(i)
		b.AddVertex(g.Point(v))
	}
	for _, v := range keep {
		to, w := g.Neighbors(v)
		for i, t := range to {
			u, ok := newID[VertexID(t)]
			if !ok || newID[v] > u { // add each undirected edge once
				continue
			}
			if err := b.AddEdge(newID[v], u, w[i]); err != nil {
				return nil, nil, err
			}
		}
	}
	sub, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return sub, append([]VertexID(nil), keep...), nil
}
