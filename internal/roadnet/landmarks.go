package roadnet

import "math"

// Landmarks implements ALT (A*, Landmarks, Triangle inequality) distance
// lower bounds: a small set of well-spread landmark vertices with
// precomputed shortest-path distances to every vertex. For any u, v and
// landmark l, |d(l,u) − d(l,v)| ≤ d(u,v), so the max over landmarks is an
// inexpensive network-distance lower bound. The search engine's baselines
// use it to skip hopeless exact-distance computations.
//
// A Landmarks value is immutable after construction and safe for
// concurrent use.
type Landmarks struct {
	ids  []VertexID
	dist [][]float64 // dist[i][v] = d(ids[i], v)
}

// NewLandmarks selects count landmarks by farthest-point sampling (the
// first landmark is the vertex farthest from seed, each next one maximizes
// the distance to the already-chosen set) and precomputes their distance
// fields. count is clamped to the number of vertices.
func NewLandmarks(g *Graph, count int, seed VertexID) *Landmarks {
	if count > g.NumVertices() {
		count = g.NumVertices()
	}
	l := &Landmarks{}
	if count <= 0 {
		return l
	}
	s := NewSSSP(g)

	// minDist[v] = distance from v to the nearest chosen landmark.
	minDist := make([]float64, g.NumVertices())
	for i := range minDist {
		minDist[i] = math.Inf(1)
	}

	// First landmark: the reachable vertex farthest from the seed.
	s.Run(seed)
	next := seed
	bestD := -1.0
	for v := 0; v < g.NumVertices(); v++ {
		if d := s.Dist(VertexID(v)); d != Unreachable && d > bestD {
			bestD = d
			next = VertexID(v)
		}
	}
	for len(l.ids) < count {
		s.Run(next)
		field := make([]float64, g.NumVertices())
		for v := range field {
			field[v] = s.Dist(VertexID(v))
		}
		l.ids = append(l.ids, next)
		l.dist = append(l.dist, field)

		bestD = -1.0
		cand := VertexID(-1)
		for v := 0; v < g.NumVertices(); v++ {
			if field[v] != Unreachable && field[v] < minDist[v] {
				minDist[v] = field[v]
			}
			if minDist[v] != math.Inf(1) && minDist[v] > bestD {
				bestD = minDist[v]
				cand = VertexID(v)
			}
		}
		if cand < 0 || bestD == 0 {
			break // graph smaller than requested landmark count
		}
		next = cand
	}
	return l
}

// Count returns the number of landmarks.
func (l *Landmarks) Count() int { return len(l.ids) }

// Dist returns the precomputed shortest-path distance from landmark i to
// vertex v (Unreachable when v lies in another component). It exposes
// the raw distance field so derived structures — per-trajectory interval
// bounds in internal/index — can aggregate it without re-running SSSP.
func (l *Landmarks) Dist(i int, v VertexID) float64 { return l.dist[i][v] }

// IDs returns the landmark vertex IDs. The slice must not be modified.
func (l *Landmarks) IDs() []VertexID { return l.ids }

// LowerBound returns a lower bound on the network distance d(u, v).
// With no landmarks it returns 0 (the trivial bound).
func (l *Landmarks) LowerBound(u, v VertexID) float64 {
	var lb float64
	for i := range l.dist {
		du, dv := l.dist[i][u], l.dist[i][v]
		if du == Unreachable || dv == Unreachable {
			// Different components from this landmark's perspective give
			// no finite information; skip.
			continue
		}
		if d := math.Abs(du - dv); d > lb {
			lb = d
		}
	}
	return lb
}

// LowerBoundToSet returns a lower bound on min over t in targets of d(u,t).
func (l *Landmarks) LowerBoundToSet(u VertexID, targets []VertexID) float64 {
	if len(targets) == 0 {
		return math.Inf(1)
	}
	lb := math.Inf(1)
	for _, t := range targets {
		if b := l.LowerBound(u, t); b < lb {
			lb = b
		}
	}
	return lb
}
