package roadnet

import "uots/internal/pqueue"

// Bidirectional is a reusable bidirectional-Dijkstra workspace for
// point-to-point shortest-path queries. On road-like graphs it settles
// roughly half the vertices a unidirectional search would, which matters
// for the trajectory generator (millions of routing calls) and the
// TextFirst baseline.
//
// A Bidirectional is not safe for concurrent use.
type Bidirectional struct {
	g *Graph
	f side // forward, from the source
	b side // backward, from the target (graph is undirected)
}

type side struct {
	dist    []float64
	parent  []int32
	settled []bool
	touched []int32
	heap    *pqueue.Indexed
}

func newSide(n int) side {
	s := side{
		dist:    make([]float64, n),
		parent:  make([]int32, n),
		settled: make([]bool, n),
		heap:    pqueue.NewIndexed(n),
	}
	for i := range s.dist {
		s.dist[i] = Unreachable
		s.parent[i] = -1
	}
	return s
}

func (s *side) reset() {
	for _, v := range s.touched {
		s.dist[v] = Unreachable
		s.parent[v] = -1
		s.settled[v] = false
	}
	s.touched = s.touched[:0]
	s.heap.Reset()
}

func (s *side) relax(v int32, d float64, parent int32) {
	if d < s.dist[v] {
		if s.dist[v] == Unreachable {
			s.touched = append(s.touched, v)
		}
		s.dist[v] = d
		s.parent[v] = parent
		s.heap.Push(v, d)
	}
}

// NewBidirectional returns a workspace for point-to-point queries on g.
func NewBidirectional(g *Graph) *Bidirectional {
	n := g.NumVertices()
	return &Bidirectional{g: g, f: newSide(n), b: newSide(n)}
}

// Dist returns the shortest-path distance from u to v. ok is false when v
// is unreachable from u.
func (b *Bidirectional) Dist(u, v VertexID) (float64, bool) {
	d, _ := b.run(u, v)
	return d, d != Unreachable
}

// Path returns a shortest path from u to v (u first) and its length.
// ok is false when v is unreachable from u.
func (b *Bidirectional) Path(u, v VertexID) (path []VertexID, dist float64, ok bool) {
	dist, meet := b.run(u, v)
	if dist == Unreachable {
		return nil, Unreachable, false
	}
	// Forward half: meet back to u, reversed into u..meet order.
	var fwd []VertexID
	for x := meet; x != -1; x = b.f.parent[x] {
		fwd = append(fwd, VertexID(x))
	}
	for i, j := 0, len(fwd)-1; i < j; i, j = i+1, j-1 {
		fwd[i], fwd[j] = fwd[j], fwd[i]
	}
	// Backward half: the vertex after meet toward v.
	for x := b.b.parent[meet]; x != -1; x = b.b.parent[x] {
		fwd = append(fwd, VertexID(x))
	}
	return fwd, dist, true
}

// run executes the bidirectional search and returns the best distance and
// the vertex where the two search frontiers met (-1 if unreachable).
func (b *Bidirectional) run(u, v VertexID) (float64, int32) {
	b.f.reset()
	b.b.reset()
	if u == v {
		b.f.relax(int32(u), 0, -1)
		b.b.relax(int32(v), 0, -1)
		return 0, int32(u)
	}
	b.f.relax(int32(u), 0, -1)
	b.b.relax(int32(v), 0, -1)
	best := Unreachable
	meet := int32(-1)
	//uots:allow looppoll -- single point-to-point bidirectional query: bounded by one component's vertices, callers poll between calls
	for b.f.heap.Len() > 0 || b.b.heap.Len() > 0 {
		// Termination: once the sum of the two frontier minima reaches the
		// best connecting distance found, no better connection exists.
		fTop, bTop := Unreachable, Unreachable
		if _, p, ok := b.f.heap.Peek(); ok {
			fTop = p
		}
		if _, p, ok := b.b.heap.Peek(); ok {
			bTop = p
		}
		if fTop+bTop >= best {
			break
		}
		// Expand the side with the smaller frontier minimum.
		this, other := &b.f, &b.b
		if bTop < fTop {
			this, other = &b.b, &b.f
		}
		x, d, _ := this.heap.Pop()
		this.settled[x] = true
		to, w := b.g.Neighbors(VertexID(x))
		for i, t := range to {
			if this.settled[t] {
				continue
			}
			nd := d + w[i]
			this.relax(t, nd, x)
			if od := other.dist[t]; od != Unreachable {
				if cand := nd + od; cand < best {
					best = cand
					meet = t
				}
			}
		}
	}
	return best, meet
}
