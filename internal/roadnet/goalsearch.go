package roadnet

import (
	"math"

	"uots/internal/geo"
	"uots/internal/pqueue"
)

// GoalSearch is a reusable A* workspace for "distance to the nearest
// member of a vertex set" queries where the set is spatially summarized by
// a bounding rectangle: the heuristic is the scaled planar distance to the
// rectangle, which lower-bounds the network distance to every member. It
// explores a corridor toward the set instead of a full Dijkstra circle —
// the access path behind the search engine's text-probe random accesses.
//
// A GoalSearch is not safe for concurrent use.
type GoalSearch struct {
	g       *Graph
	dist    []float64
	settled []bool
	touched []int32
	heap    *pqueue.Indexed
}

// NewGoalSearch returns a workspace for goal-directed queries on g.
func NewGoalSearch(g *Graph) *GoalSearch {
	n := g.NumVertices()
	gs := &GoalSearch{
		g:       g,
		dist:    make([]float64, n),
		settled: make([]bool, n),
		heap:    pqueue.NewIndexed(n),
	}
	for i := range gs.dist {
		gs.dist[i] = Unreachable
	}
	return gs
}

func (gs *GoalSearch) reset() {
	for _, v := range gs.touched {
		gs.dist[v] = Unreachable
		gs.settled[v] = false
	}
	gs.touched = gs.touched[:0]
	gs.heap.Reset()
}

// FromSet runs one multi-source A* from the given source set (all at
// distance 0) toward the target vertices, returning the exact network
// distance from the set to each target (Unreachable for targets in other
// components). On an undirected graph this equals the distance from each
// target to the nearest source — resolving "how far is this trajectory
// from every query location" with a single corridor-shaped search.
// The heuristic is the scaled planar distance to the nearest target,
// which is consistent, so settled distances are exact.
func (gs *GoalSearch) FromSet(sources []VertexID, targets []VertexID, onSettle func()) []float64 {
	gs.reset()
	scale := gs.g.HeuristicScale()
	h := func(v int32) float64 {
		best := math.Inf(1)
		p := gs.g.pts[v]
		for _, t := range targets {
			if d := p.Dist(gs.g.pts[t]); d < best {
				best = d
			}
		}
		return best * scale
	}
	out := make([]float64, len(targets))
	pending := make(map[VertexID][]int, len(targets))
	for i, t := range targets {
		out[i] = Unreachable
		pending[t] = append(pending[t], i)
	}
	for _, s := range sources {
		if gs.dist[s] != 0 { // skip duplicate source entries
			gs.dist[s] = 0
			gs.touched = append(gs.touched, int32(s))
			gs.heap.Push(int32(s), h(int32(s)))
		}
	}
	remaining := len(pending)
	//uots:allow looppoll -- early-terminating corridor search: bounded by the goal corridor, core polls between probes
	for remaining > 0 {
		v, _, ok := gs.heap.Pop()
		if !ok {
			return out
		}
		gs.settled[v] = true
		if onSettle != nil {
			onSettle()
		}
		d := gs.dist[v]
		if idxs, hit := pending[VertexID(v)]; hit {
			for _, i := range idxs {
				out[i] = d
			}
			delete(pending, VertexID(v))
			remaining--
			if remaining == 0 {
				return out
			}
		}
		to, w := gs.g.Neighbors(VertexID(v))
		for i, t := range to {
			if gs.settled[t] {
				continue
			}
			nd := d + w[i]
			if nd < gs.dist[t] {
				if gs.dist[t] == Unreachable {
					gs.touched = append(gs.touched, t)
				}
				gs.dist[t] = nd
				gs.heap.Push(t, nd+h(t))
			}
		}
	}
	return out
}

// DistToSet searches from src toward the nearest vertex satisfying
// isTarget, guided by goal, the bounding rectangle of the target set
// (every target's coordinates must lie inside goal, or the result may be
// wrong). The search gives up once it can certify that every target is
// farther than cap (use math.Inf(1) for an uncapped search). onSettle, if
// non-nil, is invoked once per settled vertex (work accounting).
//
// If a target is found within the cap, found is its vertex and d its exact
// network distance. Otherwise found is -1 and d is a certified lower
// bound on the distance from src to every target (at least cap when the
// search was cut off; Unreachable when the component was exhausted).
func (gs *GoalSearch) DistToSet(src VertexID, goal geo.Rect, cap float64, isTarget func(VertexID) bool, onSettle func()) (found VertexID, d float64) {
	gs.reset()
	scale := gs.g.HeuristicScale()
	h := func(v int32) float64 { return goal.DistToPoint(gs.g.pts[v]) * scale }

	gs.dist[src] = 0
	gs.touched = append(gs.touched, int32(src))
	gs.heap.Push(int32(src), h(int32(src)))
	//uots:allow looppoll -- early-terminating goal A*: bounded by the goal corridor, callers poll between probes
	for {
		v, f, ok := gs.heap.Pop()
		if !ok {
			return -1, Unreachable
		}
		// Every undiscovered target t has d(t) ≥ f(t) = d(t)+h(t) with
		// h(t)=0 (targets lie inside goal), and the frontier minimum f
		// lower-bounds every remaining f — so f certifies a distance
		// lower bound for all targets.
		if f > cap {
			return -1, f
		}
		gs.settled[v] = true
		if onSettle != nil {
			onSettle()
		}
		if isTarget(VertexID(v)) {
			return VertexID(v), gs.dist[v]
		}
		d := gs.dist[v]
		to, w := gs.g.Neighbors(VertexID(v))
		for i, t := range to {
			if gs.settled[t] {
				continue
			}
			nd := d + w[i]
			if nd < gs.dist[t] {
				if gs.dist[t] == Unreachable {
					gs.touched = append(gs.touched, t)
				}
				gs.dist[t] = nd
				gs.heap.Push(t, nd+h(t))
			}
		}
	}
}
