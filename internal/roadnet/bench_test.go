package roadnet

import (
	"math/rand/v2"
	"testing"

	"uots/internal/geo"
)

func benchCity(b *testing.B) *Graph {
	b.Helper()
	return NRNLike(0.15, 1) // ≈2.1k vertices, dense
}

func BenchmarkSSSPFull(b *testing.B) {
	g := benchCity(b)
	s := NewSSSP(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(VertexID(i % g.NumVertices()))
	}
}

func BenchmarkBidirectionalDist(b *testing.B) {
	g := benchCity(b)
	bd := NewBidirectional(g)
	rng := rand.New(rand.NewPCG(1, 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := VertexID(rng.IntN(g.NumVertices()))
		v := VertexID(rng.IntN(g.NumVertices()))
		bd.Dist(u, v)
	}
}

func BenchmarkAStarDist(b *testing.B) {
	g := benchCity(b)
	a := NewAStar(g)
	rng := rand.New(rand.NewPCG(3, 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := VertexID(rng.IntN(g.NumVertices()))
		v := VertexID(rng.IntN(g.NumVertices()))
		a.Dist(u, v)
	}
}

func BenchmarkExpanderDrain(b *testing.B) {
	g := benchCity(b)
	e := NewExpander(g, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Reset(VertexID(i % g.NumVertices()))
		for {
			if _, _, ok := e.Next(); !ok {
				break
			}
		}
	}
}

func BenchmarkVertexIndexNearest(b *testing.B) {
	g := benchCity(b)
	idx := NewVertexIndex(g, 0)
	rng := rand.New(rand.NewPCG(5, 6))
	bounds := g.Bounds()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.Point{
			X: bounds.Min.X + rng.Float64()*bounds.Width(),
			Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
		}
		idx.Nearest(p)
	}
}

func BenchmarkLandmarkLowerBound(b *testing.B) {
	g := benchCity(b)
	lm := NewLandmarks(g, 16, 0)
	rng := rand.New(rand.NewPCG(7, 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := VertexID(rng.IntN(g.NumVertices()))
		v := VertexID(rng.IntN(g.NumVertices()))
		lm.LowerBound(u, v)
	}
}

func BenchmarkGenerateCitySparse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := GenerateCity(CityOptions{Rows: 40, Cols: 40, Style: StyleSparse, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
