package roadnet

import "uots/internal/pqueue"

// Expander performs incremental network expansion (Dijkstra) from a single
// source vertex, the core primitive of the UOTS expansion search: each call
// to Next settles exactly one more vertex, in non-decreasing distance
// order, so the first trajectory sample reached from a query location is
// provably its nearest one and the current radius lower-bounds the distance
// to everything not yet reached.
//
// An Expander is not safe for concurrent use. Reset reuses all storage, so
// the search engine can keep one expander per query source across queries.
type Expander struct {
	g       *Graph
	dist    []float64
	settled []bool
	touched []int32
	heap    *pqueue.Indexed
	radius  float64
	count   int // vertices settled so far
	done    bool
}

// NewExpander returns an expander on g positioned at src with radius 0.
func NewExpander(g *Graph, src VertexID) *Expander {
	n := g.NumVertices()
	e := &Expander{
		g:       g,
		dist:    make([]float64, n),
		settled: make([]bool, n),
		heap:    pqueue.NewIndexed(n),
	}
	for i := range e.dist {
		e.dist[i] = Unreachable
	}
	e.start(src)
	return e
}

// Reset repositions the expander at src with radius 0, reusing storage.
func (e *Expander) Reset(src VertexID) {
	for _, v := range e.touched {
		e.dist[v] = Unreachable
		e.settled[v] = false
	}
	e.touched = e.touched[:0]
	e.heap.Reset()
	e.radius = 0
	e.count = 0
	e.done = false
	e.start(src)
}

func (e *Expander) start(src VertexID) {
	e.dist[src] = 0
	e.touched = append(e.touched, int32(src))
	e.heap.Push(int32(src), 0)
}

// Next settles the next-nearest unsettled vertex and returns it with its
// exact network distance from the source. ok is false once the whole
// reachable component has been settled; from then on Radius reports
// Unreachable.
func (e *Expander) Next() (v VertexID, d float64, ok bool) {
	iv, d, ok := e.heap.Pop()
	if !ok {
		e.done = true
		e.radius = Unreachable
		return -1, Unreachable, false
	}
	e.settled[iv] = true
	e.radius = d
	e.count++
	to, w := e.g.Neighbors(VertexID(iv))
	for i, t := range to {
		if e.settled[t] {
			continue
		}
		nd := d + w[i]
		if nd < e.dist[t] {
			if e.dist[t] == Unreachable {
				e.touched = append(e.touched, t)
			}
			e.dist[t] = nd
			e.heap.Push(t, nd)
		}
	}
	return VertexID(iv), d, true
}

// Radius returns the distance of the most recently settled vertex — a
// lower bound on the distance from the source to every vertex not yet
// settled. After exhaustion it returns Unreachable.
func (e *Expander) Radius() float64 { return e.radius }

// Done reports whether the reachable component has been fully settled.
func (e *Expander) Done() bool { return e.done }

// SettledCount returns the number of vertices settled so far.
func (e *Expander) SettledCount() int { return e.count }

// DistanceTo returns the exact distance to v if v has been settled.
// For unsettled vertices ok is false and the caller should use Radius as
// a lower bound.
func (e *Expander) DistanceTo(v VertexID) (d float64, ok bool) {
	if e.settled[v] {
		return e.dist[v], true
	}
	return 0, false
}
