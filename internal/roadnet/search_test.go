package roadnet

import (
	"math"
	"math/rand/v2"
	"testing"

	"uots/internal/geo"
)

// floydWarshall computes all-pairs shortest distances by brute force.
func floydWarshall(g *Graph) [][]float64 {
	n := g.NumVertices()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for v := 0; v < n; v++ {
		to, w := g.Neighbors(VertexID(v))
		for i, t := range to {
			if w[i] < d[v][t] {
				d[v][t] = w[i]
				d[t][v] = w[i]
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d[i][k]+d[k][j] < d[i][j] {
					d[i][j] = d[i][k] + d[k][j]
				}
			}
		}
	}
	return d
}

func TestSSSPMatchesFloydWarshall(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := randomConnected(40, 30, seed)
		want := floydWarshall(g)
		s := NewSSSP(g)
		for src := 0; src < g.NumVertices(); src++ {
			s.Run(VertexID(src))
			for v := 0; v < g.NumVertices(); v++ {
				got := s.Dist(VertexID(v))
				if math.Abs(got-want[src][v]) > 1e-9 {
					t.Fatalf("seed %d: d(%d,%d) = %g, want %g", seed, src, v, got, want[src][v])
				}
			}
		}
	}
}

func TestSSSPPathIsValidAndTight(t *testing.T) {
	g := randomConnected(60, 50, 11)
	s := NewSSSP(g)
	s.Run(0)
	for v := 1; v < g.NumVertices(); v++ {
		path := s.PathTo(VertexID(v))
		if len(path) == 0 {
			t.Fatalf("no path to %d", v)
		}
		if path[0] != 0 || path[len(path)-1] != VertexID(v) {
			t.Fatalf("path endpoints wrong: %v", path)
		}
		var sum float64
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeight(path[i-1], path[i])
			if !ok {
				t.Fatalf("path uses nonexistent edge {%d,%d}", path[i-1], path[i])
			}
			sum += w
		}
		if math.Abs(sum-s.Dist(VertexID(v))) > 1e-9 {
			t.Fatalf("path length %g != dist %g", sum, s.Dist(VertexID(v)))
		}
	}
}

func TestSSSPEarlyStop(t *testing.T) {
	g := line(t, 10)
	s := NewSSSP(g)
	var settled []VertexID
	s.RunUntil(0, func(v VertexID, d float64) bool {
		settled = append(settled, v)
		return len(settled) < 3
	})
	if len(settled) != 3 {
		t.Fatalf("settled %d vertices, want 3", len(settled))
	}
	// Settled in distance order on a line: 0, 1, 2.
	for i, v := range settled {
		if v != VertexID(i) {
			t.Fatalf("settle order %v", settled)
		}
	}
	if s.Settled(9) {
		t.Error("vertex 9 should not be settled after early stop")
	}
	if s.PathTo(9) != nil {
		t.Error("PathTo(unsettled) should be nil")
	}
}

func TestSSSPDistToSet(t *testing.T) {
	g := line(t, 10)
	s := NewSSSP(g)
	targets := map[VertexID]bool{7: true, 9: true}
	v, d := s.DistToSet(2, func(v VertexID) bool { return targets[v] })
	if v != 7 || d != 5 {
		t.Fatalf("DistToSet = (%d, %g), want (7, 5)", v, d)
	}
	v, d = s.DistToSet(2, func(VertexID) bool { return false })
	if v != -1 || !math.IsInf(d, 1) {
		t.Fatalf("unreachable target = (%d, %g)", v, d)
	}
}

func TestSSSPReuseAcrossRuns(t *testing.T) {
	g := randomConnected(30, 20, 13)
	s := NewSSSP(g)
	fresh := NewSSSP(g)
	for src := 0; src < 10; src++ {
		s.Run(VertexID(src))
		fresh2 := fresh // one workspace reused vs a fresh run each time
		fresh2.Run(VertexID(src))
		for v := 0; v < g.NumVertices(); v++ {
			if s.Dist(VertexID(v)) != fresh2.Dist(VertexID(v)) {
				t.Fatalf("reused workspace diverged at src=%d v=%d", src, v)
			}
		}
	}
}

func TestExpanderSettlesInDistanceOrder(t *testing.T) {
	g := randomConnected(80, 60, 17)
	e := NewExpander(g, 0)
	s := NewSSSP(g)
	s.Run(0)
	prev := -1.0
	count := 0
	for {
		v, d, ok := e.Next()
		if !ok {
			break
		}
		count++
		if d < prev {
			t.Fatalf("settle order violated: %g after %g", d, prev)
		}
		if math.Abs(d-s.Dist(v)) > 1e-9 {
			t.Fatalf("expander dist %g != sssp %g at %d", d, s.Dist(v), v)
		}
		if e.Radius() != d {
			t.Fatalf("Radius %g != last settled %g", e.Radius(), d)
		}
		if got, ok := e.DistanceTo(v); !ok || got != d {
			t.Fatalf("DistanceTo settled vertex = (%g, %v)", got, ok)
		}
		prev = d
	}
	if count != g.NumVertices() {
		t.Fatalf("settled %d of %d", count, g.NumVertices())
	}
	if !e.Done() || !math.IsInf(e.Radius(), 1) {
		t.Error("exhausted expander should be Done with infinite radius")
	}
	if e.SettledCount() != count {
		t.Errorf("SettledCount = %d, want %d", e.SettledCount(), count)
	}
}

func TestExpanderRadiusLowerBoundsUnsettled(t *testing.T) {
	g := randomConnected(60, 40, 19)
	s := NewSSSP(g)
	s.Run(5)
	e := NewExpander(g, 5)
	for i := 0; i < 20; i++ {
		e.Next()
	}
	r := e.Radius()
	for v := 0; v < g.NumVertices(); v++ {
		if _, settled := e.DistanceTo(VertexID(v)); !settled {
			if s.Dist(VertexID(v)) < r-1e-9 {
				t.Fatalf("unsettled vertex %d closer (%g) than radius %g", v, s.Dist(VertexID(v)), r)
			}
		}
	}
}

func TestExpanderReset(t *testing.T) {
	g := randomConnected(40, 30, 23)
	e := NewExpander(g, 0)
	for i := 0; i < 10; i++ {
		e.Next()
	}
	e.Reset(7)
	s := NewSSSP(g)
	s.Run(7)
	for {
		v, d, ok := e.Next()
		if !ok {
			break
		}
		if math.Abs(d-s.Dist(v)) > 1e-9 {
			t.Fatalf("after Reset: dist %g != %g at %d", d, s.Dist(v), v)
		}
	}
}

func TestBidirectionalMatchesSSSP(t *testing.T) {
	g := randomConnected(70, 50, 29)
	b := NewBidirectional(g)
	s := NewSSSP(g)
	rng := rand.New(rand.NewPCG(31, 37))
	for trial := 0; trial < 60; trial++ {
		u := VertexID(rng.IntN(g.NumVertices()))
		v := VertexID(rng.IntN(g.NumVertices()))
		s.Run(u)
		want := s.Dist(v)
		got, ok := b.Dist(u, v)
		if !ok || math.Abs(got-want) > 1e-9 {
			t.Fatalf("bidir d(%d,%d) = (%g, %v), want %g", u, v, got, ok, want)
		}
		path, pd, ok := b.Path(u, v)
		if !ok || math.Abs(pd-want) > 1e-9 {
			t.Fatalf("bidir path d(%d,%d) = %g, want %g", u, v, pd, want)
		}
		if path[0] != u || path[len(path)-1] != v {
			t.Fatalf("path endpoints %v for (%d,%d)", path, u, v)
		}
		var sum float64
		for i := 1; i < len(path); i++ {
			w, ok := g.EdgeWeight(path[i-1], path[i])
			if !ok {
				t.Fatalf("path uses nonexistent edge")
			}
			sum += w
		}
		if math.Abs(sum-want) > 1e-9 {
			t.Fatalf("path edge sum %g != %g", sum, want)
		}
	}
	// Same-vertex query.
	if d, ok := b.Dist(3, 3); !ok || d != 0 {
		t.Errorf("Dist(3,3) = (%g, %v)", d, ok)
	}
	if path, d, ok := b.Path(3, 3); !ok || d != 0 || len(path) != 1 || path[0] != 3 {
		t.Errorf("Path(3,3) = (%v, %g, %v)", path, d, ok)
	}
}

func TestBidirectionalDisconnected(t *testing.T) {
	var bld Builder
	bld.AddVertex(geo.Point{})
	bld.AddVertex(geo.Point{X: 1})
	bld.AddVertex(geo.Point{X: 2})
	if err := bld.AddEdge(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	g, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	b := NewBidirectional(g)
	if _, ok := b.Dist(0, 2); ok {
		t.Error("disconnected pair should report !ok")
	}
	if _, _, ok := b.Path(0, 2); ok {
		t.Error("disconnected pair should have no path")
	}
}

func TestAStarMatchesSSSP(t *testing.T) {
	// City weights satisfy weight ≥ euclidean, making the heuristic exact
	// scale 1; random graphs exercise the computed scale.
	for _, g := range []*Graph{NRNLike(0.04, 5), randomConnected(60, 45, 41)} {
		a := NewAStar(g)
		s := NewSSSP(g)
		rng := rand.New(rand.NewPCG(43, 47))
		for trial := 0; trial < 40; trial++ {
			u := VertexID(rng.IntN(g.NumVertices()))
			v := VertexID(rng.IntN(g.NumVertices()))
			s.Run(u)
			want := s.Dist(v)
			got, ok := a.Dist(u, v)
			if want == Unreachable {
				if ok {
					t.Fatalf("A* found unreachable %d→%d", u, v)
				}
				continue
			}
			if !ok || math.Abs(got-want) > 1e-9 {
				t.Fatalf("A* d(%d,%d) = %g, want %g", u, v, got, want)
			}
			path, pd, ok := a.Path(u, v)
			if !ok || math.Abs(pd-want) > 1e-9 || path[0] != u || path[len(path)-1] != v {
				t.Fatalf("A* path broken for (%d,%d)", u, v)
			}
		}
	}
}

func TestLandmarksLowerBound(t *testing.T) {
	g := randomConnected(80, 60, 53)
	lm := NewLandmarks(g, 8, 0)
	if lm.Count() != 8 {
		t.Fatalf("landmark count = %d", lm.Count())
	}
	s := NewSSSP(g)
	rng := rand.New(rand.NewPCG(59, 61))
	for trial := 0; trial < 50; trial++ {
		u := VertexID(rng.IntN(g.NumVertices()))
		v := VertexID(rng.IntN(g.NumVertices()))
		s.Run(u)
		want := s.Dist(v)
		lb := lm.LowerBound(u, v)
		if lb > want+1e-9 {
			t.Fatalf("landmark LB %g exceeds true distance %g for (%d,%d)", lb, want, u, v)
		}
	}
	// LowerBoundToSet must lower-bound the minimum distance to the set.
	for trial := 0; trial < 20; trial++ {
		u := VertexID(rng.IntN(g.NumVertices()))
		set := []VertexID{VertexID(rng.IntN(g.NumVertices())), VertexID(rng.IntN(g.NumVertices()))}
		s.Run(u)
		want := math.Min(s.Dist(set[0]), s.Dist(set[1]))
		if lb := lm.LowerBoundToSet(u, set); lb > want+1e-9 {
			t.Fatalf("set LB %g exceeds %g", lb, want)
		}
	}
	if lb := lm.LowerBoundToSet(0, nil); !math.IsInf(lb, 1) {
		t.Errorf("empty set LB = %g", lb)
	}
	empty := NewLandmarks(g, 0, 0)
	if empty.Count() != 0 || empty.LowerBound(0, 1) != 0 {
		t.Error("zero landmarks should give trivial bounds")
	}
}

func TestVertexIndexNearestMatchesBrute(t *testing.T) {
	g := randomConnected(120, 80, 67)
	idx := NewVertexIndex(g, 0)
	rng := rand.New(rand.NewPCG(71, 73))
	for trial := 0; trial < 100; trial++ {
		p := geo.Point{X: rng.Float64()*14 - 2, Y: rng.Float64()*14 - 2}
		got, gotD := idx.Nearest(p)
		bestD := math.Inf(1)
		for v := 0; v < g.NumVertices(); v++ {
			if d := p.Dist(g.Point(VertexID(v))); d < bestD {
				bestD = d
			}
		}
		if math.Abs(gotD-bestD) > 1e-9 {
			t.Fatalf("Nearest(%v) = (%d, %g), brute %g", p, got, gotD, bestD)
		}
	}
}

func TestVertexIndexWithin(t *testing.T) {
	g := randomConnected(100, 70, 79)
	idx := NewVertexIndex(g, 0.8)
	rng := rand.New(rand.NewPCG(83, 89))
	for trial := 0; trial < 50; trial++ {
		p := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		r := rng.Float64() * 3
		got := idx.Within(p, r)
		want := map[VertexID]bool{}
		for v := 0; v < g.NumVertices(); v++ {
			if p.Dist(g.Point(VertexID(v))) <= r {
				want[VertexID(v)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Within(%v, %g) returned %d, want %d", p, r, len(got), len(want))
		}
		for _, v := range got {
			if !want[v] {
				t.Fatalf("Within returned %d outside radius", v)
			}
		}
	}
	if got := idx.Within(geo.Point{}, -1); len(got) != 0 {
		t.Errorf("negative radius returned %d vertices", len(got))
	}
}

func TestGoalSearchDistToSet(t *testing.T) {
	g := randomConnected(80, 60, 97)
	gs := NewGoalSearch(g)
	s := NewSSSP(g)
	rng := rand.New(rand.NewPCG(101, 103))
	for trial := 0; trial < 40; trial++ {
		src := VertexID(rng.IntN(g.NumVertices()))
		targetSet := map[VertexID]bool{}
		box := geo.EmptyRect()
		for i := 0; i < 3; i++ {
			v := VertexID(rng.IntN(g.NumVertices()))
			targetSet[v] = true
			box = box.ExtendPoint(g.Point(v))
		}
		wantV, wantD := s.DistToSet(src, func(v VertexID) bool { return targetSet[v] })
		_ = wantV
		settles := 0
		gotV, gotD := gs.DistToSet(src, box, math.Inf(1), func(v VertexID) bool { return targetSet[v] }, func() { settles++ })
		if gotV < 0 || math.Abs(gotD-wantD) > 1e-9 {
			t.Fatalf("goal DistToSet = (%d, %g), want %g", gotV, gotD, wantD)
		}
		if settles == 0 {
			t.Fatal("onSettle never invoked")
		}
	}
}

func TestGoalSearchCapCertifiesLowerBound(t *testing.T) {
	g := line(t, 30) // distances are trivially i - j
	gs := NewGoalSearch(g)
	target := VertexID(25)
	box := geo.RectOf(g.Point(target))
	v, d := gs.DistToSet(0, box, 5.0, func(x VertexID) bool { return x == target }, nil)
	if v != -1 {
		t.Fatalf("capped search found %d", v)
	}
	if d < 5 || d > 25 {
		t.Fatalf("certified lower bound %g outside (5, 25]", d)
	}
	// Uncapped finds it exactly.
	v, d = gs.DistToSet(0, box, math.Inf(1), func(x VertexID) bool { return x == target }, nil)
	if v != target || d != 25 {
		t.Fatalf("uncapped = (%d, %g), want (25, 25)", v, d)
	}
}

func TestGoalSearchFromSet(t *testing.T) {
	g := randomConnected(80, 60, 107)
	gs := NewGoalSearch(g)
	s := NewSSSP(g)
	rng := rand.New(rand.NewPCG(109, 113))
	for trial := 0; trial < 30; trial++ {
		sources := make([]VertexID, 1+rng.IntN(5))
		for i := range sources {
			sources[i] = VertexID(rng.IntN(g.NumVertices()))
		}
		targets := make([]VertexID, 1+rng.IntN(4))
		for i := range targets {
			targets[i] = VertexID(rng.IntN(g.NumVertices()))
		}
		got := gs.FromSet(sources, targets, nil)
		for i, tgt := range targets {
			s.Run(tgt)
			want := math.Inf(1)
			for _, src := range sources {
				if d := s.Dist(src); d < want {
					want = d
				}
			}
			if math.Abs(got[i]-want) > 1e-9 {
				t.Fatalf("FromSet target %d = %g, want %g", tgt, got[i], want)
			}
		}
	}
	// Duplicate sources and targets must not break anything.
	got := gs.FromSet([]VertexID{0, 0, 1}, []VertexID{2, 2}, nil)
	if got[0] != got[1] {
		t.Errorf("duplicate targets disagree: %v", got)
	}
}

func TestShortestPathHelper(t *testing.T) {
	g := line(t, 5)
	path, d, ok := ShortestPath(g, 0, 4)
	if !ok || d != 4 || len(path) != 5 {
		t.Fatalf("ShortestPath = (%v, %g, %v)", path, d, ok)
	}
}
