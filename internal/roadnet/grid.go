package roadnet

import (
	"math"

	"uots/internal/geo"
)

// VertexIndex is a uniform-grid spatial index over the vertices of a graph,
// supporting nearest-vertex snapping and range queries. It is the access
// path that turns raw coordinates (user clicks, GPS fixes) into network
// vertices for querying and map matching.
//
// A VertexIndex is immutable after construction and safe for concurrent use.
type VertexIndex struct {
	g        *Graph
	cellSize float64
	cols     int
	rows     int
	origin   geo.Point
	cells    [][]int32 // vertex IDs per cell, row-major
}

// NewVertexIndex builds a grid index over g's vertices. cellSize is the
// grid pitch in kilometres; values around the network's mean edge length
// work well. Non-positive cellSize picks a default from the graph bounds.
func NewVertexIndex(g *Graph, cellSize float64) *VertexIndex {
	b := g.Bounds()
	if cellSize <= 0 {
		// Aim for a few vertices per cell on average.
		area := math.Max(b.Width()*b.Height(), 1e-9)
		cellSize = math.Sqrt(area / math.Max(float64(g.NumVertices()), 1) * 4)
		if cellSize <= 0 {
			cellSize = 1
		}
	}
	cols := int(b.Width()/cellSize) + 1
	rows := int(b.Height()/cellSize) + 1
	idx := &VertexIndex{
		g:        g,
		cellSize: cellSize,
		cols:     cols,
		rows:     rows,
		origin:   b.Min,
		cells:    make([][]int32, cols*rows),
	}
	for v := 0; v < g.NumVertices(); v++ {
		c := idx.cellOf(g.Point(VertexID(v)))
		idx.cells[c] = append(idx.cells[c], int32(v))
	}
	return idx
}

// CellSize returns the grid pitch in kilometres.
func (idx *VertexIndex) CellSize() float64 { return idx.cellSize }

func (idx *VertexIndex) cellOf(p geo.Point) int {
	cx := int((p.X - idx.origin.X) / idx.cellSize)
	cy := int((p.Y - idx.origin.Y) / idx.cellSize)
	cx = clampInt(cx, 0, idx.cols-1)
	cy = clampInt(cy, 0, idx.rows-1)
	return cy*idx.cols + cx
}

func clampInt(x, lo, hi int) int {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Nearest returns the vertex closest (in the plane) to p and its distance.
// It expands square rings of grid cells outward from p until the nearest
// candidate provably beats every unexplored cell.
func (idx *VertexIndex) Nearest(p geo.Point) (VertexID, float64) {
	best := VertexID(-1)
	bestD := math.Inf(1)
	cx := clampInt(int((p.X-idx.origin.X)/idx.cellSize), 0, idx.cols-1)
	cy := clampInt(int((p.Y-idx.origin.Y)/idx.cellSize), 0, idx.rows-1)
	maxRing := idx.cols
	if idx.rows > maxRing {
		maxRing = idx.rows
	}
	for ring := 0; ring <= maxRing; ring++ {
		// Any vertex in a cell of this ring is at least (ring-1)*cellSize
		// from p, so once the best found beats that, stop.
		if best >= 0 && bestD <= float64(ring-1)*idx.cellSize {
			break
		}
		idx.forRing(cx, cy, ring, func(cell int) {
			for _, v := range idx.cells[cell] {
				if d := p.Dist(idx.g.Point(VertexID(v))); d < bestD {
					bestD = d
					best = VertexID(v)
				}
			}
		})
	}
	return best, bestD
}

// Within returns all vertices at planar distance ≤ radius from p,
// in increasing vertex-ID order.
func (idx *VertexIndex) Within(p geo.Point, radius float64) []VertexID {
	var out []VertexID
	if radius < 0 {
		return out
	}
	lo := idx.cellOf(geo.Point{X: p.X - radius, Y: p.Y - radius})
	hi := idx.cellOf(geo.Point{X: p.X + radius, Y: p.Y + radius})
	loX, loY := lo%idx.cols, lo/idx.cols
	hiX, hiY := hi%idx.cols, hi/idx.cols
	for cy := loY; cy <= hiY; cy++ {
		for cx := loX; cx <= hiX; cx++ {
			for _, v := range idx.cells[cy*idx.cols+cx] {
				if p.Dist(idx.g.Point(VertexID(v))) <= radius {
					out = append(out, VertexID(v))
				}
			}
		}
	}
	return out
}

// forRing invokes fn for each valid cell on the square ring at Chebyshev
// distance ring from (cx, cy). Ring 0 is the center cell itself.
func (idx *VertexIndex) forRing(cx, cy, ring int, fn func(cell int)) {
	if ring == 0 {
		fn(cy*idx.cols + cx)
		return
	}
	for dx := -ring; dx <= ring; dx++ {
		for _, dy := range [2]int{-ring, ring} {
			x, y := cx+dx, cy+dy
			if x >= 0 && x < idx.cols && y >= 0 && y < idx.rows {
				fn(y*idx.cols + x)
			}
		}
	}
	for dy := -ring + 1; dy <= ring-1; dy++ {
		for _, dx := range [2]int{-ring, ring} {
			x, y := cx+dx, cy+dy
			if x >= 0 && x < idx.cols && y >= 0 && y < idx.rows {
				fn(y*idx.cols + x)
			}
		}
	}
}
