// Package diskstore implements the disk-resident trajectory store of the
// evaluation's storage experiment: when the trajectory data does not fit
// in main memory, the index structures (vertex→trajectory inverted lists,
// keyword inverted index, bounding boxes, record offsets) stay resident
// while trajectory payloads live in a record file and are faulted in
// through a byte-budgeted LRU buffer.
//
// The store implements the engine's core.TrajStore interface, so the
// expansion search and both baselines run unchanged over it; the only
// difference is I/O on the trajectory-payload access paths
// (Traj, ContainsVertex, UniqueVertices, Keywords).
package diskstore

import (
	"bufio"
	"bytes"
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"uots/internal/geo"
	"uots/internal/index"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// storeMagic identifies the disk-store record-file format, version 1.
const storeMagic = "UOTSDSK1"

// DefaultCacheBytes is the LRU buffer budget used when Open is given a
// non-positive budget (64 MiB, mirroring the evaluation's buffer setup).
const DefaultCacheBytes = 64 << 20

// Create converts an in-memory store into a disk-store file at path plus
// a persistent-index sidecar at path+".idx". The record file carries the
// vocabulary, per-record offsets, and one record per trajectory; the
// sidecar carries the memory-resident index structures so Open can skip
// the sequential rebuild scan (warm start). The sidecar is an
// optimization, never a requirement: Open falls back to the scan when it
// is missing or does not match the record file.
func Create(path string, src *trajdb.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, src); err != nil {
		f.Close()
		return fmt.Errorf("diskstore: writing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := index.WriteSidecar(index.SidecarPath(path), sidecarFrom(src)); err != nil {
		return fmt.Errorf("diskstore: writing index sidecar for %s: %w", path, err)
	}
	return nil
}

// sidecarFrom assembles the persistent-index payload of src. All slices
// are referenced, not copied — WriteSidecar only reads them.
func sidecarFrom(src *trajdb.Store) *index.Sidecar {
	n := src.NumTrajectories()
	g := src.Graph()
	vocabSize := 0
	if src.Vocab() != nil {
		vocabSize = src.Vocab().Size()
	}
	sc := &index.Sidecar{
		NumVertices: g.NumVertices(),
		VocabSize:   vocabSize,
		Starts:      make([]float64, n),
		BBoxes:      make([]geo.Rect, n),
		VertexIx:    make([][]trajdb.TrajID, g.NumVertices()),
		DocTerms:    make([]textual.TermSet, n),
	}
	for id := 0; id < n; id++ {
		t := src.Traj(trajdb.TrajID(id))
		sc.Starts[id] = t.Samples[0].T
		sc.BBoxes[id] = src.BBox(trajdb.TrajID(id))
		sc.DocTerms[id] = t.Keywords
		sc.RecordBytes += uint64(recordSize(t))
	}
	for v := 0; v < g.NumVertices(); v++ {
		sc.VertexIx[v] = src.TrajsAtVertex(roadnet.VertexID(v))
	}
	return sc
}

func write(f *os.File, src *trajdb.Store) error {
	w := bufio.NewWriter(f)
	if _, err := w.WriteString(storeMagic); err != nil {
		return err
	}
	n := src.NumTrajectories()
	if err := putU32(w, uint32(n)); err != nil {
		return err
	}
	// Vocabulary.
	vocabSize := 0
	if src.Vocab() != nil {
		vocabSize = src.Vocab().Size()
	}
	if err := putU32(w, uint32(vocabSize)); err != nil {
		return err
	}
	for id := 0; id < vocabSize; id++ {
		term, ok := src.Vocab().Term(textual.TermID(id))
		if !ok {
			return fmt.Errorf("vocabulary hole at term %d", id)
		}
		if err := putU32(w, uint32(len(term))); err != nil {
			return err
		}
		if _, err := w.WriteString(term); err != nil {
			return err
		}
	}
	// Record sizes (the offset table is derived at Open), then records.
	sizes := make([]uint32, n)
	for id := 0; id < n; id++ {
		t := src.Traj(trajdb.TrajID(id))
		sizes[id] = uint32(recordSize(t))
		if err := putU32(w, sizes[id]); err != nil {
			return err
		}
	}
	for id := 0; id < n; id++ {
		if err := writeRecord(w, src.Traj(trajdb.TrajID(id))); err != nil {
			return fmt.Errorf("record %d: %w", id, err)
		}
	}
	return w.Flush()
}

func recordSize(t *trajdb.Trajectory) int {
	return 4 + len(t.Samples)*12 + 4 + len(t.Keywords)*4
}

func writeRecord(w io.Writer, t *trajdb.Trajectory) error {
	if err := putU32(w, uint32(len(t.Samples))); err != nil {
		return err
	}
	for _, s := range t.Samples {
		if err := putU32(w, uint32(s.V)); err != nil {
			return err
		}
		if err := putU64(w, math.Float64bits(s.T)); err != nil {
			return err
		}
	}
	if err := putU32(w, uint32(len(t.Keywords))); err != nil {
		return err
	}
	for _, k := range t.Keywords {
		if err := putU32(w, uint32(k)); err != nil {
			return err
		}
	}
	return nil
}

// Store is a disk-resident trajectory store. Indexes are memory resident;
// trajectory records are read from the file through a byte-budgeted LRU
// buffer. Safe for concurrent use.
type Store struct {
	g     *roadnet.Graph
	f     *os.File
	vocab *textual.Vocab

	offsets []int64
	sizes   []uint32

	// Index-resident structures (built once at Open).
	vertexIx [][]trajdb.TrajID
	textIx   *textual.Index
	docTerms []textual.TermSet // by TrajID; the I/O-free Keywords path
	bboxes   []geo.Rect
	starts   []float64 // departure time per trajectory (time-window filter)

	warm bool // indexes came from the sidecar; no rebuild scan ran

	mu    sync.Mutex
	cache map[trajdb.TrajID]*list.Element
	lru   *list.List // front = most recent; values are *entry
	used  int
	limit int
	stats CacheStats
}

type entry struct {
	id   trajdb.TrajID
	traj *trajdb.Trajectory
	uniq []roadnet.VertexID
	cost int
}

// CacheStats counts buffer activity since Open.
type CacheStats struct {
	Loads     int64 // record requests
	Hits      int64
	Misses    int64
	Evictions int64
	BytesRead int64
}

// Open maps a disk-store file over g, loads the memory-resident indexes
// — from the persistent sidecar at path+".idx" when it matches the
// record file (warm start, no record scan), otherwise by one sequential
// rebuild scan — and installs an LRU record buffer with the given byte
// budget (≤0 selects DefaultCacheBytes).
func Open(path string, g *roadnet.Graph, cacheBytes int) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := open(f, g, cacheBytes, index.SidecarPath(path))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("diskstore: opening %s: %w", path, err)
	}
	return s, nil
}

func open(f *os.File, g *roadnet.Graph, cacheBytes int, sidecarPath string) (*Store, error) {
	if cacheBytes <= 0 {
		cacheBytes = DefaultCacheBytes
	}
	r := bufio.NewReader(f)
	magic := make([]byte, len(storeMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("reading magic: %w", err)
	}
	if string(magic) != storeMagic {
		return nil, fmt.Errorf("bad magic %q", magic)
	}
	n64, err := getU32(r)
	if err != nil {
		return nil, err
	}
	n := int(n64)
	vocabSize, err := getU32(r)
	if err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 30
	if n64 > maxReasonable || vocabSize > maxReasonable {
		return nil, fmt.Errorf("implausible header (%d records, %d terms)", n64, vocabSize)
	}
	vocab := textual.NewVocab()
	bytesSoFar := int64(len(storeMagic)) + 8
	for i := uint32(0); i < vocabSize; i++ {
		tlen, err := getU32(r)
		if err != nil {
			return nil, err
		}
		if tlen > 1<<20 {
			return nil, fmt.Errorf("implausible term length %d", tlen)
		}
		buf := make([]byte, tlen)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		if id, ok := vocab.Intern(string(buf)); !ok || id != textual.TermID(i) {
			return nil, fmt.Errorf("term %d (%q) does not re-intern to its ID", i, buf)
		}
		bytesSoFar += 4 + int64(tlen)
	}
	s := &Store{
		g:        g,
		f:        f,
		vocab:    vocab,
		offsets:  make([]int64, n),
		sizes:    make([]uint32, n),
		vertexIx: make([][]trajdb.TrajID, g.NumVertices()),
		textIx:   textual.NewIndex(),
		docTerms: make([]textual.TermSet, n),
		bboxes:   make([]geo.Rect, n),
		starts:   make([]float64, n),
		cache:    make(map[trajdb.TrajID]*list.Element),
		lru:      list.New(),
		limit:    cacheBytes,
	}
	for i := 0; i < n; i++ {
		sz, err := getU32(r)
		if err != nil {
			return nil, err
		}
		s.sizes[i] = sz
		bytesSoFar += 4
	}
	off := bytesSoFar
	var recordBytes uint64
	for i := 0; i < n; i++ {
		s.offsets[i] = off
		off += int64(s.sizes[i])
		recordBytes += uint64(s.sizes[i])
	}
	// Warm start: adopt the sidecar's indexes when its fingerprint
	// matches this record file, skipping the rebuild scan entirely. A
	// missing, stale, or malformed sidecar silently falls through to the
	// scan — the sidecar can cost time, never correctness.
	if sidecarPath != "" {
		if sc, err := index.ReadSidecar(sidecarPath); err == nil &&
			sc.Matches(n, g.NumVertices(), int(vocabSize), recordBytes) &&
			sc.SortedVertexCheck() == nil {
			s.vertexIx = sc.VertexIx
			s.bboxes = sc.BBoxes
			s.starts = sc.Starts
			s.docTerms = sc.DocTerms
			s.textIx = sc.RebuildTextIndex()
			s.warm = true
			return s, nil
		}
	}
	// One sequential scan to build the memory-resident indexes.
	for i := 0; i < n; i++ {
		t, uniq, err := decodeRecord(r, trajdb.TrajID(i), g.NumVertices())
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", i, err)
		}
		box := geo.EmptyRect()
		for _, v := range uniq {
			s.vertexIx[v] = append(s.vertexIx[v], trajdb.TrajID(i))
			box = box.ExtendPoint(g.Point(v))
		}
		s.bboxes[i] = box
		s.starts[i] = t.Samples[0].T
		s.docTerms[i] = t.Keywords
		s.textIx.Add(textual.DocID(i), t.Keywords)
	}
	s.textIx.Freeze()
	return s, nil
}

// WarmStart reports whether Open adopted the persistent sidecar indexes
// instead of rebuilding them with a record scan.
func (s *Store) WarmStart() bool { return s.warm }

// Close releases the underlying file. The store must not be used after.
func (s *Store) Close() error { return s.f.Close() }

// Stats returns a snapshot of the buffer counters.
func (s *Store) Stats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// CacheBytes returns the buffer budget.
func (s *Store) CacheBytes() int { return s.limit }

// Vocab returns the keyword vocabulary carried by the file.
func (s *Store) Vocab() *textual.Vocab { return s.vocab }

// Graph implements core.TrajStore.
func (s *Store) Graph() *roadnet.Graph { return s.g }

// NumTrajectories implements core.TrajStore.
func (s *Store) NumTrajectories() int { return len(s.offsets) }

// TrajsAtVertex implements core.TrajStore (index resident; no I/O).
func (s *Store) TrajsAtVertex(v roadnet.VertexID) []trajdb.TrajID { return s.vertexIx[v] }

// TextIndex implements core.TrajStore (index resident; no I/O).
func (s *Store) TextIndex() *textual.Index { return s.textIx }

// BBox implements core.TrajStore (index resident; no I/O).
func (s *Store) BBox(id trajdb.TrajID) geo.Rect { return s.bboxes[id] }

// StartTime returns trajectory id's departure time without touching disk.
func (s *Store) StartTime(id trajdb.TrajID) float64 { return s.starts[id] }

// Keywords implements core.TrajStore: the term sets are memory-resident,
// so this is I/O free. The store keeps its own per-trajectory slice
// rather than going through textual.Index.DocTerms — that accessor
// returns a defensive copy, and this sits in the engines' per-candidate
// scoring loop. The result follows the TrajStore contract: treat it as
// immutable.
func (s *Store) Keywords(id trajdb.TrajID) textual.TermSet {
	return s.docTerms[id]
}

// Traj implements core.TrajStore, faulting the record through the buffer.
func (s *Store) Traj(id trajdb.TrajID) *trajdb.Trajectory {
	e := s.load(id)
	return e.traj
}

// UniqueVertices implements core.TrajStore (record payload; may fault).
func (s *Store) UniqueVertices(id trajdb.TrajID) []roadnet.VertexID {
	return s.load(id).uniq
}

// ContainsVertex implements core.TrajStore (record payload; may fault).
func (s *Store) ContainsVertex(id trajdb.TrajID, v roadnet.VertexID) bool {
	uniq := s.load(id).uniq
	i := sort.Search(len(uniq), func(i int) bool { return uniq[i] >= v })
	return i < len(uniq) && uniq[i] == v
}

// load returns the cached record, reading and decoding it on a miss.
func (s *Store) load(id trajdb.TrajID) *entry {
	s.mu.Lock()
	s.stats.Loads++
	if el, ok := s.cache[id]; ok {
		s.stats.Hits++
		s.lru.MoveToFront(el)
		e := el.Value.(*entry)
		s.mu.Unlock()
		return e
	}
	s.stats.Misses++
	s.stats.BytesRead += int64(s.sizes[id])
	s.mu.Unlock()

	// Read outside the lock: concurrent misses may read the same record
	// twice, which is harmless and keeps the file read off the hot lock.
	buf := make([]byte, s.sizes[id])
	if _, err := s.f.ReadAt(buf, s.offsets[id]); err != nil {
		// The file was validated at Open; a read failure here means the
		// environment broke underneath us (file truncated, device gone).
		// The typed panic is the core.TrajStore fault convention: the
		// engine recovers it and surfaces the failure as a query error.
		panic(&trajdb.StoreError{Op: "read", ID: id, Err: err})
	}
	t, uniq, err := decodeRecordBytes(buf, id, s.g.NumVertices())
	if err != nil {
		panic(&trajdb.StoreError{Op: "decode", ID: id, Err: err})
	}
	e := &entry{id: id, traj: t, uniq: uniq, cost: len(buf) + 64}

	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[id]; ok { // lost a race: keep the incumbent
		s.lru.MoveToFront(el)
		return el.Value.(*entry)
	}
	s.cache[id] = s.lru.PushFront(e)
	s.used += e.cost
	for s.used > s.limit && s.lru.Len() > 1 {
		back := s.lru.Back()
		victim := back.Value.(*entry)
		s.lru.Remove(back)
		delete(s.cache, victim.id)
		s.used -= victim.cost
		s.stats.Evictions++
	}
	return e
}

func decodeRecord(r io.Reader, id trajdb.TrajID, numVertices int) (*trajdb.Trajectory, []roadnet.VertexID, error) {
	ns, err := getU32(r)
	if err != nil {
		return nil, nil, err
	}
	if ns == 0 || ns > 1<<26 {
		return nil, nil, fmt.Errorf("implausible sample count %d", ns)
	}
	samples := make([]trajdb.Sample, ns)
	for i := range samples {
		v, err := getU32(r)
		if err != nil {
			return nil, nil, err
		}
		if int(v) >= numVertices {
			return nil, nil, fmt.Errorf("vertex %d outside graph", v)
		}
		bits, err := getU64(r)
		if err != nil {
			return nil, nil, err
		}
		samples[i] = trajdb.Sample{V: roadnet.VertexID(v), T: math.Float64frombits(bits)}
	}
	nk, err := getU32(r)
	if err != nil {
		return nil, nil, err
	}
	if nk > 1<<20 {
		return nil, nil, fmt.Errorf("implausible keyword count %d", nk)
	}
	kws := make([]textual.TermID, nk)
	for i := range kws {
		k, err := getU32(r)
		if err != nil {
			return nil, nil, err
		}
		kws[i] = textual.TermID(k)
	}
	t := &trajdb.Trajectory{ID: id, Samples: samples, Keywords: textual.NewTermSet(kws)}
	return t, uniqueVertices(samples), nil
}

func decodeRecordBytes(buf []byte, id trajdb.TrajID, numVertices int) (*trajdb.Trajectory, []roadnet.VertexID, error) {
	return decodeRecord(bytes.NewReader(buf), id, numVertices)
}

func uniqueVertices(samples []trajdb.Sample) []roadnet.VertexID {
	vs := make([]roadnet.VertexID, len(samples))
	for i, s := range samples {
		vs[i] = s.V
	}
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
	uniq := vs[:1]
	for _, v := range vs[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	return uniq
}

func putU32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func putU64(w io.Writer, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func getU32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func getU64(r io.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}
