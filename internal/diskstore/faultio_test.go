package diskstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// TestMidQueryIOFailureSurfacesAsError proves the end-to-end fault
// contract on a real disk store: the record file is truncated underneath
// an open store (a failing device, mid-flight), and a query that needs
// the lost payloads must come back as an error wrapping core.ErrStoreFault
// with the *trajdb.StoreError cause attached — never as a panic and never
// as a silently wrong ranking.
func TestMidQueryIOFailureSurfacesAsError(t *testing.T) {
	g := roadnet.BRNLike(0.1, 5)
	vocab := textual.GenerateVocab(5, 25, 1.0, 3)
	mem, err := trajdb.Generate(g, trajdb.GenOptions{
		Count: 500, MeanSamples: 15, Vocab: vocab, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "world.dsk")
	if err := Create(path, mem); err != nil {
		t.Fatal(err)
	}
	// A tiny buffer guarantees the query's records are not already cached
	// when the device "fails".
	disk, err := Open(path, g, 2048)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()

	engine, err := core.NewEngine(disk, core.Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Sanity: the store works before the failure.
	q := core.Query{
		Locations: []roadnet.VertexID{3, 17},
		Keywords:  mem.Keywords(5),
		Lambda:    0.5,
		K:         5,
	}
	win := core.TimeWindow{From: 0, To: 24*3600 - 1}
	if _, _, err := engine.SearchWindowed(q, win); err != nil {
		t.Fatalf("pre-failure windowed search: %v", err)
	}

	// The device fails: the payload region disappears out from under the
	// open store. The index (already in memory) still points into it.
	if err := os.Truncate(path, 64); err != nil {
		t.Fatal(err)
	}

	// The windowed search loads every candidate's record for its start
	// time, so it must hit the dead region.
	res, _, err := engine.SearchWindowed(q, win)
	if err == nil {
		t.Fatal("windowed search over a truncated store succeeded")
	}
	if !errors.Is(err, core.ErrStoreFault) {
		t.Errorf("err %v does not wrap core.ErrStoreFault", err)
	}
	var se *trajdb.StoreError
	if !errors.As(err, &se) {
		t.Errorf("err %v does not carry a *trajdb.StoreError", err)
	} else if se.Op != "read" && se.Op != "decode" {
		t.Errorf("StoreError op = %q, want read or decode", se.Op)
	}
	if res != nil {
		t.Errorf("got %d results alongside the store fault", len(res))
	}

	// Raw store access outside an engine call still panics by contract;
	// confirm the payload is a typed StoreError so callers can recover it.
	func() {
		defer func() {
			rec := recover()
			if rec == nil {
				t.Error("raw Traj on a truncated store did not panic")
				return
			}
			if _, ok := rec.(*trajdb.StoreError); !ok {
				t.Errorf("raw panic payload %T, want *trajdb.StoreError", rec)
			}
		}()
		disk.Traj(42)
	}()
}
