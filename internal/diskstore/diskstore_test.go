package diskstore

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// testWorld builds an in-memory store and its disk twin.
func testWorld(t *testing.T, cacheBytes int) (*trajdb.Store, *Store) {
	t.Helper()
	g := roadnet.BRNLike(0.1, 5)
	vocab := textual.GenerateVocab(5, 25, 1.0, 3)
	mem, err := trajdb.Generate(g, trajdb.GenOptions{
		Count: 500, MeanSamples: 15, Vocab: vocab, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "world.dsk")
	if err := Create(path, mem); err != nil {
		t.Fatal(err)
	}
	disk, err := Open(path, g, cacheBytes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { disk.Close() })
	return mem, disk
}

func TestDiskMirrorsMemory(t *testing.T) {
	mem, disk := testWorld(t, 0)
	if disk.NumTrajectories() != mem.NumTrajectories() {
		t.Fatalf("counts: %d vs %d", disk.NumTrajectories(), mem.NumTrajectories())
	}
	if disk.Vocab().Size() != mem.Vocab().Size() {
		t.Fatalf("vocab sizes differ")
	}
	for id := 0; id < mem.NumTrajectories(); id++ {
		tid := trajdb.TrajID(id)
		mt, dt := mem.Traj(tid), disk.Traj(tid)
		if mt.Len() != dt.Len() {
			t.Fatalf("traj %d length", id)
		}
		for i := range mt.Samples {
			if mt.Samples[i] != dt.Samples[i] {
				t.Fatalf("traj %d sample %d", id, i)
			}
		}
		if len(mem.Keywords(tid)) != len(disk.Keywords(tid)) {
			t.Fatalf("traj %d keywords", id)
		}
		mu, du := mem.UniqueVertices(tid), disk.UniqueVertices(tid)
		if len(mu) != len(du) {
			t.Fatalf("traj %d unique vertices", id)
		}
		for i := range mu {
			if mu[i] != du[i] {
				t.Fatalf("traj %d unique vertex %d", id, i)
			}
		}
		if mem.BBox(tid) != disk.BBox(tid) {
			t.Fatalf("traj %d bbox", id)
		}
		if mem.Traj(tid).Start() != disk.StartTime(tid) {
			t.Fatalf("traj %d start time", id)
		}
	}
	// Vertex inverted lists must agree everywhere.
	for v := 0; v < mem.Graph().NumVertices(); v++ {
		ml := mem.TrajsAtVertex(roadnet.VertexID(v))
		dl := disk.TrajsAtVertex(roadnet.VertexID(v))
		if len(ml) != len(dl) {
			t.Fatalf("vertex %d list lengths", v)
		}
		for i := range ml {
			if ml[i] != dl[i] {
				t.Fatalf("vertex %d list entry %d", v, i)
			}
		}
	}
	// ContainsVertex spot checks.
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 300; trial++ {
		tid := trajdb.TrajID(rng.IntN(mem.NumTrajectories()))
		v := roadnet.VertexID(rng.IntN(mem.Graph().NumVertices()))
		if mem.ContainsVertex(tid, v) != disk.ContainsVertex(tid, v) {
			t.Fatalf("ContainsVertex(%d, %d) disagrees", tid, v)
		}
	}
}

func TestDiskEngineMatchesMemoryEngine(t *testing.T) {
	mem, disk := testWorld(t, 0)
	memEngine, err := core.NewEngine(mem, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	diskEngine, err := core.NewEngine(disk, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 8; trial++ {
		locs := make([]roadnet.VertexID, 1+rng.IntN(4))
		for i := range locs {
			locs[i] = roadnet.VertexID(rng.IntN(mem.Graph().NumVertices()))
		}
		q := core.Query{
			Locations: locs,
			Keywords:  mem.Keywords(trajdb.TrajID(rng.IntN(mem.NumTrajectories()))),
			Lambda:    float64(rng.IntN(11)) / 10,
			K:         1 + rng.IntN(6),
		}
		want, _, err := memEngine.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := diskEngine.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Score != want[i].Score {
				t.Fatalf("trial %d rank %d: %g vs %g", trial, i, got[i].Score, want[i].Score)
			}
		}
	}
}

func TestCacheEvictionAndStats(t *testing.T) {
	// A budget that holds only a handful of records forces evictions.
	_, disk := testWorld(t, 2048)
	for id := 0; id < disk.NumTrajectories(); id++ {
		disk.Traj(trajdb.TrajID(id))
	}
	st := disk.Stats()
	if st.Loads != int64(disk.NumTrajectories()) {
		t.Errorf("loads = %d", st.Loads)
	}
	if st.Misses == 0 || st.Evictions == 0 {
		t.Errorf("tiny cache should evict: %+v", st)
	}
	if st.BytesRead == 0 {
		t.Error("no bytes read recorded")
	}
	// Re-reading the most recent record must hit.
	last := trajdb.TrajID(disk.NumTrajectories() - 1)
	before := disk.Stats().Hits
	disk.Traj(last)
	if disk.Stats().Hits != before+1 {
		t.Error("most-recent record should be a cache hit")
	}
}

func TestCacheHitRateWithGenerousBudget(t *testing.T) {
	_, disk := testWorld(t, 0) // default: everything fits
	for pass := 0; pass < 3; pass++ {
		for id := 0; id < disk.NumTrajectories(); id++ {
			disk.Traj(trajdb.TrajID(id))
		}
	}
	st := disk.Stats()
	if st.Misses != int64(disk.NumTrajectories()) {
		t.Errorf("misses = %d, want one per record", st.Misses)
	}
	if st.Evictions != 0 {
		t.Errorf("evictions = %d with a generous budget", st.Evictions)
	}
}

func TestConcurrentLoads(t *testing.T) {
	mem, disk := testWorld(t, 4096)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, seed+1))
			for i := 0; i < 500; i++ {
				tid := trajdb.TrajID(rng.IntN(disk.NumTrajectories()))
				dt := disk.Traj(tid)
				if dt.Len() != mem.Traj(tid).Len() {
					t.Errorf("traj %d length under concurrency", tid)
					return
				}
			}
		}(uint64(w))
	}
	wg.Wait()
}

func TestOpenRejectsGarbage(t *testing.T) {
	g := roadnet.BRNLike(0.05, 1)
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.dsk")
	if err := writeFile(bad, []byte("definitely not a store")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(bad, g, 0); err == nil {
		t.Error("garbage file accepted")
	}
	if _, err := Open(filepath.Join(dir, "missing.dsk"), g, 0); err == nil {
		t.Error("missing file accepted")
	}
	// Truncated: magic only.
	trunc := filepath.Join(dir, "trunc.dsk")
	if err := writeFile(trunc, []byte(storeMagic)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(trunc, g, 0); err == nil {
		t.Error("truncated file accepted")
	}
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}
