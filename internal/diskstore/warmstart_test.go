package diskstore

import (
	"math/rand/v2"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"uots/internal/core"
	"uots/internal/index"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// openTwice creates a disk store and opens it once with the sidecar in
// place and once with it removed, returning (warm, cold).
func openTwice(t *testing.T) (*trajdb.Store, *Store, *Store) {
	t.Helper()
	g := roadnet.BRNLike(0.1, 5)
	vocab := textual.GenerateVocab(5, 25, 1.0, 3)
	mem, err := trajdb.Generate(g, trajdb.GenOptions{
		Count: 120, MeanSamples: 15, Vocab: vocab, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "world.dsk")
	if err := Create(path, mem); err != nil {
		t.Fatal(err)
	}
	warm, err := Open(path, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { warm.Close() })
	if err := os.Remove(index.SidecarPath(path)); err != nil {
		t.Fatal(err)
	}
	cold, err := Open(path, g, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cold.Close() })
	return mem, warm, cold
}

// TestWarmStartMatchesColdScan: Create writes the sidecar, a fresh Open
// adopts it without the rebuild scan, and every memory-resident index
// the sidecar restores is identical to what the scan would have built.
func TestWarmStartMatchesColdScan(t *testing.T) {
	mem, warm, cold := openTwice(t)
	if !warm.WarmStart() {
		t.Fatal("Open did not adopt the sidecar Create just wrote")
	}
	if cold.WarmStart() {
		t.Fatal("Open claims a warm start with the sidecar deleted")
	}
	if !reflect.DeepEqual(warm.vertexIx, cold.vertexIx) {
		t.Error("warm vertex index differs from rebuild scan")
	}
	if !reflect.DeepEqual(warm.bboxes, cold.bboxes) {
		t.Error("warm bounding boxes differ from rebuild scan")
	}
	if !reflect.DeepEqual(warm.starts, cold.starts) {
		t.Error("warm start times differ from rebuild scan")
	}
	if !reflect.DeepEqual(warm.docTerms, cold.docTerms) {
		t.Error("warm doc terms differ from rebuild scan")
	}
	for term := 0; term < mem.Vocab().Size(); term++ {
		if w, c := warm.TextIndex().DocFreq(textual.TermID(term)), cold.TextIndex().DocFreq(textual.TermID(term)); w != c {
			t.Fatalf("doc frequency of term %d: warm %d, cold %d", term, w, c)
		}
	}
	// Behavioral check: a warm-started engine answers like the in-memory
	// engine (record payloads still come off disk either way).
	memEng, err := core.NewEngine(mem, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmEng, err := core.NewEngine(warm, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(4, 0))
	for i := 0; i < 5; i++ {
		q := core.Query{
			Locations: []roadnet.VertexID{
				roadnet.VertexID(rng.IntN(mem.Graph().NumVertices())),
				roadnet.VertexID(rng.IntN(mem.Graph().NumVertices())),
			},
			Keywords: textual.TermSet{textual.TermID(rng.IntN(mem.Vocab().Size()))},
			Lambda:   0.5,
			K:        5,
		}
		want, _, err := memEng.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := warmEng.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: warm-start engine diverges from memory engine\ngot  %+v\nwant %+v", i, got, want)
		}
	}
}

// TestDamagedSidecarFallsBackToScan: a corrupt or stale sidecar must
// never fail the open or change behavior — it only costs the scan.
func TestDamagedSidecarFallsBackToScan(t *testing.T) {
	g := roadnet.BRNLike(0.1, 5)
	vocab := textual.GenerateVocab(5, 25, 1.0, 3)
	mem, err := trajdb.Generate(g, trajdb.GenOptions{
		Count: 60, MeanSamples: 10, Vocab: vocab, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "world.dsk")
	if err := Create(path, mem); err != nil {
		t.Fatal(err)
	}
	scPath := index.SidecarPath(path)

	corrupt := func(t *testing.T, mutate func([]byte) []byte) {
		t.Helper()
		raw, err := os.ReadFile(scPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(scPath, mutate(raw), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"garbage", func([]byte) []byte { return []byte("not a sidecar at all") }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"stale fingerprint", func(b []byte) []byte {
			// Flip a record-count byte so Matches rejects it.
			b = append([]byte(nil), b...)
			b[len("UOTSIDX1")] ^= 0x01
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			corrupt(t, tc.mutate)
			s, err := Open(path, g, 0)
			if err != nil {
				t.Fatalf("damaged sidecar failed the open: %v", err)
			}
			defer s.Close()
			if s.WarmStart() {
				t.Error("damaged sidecar was adopted as a warm start")
			}
			if s.NumTrajectories() != mem.NumTrajectories() {
				t.Errorf("fallback store has %d trajectories, want %d",
					s.NumTrajectories(), mem.NumTrajectories())
			}
		})
	}
}
