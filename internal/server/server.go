// Package server exposes a trajectory-search engine as a JSON HTTP API —
// the deployment surface a trip-recommendation service would put in front
// of the library. Handlers are plain net/http and fully covered by
// httptest-based tests; cmd/uotsserve wires them to a listener.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"uots/internal/core"
	"uots/internal/geo"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// Server serves search requests over one engine. Create with New and
// mount via Handler.
type Server struct {
	engine *core.Engine
	graph  *roadnet.Graph
	vocab  *textual.Vocab
	index  *roadnet.VertexIndex
	mux    *http.ServeMux
}

// New creates a server over engine. vocab translates request keywords
// (nil disables textual queries); idx snaps coordinate-based locations
// (nil builds a fresh index).
func New(engine *core.Engine, vocab *textual.Vocab, idx *roadnet.VertexIndex) *Server {
	g := engine.Store().Graph()
	if idx == nil {
		idx = roadnet.NewVertexIndex(g, 0)
	}
	s := &Server{engine: engine, graph: g, vocab: vocab, index: idx, mux: http.NewServeMux()}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /search", s.handleSearch)
	s.mux.HandleFunc("POST /batch", s.handleBatch)
	s.mux.HandleFunc("GET /trajectory/{id}", s.handleTrajectory)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SearchRequest is the POST /search body. Locations may be given as
// vertex IDs, as planar coordinates to snap, or mixed.
type SearchRequest struct {
	// VertexIDs are network vertices to visit (optional).
	VertexIDs []int32 `json:"vertexIds,omitempty"`
	// Points are planar coordinates (km) snapped to the nearest vertices
	// (optional).
	Points [][2]float64 `json:"points,omitempty"`
	// Keywords is the free-text travel intention (tokenized server-side).
	Keywords string `json:"keywords,omitempty"`
	// Lambda is the spatial/textual preference in [0,1] (default 0.5).
	Lambda *float64 `json:"lambda,omitempty"`
	// K is the number of results (default 5).
	K int `json:"k,omitempty"`
	// Algorithm selects expansion (default), exhaustive or textfirst.
	Algorithm string `json:"algorithm,omitempty"`
	// Window optionally restricts departure times ("HH:MM-HH:MM").
	Window string `json:"window,omitempty"`
	// OrderAware switches to itinerary-order matching.
	OrderAware bool `json:"orderAware,omitempty"`
}

// SearchResponse is the POST /search reply.
type SearchResponse struct {
	Results []ResultJSON `json:"results"`
	Stats   StatsJSON    `json:"stats"`
}

// ResultJSON is one recommended trajectory.
type ResultJSON struct {
	Trajectory int32     `json:"trajectory"`
	Score      float64   `json:"score"`
	Spatial    float64   `json:"spatial"`
	Textual    float64   `json:"textual"`
	DistsKm    []float64 `json:"distsKm"`
	Departs    string    `json:"departs"`
	Samples    int       `json:"samples"`
	Keywords   []string  `json:"keywords,omitempty"`
}

// StatsJSON summarizes the work a query performed.
type StatsJSON struct {
	ElapsedMs           float64 `json:"elapsedMs"`
	VisitedTrajectories int     `json:"visitedTrajectories"`
	Candidates          int     `json:"candidates"`
	EarlyTerminated     bool    `json:"earlyTerminated"`
}

type errorJSON struct {
	Error string `json:"error"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.engine.Store()
	resp := map[string]any{
		"vertices":     s.graph.NumVertices(),
		"edges":        s.graph.NumEdges(),
		"trajectories": st.NumTrajectories(),
	}
	if v := s.vocab; v != nil {
		resp["vocabulary"] = v.Size()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	var id int32
	if _, err := fmt.Sscanf(r.PathValue("id"), "%d", &id); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"bad trajectory id"})
		return
	}
	st := s.engine.Store()
	if id < 0 || int(id) >= st.NumTrajectories() {
		writeJSON(w, http.StatusNotFound, errorJSON{"trajectory not found"})
		return
	}
	t := st.Traj(trajdb.TrajID(id))
	type sampleJSON struct {
		Vertex int32      `json:"vertex"`
		Point  [2]float64 `json:"point"`
		Time   string     `json:"time"`
	}
	samples := make([]sampleJSON, t.Len())
	for i, smp := range t.Samples {
		p := s.graph.Point(smp.V)
		samples[i] = sampleJSON{
			Vertex: int32(smp.V),
			Point:  [2]float64{p.X, p.Y},
			Time:   clock(smp.T),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       id,
		"samples":  samples,
		"keywords": s.keywordNames(trajdb.TrajID(id)),
	})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"bad request body: " + err.Error()})
		return
	}
	q, status, err := s.buildQuery(req)
	if err != nil {
		writeJSON(w, status, errorJSON{err.Error()})
		return
	}

	var results []core.Result
	var stats core.SearchStats
	switch strings.ToLower(req.Algorithm) {
	case "", "expansion":
		switch {
		case req.OrderAware:
			results, stats, err = s.engine.OrderAwareSearch(q)
		case req.Window != "":
			var win core.TimeWindow
			win, err = parseWindow(req.Window)
			if err == nil {
				results, stats, err = s.engine.SearchWindowed(q, win)
			}
		default:
			results, stats, err = s.engine.Search(q)
		}
	case "exhaustive":
		results, stats, err = s.engine.ExhaustiveSearch(q)
	case "textfirst":
		results, stats, err = s.engine.TextFirstSearch(q, core.TextFirstOptions{})
	default:
		err = fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
		return
	}

	resp := SearchResponse{
		Results: make([]ResultJSON, len(results)),
		Stats: StatsJSON{
			ElapsedMs:           float64(stats.Elapsed.Microseconds()) / 1000,
			VisitedTrajectories: stats.VisitedTrajectories,
			Candidates:          stats.Candidates,
			EarlyTerminated:     stats.EarlyTerminated,
		},
	}
	st := s.engine.Store()
	for i, res := range results {
		t := st.Traj(res.Traj)
		resp.Results[i] = ResultJSON{
			Trajectory: int32(res.Traj),
			Score:      res.Score,
			Spatial:    res.Spatial,
			Textual:    res.Textual,
			DistsKm:    res.Dists,
			Departs:    clock(t.Start()),
			Samples:    t.Len(),
			Keywords:   s.keywordNames(res.Traj),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// BatchRequest is the POST /batch body: many independent searches
// answered concurrently by the engine's worker pool.
type BatchRequest struct {
	Queries []SearchRequest `json:"queries"`
	// Workers sizes the goroutine pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
}

// BatchResponse is the POST /batch reply; Responses align with the
// request's Queries, and failed entries carry Error instead of Results.
type BatchResponse struct {
	Responses   []BatchEntry `json:"responses"`
	WallClockMs float64      `json:"wallClockMs"`
}

// BatchEntry is one query's outcome within a batch.
type BatchEntry struct {
	Results []ResultJSON `json:"results,omitempty"`
	Stats   *StatsJSON   `json:"stats,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// maxBatchQueries bounds one /batch request.
const maxBatchQueries = 1024

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"bad request body: " + err.Error()})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{"batch needs at least one query"})
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeJSON(w, http.StatusBadRequest,
			errorJSON{fmt.Sprintf("batch of %d exceeds the %d-query limit", len(req.Queries), maxBatchQueries)})
		return
	}
	resp := BatchResponse{Responses: make([]BatchEntry, len(req.Queries))}
	queries := make([]core.Query, len(req.Queries))
	valid := make([]bool, len(req.Queries))
	for i, sr := range req.Queries {
		q, _, err := s.buildQuery(sr)
		if err != nil {
			resp.Responses[i].Error = err.Error()
			continue
		}
		queries[i] = q
		valid[i] = true
	}
	// Run only the valid subset through the batch engine, preserving
	// positions.
	idx := make([]int, 0, len(queries))
	live := make([]core.Query, 0, len(queries))
	for i, ok := range valid {
		if ok {
			idx = append(idx, i)
			live = append(live, queries[i])
		}
	}
	out, stats, err := s.engine.SearchBatch(r.Context(), live, core.BatchOptions{Workers: req.Workers})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, errorJSON{err.Error()})
		return
	}
	st := s.engine.Store()
	for j, o := range out {
		entry := &resp.Responses[idx[j]]
		if o.Err != nil {
			entry.Error = o.Err.Error()
			continue
		}
		entry.Stats = &StatsJSON{
			ElapsedMs:           float64(o.Stats.Elapsed.Microseconds()) / 1000,
			VisitedTrajectories: o.Stats.VisitedTrajectories,
			Candidates:          o.Stats.Candidates,
			EarlyTerminated:     o.Stats.EarlyTerminated,
		}
		entry.Results = make([]ResultJSON, len(o.Results))
		for k, res := range o.Results {
			t := st.Traj(res.Traj)
			entry.Results[k] = ResultJSON{
				Trajectory: int32(res.Traj),
				Score:      res.Score,
				Spatial:    res.Spatial,
				Textual:    res.Textual,
				DistsKm:    res.Dists,
				Departs:    clock(t.Start()),
				Samples:    t.Len(),
				Keywords:   s.keywordNames(res.Traj),
			}
		}
	}
	resp.WallClockMs = float64(stats.WallClock.Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// buildQuery validates and assembles the engine query from a request.
func (s *Server) buildQuery(req SearchRequest) (core.Query, int, error) {
	q := core.Query{Lambda: 0.5, K: req.K}
	if req.Lambda != nil {
		q.Lambda = *req.Lambda
	}
	if q.K == 0 {
		q.K = 5
	}
	for _, id := range req.VertexIDs {
		if id < 0 || int(id) >= s.graph.NumVertices() {
			return q, http.StatusBadRequest, fmt.Errorf("vertex %d outside the network", id)
		}
		q.Locations = append(q.Locations, roadnet.VertexID(id))
	}
	for _, p := range req.Points {
		v, _ := s.index.Nearest(geo.Point{X: p[0], Y: p[1]})
		if v < 0 {
			return q, http.StatusBadRequest, fmt.Errorf("cannot snap point (%g, %g)", p[0], p[1])
		}
		q.Locations = append(q.Locations, v)
	}
	if len(q.Locations) == 0 {
		return q, http.StatusBadRequest, errors.New("request needs vertexIds or points")
	}
	if req.Keywords != "" {
		if s.vocab == nil {
			return q, http.StatusBadRequest, errors.New("this dataset has no vocabulary; keywords unsupported")
		}
		q.Keywords = s.vocab.InternAll(textual.Tokenize(req.Keywords))
	}
	return q, http.StatusOK, nil
}

func (s *Server) keywordNames(id trajdb.TrajID) []string {
	if s.vocab == nil {
		return nil
	}
	var names []string
	for _, term := range s.engine.Store().Keywords(id) {
		if name, ok := s.vocab.Term(term); ok {
			names = append(names, name)
		}
	}
	return names
}

func parseWindow(sw string) (core.TimeWindow, error) {
	parts := strings.Split(sw, "-")
	if len(parts) != 2 {
		return core.TimeWindow{}, fmt.Errorf("bad window %q (want HH:MM-HH:MM)", sw)
	}
	from, err := parseClock(parts[0])
	if err != nil {
		return core.TimeWindow{}, err
	}
	to, err := parseClock(parts[1])
	if err != nil {
		return core.TimeWindow{}, err
	}
	return core.TimeWindow{From: from, To: to}, nil
}

func parseClock(sc string) (float64, error) {
	var h, m int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc), "%d:%d", &h, &m); err != nil {
		return 0, fmt.Errorf("bad time %q (want HH:MM)", sc)
	}
	if h < 0 || h > 23 || m < 0 || m > 59 {
		return 0, fmt.Errorf("time %q out of range", sc)
	}
	return float64(h*3600 + m*60), nil
}

func clock(seconds float64) string {
	sec := int(seconds)
	return fmt.Sprintf("%02d:%02d", sec/3600, sec%3600/60)
}

// writeJSON writes v with the given status, logging nothing: handlers are
// pure functions of the request for testability.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

// ListenAndServe runs the server on addr until the listener fails.
// Exposed for cmd/uotsserve; tests use Handler with httptest.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}
