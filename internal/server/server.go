// Package server exposes a trajectory-search engine as a JSON HTTP API —
// the deployment surface a trip-recommendation service would put in front
// of the library. Handlers are plain net/http and fully covered by
// httptest-based tests; cmd/uotsserve wires them to a listener.
//
// The serving layer is hardened for production traffic: every search
// request runs under an optional deadline (503 "deadline_exceeded" on
// expiry), concurrency is capped by a weighted semaphore that sheds excess
// load (429 "overloaded"), request bodies are size-capped
// (413 "body_too_large"), handler panics become 500s instead of killing
// the process, and a client that disconnects mid-search cancels the
// engine's expansion within one poll interval (499 "client_closed_request"
// is recorded on the server side). Error bodies always carry a
// machine-readable "code" next to the human-readable "error".
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uots/internal/core"
	"uots/internal/geo"
	"uots/internal/ingest"
	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// DefaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is 0.
const DefaultMaxBodyBytes = 8 << 20

// batchWeight is the semaphore weight of one /batch request: a batch fans
// out to an engine worker pool, so it consumes several search slots.
const batchWeight = 4

// statusClientClosedRequest is the nginx convention for "client closed
// the connection before the response was ready"; net/http has no name
// for it. The response never reaches the client — it exists for logs,
// tests, and proxies.
const statusClientClosedRequest = 499

// Machine-readable error codes carried in every error body.
const (
	codeBadRequest   = "bad_request"
	codeNotFound     = "not_found"
	codeOverloaded   = "overloaded"
	codeDeadline     = "deadline_exceeded"
	codeCanceled     = "client_closed_request"
	codeBodyTooLarge = "body_too_large"
	codeStoreFailure = "store_failure"
	codeInternal     = "internal_error"
	codeUnavailable  = "unavailable"
	codeDraining     = "draining"
)

// SearchBackend runs the default (expansion) search variants a /search
// request dispatches plus the /batch path. core.Engine satisfies it, as
// does shard.Engine — wiring a sharded backend through Config.Searcher
// scales the default algorithm out without touching the handlers, and
// batches then scatter whole to every shard so the shared-expansion
// planner shares frontiers per shard. The explicit exhaustive and
// textfirst algorithms always run on the monolithic engine: they are
// baselines and diagnostics, not the serving path.
type SearchBackend interface {
	SearchCtx(ctx context.Context, q core.Query) ([]core.Result, core.SearchStats, error)
	SearchThresholdCtx(ctx context.Context, q core.Query, theta float64) ([]core.Result, core.SearchStats, error)
	SearchWindowedCtx(ctx context.Context, q core.Query, w core.TimeWindow) ([]core.Result, core.SearchStats, error)
	OrderAwareSearchCtx(ctx context.Context, q core.Query) ([]core.Result, core.SearchStats, error)
	DiversifiedSearchCtx(ctx context.Context, q core.Query, opts core.DiversifyOptions) ([]core.Result, core.SearchStats, error)
	SearchBatch(ctx context.Context, queries []core.Query, opts core.BatchOptions) ([]core.BatchResult, core.BatchStats, error)
}

var _ SearchBackend = (*core.Engine)(nil)

// Config tunes the serving hardening. The zero value disables deadlines
// and load shedding and uses DefaultMaxBodyBytes.
type Config struct {
	// Timeout bounds each search request's engine work (0 = no deadline).
	// On expiry the response is 503 with code "deadline_exceeded".
	Timeout time.Duration
	// MaxInFlight caps concurrently served search weight (/search and
	// /trajectory count 1, /batch counts batchWeight). 0 = unlimited.
	// Saturated requests are shed with 429, code "overloaded".
	MaxInFlight int
	// MaxBodyBytes caps request bodies (0 = DefaultMaxBodyBytes).
	// Oversized bodies get 413, code "body_too_large".
	MaxBodyBytes int64
	// Metrics receives the server's instruments. nil creates a private
	// registry; share one to co-locate several servers' metrics or to
	// scrape from a separate debug listener.
	Metrics *obs.Registry
	// TraceDepth bounds how many recent request traces /debug/trace
	// retains (0 = obs.DefaultTraceDepth).
	TraceDepth int
	// SlowQueryThreshold enables the always-on slow-query flight
	// recorder: every /search and /batch request runs traced (no X-Trace
	// header needed), and requests whose wall clock reaches the
	// threshold keep their spans in a bounded ring served by
	// GET /debug/slow. Zero disables the recorder and its hidden
	// tracing overhead.
	SlowQueryThreshold time.Duration
	// SlowQueryDepth bounds how many slow queries the flight recorder
	// retains, oldest evicted first (0 = obs.DefaultSlowQueryDepth).
	SlowQueryDepth int
	// Logger receives one access-log line per request, tagged with the
	// request ID. nil disables request logging (the default, keeping
	// handlers quiet under test).
	Logger *log.Logger
	// Searcher, when non-nil, serves the default-algorithm /search
	// variants instead of the engine itself (e.g. a shard.Engine). The
	// engine still backs /trajectory, /stats, /batch and the explicit
	// baseline algorithms. Mutually exclusive with Live.
	Searcher SearchBackend
	// Live, when non-nil, turns on the write path: POST /trajectories
	// and GET /ingest/stats are mounted, and every read request resolves
	// its engine from the ingest service's MVCC snapshot cache instead
	// of the fixed boot engine — a request pins one immutable snapshot
	// generation for its whole lifetime, so concurrent ingest never
	// blocks or tears it. The engine argument to NewWithConfig may be
	// nil in this mode (an empty store answers reads with 503
	// "unavailable" until the first commit).
	Live *ingest.Service
}

// Server serves search requests over one engine. Create with New or
// NewWithConfig and mount via Handler.
type Server struct {
	engine  *core.Engine
	backend SearchBackend   // serves the default-algorithm /search variants
	live    *ingest.Service // non-nil in live-ingest mode (engine resolved per request)
	graph   *roadnet.Graph
	vocab   *textual.Vocab
	index   *roadnet.VertexIndex
	mux     *http.ServeMux

	cfg Config
	sem *semaphore // nil when MaxInFlight is 0

	registry     *obs.Registry
	metrics      *serverMetrics
	traceMetrics *obs.TraceMetrics
	traces       *obs.TraceStore
	slow         *obs.SlowRecorder // nil when SlowQueryThreshold is 0
	logger       *log.Logger
}

// New creates a server over engine with a zero Config. vocab translates
// request keywords (nil disables textual queries); idx snaps
// coordinate-based locations (nil builds a fresh index).
func New(engine *core.Engine, vocab *textual.Vocab, idx *roadnet.VertexIndex) *Server {
	return NewWithConfig(engine, vocab, idx, Config{})
}

// NewWithConfig creates a server with explicit hardening configuration.
// engine may be nil only when cfg.Live is set (the live store may still
// be empty at boot; engines are then resolved per request).
func NewWithConfig(engine *core.Engine, vocab *textual.Vocab, idx *roadnet.VertexIndex, cfg Config) *Server {
	var g *roadnet.Graph
	if cfg.Live != nil {
		g = cfg.Live.Store().Graph()
	} else {
		g = engine.Store().Graph()
	}
	if idx == nil {
		idx = roadnet.NewVertexIndex(g, 0)
	}
	s := &Server{engine: engine, backend: cfg.Searcher, live: cfg.Live, graph: g, vocab: vocab, index: idx, mux: http.NewServeMux(), cfg: cfg}
	if s.backend == nil {
		s.backend = engine
	}
	if cfg.MaxInFlight > 0 {
		s.sem = newSemaphore(int64(cfg.MaxInFlight))
	}
	s.registry = cfg.Metrics
	if s.registry == nil {
		s.registry = obs.NewRegistry()
	}
	s.metrics = newServerMetrics(s.registry)
	s.traceMetrics = obs.NewTraceMetrics(s.registry)
	s.traces = obs.NewTraceStore(cfg.TraceDepth)
	s.slow = obs.NewSlowRecorder(cfg.SlowQueryThreshold, cfg.SlowQueryDepth)
	s.logger = cfg.Logger
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.Handle("GET /metrics", s.registry.Handler())
	s.mux.HandleFunc("GET /debug/trace/{id}", s.handleDebugTrace)
	s.mux.HandleFunc("GET /debug/slow", s.handleDebugSlow)
	s.mux.HandleFunc("POST /search", s.guarded(1, s.handleSearch))
	s.mux.HandleFunc("POST /batch", s.guarded(batchWeight, s.handleBatch))
	s.mux.HandleFunc("GET /trajectory/{id}", s.guarded(1, s.handleTrajectory))
	if s.live != nil {
		s.mux.HandleFunc("POST /trajectories", s.guarded(1, s.handleIngest))
		s.mux.HandleFunc("GET /ingest/stats", s.handleIngestStats)
	}
	return s
}

// resolve pins the request to one engine and search backend. In live
// mode the engine comes from the ingest service's generation-keyed
// cache: the snapshot under it is immutable, so everything the request
// reads through it — results, trajectory payloads, keyword names — is
// one consistent point-in-time view no matter how much is ingested
// meanwhile. Without Live it returns the fixed boot engine/backend.
func (s *Server) resolve() (*core.Engine, SearchBackend, error) {
	if s.live == nil {
		return s.engine, s.backend, nil
	}
	eng, _, err := s.live.Engine()
	if err != nil {
		return nil, nil, err
	}
	return eng, eng, nil
}

// writeResolveError answers a request whose engine could not be built —
// in practice an empty live store before the first commit.
func writeResolveError(w http.ResponseWriter, r *http.Request, err error) {
	if errors.Is(err, core.ErrEmptyStore) {
		writeError(w, r, http.StatusServiceUnavailable, codeUnavailable,
			"no trajectories ingested yet; retry after the first commit")
		return
	}
	writeError(w, r, http.StatusInternalServerError, codeInternal, err.Error())
}

// Handler returns the server's HTTP handler: the route mux wrapped in the
// instrumentation, panic-recovery, and body-cap middleware. Liveness,
// stats, metrics, and trace replay stay outside the load-shedding guard so
// the server remains observable under saturation; instrumentation sits
// outermost so even shed and panicking requests are counted and carry a
// request ID.
func (s *Server) Handler() http.Handler {
	return s.instrument(s.recoverPanics(s.capBody(s.mux)))
}

// recoverPanics converts handler panics into 500 responses instead of
// letting one bad request kill the whole process. Store faults escaping a
// raw store access (outside an engine call) keep their specific code.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler { // net/http's own control flow
				panic(rec)
			}
			s.metrics.panics.Inc()
			if se, ok := rec.(*trajdb.StoreError); ok {
				writeError(w, r, http.StatusInternalServerError, codeStoreFailure, "storage failure: "+se.Error())
				return
			}
			writeError(w, r, http.StatusInternalServerError, codeInternal, fmt.Sprintf("internal error: %v", rec))
		}()
		next.ServeHTTP(w, r)
	})
}

// capBody bounds every request body; json decoding surfaces the cap as an
// *http.MaxBytesError, answered with 413.
func (s *Server) capBody(next http.Handler) http.Handler {
	limit := s.cfg.MaxBodyBytes
	if limit <= 0 {
		limit = DefaultMaxBodyBytes
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, limit)
		}
		next.ServeHTTP(w, r)
	})
}

// guarded wraps a search handler with load shedding and the per-request
// deadline. weight is the request's cost against Config.MaxInFlight.
func (s *Server) guarded(weight int64, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.sem != nil {
			granted, ok := s.sem.acquire(weight)
			if !ok {
				s.metrics.shed.Inc()
				writeError(w, r, http.StatusTooManyRequests, codeOverloaded,
					fmt.Sprintf("server at capacity (%d in-flight units); retry later", s.cfg.MaxInFlight))
				return
			}
			defer s.sem.release(granted)
		}
		if s.cfg.Timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// SearchRequest is the POST /search body. Locations may be given as
// vertex IDs, as planar coordinates to snap, or mixed.
type SearchRequest struct {
	// VertexIDs are network vertices to visit (optional).
	VertexIDs []int32 `json:"vertexIds,omitempty"`
	// Points are planar coordinates (km) snapped to the nearest vertices
	// (optional).
	Points [][2]float64 `json:"points,omitempty"`
	// Keywords is the free-text travel intention (tokenized server-side).
	Keywords string `json:"keywords,omitempty"`
	// Lambda is the spatial/textual preference in [0,1] (default 0.5).
	Lambda *float64 `json:"lambda,omitempty"`
	// K is the number of results (default 5).
	K int `json:"k,omitempty"`
	// Algorithm selects expansion (default), exhaustive or textfirst.
	Algorithm string `json:"algorithm,omitempty"`
	// Window optionally restricts departure times ("HH:MM-HH:MM").
	Window string `json:"window,omitempty"`
	// OrderAware switches to itinerary-order matching.
	OrderAware bool `json:"orderAware,omitempty"`
	// Theta switches to the threshold variant: every trajectory scoring
	// at least theta, best first (k is ignored).
	Theta *float64 `json:"theta,omitempty"`
	// DiversifyMu switches to the diversified variant with the given
	// relevance/diversity trade-off in [0,1].
	DiversifyMu *float64 `json:"diversifyMu,omitempty"`
}

// SearchResponse is the POST /search reply.
type SearchResponse struct {
	Results []ResultJSON `json:"results"`
	Stats   StatsJSON    `json:"stats"`
}

// ResultJSON is one recommended trajectory.
type ResultJSON struct {
	Trajectory int32     `json:"trajectory"`
	Score      float64   `json:"score"`
	Spatial    float64   `json:"spatial"`
	Textual    float64   `json:"textual"`
	DistsKm    []float64 `json:"distsKm"`
	Departs    string    `json:"departs"`
	Samples    int       `json:"samples"`
	Keywords   []string  `json:"keywords,omitempty"`
}

// StatsJSON summarizes the work a query performed.
type StatsJSON struct {
	ElapsedMs           float64 `json:"elapsedMs"`
	VisitedTrajectories int     `json:"visitedTrajectories"`
	Candidates          int     `json:"candidates"`
	EarlyTerminated     bool    `json:"earlyTerminated"`
}

type errorJSON struct {
	Error     string `json:"error"`
	Code      string `json:"code,omitempty"`
	RequestID string `json:"requestId,omitempty"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	// In live mode the count comes straight from the dynamic store —
	// no snapshot build, so /stats stays cheap and accurate mid-burst.
	var numTrajs int
	if s.live != nil {
		numTrajs = s.live.Store().Len()
	} else {
		numTrajs = s.engine.Store().NumTrajectories()
	}
	var inFlight int64
	if s.sem != nil {
		inFlight = s.sem.inFlight()
	}
	m := s.metrics
	resp := map[string]any{
		"vertices":     s.graph.NumVertices(),
		"edges":        s.graph.NumEdges(),
		"trajectories": numTrajs,
		"serving": map[string]any{
			"inFlight":             inFlight,
			"maxInFlight":          s.cfg.MaxInFlight,
			"shedTotal":            m.shed.Value(),
			"deadlineExpiredTotal": m.expired.Value(),
			"timeoutMs":            s.cfg.Timeout.Milliseconds(),
		},
		// Cumulative expansion-work totals across every query served,
		// mirroring the uots_search_* registry counters.
		"search": map[string]any{
			"queriesTotal":             m.searchQueries.Value(),
			"visitedTrajectoriesTotal": m.searchVisited.Value(),
			"scanEventsTotal":          m.searchScans.Value(),
			"settledVerticesTotal":     m.searchSettled.Value(),
			"candidatesTotal":          m.searchCandidates.Value(),
			"textScoredTotal":          m.searchTextScored.Value(),
			"probesTotal":              m.searchProbes.Value(),
			"earlyTerminatedTotal":     m.searchEarlyTerm.Value(),
		},
	}
	if v := s.vocab; v != nil {
		resp["vocabulary"] = v.Size()
	}
	if s.live != nil {
		resp["liveIngest"] = true
		resp["generation"] = s.live.Store().Generation()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrajectory(w http.ResponseWriter, r *http.Request) {
	// strconv, not Sscanf: "12abc" must be a 400, not trajectory 12.
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "bad trajectory id")
		return
	}
	id := int32(id64)
	eng, _, rerr := s.resolve()
	if rerr != nil {
		writeResolveError(w, r, rerr)
		return
	}
	st := eng.Store()
	if id < 0 || int(id) >= st.NumTrajectories() {
		writeError(w, r, http.StatusNotFound, codeNotFound, "trajectory not found")
		return
	}
	t := st.Traj(trajdb.TrajID(id))
	type sampleJSON struct {
		Vertex int32      `json:"vertex"`
		Point  [2]float64 `json:"point"`
		Time   string     `json:"time"`
	}
	samples := make([]sampleJSON, t.Len())
	for i, smp := range t.Samples {
		p := s.graph.Point(smp.V)
		samples[i] = sampleJSON{
			Vertex: int32(smp.V),
			Point:  [2]float64{p.X, p.Y},
			Time:   clock(smp.T),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id":       id,
		"samples":  samples,
		"keywords": s.keywordNames(st, trajdb.TrajID(id)),
	})
}

// decodeJSON decodes a request body, distinguishing the body-cap limit
// from plain malformed JSON.
func decodeJSON(r *http.Request, v any) (status int, code string, err error) {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return http.StatusRequestEntityTooLarge, codeBodyTooLarge,
				fmt.Errorf("request body exceeds %d bytes", mbe.Limit)
		}
		return http.StatusBadRequest, codeBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	return http.StatusOK, "", nil
}

// writeEngineError maps an engine-side failure onto the documented error
// contract: deadline expiry → 503, client cancellation → 499, storage
// failure → 500, anything else → 400 (a query the engine rejected).
func (s *Server) writeEngineError(w http.ResponseWriter, r *http.Request, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.expired.Inc()
		writeError(w, r, http.StatusServiceUnavailable, codeDeadline,
			fmt.Sprintf("search deadline (%s) exceeded", s.cfg.Timeout))
	case errors.Is(err, context.Canceled):
		writeError(w, r, statusClientClosedRequest, codeCanceled, "client closed request")
	case errors.Is(err, core.ErrStoreFault):
		writeError(w, r, http.StatusInternalServerError, codeStoreFailure, err.Error())
	default:
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err.Error())
	}
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req SearchRequest
	if status, code, err := decodeJSON(r, &req); err != nil {
		writeError(w, r, status, code, err.Error())
		return
	}
	q, status, err := s.buildQuery(req)
	if err != nil {
		writeError(w, r, status, codeBadRequest, err.Error())
		return
	}
	eng, backend, rerr := s.resolve()
	if rerr != nil {
		writeResolveError(w, r, rerr)
		return
	}

	ctx := r.Context()
	var results []core.Result
	var stats core.SearchStats
	switch strings.ToLower(req.Algorithm) {
	case "", "expansion":
		switch {
		case req.OrderAware:
			results, stats, err = backend.OrderAwareSearchCtx(ctx, q)
		case req.Window != "":
			var win core.TimeWindow
			win, err = parseWindow(req.Window)
			if err == nil {
				results, stats, err = backend.SearchWindowedCtx(ctx, q, win)
			}
		case req.Theta != nil:
			results, stats, err = backend.SearchThresholdCtx(ctx, q, *req.Theta)
		case req.DiversifyMu != nil:
			results, stats, err = backend.DiversifiedSearchCtx(ctx, q, core.DiversifyOptions{Mu: *req.DiversifyMu})
		default:
			results, stats, err = backend.SearchCtx(ctx, q)
		}
	case "exhaustive":
		results, stats, err = eng.ExhaustiveSearchCtx(ctx, q)
	case "textfirst":
		results, stats, err = eng.TextFirstSearchCtx(ctx, q, core.TextFirstOptions{})
	default:
		err = fmt.Errorf("unknown algorithm %q", req.Algorithm)
	}
	if err != nil {
		s.writeEngineError(w, r, err)
		return
	}
	s.metrics.recordSearch(stats)

	resp := SearchResponse{
		Results: make([]ResultJSON, len(results)),
		Stats:   statsJSON(stats),
	}
	st := eng.Store()
	for i, res := range results {
		resp.Results[i] = s.resultJSON(st, res)
	}
	writeJSON(w, http.StatusOK, resp)
}

func statsJSON(stats core.SearchStats) StatsJSON {
	return StatsJSON{
		ElapsedMs:           float64(stats.Elapsed.Microseconds()) / 1000,
		VisitedTrajectories: stats.VisitedTrajectories,
		Candidates:          stats.Candidates,
		EarlyTerminated:     stats.EarlyTerminated,
	}
}

// resultJSON renders one result against st — the store of the engine
// the request resolved, so live-mode responses stay consistent with the
// snapshot that produced the scores.
func (s *Server) resultJSON(st core.TrajStore, res core.Result) ResultJSON {
	t := st.Traj(res.Traj)
	return ResultJSON{
		Trajectory: int32(res.Traj),
		Score:      res.Score,
		Spatial:    res.Spatial,
		Textual:    res.Textual,
		DistsKm:    res.Dists,
		Departs:    clock(t.Start()),
		Samples:    t.Len(),
		Keywords:   s.keywordNames(st, res.Traj),
	}
}

// BatchRequest is the POST /batch body: many independent searches
// answered concurrently by the engine's worker pool.
type BatchRequest struct {
	Queries []SearchRequest `json:"queries"`
	// Workers sizes the goroutine pool (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Shared toggles the shared-expansion batch planner: queries
	// referencing the same source vertex share one expansion frontier,
	// cutting redundant Dijkstra work while keeping every entry's
	// results byte-identical to an independent search. Default true;
	// set false to force fully independent execution.
	Shared *bool `json:"shared,omitempty"`
}

// BatchResponse is the POST /batch reply; Responses align with the
// request's Queries, and failed entries carry Error instead of Results.
type BatchResponse struct {
	Responses   []BatchEntry `json:"responses"`
	WallClockMs float64      `json:"wallClockMs"`
	// SharedExpansion reports whether the shared-expansion planner ran;
	// the planner counters below are zero when it did not (or when no
	// query validated).
	SharedExpansion bool `json:"sharedExpansion"`
	// DistinctSources is the number of distinct source vertices the
	// planner gave one shared frontier (summed per shard on sharded
	// backends); SourceRefs is how many per-query source references
	// those frontiers served.
	DistinctSources int `json:"distinctSources,omitempty"`
	SourceRefs      int `json:"sourceRefs,omitempty"`
	// FrontierSettles is the Dijkstra work actually performed by shared
	// frontiers; ServedSettles is the work served to queries. The
	// difference is the expansion work sharing avoided.
	FrontierSettles uint64 `json:"frontierSettles,omitempty"`
	ServedSettles   uint64 `json:"servedSettles,omitempty"`
}

// BatchEntry is one query's outcome within a batch.
type BatchEntry struct {
	Results []ResultJSON `json:"results,omitempty"`
	Stats   *StatsJSON   `json:"stats,omitempty"`
	Error   string       `json:"error,omitempty"`
}

// maxBatchQueries bounds one /batch request.
const maxBatchQueries = 1024

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if status, code, err := decodeJSON(r, &req); err != nil {
		writeError(w, r, status, code, err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "batch needs at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-query limit", len(req.Queries), maxBatchQueries))
		return
	}
	resp := BatchResponse{Responses: make([]BatchEntry, len(req.Queries))}
	queries := make([]core.Query, len(req.Queries))
	valid := make([]bool, len(req.Queries))
	for i, sr := range req.Queries {
		q, _, err := s.buildQuery(sr)
		if err != nil {
			resp.Responses[i].Error = err.Error()
			continue
		}
		queries[i] = q
		valid[i] = true
	}
	// Run only the valid subset through the batch engine, preserving
	// positions. When nothing validated, skip the engine entirely — the
	// per-entry errors are the whole answer.
	idx := make([]int, 0, len(queries))
	live := make([]core.Query, 0, len(queries))
	for i, ok := range valid {
		if ok {
			idx = append(idx, i)
			live = append(live, queries[i])
		}
	}
	shared := req.Shared == nil || *req.Shared
	if len(live) > 0 {
		eng, backend, rerr := s.resolve()
		if rerr != nil {
			writeResolveError(w, r, rerr)
			return
		}
		out, stats, err := backend.SearchBatch(r.Context(), live,
			core.BatchOptions{Workers: req.Workers, SharedExpansion: shared})
		if err != nil {
			s.writeEngineError(w, r, err)
			return
		}
		pinned := eng.Store()
		s.metrics.recordBatch(stats, shared)
		resp.SharedExpansion = shared
		resp.DistinctSources = stats.DistinctSources
		resp.SourceRefs = stats.SourceRefs
		resp.FrontierSettles = stats.FrontierSettles
		resp.ServedSettles = stats.ServedSettles
		for j, o := range out {
			entry := &resp.Responses[idx[j]]
			if o.Err != nil {
				entry.Error = o.Err.Error()
				continue
			}
			s.metrics.recordSearch(o.Stats)
			st := statsJSON(o.Stats)
			entry.Stats = &st
			entry.Results = make([]ResultJSON, len(o.Results))
			for k, res := range o.Results {
				entry.Results[k] = s.resultJSON(pinned, res)
			}
		}
		resp.WallClockMs = float64(stats.WallClock.Microseconds()) / 1000
	}
	writeJSON(w, http.StatusOK, resp)
}

// buildQuery validates and assembles the engine query from a request.
func (s *Server) buildQuery(req SearchRequest) (core.Query, int, error) {
	q := core.Query{Lambda: 0.5, K: req.K}
	if req.Lambda != nil {
		q.Lambda = *req.Lambda
	}
	if q.K == 0 {
		q.K = 5
	}
	for _, id := range req.VertexIDs {
		if id < 0 || int(id) >= s.graph.NumVertices() {
			return q, http.StatusBadRequest, fmt.Errorf("vertex %d outside the network", id)
		}
		q.Locations = append(q.Locations, roadnet.VertexID(id))
	}
	for _, p := range req.Points {
		v, _ := s.index.Nearest(geo.Point{X: p[0], Y: p[1]})
		if v < 0 {
			return q, http.StatusBadRequest, fmt.Errorf("cannot snap point (%g, %g)", p[0], p[1])
		}
		q.Locations = append(q.Locations, v)
	}
	if len(q.Locations) == 0 {
		return q, http.StatusBadRequest, errors.New("request needs vertexIds or points")
	}
	if req.Keywords != "" {
		if s.vocab == nil {
			return q, http.StatusBadRequest, errors.New("this dataset has no vocabulary; keywords unsupported")
		}
		q.Keywords = s.vocab.InternAll(textual.Tokenize(req.Keywords))
	}
	return q, http.StatusOK, nil
}

func (s *Server) keywordNames(st core.TrajStore, id trajdb.TrajID) []string {
	if s.vocab == nil {
		return nil
	}
	var names []string
	for _, term := range st.Keywords(id) {
		if name, ok := s.vocab.Term(term); ok {
			names = append(names, name)
		}
	}
	return names
}

func parseWindow(sw string) (core.TimeWindow, error) {
	parts := strings.Split(sw, "-")
	if len(parts) != 2 {
		return core.TimeWindow{}, fmt.Errorf("bad window %q (want HH:MM-HH:MM)", sw)
	}
	from, err := parseClock(parts[0])
	if err != nil {
		return core.TimeWindow{}, err
	}
	to, err := parseClock(parts[1])
	if err != nil {
		return core.TimeWindow{}, err
	}
	return core.TimeWindow{From: from, To: to}, nil
}

func parseClock(sc string) (float64, error) {
	// strconv, not Sscanf: "12:30xx" must be rejected, not truncated.
	hs, ms, ok := strings.Cut(strings.TrimSpace(sc), ":")
	if !ok {
		return 0, fmt.Errorf("bad time %q (want HH:MM)", sc)
	}
	h, errH := strconv.Atoi(hs)
	m, errM := strconv.Atoi(ms)
	if errH != nil || errM != nil {
		return 0, fmt.Errorf("bad time %q (want HH:MM)", sc)
	}
	if h < 0 || h > 23 || m < 0 || m > 59 {
		return 0, fmt.Errorf("time %q out of range", sc)
	}
	return float64(h*3600 + m*60), nil
}

// clock renders seconds-of-day as HH:MM, wrapping times outside one day
// (a trajectory generated to depart at 25:10 renders as 01:10, not
// "25:10").
func clock(seconds float64) string {
	const day = 24 * 3600
	sec := int(seconds) % day
	if sec < 0 {
		sec += day
	}
	return fmt.Sprintf("%02d:%02d", sec/3600, sec%3600/60)
}

// writeJSON writes v with the given status, logging nothing: handlers are
// pure functions of the request for testability.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v) // the connection is the only failure mode here
}

// writeError writes the machine-readable error body of the serving
// contract: {"error": <human text>, "code": <stable code>, "requestId":
// <correlation id>}. The request carries the ID assigned by the
// instrument middleware; a nil request (pre-middleware tests) omits it.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, msg string) {
	var id string
	if r != nil {
		id = RequestIDFromContext(r.Context())
	}
	writeJSON(w, status, errorJSON{Error: msg, Code: code, RequestID: id})
}

// ListenAndServe runs the server on addr until the listener fails.
// Exposed for compatibility; prefer Serve, which adds graceful shutdown.
func (s *Server) ListenAndServe(addr string) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return srv.ListenAndServe()
}

// Serve runs the server on addr until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests get up
// to drain to finish (their own deadlines still apply), and stragglers
// are cut off — closing their connections cancels their request contexts,
// which aborts the searches inside. A nil error is a clean, fully drained
// shutdown; errors from a failed listener pass through.
func (s *Server) Serve(ctx context.Context, addr string, drain time.Duration) error {
	srv := &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err // listener failed before any shutdown was asked for
	case <-ctx.Done():
	}
	//uots:allow ctxflow -- shutdown drain: the caller's ctx is already done, the drain window needs a fresh deadline
	drainCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	err := srv.Shutdown(drainCtx)
	if err != nil {
		srv.Close() // drain window expired: cancel the stragglers
	}
	<-errc // ListenAndServe has returned http.ErrServerClosed
	return err
}
