package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/shard"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// The sharded engine must satisfy the serving seam.
var _ SearchBackend = (*shard.Engine)(nil)

var (
	shardWorldOnce sync.Once
	shardWorldSrv  *Server
	shardWorldReg  *obs.Registry
	shardWorldEng  *core.Engine
)

// shardedServer builds one server whose default /search path runs on a
// 4-shard engine with a result cache, sharing one metrics registry
// between the sharded backend and the HTTP layer — the exact wiring
// cmd/uotsserve -shards produces.
func shardedServer(t *testing.T) (*Server, *obs.Registry, *core.Engine) {
	t.Helper()
	shardWorldOnce.Do(func() {
		g := roadnet.BRNLike(0.1, 4)
		vocab := textual.GenerateVocab(4, 20, 1.0, 2)
		db, err := trajdb.Generate(g, trajdb.GenOptions{
			Count: 400, MeanSamples: 15, Vocab: vocab, Seed: 6,
		})
		if err != nil {
			panic(err)
		}
		engine, err := core.NewEngine(db, core.Options{})
		if err != nil {
			panic(err)
		}
		reg := obs.NewRegistry()
		sharded, err := shard.NewEngine(db, core.Options{}, shard.Config{
			Shards: 4, CacheSize: 64, Metrics: reg,
		})
		if err != nil {
			panic(err)
		}
		shardWorldSrv = NewWithConfig(engine, vocab.Vocab, nil, Config{
			Metrics:  reg,
			Searcher: sharded,
		})
		shardWorldReg = reg
		shardWorldEng = engine
	})
	return shardWorldSrv, shardWorldReg, shardWorldEng
}

// TestShardedBackendSmoke is the CI smoke: a /search query served by the
// sharded backend answers exactly like the monolithic engine, a repeat
// hits the result cache, and /metrics exposes the uots_shard_* series.
func TestShardedBackendSmoke(t *testing.T) {
	s, reg, mono := shardedServer(t)

	req := SearchRequest{VertexIDs: []int32{3, 17, 29}, Keywords: "t0_kw0 t1_kw1", K: 5}
	rec, body := doJSON(t, s.Handler(), "POST", "/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded /search = %d: %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) == 0 {
		t.Fatal("sharded /search returned no results")
	}

	// The sharded answer must match the monolithic engine's ranking.
	q, _, err := s.buildQuery(req)
	if err != nil {
		t.Fatalf("buildQuery: %v", err)
	}
	want, _, err := mono.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatalf("monolithic SearchCtx: %v", err)
	}
	if len(results) != len(want) {
		t.Fatalf("sharded /search returned %d results, monolithic %d", len(results), len(want))
	}
	for i, raw := range results {
		got := int32(raw.(map[string]any)["trajectory"].(float64))
		if got != int32(want[i].Traj) {
			t.Errorf("rank %d: sharded trajectory %d, monolithic %d", i, got, want[i].Traj)
		}
	}

	// A repeat of the same query is a cache hit.
	misses := reg.Counter("uots_shard_cache_misses_total", "").Value()
	hitsBefore := reg.Counter("uots_shard_cache_hits_total", "").Value()
	if misses == 0 {
		t.Error("first sharded query recorded no cache miss")
	}
	rec, _ = doJSON(t, s.Handler(), "POST", "/search", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat /search = %d", rec.Code)
	}
	if hits := reg.Counter("uots_shard_cache_hits_total", "").Value(); hits != hitsBefore+1 {
		t.Errorf("repeat query recorded %d cache hits, want %d", hits, hitsBefore+1)
	}

	// The windowed and order-aware variants route through the backend too.
	winReq := req
	winReq.Window = "06:00-18:00"
	if rec, body := doJSON(t, s.Handler(), "POST", "/search", winReq); rec.Code != http.StatusOK {
		t.Fatalf("sharded windowed /search = %d: %v", rec.Code, body)
	}
	oaReq := req
	oaReq.OrderAware = true
	if rec, body := doJSON(t, s.Handler(), "POST", "/search", oaReq); rec.Code != http.StatusOK {
		t.Fatalf("sharded order-aware /search = %d: %v", rec.Code, body)
	}

	// /metrics carries both the HTTP layer's and the shard layer's series
	// from the one shared registry. (Raw GET: the body is Prometheus
	// text, not JSON.)
	mreq := httptest.NewRequest("GET", "/metrics", nil)
	recM := httptest.NewRecorder()
	s.Handler().ServeHTTP(recM, mreq)
	if recM.Code != http.StatusOK {
		t.Fatalf("/metrics = %d", recM.Code)
	}
	text := recM.Body.String()
	for _, name := range []string{
		"uots_shard_queries_total",
		"uots_shard_searches_total",
		"uots_shard_cache_hits_total",
		"uots_http_requests_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

// TestShardedBatchEndpoint drives /batch through the sharded backend:
// mixed valid/invalid entries answer per slot, every valid entry
// matches the monolithic engine, and a repeat batch serves from the
// shard result cache without re-scattering.
func TestShardedBatchEndpoint(t *testing.T) {
	s, reg, mono := shardedServer(t)

	req := BatchRequest{
		Queries: []SearchRequest{
			{VertexIDs: []int32{3, 17}, Keywords: "t0_kw0", K: 4},
			{K: 2}, // invalid: no locations
			{VertexIDs: []int32{3, 29}, Keywords: "t1_kw1", K: 4},
			{VertexIDs: []int32{3, 17}, Keywords: "t2_kw2", K: 4},
		},
	}
	rec, body := doJSON(t, s.Handler(), "POST", "/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("sharded /batch = %d: %v", rec.Code, body)
	}
	if body["sharedExpansion"] != true {
		t.Error("sharded batch did not report sharedExpansion")
	}
	responses := body["responses"].([]any)
	if len(responses) != 4 {
		t.Fatalf("got %d responses, want 4", len(responses))
	}
	if e := responses[1].(map[string]any)["error"]; e == nil || e == "" {
		t.Error("invalid entry missing its error")
	}
	for _, qi := range []int{0, 2, 3} {
		q, _, err := s.buildQuery(req.Queries[qi])
		if err != nil {
			t.Fatalf("buildQuery %d: %v", qi, err)
		}
		want, _, err := mono.SearchCtx(context.Background(), q)
		if err != nil {
			t.Fatalf("monolithic query %d: %v", qi, err)
		}
		results := responses[qi].(map[string]any)["results"].([]any)
		if len(results) != len(want) {
			t.Fatalf("entry %d: %d results, monolithic %d", qi, len(results), len(want))
		}
		for i, raw := range results {
			got := int32(raw.(map[string]any)["trajectory"].(float64))
			if got != int32(want[i].Traj) {
				t.Errorf("entry %d rank %d: sharded %d, monolithic %d", qi, i, got, want[i].Traj)
			}
		}
	}

	// A repeat of the same batch is all cache hits (3 valid entries).
	hitsBefore := reg.Counter("uots_shard_cache_hits_total", "").Value()
	rec, body2 := doJSON(t, s.Handler(), "POST", "/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("repeat sharded /batch = %d", rec.Code)
	}
	if hits := reg.Counter("uots_shard_cache_hits_total", "").Value(); hits != hitsBefore+3 {
		t.Errorf("repeat batch recorded %d cache hits, want %d", hits, hitsBefore+3)
	}
	for _, qi := range []int{0, 2, 3} {
		a := responses[qi].(map[string]any)["results"].([]any)
		b := body2["responses"].([]any)[qi].(map[string]any)["results"].([]any)
		for i := range a {
			at := a[i].(map[string]any)["trajectory"]
			bt := b[i].(map[string]any)["trajectory"]
			if at != bt {
				t.Errorf("entry %d rank %d: cached %v != fresh %v", qi, i, bt, at)
			}
		}
	}
}
