package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
)

var ridPattern = regexp.MustCompile(`^[0-9a-f]{16}$`)

func searchBody(t *testing.T) *bytes.Reader {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"vertexIds": []int32{1, 2}, "k": 3})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(raw)
}

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	srv, _ := testServer(t)
	h := srv.Handler()

	req := httptest.NewRequest("POST", "/search", searchBody(t))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get(RequestIDHeader)
	if !ridPattern.MatchString(id) {
		t.Errorf("generated request id %q, want 16 hex chars", id)
	}
}

func TestRequestIDPropagatedAndInEnvelope(t *testing.T) {
	srv, _ := testServer(t)
	h := srv.Handler()

	// A well-formed inbound ID is honored end to end.
	req := httptest.NewRequest("POST", "/search", strings.NewReader("{not json"))
	req.Header.Set(RequestIDHeader, "upstream-id-42")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", rec.Code)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "upstream-id-42" {
		t.Errorf("inbound id not echoed: got %q", got)
	}
	var env struct {
		Error     string `json:"error"`
		Code      string `json:"code"`
		RequestID string `json:"requestId"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("unparseable envelope: %v", err)
	}
	if env.RequestID != "upstream-id-42" {
		t.Errorf("envelope requestId = %q, want the inbound id", env.RequestID)
	}
	if env.Code != codeBadRequest {
		t.Errorf("envelope code = %q", env.Code)
	}

	// A hostile inbound ID (header injection, oversize) is regenerated.
	req = httptest.NewRequest("GET", "/healthz", nil)
	req.Header.Set(RequestIDHeader, "bad id\twith spaces")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(RequestIDHeader); !ridPattern.MatchString(got) {
		t.Errorf("hostile inbound id passed through as %q, want regenerated", got)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	h := srv.Handler()

	// Generate some traffic so counters and histograms are populated.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/search", searchBody(t)))
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# TYPE uots_http_requests_total counter",
		`uots_http_requests_total{route="/search",code="200"}`,
		"# TYPE uots_http_request_duration_seconds histogram",
		`uots_http_request_duration_seconds_bucket{route="/search",le="+Inf"}`,
		"# TYPE uots_http_in_flight_requests gauge",
		"uots_http_requests_shed_total",
		"uots_http_deadline_expired_total",
		"# TYPE uots_search_queries_total counter",
		"uots_search_visited_trajectories_total",
		"uots_search_candidates_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	srv, _ := testServer(t)
	h := srv.Handler()

	req := httptest.NewRequest("POST", "/search", searchBody(t))
	req.Header.Set(TraceHeader, "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("traced search: %d %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get(RequestIDHeader)
	if id == "" {
		t.Fatal("traced search carries no request id")
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/"+id, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace/%s: %d %s", id, rec.Code, rec.Body.String())
	}
	var trace struct {
		ID      string `json:"id"`
		Dropped int    `json:"dropped"`
		Events  []struct {
			Step int     `json:"step"`
			Kind string  `json:"kind"`
			Note string  `json:"note"`
			Val  float64 `json:"value"`
		} `json:"events"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trace); err != nil {
		t.Fatalf("unparseable trace: %v", err)
	}
	if trace.ID != id {
		t.Errorf("trace id = %q, want %q", trace.ID, id)
	}
	if len(trace.Events) == 0 {
		t.Fatal("trace replay has no events")
	}
	if trace.Events[0].Kind != "begin" {
		t.Errorf("first replayed event kind = %q, want begin", trace.Events[0].Kind)
	}
	last := trace.Events[len(trace.Events)-1]
	if last.Kind != "terminate" || last.Note == "" {
		t.Errorf("last replayed event = %+v, want terminate with a cause", last)
	}

	// An un-traced request leaves nothing behind.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace/nosuchid", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d, want 404", rec.Code)
	}
	var env errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Code != codeNotFound {
		t.Errorf("unknown trace envelope = %s (err %v)", rec.Body.String(), err)
	}
}

func TestStatsSearchTotalsGrow(t *testing.T) {
	srv, _ := testServer(t)
	h := srv.Handler()

	totals := func() map[string]any {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/stats", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("/stats: %d", rec.Code)
		}
		var parsed map[string]any
		if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
			t.Fatal(err)
		}
		search, ok := parsed["search"].(map[string]any)
		if !ok {
			t.Fatalf("/stats has no search section: %s", rec.Body.String())
		}
		return search
	}

	before := totals()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/search", searchBody(t)))
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body.String())
	}
	after := totals()

	for _, key := range []string{"queriesTotal", "visitedTrajectoriesTotal", "candidatesTotal"} {
		b, _ := before[key].(float64)
		a, _ := after[key].(float64)
		if a <= b {
			t.Errorf("stats search.%s did not grow: before %v, after %v", key, b, a)
		}
	}
}
