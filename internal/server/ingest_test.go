package server

import (
	"fmt"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"uots/internal/ingest"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// liveServer builds a server in live-ingest mode over an empty dynamic
// store, logging into a temp dir.
func liveServer(t *testing.T, icfg ingest.Config, cfg Config) (*Server, *ingest.Service) {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 8, Cols: 8, Style: roadnet.StyleDense, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	vocab := textual.NewVocab()
	store := trajdb.NewDynamic(g, vocab)
	if icfg.WALPath == "" {
		icfg.WALPath = filepath.Join(t.TempDir(), "ingest.wal")
	}
	svc, err := ingest.Open(store, icfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	cfg.Live = svc
	return NewWithConfig(nil, vocab, nil, cfg), svc
}

// ingestBody fabricates a valid n-trajectory request walking vertex ids
// from start with monotone times.
func ingestBody(n, start, samples int) IngestRequest {
	var req IngestRequest
	for i := 0; i < n; i++ {
		tr := IngestTrajectory{Keywords: fmt.Sprintf("museum park w%d", i)}
		for j := 0; j < samples; j++ {
			tr.Samples = append(tr.Samples, IngestSample{
				Vertex: int32(start + i + j), T: float64(100 + 10*j),
			})
		}
		req.Trajectories = append(req.Trajectories, tr)
	}
	return req
}

func TestIngestEndpointCommitAndRead(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{Fsync: ingest.FsyncNone}, Config{})
	h := s.Handler()

	// Before the first commit the read path has nothing to serve.
	rec, body := doJSON(t, h, "POST", "/search", map[string]any{
		"vertexIds": []int32{1}, "k": 2, "lambda": 1,
	})
	if rec.Code != http.StatusServiceUnavailable || body["code"] != codeUnavailable {
		t.Fatalf("pre-ingest search = %d %v, want 503 %q", rec.Code, body, codeUnavailable)
	}

	rec, body = doJSON(t, h, "POST", "/trajectories", ingestBody(3, 0, 4))
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest = %d %v", rec.Code, body)
	}
	ids, ok := body["ids"].([]any)
	if !ok || len(ids) != 3 {
		t.Fatalf("ids = %v, want 3 entries", body["ids"])
	}
	gen, _ := body["generation"].(float64)
	if gen == 0 {
		t.Fatalf("generation = %v, want > 0", body["generation"])
	}

	// The committed batch is immediately queryable.
	rec, body = doJSON(t, h, "POST", "/search", map[string]any{
		"vertexIds": []int32{0}, "k": 3, "lambda": 1,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-ingest search = %d %v", rec.Code, body)
	}
	results, _ := body["results"].([]any)
	if len(results) == 0 {
		t.Fatal("post-ingest search returned no results")
	}

	// Trajectory fetch resolves against the same live snapshot and
	// carries the ingested keywords back out.
	id := int(ids[0].(float64))
	rec, body = doJSON(t, h, "GET", fmt.Sprintf("/trajectory/%d", id), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("trajectory fetch = %d %v", rec.Code, body)
	}
	kws, _ := body["keywords"].([]any)
	if len(kws) == 0 {
		t.Fatalf("trajectory %d has no keywords: %v", id, body)
	}

	// /stats reports live mode and the current generation.
	rec, body = doJSON(t, h, "GET", "/stats", nil)
	if rec.Code != http.StatusOK || body["liveIngest"] != true {
		t.Fatalf("stats = %d %v, want liveIngest=true", rec.Code, body)
	}
	if int(body["trajectories"].(float64)) != 3 {
		t.Fatalf("stats trajectories = %v, want 3", body["trajectories"])
	}

	// /ingest/stats mirrors the service counters.
	rec, body = doJSON(t, h, "GET", "/ingest/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest stats = %d", rec.Code)
	}
	if int(body["committed"].(float64)) != 3 || int(body["live"].(float64)) != 3 {
		t.Fatalf("ingest stats = %v, want committed=3 live=3", body)
	}
	if body["wal_bytes"].(float64) <= 0 {
		t.Fatalf("ingest stats wal_bytes = %v, want > 0", body["wal_bytes"])
	}
}

func TestIngestEndpointValidation(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{Fsync: ingest.FsyncNone}, Config{})
	h := s.Handler()

	cases := []struct {
		name string
		body any
	}{
		{"empty batch", IngestRequest{}},
		{"no samples", IngestRequest{Trajectories: []IngestTrajectory{{Keywords: "park"}}}},
		{"vertex out of range", IngestRequest{Trajectories: []IngestTrajectory{{
			Samples: []IngestSample{{Vertex: 1 << 20, T: 1}},
		}}}},
		{"non-monotone time", IngestRequest{Trajectories: []IngestTrajectory{{
			Samples: []IngestSample{{Vertex: 0, T: 10}, {Vertex: 1, T: 5}},
		}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, body := doJSON(t, h, "POST", "/trajectories", tc.body)
			if rec.Code != http.StatusBadRequest || body["code"] != codeBadRequest {
				t.Fatalf("got %d %v, want 400 %q", rec.Code, body, codeBadRequest)
			}
		})
	}

	// Oversized batch is rejected before validation even looks at it.
	rec, body := doJSON(t, h, "POST", "/trajectories", ingestBody(maxIngestBatch+1, 0, 1))
	if rec.Code != http.StatusBadRequest || body["code"] != codeBadRequest {
		t.Fatalf("oversized batch = %d %v, want 400 %q", rec.Code, body, codeBadRequest)
	}
}

func TestIngestEndpointBackpressure(t *testing.T) {
	// Wedge the committer inside its first WAL write so the bounded
	// queue fills, then verify the endpoint sheds with 429/overloaded.
	blocked := make(chan struct{})
	release := make(chan struct{})
	var once bool
	s, svc := liveServer(t, ingest.Config{
		Fsync:      ingest.FsyncNone,
		QueueDepth: 1,
		Hooks: ingest.Hooks{BeforeWrite: func() error {
			if !once {
				once = true
				close(blocked)
				<-release
			}
			return nil
		}},
	}, Config{})
	h := s.Handler()

	type resp struct {
		code int
		body map[string]any
	}
	results := make(chan resp, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			rec, body := doJSON(t, h, "POST", "/trajectories", ingestBody(1, i, 2))
			results <- resp{rec.Code, body}
		}(i)
	}
	<-blocked // committer is wedged holding one request
	// Wait for the second in-flight request to occupy the queue slot.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().QueueDepth != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}

	rec, body := doJSON(t, h, "POST", "/trajectories", ingestBody(1, 9, 2))
	if rec.Code != http.StatusTooManyRequests || body["code"] != codeOverloaded {
		t.Fatalf("backlogged ingest = %d %v, want 429 %q", rec.Code, body, codeOverloaded)
	}

	close(release)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.code != http.StatusOK {
			t.Fatalf("released ingest = %d %v", r.code, r.body)
		}
	}
}

func TestIngestEndpointDraining(t *testing.T) {
	s, svc := liveServer(t, ingest.Config{Fsync: ingest.FsyncNone}, Config{})
	h := s.Handler()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
	rec, body := doJSON(t, h, "POST", "/trajectories", ingestBody(1, 0, 2))
	if rec.Code != http.StatusServiceUnavailable || body["code"] != codeDraining {
		t.Fatalf("post-close ingest = %d %v, want 503 %q", rec.Code, body, codeDraining)
	}
}

// TestIngestEndpointMVCC exercises the per-request snapshot pin through
// HTTP: batch responses must reflect one generation even while writes
// land between the search and the (same-request) result rendering.
func TestIngestEndpointMVCC(t *testing.T) {
	s, _ := liveServer(t, ingest.Config{Fsync: ingest.FsyncNone}, Config{})
	h := s.Handler()

	rec, body := doJSON(t, h, "POST", "/trajectories", ingestBody(2, 0, 3))
	if rec.Code != http.StatusOK {
		t.Fatalf("seed ingest = %d %v", rec.Code, body)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20; i++ {
			doJSON(t, h, "POST", "/trajectories", ingestBody(1, 10+i, 2))
		}
	}()
	for i := 0; i < 20; i++ {
		rec, body := doJSON(t, h, "POST", "/search", map[string]any{
			"vertexIds": []int32{0}, "k": 5, "lambda": 1,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("concurrent search = %d %v", rec.Code, body)
		}
	}
	<-done

	rec, body = doJSON(t, h, "GET", "/ingest/stats", nil)
	if rec.Code != http.StatusOK || int(body["live"].(float64)) != 22 {
		t.Fatalf("final ingest stats = %d %v, want live=22", rec.Code, body)
	}
}
