package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"uots/internal/ingest"
	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// maxIngestBatch bounds one POST /trajectories request. Larger loads
// should be split client-side; the group committer re-batches anyway.
const maxIngestBatch = 1024

// IngestSample is one trajectory sample in the write API: a network
// vertex and a time in seconds-of-day.
type IngestSample struct {
	Vertex int32   `json:"vertex"`
	T      float64 `json:"t"`
}

// IngestTrajectory is one trajectory to ingest. Keywords is free text,
// tokenized and interned server-side exactly like query keywords.
type IngestTrajectory struct {
	Samples  []IngestSample `json:"samples"`
	Keywords string         `json:"keywords,omitempty"`
}

// IngestRequest is the POST /trajectories body.
type IngestRequest struct {
	Trajectories []IngestTrajectory `json:"trajectories"`
}

// IngestResponse acknowledges a durable commit: the batch is in the WAL
// (fsynced per the server's policy) and queryable at Generation.
type IngestResponse struct {
	IDs        []int64 `json:"ids"`
	Generation uint64  `json:"generation"`
}

// handleIngest is the write endpoint. It shares the admission semaphore
// with the read path (weight 1) and adds the ingest queue's own
// backpressure behind it: a full commit queue answers 429 with the same
// "overloaded" code the load shedder uses, a draining server 503
// "draining", a validation failure 400, and a storage failure on the
// WAL path 500 "store_failure".
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req IngestRequest
	if status, code, err := decodeJSON(r, &req); err != nil {
		writeError(w, r, status, code, err.Error())
		return
	}
	if len(req.Trajectories) == 0 {
		writeError(w, r, http.StatusBadRequest, codeBadRequest, "request needs at least one trajectory")
		return
	}
	if len(req.Trajectories) > maxIngestBatch {
		writeError(w, r, http.StatusBadRequest, codeBadRequest,
			fmt.Sprintf("batch of %d exceeds the %d-trajectory limit", len(req.Trajectories), maxIngestBatch))
		return
	}
	recs := make([]ingest.TrajRecord, len(req.Trajectories))
	for i, t := range req.Trajectories {
		samples := make([]trajdb.Sample, len(t.Samples))
		for j, smp := range t.Samples {
			samples[j] = trajdb.Sample{V: roadnet.VertexID(smp.Vertex), T: smp.T}
		}
		recs[i] = ingest.TrajRecord{Samples: samples, Keywords: textual.Tokenize(t.Keywords)}
	}
	ctx := r.Context()
	tracer := obs.TracerFromContext(ctx)
	if tracer != nil {
		tracer.Emit(obs.SpanEvent{Kind: obs.TraceIngestBegin, Source: -1, Traj: -1,
			Value: float64(len(recs))})
	}
	ids, gen, err := s.live.Ingest(ctx, recs)
	if err != nil {
		if tracer != nil {
			tracer.Emit(obs.SpanEvent{Kind: obs.TraceIngestReject, Source: -1, Traj: -1,
				Note: err.Error()})
		}
		s.writeIngestError(w, r, err)
		return
	}
	if tracer != nil {
		tracer.Emit(obs.SpanEvent{Kind: obs.TraceIngestCommit, Source: -1, Traj: -1,
			Value: float64(len(ids)), Extra: float64(gen)})
	}
	out := make([]int64, len(ids))
	for i, id := range ids {
		out[i] = int64(id)
	}
	writeJSON(w, http.StatusOK, IngestResponse{IDs: out, Generation: gen})
}

// writeIngestError maps write-path failures onto the error contract.
func (s *Server) writeIngestError(w http.ResponseWriter, r *http.Request, err error) {
	var se *trajdb.StoreError
	switch {
	case errors.Is(err, ingest.ErrInvalid):
		writeError(w, r, http.StatusBadRequest, codeBadRequest, err.Error())
	case errors.Is(err, ingest.ErrBacklog):
		writeError(w, r, http.StatusTooManyRequests, codeOverloaded,
			"ingest queue full; retry with backoff")
	case errors.Is(err, ingest.ErrClosed):
		writeError(w, r, http.StatusServiceUnavailable, codeDraining,
			"server is draining; ingest is closed")
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.expired.Inc()
		writeError(w, r, http.StatusServiceUnavailable, codeDeadline,
			fmt.Sprintf("ingest deadline (%s) exceeded", s.cfg.Timeout))
	case errors.Is(err, context.Canceled):
		writeError(w, r, statusClientClosedRequest, codeCanceled, "client closed request")
	case errors.As(err, &se):
		writeError(w, r, http.StatusInternalServerError, codeStoreFailure, err.Error())
	default:
		writeError(w, r, http.StatusInternalServerError, codeInternal, err.Error())
	}
}

// handleIngestStats serves the write path's counters. Ungated (like
// /stats and /metrics) so the pipeline stays observable under overload.
func (s *Server) handleIngestStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.live.Stats())
}
