package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"uots/internal/core"
)

// slowServer builds a server over the shared world wrapped in a FaultStore
// — Latency makes every query slow enough to exercise deadlines and
// cancellation deterministically, FailEvery* injects storage failures.
func slowServer(t *testing.T, cfg Config, fault core.FaultConfig) *Server {
	t.Helper()
	_, db := testServer(t) // materializes the shared world
	fs := core.NewFaultStore(db, fault)
	engine, err := core.NewEngine(fs, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return NewWithConfig(engine, mustVocab(worldSrv), nil, cfg)
}

// exhaustiveReq is a query that must touch every trajectory's keywords —
// with injected latency it runs for (numTrajectories × Latency) unless a
// deadline or cancellation stops it.
func exhaustiveReq() SearchRequest {
	return SearchRequest{VertexIDs: []int32{5, 60}, Keywords: "t0_kw0", K: 3, Algorithm: "exhaustive"}
}

func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	code, _ := body["code"].(string)
	return code
}

// TestRequestDeadline verifies a search that outlives the configured
// timeout is answered 503 with code "deadline_exceeded", and that the
// expiry is counted in /stats.
func TestRequestDeadline(t *testing.T) {
	s := slowServer(t, Config{Timeout: 10 * time.Millisecond},
		core.FaultConfig{Latency: 500 * time.Microsecond})
	rec, body := doJSON(t, s.Handler(), "POST", "/search", exhaustiveReq())
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("slow search = %d (%v), want 503", rec.Code, body)
	}
	if errCode(t, body) != "deadline_exceeded" {
		t.Errorf("code = %q, want deadline_exceeded", errCode(t, body))
	}
	_, stats := doJSON(t, s.Handler(), "GET", "/stats", nil)
	serving := stats["serving"].(map[string]any)
	if serving["deadlineExpiredTotal"].(float64) < 1 {
		t.Errorf("deadlineExpiredTotal = %v, want ≥ 1", serving["deadlineExpiredTotal"])
	}
	if serving["timeoutMs"].(float64) != 10 {
		t.Errorf("timeoutMs = %v, want 10", serving["timeoutMs"])
	}
}

// TestClientDisconnectCancelsSearch verifies a client that goes away
// mid-search cancels the engine work: the handler observes
// context.Canceled and records the 499 client-closed-request status.
func TestClientDisconnectCancelsSearch(t *testing.T) {
	s := slowServer(t, Config{}, core.FaultConfig{Latency: 500 * time.Microsecond})
	raw, _ := json.Marshal(exhaustiveReq())
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/search", bytes.NewReader(raw)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Handler().ServeHTTP(rec, req)
	}()
	time.Sleep(5 * time.Millisecond) // let the search get into its loops
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client cancellation")
	}
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("cancelled search = %d, want %d", rec.Code, statusClientClosedRequest)
	}
	var body map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("unparseable body %q", rec.Body.String())
	}
	if errCode(t, body) != "client_closed_request" {
		t.Errorf("code = %q, want client_closed_request", errCode(t, body))
	}
}

// TestLoadShedding verifies requests beyond MaxInFlight are shed with 429
// and code "overloaded", the shed count shows up in /stats, and capacity
// freed by release is reusable.
func TestLoadShedding(t *testing.T) {
	s := slowServer(t, Config{MaxInFlight: 2}, core.FaultConfig{})
	// Deterministically saturate the semaphore, as two in-flight searches
	// would.
	granted, ok := s.sem.acquire(2)
	if !ok || granted != 2 {
		t.Fatalf("could not saturate semaphore: granted=%d ok=%v", granted, ok)
	}
	rec, body := doJSON(t, s.Handler(), "POST", "/search",
		SearchRequest{VertexIDs: []int32{5}, K: 1})
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated search = %d (%v), want 429", rec.Code, body)
	}
	if errCode(t, body) != "overloaded" {
		t.Errorf("code = %q, want overloaded", errCode(t, body))
	}
	// /stats stays reachable under saturation and reports the pressure.
	recStats, stats := doJSON(t, s.Handler(), "GET", "/stats", nil)
	if recStats.Code != http.StatusOK {
		t.Fatalf("stats under saturation = %d", recStats.Code)
	}
	serving := stats["serving"].(map[string]any)
	if serving["inFlight"].(float64) != 2 || serving["maxInFlight"].(float64) != 2 {
		t.Errorf("serving = %v, want inFlight=2 maxInFlight=2", serving)
	}
	if serving["shedTotal"].(float64) < 1 {
		t.Errorf("shedTotal = %v, want ≥ 1", serving["shedTotal"])
	}
	s.sem.release(granted)
	rec, body = doJSON(t, s.Handler(), "POST", "/search",
		SearchRequest{VertexIDs: []int32{5}, K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-release search = %d (%v), want 200", rec.Code, body)
	}
}

// TestBatchWeightClamped verifies a /batch (weight batchWeight) still runs
// on a server whose capacity is below that weight — oversized requests are
// clamped, not unserveable.
func TestBatchWeightClamped(t *testing.T) {
	s := slowServer(t, Config{MaxInFlight: 1}, core.FaultConfig{})
	rec, body := doJSON(t, s.Handler(), "POST", "/batch", BatchRequest{
		Queries: []SearchRequest{{VertexIDs: []int32{5}, K: 1}},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch on capacity-1 server = %d (%v), want 200", rec.Code, body)
	}
}

// TestPanicRecovery verifies handler panics become 500s: a typed store
// fault keeps its "store_failure" code, anything else maps to
// "internal_error", and net/http's ErrAbortHandler passes through.
func TestPanicRecovery(t *testing.T) {
	// A store fault escaping a raw (non-engine) access: /trajectory/{id}
	// loads the record directly, so a first-call Traj fault panics out of
	// the handler.
	s := slowServer(t, Config{}, core.FaultConfig{FailEveryTraj: 1})
	rec, body := doJSON(t, s.Handler(), "GET", "/trajectory/0", nil)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("faulted trajectory fetch = %d (%v), want 500", rec.Code, body)
	}
	if errCode(t, body) != "store_failure" {
		t.Errorf("code = %q, want store_failure", errCode(t, body))
	}

	// A generic panic maps to internal_error.
	h := s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", rec.Code)
	}
	var parsed map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
		t.Fatal(err)
	}
	if errCode(t, parsed) != "internal_error" {
		t.Errorf("code = %q, want internal_error", errCode(t, parsed))
	}

	// http.ErrAbortHandler is net/http control flow and must re-panic.
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Error("ErrAbortHandler was swallowed")
		}
	}()
	h = s.recoverPanics(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
}

// TestBodyCap verifies oversized request bodies are rejected with 413 and
// code "body_too_large" instead of being read to the end.
func TestBodyCap(t *testing.T) {
	s := slowServer(t, Config{MaxBodyBytes: 512}, core.FaultConfig{})
	big := SearchRequest{VertexIDs: []int32{5}, Keywords: strings.Repeat("word ", 500)}
	rec, body := doJSON(t, s.Handler(), "POST", "/search", big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d (%v), want 413", rec.Code, body)
	}
	if errCode(t, body) != "body_too_large" {
		t.Errorf("code = %q, want body_too_large", errCode(t, body))
	}
	// A body under the cap still works.
	rec, body = doJSON(t, s.Handler(), "POST", "/search",
		SearchRequest{VertexIDs: []int32{5}, K: 1})
	if rec.Code != http.StatusOK {
		t.Fatalf("small body = %d (%v), want 200", rec.Code, body)
	}
}

// TestBatchAllInvalid verifies a batch whose every query fails validation
// short-circuits the engine entirely but still answers 200 with the
// per-entry errors — partial-failure semantics don't degenerate into a
// whole-request failure.
func TestBatchAllInvalid(t *testing.T) {
	s, _ := testServer(t)
	rec, body := doJSON(t, s.Handler(), "POST", "/batch", BatchRequest{
		Queries: []SearchRequest{
			{K: 2},                        // no locations
			{VertexIDs: []int32{1 << 30}}, // vertex outside the network
			{VertexIDs: []int32{-4}},      // negative vertex
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("all-invalid batch = %d (%v), want 200", rec.Code, body)
	}
	responses := body["responses"].([]any)
	if len(responses) != 3 {
		t.Fatalf("got %d responses, want 3", len(responses))
	}
	for i, r := range responses {
		entry := r.(map[string]any)
		msg, _ := entry["error"].(string)
		if msg == "" {
			t.Errorf("entry %d: missing error (%v)", i, entry)
		}
		if entry["results"] != nil {
			t.Errorf("entry %d: results on an invalid query (%v)", i, entry)
		}
	}
	if wall := body["wallClockMs"].(float64); wall != 0 {
		t.Errorf("wallClockMs = %v, want 0 (engine must not run)", wall)
	}
}

// TestTrajectoryIDParsing pins the strict ID syntax: trailing garbage and
// overflow are 400s, not partial parses.
func TestTrajectoryIDParsing(t *testing.T) {
	s, _ := testServer(t)
	for _, bad := range []string{"12abc", "0x10", "1e3", "99999999999999999999", "--1"} {
		rec, body := doJSON(t, s.Handler(), "GET", "/trajectory/"+bad, nil)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("/trajectory/%s = %d (%v), want 400", bad, rec.Code, body)
		}
		if errCode(t, body) != "bad_request" {
			t.Errorf("/trajectory/%s code = %q, want bad_request", bad, errCode(t, body))
		}
	}
}

// TestParseClock pins the accepted and rejected clock syntaxes.
func TestParseClock(t *testing.T) {
	cases := []struct {
		in      string
		want    float64
		wantErr bool
	}{
		{"00:00", 0, false},
		{"23:59", 23*3600 + 59*60, false},
		{"09:05", 9*3600 + 5*60, false},
		{" 09:05 ", 9*3600 + 5*60, false}, // surrounding space tolerated
		{"24:00", 0, true},                // a day has hours 0..23
		{"12:60", 0, true},
		{"-1:30", 0, true},
		{"12:-5", 0, true},
		{"", 0, true},
		{":", 0, true},
		{"12", 0, true},
		{"12:", 0, true},
		{":30", 0, true},
		{"12:3x", 0, true},
		{"ab:cd", 0, true},
		{"12:30:45", 0, true},
	}
	for _, c := range cases {
		got, err := parseClock(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("parseClock(%q) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("parseClock(%q) = %g, want %g", c.in, got, c.want)
		}
	}
}

// TestParseWindow pins window syntax edge cases.
func TestParseWindow(t *testing.T) {
	if w, err := parseWindow("06:00-12:30"); err != nil {
		t.Errorf("parseWindow valid: %v", err)
	} else if w.From != 6*3600 || w.To != 12*3600+30*60 {
		t.Errorf("parseWindow = %+v", w)
	}
	for _, bad := range []string{"", "-", "06:00-", "-12:00", "06:00", "06:00-12:00-18:00", "24:00-25:00"} {
		if _, err := parseWindow(bad); err == nil {
			t.Errorf("parseWindow(%q) accepted", bad)
		}
	}
}

// TestClockWraps pins the HH:MM rendering, including wrap-around of times
// outside one day (trajectory departure times can exceed 24h or, from
// synthetic data, go negative).
func TestClockWraps(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{0, "00:00"},
		{9*3600 + 5*60, "09:05"},
		{23*3600 + 59*60 + 59, "23:59"},
		{24 * 3600, "00:00"},       // midnight next day
		{25*3600 + 10*60, "01:10"}, // 25:10 wraps
		{-3600, "23:00"},           // an hour before midnight
		{-1, "23:59"},
		{48*3600 + 30*60, "00:30"},
	}
	for _, c := range cases {
		if got := clock(c.sec); got != c.want {
			t.Errorf("clock(%g) = %q, want %q", c.sec, got, c.want)
		}
	}
}
