package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/rpc"
	"uots/internal/shard"
)

// slowJSON mirrors the GET /debug/slow body.
type slowJSON struct {
	ThresholdMs float64 `json:"thresholdMs"`
	Count       int     `json:"count"`
	Queries     []struct {
		ID        string  `json:"id"`
		Route     string  `json:"route"`
		Status    int     `json:"status"`
		ElapsedMs float64 `json:"elapsedMs"`
		Dropped   int     `json:"dropped"`
		Events    []struct {
			Kind string `json:"kind"`
		} `json:"events"`
	} `json:"queries"`
}

func getSlow(t *testing.T, h http.Handler) (int, slowJSON) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slow", nil))
	var body slowJSON
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Fatalf("unparseable /debug/slow body: %v", err)
		}
	}
	return rec.Code, body
}

// TestSlowQueryFlightRecorder is the always-on capture contract: with a
// threshold every request clears, a plain /search — no X-Trace header —
// lands in /debug/slow with its full span, while /debug/trace still
// 404s for it (unsampled traffic is not retained there) and the
// uots_trace_slow_queries_total counter ticks.
func TestSlowQueryFlightRecorder(t *testing.T) {
	srv := slowServer(t, Config{SlowQueryThreshold: time.Nanosecond}, core.FaultConfig{})
	h := srv.Handler()

	req := httptest.NewRequest("POST", "/search", searchBody(t))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body.String())
	}
	id := rec.Header().Get(RequestIDHeader)

	code, body := getSlow(t, h)
	if code != http.StatusOK {
		t.Fatalf("/debug/slow: %d", code)
	}
	if body.Count != 1 || len(body.Queries) != 1 {
		t.Fatalf("slow count = %d (%d queries), want 1", body.Count, len(body.Queries))
	}
	q := body.Queries[0]
	if q.ID != id || q.Route != "/search" || q.Status != http.StatusOK {
		t.Errorf("slow entry = {id %q route %q status %d}, want {%q /search 200}", q.ID, q.Route, q.Status, id)
	}
	if q.ElapsedMs <= 0 {
		t.Errorf("slow entry elapsedMs = %g, want > 0", q.ElapsedMs)
	}
	if len(q.Events) == 0 || q.Events[0].Kind != "begin" {
		t.Errorf("slow entry span = %v, want engine events starting with begin", q.Events)
	}

	// The unsampled request must not appear in /debug/trace.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace/"+id, nil))
	if rr.Code != http.StatusNotFound {
		t.Errorf("/debug/trace/%s for unsampled slow query: %d, want 404", id, rr.Code)
	}

	if v := srv.Metrics().Counter("uots_trace_slow_queries_total", "").Value(); v != 1 {
		t.Errorf("uots_trace_slow_queries_total = %d, want 1", v)
	}
}

// TestSlowQueryBelowThresholdNotCaptured: a fast request under a high
// threshold leaves the flight recorder empty.
func TestSlowQueryBelowThresholdNotCaptured(t *testing.T) {
	srv := slowServer(t, Config{SlowQueryThreshold: time.Hour}, core.FaultConfig{})
	h := srv.Handler()

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/search", searchBody(t)))
	if rec.Code != http.StatusOK {
		t.Fatalf("search: %d %s", rec.Code, rec.Body.String())
	}
	code, body := getSlow(t, h)
	if code != http.StatusOK || body.Count != 0 {
		t.Errorf("/debug/slow = %d count %d, want 200 with 0 captures", code, body.Count)
	}
	if body.ThresholdMs != float64(time.Hour)/float64(time.Millisecond) {
		t.Errorf("thresholdMs = %g", body.ThresholdMs)
	}
}

// TestSlowRecorderDisabled404: without a threshold the endpoint explains
// itself instead of serving an empty list.
func TestSlowRecorderDisabled404(t *testing.T) {
	srv, _ := testServer(t)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/slow", nil))
	if rec.Code != http.StatusNotFound {
		t.Fatalf("/debug/slow on disabled recorder: %d, want 404", rec.Code)
	}
	var env errorJSON
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Code != codeNotFound {
		t.Errorf("disabled envelope = %s (err %v)", rec.Body.String(), err)
	}
}

// TestTraceMetricsRecorded: a sampled request ticks the uots_trace_*
// family on the server registry.
func TestTraceMetricsRecorded(t *testing.T) {
	srv := slowServer(t, Config{}, core.FaultConfig{})
	h := srv.Handler()
	req := httptest.NewRequest("POST", "/search", searchBody(t))
	req.Header.Set(TraceHeader, "1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("traced search: %d %s", rec.Code, rec.Body.String())
	}
	reg := srv.Metrics()
	if v := reg.Counter("uots_trace_sampled_total", "").Value(); v != 1 {
		t.Errorf("uots_trace_sampled_total = %d, want 1", v)
	}
	if v := reg.Counter("uots_trace_events_total", "").Value(); v == 0 {
		t.Error("uots_trace_events_total = 0, want > 0")
	}
}

// TestRemoteHopsGrouping pins the /debug/trace hop summary over a
// synthetic merged trace: one bracket per partition, wall-clock and
// dropped counts lifted off the bracket markers, serving replicas off
// the remote-span markers, and nil for purely local traces.
func TestRemoteHopsGrouping(t *testing.T) {
	events := []obs.SpanEvent{
		{Kind: shard.TraceScatter, Value: 2},
		{Kind: shard.TracePartition, Value: 0, Extra: 1.5},
		{Kind: rpc.TraceAttempt, Note: "http://a"},
		{Kind: rpc.TraceAttemptOK, Note: "http://a"},
		{Kind: rpc.TraceRemoteSpan, Note: "http://a", Value: 2},
		{Kind: "begin"},
		{Kind: "terminate"},
		{Kind: rpc.TraceRemoteSpanEnd, Note: "http://a"},
		{Kind: shard.TracePartitionDone, Value: 0, Extra: 3},
		{Kind: shard.TracePartition, Value: 1, Extra: 0.5},
		{Kind: rpc.TraceRemoteSpan, Note: "http://b"},
		{Kind: rpc.TraceRemoteSpanEnd, Note: "http://b"},
		{Kind: shard.TracePartitionDone, Value: 1},
		{Kind: shard.TraceMerge},
	}
	hops := remoteHops(events)
	if len(hops) != 2 {
		t.Fatalf("got %d hops, want 2: %+v", len(hops), hops)
	}
	h0 := hops[0]
	if h0.Partition != 0 || h0.ElapsedMs != 1.5 || h0.Dropped != 3 || h0.Events != 5 {
		t.Errorf("hop 0 = %+v, want partition 0, 1.5ms, dropped 3, 5 events", h0)
	}
	if len(h0.Replicas) != 1 || h0.Replicas[0] != "http://a" {
		t.Errorf("hop 0 replicas = %v", h0.Replicas)
	}
	h1 := hops[1]
	if h1.Partition != 1 || h1.ElapsedMs != 0.5 || h1.Dropped != 0 || h1.Events != 1 {
		t.Errorf("hop 1 = %+v, want partition 1, 0.5ms, dropped 0, 1 event", h1)
	}

	local := []obs.SpanEvent{{Kind: "begin"}, {Kind: "terminate"}}
	if got := remoteHops(local); got != nil {
		t.Errorf("local trace produced hops: %+v", got)
	}
}
