package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

var (
	worldOnce sync.Once
	worldSrv  *Server
	worldDB   *trajdb.Store
)

func testServer(t *testing.T) (*Server, *trajdb.Store) {
	t.Helper()
	worldOnce.Do(func() {
		g := roadnet.BRNLike(0.1, 4)
		vocab := textual.GenerateVocab(4, 20, 1.0, 2)
		db, err := trajdb.Generate(g, trajdb.GenOptions{
			Count: 600, MeanSamples: 15, Vocab: vocab, Seed: 6,
		})
		if err != nil {
			panic(err)
		}
		engine, err := core.NewEngine(db, core.Options{})
		if err != nil {
			panic(err)
		}
		worldSrv = New(engine, vocab.Vocab, nil)
		worldDB = db
	})
	return worldSrv, worldDB
}

func doJSON(t *testing.T, h http.Handler, method, path string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var parsed map[string]any
	if rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
			t.Fatalf("%s %s returned unparseable body %q", method, path, rec.Body.String())
		}
	}
	return rec, parsed
}

func TestHealthAndStats(t *testing.T) {
	s, db := testServer(t)
	rec, body := doJSON(t, s.Handler(), "GET", "/healthz", nil)
	if rec.Code != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthz = %d %v", rec.Code, body)
	}
	rec, body = doJSON(t, s.Handler(), "GET", "/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats = %d", rec.Code)
	}
	if int(body["trajectories"].(float64)) != db.NumTrajectories() {
		t.Errorf("stats trajectories = %v", body["trajectories"])
	}
	if body["vertices"].(float64) == 0 || body["vocabulary"].(float64) == 0 {
		t.Errorf("stats incomplete: %v", body)
	}
}

func TestSearchByVertexIDs(t *testing.T) {
	s, db := testServer(t)
	lambda := 0.5
	rec, body := doJSON(t, s.Handler(), "POST", "/search", SearchRequest{
		VertexIDs: []int32{5, 60},
		Keywords:  "t0_kw0 t0_kw1",
		Lambda:    &lambda,
		K:         3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %v", rec.Code, body)
	}
	results := body["results"].([]any)
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	first := results[0].(map[string]any)
	for _, key := range []string{"trajectory", "score", "spatial", "textual", "distsKm", "departs", "samples"} {
		if _, ok := first[key]; !ok {
			t.Errorf("result missing %q: %v", key, first)
		}
	}
	// Scores descend.
	prev := 2.0
	for _, r := range results {
		sc := r.(map[string]any)["score"].(float64)
		if sc > prev {
			t.Error("results not sorted by score")
		}
		prev = sc
	}
	// The response matches a direct engine call.
	engineRes, _, err := mustEngine(s).Search(core.Query{
		Locations: []roadnet.VertexID{5, 60},
		Keywords:  mustVocab(s).InternAll([]string{"t0_kw0", "t0_kw1"}),
		Lambda:    0.5, K: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if int32(engineRes[0].Traj) != int32(first["trajectory"].(float64)) {
		t.Errorf("HTTP top result %v != engine top %d", first["trajectory"], engineRes[0].Traj)
	}
	_ = db
}

func mustEngine(s *Server) *core.Engine  { return s.engine }
func mustVocab(s *Server) *textual.Vocab { return s.vocab }

func TestSearchByPoints(t *testing.T) {
	s, _ := testServer(t)
	rec, body := doJSON(t, s.Handler(), "POST", "/search", SearchRequest{
		Points: [][2]float64{{1.0, 1.0}, {1.5, 1.2}},
		K:      2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %v", rec.Code, body)
	}
	if len(body["results"].([]any)) != 2 {
		t.Fatalf("results = %v", body["results"])
	}
	stats := body["stats"].(map[string]any)
	if stats["visitedTrajectories"].(float64) <= 0 {
		t.Error("stats not populated")
	}
}

func TestSearchValidation(t *testing.T) {
	s, _ := testServer(t)
	cases := []struct {
		name string
		req  any
		want int
	}{
		{"no locations", SearchRequest{K: 3}, http.StatusBadRequest},
		{"bad vertex", SearchRequest{VertexIDs: []int32{99999}}, http.StatusBadRequest},
		{"bad lambda", SearchRequest{VertexIDs: []int32{1}, Lambda: ptr(3.0)}, http.StatusBadRequest},
		{"bad algorithm", SearchRequest{VertexIDs: []int32{1}, Algorithm: "magic"}, http.StatusBadRequest},
		{"bad window", SearchRequest{VertexIDs: []int32{1}, Window: "25:99"}, http.StatusBadRequest},
	}
	for _, c := range cases {
		rec, body := doJSON(t, s.Handler(), "POST", "/search", c.req)
		if rec.Code != c.want {
			t.Errorf("%s: code %d, want %d (%v)", c.name, rec.Code, c.want, body)
		}
		if body["error"] == "" {
			t.Errorf("%s: missing error message", c.name)
		}
	}
	// Malformed JSON body.
	req := httptest.NewRequest("POST", "/search", strings.NewReader("{nope"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body = %d", rec.Code)
	}
}

func ptr(f float64) *float64 { return &f }

func TestSearchAlgorithmsAgree(t *testing.T) {
	s, _ := testServer(t)
	base := SearchRequest{VertexIDs: []int32{5, 60}, Keywords: "t0_kw0", K: 3}
	var scores [3][]float64
	for i, algo := range []string{"expansion", "exhaustive", "textfirst"} {
		req := base
		req.Algorithm = algo
		rec, body := doJSON(t, s.Handler(), "POST", "/search", req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s = %d: %v", algo, rec.Code, body)
		}
		for _, r := range body["results"].([]any) {
			scores[i] = append(scores[i], r.(map[string]any)["score"].(float64))
		}
	}
	for i := 1; i < 3; i++ {
		if fmt.Sprint(scores[i]) != fmt.Sprint(scores[0]) {
			t.Errorf("algorithm %d scores %v != expansion %v", i, scores[i], scores[0])
		}
	}
}

func TestSearchWindowed(t *testing.T) {
	s, db := testServer(t)
	rec, body := doJSON(t, s.Handler(), "POST", "/search", SearchRequest{
		VertexIDs: []int32{5, 60},
		Window:    "06:00-12:00",
		K:         3,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("windowed = %d: %v", rec.Code, body)
	}
	for _, r := range body["results"].([]any) {
		id := trajdb.TrajID(r.(map[string]any)["trajectory"].(float64))
		start := db.Traj(id).Start()
		if start < 6*3600 || start > 12*3600 {
			t.Errorf("result departs at %g outside window", start)
		}
	}
}

func TestSearchOrderAware(t *testing.T) {
	s, _ := testServer(t)
	rec, body := doJSON(t, s.Handler(), "POST", "/search", SearchRequest{
		VertexIDs:  []int32{5, 60},
		OrderAware: true,
		K:          2,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("order-aware = %d: %v", rec.Code, body)
	}
	if len(body["results"].([]any)) == 0 {
		t.Error("no order-aware results")
	}
}

func TestTrajectoryEndpoint(t *testing.T) {
	s, db := testServer(t)
	rec, body := doJSON(t, s.Handler(), "GET", "/trajectory/0", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("trajectory = %d", rec.Code)
	}
	if int(body["id"].(float64)) != 0 {
		t.Errorf("id = %v", body["id"])
	}
	if len(body["samples"].([]any)) != db.Traj(0).Len() {
		t.Errorf("samples = %d, want %d", len(body["samples"].([]any)), db.Traj(0).Len())
	}
	rec, _ = doJSON(t, s.Handler(), "GET", "/trajectory/999999", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing trajectory = %d", rec.Code)
	}
	rec, _ = doJSON(t, s.Handler(), "GET", "/trajectory/abc", nil)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id = %d", rec.Code)
	}
}

func TestMethodRouting(t *testing.T) {
	s, _ := testServer(t)
	req := httptest.NewRequest("GET", "/search", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed && rec.Code != http.StatusNotFound {
		t.Errorf("GET /search = %d", rec.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s, _ := testServer(t)
	req := BatchRequest{
		Queries: []SearchRequest{
			{VertexIDs: []int32{5, 60}, Keywords: "t0_kw0", K: 2},
			{K: 2}, // invalid: no locations
			{Points: [][2]float64{{1.0, 1.0}}, K: 1},
		},
		Workers: 2,
	}
	rec, body := doJSON(t, s.Handler(), "POST", "/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch = %d: %v", rec.Code, body)
	}
	responses := body["responses"].([]any)
	if len(responses) != 3 {
		t.Fatalf("got %d responses", len(responses))
	}
	first := responses[0].(map[string]any)
	if len(first["results"].([]any)) != 2 {
		t.Errorf("first query results = %v", first["results"])
	}
	second := responses[1].(map[string]any)
	if second["error"] == nil || second["error"] == "" {
		t.Error("invalid query should carry an error")
	}
	third := responses[2].(map[string]any)
	if len(third["results"].([]any)) != 1 {
		t.Errorf("third query results = %v", third["results"])
	}
	if body["wallClockMs"].(float64) <= 0 {
		t.Error("wall clock missing")
	}

	// Batch results must match single-query results.
	singleRec, singleBody := doJSON(t, s.Handler(), "POST", "/search", req.Queries[0])
	if singleRec.Code != http.StatusOK {
		t.Fatal("single query failed")
	}
	singleTop := singleBody["results"].([]any)[0].(map[string]any)["trajectory"]
	batchTop := first["results"].([]any)[0].(map[string]any)["trajectory"]
	if singleTop != batchTop {
		t.Errorf("batch top %v != single top %v", batchTop, singleTop)
	}
}

// TestBatchSharedExpansionFlag pins the /batch planner contract: the
// shared-expansion planner is on by default, reports its work in the
// response's planner fields, and an explicit "shared": false forces
// fully independent execution with zero planner counters — and the
// same per-entry answers.
func TestBatchSharedExpansionFlag(t *testing.T) {
	s, _ := testServer(t)
	// Four queries over the same two source vertices: maximal overlap,
	// so the planner must record more served than performed settles.
	queries := make([]SearchRequest, 4)
	for i := range queries {
		queries[i] = SearchRequest{VertexIDs: []int32{5, 60}, Keywords: "t0_kw0", K: 3}
	}

	rec, body := doJSON(t, s.Handler(), "POST", "/batch", BatchRequest{Queries: queries})
	if rec.Code != http.StatusOK {
		t.Fatalf("default batch = %d: %v", rec.Code, body)
	}
	if body["sharedExpansion"] != true {
		t.Error("sharedExpansion not reported true by default")
	}
	served, _ := body["servedSettles"].(float64)
	frontier, _ := body["frontierSettles"].(float64)
	if served <= frontier || served == 0 {
		t.Errorf("planner fields report no sharing: served=%v frontier=%v", served, frontier)
	}
	if ds, _ := body["distinctSources"].(float64); ds != 2 {
		t.Errorf("distinctSources = %v, want 2", ds)
	}
	if refs, _ := body["sourceRefs"].(float64); refs != 8 {
		t.Errorf("sourceRefs = %v, want 8", refs)
	}

	off := false
	recOff, bodyOff := doJSON(t, s.Handler(), "POST", "/batch",
		BatchRequest{Queries: queries, Shared: &off})
	if recOff.Code != http.StatusOK {
		t.Fatalf("shared=false batch = %d: %v", recOff.Code, bodyOff)
	}
	if bodyOff["sharedExpansion"] != false {
		t.Error("sharedExpansion not reported false when disabled")
	}
	if v, ok := bodyOff["servedSettles"]; ok && v.(float64) != 0 {
		t.Errorf("independent batch reported servedSettles = %v", v)
	}

	// Same answers either way.
	for i := range queries {
		sharedTop := body["responses"].([]any)[i].(map[string]any)["results"].([]any)[0].(map[string]any)["trajectory"]
		offTop := bodyOff["responses"].([]any)[i].(map[string]any)["results"].([]any)[0].(map[string]any)["trajectory"]
		if sharedTop != offTop {
			t.Errorf("entry %d: shared top %v != independent top %v", i, sharedTop, offTop)
		}
	}

	// The uots_batch_* series are exposed on /metrics.
	mreq := httptest.NewRequest("GET", "/metrics", nil)
	recM := httptest.NewRecorder()
	s.Handler().ServeHTTP(recM, mreq)
	text := recM.Body.String()
	for _, name := range []string{
		"uots_batch_requests_total",
		"uots_batch_queries_total",
		"uots_batch_shared_total",
		"uots_batch_served_settles_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("/metrics missing %s", name)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	s, _ := testServer(t)
	rec, _ := doJSON(t, s.Handler(), "POST", "/batch", BatchRequest{})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("empty batch = %d", rec.Code)
	}
	big := BatchRequest{Queries: make([]SearchRequest, maxBatchQueries+1)}
	rec, _ = doJSON(t, s.Handler(), "POST", "/batch", big)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d", rec.Code)
	}
	req := httptest.NewRequest("POST", "/batch", strings.NewReader("{bad"))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Errorf("malformed batch body = %d", w.Code)
	}
}
