package server

import "sync"

// semaphore is a weighted concurrency limiter with a non-blocking
// acquire: work beyond capacity is shed (the handler answers 429) rather
// than queued, so worst-case latency stays bounded under overload instead
// of growing with the backlog. Weights let a heavy endpoint (/batch fans
// one request out to a worker pool) count for more than a single search.
type semaphore struct {
	mu       sync.Mutex
	capacity int64
	used     int64
}

func newSemaphore(capacity int64) *semaphore {
	return &semaphore{capacity: capacity}
}

// acquire attempts to reserve n units without blocking. A unit count
// above the total capacity is clamped to it, so a heavy request can still
// run on an otherwise idle server instead of being unserveable; the
// granted weight is returned for the matching release.
func (s *semaphore) acquire(n int64) (granted int64, ok bool) {
	if n > s.capacity {
		n = s.capacity
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.used+n > s.capacity {
		return 0, false
	}
	s.used += n
	return n, true
}

// release returns n previously granted units.
func (s *semaphore) release(n int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.used -= n
	if s.used < 0 {
		panic("server: semaphore released more than acquired")
	}
}

// inFlight reports the currently reserved weight.
func (s *semaphore) inFlight() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.used
}
