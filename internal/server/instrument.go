package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"time"

	"uots/internal/core"
	"uots/internal/obs"
	"uots/internal/rpc"
	"uots/internal/shard"
)

// Request instrumentation: every request through Handler is wrapped by the
// instrument middleware, which assigns a request ID, optionally attaches a
// search tracer, and feeds the process-wide metrics registry. The
// middleware sits outermost so even shed, panicking, and oversized
// requests are counted and carry an ID.

// Header names of the observability contract.
const (
	// RequestIDHeader carries the request ID. An inbound value is
	// honored (so IDs propagate across services); otherwise the server
	// generates one. The response always echoes it.
	RequestIDHeader = "X-Request-ID"
	// TraceHeader set to "1" records the request's search-expansion
	// events for replay from /debug/trace/{id}.
	TraceHeader = "X-Trace"
)

type requestIDKey struct{}

// RequestIDFromContext returns the request ID assigned by the instrument
// middleware, or "" outside a request.
func RequestIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// newRequestID draws a 16-hex-char random ID. Randomness is fine here:
// IDs are correlation handles, not part of any reproducible search path.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "rid-rand-unavailable" // crypto/rand failing is a platform fault
	}
	return hex.EncodeToString(b[:])
}

// sanitizeRequestID accepts a client-supplied ID only when it is short and
// header/log-safe; anything else is discarded and regenerated.
func sanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return ""
		}
	}
	return id
}

// serverMetrics bundles the registry instruments the serving layer
// updates. All names follow the uots_* convention (see CONTRIBUTING.md).
type serverMetrics struct {
	reqTotal *obs.CounterVec // uots_http_requests_total{route,code}
	reqDur   *obs.HistogramVec
	inFlight *obs.Gauge
	shed     *obs.Counter
	expired  *obs.Counter
	panics   *obs.Counter

	searchQueries    *obs.Counter
	searchVisited    *obs.Counter
	searchScans      *obs.Counter
	searchSettled    *obs.Counter
	searchCandidates *obs.Counter
	searchTextScored *obs.Counter
	searchProbes     *obs.Counter
	searchEarlyTerm  *obs.Counter

	batch *obs.BatchMetrics // uots_batch_* (the /batch path's planner counters)
}

func newServerMetrics(reg *obs.Registry) *serverMetrics {
	return &serverMetrics{
		reqTotal: reg.CounterVec("uots_http_requests_total",
			"HTTP requests served, by route and status code.", "route", "code"),
		reqDur: reg.HistogramVec("uots_http_request_duration_seconds",
			"End-to-end HTTP request latency in seconds.", obs.DefLatencyBuckets, "route"),
		inFlight: reg.Gauge("uots_http_in_flight_requests",
			"Requests currently being served."),
		shed: reg.Counter("uots_http_requests_shed_total",
			"Requests shed with 429 by the load-shedding semaphore."),
		expired: reg.Counter("uots_http_deadline_expired_total",
			"Search requests answered 503 because the per-request deadline expired."),
		panics: reg.Counter("uots_http_panics_total",
			"Handler panics converted to 500 responses."),

		searchQueries: reg.Counter("uots_search_queries_total",
			"Search queries the engine completed successfully."),
		searchVisited: reg.Counter("uots_search_visited_trajectories_total",
			"Distinct trajectories touched across all searches (the paper's data-access metric)."),
		searchScans: reg.Counter("uots_search_scan_events_total",
			"(source, trajectory) scan events during expansion."),
		searchSettled: reg.Counter("uots_search_settled_vertices_total",
			"Dijkstra-settled vertices across all query sources and probes."),
		searchCandidates: reg.Counter("uots_search_candidates_total",
			"Trajectories whose exact score was computed."),
		searchTextScored: reg.Counter("uots_search_text_scored_total",
			"Trajectories scored by the textual index."),
		searchProbes: reg.Counter("uots_search_probes_total",
			"Adaptive text-probe distance computations."),
		searchEarlyTerm: reg.Counter("uots_search_early_terminated_total",
			"Searches that stopped early because the upper bound fell below the bar."),

		batch: obs.NewBatchMetrics(reg),
	}
}

// recordSearch accumulates one completed query's work counters.
func (m *serverMetrics) recordSearch(st core.SearchStats) {
	m.searchQueries.Inc()
	m.searchVisited.AddInt(st.VisitedTrajectories)
	m.searchScans.AddInt(st.ScanEvents)
	m.searchSettled.AddInt(st.SettledVertices)
	m.searchCandidates.AddInt(st.Candidates)
	m.searchTextScored.AddInt(st.TextScored)
	m.searchProbes.AddInt(st.Probes)
	if st.EarlyTerminated {
		m.searchEarlyTerm.Inc()
	}
}

// recordBatch accumulates one /batch run's aggregate and planner
// counters (per-entry search work still goes through recordSearch).
func (m *serverMetrics) recordBatch(st core.BatchStats, shared bool) {
	m.batch.RecordBatch(st.Queries, st.Failed, st.DistinctSources, st.SourceRefs,
		st.FrontierSettles, st.ServedSettles, shared)
}

// routeLabel maps a request onto a bounded route set so metric label
// cardinality stays fixed no matter what paths clients probe. Hand-rolled
// rather than http.Request.Pattern, which needs a newer Go than go.mod
// pins.
func routeLabel(r *http.Request) string {
	p := r.URL.Path
	switch p {
	case "/healthz", "/stats", "/metrics", "/search", "/batch", "/debug/slow":
		return p
	}
	switch {
	case strings.HasPrefix(p, "/trajectory/"):
		return "/trajectory/{id}"
	case strings.HasPrefix(p, "/debug/trace/"):
		return "/debug/trace/{id}"
	}
	return "other"
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer for http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument is the outermost middleware: request ID, optional tracer,
// latency/status metrics, in-flight gauge, and the access log line.
//
// Tracing runs in two modes that share one recorder. "X-Trace: 1"
// samples the request explicitly: its trace is retained for
// /debug/trace/{id} and its request ID rides the context as the trace
// ID, so a distributed backend stamps it on the wire and the shard
// servers retain their half under the same key. The slow-query flight
// recorder additionally traces every /search and /batch request when
// Config.SlowQueryThreshold is set — without propagating the trace ID,
// so the shard fleet is not asked to retain spans for unsampled
// traffic — and keeps the spans only when the request's wall clock
// reaches the threshold.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := sanitizeRequestID(r.Header.Get(RequestIDHeader))
		if id == "" {
			id = newRequestID()
		}
		ctx := context.WithValue(r.Context(), requestIDKey{}, id)
		route := routeLabel(r)
		sampled := r.Header.Get(TraceHeader) == "1"
		slowEligible := s.slow != nil && (route == "/search" || route == "/batch")
		var rec *obs.TraceRecorder
		if sampled || slowEligible {
			rec = obs.NewTraceRecorder(0)
			ctx = obs.ContextWithTracer(ctx, rec)
			if sampled {
				ctx = obs.ContextWithTraceID(ctx, id)
			}
		}
		w.Header().Set(RequestIDHeader, id)
		sw := &statusWriter{ResponseWriter: w}
		s.metrics.inFlight.Inc()
		elapsed := obs.Stopwatch()
		next.ServeHTTP(sw, r.WithContext(ctx))
		d := elapsed()
		s.metrics.inFlight.Dec()
		status := sw.status
		if status == 0 {
			status = http.StatusOK // handler wrote nothing: net/http sends 200
		}
		s.metrics.reqTotal.With(route, strconv.Itoa(status)).Inc()
		s.metrics.reqDur.With(route).Observe(d.Seconds())
		if rec != nil {
			if sampled {
				s.traces.Add(id, rec)
				s.traceMetrics.RecordTrace(len(rec.Events()), rec.Dropped())
			}
			if slowEligible && s.slow.Observe(obs.SlowQuery{
				ID: id, Route: route, Status: status,
				Events: rec.Events(), Dropped: rec.Dropped(),
			}, d) {
				s.traceMetrics.RecordSlow()
			}
		}
		if s.logger != nil {
			s.logger.Printf("%s %s %d %s rid=%s", r.Method, r.URL.Path, status,
				d.Round(time.Microsecond), id)
		}
	})
}

// hopJSON summarizes one remote partition hop of a cross-node trace:
// the slice of events bracketed by the distributed executor's
// remote_partition markers, with the hop's wall-clock attribution and
// the replicas that served it.
type hopJSON struct {
	Partition int      `json:"partition"`
	ElapsedMs float64  `json:"elapsedMs"`
	Events    int      `json:"events"`
	Dropped   int      `json:"dropped"`
	Replicas  []string `json:"replicas,omitempty"`
}

// remoteHops extracts the per-hop summary from a merged trace. Local
// (non-distributed) traces have no brackets and yield nil.
func remoteHops(events []obs.SpanEvent) []hopJSON {
	var hops []hopJSON
	open := -1 // index into hops of the bracket being scanned
	for _, ev := range events {
		switch ev.Kind {
		case shard.TracePartition:
			hops = append(hops, hopJSON{Partition: int(ev.Value), ElapsedMs: ev.Extra})
			open = len(hops) - 1
		case shard.TracePartitionDone:
			if open >= 0 {
				hops[open].Dropped = int(ev.Extra)
			}
			open = -1
		case rpc.TraceRemoteSpan:
			if open >= 0 && ev.Note != "" {
				hops[open].Replicas = append(hops[open].Replicas, ev.Note)
			}
		default:
			if open >= 0 {
				hops[open].Events++
			}
		}
	}
	return hops
}

// handleDebugTrace replays the recorded span events of a traced request
// (one sent with "X-Trace: 1"), keyed by its request ID. Distributed
// traces additionally carry a "hops" summary grouping the replayed
// remote spans per partition with their wall-clock attribution.
func (s *Server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.traces.Get(id)
	if !ok {
		writeError(w, r, http.StatusNotFound, codeNotFound,
			"no trace recorded for request id "+strconv.Quote(id))
		return
	}
	events := rec.Events()
	if events == nil {
		events = []obs.SpanEvent{}
	}
	resp := map[string]any{
		"id":      id,
		"events":  events,
		"dropped": rec.Dropped(),
	}
	if hops := remoteHops(events); hops != nil {
		resp["hops"] = hops
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleDebugSlow serves the slow-query flight recorder: the retained
// traces of recent requests that reached Config.SlowQueryThreshold,
// oldest first. 404s when the recorder is disabled, so an operator
// probing a misconfigured fleet sees the reason, not an empty list.
func (s *Server) handleDebugSlow(w http.ResponseWriter, r *http.Request) {
	if s.slow == nil {
		writeError(w, r, http.StatusNotFound, codeNotFound,
			"slow-query recorder disabled; start the server with a slow-query threshold")
		return
	}
	queries := s.slow.Queries()
	if queries == nil {
		queries = []obs.SlowQuery{}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"thresholdMs": float64(s.slow.Threshold()) / float64(time.Millisecond),
		"count":       len(queries),
		"queries":     queries,
	})
}

// Metrics exposes the server's registry so embedding programs
// (cmd/uotsserve's debug listener, tests) can scrape or snapshot it.
func (s *Server) Metrics() *obs.Registry { return s.registry }
