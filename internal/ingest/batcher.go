package ingest

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"uots/internal/obs"
	"uots/internal/trajdb"
)

// ErrBacklog is returned by Ingest when the bounded commit queue is
// full. It is the write path's backpressure signal: the serving layer
// maps it to 429 through the same overload code the admission semaphore
// uses, so clients see one consistent "slow down" regardless of which
// side saturated.
var ErrBacklog = errors.New("ingest: commit queue full")

// ErrClosed is returned once the service has begun draining for
// shutdown: queued batches still commit, new ones are refused.
var ErrClosed = errors.New("ingest: service closed")

// addReq is one Ingest call waiting for its group commit.
type addReq struct {
	trajs []TrajRecord
	done  chan addResult // buffered(1): the committer never blocks on an abandoned waiter
}

// addResult is the commit outcome delivered to a waiter.
type addResult struct {
	ids []trajdb.ExternalID
	gen uint64
	err error
}

// batcher is the group-commit core: requests queue on a bounded channel,
// a single committer goroutine drains them greedily, writes one WAL
// record per group, fsyncs per policy, applies the batch to the store
// and then acks every waiter. Batching amortizes the fsync — the
// dominant cost under FsyncAlways — across every trajectory that arrived
// while the previous commit was in flight.
type batcher struct {
	wal      *WAL
	store    *trajdb.DynamicStore
	maxBatch int
	metrics  *obs.IngestMetrics

	queue chan addReq
	quit  chan struct{}
	wg    sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	// counters surfaced by Service.Stats, independent of the metrics
	// registry so stats work unregistered.
	committed atomic.Uint64 // trajectories applied
	batches   atomic.Uint64 // group commits (== WAL records appended)
	walBytes  atomic.Uint64
	walFsyncs atomic.Uint64
}

// newBatcher starts the committer goroutine (joined by close).
func newBatcher(wal *WAL, store *trajdb.DynamicStore, queueDepth, maxBatch int, m *obs.IngestMetrics) *batcher {
	b := &batcher{
		wal:      wal,
		store:    store,
		maxBatch: maxBatch,
		metrics:  m,
		queue:    make(chan addReq, queueDepth),
		quit:     make(chan struct{}),
	}
	b.wg.Add(1)
	go b.committer()
	return b
}

// enqueue submits trajs and waits for the group commit that includes
// them, returning the assigned handles and the store generation after
// the commit. ErrBacklog reports a full queue (nothing was enqueued);
// ErrClosed a draining batcher. If ctx is done first the commit still
// completes — only the ack is abandoned.
func (b *batcher) enqueue(ctx context.Context, trajs []TrajRecord) ([]trajdb.ExternalID, uint64, error) {
	req := addReq{trajs: trajs, done: make(chan addResult, 1)}
	if err := b.tryQueue(req); err != nil {
		return nil, 0, err
	}
	b.metrics.SetQueueDepth(len(b.queue))
	select {
	case res := <-req.done:
		return res.ids, res.gen, res.err
	case <-ctx.Done():
		return nil, 0, ctx.Err()
	}
}

// tryQueue performs the closed-check and the non-blocking send under
// one read lock, so no request can slip into the queue after close has
// drained it: close flips closed under the write lock, which waits out
// every in-flight send.
func (b *batcher) tryQueue(req addReq) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	select {
	case b.queue <- req:
		return nil
	default:
		return ErrBacklog
	}
}

// committer is the single writer: it owns the WAL append path and the
// store mutation path. Lifetime-scoped by quit; joined via wg by close.
func (b *batcher) committer() {
	defer b.wg.Done()
	for {
		select {
		case <-b.quit:
			b.drain()
			return
		case req := <-b.queue:
			b.commit(b.gather(req))
		}
	}
}

// gather greedily folds queued requests into the group until the batch
// reaches maxBatch trajectories or the queue momentarily empties.
func (b *batcher) gather(first addReq) []addReq {
	batch := []addReq{first}
	total := len(first.trajs)
	for total < b.maxBatch {
		select {
		case req := <-b.queue:
			batch = append(batch, req)
			total += len(req.trajs)
		default:
			return batch
		}
	}
	return batch
}

// drain commits everything already queued at shutdown. No new requests
// can arrive: close flipped the closed flag before signalling quit.
func (b *batcher) drain() {
	for {
		select {
		case req := <-b.queue:
			b.commit(b.gather(req))
		default:
			return
		}
	}
}

// commit performs one group commit: WAL first (durability), then the
// store apply, then the acks. A WAL failure fails every waiter in the
// group and applies nothing — the store never runs ahead of the log.
func (b *batcher) commit(batch []addReq) {
	start := time.Now()
	var rec Record
	for _, r := range batch {
		rec.Trajs = append(rec.Trajs, r.trajs...)
	}
	n, synced, err := b.wal.Append(rec)
	if err != nil {
		for _, r := range batch {
			r.done <- addResult{err: err}
		}
		return
	}
	applied := 0
	results := make([]addResult, len(batch))
	for i, r := range batch {
		ids := make([]trajdb.ExternalID, 0, len(r.trajs))
		var aerr error
		for _, t := range r.trajs {
			id, addErr := b.store.AddWithKeywords(t.Samples, t.Keywords)
			if addErr != nil {
				// Ingest validated these trajectories before queueing, so
				// this is an internal invariant breach; fail this waiter
				// but keep the rest of the group.
				aerr = addErr
				break
			}
			ids = append(ids, id)
		}
		applied += len(ids)
		results[i] = addResult{ids: ids, err: aerr}
	}
	gen := b.store.Generation()
	b.committed.Add(uint64(applied))
	b.batches.Add(1)
	b.walBytes.Add(uint64(n))
	if synced {
		b.walFsyncs.Add(1)
	}
	b.metrics.RecordCommit(applied, n, synced, gen, time.Since(start).Seconds())
	b.metrics.SetQueueDepth(len(b.queue))
	b.metrics.SetSnapshotWork(b.store.SnapshotStats())
	for i, r := range batch {
		results[i].gen = gen
		r.done <- results[i]
	}
}

// close stops admission, commits the backlog and joins the committer.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	close(b.quit)
	b.wg.Wait()
}
