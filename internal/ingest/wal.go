// Package ingest is the live write path of the serving stack: a durable
// write-ahead log, a group-commit batcher applying batches to a
// trajdb.DynamicStore, and an MVCC engine provider that pins every query
// to an immutable snapshot generation so ingest never blocks or tears a
// search.
//
// Durability contract: a trajectory is acknowledged only after its batch
// has been appended to the WAL (and fsynced, under the default "always"
// policy) and applied to the in-memory store. On restart the WAL is
// replayed before serving; a torn tail (the record being written when
// the process died) is truncated and reported, while a corrupt record
// body (CRC mismatch) is a refuse-to-serve error — torn tails are the
// expected crash artifact, silent bit rot is not.
package ingest

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// walMagic identifies the ingest write-ahead-log format, version 1. The
// record layout after the magic is documented in CONTRIBUTING.md (WAL
// record-format contract): each record is
//
//	u32 payloadLen | u32 crc32-IEEE(payload) | payload
//
// and the payload is
//
//	u32 trajCount
//	per trajectory:
//	  u32 sampleCount, then per sample: u32 vertex | u64 float64bits(t)
//	  u32 keywordCount, then per keyword: u32 len | bytes
//
// all little-endian. Keywords are stored as strings, not TermIDs, so a
// replay re-interns them against whatever vocabulary the process booted
// with — term IDs are process-local, the WAL is not.
const walMagic = "UOTSWAL1"

const (
	walHeaderLen = 8       // payload length + CRC
	maxCount     = 1 << 20 // plausibility cap on any decoded count
	maxRecordLen = 1 << 26 // 64 MiB cap on a single record payload
)

// ErrCorrupt tags WAL corruption that truncation cannot repair: a record
// whose CRC does not match its payload, or a payload that does not
// decode. Test with errors.Is; inspect with errors.As into *CorruptError.
var ErrCorrupt = errors.New("ingest: wal corrupt")

// CorruptError reports an unrecoverable corruption in the WAL. It wraps
// ErrCorrupt. Unlike a torn tail (which OpenWAL silently truncates and
// reports in RecoveryInfo), corruption in the body of the log means
// acknowledged writes cannot be trusted, so OpenWAL refuses to serve.
type CorruptError struct {
	Path   string // the WAL file
	Offset int64  // byte offset of the corrupt record's header
	Reason string // what failed ("crc mismatch", "implausible count", ...)
}

// Error implements error.
func (e *CorruptError) Error() string {
	return fmt.Sprintf("ingest: wal %s corrupt at offset %d: %s", e.Path, e.Offset, e.Reason)
}

// Unwrap exposes ErrCorrupt to errors.Is.
func (e *CorruptError) Unwrap() error { return ErrCorrupt }

// FsyncPolicy selects when the WAL fsyncs after an append.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every record: an acknowledged batch
	// survives power loss. The default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs when at least SyncInterval has elapsed since
	// the previous sync: bounded data loss, much higher throughput on
	// slow devices.
	FsyncInterval
	// FsyncNone never syncs on the append path (the OS flushes on its
	// own schedule; Close still syncs). For benchmarks and tests.
	FsyncNone
)

// String returns the flag spelling of the policy.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNone:
		return "none"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag spelling.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "none":
		return FsyncNone, nil
	}
	return 0, fmt.Errorf("ingest: unknown fsync policy %q (want always, interval or none)", s)
}

// Hooks injects faults into the WAL's I/O paths for tests, mirroring the
// FaultStore convention on the read side: a hook returning an error
// makes the corresponding syscall site fail without touching the file.
type Hooks struct {
	BeforeWrite func() error // before the record write
	BeforeSync  func() error // before each fsync
}

// TrajRecord is one trajectory as carried by the WAL and the ingest API:
// raw samples plus keyword strings (interned on apply).
type TrajRecord struct {
	Samples  []trajdb.Sample
	Keywords []string
}

// Record is one WAL entry: the trajectories of one group commit.
type Record struct {
	Trajs []TrajRecord
}

// RecoveryInfo describes what OpenWAL found on disk.
type RecoveryInfo struct {
	Created        bool  // no log existed; a fresh one was started
	Records        int   // records replayed
	Trajs          int   // trajectories replayed
	TruncatedBytes int64 // torn tail dropped (0 for a clean log)
}

// WALOptions configures a WAL.
type WALOptions struct {
	Fsync        FsyncPolicy
	SyncInterval time.Duration // FsyncInterval spacing; defaults to 50ms
	Hooks        Hooks
}

// WAL is an append-only, CRC-framed log of ingest batches. Appends are
// serialized by an internal mutex; the group-commit batcher is its only
// writer in production, the mutex makes misuse safe rather than racy.
type WAL struct {
	path string
	opts WALOptions

	mu       sync.Mutex
	f        *os.File
	off      atomic.Int64 // end of the last good record; the append position
	lastSync time.Time
	closed   bool
}

// OpenWAL opens (creating if needed) the log at path, replays every
// intact record through apply in append order, truncates a torn tail,
// and returns the WAL positioned for appends. A nil apply discards the
// replayed records (used by tests that only exercise the codec). Errors:
// a *CorruptError (wrapping ErrCorrupt) for CRC/decode failures, the
// apply error verbatim if applying a record fails, otherwise wrapped I/O
// errors.
func OpenWAL(path string, opts WALOptions, apply func(Record) error) (*WAL, RecoveryInfo, error) {
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = 50 * time.Millisecond
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, RecoveryInfo{}, fmt.Errorf("ingest: opening wal: %w", err)
	}
	w := &WAL{path: path, opts: opts, f: f, lastSync: time.Now()}
	info, err := w.recover(apply)
	if err != nil {
		f.Close()
		return nil, info, err
	}
	return w, info, nil
}

// recover replays the log and leaves the file positioned at the end of
// the last good record.
func (w *WAL) recover(apply func(Record) error) (RecoveryInfo, error) {
	var info RecoveryInfo
	size, err := w.f.Seek(0, io.SeekEnd)
	if err != nil {
		return info, fmt.Errorf("ingest: sizing wal: %w", err)
	}
	if size == 0 {
		info.Created = true
		if _, err := w.f.WriteString(walMagic); err != nil {
			return info, fmt.Errorf("ingest: writing wal magic: %w", err)
		}
		if err := w.syncLocked(); err != nil {
			return info, err
		}
		w.off.Store(int64(len(walMagic)))
		return info, nil
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return info, fmt.Errorf("ingest: seeking wal: %w", err)
	}
	br := bufio.NewReader(w.f)
	magic := make([]byte, len(walMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		// Shorter than the magic: the process died while creating the
		// log, before any record could have been acknowledged. Start over.
		return info, w.truncateTail(0, size, &info)
	}
	if string(magic) != walMagic {
		return info, &CorruptError{Path: w.path, Offset: 0, Reason: fmt.Sprintf("bad magic %q", magic)}
	}
	w.off.Store(int64(len(walMagic)))
	header := make([]byte, walHeaderLen)
	for {
		if _, err := io.ReadFull(br, header); err != nil {
			if err == io.EOF {
				return info, nil // clean end of log
			}
			return info, w.truncateTail(w.off.Load(), size, &info) // torn header
		}
		payloadLen := binary.LittleEndian.Uint32(header[0:4])
		wantCRC := binary.LittleEndian.Uint32(header[4:8])
		if payloadLen > maxRecordLen {
			return info, &CorruptError{Path: w.path, Offset: w.off.Load(),
				Reason: fmt.Sprintf("implausible record length %d", payloadLen)}
		}
		payload := make([]byte, payloadLen)
		if _, err := io.ReadFull(br, payload); err != nil {
			return info, w.truncateTail(w.off.Load(), size, &info) // torn payload
		}
		if got := crc32.ChecksumIEEE(payload); got != wantCRC {
			return info, &CorruptError{Path: w.path, Offset: w.off.Load(),
				Reason: fmt.Sprintf("crc mismatch (stored %08x, computed %08x)", wantCRC, got)}
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return info, &CorruptError{Path: w.path, Offset: w.off.Load(), Reason: err.Error()}
		}
		if apply != nil {
			if err := apply(rec); err != nil {
				return info, fmt.Errorf("ingest: replaying wal record %d: %w", info.Records, err)
			}
		}
		w.off.Add(walHeaderLen + int64(payloadLen))
		info.Records++
		info.Trajs += len(rec.Trajs)
	}
}

// truncateTail drops the torn bytes past the last good record and
// positions the file for appends there.
func (w *WAL) truncateTail(off, size int64, info *RecoveryInfo) error {
	info.TruncatedBytes = size - off
	if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("ingest: truncating torn wal tail: %w", err)
	}
	if _, err := w.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("ingest: seeking wal: %w", err)
	}
	if off == 0 {
		if _, err := w.f.WriteString(walMagic); err != nil {
			return fmt.Errorf("ingest: writing wal magic: %w", err)
		}
		off = int64(len(walMagic))
	}
	w.off.Store(off)
	return w.syncLocked()
}

// Append encodes rec, writes it as one framed record and fsyncs per the
// policy. It returns the bytes appended and whether this append synced.
// On failure the file is rewound to the end of the last good record and
// the error wraps *trajdb.StoreError — the storage-fault convention the
// serving stack already maps to 5xx.
func (w *WAL) Append(rec Record) (n int, synced bool, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, false, ErrClosed
	}
	payload := encodeRecord(rec)
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderLen:], payload)

	if h := w.opts.Hooks.BeforeWrite; h != nil {
		if herr := h(); herr != nil {
			return 0, false, fmt.Errorf("ingest: %w",
				&trajdb.StoreError{Op: "wal.append", ID: -1, Err: herr})
		}
	}
	if _, werr := w.f.Write(frame); werr != nil {
		// The write may have landed partially; restore the invariant
		// that the file ends at the last good record.
		w.f.Truncate(w.off.Load())
		w.f.Seek(w.off.Load(), io.SeekStart)
		return 0, false, fmt.Errorf("ingest: %w",
			&trajdb.StoreError{Op: "wal.append", ID: -1, Err: werr})
	}
	w.off.Add(int64(len(frame)))
	switch w.opts.Fsync {
	case FsyncAlways:
		synced = true
	case FsyncInterval:
		synced = time.Since(w.lastSync) >= w.opts.SyncInterval
	}
	if synced {
		if serr := w.syncLocked(); serr != nil {
			// The record is written but not durably: report failure (the
			// caller must not ack) knowing the record may still replay
			// after a restart — at-least-once, never silent loss.
			return len(frame), false, serr
		}
	}
	return len(frame), synced, nil
}

// Sync forces an fsync regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	return w.syncLocked()
}

// syncLocked runs the sync hook and fsyncs. Callers hold w.mu (or are
// still single-threaded in OpenWAL).
func (w *WAL) syncLocked() error {
	if h := w.opts.Hooks.BeforeSync; h != nil {
		if herr := h(); herr != nil {
			return fmt.Errorf("ingest: %w", &trajdb.StoreError{Op: "wal.sync", ID: -1, Err: herr})
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("ingest: %w", &trajdb.StoreError{Op: "wal.sync", ID: -1, Err: err})
	}
	w.lastSync = time.Now()
	return nil
}

// Size returns the current length of the log in bytes. Lock-free so
// stats surfaces stay responsive while an append is blocked in the
// device (or a test hook).
func (w *WAL) Size() int64 {
	return w.off.Load()
}

// Close syncs and closes the log. Further appends return ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	serr := w.syncLocked()
	cerr := w.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// encodeRecord serializes rec's payload (the frame header is added by
// Append, which needs the CRC over exactly these bytes).
func encodeRecord(rec Record) []byte {
	var b bytes.Buffer
	putU32(&b, uint32(len(rec.Trajs)))
	for _, t := range rec.Trajs {
		putU32(&b, uint32(len(t.Samples)))
		for _, s := range t.Samples {
			putU32(&b, uint32(s.V))
			putU64(&b, math.Float64bits(s.T))
		}
		putU32(&b, uint32(len(t.Keywords)))
		for _, k := range t.Keywords {
			putU32(&b, uint32(len(k)))
			b.WriteString(k)
		}
	}
	return b.Bytes()
}

// decodeRecord parses a payload produced by encodeRecord. Errors are
// wrapped into *CorruptError by the caller, which knows the file offset.
func decodeRecord(payload []byte) (Record, error) {
	r := walReader{buf: payload}
	nt := r.u32()
	if nt > maxCount {
		return Record{}, fmt.Errorf("implausible trajectory count %d", nt)
	}
	rec := Record{Trajs: make([]TrajRecord, 0, nt)}
	for i := uint32(0); i < nt; i++ {
		ns := r.u32()
		if ns > maxCount {
			return Record{}, fmt.Errorf("trajectory %d: implausible sample count %d", i, ns)
		}
		t := TrajRecord{Samples: make([]trajdb.Sample, ns)}
		for j := range t.Samples {
			v := r.u32()
			bits := r.u64()
			t.Samples[j] = trajdb.Sample{V: roadnet.VertexID(v), T: math.Float64frombits(bits)}
		}
		nk := r.u32()
		if nk > maxCount {
			return Record{}, fmt.Errorf("trajectory %d: implausible keyword count %d", i, nk)
		}
		t.Keywords = make([]string, nk)
		for j := range t.Keywords {
			kl := r.u32()
			if kl > maxCount {
				return Record{}, fmt.Errorf("trajectory %d: implausible keyword length %d", i, kl)
			}
			t.Keywords[j] = string(r.bytes(int(kl)))
		}
		rec.Trajs = append(rec.Trajs, t)
	}
	if r.err != nil {
		return Record{}, r.err
	}
	if r.pos != len(r.buf) {
		return Record{}, fmt.Errorf("%d trailing bytes after last trajectory", len(r.buf)-r.pos)
	}
	return rec, nil
}

// walReader walks a payload with sticky short-read errors, so decode
// code reads linearly and checks once.
type walReader struct {
	buf []byte
	pos int
	err error
}

func (r *walReader) u32() uint32 {
	b := r.bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *walReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *walReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.pos+n > len(r.buf) {
		r.err = fmt.Errorf("payload truncated at byte %d", r.pos)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

func putU32(b *bytes.Buffer, v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	b.Write(buf[:])
}

func putU64(b *bytes.Buffer, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	b.Write(buf[:])
}
