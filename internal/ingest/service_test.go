package ingest

import (
	"context"
	"errors"
	"math/rand/v2"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"uots/internal/core"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

func testGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 8, Cols: 8, Style: roadnet.StyleDense, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// openService builds an empty dynamic store over the deterministic test
// graph and an ingest service logging into a temp dir.
func openService(t *testing.T, cfg Config) (*Service, *trajdb.DynamicStore) {
	t.Helper()
	g := testGraph(t)
	store := trajdb.NewDynamic(g, textual.NewVocab())
	if cfg.WALPath == "" {
		cfg.WALPath = filepath.Join(t.TempDir(), "ingest.wal")
	}
	svc, err := Open(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, store
}

// mkTraj fabricates a valid trajectory over g: monotone times, in-range
// vertices, one to three keywords.
func mkTraj(rng *rand.Rand, g *roadnet.Graph, n int) TrajRecord {
	words := []string{"museum", "park", "café", "harbor", "jazz", "garden"}
	samples := make([]trajdb.Sample, n)
	tm := rng.Float64() * 1000
	for i := range samples {
		samples[i] = trajdb.Sample{V: roadnet.VertexID(rng.IntN(g.NumVertices())), T: tm}
		tm += 1 + rng.Float64()*10
	}
	kws := make([]string, 1+rng.IntN(3))
	for i := range kws {
		kws[i] = words[rng.IntN(len(words))]
	}
	return TrajRecord{Samples: samples, Keywords: kws}
}

func TestIngestCommitAndQuery(t *testing.T) {
	svc, store := openService(t, Config{Fsync: FsyncNone})
	rng := rand.New(rand.NewPCG(1, 1))
	batch := []TrajRecord{mkTraj(rng, store.Graph(), 4), mkTraj(rng, store.Graph(), 2)}
	ids, gen, err := svc.Ingest(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("got %d ids, want 2", len(ids))
	}
	if gen == 0 {
		t.Error("generation = 0 after a commit")
	}
	if store.Len() != 2 {
		t.Errorf("store has %d live trajectories, want 2", store.Len())
	}
	eng, egen, err := svc.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if egen < gen {
		t.Errorf("engine generation %d predates commit generation %d", egen, gen)
	}
	if n := eng.Store().NumTrajectories(); n != 2 {
		t.Errorf("engine sees %d trajectories, want 2", n)
	}
	q := core.Query{Locations: []roadnet.VertexID{batch[0].Samples[0].V}, Lambda: 1, K: 2}
	res, _, err := eng.SearchCtx(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Error("search over ingested corpus returned nothing")
	}
	st := svc.Stats()
	if st.Accepted != 2 || st.Committed != 2 || st.Batches == 0 {
		t.Errorf("stats = %+v, want accepted=2 committed=2 batches>0", st)
	}
	if st.WALBytes == 0 || st.WALSize == 0 {
		t.Errorf("stats = %+v, want nonzero WAL accounting", st)
	}
}

func TestIngestValidation(t *testing.T) {
	svc, store := openService(t, Config{Fsync: FsyncNone})
	ctx := context.Background()
	if _, _, err := svc.Ingest(ctx, nil); !errors.Is(err, ErrInvalid) {
		t.Errorf("empty batch: %v, want ErrInvalid", err)
	}
	bad := TrajRecord{Samples: []trajdb.Sample{{V: roadnet.VertexID(store.Graph().NumVertices()), T: 0}}}
	if _, _, err := svc.Ingest(ctx, []TrajRecord{bad}); !errors.Is(err, ErrInvalid) {
		t.Errorf("out-of-range vertex: %v, want ErrInvalid", err)
	}
	if st := svc.Stats(); st.RejectedInvalid != 2 || st.Committed != 0 {
		t.Errorf("stats = %+v, want 2 invalid rejections, 0 committed", st)
	}
}

// TestIngestBacklog wedges the committer inside a WAL write and fills
// the bounded queue: the next submission must bounce immediately with
// ErrBacklog, and everything accepted must still commit once the WAL
// unblocks.
func TestIngestBacklog(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	hooks := Hooks{BeforeWrite: func() error {
		once.Do(func() { close(blocked) })
		<-release
		return nil
	}}
	svc, store := openService(t, Config{Fsync: FsyncNone, QueueDepth: 2, Hooks: hooks})
	rng := rand.New(rand.NewPCG(2, 2))
	trajs := make([][]TrajRecord, 4)
	for i := range trajs {
		trajs[i] = []TrajRecord{mkTraj(rng, store.Graph(), 3)}
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		// One submission wedges in commit, two fill the queue.
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = svc.Ingest(ctx, trajs[i])
		}(i)
		if i == 0 {
			<-blocked // the committer holds batch 0; the queue is empty again
		}
	}
	// Wait for the two fillers to land in the queue.
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().QueueDepth != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: stats = %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if _, _, err := svc.Ingest(ctx, trajs[3]); !errors.Is(err, ErrBacklog) {
		t.Errorf("overflow submission: %v, want ErrBacklog", err)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submission %d failed: %v", i, err)
		}
	}
	if st := svc.Stats(); st.Committed != 3 || st.RejectedBacklog != 1 {
		t.Errorf("stats = %+v, want committed=3 rejected_backlog=1", st)
	}
}

// TestCloseDrains shuts down with batches still queued: close must
// commit every accepted batch before returning, and later submissions
// must fail with ErrClosed.
func TestCloseDrains(t *testing.T) {
	release := make(chan struct{})
	blocked := make(chan struct{})
	var once sync.Once
	hooks := Hooks{BeforeWrite: func() error {
		once.Do(func() { close(blocked) })
		<-release
		return nil
	}}
	svc, store := openService(t, Config{Fsync: FsyncNone, QueueDepth: 4, Hooks: hooks})
	rng := rand.New(rand.NewPCG(3, 3))
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		batch := []TrajRecord{mkTraj(rng, store.Graph(), 2)}
		wg.Add(1)
		go func(i int, batch []TrajRecord) {
			defer wg.Done()
			_, _, errs[i] = svc.Ingest(ctx, batch)
		}(i, batch)
		if i == 0 {
			<-blocked
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for svc.Stats().QueueDepth != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: stats = %+v", svc.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	closed := make(chan error, 1)
	go func() { closed <- svc.Close() }()
	close(release)
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("submission %d failed: %v", i, err)
		}
	}
	if store.Len() != 3 {
		t.Errorf("store has %d trajectories after drain, want 3", store.Len())
	}
	if _, _, err := svc.Ingest(ctx, []TrajRecord{mkTraj(rng, store.Graph(), 2)}); !errors.Is(err, ErrClosed) {
		t.Errorf("post-close submission: %v, want ErrClosed", err)
	}
}

// requireSnapshotsEqual compares two store snapshots trajectory by
// trajectory: samples, keyword term sets, and the terms they decode to.
func requireSnapshotsEqual(t *testing.T, got, want *trajdb.Store) {
	t.Helper()
	if got.NumTrajectories() != want.NumTrajectories() {
		t.Fatalf("got %d trajectories, want %d", got.NumTrajectories(), want.NumTrajectories())
	}
	for id := trajdb.TrajID(0); int(id) < want.NumTrajectories(); id++ {
		g, w := got.Traj(id), want.Traj(id)
		if len(g.Samples) != len(w.Samples) {
			t.Fatalf("traj %d: %d samples, want %d", id, len(g.Samples), len(w.Samples))
		}
		for i := range w.Samples {
			if g.Samples[i] != w.Samples[i] {
				t.Errorf("traj %d sample %d = %+v, want %+v", id, i, g.Samples[i], w.Samples[i])
			}
		}
		if len(g.Keywords) != len(w.Keywords) {
			t.Fatalf("traj %d: %d keywords, want %d", id, len(g.Keywords), len(w.Keywords))
		}
		for i := range w.Keywords {
			if g.Keywords[i] != w.Keywords[i] {
				t.Errorf("traj %d keyword %d = %d, want %d", id, i, g.Keywords[i], w.Keywords[i])
			}
			gt, _ := got.Vocab().Term(g.Keywords[i])
			wt, _ := want.Vocab().Term(w.Keywords[i])
			if gt != wt {
				t.Errorf("traj %d keyword %d decodes to %q, want %q", id, i, gt, wt)
			}
		}
	}
}

// TestReplayRestoresStore commits a stream of batches, closes, and
// reopens the WAL over a fresh store: replay must reconstruct the same
// corpus, trajectory for trajectory.
func TestReplayRestoresStore(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "ingest.wal")
	svc, store := openService(t, Config{Fsync: FsyncAlways, WALPath: walPath})
	rng := rand.New(rand.NewPCG(4, 4))
	ctx := context.Background()
	total := 0
	for i := 0; i < 10; i++ {
		batch := make([]TrajRecord, 1+rng.IntN(3))
		for j := range batch {
			batch[j] = mkTraj(rng, store.Graph(), 1+rng.IntN(5))
		}
		if _, _, err := svc.Ingest(ctx, batch); err != nil {
			t.Fatal(err)
		}
		total += len(batch)
	}
	want, _ := store.Snapshot()
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := trajdb.NewDynamic(testGraph(t), textual.NewVocab())
	svc2, err := Open(store2, Config{Fsync: FsyncAlways, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	info := svc2.Recovery()
	if info.Created || info.Trajs != total || info.Records == 0 || info.TruncatedBytes != 0 {
		t.Errorf("recovery = %+v, want %d trajs replayed from an intact log", info, total)
	}
	got, _ := store2.Snapshot()
	requireSnapshotsEqual(t, got, want)
	if st := svc2.Stats(); st.ReplayedTrajs != total {
		t.Errorf("stats report %d replayed trajs, want %d", st.ReplayedTrajs, total)
	}
}

// TestEngineCache pins engine identity to the snapshot generation: the
// same engine between commits, a fresh one after.
func TestEngineCache(t *testing.T) {
	svc, store := openService(t, Config{Fsync: FsyncNone})
	if _, _, err := svc.Engine(); !errors.Is(err, core.ErrEmptyStore) {
		t.Fatalf("Engine over empty store: %v, want ErrEmptyStore", err)
	}
	rng := rand.New(rand.NewPCG(5, 5))
	ctx := context.Background()
	if _, _, err := svc.Ingest(ctx, []TrajRecord{mkTraj(rng, store.Graph(), 3)}); err != nil {
		t.Fatal(err)
	}
	e1, gen1, err := svc.Engine()
	if err != nil {
		t.Fatal(err)
	}
	e2, gen2, err := svc.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if e1 != e2 || gen1 != gen2 {
		t.Error("engine not cached across an unchanged generation")
	}
	if _, _, err := svc.Ingest(ctx, []TrajRecord{mkTraj(rng, store.Graph(), 3)}); err != nil {
		t.Fatal(err)
	}
	e3, gen3, err := svc.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if e3 == e1 || gen3 <= gen1 {
		t.Errorf("engine/generation did not advance after a commit (gen %d → %d)", gen1, gen3)
	}
	if e1.Store().NumTrajectories() != 1 || e3.Store().NumTrajectories() != 2 {
		t.Errorf("pinned stores see %d and %d trajectories, want 1 and 2",
			e1.Store().NumTrajectories(), e3.Store().NumTrajectories())
	}
}

// TestMVCCIngestQuerySoak is the race-mode invariant check: queries pin
// a snapshot generation and observe a frozen, internally consistent
// view while ingest commits concurrently. Run with -race in CI.
func TestMVCCIngestQuerySoak(t *testing.T) {
	svc, store := openService(t, Config{Fsync: FsyncNone})
	g := store.Graph()
	rng := rand.New(rand.NewPCG(6, 6))
	ctx := context.Background()
	// Seed so the first engine build succeeds.
	seed := make([]TrajRecord, 8)
	for i := range seed {
		seed[i] = mkTraj(rng, g, 3)
	}
	if _, _, err := svc.Ingest(ctx, seed); err != nil {
		t.Fatal(err)
	}

	const writerBatches = 120
	var wg sync.WaitGroup
	wg.Add(1)
	writerDone := make(chan struct{})
	go func() {
		defer wg.Done()
		defer close(writerDone)
		wrng := rand.New(rand.NewPCG(7, 7))
		for i := 0; i < writerBatches; i++ {
			batch := make([]TrajRecord, 1+wrng.IntN(3))
			for j := range batch {
				batch[j] = mkTraj(wrng, g, 1+wrng.IntN(4))
			}
			if _, _, err := svc.Ingest(ctx, batch); err != nil {
				t.Errorf("writer batch %d: %v", i, err)
				return
			}
		}
	}()

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			qrng := rand.New(rand.NewPCG(uint64(r), 8))
			words := []string{"museum", "park", "jazz"}
			for {
				select {
				case <-writerDone:
					return
				default:
				}
				eng, gen, err := svc.Engine()
				if err != nil {
					t.Errorf("reader %d: Engine: %v", r, err)
					return
				}
				n := eng.Store().NumTrajectories()
				q := core.Query{
					Locations: []roadnet.VertexID{roadnet.VertexID(qrng.IntN(g.NumVertices()))},
					Keywords:  store.Vocab().InternAll([]string{words[qrng.IntN(len(words))]}),
					Lambda:    0.6,
					K:         3,
				}
				r1, _, err := eng.SearchCtx(ctx, q)
				if err != nil {
					t.Errorf("reader %d: search at gen %d: %v", r, gen, err)
					return
				}
				r2, _, err := eng.SearchCtx(ctx, q)
				if err != nil {
					t.Errorf("reader %d: repeat search at gen %d: %v", r, gen, err)
					return
				}
				// The pinned engine's view must be frozen: same corpus
				// size, and the identical query scores identically.
				if m := eng.Store().NumTrajectories(); m != n {
					t.Errorf("reader %d: pinned store grew %d → %d mid-request", r, n, m)
					return
				}
				if len(r1) != len(r2) {
					t.Errorf("reader %d: repeat search returned %d vs %d results at gen %d", r, len(r1), len(r2), gen)
					return
				}
				for i := range r1 {
					if r1[i].Traj != r2[i].Traj || r1[i].Score != r2[i].Score {
						t.Errorf("reader %d: result %d differs on a pinned snapshot: %+v vs %+v",
							r, i, r1[i], r2[i])
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	st := svc.Stats()
	if st.Committed != st.Accepted {
		t.Errorf("ingest lag after quiesce: accepted %d, committed %d", st.Accepted, st.Committed)
	}
	eng, _, err := svc.Engine()
	if err != nil {
		t.Fatal(err)
	}
	if n := eng.Store().NumTrajectories(); uint64(n) != st.Committed {
		t.Errorf("final engine sees %d trajectories, committed %d", n, st.Committed)
	}
	rebuilds, extensions := store.SnapshotStats()
	if extensions == 0 {
		t.Errorf("soak performed no incremental extensions (rebuilds=%d)", rebuilds)
	}
}
