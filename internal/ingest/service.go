package ingest

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"uots/internal/core"
	"uots/internal/index"
	"uots/internal/obs"
	"uots/internal/trajdb"
)

// ErrInvalid tags an ingest submission rejected before queueing:
// malformed samples, an empty batch, or an oversized one. The serving
// layer maps it to 400.
var ErrInvalid = errors.New("ingest: invalid trajectory")

// Config configures the ingest service.
type Config struct {
	// WALPath is the log file. Required.
	WALPath string
	// Fsync selects the durability/throughput trade-off (default
	// FsyncAlways).
	Fsync FsyncPolicy
	// SyncInterval spaces fsyncs under FsyncInterval (default 50ms).
	SyncInterval time.Duration
	// QueueDepth bounds the commit queue; a full queue rejects with
	// ErrBacklog (default 256 requests).
	QueueDepth int
	// MaxBatch caps trajectories folded into one group commit (default
	// 128).
	MaxBatch int
	// Engine configures the query engines built over snapshots. The
	// zero value selects the paper configuration. A non-nil Engine.Index
	// seeds the pruning index: Engine() keeps it covering the current
	// snapshot by incremental extension as ingest grows the corpus.
	Engine core.Options
	// Metrics receives the uots_ingest_* instruments; nil disables.
	Metrics *obs.IngestMetrics
	// IndexMetrics receives the uots_index_* instruments describing the
	// incremental pruning-index maintenance; nil disables.
	IndexMetrics *obs.IndexMetrics
	// Hooks injects I/O faults for tests.
	Hooks Hooks
}

// Service is the live write path over one DynamicStore: WAL-durable
// batched ingest plus MVCC snapshot reads. Reads and writes never block
// each other — Engine hands out an engine pinned to an immutable
// snapshot, and ingest only ever builds new snapshots.
type Service struct {
	store    *trajdb.DynamicStore
	wal      *WAL
	batcher  *batcher
	cfg      Config
	recovery RecoveryInfo

	accepted        atomic.Uint64 // trajectories admitted to the queue
	rejectedInvalid atomic.Uint64
	rejectedBacklog atomic.Uint64
	rejectedClosed  atomic.Uint64

	emu       sync.Mutex // engine cache, keyed by snapshot generation
	engine    *core.Engine
	engineGen uint64
	index     *index.TrajBounds // current pruning index (nil when disabled)

	closeOnce sync.Once
	closeErr  error
}

// Open replays the WAL at cfg.WALPath into store and starts the commit
// pipeline. The store must carry a vocabulary (WAL keywords are interned
// on apply). Replay failures follow OpenWAL's contract: torn tails are
// truncated and reported via Recovery, corruption refuses to serve.
func Open(store *trajdb.DynamicStore, cfg Config) (*Service, error) {
	if cfg.WALPath == "" {
		return nil, errors.New("ingest: Config.WALPath is required")
	}
	if store.Vocab() == nil {
		return nil, errors.New("ingest: store must have a vocabulary")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 256
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 128
	}
	s := &Service{store: store, cfg: cfg}
	wopts := WALOptions{Fsync: cfg.Fsync, SyncInterval: cfg.SyncInterval, Hooks: cfg.Hooks}
	wal, info, err := OpenWAL(cfg.WALPath, wopts, func(rec Record) error {
		for i, t := range rec.Trajs {
			if _, err := store.AddWithKeywords(t.Samples, t.Keywords); err != nil {
				return fmt.Errorf("trajectory %d: %w", i, err)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	s.wal, s.recovery = wal, info
	if m := cfg.Metrics; m != nil {
		m.Replayed.AddInt(info.Records)
		m.SetSnapshotWork(store.SnapshotStats())
	}
	s.batcher = newBatcher(wal, store, cfg.QueueDepth, cfg.MaxBatch, cfg.Metrics)
	return s, nil
}

// Recovery reports what the boot-time WAL replay found.
func (s *Service) Recovery() RecoveryInfo { return s.recovery }

// Store returns the dynamic store the service ingests into.
func (s *Service) Store() *trajdb.DynamicStore { return s.store }

// Ingest validates trajs, enqueues them for group commit and waits for
// durability, returning the assigned handles and the store generation
// that includes them. Validation failures return an error wrapping
// ErrInvalid without consuming queue space; a full queue returns
// ErrBacklog; a draining service ErrClosed. Cancellation of ctx abandons
// the wait, not the commit.
func (s *Service) Ingest(ctx context.Context, trajs []TrajRecord) ([]trajdb.ExternalID, uint64, error) {
	if len(trajs) == 0 {
		s.rejectedInvalid.Add(1)
		s.cfg.Metrics.RecordReject(obs.IngestRejectInvalid)
		return nil, 0, fmt.Errorf("%w: empty batch", ErrInvalid)
	}
	g := s.store.Graph()
	for i, t := range trajs {
		if err := trajdb.ValidateSamples(g, t.Samples); err != nil {
			s.rejectedInvalid.Add(1)
			s.cfg.Metrics.RecordReject(obs.IngestRejectInvalid)
			return nil, 0, fmt.Errorf("%w: trajectory %d: %v", ErrInvalid, i, err)
		}
	}
	s.accepted.Add(uint64(len(trajs)))
	s.cfg.Metrics.RecordAccepted(len(trajs))
	ids, gen, err := s.batcher.enqueue(ctx, trajs)
	switch {
	case errors.Is(err, ErrBacklog):
		s.rejectedBacklog.Add(1)
		s.cfg.Metrics.RecordReject(obs.IngestRejectBacklog)
	case errors.Is(err, ErrClosed):
		s.rejectedClosed.Add(1)
		s.cfg.Metrics.RecordReject(obs.IngestRejectClosed)
	}
	return ids, gen, err
}

// Engine returns a query engine pinned to the current snapshot
// generation. The engine (and the immutable snapshot under it) stays
// valid forever — concurrent ingest builds new snapshots without
// touching old ones — so a request that captured an engine keeps a
// consistent view for its whole lifetime. Engines are cached per
// generation: between commits every query shares one engine, and a
// commit costs one incremental snapshot extension on the next read.
func (s *Service) Engine() (*core.Engine, uint64, error) {
	s.emu.Lock()
	defer s.emu.Unlock()
	snap, _, gen := s.store.SnapshotGen()
	if s.engine != nil && s.engineGen == gen {
		return s.engine, gen, nil
	}
	opts := s.cfg.Engine
	if opts.Index != nil {
		opts.Index = s.indexFor(snap)
	}
	e, err := core.NewEngine(snap, opts)
	if err != nil {
		return nil, gen, err
	}
	s.engine, s.engineGen = e, gen
	return e, gen, nil
}

// indexFor keeps the pruning index covering the snapshot the next engine
// is built over — the incremental MVCC maintenance path. An add-only
// epoch extends the previous index with just the appended tail; anything
// else (a seed index that never matched, which cannot happen through
// this service's add-only writes, but is cheap to defend against) falls
// back to a full rebuild. Old engines keep their old index value: Extend
// never mutates the receiver. Callers hold s.emu.
func (s *Service) indexFor(snap *trajdb.Store) *index.TrajBounds {
	if s.index == nil {
		s.index = s.cfg.Engine.Index
	}
	switch n := snap.NumTrajectories(); {
	case s.index.NumTrajectories() == n:
		// Up to date (the seed index already covers the boot snapshot).
	case s.index.NumTrajectories() < n:
		added := n - s.index.NumTrajectories()
		s.index = s.index.Extend(snap)
		s.cfg.IndexMetrics.RecordExtension(added, n)
	default:
		start := time.Now()
		s.index = index.NewTrajBounds(snap, s.cfg.Engine.Index.Landmarks())
		s.cfg.IndexMetrics.RecordBuild(s.cfg.Engine.Index.Landmarks().Count(), n, time.Since(start).Seconds())
	}
	return s.index
}

// Stats is a point-in-time snapshot of the write path, served at
// /ingest/stats and scraped by the load harness for ingest lag.
type Stats struct {
	Live            int    `json:"live"`
	Generation      uint64 `json:"generation"`
	QueueDepth      int    `json:"queue_depth"`
	Accepted        uint64 `json:"accepted"`
	Committed       uint64 `json:"committed"`
	Batches         uint64 `json:"batches"`
	RejectedInvalid uint64 `json:"rejected_invalid"`
	RejectedBacklog uint64 `json:"rejected_backlog"`
	RejectedClosed  uint64 `json:"rejected_closed"`
	WALBytes        uint64 `json:"wal_bytes"`
	WALSize         int64  `json:"wal_size"`
	WALFsyncs       uint64 `json:"wal_fsyncs"`
	ReplayedRecords int    `json:"replayed_records"`
	ReplayedTrajs   int    `json:"replayed_trajs"`
	TruncatedBytes  int64  `json:"truncated_bytes"`
	Rebuilds        uint64 `json:"snapshot_rebuilds"`
	Extensions      uint64 `json:"snapshot_extensions"`
}

// Stats reports the current write-path counters. Ingest lag is visible
// as accepted − committed plus the queue depth.
func (s *Service) Stats() Stats {
	rebuilds, extensions := s.store.SnapshotStats()
	return Stats{
		Live:            s.store.Len(),
		Generation:      s.store.Generation(),
		QueueDepth:      len(s.batcher.queue),
		Accepted:        s.accepted.Load(),
		Committed:       s.batcher.committed.Load(),
		Batches:         s.batcher.batches.Load(),
		RejectedInvalid: s.rejectedInvalid.Load(),
		RejectedBacklog: s.rejectedBacklog.Load(),
		RejectedClosed:  s.rejectedClosed.Load(),
		WALBytes:        s.batcher.walBytes.Load(),
		WALSize:         s.wal.Size(),
		WALFsyncs:       s.batcher.walFsyncs.Load(),
		ReplayedRecords: s.recovery.Records,
		ReplayedTrajs:   s.recovery.Trajs,
		TruncatedBytes:  s.recovery.TruncatedBytes,
		Rebuilds:        rebuilds,
		Extensions:      extensions,
	}
}

// Close drains the commit queue (every already-accepted batch commits),
// syncs and closes the WAL. Idempotent; later Ingest calls return
// ErrClosed.
func (s *Service) Close() error {
	s.closeOnce.Do(func() {
		s.batcher.close()
		s.closeErr = s.wal.Close()
	})
	return s.closeErr
}
