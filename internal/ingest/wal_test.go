package ingest

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"uots/internal/trajdb"
)

// testRecords is a small fixture with varied shapes: multi-traj record,
// single-traj record, keywordless and sampleful trajectories.
func testRecords() []Record {
	return []Record{
		{Trajs: []TrajRecord{
			{
				Samples:  []trajdb.Sample{{V: 0, T: 100}, {V: 1, T: 200.5}},
				Keywords: []string{"museum", "café"},
			},
			{
				Samples:  []trajdb.Sample{{V: 2, T: 0}},
				Keywords: nil,
			},
		}},
		{Trajs: []TrajRecord{
			{
				Samples:  []trajdb.Sample{{V: 3, T: 1}, {V: 4, T: 2}, {V: 5, T: 3}},
				Keywords: []string{"park"},
			},
		}},
	}
}

func appendAll(t *testing.T, w *WAL, recs []Record) {
	t.Helper()
	for i, rec := range recs {
		if _, _, err := w.Append(rec); err != nil {
			t.Fatalf("Append record %d: %v", i, err)
		}
	}
}

// replayAll reopens the log collecting every replayed record.
func replayAll(t *testing.T, path string) ([]Record, RecoveryInfo, error) {
	t.Helper()
	var got []Record
	w, info, err := OpenWAL(path, WALOptions{Fsync: FsyncNone}, func(rec Record) error {
		got = append(got, rec)
		return nil
	})
	if err != nil {
		return nil, info, err
	}
	if cerr := w.Close(); cerr != nil {
		t.Fatalf("Close after replay: %v", cerr)
	}
	return got, info, nil
}

func requireRecordsEqual(t *testing.T, got, want []Record) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i].Trajs) != len(want[i].Trajs) {
			t.Fatalf("record %d: %d trajs, want %d", i, len(got[i].Trajs), len(want[i].Trajs))
		}
		for j := range want[i].Trajs {
			g, w := got[i].Trajs[j], want[i].Trajs[j]
			if len(g.Samples) != len(w.Samples) {
				t.Fatalf("record %d traj %d: %d samples, want %d", i, j, len(g.Samples), len(w.Samples))
			}
			for k := range w.Samples {
				if g.Samples[k] != w.Samples[k] {
					t.Errorf("record %d traj %d sample %d = %+v, want %+v", i, j, k, g.Samples[k], w.Samples[k])
				}
			}
			if len(g.Keywords) != len(w.Keywords) {
				t.Fatalf("record %d traj %d: %d keywords, want %d", i, j, len(g.Keywords), len(w.Keywords))
			}
			for k := range w.Keywords {
				if g.Keywords[k] != w.Keywords[k] {
					t.Errorf("record %d traj %d keyword %d = %q, want %q", i, j, k, g.Keywords[k], w.Keywords[k])
				}
			}
		}
	}
}

func TestWALRoundtrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, info, err := OpenWAL(path, WALOptions{Fsync: FsyncAlways}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Created {
		t.Error("fresh log: Created = false")
	}
	recs := testRecords()
	appendAll(t, w, recs)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, info, err := replayAll(t, path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Created || info.TruncatedBytes != 0 {
		t.Errorf("clean reopen: info = %+v", info)
	}
	if info.Records != len(recs) || info.Trajs != 3 {
		t.Errorf("info = %+v, want 2 records, 3 trajs", info)
	}
	requireRecordsEqual(t, got, recs)
}

func TestWALAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, _, err := OpenWAL(path, WALOptions{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := w.Append(testRecords()[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after Close: %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestWALTruncatedTail simulates a crash mid-append: the file is cut at
// every interesting boundary inside the last record, and replay must
// keep everything before it, truncate the tear, and leave the log
// appendable.
func TestWALTruncatedTail(t *testing.T) {
	recs := testRecords()
	// Build a clean log once to learn the record boundaries.
	ref := filepath.Join(t.TempDir(), "ref.wal")
	w, _, err := OpenWAL(ref, WALOptions{Fsync: FsyncNone}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64 // file size after each record
	for i, rec := range recs {
		if _, _, err := w.Append(rec); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		sizes = append(sizes, w.Size())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	clean, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	last := sizes[len(sizes)-2] // end of the second-to-last record
	cuts := []struct {
		name string
		at   int64
	}{
		{"mid magic", int64(len(walMagic)) - 3},
		{"mid header", last + 3},
		{"header only", last + walHeaderLen},
		{"mid payload", last + walHeaderLen + 5},
		{"one byte short", sizes[len(sizes)-1] - 1},
	}
	for _, cut := range cuts {
		t.Run(cut.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "torn.wal")
			if err := os.WriteFile(path, clean[:cut.at], 0o644); err != nil {
				t.Fatal(err)
			}
			got, info, err := replayAll(t, path)
			if err != nil {
				t.Fatalf("replay of torn log: %v", err)
			}
			wantRecs := 0
			for _, s := range sizes {
				if s <= cut.at {
					wantRecs++
				}
			}
			if info.Records != wantRecs {
				t.Errorf("replayed %d records, want %d", info.Records, wantRecs)
			}
			requireRecordsEqual(t, got, recs[:wantRecs])
			if info.TruncatedBytes == 0 {
				t.Error("TruncatedBytes = 0, want > 0")
			}
			// The torn bytes must be gone from disk so the next append
			// starts at a record boundary.
			st, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			wantSize := int64(len(walMagic))
			if wantRecs > 0 {
				wantSize = sizes[wantRecs-1]
			}
			if st.Size() != wantSize {
				t.Errorf("post-truncate size = %d, want %d", st.Size(), wantSize)
			}
			// And the log must accept appends and replay them cleanly.
			w2, _, err := OpenWAL(path, WALOptions{Fsync: FsyncNone}, nil)
			if err != nil {
				t.Fatal(err)
			}
			appendAll(t, w2, recs[len(recs)-1:])
			if err := w2.Close(); err != nil {
				t.Fatal(err)
			}
			got2, _, err := replayAll(t, path)
			if err != nil {
				t.Fatalf("replay after repair: %v", err)
			}
			requireRecordsEqual(t, got2, append(append([]Record{}, recs[:wantRecs]...), recs[len(recs)-1]))
		})
	}
}

// TestWALCorrupt covers damage truncation cannot repair: every case must
// refuse to serve with a *CorruptError wrapping ErrCorrupt.
func TestWALCorrupt(t *testing.T) {
	recs := testRecords()
	build := func(t *testing.T) (string, []byte) {
		path := filepath.Join(t.TempDir(), "ingest.wal")
		w, _, err := OpenWAL(path, WALOptions{Fsync: FsyncNone}, nil)
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, w, recs)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return path, raw
	}
	const rec0 = int64(len(walMagic)) // offset of the first record header
	cases := []struct {
		name       string
		corrupt    func(raw []byte)
		wantOffset int64
	}{
		{
			name:       "payload bit flip",
			corrupt:    func(raw []byte) { raw[rec0+walHeaderLen+2] ^= 0x40 },
			wantOffset: rec0,
		},
		{
			name:       "stored crc flip",
			corrupt:    func(raw []byte) { raw[rec0+5] ^= 0x01 },
			wantOffset: rec0,
		},
		{
			name: "implausible record length",
			corrupt: func(raw []byte) {
				binary.LittleEndian.PutUint32(raw[rec0:rec0+4], maxRecordLen+1)
			},
			wantOffset: rec0,
		},
		{
			name:       "bad magic",
			corrupt:    func(raw []byte) { raw[0] = 'X' },
			wantOffset: 0,
		},
		{
			name: "implausible traj count",
			corrupt: func(raw []byte) {
				// Rewrite the first record's payload count and fix up the
				// CRC so only the decoder can object.
				payloadLen := binary.LittleEndian.Uint32(raw[rec0 : rec0+4])
				payload := raw[rec0+walHeaderLen : rec0+walHeaderLen+int64(payloadLen)]
				binary.LittleEndian.PutUint32(payload[0:4], maxCount+1)
				binary.LittleEndian.PutUint32(raw[rec0+4:rec0+8], crc32ChecksumIEEE(payload))
			},
			wantOffset: rec0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, raw := build(t)
			tc.corrupt(raw)
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			_, _, err := replayAll(t, path)
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("err = %v, want ErrCorrupt", err)
			}
			var ce *CorruptError
			if !errors.As(err, &ce) {
				t.Fatalf("err %v is not a *CorruptError", err)
			}
			if ce.Offset != tc.wantOffset {
				t.Errorf("Offset = %d, want %d", ce.Offset, tc.wantOffset)
			}
			if ce.Path != path {
				t.Errorf("Path = %q, want %q", ce.Path, path)
			}
		})
	}
}

// TestWALFaultInjection drives the Hooks seams: a failed write must
// leave the log intact at the last good record and surface the
// *trajdb.StoreError convention; a failed fsync must fail the append.
func TestWALFaultInjection(t *testing.T) {
	boom := fmt.Errorf("injected device loss")
	t.Run("write fault", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "ingest.wal")
		var fail bool
		hooks := Hooks{BeforeWrite: func() error {
			if fail {
				return boom
			}
			return nil
		}}
		w, _, err := OpenWAL(path, WALOptions{Fsync: FsyncNone, Hooks: hooks}, nil)
		if err != nil {
			t.Fatal(err)
		}
		recs := testRecords()
		appendAll(t, w, recs[:1])
		before := w.Size()
		fail = true
		_, _, err = w.Append(recs[1])
		var se *trajdb.StoreError
		if !errors.As(err, &se) || se.Op != "wal.append" {
			t.Fatalf("err = %v, want *trajdb.StoreError{Op: wal.append}", err)
		}
		fail = false
		if w.Size() != before {
			t.Errorf("size moved across failed append: %d != %d", w.Size(), before)
		}
		appendAll(t, w, recs[1:])
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		got, _, err := replayAll(t, path)
		if err != nil {
			t.Fatal(err)
		}
		requireRecordsEqual(t, got, recs)
	})
	t.Run("sync fault", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "ingest.wal")
		armed := false
		hooks := Hooks{BeforeSync: func() error {
			if armed {
				return boom
			}
			return nil
		}}
		w, _, err := OpenWAL(path, WALOptions{Fsync: FsyncAlways, Hooks: hooks}, nil)
		if err != nil {
			t.Fatal(err)
		}
		armed = true
		_, _, err = w.Append(testRecords()[0])
		var se *trajdb.StoreError
		if !errors.As(err, &se) || se.Op != "wal.sync" {
			t.Fatalf("err = %v, want *trajdb.StoreError{Op: wal.sync}", err)
		}
		armed = false
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestParseFsyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want FsyncPolicy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"interval", FsyncInterval, true},
		{"none", FsyncNone, true},
		{"", 0, false},
		{"Always", 0, false},
	} {
		got, err := ParseFsyncPolicy(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Errorf("ParseFsyncPolicy(%q) = (%v, %v), want %v", tc.in, got, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("ParseFsyncPolicy(%q) succeeded, want error", tc.in)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("String() = %q, want %q", got.String(), tc.in)
		}
	}
}

func crc32ChecksumIEEE(b []byte) uint32 {
	return crc32.ChecksumIEEE(b)
}
