package ingest

import (
	"context"
	"math/rand/v2"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"uots/internal/core"
	"uots/internal/index"
	"uots/internal/obs"
	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// openIndexedService boots an ingest service whose engines carry a
// TrajBounds pruning index, seeded over the (empty) boot snapshot.
func openIndexedService(t *testing.T) (*Service, *trajdb.DynamicStore, *obs.IndexMetrics) {
	t.Helper()
	g := testGraph(t)
	store := trajdb.NewDynamic(g, textual.NewVocab())
	lm := roadnet.NewLandmarks(g, 4, 0)
	boot, _ := store.Snapshot()
	im := obs.NewIndexMetrics(obs.NewRegistry())
	svc, err := Open(store, Config{
		WALPath:      filepath.Join(t.TempDir(), "ingest.wal"),
		Fsync:        FsyncNone,
		Engine:       core.Options{Index: index.NewTrajBounds(boot, lm)},
		IndexMetrics: im,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { svc.Close() })
	return svc, store, im
}

// TestIndexExtensionTracksIngest: every committed batch grows the
// pruning index along the MVCC snapshot path, each indexed engine stays
// byte-identical to an unassisted engine over the same snapshot, and the
// uots_index_* extension counters account for exactly the appended rows.
func TestIndexExtensionTracksIngest(t *testing.T) {
	svc, store, im := openIndexedService(t)
	ctx := context.Background()
	rng := rand.New(rand.NewPCG(3, 0))
	total := 0
	for round := 0; round < 5; round++ {
		batch := make([]TrajRecord, 3)
		for i := range batch {
			batch[i] = mkTraj(rng, store.Graph(), 4)
		}
		if _, _, err := svc.Ingest(ctx, batch); err != nil {
			t.Fatal(err)
		}
		total += len(batch)

		eng, _, err := svc.Engine()
		if err != nil {
			t.Fatal(err)
		}
		if n := eng.Store().NumTrajectories(); n != total {
			t.Fatalf("round %d: engine snapshot has %d trajectories, want %d", round, n, total)
		}
		svc.emu.Lock()
		covered := svc.index.NumTrajectories()
		svc.emu.Unlock()
		if covered != total {
			t.Fatalf("round %d: index covers %d trajectories, want %d", round, covered, total)
		}

		// The indexed engine must answer exactly like a plain engine over
		// the same immutable snapshot.
		plain, err := core.NewEngine(eng.Store(), core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		q := core.Query{
			Locations: []roadnet.VertexID{batch[0].Samples[0].V, batch[len(batch)-1].Samples[0].V},
			Lambda:    1, K: 5,
		}
		want, _, err := plain.SearchCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := eng.SearchCtx(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: indexed engine diverges from plain engine\ngot  %+v\nwant %+v", round, got, want)
		}
	}
	if got := im.Extensions.Value(); got == 0 {
		t.Error("no incremental index extensions recorded across 5 committed rounds")
	}
	if got := im.ExtendedRows.Value(); got != uint64(total) {
		t.Errorf("extended rows counter = %d, want %d", got, total)
	}
	if got := im.Trajectories.Value(); got != int64(total) {
		t.Errorf("index coverage gauge = %d, want %d", got, total)
	}
}

// TestConcurrentIngestAndIndexExtension races writers committing batches
// against readers pulling indexed engines and querying them — the
// go test -race target for the index maintenance path. Every engine a
// reader observes must agree byte for byte with an unassisted engine
// over its own pinned snapshot, no matter how ingest interleaves.
func TestConcurrentIngestAndIndexExtension(t *testing.T) {
	svc, store, _ := openIndexedService(t)
	ctx := context.Background()

	// One committed batch so early readers have a non-empty corpus.
	seedRng := rand.New(rand.NewPCG(8, 0))
	if _, _, err := svc.Ingest(ctx, []TrajRecord{mkTraj(seedRng, store.Graph(), 4)}); err != nil {
		t.Fatal(err)
	}

	const writers, readers, batches = 2, 2, 8
	var writerWG, readerWG sync.WaitGroup
	errc := make(chan error, writers+readers)
	done := make(chan struct{})

	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed uint64) {
			defer writerWG.Done()
			rng := rand.New(rand.NewPCG(seed, 1))
			for b := 0; b < batches; b++ {
				batch := []TrajRecord{mkTraj(rng, store.Graph(), 3), mkTraj(rng, store.Graph(), 5)}
				if _, _, err := svc.Ingest(ctx, batch); err != nil {
					errc <- err
					return
				}
			}
		}(uint64(w + 100))
	}
	for r := 0; r < readers; r++ {
		readerWG.Add(1)
		go func(seed uint64) {
			defer readerWG.Done()
			rng := rand.New(rand.NewPCG(seed, 2))
			for {
				select {
				case <-done:
					return
				default:
				}
				eng, _, err := svc.Engine()
				if err != nil {
					errc <- err
					return
				}
				snap := eng.Store()
				plain, err := core.NewEngine(snap, core.Options{})
				if err != nil {
					errc <- err
					return
				}
				q := core.Query{
					Locations: []roadnet.VertexID{
						roadnet.VertexID(rng.IntN(store.Graph().NumVertices())),
					},
					Lambda: 1, K: 3,
				}
				want, _, err := plain.SearchCtx(ctx, q)
				if err != nil {
					errc <- err
					return
				}
				got, _, err := eng.SearchCtx(ctx, q)
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("indexed engine diverges from plain engine over the same snapshot")
					return
				}
			}
		}(uint64(r + 200))
	}

	writerWG.Wait()
	close(done)
	readerWG.Wait()
	close(errc)
	for err := range errc {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got, want := store.Len(), 1+writers*batches*2; got != want {
		t.Fatalf("store has %d trajectories after soak, want %d", got, want)
	}
	// The index may lag the store by whatever committed after the last
	// Engine() call; one more read brings it current.
	if _, _, err := svc.Engine(); err != nil {
		t.Fatal(err)
	}
	svc.emu.Lock()
	covered := svc.index.NumTrajectories()
	svc.emu.Unlock()
	if covered != store.Len() {
		t.Fatalf("index covers %d trajectories after final read, want %d", covered, store.Len())
	}
}
