package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestTraceRecorderCapsAndCountsDrops(t *testing.T) {
	rec := NewTraceRecorder(3)
	for i := 0; i < 5; i++ {
		rec.Emit(SpanEvent{Step: i, Kind: "admit"})
	}
	events := rec.Events()
	if len(events) != 3 {
		t.Fatalf("len(events) = %d, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Step != i {
			t.Errorf("event %d has step %d (oldest events must be kept)", i, ev.Step)
		}
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.Dropped())
	}
	if rec.Len() != 3 {
		t.Errorf("Len() = %d, want 3", rec.Len())
	}
}

// TestTraceRecorderConcurrent exercises the recorder from many
// goroutines, the shape a /batch request produces; run under -race.
func TestTraceRecorderConcurrent(t *testing.T) {
	rec := NewTraceRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Emit(SpanEvent{Kind: "complete"})
			}
		}()
	}
	wg.Wait()
	if got := rec.Len() + rec.Dropped(); got != 800 {
		t.Errorf("recorded+dropped = %d, want 800", got)
	}
}

func TestTraceStoreEvictsOldest(t *testing.T) {
	store := NewTraceStore(2)
	for i := 0; i < 3; i++ {
		store.Add(fmt.Sprintf("req-%d", i), NewTraceRecorder(1))
	}
	if _, ok := store.Get("req-0"); ok {
		t.Error("oldest trace should have been evicted")
	}
	for _, id := range []string{"req-1", "req-2"} {
		if _, ok := store.Get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
	ids := store.IDs()
	if len(ids) != 2 || ids[0] != "req-1" || ids[1] != "req-2" {
		t.Errorf("IDs() = %v", ids)
	}
	// Re-adding an existing id must not grow the ring.
	store.Add("req-2", NewTraceRecorder(1))
	if got := len(store.IDs()); got != 2 {
		t.Errorf("IDs after re-add = %d, want 2", got)
	}
}

func TestTracerContextPlumbing(t *testing.T) {
	if got := TracerFromContext(context.Background()); got != nil {
		t.Errorf("empty context tracer = %v, want nil", got)
	}
	if got := TracerFromContext(nil); got != nil { //nolint — nil ctx is part of the contract
		t.Errorf("nil context tracer = %v, want nil", got)
	}
	rec := NewTraceRecorder(8)
	ctx := ContextWithTracer(context.Background(), rec)
	if got := TracerFromContext(ctx); got != Tracer(rec) {
		t.Errorf("tracer = %v, want the attached recorder", got)
	}
	base := context.Background()
	if got := ContextWithTracer(base, nil); got != base {
		t.Error("attaching a nil tracer must return the context unchanged")
	}
}
