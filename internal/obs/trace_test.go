package obs

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestTraceRecorderCapsAndCountsDrops(t *testing.T) {
	rec := NewTraceRecorder(3)
	for i := 0; i < 5; i++ {
		rec.Emit(SpanEvent{Step: i, Kind: "admit"})
	}
	events := rec.Events()
	// 3 buffered events plus the synthetic truncation marker.
	if len(events) != 4 {
		t.Fatalf("len(events) = %d, want 4", len(events))
	}
	for i, ev := range events[:3] {
		if ev.Step != i {
			t.Errorf("event %d has step %d (oldest events must be kept)", i, ev.Step)
		}
	}
	last := events[3]
	if last.Kind != TraceTruncated {
		t.Errorf("last event kind = %q, want %q", last.Kind, TraceTruncated)
	}
	if last.Value != 2 {
		t.Errorf("truncation marker value = %v, want 2 (the dropped count)", last.Value)
	}
	if last.Step != 2 {
		t.Errorf("truncation marker step = %d, want 2 (last buffered step)", last.Step)
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d, want 2", rec.Dropped())
	}
	if rec.Len() != 3 {
		t.Errorf("Len() = %d, want 3", rec.Len())
	}
}

// TestTraceRecorderNoMarkerWithoutDrops pins the common path: a trace
// that fit in the buffer replays without a synthetic marker.
func TestTraceRecorderNoMarkerWithoutDrops(t *testing.T) {
	rec := NewTraceRecorder(4)
	rec.Emit(SpanEvent{Step: 0, Kind: "admit"})
	events := rec.Events()
	if len(events) != 1 || events[0].Kind != "admit" {
		t.Fatalf("events = %+v, want the single admit event", events)
	}
}

// TestTraceRecorderConcurrent exercises the recorder from many
// goroutines, the shape a /batch request produces; run under -race.
func TestTraceRecorderConcurrent(t *testing.T) {
	rec := NewTraceRecorder(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rec.Emit(SpanEvent{Kind: "complete"})
			}
		}()
	}
	wg.Wait()
	if got := rec.Len() + rec.Dropped(); got != 800 {
		t.Errorf("recorded+dropped = %d, want 800", got)
	}
}

func TestTraceStoreEvictsOldest(t *testing.T) {
	store := NewTraceStore(2)
	for i := 0; i < 3; i++ {
		store.Add(fmt.Sprintf("req-%d", i), NewTraceRecorder(1))
	}
	if _, ok := store.Get("req-0"); ok {
		t.Error("oldest trace should have been evicted")
	}
	for _, id := range []string{"req-1", "req-2"} {
		if _, ok := store.Get(id); !ok {
			t.Errorf("trace %s missing", id)
		}
	}
	ids := store.IDs()
	if len(ids) != 2 || ids[0] != "req-1" || ids[1] != "req-2" {
		t.Errorf("IDs() = %v", ids)
	}
	// Re-adding an existing id must not grow the ring.
	store.Add("req-2", NewTraceRecorder(1))
	if got := len(store.IDs()); got != 2 {
		t.Errorf("IDs after re-add = %d, want 2", got)
	}
}

func TestTracerContextPlumbing(t *testing.T) {
	if got := TracerFromContext(context.Background()); got != nil {
		t.Errorf("empty context tracer = %v, want nil", got)
	}
	if got := TracerFromContext(nil); got != nil { //nolint — nil ctx is part of the contract
		t.Errorf("nil context tracer = %v, want nil", got)
	}
	rec := NewTraceRecorder(8)
	ctx := ContextWithTracer(context.Background(), rec)
	if got := TracerFromContext(ctx); got != Tracer(rec) {
		t.Errorf("tracer = %v, want the attached recorder", got)
	}
	base := context.Background()
	if got := ContextWithTracer(base, nil); got != base {
		t.Error("attaching a nil tracer must return the context unchanged")
	}
}

func TestTraceIDContextPlumbing(t *testing.T) {
	if got := TraceIDFromContext(context.Background()); got != "" {
		t.Errorf("empty context trace ID = %q, want empty", got)
	}
	if got := TraceIDFromContext(nil); got != "" { //nolint — nil ctx is part of the contract
		t.Errorf("nil context trace ID = %q, want empty", got)
	}
	ctx := ContextWithTraceID(context.Background(), "req-42")
	if got := TraceIDFromContext(ctx); got != "req-42" {
		t.Errorf("trace ID = %q, want req-42", got)
	}
	base := context.Background()
	if got := ContextWithTraceID(base, ""); got != base {
		t.Error("attaching an empty trace ID must return the context unchanged")
	}
}
