package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestPrometheusEncoding(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("uots_requests_total", "Total requests.").Add(42)
	reg.Gauge("uots_in_flight", "In-flight requests.").Set(-3)
	h := reg.Histogram("uots_latency_seconds", "Request latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP uots_in_flight In-flight requests.
# TYPE uots_in_flight gauge
uots_in_flight -3
# HELP uots_latency_seconds Request latency.
# TYPE uots_latency_seconds histogram
uots_latency_seconds_bucket{le="0.1"} 1
uots_latency_seconds_bucket{le="1"} 2
uots_latency_seconds_bucket{le="+Inf"} 3
uots_latency_seconds_sum 2.55
uots_latency_seconds_count 3
# HELP uots_requests_total Total requests.
# TYPE uots_requests_total counter
uots_requests_total 42
`
	if got != want {
		t.Errorf("encoding mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestPrometheusLabelOrderingDeterministic(t *testing.T) {
	reg := NewRegistry()
	cv := reg.CounterVec("uots_http_requests_total", "By route and code.", "route", "code")
	// Insert in scrambled order; encode must sort by label-value tuple.
	cv.With("/search", "503").Inc()
	cv.With("/batch", "200").Add(2)
	cv.With("/search", "200").Add(7)

	var first bytes.Buffer
	if err := reg.WritePrometheus(&first); err != nil {
		t.Fatal(err)
	}
	wantLines := []string{
		`uots_http_requests_total{route="/batch",code="200"} 2`,
		`uots_http_requests_total{route="/search",code="200"} 7`,
		`uots_http_requests_total{route="/search",code="503"} 1`,
	}
	var gotLines []string
	for _, line := range strings.Split(first.String(), "\n") {
		if strings.HasPrefix(line, "uots_http_requests_total{") {
			gotLines = append(gotLines, line)
		}
	}
	if len(gotLines) != len(wantLines) {
		t.Fatalf("series lines = %v, want %v", gotLines, wantLines)
	}
	for i := range wantLines {
		if gotLines[i] != wantLines[i] {
			t.Errorf("line %d = %q, want %q", i, gotLines[i], wantLines[i])
		}
	}
	// Byte-for-byte stable across encodes.
	var second bytes.Buffer
	if err := reg.WritePrometheus(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Error("two encodes of the same state differ")
	}
}

func TestPrometheusEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("uots_weird_total", "line one\nline \\two", "q").
		With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `# HELP uots_weird_total line one\nline \\two`) {
		t.Errorf("HELP not escaped:\n%s", got)
	}
	if !strings.Contains(got, `uots_weird_total{q="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", got)
	}
}

func TestSnapshotRoundTripsThroughJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("uots_queries_total", "Queries.").Add(3)
	reg.HistogramVec("uots_query_seconds", "Per-query time.", []float64{1}, "algo").
		With("expansion").Observe(0.5)

	raw, err := json.Marshal(reg.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var snaps []MetricSnapshot
	if err := json.Unmarshal(raw, &snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("snapshot families = %d, want 2", len(snaps))
	}
	if snaps[0].Name != "uots_queries_total" || snaps[0].Type != "counter" {
		t.Errorf("first family = %s %s", snaps[0].Name, snaps[0].Type)
	}
	if v := snaps[0].Series[0].Value; v == nil || *v != 3 {
		t.Errorf("counter value = %v, want 3", v)
	}
	hist := snaps[1]
	if hist.Name != "uots_query_seconds" || hist.Type != "histogram" {
		t.Fatalf("second family = %s %s", hist.Name, hist.Type)
	}
	s := hist.Series[0]
	if s.Labels["algo"] != "expansion" {
		t.Errorf("labels = %v", s.Labels)
	}
	if s.Count == nil || *s.Count != 1 || s.Sum == nil || *s.Sum != 0.5 {
		t.Errorf("histogram count/sum = %v/%v", s.Count, s.Sum)
	}
	if len(s.Buckets) != 2 || s.Buckets[1].LE != "+Inf" || s.Buckets[1].Count != 1 {
		t.Errorf("buckets = %v", s.Buckets)
	}
}
