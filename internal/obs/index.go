package obs

// indexBuildSecondsBuckets span in-memory builds over small synthetic
// corpora to multi-second builds that fault every record of a large
// disk-resident store.
var indexBuildSecondsBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
	0.5, 1, 2.5, 5, 10, 30,
}

// IndexMetrics bundles the uots_index_* instruments describing the
// pruning-index subsystem: landmark/TrajBounds builds and incremental
// extensions, and the disk store's persistent-sidecar open outcomes.
// See CONTRIBUTING.md for the family contract.
type IndexMetrics struct {
	Landmarks    *Gauge     // uots_index_landmarks
	Trajectories *Gauge     // uots_index_trajectories
	BuildSeconds *Histogram // uots_index_build_seconds
	Extensions   *Counter   // uots_index_extensions_total
	ExtendedRows *Counter   // uots_index_extended_trajectories_total

	WarmStarts   *Counter // uots_index_warm_starts_total
	RebuildScans *Counter // uots_index_rebuild_scans_total
}

// NewIndexMetrics registers the uots_index_* instruments on reg. A nil
// registry returns nil; every record helper on a nil receiver is a
// no-op, so callers with optional metrics need no guard.
func NewIndexMetrics(reg *Registry) *IndexMetrics {
	if reg == nil {
		return nil
	}
	return &IndexMetrics{
		Landmarks: reg.Gauge("uots_index_landmarks",
			"Landmarks in the active TrajBounds pruning index (0 when disabled)."),
		Trajectories: reg.Gauge("uots_index_trajectories",
			"Trajectories covered by the active TrajBounds pruning index."),
		BuildSeconds: reg.Histogram("uots_index_build_seconds",
			"Wall time of full TrajBounds builds (landmark selection excluded) in seconds.",
			indexBuildSecondsBuckets),
		Extensions: reg.Counter("uots_index_extensions_total",
			"Incremental TrajBounds extensions performed along the MVCC snapshot path."),
		ExtendedRows: reg.Counter("uots_index_extended_trajectories_total",
			"Trajectories appended to the TrajBounds index by incremental extensions."),
		WarmStarts: reg.Counter("uots_index_warm_starts_total",
			"Disk-store opens served from the persistent index sidecar (no rebuild scan)."),
		RebuildScans: reg.Counter("uots_index_rebuild_scans_total",
			"Disk-store opens that fell back to the sequential index rebuild scan."),
	}
}

// RecordBuild publishes one full TrajBounds build: the landmark count,
// the covered trajectory count, and the build wall time.
func (m *IndexMetrics) RecordBuild(landmarks, trajectories int, seconds float64) {
	if m == nil {
		return
	}
	m.Landmarks.Set(int64(landmarks))
	m.Trajectories.Set(int64(trajectories))
	m.BuildSeconds.Observe(seconds)
}

// RecordExtension accumulates one incremental extension that appended
// added trajectories, publishing the new coverage.
func (m *IndexMetrics) RecordExtension(added, trajectories int) {
	if m == nil {
		return
	}
	m.Extensions.Inc()
	m.ExtendedRows.AddInt(added)
	m.Trajectories.Set(int64(trajectories))
}

// RecordOpen counts one disk-store open by how its indexes were loaded.
func (m *IndexMetrics) RecordOpen(warm bool) {
	if m == nil {
		return
	}
	if warm {
		m.WarmStarts.Inc()
	} else {
		m.RebuildScans.Inc()
	}
}
