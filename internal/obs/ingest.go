package obs

// Ingest trace event kinds, emitted by the serving layer's write path
// into the same per-request tracer the search spans use (X-Trace / slow
// recorder). They carry batch sizes and generations, never payloads.
const (
	// TraceIngestBegin opens an ingest request: Value = batch size.
	TraceIngestBegin = "ingest_begin"
	// TraceIngestCommit closes a successful ingest: Value = committed
	// trajectories, Extra = the store generation that includes them.
	TraceIngestCommit = "ingest_commit"
	// TraceIngestReject closes a failed ingest: Note = rejection reason.
	TraceIngestReject = "ingest_reject"
)

// Rejection reasons for uots_ingest_rejected_total. Pinned here so the
// serving layer and the load harness agree on label values.
const (
	IngestRejectInvalid = "invalid" // failed trajectory validation
	IngestRejectBacklog = "backlog" // bounded ingest queue full (backpressure)
	IngestRejectClosed  = "closed"  // batcher draining for shutdown
)

// ingestCommitSecondsBuckets span sub-millisecond in-memory commits to
// multi-second fsync stalls on a struggling device.
var ingestCommitSecondsBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// IngestMetrics bundles the uots_ingest_* instruments describing the
// live write path: WAL appends, group commits, queue backpressure, and
// snapshot maintenance. The ingest service registers them on the server
// registry; see CONTRIBUTING.md for the family contract.
type IngestMetrics struct {
	Accepted  *Counter    // uots_ingest_accepted_trajectories_total
	Committed *Counter    // uots_ingest_committed_trajectories_total
	Rejected  *CounterVec // uots_ingest_rejected_total{reason}
	Batches   *Counter    // uots_ingest_batches_total
	Replayed  *Counter    // uots_ingest_replayed_records_total

	WALRecords *Counter // uots_ingest_wal_records_total
	WALBytes   *Counter // uots_ingest_wal_bytes_total
	WALFsyncs  *Counter // uots_ingest_wal_fsyncs_total

	QueueDepth    *Gauge     // uots_ingest_queue_depth
	Generation    *Gauge     // uots_ingest_snapshot_generation
	CommitSeconds *Histogram // uots_ingest_commit_seconds

	SnapshotRebuilds   *Gauge // uots_ingest_snapshot_rebuilds
	SnapshotExtensions *Gauge // uots_ingest_snapshot_extensions
}

// NewIngestMetrics registers the uots_ingest_* instruments on reg. A
// nil registry returns nil; every record helper on a nil receiver is a
// no-op, so callers with optional metrics need no guard.
func NewIngestMetrics(reg *Registry) *IngestMetrics {
	if reg == nil {
		return nil
	}
	return &IngestMetrics{
		Accepted: reg.Counter("uots_ingest_accepted_trajectories_total",
			"Trajectories accepted into the ingest queue."),
		Committed: reg.Counter("uots_ingest_committed_trajectories_total",
			"Trajectories durably committed and applied to the live store."),
		Rejected: reg.CounterVec("uots_ingest_rejected_total",
			"Ingest submissions rejected before queueing, by reason.", "reason"),
		Batches: reg.Counter("uots_ingest_batches_total",
			"Group commits performed (one WAL record each)."),
		Replayed: reg.Counter("uots_ingest_replayed_records_total",
			"WAL records replayed into the store at startup."),
		WALRecords: reg.Counter("uots_ingest_wal_records_total",
			"Records appended to the ingest WAL."),
		WALBytes: reg.Counter("uots_ingest_wal_bytes_total",
			"Bytes appended to the ingest WAL (headers included)."),
		WALFsyncs: reg.Counter("uots_ingest_wal_fsyncs_total",
			"fsync calls issued by the WAL writer."),
		QueueDepth: reg.Gauge("uots_ingest_queue_depth",
			"Ingest requests waiting in the bounded commit queue."),
		Generation: reg.Gauge("uots_ingest_snapshot_generation",
			"Store generation after the most recent commit."),
		CommitSeconds: reg.Histogram("uots_ingest_commit_seconds",
			"Group-commit wall time (WAL append + fsync + store apply) in seconds.",
			ingestCommitSecondsBuckets),
		SnapshotRebuilds: reg.Gauge("uots_ingest_snapshot_rebuilds",
			"Full O(live) snapshot rebuilds performed by the dynamic store."),
		SnapshotExtensions: reg.Gauge("uots_ingest_snapshot_extensions",
			"Incremental add-only snapshot extensions performed by the dynamic store."),
	}
}

// RecordCommit accumulates one group commit: trajs applied, one WAL
// record of walBytes appended, synced reporting whether an fsync was
// issued, and the store generation after the apply.
func (m *IngestMetrics) RecordCommit(trajs int, walBytes int, synced bool, gen uint64, seconds float64) {
	if m == nil {
		return
	}
	m.Batches.Inc()
	m.Committed.AddInt(trajs)
	m.WALRecords.Inc()
	m.WALBytes.AddInt(walBytes)
	if synced {
		m.WALFsyncs.Inc()
	}
	m.Generation.Set(int64(gen))
	m.CommitSeconds.Observe(seconds)
}

// RecordReject counts one pre-queue rejection.
func (m *IngestMetrics) RecordReject(reason string) {
	if m == nil {
		return
	}
	m.Rejected.With(reason).Inc()
}

// RecordAccepted counts trajectories admitted to the queue.
func (m *IngestMetrics) RecordAccepted(trajs int) {
	if m == nil {
		return
	}
	m.Accepted.AddInt(trajs)
}

// SetQueueDepth publishes the current queue depth.
func (m *IngestMetrics) SetQueueDepth(n int) {
	if m == nil {
		return
	}
	m.QueueDepth.Set(int64(n))
}

// SetSnapshotWork publishes the dynamic store's snapshot maintenance
// counters (full rebuilds vs incremental extensions).
func (m *IngestMetrics) SetSnapshotWork(rebuilds, extensions uint64) {
	if m == nil {
		return
	}
	m.SnapshotRebuilds.Set(int64(rebuilds))
	m.SnapshotExtensions.Set(int64(extensions))
}
