// Package obs is the repository's stdlib-only observability toolkit:
// a process-wide metric registry (counters, gauges, fixed-bucket
// histograms with atomic hot paths) encodable in the Prometheus text
// format, a search tracer that records per-query span events from the
// engine's expansion loop, and the timing helper every instrumented
// layer routes wall-clock reads through.
//
// The package deliberately depends on nothing but the standard library
// and is imported by internal/core, internal/server, and the command
// binaries; it must never import any of them back.
//
// # Determinism contract
//
// obs is in scope for the nodrift analyzer: search results must stay a
// pure function of (graph, store, query, seed), so nothing in this
// package may feed wall-clock time into values that reach scoring or
// pruning. Timing flows one way — through Stopwatch into metrics and
// logs. Trace events carry ordinal step numbers, not timestamps, so a
// replayed query produces a bit-identical trace.
package obs

import "time"

// Stopwatch is the package's designated wall-clock access point, the
// observability twin of core's internal stopwatch helper: call it once
// at the start of a measured section and invoke the returned function
// for the elapsed time. Every instrumented layer (request middleware,
// bench harnesses) times through this helper so the nodrift analyzer
// can audit all wall-clock reads in one place.
//
//uots:allow nodrift -- designated timing helper: elapsed time feeds metrics and logs only, never scores or pruning
func Stopwatch() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}
