package obs_test

import (
	"bytes"
	"testing"

	"uots/internal/obs"
	"uots/internal/rpc"
)

// TestPrometheusEncodingRPCFamily pins the exact text exposition of the
// uots_rpc_* family that rpc.NewMetrics registers: names, help strings,
// types and label sets are part of the scrape contract (dashboards and
// alerts key on them), so any drift must show up as a test diff, not in
// production. Registration idempotency lets the test materialize series
// by re-looking the families up through the registry's public API.
func TestPrometheusEncodingRPCFamily(t *testing.T) {
	reg := obs.NewRegistry()
	if m := rpc.NewMetrics(reg); m == nil {
		t.Fatal("NewMetrics returned nil for a non-nil registry")
	}
	if m := rpc.NewMetrics(nil); m != nil {
		t.Fatal("NewMetrics(nil) must return the nil no-op recorder")
	}

	const replica = "http://replica-a:9001"
	reg.CounterVec("uots_rpc_requests_total", "", "replica").With(replica).Add(5)
	outcomes := reg.CounterVec("uots_rpc_attempt_outcomes_total", "", "replica", "outcome")
	outcomes.With(replica, "ok").Add(4)
	outcomes.With(replica, "transport").Inc()
	outcomes.With(replica, "engine").Add(2)
	outcomes.With(replica, "canceled").Add(3)
	reg.CounterVec("uots_rpc_transport_errors_total", "", "replica").With(replica).Inc()
	reg.Counter("uots_rpc_retries_total", "").Inc()
	reg.Counter("uots_rpc_hedges_total", "").Add(2)
	reg.Counter("uots_rpc_hedge_wins_total", "").Inc()
	reg.CounterVec("uots_rpc_replica_ejections_total", "", "replica").With(replica).Inc()
	reg.CounterVec("uots_rpc_replica_readmissions_total", "", "replica").With(replica).Inc()
	reg.CounterVec("uots_rpc_probe_failures_total", "", "replica").With(replica).Add(3)
	reg.Counter("uots_rpc_group_exhausted_total", "").Inc()
	reg.HistogramVec("uots_rpc_request_seconds", "", nil, "replica").With(replica).Observe(0.003)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP uots_rpc_attempt_outcomes_total RPC attempt outcomes by replica and classification (ok, transport, engine, canceled).
# TYPE uots_rpc_attempt_outcomes_total counter
uots_rpc_attempt_outcomes_total{replica="http://replica-a:9001",outcome="canceled"} 3
uots_rpc_attempt_outcomes_total{replica="http://replica-a:9001",outcome="engine"} 2
uots_rpc_attempt_outcomes_total{replica="http://replica-a:9001",outcome="ok"} 4
uots_rpc_attempt_outcomes_total{replica="http://replica-a:9001",outcome="transport"} 1
# HELP uots_rpc_group_exhausted_total Calls that failed every retry and failover attempt across a whole replica group.
# TYPE uots_rpc_group_exhausted_total counter
uots_rpc_group_exhausted_total 1
# HELP uots_rpc_hedge_wins_total Hedged attempts that answered before the primary.
# TYPE uots_rpc_hedge_wins_total counter
uots_rpc_hedge_wins_total 1
# HELP uots_rpc_hedges_total Hedged (duplicate) RPC attempts fired after the tail-latency delay.
# TYPE uots_rpc_hedges_total counter
uots_rpc_hedges_total 2
# HELP uots_rpc_probe_failures_total Failed health probes, by replica.
# TYPE uots_rpc_probe_failures_total counter
uots_rpc_probe_failures_total{replica="http://replica-a:9001"} 3
# HELP uots_rpc_replica_ejections_total Replicas ejected from rotation after exhausting their error budget, by replica.
# TYPE uots_rpc_replica_ejections_total counter
uots_rpc_replica_ejections_total{replica="http://replica-a:9001"} 1
# HELP uots_rpc_replica_readmissions_total Ejected replicas re-admitted after a successful health probe, by replica.
# TYPE uots_rpc_replica_readmissions_total counter
uots_rpc_replica_readmissions_total{replica="http://replica-a:9001"} 1
# HELP uots_rpc_request_seconds RPC attempt latency by replica (successful and failed attempts).
# TYPE uots_rpc_request_seconds histogram
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.0005"} 0
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.001"} 0
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.0025"} 0
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.005"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.01"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.025"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.05"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.1"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.25"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="0.5"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="1"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="2.5"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="5"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="10"} 1
uots_rpc_request_seconds_bucket{replica="http://replica-a:9001",le="+Inf"} 1
uots_rpc_request_seconds_sum{replica="http://replica-a:9001"} 0.003
uots_rpc_request_seconds_count{replica="http://replica-a:9001"} 1
# HELP uots_rpc_requests_total RPC attempts sent, by replica (includes retries and hedges).
# TYPE uots_rpc_requests_total counter
uots_rpc_requests_total{replica="http://replica-a:9001"} 5
# HELP uots_rpc_retries_total RPC calls re-sent after a transient failure.
# TYPE uots_rpc_retries_total counter
uots_rpc_retries_total 1
# HELP uots_rpc_transport_errors_total RPC attempts that failed in the transport (dial, connection, decode, attempt timeout), by replica.
# TYPE uots_rpc_transport_errors_total counter
uots_rpc_transport_errors_total{replica="http://replica-a:9001"} 1
`
	if got != want {
		t.Errorf("uots_rpc_* encoding mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
