package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition content type served by
// Handler.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// escapeHelp escapes a HELP line per the text format: backslash and
// newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// escapeLabel escapes a label value: backslash, double quote, newline.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// writeLabels renders {a="x",b="y"} (nothing for an empty set). extra
// is an optional pre-rendered pair appended last (the histogram le).
func writeLabels(b *bufio.Writer, names, values []string, extra string) {
	if len(names) == 0 && extra == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extra != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extra)
	}
	b.WriteByte('}')
}

// WritePrometheus encodes every registered metric in the Prometheus
// text exposition format. Families are ordered by name and series by
// label-value tuple, so two encodes of the same state are byte-equal —
// scrapes and tests can diff output deterministically.
func (r *Registry) WritePrometheus(w io.Writer) error {
	b := bufio.NewWriter(w)
	for _, f := range r.sortedFamilies() {
		values, metrics := f.sortedSeries()
		if len(metrics) == 0 {
			continue
		}
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(f.name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		for i, m := range metrics {
			switch m := m.(type) {
			case *Counter:
				b.WriteString(f.name)
				writeLabels(b, f.labelNames, values[i], "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(m.Value(), 10))
				b.WriteByte('\n')
			case *Gauge:
				b.WriteString(f.name)
				writeLabels(b, f.labelNames, values[i], "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatInt(m.Value(), 10))
				b.WriteByte('\n')
			case *Histogram:
				cum := m.cumulative()
				for j, c := range cum {
					le := "+Inf"
					if j < len(m.upper) {
						le = formatFloat(m.upper[j])
					}
					b.WriteString(f.name)
					b.WriteString("_bucket")
					writeLabels(b, f.labelNames, values[i], `le="`+le+`"`)
					b.WriteByte(' ')
					b.WriteString(strconv.FormatUint(c, 10))
					b.WriteByte('\n')
				}
				b.WriteString(f.name)
				b.WriteString("_sum")
				writeLabels(b, f.labelNames, values[i], "")
				b.WriteByte(' ')
				b.WriteString(formatFloat(m.Sum()))
				b.WriteByte('\n')
				b.WriteString(f.name)
				b.WriteString("_count")
				writeLabels(b, f.labelNames, values[i], "")
				b.WriteByte(' ')
				b.WriteString(strconv.FormatUint(cum[len(cum)-1], 10))
				b.WriteByte('\n')
			}
		}
	}
	return b.Flush()
}

// Handler serves the registry in the Prometheus text format — mount it
// at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		_ = r.WritePrometheus(w) // the connection is the only failure mode
	})
}

// BucketSnapshot is one cumulative histogram bucket in a Snapshot.
type BucketSnapshot struct {
	// LE is the bucket's inclusive upper bound ("+Inf" for the last).
	LE string `json:"le"`
	// Count is the cumulative observation count at this bound.
	Count uint64 `json:"count"`
}

// SeriesSnapshot is one labelled series in a Snapshot.
type SeriesSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"` // counters and gauges
	Sum     *float64          `json:"sum,omitempty"`   // histograms
	Count   *uint64           `json:"count,omitempty"`
	Buckets []BucketSnapshot  `json:"buckets,omitempty"`
}

// MetricSnapshot is one metric family in a Snapshot.
type MetricSnapshot struct {
	Name   string           `json:"name"`
	Type   string           `json:"type"`
	Help   string           `json:"help,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns the registry's current state as plain data, ordered
// like WritePrometheus — the machine-readable form bench runs persist
// next to their text tables.
func (r *Registry) Snapshot() []MetricSnapshot {
	out := []MetricSnapshot{} // non-nil so an empty registry marshals as [], not null
	for _, f := range r.sortedFamilies() {
		values, metrics := f.sortedSeries()
		if len(metrics) == 0 {
			continue
		}
		ms := MetricSnapshot{Name: f.name, Type: f.typ, Help: f.help}
		for i, m := range metrics {
			ss := SeriesSnapshot{}
			if len(f.labelNames) > 0 {
				ss.Labels = make(map[string]string, len(f.labelNames))
				for j, n := range f.labelNames {
					ss.Labels[n] = values[i][j]
				}
			}
			switch m := m.(type) {
			case *Counter:
				v := float64(m.Value())
				ss.Value = &v
			case *Gauge:
				v := float64(m.Value())
				ss.Value = &v
			case *Histogram:
				sum, count := m.Sum(), uint64(0)
				cum := m.cumulative()
				ss.Buckets = make([]BucketSnapshot, len(cum))
				for j, c := range cum {
					le := "+Inf"
					if j < len(m.upper) {
						le = formatFloat(m.upper[j])
					}
					ss.Buckets[j] = BucketSnapshot{LE: le, Count: c}
				}
				count = cum[len(cum)-1]
				ss.Sum, ss.Count = &sum, &count
			}
			ms.Series = append(ms.Series, ss)
		}
		out = append(out, ms)
	}
	return out
}
