package obs

// BatchMetrics bundles the uots_batch_* instruments describing batch
// search execution and the shared-expansion batch planner (see
// core.BatchStats). The serving layer registers them on the server
// registry (fed by /batch), and the bench harness registers them on the
// run registry (fed by the F11 batch-sharing experiment) — same names,
// separate registries, per the uots_* naming convention in
// CONTRIBUTING.md.
//
// The planner's headline signal is ServedSettles − FrontierSettles:
// settles served to queries minus Dijkstra settles actually performed,
// i.e. the vertex expansions that cross-query frontier sharing avoided.
type BatchMetrics struct {
	Batches         *Counter // uots_batch_requests_total
	Queries         *Counter // uots_batch_queries_total
	Failed          *Counter // uots_batch_failed_queries_total
	SharedBatches   *Counter // uots_batch_shared_total
	DistinctSources *Counter // uots_batch_distinct_sources_total
	SourceRefs      *Counter // uots_batch_source_refs_total
	FrontierSettles *Counter // uots_batch_frontier_settles_total
	ServedSettles   *Counter // uots_batch_served_settles_total
}

// NewBatchMetrics registers the uots_batch_* instruments on reg. A nil
// registry returns nil, whose RecordBatch is a no-op — callers with
// optional metrics (the bench harness) need no guard.
func NewBatchMetrics(reg *Registry) *BatchMetrics {
	if reg == nil {
		return nil
	}
	return &BatchMetrics{
		Batches: reg.Counter("uots_batch_requests_total",
			"Batch search runs executed."),
		Queries: reg.Counter("uots_batch_queries_total",
			"Queries submitted through batch runs."),
		Failed: reg.Counter("uots_batch_failed_queries_total",
			"Batch queries that finished with a per-query error."),
		SharedBatches: reg.Counter("uots_batch_shared_total",
			"Batch runs executed with the shared-expansion planner enabled."),
		DistinctSources: reg.Counter("uots_batch_distinct_sources_total",
			"Distinct source vertices given a shared expansion frontier, across batches."),
		SourceRefs: reg.Counter("uots_batch_source_refs_total",
			"Per-query source references planned onto shared frontiers, across batches."),
		FrontierSettles: reg.Counter("uots_batch_frontier_settles_total",
			"Dijkstra settles shared batch frontiers actually performed."),
		ServedSettles: reg.Counter("uots_batch_served_settles_total",
			"Frontier settles served to batch queries (minus frontier settles = expansions saved by sharing)."),
	}
}

// RecordBatch accumulates one batch run's counters. The planner fields
// are plain integers rather than a core type so obs stays free of
// engine imports (core imports obs).
func (m *BatchMetrics) RecordBatch(queries, failed, distinctSources, sourceRefs int, frontierSettles, servedSettles uint64, shared bool) {
	if m == nil {
		return
	}
	m.Batches.Inc()
	m.Queries.AddInt(queries)
	m.Failed.AddInt(failed)
	if shared {
		m.SharedBatches.Inc()
	}
	m.DistinctSources.AddInt(distinctSources)
	m.SourceRefs.AddInt(sourceRefs)
	m.FrontierSettles.Add(frontierSettles)
	m.ServedSettles.Add(servedSettles)
}
