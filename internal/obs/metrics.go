package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Metric types, as rendered in Prometheus TYPE lines.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// DefLatencyBuckets are the default request-latency histogram buckets,
// in seconds: sub-millisecond searches up to multi-second stragglers.
var DefLatencyBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10,
}

// A Counter is a monotonically increasing metric. The zero value is
// usable; all methods are safe for concurrent use and lock-free.
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// AddInt adds n when non-negative; negative deltas are ignored, keeping
// the counter monotone even on buggy inputs.
func (c *Counter) AddInt(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// A Gauge is a metric that can go up and down. The zero value is
// usable; all methods are safe for concurrent use and lock-free.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds 1.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// A Histogram counts observations into fixed buckets. Buckets are
// cumulative-at-encode: Observe touches exactly one per-bucket counter
// and the running sum, both atomically, so the hot path is lock-free.
type Histogram struct {
	upper  []float64 // sorted upper bounds; +Inf bucket is implicit
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, updated by CAS
}

func newHistogram(buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	// Drop duplicate and non-finite bounds; the +Inf bucket is implicit.
	dedup := upper[:0]
	for _, b := range upper {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			continue
		}
		if len(dedup) == 0 || dedup[len(dedup)-1] != b {
			dedup = append(dedup, b)
		}
	}
	return &Histogram{upper: dedup, counts: make([]atomic.Uint64, len(dedup)+1)}
}

// Observe records one value. NaN observations are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with v <= upper bound
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// cumulative returns the per-bucket cumulative counts, one entry per
// upper bound plus the trailing +Inf bucket.
func (h *Histogram) cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var run uint64
	for i := range h.counts {
		run += h.counts[i].Load()
		out[i] = run
	}
	return out
}

// family is one registered metric name: its metadata and every labelled
// series. Unlabelled metrics are a family with one series under the
// empty key.
type family struct {
	name, help string
	typ        string
	labelNames []string
	buckets    []float64 // histogram families only

	mu     sync.RWMutex
	series map[string]any // *Counter | *Gauge | *Histogram, by label key
}

// seriesKey joins label values unambiguously (values may contain any
// byte; 0xFF never begins a UTF-8 rune so it cannot collide with a
// value boundary).
func seriesKey(values []string) string { return strings.Join(values, "\xff") }

func (f *family) get(values []string) (any, bool) {
	f.mu.RLock()
	m, ok := f.series[seriesKey(values)]
	f.mu.RUnlock()
	return m, ok
}

func (f *family) getOrCreate(values []string, make func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	if m, ok := f.get(values); ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	key := seriesKey(values)
	if m, ok := f.series[key]; ok {
		return m
	}
	m := make()
	f.series[key] = m
	return m
}

// sortedSeries returns the family's series ordered by label-value
// tuple, each paired with its label values — the deterministic encode
// order.
func (f *family) sortedSeries() ([][]string, []any) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	values := make([][]string, len(keys))
	metrics := make([]any, len(keys))
	for i, k := range keys {
		if k == "" && len(f.labelNames) == 0 {
			values[i] = nil
		} else {
			values[i] = strings.Split(k, "\xff")
		}
		metrics[i] = f.series[k]
	}
	f.mu.RUnlock()
	return values, metrics
}

// Registry is a set of named metric families. Registration methods are
// idempotent: asking for an existing name with identical metadata
// returns the existing metric; conflicting re-registration panics
// (metric identity bugs should fail loudly at startup, not mis-count in
// production).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// validName is the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		letter := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && !(i > 0 && r >= '0' && r <= '9') {
			return false
		}
	}
	return true
}

// lookup registers (or retrieves) a family, enforcing identity.
func (r *Registry) lookup(name, help, typ string, labelNames []string, buckets []float64) *family {
	if !validName(name) {
		panic("obs: invalid metric name " + name)
	}
	for _, l := range labelNames {
		if !validName(l) {
			panic("obs: invalid label name " + l + " on metric " + name)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labelNames) != len(labelNames) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s(%v), was %s(%v)",
				name, typ, labelNames, f.typ, f.labelNames))
		}
		for i := range labelNames {
			if f.labelNames[i] != labelNames[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with labels %v, was %v",
					name, labelNames, f.labelNames))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		series:     make(map[string]any),
	}
	r.families[name] = f
	return f
}

// Counter registers (or retrieves) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.lookup(name, help, typeCounter, nil, nil)
	return f.getOrCreate(nil, func() any { return &Counter{} }).(*Counter)
}

// Gauge registers (or retrieves) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.lookup(name, help, typeGauge, nil, nil)
	return f.getOrCreate(nil, func() any { return &Gauge{} }).(*Gauge)
}

// Histogram registers (or retrieves) an unlabelled histogram with the
// given bucket upper bounds (nil = DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	f := r.lookup(name, help, typeHistogram, nil, buckets)
	return f.getOrCreate(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// A CounterVec is a counter family partitioned by labels.
type CounterVec struct{ f *family }

// CounterVec registers (or retrieves) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.lookup(name, help, typeCounter, labelNames, nil)}
}

// With returns the counter for the given label values (created on first
// use). Callers on hot paths should resolve once and keep the handle.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.getOrCreate(labelValues, func() any { return &Counter{} }).(*Counter)
}

// A GaugeVec is a gauge family partitioned by labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or retrieves) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.lookup(name, help, typeGauge, labelNames, nil)}
}

// With returns the gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.getOrCreate(labelValues, func() any { return &Gauge{} }).(*Gauge)
}

// A HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or retrieves) a labelled histogram family
// with shared bucket bounds (nil = DefLatencyBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefLatencyBuckets
	}
	return &HistogramVec{r.lookup(name, help, typeHistogram, labelNames, buckets)}
}

// With returns the histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.getOrCreate(labelValues, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// sortedFamilies returns the registered families in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	out := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
