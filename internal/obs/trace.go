package obs

import (
	"context"
	"sync"
)

// A SpanEvent is one recorded step of a traced search: a scheduling
// decision, a bound update, a candidate admission or prune, a probe, or
// the termination cause. Events carry the search's ordinal step number
// rather than a timestamp so a replayed query produces a bit-identical
// trace (see the package determinism contract).
type SpanEvent struct {
	// Step is the emitting search's expansion-step ordinal.
	Step int `json:"step"`
	// Kind names the event (core's Trace* constants).
	Kind string `json:"kind"`
	// Source is the query-source index the event concerns (-1 if none).
	Source int `json:"source"`
	// Traj is the trajectory the event concerns (-1 if none).
	Traj int64 `json:"traj"`
	// Value and Extra are kind-specific numbers (bounds, radii, scores).
	Value float64 `json:"value"`
	Extra float64 `json:"extra,omitempty"`
	// Note is a kind-specific annotation (e.g. the termination cause).
	Note string `json:"note,omitempty"`
}

// TraceTruncated is the synthetic event kind appended to a replay when
// the recorder dropped events over its limit: Value carries the dropped
// count, so a truncated trace is honest about what is missing.
const TraceTruncated = "trace_truncated"

// A Tracer receives span events from an instrumented search. A nil
// Tracer disables tracing; instrumented code guards every emit with a
// nil check so the disabled path costs one comparison and zero
// allocations.
type Tracer interface {
	Emit(SpanEvent)
}

// DefaultTraceEvents caps a TraceRecorder when NewTraceRecorder is
// given a non-positive limit.
const DefaultTraceEvents = 4096

// A TraceRecorder is the standard Tracer: it buffers up to a fixed
// number of events and counts the overflow, so one pathological query
// cannot hold an unbounded trace in memory. Safe for concurrent use
// (batch searches share one request tracer across workers).
type TraceRecorder struct {
	mu      sync.Mutex
	limit   int
	events  []SpanEvent
	dropped int
}

// NewTraceRecorder creates a recorder holding up to limit events
// (non-positive limit = DefaultTraceEvents).
func NewTraceRecorder(limit int) *TraceRecorder {
	if limit <= 0 {
		limit = DefaultTraceEvents
	}
	return &TraceRecorder{limit: limit}
}

// Emit implements Tracer.
func (r *TraceRecorder) Emit(ev SpanEvent) {
	r.mu.Lock()
	if len(r.events) < r.limit {
		r.events = append(r.events, ev)
	} else {
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the recorded events in emission order. When
// the recorder dropped events over its limit, the replay ends with one
// synthetic TraceTruncated event whose Value is the dropped count — the
// buffered events themselves are always the oldest ones.
func (r *TraceRecorder) Events() []SpanEvent {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SpanEvent, len(r.events), len(r.events)+1)
	copy(out, r.events)
	if r.dropped > 0 {
		step := 0
		if n := len(r.events); n > 0 {
			step = r.events[n-1].Step
		}
		out = append(out, SpanEvent{
			Step:   step,
			Kind:   TraceTruncated,
			Source: -1,
			Traj:   -1,
			Value:  float64(r.dropped),
			Note:   "events dropped over recorder limit",
		})
	}
	return out
}

// Dropped returns the number of events discarded over the limit.
func (r *TraceRecorder) Dropped() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of buffered events.
func (r *TraceRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// DefaultTraceDepth is the TraceStore retention when NewTraceStore is
// given a non-positive depth.
const DefaultTraceDepth = 64

// A TraceStore retains the recorders of the last N traced queries by
// ID — the backing store of the /debug/trace/{id} endpoint. Adding
// beyond the depth evicts the oldest trace.
type TraceStore struct {
	mu    sync.Mutex
	depth int
	order []string
	byID  map[string]*TraceRecorder
}

// NewTraceStore creates a store retaining up to depth traces
// (non-positive depth = DefaultTraceDepth).
func NewTraceStore(depth int) *TraceStore {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	return &TraceStore{depth: depth, byID: make(map[string]*TraceRecorder)}
}

// Add retains rec under id, evicting the oldest trace over the depth.
// Re-adding an existing id replaces its recorder in place.
func (s *TraceStore) Add(id string, rec *TraceRecorder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; !ok {
		s.order = append(s.order, id)
		if len(s.order) > s.depth {
			delete(s.byID, s.order[0])
			s.order = s.order[1:]
		}
	}
	s.byID[id] = rec
}

// Get returns the recorder stored under id.
func (s *TraceStore) Get(id string) (*TraceRecorder, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.byID[id]
	return rec, ok
}

// IDs returns the retained trace IDs, oldest first.
func (s *TraceStore) IDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// tracerKey carries a Tracer through a context.
type tracerKey struct{}

// ContextWithTracer attaches t to ctx; search entry points pick it up
// with TracerFromContext. Attaching nil returns ctx unchanged.
func ContextWithTracer(ctx context.Context, t Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey{}, t)
}

// TracerFromContext returns the tracer attached to ctx, or nil. The
// lookup allocates nothing, so un-traced requests pay one map-free
// context walk per search, not per event.
func TracerFromContext(ctx context.Context) Tracer {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(tracerKey{}).(Tracer)
	return t
}

// traceIDKey carries a trace's request ID through a context.
type traceIDKey struct{}

// ContextWithTraceID attaches the sampled request's trace ID to ctx so
// downstream hops (the RPC client) can stamp it onto wire requests and
// remote servers can retain their local spans under the same ID.
// Attaching an empty ID returns ctx unchanged.
func ContextWithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceIDKey{}, id)
}

// TraceIDFromContext returns the trace ID attached to ctx, or "".
func TraceIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(traceIDKey{}).(string)
	return id
}
