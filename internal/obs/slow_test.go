package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestSlowRecorderAdmitsOverThreshold(t *testing.T) {
	rec := NewSlowRecorder(10*time.Millisecond, 4)
	if rec == nil {
		t.Fatal("positive threshold must enable the recorder")
	}
	if rec.Observe(SlowQuery{ID: "fast"}, 9*time.Millisecond) {
		t.Error("query under threshold admitted")
	}
	if !rec.Observe(SlowQuery{ID: "edge"}, 10*time.Millisecond) {
		t.Error("query at threshold rejected (admission is inclusive)")
	}
	if !rec.Observe(SlowQuery{ID: "slow"}, time.Second) {
		t.Error("query over threshold rejected")
	}
	qs := rec.Queries()
	if len(qs) != 2 || qs[0].ID != "edge" || qs[1].ID != "slow" {
		t.Fatalf("queries = %+v, want [edge slow]", qs)
	}
	if qs[1].ElapsedMS != 1000 {
		t.Errorf("ElapsedMS = %v, want 1000", qs[1].ElapsedMS)
	}
	if rec.Len() != 2 {
		t.Errorf("Len() = %d, want 2", rec.Len())
	}
	if rec.Threshold() != 10*time.Millisecond {
		t.Errorf("Threshold() = %v", rec.Threshold())
	}
}

func TestSlowRecorderEvictsOldest(t *testing.T) {
	rec := NewSlowRecorder(time.Millisecond, 2)
	for i := 0; i < 5; i++ {
		rec.Observe(SlowQuery{ID: fmt.Sprintf("q-%d", i)}, time.Second)
	}
	qs := rec.Queries()
	if len(qs) != 2 || qs[0].ID != "q-3" || qs[1].ID != "q-4" {
		t.Fatalf("queries = %+v, want the two newest [q-3 q-4]", qs)
	}
}

// TestSlowRecorderCopiesEvents pins the aliasing contract: neither the
// caller's buffer on admit nor the recorder's buffer on read may be
// shared.
func TestSlowRecorderCopiesEvents(t *testing.T) {
	rec := NewSlowRecorder(time.Millisecond, 2)
	events := []SpanEvent{{Kind: "begin"}, {Kind: "terminate"}}
	rec.Observe(SlowQuery{ID: "q", Events: events}, time.Second)
	events[0].Kind = "mutated"
	got := rec.Queries()
	if got[0].Events[0].Kind != "begin" {
		t.Error("recorder aliased the caller's event buffer on admit")
	}
	got[0].Events[1].Kind = "mutated"
	if rec.Queries()[0].Events[1].Kind != "terminate" {
		t.Error("Queries() aliased the recorder's event buffer")
	}
}

func TestSlowRecorderDisabled(t *testing.T) {
	rec := NewSlowRecorder(0, 8)
	if rec != nil {
		t.Fatal("non-positive threshold must return a nil (disabled) recorder")
	}
	// Every method on the nil recorder is a safe no-op.
	if rec.Observe(SlowQuery{ID: "q"}, time.Hour) {
		t.Error("nil recorder admitted a query")
	}
	if rec.Queries() != nil || rec.Len() != 0 || rec.Threshold() != 0 {
		t.Error("nil recorder must report empty state")
	}
}

// TestSlowRecorderConcurrent hammers the ring from many goroutines;
// run under -race.
func TestSlowRecorderConcurrent(t *testing.T) {
	rec := NewSlowRecorder(time.Millisecond, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rec.Observe(SlowQuery{ID: fmt.Sprintf("g%d-%d", g, i)}, time.Second)
				rec.Queries()
			}
		}(g)
	}
	wg.Wait()
	if rec.Len() != 8 {
		t.Errorf("Len() = %d, want the full depth 8", rec.Len())
	}
}

func TestTraceMetrics(t *testing.T) {
	reg := NewRegistry()
	m := NewTraceMetrics(reg)
	m.RecordTrace(10, 2)
	m.RecordTrace(5, 0)
	m.RecordSlow()
	if got := m.Sampled.Value(); got != 2 {
		t.Errorf("sampled = %d, want 2", got)
	}
	if got := m.Events.Value(); got != 15 {
		t.Errorf("events = %d, want 15", got)
	}
	if got := m.Dropped.Value(); got != 2 {
		t.Errorf("dropped = %d, want 2", got)
	}
	if got := m.SlowQueries.Value(); got != 1 {
		t.Errorf("slow queries = %d, want 1", got)
	}
	// Nil metrics are no-ops, matching the other uots_* families.
	var nilM *TraceMetrics
	nilM.RecordTrace(1, 1)
	nilM.RecordSlow()
}
