package obs

import (
	"sync"
	"time"
)

// DefaultSlowQueryDepth caps a SlowRecorder when NewSlowRecorder is
// given a non-positive depth.
const DefaultSlowQueryDepth = 32

// A SlowQuery is one flight-recorder entry: the identity and outcome of
// a request whose latency crossed the recorder's threshold, plus the
// trace it left behind. Entries exist even when the caller never asked
// for tracing — the serving layer attaches a recorder to every request
// while a SlowRecorder is enabled, so the flight recorder always has
// the span evidence for its stragglers.
type SlowQuery struct {
	// ID is the request ID the entry was captured under.
	ID string `json:"id"`
	// Route is the bounded route label (e.g. "/search").
	Route string `json:"route"`
	// Status is the HTTP status the request finished with.
	Status int `json:"status"`
	// ElapsedMS is the request's wall-clock latency in milliseconds.
	ElapsedMS float64 `json:"elapsedMs"`
	// Events is the request's span replay (including the synthetic
	// TraceTruncated marker when the trace overflowed).
	Events []SpanEvent `json:"events"`
	// Dropped is the number of span events lost over the trace limit.
	Dropped int `json:"dropped"`
}

// A SlowRecorder is an always-on flight recorder: a bounded ring of the
// most recent queries whose latency met a threshold. It never samples —
// every Observe over the threshold is admitted, evicting the oldest
// entry past the depth. Safe for concurrent use. A nil recorder
// (threshold disabled) ignores every call.
type SlowRecorder struct {
	mu        sync.Mutex
	threshold time.Duration
	depth     int
	queries   []SlowQuery // ring, oldest first
}

// NewSlowRecorder creates a recorder admitting queries at or over
// threshold, retaining up to depth entries (non-positive depth =
// DefaultSlowQueryDepth). A non-positive threshold disables the
// recorder: the return is nil, and every method on a nil recorder is a
// no-op, so callers need no enablement guard.
func NewSlowRecorder(threshold time.Duration, depth int) *SlowRecorder {
	if threshold <= 0 {
		return nil
	}
	if depth <= 0 {
		depth = DefaultSlowQueryDepth
	}
	return &SlowRecorder{threshold: threshold, depth: depth}
}

// Observe offers one finished request to the flight recorder and
// reports whether it was admitted (elapsed ≥ threshold). The entry's
// Events slice is copied on admission, so the caller may reuse its
// buffer.
func (r *SlowRecorder) Observe(q SlowQuery, elapsed time.Duration) bool {
	if r == nil || elapsed < r.threshold {
		return false
	}
	q.ElapsedMS = float64(elapsed) / float64(time.Millisecond)
	q.Events = append([]SpanEvent(nil), q.Events...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queries = append(r.queries, q)
	if len(r.queries) > r.depth {
		// Shift in place rather than reslicing so the backing array
		// stays bounded at depth entries forever.
		copy(r.queries, r.queries[1:])
		r.queries = r.queries[:r.depth]
	}
	return true
}

// Queries returns the retained entries, oldest first. Event slices are
// copied, so callers may not alias the recorder's buffers.
func (r *SlowRecorder) Queries() []SlowQuery {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]SlowQuery, len(r.queries))
	copy(out, r.queries)
	for i := range out {
		out[i].Events = append([]SpanEvent(nil), out[i].Events...)
	}
	return out
}

// Threshold returns the admission threshold (0 for a nil recorder).
func (r *SlowRecorder) Threshold() time.Duration {
	if r == nil {
		return 0
	}
	return r.threshold
}

// Len returns the number of retained entries.
func (r *SlowRecorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.queries)
}

// TraceMetrics bundles the uots_trace_* instruments describing the
// tracing subsystem itself: how many requests were sampled, how much
// span volume they produced (and lost to recorder limits), and how
// often the slow-query flight recorder fired. Registered by the serving
// layer next to its request metrics.
type TraceMetrics struct {
	Sampled     *Counter // uots_trace_sampled_total
	Events      *Counter // uots_trace_events_total
	Dropped     *Counter // uots_trace_dropped_events_total
	SlowQueries *Counter // uots_trace_slow_queries_total
}

// NewTraceMetrics registers the uots_trace_* instruments on reg. A nil
// registry returns nil, whose methods are no-ops.
func NewTraceMetrics(reg *Registry) *TraceMetrics {
	if reg == nil {
		return nil
	}
	return &TraceMetrics{
		Sampled: reg.Counter("uots_trace_sampled_total",
			"Requests that ran with a trace recorder attached (X-Trace or slow-query capture)."),
		Events: reg.Counter("uots_trace_events_total",
			"Span events buffered by request trace recorders."),
		Dropped: reg.Counter("uots_trace_dropped_events_total",
			"Span events dropped over per-request trace recorder limits."),
		SlowQueries: reg.Counter("uots_trace_slow_queries_total",
			"Requests admitted to the slow-query flight recorder."),
	}
}

// RecordTrace accumulates one sampled request's span volume.
func (m *TraceMetrics) RecordTrace(events, dropped int) {
	if m == nil {
		return
	}
	m.Sampled.Inc()
	m.Events.AddInt(events)
	m.Dropped.AddInt(dropped)
}

// RecordSlow counts one flight-recorder admission.
func (m *TraceMetrics) RecordSlow() {
	if m == nil {
		return
	}
	m.SlowQueries.Inc()
}
