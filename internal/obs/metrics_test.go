package obs

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBucketing(t *testing.T) {
	cases := []struct {
		name      string
		buckets   []float64
		observe   []float64
		wantCum   []uint64 // cumulative counts, one per bound + the +Inf bucket
		wantSum   float64
		wantTotal uint64
	}{
		{
			name:    "empty histogram",
			buckets: []float64{1, 2},
			wantCum: []uint64{0, 0, 0},
		},
		{
			name:      "values land in the first bucket that fits",
			buckets:   []float64{0.1, 1, 10},
			observe:   []float64{0.05, 0.5, 5, 50},
			wantCum:   []uint64{1, 2, 3, 4},
			wantSum:   55.55,
			wantTotal: 4,
		},
		{
			name:      "boundary values are inclusive (le semantics)",
			buckets:   []float64{1, 2},
			observe:   []float64{1, 2},
			wantCum:   []uint64{1, 2, 2},
			wantSum:   3,
			wantTotal: 2,
		},
		{
			name:      "everything above the last bound goes to +Inf",
			buckets:   []float64{1},
			observe:   []float64{2, 3, math.Inf(1)},
			wantCum:   []uint64{0, 3},
			wantSum:   math.Inf(1),
			wantTotal: 3,
		},
		{
			name:      "negative and zero observations fit the lowest bucket",
			buckets:   []float64{0, 1},
			observe:   []float64{-5, 0, 0.5},
			wantCum:   []uint64{2, 3, 3},
			wantSum:   -4.5,
			wantTotal: 3,
		},
		{
			name:      "unsorted and duplicate bounds are normalized",
			buckets:   []float64{5, 1, 1, 3},
			observe:   []float64{0.5, 2, 4},
			wantCum:   []uint64{1, 2, 3, 3},
			wantSum:   6.5,
			wantTotal: 3,
		},
		{
			name:      "NaN observations are dropped",
			buckets:   []float64{1},
			observe:   []float64{math.NaN(), 0.5},
			wantCum:   []uint64{1, 1},
			wantSum:   0.5,
			wantTotal: 1,
		},
		{
			name:      "non-finite bounds are dropped, +Inf stays implicit",
			buckets:   []float64{1, math.Inf(1), math.NaN()},
			observe:   []float64{0.5, 2},
			wantCum:   []uint64{1, 2},
			wantSum:   2.5,
			wantTotal: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newHistogram(tc.buckets)
			for _, v := range tc.observe {
				h.Observe(v)
			}
			cum := h.cumulative()
			if len(cum) != len(tc.wantCum) {
				t.Fatalf("bucket count = %d, want %d", len(cum), len(tc.wantCum))
			}
			for i := range cum {
				if cum[i] != tc.wantCum[i] {
					t.Errorf("cumulative[%d] = %d, want %d", i, cum[i], tc.wantCum[i])
				}
			}
			if got := h.Count(); got != tc.wantTotal {
				t.Errorf("Count() = %d, want %d", got, tc.wantTotal)
			}
			if got := h.Sum(); got != tc.wantSum && !(math.IsNaN(got) && math.IsNaN(tc.wantSum)) {
				if math.Abs(got-tc.wantSum) > 1e-9 {
					t.Errorf("Sum() = %g, want %g", got, tc.wantSum)
				}
			}
		})
	}
}

// TestCounterConcurrency hammers one counter, one gauge, and one
// histogram from many goroutines; run under -race this doubles as the
// data-race proof for the atomic hot paths.
func TestCounterConcurrency(t *testing.T) {
	const goroutines, perG = 16, 1000
	reg := NewRegistry()
	c := reg.Counter("uots_test_ops_total", "ops")
	g := reg.Gauge("uots_test_inflight", "in flight")
	h := reg.Histogram("uots_test_latency_seconds", "latency", []float64{0.5})
	cv := reg.CounterVec("uots_test_by_kind_total", "by kind", "kind")

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			kind := "even"
			if i%2 == 1 {
				kind = "odd"
			}
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
				h.Observe(0.25)
				cv.With(kind).Add(2)
			}
		}(i)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := h.Count(); got != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", got, goroutines*perG)
	}
	if got := h.Sum(); math.Abs(got-0.25*goroutines*perG) > 1e-6 {
		t.Errorf("histogram sum = %g, want %g", got, 0.25*goroutines*perG)
	}
	want := uint64(goroutines / 2 * perG * 2)
	for _, kind := range []string{"even", "odd"} {
		if got := cv.With(kind).Value(); got != want {
			t.Errorf("countervec[%s] = %d, want %d", kind, got, want)
		}
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("uots_test_total", "help")
	b := reg.Counter("uots_test_total", "help")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Error("aliased counters diverged")
	}

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("type conflict", func() { reg.Gauge("uots_test_total", "help") })
	mustPanic("label conflict", func() { reg.CounterVec("uots_test_total", "help", "x") })
	mustPanic("bad metric name", func() { reg.Counter("uots test total", "help") })
	mustPanic("bad label name", func() { reg.CounterVec("uots_test_labels_total", "help", "bad label") })
	mustPanic("label arity", func() {
		reg.CounterVec("uots_test_arity_total", "help", "a", "b").With("only-one")
	})
}

func TestCounterAddIntIgnoresNegative(t *testing.T) {
	var c Counter
	c.AddInt(5)
	c.AddInt(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5 (negative delta must be ignored)", got)
	}
}
