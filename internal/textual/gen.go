package textual

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// SyntheticVocab is a generated keyword universe with Zipf-distributed
// popularity and a topic structure: terms are partitioned into topics, and
// a trajectory generator draws most of a trip's keywords from the topic of
// its destination region, giving the corpus the spatial–textual
// correlation real check-in data exhibits.
type SyntheticVocab struct {
	Vocab    *Vocab
	Topics   [][]TermID // Topics[t] = terms belonging to topic t
	zipfCDF  []float64  // within-topic popularity CDF (same shape for all topics)
	rngState *rand.Rand
}

// GenerateVocab creates numTopics topics of termsPerTopic terms each, with
// within-topic popularity following a Zipf law with exponent s (s≈1 gives
// classic web-text skew). Term strings look like "t3_kw17".
func GenerateVocab(numTopics, termsPerTopic int, s float64, seed uint64) *SyntheticVocab {
	if numTopics <= 0 || termsPerTopic <= 0 {
		panic("textual: GenerateVocab needs positive topic and term counts")
	}
	if s <= 0 {
		s = 1.0
	}
	v := NewVocab()
	sv := &SyntheticVocab{
		Vocab:    v,
		Topics:   make([][]TermID, numTopics),
		rngState: rand.New(rand.NewPCG(seed, seed^0xc2b2ae3d27d4eb4f)),
	}
	for t := 0; t < numTopics; t++ {
		sv.Topics[t] = make([]TermID, termsPerTopic)
		for k := 0; k < termsPerTopic; k++ {
			id, ok := v.Intern(fmt.Sprintf("t%d_kw%d", t, k))
			if !ok {
				panic("textual: generated keyword normalized to empty")
			}
			sv.Topics[t][k] = id
		}
	}
	// Zipf CDF over rank 1..termsPerTopic: weight(rank) = rank^-s.
	cdf := make([]float64, termsPerTopic)
	var total float64
	for k := 0; k < termsPerTopic; k++ {
		total += 1 / math.Pow(float64(k+1), s)
		cdf[k] = total
	}
	for k := range cdf {
		cdf[k] /= total
	}
	sv.zipfCDF = cdf
	return sv
}

// DrawTermSet samples count keywords for a document belonging to topic:
// each keyword comes from the home topic with probability focus (drawn
// Zipf-skewed within the topic) and from a uniformly random other topic
// otherwise. The result is deduplicated, so it may be smaller than count.
func (sv *SyntheticVocab) DrawTermSet(topic, count int, focus float64, rng *rand.Rand) TermSet {
	if rng == nil {
		rng = sv.rngState
	}
	ids := make([]TermID, 0, count)
	for i := 0; i < count; i++ {
		t := topic
		if rng.Float64() >= focus && len(sv.Topics) > 1 {
			for {
				t = rng.IntN(len(sv.Topics))
				if t != topic {
					break
				}
			}
		}
		ids = append(ids, sv.Topics[t][sv.drawRank(rng)])
	}
	return NewTermSet(ids)
}

// DrawQueryTerms samples count query keywords biased toward topic, the
// same way DrawTermSet samples document keywords. Queries drawn near a
// destination region therefore share vocabulary with trips ending there.
func (sv *SyntheticVocab) DrawQueryTerms(topic, count int, focus float64, rng *rand.Rand) TermSet {
	return sv.DrawTermSet(topic, count, focus, rng)
}

// NumTopics returns the number of topics in the vocabulary.
func (sv *SyntheticVocab) NumTopics() int { return len(sv.Topics) }

func (sv *SyntheticVocab) drawRank(rng *rand.Rand) int {
	u := rng.Float64()
	lo, hi := 0, len(sv.zipfCDF)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if sv.zipfCDF[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
