package textual

import (
	"math"
	"math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Food", "food"},
		{"  Street Food  ", "streetfood"},
		{"café", "café"},
		{"live-music", "live-music"},
		{"a_b", "a_b"},
		{"!!!", ""},
		{"", ""},
		{"ROCK'N'ROLL", "rocknroll"},
		{"kw42", "kw42"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTokenize(t *testing.T) {
	got := Tokenize("lakeside dinner, Live Jazz! river-walk")
	want := []string{"lakeside", "dinner", "live", "jazz", "river-walk"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
	if got := Tokenize("  ,,, !!"); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v", got)
	}
}

func TestVocabIntern(t *testing.T) {
	v := NewVocab()
	id1, ok := v.Intern("Food")
	if !ok || id1 != 0 {
		t.Fatalf("first intern = (%d, %v)", id1, ok)
	}
	id2, ok := v.Intern("food") // same after normalization
	if !ok || id2 != id1 {
		t.Fatalf("re-intern = %d, want %d", id2, id1)
	}
	id3, _ := v.Intern("market")
	if id3 != 1 {
		t.Fatalf("second term id = %d", id3)
	}
	if v.Size() != 2 {
		t.Fatalf("Size = %d", v.Size())
	}
	if _, ok := v.Intern("!!!"); ok {
		t.Error("empty-normalizing keyword should fail")
	}
	if got, ok := v.Lookup("FOOD"); !ok || got != id1 {
		t.Errorf("Lookup = (%d, %v)", got, ok)
	}
	if _, ok := v.Lookup("absent"); ok {
		t.Error("Lookup of absent term should fail")
	}
	if term, ok := v.Term(0); !ok || term != "food" {
		t.Errorf("Term(0) = (%q, %v)", term, ok)
	}
	if _, ok := v.Term(99); ok {
		t.Error("Term(99) should fail")
	}
	set := v.InternAll([]string{"food", "Market", "food", "???"})
	if len(set) != 2 {
		t.Fatalf("InternAll = %v", set)
	}
}

func TestNewTermSetSortsAndDedups(t *testing.T) {
	s := NewTermSet([]TermID{5, 1, 5, 3, 1})
	want := TermSet{1, 3, 5}
	if !reflect.DeepEqual(s, want) {
		t.Fatalf("NewTermSet = %v", s)
	}
	if NewTermSet(nil) != nil {
		t.Error("empty input should give nil set")
	}
	if !s.Contains(3) || s.Contains(2) {
		t.Error("Contains wrong")
	}
}

func TestSetSimilarities(t *testing.T) {
	a := NewTermSet([]TermID{1, 2, 3})
	b := NewTermSet([]TermID{2, 3, 4, 5})
	if got := a.IntersectionSize(b); got != 2 {
		t.Fatalf("IntersectionSize = %d", got)
	}
	if got := Jaccard(a, b); math.Abs(got-2.0/5.0) > 1e-12 {
		t.Errorf("Jaccard = %g", got)
	}
	if got := Dice(a, b); math.Abs(got-4.0/7.0) > 1e-12 {
		t.Errorf("Dice = %g", got)
	}
	if got := Overlap(a, b); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Overlap = %g", got)
	}
	if Jaccard(nil, nil) != 0 || Dice(nil, nil) != 0 || Overlap(nil, a) != 0 {
		t.Error("empty-set similarities should be 0")
	}
	if Jaccard(a, a) != 1 || Dice(a, a) != 1 || Overlap(a, a) != 1 {
		t.Error("self similarity should be 1")
	}
}

func TestSimilarityPropertiesQuick(t *testing.T) {
	mk := func(raw []uint8) TermSet {
		ids := make([]TermID, len(raw))
		for i, r := range raw {
			ids[i] = TermID(r % 32)
		}
		return NewTermSet(ids)
	}
	f := func(ra, rb []uint8) bool {
		a, b := mk(ra), mk(rb)
		j1, j2 := Jaccard(a, b), Jaccard(b, a)
		d1, d2 := Dice(a, b), Dice(b, a)
		return j1 == j2 && d1 == d2 && // symmetry
			j1 >= 0 && j1 <= 1 && d1 >= 0 && d1 <= 1 && // range
			j1 <= d1+1e-12 // Jaccard ≤ Dice always
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func buildIndex(t *testing.T, docs []TermSet) *Index {
	t.Helper()
	ix := NewIndex()
	for i, d := range docs {
		ix.Add(DocID(i), d)
	}
	ix.Freeze()
	return ix
}

func TestIndexPostingsAndDocsWithAny(t *testing.T) {
	docs := []TermSet{
		NewTermSet([]TermID{1, 2}),
		NewTermSet([]TermID{2, 3}),
		NewTermSet([]TermID{4}),
		nil,
		NewTermSet([]TermID{1, 4}),
	}
	ix := buildIndex(t, docs)
	if ix.NumDocs() != 5 {
		t.Fatalf("NumDocs = %d", ix.NumDocs())
	}
	if got := ix.Postings(2); !reflect.DeepEqual(got, []DocID{0, 1}) {
		t.Errorf("Postings(2) = %v", got)
	}
	if ix.DocFreq(4) != 2 || ix.DocFreq(9) != 0 {
		t.Error("DocFreq wrong")
	}
	got := ix.DocsWithAny(NewTermSet([]TermID{1, 4}))
	if !reflect.DeepEqual(got, []DocID{0, 2, 4}) {
		t.Errorf("DocsWithAny = %v", got)
	}
	if got := ix.DocsWithAny(nil); got != nil {
		t.Errorf("DocsWithAny(nil) = %v", got)
	}
	if got := ix.DocsWithAny(NewTermSet([]TermID{9})); len(got) != 0 {
		t.Errorf("DocsWithAny(missing) = %v", got)
	}
	// Single-term fast path returns a copy, not the posting list itself.
	single := ix.DocsWithAny(NewTermSet([]TermID{2}))
	single[0] = 99
	if ix.Postings(2)[0] == 99 {
		t.Error("DocsWithAny aliases postings")
	}
}

func TestDocsWithAnyMatchesBruteProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 8))
	for trial := 0; trial < 50; trial++ {
		nDocs := 1 + rng.IntN(60)
		docs := make([]TermSet, nDocs)
		for i := range docs {
			raw := make([]TermID, rng.IntN(6))
			for j := range raw {
				raw[j] = TermID(rng.IntN(20))
			}
			docs[i] = NewTermSet(raw)
		}
		ix := buildIndex(t, docs)
		qraw := make([]TermID, 1+rng.IntN(4))
		for j := range qraw {
			qraw[j] = TermID(rng.IntN(20))
		}
		q := NewTermSet(qraw)
		got := ix.DocsWithAny(q)
		var want []DocID
		for i, d := range docs {
			if d.IntersectionSize(q) > 0 {
				want = append(want, DocID(i))
			}
		}
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Fatalf("trial %d: DocsWithAny = %v, want %v", trial, got, want)
		}
	}
}

func TestIndexAddPanics(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, nil)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("out-of-order Add should panic")
			}
		}()
		ix.Add(5, nil)
	}()
	ix.Freeze()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Add after Freeze should panic")
			}
		}()
		ix.Add(1, nil)
	}()
}

func TestScoreAll(t *testing.T) {
	docs := []TermSet{
		NewTermSet([]TermID{1, 2}),
		NewTermSet([]TermID{3}),
		NewTermSet([]TermID{1, 2, 3}),
	}
	ix := buildIndex(t, docs)
	q := NewTermSet([]TermID{1, 2})
	ds, scores := ix.ScoreAll(q, Jaccard)
	if len(ds) != 2 || ds[0] != 0 || ds[1] != 2 {
		t.Fatalf("ScoreAll docs = %v", ds)
	}
	if scores[0] != 1 || math.Abs(scores[1]-2.0/3.0) > 1e-12 {
		t.Fatalf("ScoreAll scores = %v", scores)
	}
}

func TestCosineIDF(t *testing.T) {
	docs := []TermSet{
		NewTermSet([]TermID{1, 2}),
		NewTermSet([]TermID{1}),
		NewTermSet([]TermID{1}),
		NewTermSet([]TermID{1}),
		NewTermSet([]TermID{2, 3}),
	}
	ix := buildIndex(t, docs)
	// Identical sets have cosine 1 regardless of IDF.
	if got := ix.CosineIDF(NewTermSet([]TermID{1, 2}), 0); math.Abs(got-1) > 1e-12 {
		t.Errorf("cosine of identical sets = %g", got)
	}
	// No shared terms → 0.
	if got := ix.CosineIDF(NewTermSet([]TermID{3}), 1); got != 0 {
		t.Errorf("cosine with no overlap = %g", got)
	}
	// Term 2 is rarer than term 1, so matching on 2 scores higher than
	// matching on 1 against the same two-term doc.
	m1 := ix.CosineIDF(NewTermSet([]TermID{1}), 0)
	m2 := ix.CosineIDF(NewTermSet([]TermID{2}), 0)
	if m2 <= m1 {
		t.Errorf("rare-term match %g should beat common-term match %g", m2, m1)
	}
	if got := ix.CosineIDF(nil, 0); got != 0 {
		t.Errorf("empty query cosine = %g", got)
	}
	if ix.IDF(1) >= ix.IDF(3) {
		t.Error("IDF of common term should be below rare term")
	}
}

func TestGenerateVocab(t *testing.T) {
	sv := GenerateVocab(5, 30, 1.0, 99)
	if sv.NumTopics() != 5 {
		t.Fatalf("NumTopics = %d", sv.NumTopics())
	}
	if sv.Vocab.Size() != 150 {
		t.Fatalf("vocab size = %d", sv.Vocab.Size())
	}
	rng := rand.New(rand.NewPCG(1, 2))
	// Topic focus: most drawn terms should come from the home topic.
	home := 0
	homeTerms := map[TermID]bool{}
	for _, id := range sv.Topics[home] {
		homeTerms[id] = true
	}
	inHome, total := 0, 0
	for i := 0; i < 200; i++ {
		set := sv.DrawTermSet(home, 5, 0.9, rng)
		for _, id := range set {
			total++
			if homeTerms[id] {
				inHome++
			}
		}
	}
	if frac := float64(inHome) / float64(total); frac < 0.75 {
		t.Errorf("home-topic fraction %.2f, want ≥ 0.75 at focus 0.9", frac)
	}
	// Zipf skew: the rank-0 term should be drawn much more often than the
	// last-rank term.
	counts := map[TermID]int{}
	for i := 0; i < 5000; i++ {
		for _, id := range sv.DrawTermSet(1, 1, 1.0, rng) {
			counts[id]++
		}
	}
	first := counts[sv.Topics[1][0]]
	last := counts[sv.Topics[1][29]]
	if first < 5*last {
		t.Errorf("Zipf skew too weak: rank0=%d rank29=%d", first, last)
	}
	// Determinism of the universe itself.
	sv2 := GenerateVocab(5, 30, 1.0, 99)
	for tp := range sv.Topics {
		if !reflect.DeepEqual(sv.Topics[tp], sv2.Topics[tp]) {
			t.Fatal("same seed, different topics")
		}
	}
}

func TestGenerateVocabPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GenerateVocab(0, ...) should panic")
		}
	}()
	GenerateVocab(0, 10, 1, 1)
}

func TestIndexExtend(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, NewTermSet([]TermID{1, 2}))
	ix.Add(1, NewTermSet([]TermID{2, 3}))
	ix.Freeze()

	ext := ix.Extend([]TermSet{
		NewTermSet([]TermID{2}),
		NewTermSet([]TermID{4}),
		nil,
	})
	if ext.NumDocs() != 5 {
		t.Fatalf("extended NumDocs = %d, want 5", ext.NumDocs())
	}
	wantExt := map[TermID][]DocID{1: {0}, 2: {0, 1, 2}, 3: {1}, 4: {3}}
	for term, want := range wantExt {
		if got := ext.Postings(term); !reflect.DeepEqual(got, want) {
			t.Errorf("extended postings[%d] = %v, want %v", term, got, want)
		}
	}
	// The base index is untouched: same doc count, same postings, even
	// for the term the extension appended to.
	if ix.NumDocs() != 2 {
		t.Fatalf("base NumDocs changed to %d", ix.NumDocs())
	}
	wantBase := map[TermID][]DocID{1: {0}, 2: {0, 1}, 3: {1}}
	for term, want := range wantBase {
		if got := ix.Postings(term); !reflect.DeepEqual(got, want) {
			t.Errorf("base postings[%d] = %v, want %v (extension leaked)", term, got, want)
		}
	}
	if got := ix.Postings(4); got != nil {
		t.Errorf("base postings[4] = %v, want nil", got)
	}
	// Untouched lists are shared (the whole point of the COW scheme):
	// term 3 appears in no new document, so the internal slices alias.
	// Asserted on the internal fields — the public Postings accessor
	// returns defensive copies precisely so this sharing is unobservable.
	if len(ix.postings[3]) > 0 && len(ext.postings[3]) > 0 && &ix.postings[3][0] != &ext.postings[3][0] {
		t.Error("untouched posting list was copied, not shared")
	}
	// Extending twice from the same base must not clobber the sibling.
	sib := ix.Extend([]TermSet{NewTermSet([]TermID{2, 3})})
	if got, want := sib.Postings(2), []DocID{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("sibling postings[2] = %v, want %v", got, want)
	}
	if got, want := ext.Postings(2), []DocID{0, 1, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("first extension postings[2] = %v after sibling extension, want %v", got, want)
	}
}

// TestAccessorMutationSafety is the regression for the aliased-internal-
// slice bug class: Postings and DocTerms hand out defensive copies, so a
// caller sorting or overwriting the returned slice cannot corrupt the
// index (or, through COW extension sharing, any other MVCC generation).
func TestAccessorMutationSafety(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, NewTermSet([]TermID{1, 2}))
	ix.Add(1, NewTermSet([]TermID{2, 3}))
	ix.Freeze()

	p := ix.Postings(2)
	p[0], p[1] = 999, 998
	if got, want := ix.Postings(2), []DocID{0, 1}; !reflect.DeepEqual(got, want) {
		t.Errorf("mutating a returned posting list changed the index: %v, want %v", got, want)
	}
	dt := ix.DocTerms(1)
	dt[0] = 777
	if got, want := ix.DocTerms(1), NewTermSet([]TermID{2, 3}); !reflect.DeepEqual(got, want) {
		t.Errorf("mutating a returned term set changed the index: %v, want %v", got, want)
	}
	if ix.DocFreq(2) != 2 || ix.DocFreq(777) != 0 {
		t.Errorf("doc frequencies shifted after caller mutation: df(2)=%d df(777)=%d",
			ix.DocFreq(2), ix.DocFreq(777))
	}
}

// TestExtendCopiesCallerTermSets: Extend deep-copies the term sets it is
// handed, so a caller that reuses its decode buffer (the WAL replay loop
// does) cannot mutate a published generation after the fact.
func TestExtendCopiesCallerTermSets(t *testing.T) {
	ix := NewIndex()
	ix.Add(0, NewTermSet([]TermID{1, 2}))
	ix.Freeze()

	buf := NewTermSet([]TermID{4, 6})
	ext := ix.Extend([]TermSet{buf})
	buf[0], buf[1] = 50, 60 // caller reuses its buffer
	if got, want := ext.DocTerms(1), NewTermSet([]TermID{4, 6}); !reflect.DeepEqual(got, want) {
		t.Errorf("extension aliases the caller's buffer: DocTerms = %v, want %v", got, want)
	}
	if ext.DocFreq(50) != 0 || ext.DocFreq(4) != 1 {
		t.Errorf("buffer reuse leaked into postings: df(50)=%d df(4)=%d",
			ext.DocFreq(50), ext.DocFreq(4))
	}
	// Cross-generation: mutating a term set read from the extension must
	// not reach the base generation's copy of the shared document.
	et := ext.DocTerms(0)
	if len(et) == 0 {
		t.Fatal("extension lost the inherited document")
	}
	et[0] = 888
	if got, want := ix.DocTerms(0), NewTermSet([]TermID{1, 2}); !reflect.DeepEqual(got, want) {
		t.Errorf("mutation through the extension corrupted the base generation: %v, want %v", got, want)
	}
}

func TestIndexExtendUnfrozenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Extend of an unfrozen index should panic")
		}
	}()
	NewIndex().Extend(nil)
}
