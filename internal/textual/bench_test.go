package textual

import (
	"math/rand/v2"
	"testing"
)

func benchCorpus(b *testing.B) (*Index, []TermSet) {
	b.Helper()
	sv := GenerateVocab(12, 80, 1.0, 1)
	rng := rand.New(rand.NewPCG(2, 3))
	ix := NewIndex()
	const docs = 20000
	for d := 0; d < docs; d++ {
		ix.Add(DocID(d), sv.DrawTermSet(rng.IntN(12), 5, 0.8, rng))
	}
	ix.Freeze()
	queries := make([]TermSet, 64)
	for i := range queries {
		queries[i] = sv.DrawQueryTerms(rng.IntN(12), 3, 0.8, rng)
	}
	return ix, queries
}

func BenchmarkDocsWithAny(b *testing.B) {
	ix, queries := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.DocsWithAny(queries[i%len(queries)])
	}
}

func BenchmarkScoreAllJaccard(b *testing.B) {
	ix, queries := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.ScoreAll(queries[i%len(queries)], Jaccard)
	}
}

func BenchmarkJaccardPair(b *testing.B) {
	s := NewTermSet([]TermID{1, 5, 9, 13, 17})
	t := NewTermSet([]TermID{5, 9, 21, 33})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Jaccard(s, t)
	}
}

func BenchmarkCosineIDF(b *testing.B) {
	ix, queries := benchCorpus(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.CosineIDF(queries[i%len(queries)], DocID(i%ix.NumDocs()))
	}
}
