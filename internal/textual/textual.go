// Package textual implements the textual-domain substrate of the UOTS
// system: a vocabulary mapping keyword strings to dense term IDs, set-based
// and TF-IDF similarity functions over keyword sets, a keyword inverted
// index, and a Zipf-skewed vocabulary generator for synthetic workloads.
//
// Trajectories carry textual attributes (activity keywords, POI
// categories, traveler notes); a UOTS query carries keywords describing
// the user's travel intention. The textual similarity between the two sets
// is combined linearly with the spatial similarity by the search engine.
package textual

import (
	"sort"
	"strings"
	"sync"
	"unicode"
)

// TermID is a dense identifier for a vocabulary term.
type TermID int32

// Vocab is a bidirectional mapping between keyword strings and TermIDs.
// The zero value is an empty, ready-to-use vocabulary. Vocab is safe for
// concurrent use: the live ingest path interns new corpus keywords while
// query setup interns search terms, so interning takes a write lock and
// lookups a read lock. Scoring itself runs on interned TermIDs and never
// touches the vocabulary.
type Vocab struct {
	mu     sync.RWMutex
	byTerm map[string]TermID
	terms  []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{byTerm: make(map[string]TermID)}
}

// Size returns the number of distinct terms interned so far.
func (v *Vocab) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.terms)
}

// Intern normalizes the keyword and returns its TermID, assigning a fresh
// ID on first sight. Keywords that normalize to the empty string return
// (-1, false).
func (v *Vocab) Intern(keyword string) (TermID, bool) {
	norm := Normalize(keyword)
	if norm == "" {
		return -1, false
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.byTerm == nil {
		v.byTerm = make(map[string]TermID)
	}
	if id, ok := v.byTerm[norm]; ok {
		return id, true
	}
	id := TermID(len(v.terms))
	v.byTerm[norm] = id
	v.terms = append(v.terms, norm)
	return id, true
}

// Lookup returns the TermID of an already-interned keyword.
func (v *Vocab) Lookup(keyword string) (TermID, bool) {
	norm := Normalize(keyword)
	v.mu.RLock()
	defer v.mu.RUnlock()
	id, ok := v.byTerm[norm]
	return id, ok
}

// Term returns the normalized string for id; ok is false for unknown IDs.
func (v *Vocab) Term(id TermID) (string, bool) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	if id < 0 || int(id) >= len(v.terms) {
		return "", false
	}
	return v.terms[id], true
}

// InternAll interns each keyword and returns the resulting TermSet
// (deduplicated, sorted). Keywords that normalize to empty are dropped.
func (v *Vocab) InternAll(keywords []string) TermSet {
	ids := make([]TermID, 0, len(keywords))
	for _, k := range keywords {
		if id, ok := v.Intern(k); ok {
			ids = append(ids, id)
		}
	}
	return NewTermSet(ids)
}

// Normalize lowercases the keyword, trims surrounding space and drops any
// characters that are not letters, digits, hyphens or underscores. It is
// the single canonicalization point for both corpus and query keywords.
func Normalize(keyword string) string {
	var b strings.Builder
	for _, r := range strings.TrimSpace(keyword) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '-' || r == '_':
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Tokenize splits free text on any non-term character and normalizes each
// token, dropping empties. Use it to turn a free-form intention sentence
// ("lakeside dinner, live jazz!") into query keywords.
func Tokenize(text string) []string {
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return !(unicode.IsLetter(r) || unicode.IsDigit(r) || r == '-' || r == '_')
	})
	out := fields[:0]
	for _, f := range fields {
		if n := Normalize(f); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// TermSet is a deduplicated, ascending-sorted set of TermIDs. The
// representation invariant (sorted, unique) is what makes the similarity
// functions below linear-time merges.
type TermSet []TermID

// NewTermSet sorts and deduplicates ids into a TermSet. The input slice is
// not modified.
func NewTermSet(ids []TermID) TermSet {
	if len(ids) == 0 {
		return nil
	}
	s := append(TermSet(nil), ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:1]
	for _, id := range s[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

// Contains reports whether id is in the set.
func (s TermSet) Contains(id TermID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// IntersectionSize returns |s ∩ t| by a linear merge.
func (s TermSet) IntersectionSize(t TermSet) int {
	i, j, n := 0, 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Jaccard returns |s ∩ t| / |s ∪ t| ∈ [0, 1]. Two empty sets have
// similarity 0 (an empty intention matches nothing, by convention).
func Jaccard(s, t TermSet) float64 {
	inter := s.IntersectionSize(t)
	union := len(s) + len(t) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Dice returns 2|s ∩ t| / (|s| + |t|) ∈ [0, 1].
func Dice(s, t TermSet) float64 {
	inter := s.IntersectionSize(t)
	den := len(s) + len(t)
	if den == 0 {
		return 0
	}
	return 2 * float64(inter) / float64(den)
}

// Overlap returns |s ∩ t| / min(|s|, |t|) ∈ [0, 1].
func Overlap(s, t TermSet) float64 {
	if len(s) == 0 || len(t) == 0 {
		return 0
	}
	m := len(s)
	if len(t) < m {
		m = len(t)
	}
	return float64(s.IntersectionSize(t)) / float64(m)
}
