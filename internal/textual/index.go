package textual

import (
	"math"
	"sort"
)

// DocID identifies a document (a trajectory, in this system) in an
// inverted Index. The trajectory store guarantees density: documents are
// numbered 0..n-1.
type DocID int32

// Index is a keyword inverted index: for each term, the ascending list of
// documents containing it. It answers "which trajectories share at least
// one keyword with the query" and computes exact textual scores for
// exactly those documents — the textual-domain access path of the UOTS
// engine.
//
// Build with Add calls followed by Freeze; a frozen Index is immutable and
// safe for concurrent use.
type Index struct {
	postings map[TermID][]DocID
	docTerms []TermSet // by DocID
	frozen   bool
	numDocs  int
}

// NewIndex returns an empty inverted index.
func NewIndex() *Index {
	return &Index{postings: make(map[TermID][]DocID)}
}

// Add registers a document and its term set. Documents must be added in
// ascending DocID order starting from 0. Add panics on out-of-order IDs or
// after Freeze, since both indicate a programming error in the loader.
func (ix *Index) Add(doc DocID, terms TermSet) {
	if ix.frozen {
		panic("textual: Add after Freeze")
	}
	if int(doc) != ix.numDocs {
		panic("textual: documents must be added densely in order")
	}
	ix.numDocs++
	ix.docTerms = append(ix.docTerms, terms)
	for _, t := range terms {
		ix.postings[t] = append(ix.postings[t], doc)
	}
}

// Freeze makes the index immutable. Postings are already sorted because
// Add enforces ascending DocID order.
func (ix *Index) Freeze() { ix.frozen = true }

// Extend returns a new frozen Index covering ix's documents plus docs
// appended densely after them, without touching ix: readers holding the
// old index keep a consistent view while the new one serves the grown
// corpus — the incremental maintenance path of an add-only snapshot
// extension. Posting lists of terms absent from docs are shared with ix;
// touched lists are copied before the new DocIDs are appended, so
// neither index can observe the other's writes. Extend panics when ix is
// not frozen (an unfrozen index is still being loaded; extending it
// indicates a programming error).
func (ix *Index) Extend(docs []TermSet) *Index {
	if !ix.frozen {
		panic("textual: Extend of an unfrozen index")
	}
	next := &Index{
		postings: make(map[TermID][]DocID, len(ix.postings)),
		docTerms: make([]TermSet, len(ix.docTerms), len(ix.docTerms)+len(docs)),
		frozen:   true,
		numDocs:  ix.numDocs,
	}
	copy(next.docTerms, ix.docTerms)
	for t, p := range ix.postings {
		next.postings[t] = p
	}
	copied := make(map[TermID]bool)
	for _, terms := range docs {
		doc := DocID(next.numDocs)
		next.numDocs++
		// Deep-copy the incoming set: the caller may be reusing a decode
		// buffer (WAL replay) or handing in a set it later sorts, and this
		// index must stay immutable for as long as any snapshot reader
		// holds it.
		next.docTerms = append(next.docTerms, append(TermSet(nil), terms...))
		for _, t := range terms {
			if !copied[t] {
				// First touch this extension: unshare the list from ix
				// before appending (the shared backing array must stay
				// exactly as ix's readers see it).
				next.postings[t] = append(make([]DocID, 0, len(next.postings[t])+1), next.postings[t]...)
				copied[t] = true
			}
			next.postings[t] = append(next.postings[t], doc)
		}
	}
	return next
}

// NumDocs returns the number of documents added.
func (ix *Index) NumDocs() int { return ix.numDocs }

// DocTerms returns a copy of the term set of doc. Returning a copy costs
// one allocation on a path no search loop touches (the engines score
// through ScoreAll/CosineIDF, which read the internal sets directly) and
// removes a whole bug class: a caller that sorts or edits the result in
// place can no longer corrupt this index — or, worse, every MVCC
// generation sharing the set through Extend.
func (ix *Index) DocTerms(doc DocID) TermSet {
	return append(TermSet(nil), ix.docTerms[doc]...)
}

// Postings returns a copy of the ascending document list for term (nil
// if the term occurs nowhere). As with DocTerms, the copy makes
// caller-side mutation harmless: posting lists may be shared with other
// generations of this index (Extend) and with the disk-store sidecar
// loader, so handing out the internal slice would let one caller's edit
// silently poison readers holding an older snapshot.
func (ix *Index) Postings(term TermID) []DocID {
	return append([]DocID(nil), ix.postings[term]...)
}

// DocFreq returns the number of documents containing term.
func (ix *Index) DocFreq(term TermID) int { return len(ix.postings[term]) }

// DocsWithAny returns the ascending, deduplicated list of documents
// containing at least one of the query terms. Every document outside this
// list has Jaccard/Dice/cosine similarity exactly 0 with the query — the
// textual pruning fact the engine's unseen-trajectory bound relies on.
func (ix *Index) DocsWithAny(query TermSet) []DocID {
	switch len(query) {
	case 0:
		return nil
	case 1:
		p := ix.postings[query[0]]
		return append([]DocID(nil), p...)
	}
	// k-way merge by repeated pairwise union, smallest lists first.
	lists := make([][]DocID, 0, len(query))
	for _, t := range query {
		if p := ix.postings[t]; len(p) > 0 {
			lists = append(lists, p)
		}
	}
	if len(lists) == 0 {
		return nil
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	acc := append([]DocID(nil), lists[0]...)
	for _, l := range lists[1:] {
		acc = unionSorted(acc, l)
	}
	return acc
}

func unionSorted(a, b []DocID) []DocID {
	out := make([]DocID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ScoreAll computes sim(query, doc) for every document sharing at least
// one term with the query, using the given similarity function, and
// returns parallel slices of documents (ascending) and scores.
func (ix *Index) ScoreAll(query TermSet, sim func(a, b TermSet) float64) (docs []DocID, scores []float64) {
	docs = ix.DocsWithAny(query)
	scores = make([]float64, len(docs))
	for i, d := range docs {
		scores[i] = sim(query, ix.docTerms[d])
	}
	return docs, scores
}

// IDF returns the smoothed inverse document frequency of term:
// ln(1 + N / (1 + df)). Terms seen nowhere get the maximum IDF.
func (ix *Index) IDF(term TermID) float64 {
	return math.Log(1 + float64(ix.numDocs)/float64(1+ix.DocFreq(term)))
}

// CosineIDF returns the IDF-weighted cosine similarity between the query
// term set and a document's term set: both sides are 0/1 vectors weighted
// by IDF. It rewards matches on rare terms more than Jaccard does.
func (ix *Index) CosineIDF(query TermSet, doc DocID) float64 {
	dterms := ix.docTerms[doc]
	var dot, qn, dn float64
	i, j := 0, 0
	for i < len(query) || j < len(dterms) {
		switch {
		case j >= len(dterms) || (i < len(query) && query[i] < dterms[j]):
			w := ix.IDF(query[i])
			qn += w * w
			i++
		case i >= len(query) || query[i] > dterms[j]:
			w := ix.IDF(dterms[j])
			dn += w * w
			j++
		default:
			w := ix.IDF(query[i])
			dot += w * w
			qn += w * w
			dn += w * w
			i++
			j++
		}
	}
	if qn == 0 || dn == 0 {
		return 0
	}
	return dot / (math.Sqrt(qn) * math.Sqrt(dn))
}
