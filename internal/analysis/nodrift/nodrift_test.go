package nodrift_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/nodrift"
)

func TestNodrift(t *testing.T) {
	analysistest.Run(t, "testdata", nodrift.Analyzer, "core", "roadnet", "obs", "tools")
}
