// Package obs is a fixture of the observability layer: metric updates and
// trace events must be deterministic, so the clock is reachable only
// through the allowlisted stopwatch helper.
package obs

import "time"

func emit() {
	_ = time.Now() // want `time\.Now makes core results drift`
}

func observeLatency(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since makes core results drift`
}

//uots:allow nodrift -- designated timing helper: elapsed time feeds metrics and logs only, never scores
func Stopwatch() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}

func bareDirective() time.Time {
	//uots:allow nodrift
	return time.Now() // want `time\.Now makes core results drift`
}
