// Package tools is out of scope: only core and roadnet must be
// deterministic.
package tools

import (
	"math/rand"
	"time"
)

func jitter() time.Time {
	_ = rand.Intn(100) // ok: out of scope
	return time.Now()  // ok: out of scope
}
