// Package rand is a fixture stub of math/rand/v2.
package rand

type PCG struct{ hi, lo uint64 }

func (p *PCG) Uint64() uint64 { return 0 }

type Source interface{ Uint64() uint64 }

type Rand struct{ src Source }

func New(src Source) *Rand            { return &Rand{src} }
func NewPCG(seed1, seed2 uint64) *PCG { return &PCG{seed1, seed2} }

func IntN(n int) int   { return 0 }
func Float64() float64 { return 0 }

func (r *Rand) IntN(n int) int   { return 0 }
func (r *Rand) Float64() float64 { return 0 }
