// Package core is a fixture of the deterministic scoring core.
package core

import (
	"math/rand"
	randv2 "math/rand/v2"
	"time"
)

func score(q string) float64 {
	start := time.Now()   // want `time\.Now makes core results drift`
	_ = time.Since(start) // want `time\.Since makes core results drift`
	_ = time.Until(start) // want `time\.Until makes core results drift`
	return rand.Float64() // want `rand\.Float64 reads process-global random state`
}

func shuffleCandidates(n int) {
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle reads process-global random state`
	_ = randv2.IntN(n)                 // want `rand\.IntN reads process-global random state`
}

// seeded uses the blessed deterministic pattern: constructors are fine,
// and methods on a local *Rand are fine.
func seeded(seed uint64) int {
	r := randv2.New(randv2.NewPCG(seed, seed)) // ok: seeded constructor
	legacy := rand.New(rand.NewSource(int64(seed)))
	return r.IntN(10) + legacy.Intn(10) // ok: local generator methods
}

//uots:allow nodrift -- designated stats helper: timing here never feeds scores
func stopwatch() time.Time {
	return time.Now()
}

func bareDirective() time.Time {
	//uots:allow nodrift
	return time.Now() // want `time\.Now makes core results drift`
}
