// Package roadnet is the second in-scope fixture: graph expansion must
// be deterministic too.
package roadnet

import "time"

func expand() {
	_ = time.Now() // want `time\.Now makes core results drift`
}
