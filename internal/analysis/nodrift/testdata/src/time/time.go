// Package time is a fixture stub of the real package.
package time

type Time struct{ ns int64 }

type Duration int64

func Now() Time                    { return Time{} }
func Since(t Time) Duration        { return 0 }
func Until(t Time) Duration        { return 0 }
func Unix(sec, ns int64) Time      { return Time{} }
func (t Time) Sub(u Time) Duration { return 0 }
