// Package nodrift keeps wall-clock reads and global randomness out of
// the deterministic search core.
package nodrift

import (
	"go/ast"

	"uots/internal/analysis"
)

const name = "nodrift"

// scopePkgs are the deterministic packages: scoring/pruning in core,
// graph expansion in roadnet, and the obs instrumentation the core emits
// into (trace events must replay bit-identically, so obs may read the
// clock only through its allowlisted stopwatch helper).
var scopePkgs = map[string]bool{
	"core":    true,
	"roadnet": true,
	"obs":     true,
}

// timeFuncs are the wall-clock reads that make results run-dependent.
var timeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// randConstructors build seeded local generators, which are the
// deterministic way to get randomness; everything else in math/rand
// reads process-global state.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// Analyzer flags nondeterminism sources in the search core.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `nodrift: forbid wall-clock reads and global randomness in the
deterministic core (internal/core scoring/pruning, internal/roadnet
expansion, internal/obs instrumentation).

The experiments pipeline and the replay tests both rely on the search
core being a pure function of (graph, query, seed): time.Now/Since/Until
make scores drift between runs, and package-level math/rand[, /v2]
functions read shared global state that any import can perturb. Use the
seeded generators (rand.New(rand.NewPCG(seed, ...))) threaded through
the query instead. Timing belongs only in the designated stats helpers,
which carry //uots:allow nodrift -- <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if !timeFuncs[fn.Name()] || !analysis.IsPkgFunc(fn, "time", fn.Name()) {
			return
		}
		if pass.Allowed(name, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(),
			"time.%s makes core results drift between runs; restrict timing to the allowlisted stats helpers (//uots:allow nodrift -- reason to exempt)",
			fn.Name())
	case "math/rand", "math/rand/v2":
		if randConstructors[fn.Name()] || !analysis.IsPkgFunc(fn, fn.Pkg().Path(), fn.Name()) {
			return
		}
		if pass.Allowed(name, call.Pos()) {
			return
		}
		pass.Reportf(call.Pos(),
			"%s.%s reads process-global random state; use a seeded generator threaded through the query (//uots:allow nodrift -- reason to exempt)",
			fn.Pkg().Name(), fn.Name())
	}
}
