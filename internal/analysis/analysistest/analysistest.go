// Package analysistest runs an analyzer over testdata fixture packages
// and checks its diagnostics against // want comments, mirroring the
// golang.org/x/tools/go/analysis/analysistest contract on the standard
// library alone.
//
// Fixtures live under <testdata>/src/<importpath>/*.go. Imports resolve
// against sibling fixture directories first (so a fixture tree may stub
// net/http or uots/internal/trajdb with just the declarations the test
// needs), then against the real standard library, type-checked from
// GOROOT source.
//
// A diagnostic expectation is a trailing comment on the flagged line:
//
//	_ = context.Background() // want `context\.Background`
//
// Each quoted (or backquoted) string is a regular expression that must
// match one diagnostic message reported on that line. Lines without a
// want comment must produce no diagnostics.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"uots/internal/analysis"
)

// Run loads each fixture package under dir/src and applies a to it,
// failing t on any mismatch between diagnostics and want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	l := newLoader(filepath.Join(dir, "src"))
	for _, path := range pkgPaths {
		pkg, files, info, err := l.check(path, true)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			continue
		}
		pass := analysis.NewPass(a, l.fset, files, pkg, info)
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: run on %s: %v", a.Name, path, err)
			continue
		}
		compare(t, a.Name, l.fset, files, pass.Diagnostics())
	}
}

// want is one expectation parsed from a // want comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	met  bool
}

var wantRE = regexp.MustCompile("(?:\"((?:[^\"\\\\]|\\\\.)*)\")|(?:`([^`]*)`)")

// collectWants parses the // want comments of every fixture file.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, f := range files {
		for _, group := range f.Comments {
			for _, c := range group.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue
				}
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				ms := wantRE.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Errorf("%s: malformed want comment %q", pos, c.Text)
					continue
				}
				for _, m := range ms {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// compare checks reported diagnostics against the want comments.
func compare(t *testing.T, name string, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, fset, files)
diag:
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				continue diag
			}
		}
		t.Errorf("%s: unexpected diagnostic: %s: %s", name, pos, d.Message)
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s: %s:%d: no diagnostic matched %q", name, w.file, w.line, w.re)
		}
	}
}

// loader type-checks fixture packages, resolving imports against the
// fixture tree first and GOROOT source second.
type loader struct {
	root     string
	fset     *token.FileSet
	pkgs     map[string]*types.Package
	loading  map[string]bool
	fallback types.ImporterFrom
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		root:     root,
		fset:     fset,
		pkgs:     make(map[string]*types.Package),
		loading:  make(map[string]bool),
		fallback: importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		pkg, _, _, err := l.check(path, false)
		return pkg, err
	}
	return l.fallback.Import(path)
}

// check parses and type-checks one fixture package. withInfo requests
// the full types.Info needed to run an analyzer over the package.
func (l *loader) check(path string, withInfo bool) (*types.Package, []*ast.File, *types.Info, error) {
	if l.loading[path] {
		return nil, nil, nil, fmt.Errorf("import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, nil, fmt.Errorf("no .go files in %s", dir)
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, nil, nil, err
		}
		files = append(files, f)
	}
	var info *types.Info
	if withInfo {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Implicits:  make(map[ast.Node]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	return pkg, files, info, nil
}

func isDir(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.IsDir()
}
