// Package uotsvet is the registry of the project's contract analyzers.
// cmd/uotsvet wires it to the driver; the registry lives here so tests
// can assert the exact analyzer set without building the binary.
package uotsvet

import (
	"uots/internal/analysis"
	"uots/internal/analysis/cachealias"
	"uots/internal/analysis/ctxflow"
	"uots/internal/analysis/errcode"
	"uots/internal/analysis/lockscope"
	"uots/internal/analysis/looppoll"
	"uots/internal/analysis/nodrift"
	"uots/internal/analysis/spawnjoin"
	"uots/internal/analysis/storefault"
	"uots/internal/analysis/wirecompat"
)

// Analyzers returns the full suite, in stable (alphabetical) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		cachealias.Analyzer,
		ctxflow.Analyzer,
		errcode.Analyzer,
		lockscope.Analyzer,
		looppoll.Analyzer,
		nodrift.Analyzer,
		spawnjoin.Analyzer,
		storefault.Analyzer,
		wirecompat.Analyzer,
	}
}
