// Package uotsvet is the registry of the project's contract analyzers.
// cmd/uotsvet wires it to the driver; the registry lives here so tests
// can assert the exact analyzer set without building the binary.
package uotsvet

import (
	"uots/internal/analysis"
	"uots/internal/analysis/ctxflow"
	"uots/internal/analysis/errcode"
	"uots/internal/analysis/looppoll"
	"uots/internal/analysis/nodrift"
	"uots/internal/analysis/storefault"
)

// Analyzers returns the full suite, in stable (alphabetical) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxflow.Analyzer,
		errcode.Analyzer,
		looppoll.Analyzer,
		nodrift.Analyzer,
		storefault.Analyzer,
	}
}
