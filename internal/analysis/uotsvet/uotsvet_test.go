package uotsvet_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"uots/internal/analysis/uotsvet"
)

// TestRegistry pins the analyzer suite: exactly these analyzers, each
// documented, runnable, covered by a fixture suite, and described in
// CONTRIBUTING.md. Adding or removing an analyzer must be a conscious
// act that updates this table (and CONTRIBUTING.md).
func TestRegistry(t *testing.T) {
	want := []struct {
		name       string
		docKeyword string // a phrase the Doc must contain
	}{
		{"cachealias", "deep-copy"},
		{"ctxflow", "context"},
		{"errcode", "writeError"},
		{"lockscope", "blocking"},
		{"looppoll", "cancellation"},
		{"nodrift", "deterministic"},
		{"spawnjoin", "join path"},
		{"storefault", "StoreError"},
		{"wirecompat", "gob"},
	}

	contributing, err := os.ReadFile(filepath.Join("..", "..", "..", "CONTRIBUTING.md"))
	if err != nil {
		t.Fatalf("reading CONTRIBUTING.md: %v", err)
	}

	got := uotsvet.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	seen := make(map[string]bool)
	for i, w := range want {
		a := got[i]
		if a == nil {
			t.Fatalf("Analyzers()[%d] is nil", i)
		}
		if a.Name != w.name {
			t.Errorf("Analyzers()[%d].Name = %q, want %q (suite must stay in alphabetical order)", i, a.Name, w.name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer %q", a.Name)
		}
		seen[a.Name] = true
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %q has an empty Doc", a.Name)
		}
		if !strings.Contains(a.Doc, w.docKeyword) {
			t.Errorf("analyzer %q Doc does not mention %q", a.Name, w.docKeyword)
		}
		if !strings.HasPrefix(a.Doc, a.Name+":") {
			t.Errorf("analyzer %q Doc must start with %q for the help listing", a.Name, a.Name+":")
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has a nil Run", a.Name)
		}

		// Every analyzer ships a fixture suite: at least one package
		// under <analyzer>/testdata/src exercising its diagnostics.
		fixtures := filepath.Join("..", a.Name, "testdata", "src")
		entries, err := os.ReadDir(fixtures)
		if err != nil {
			t.Errorf("analyzer %q has no fixture tree at %s: %v", a.Name, fixtures, err)
		} else {
			dirs := 0
			for _, e := range entries {
				if e.IsDir() {
					dirs++
				}
			}
			if dirs == 0 {
				t.Errorf("analyzer %q has an empty fixture tree at %s", a.Name, fixtures)
			}
		}

		// Every analyzer is documented for contributors.
		if !strings.Contains(string(contributing), "`"+a.Name+"`") {
			t.Errorf("analyzer %q is not described in CONTRIBUTING.md", a.Name)
		}
	}
}
