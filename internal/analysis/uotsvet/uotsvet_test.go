package uotsvet_test

import (
	"strings"
	"testing"

	"uots/internal/analysis/uotsvet"
)

// TestRegistry pins the analyzer suite: exactly these analyzers, each
// documented and runnable. Adding or removing an analyzer must be a
// conscious act that updates this table (and CONTRIBUTING.md).
func TestRegistry(t *testing.T) {
	want := []struct {
		name       string
		docKeyword string // a phrase the Doc must contain
	}{
		{"ctxflow", "context"},
		{"errcode", "writeError"},
		{"looppoll", "cancellation"},
		{"nodrift", "deterministic"},
		{"storefault", "StoreError"},
	}

	got := uotsvet.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("Analyzers() returned %d analyzers, want %d", len(got), len(want))
	}
	seen := make(map[string]bool)
	for i, w := range want {
		a := got[i]
		if a == nil {
			t.Fatalf("Analyzers()[%d] is nil", i)
		}
		if a.Name != w.name {
			t.Errorf("Analyzers()[%d].Name = %q, want %q (suite must stay in alphabetical order)", i, a.Name, w.name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer %q", a.Name)
		}
		seen[a.Name] = true
		if strings.TrimSpace(a.Doc) == "" {
			t.Errorf("analyzer %q has an empty Doc", a.Name)
		}
		if !strings.Contains(a.Doc, w.docKeyword) {
			t.Errorf("analyzer %q Doc does not mention %q", a.Name, w.docKeyword)
		}
		if !strings.HasPrefix(a.Doc, a.Name+":") {
			t.Errorf("analyzer %q Doc must start with %q for the help listing", a.Name, a.Name+":")
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has a nil Run", a.Name)
		}
	}
}
