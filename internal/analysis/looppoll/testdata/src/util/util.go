// Package util is out of scope: only core, roadnet and shard expansion
// loops are patrolled.
package util

type q struct{ n int }

func (s *q) Pop() (int, bool) { s.n--; return s.n, s.n >= 0 }

func drain(s *q) {
	for { // ok: out of scope
		if _, ok := s.Pop(); !ok {
			return
		}
	}
}
