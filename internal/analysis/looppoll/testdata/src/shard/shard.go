// Package shard is a fixture of the scatter-gather worker loops.
package shard

type taskQueue struct{ n int }

func (q *taskQueue) Pop() (func(), bool) { q.n--; return func() {}, q.n >= 0 }

type results struct{ n int }

func (r *results) Next() (int, bool) { r.n--; return r.n, r.n >= 0 }

// workerNoPoll drains the task queue with no way to stop it: a closed
// executor would leave this goroutine spinning on a dead queue.
func workerNoPoll(q *taskQueue) {
	for { // want `unbounded drain loop never polls for cancellation`
		task, ok := q.Pop()
		if !ok {
			return
		}
		task()
	}
}

// gatherNoPoll shows merge-side drains are candidates too.
func gatherNoPoll(r *results) int {
	sum := 0
	for { // want `unbounded drain loop never polls for cancellation`
		v, ok := r.Next()
		if !ok {
			return sum
		}
		sum += v
	}
}

// workerWithSelect is the real worker-pool shape: every iteration
// selects between the task channel and the quit channel.
func workerWithSelect(tasks <-chan func(), quit <-chan struct{}, q *taskQueue) {
	for {
		select {
		case task := <-tasks:
			task()
		case <-quit:
			return
		}
	}
}

// gatherWithDone polls the scatter context's done channel per result.
func gatherWithDone(r *results, done <-chan struct{}) int {
	sum := 0
	for {
		select {
		case <-done:
			return sum
		default:
		}
		v, ok := r.Next()
		if !ok {
			return sum
		}
		sum += v
	}
}

// drainOnClose empties what is left after the pool shut down; nothing
// can cancel it because it IS the cancellation path.
func drainOnClose(q *taskQueue) {
	//uots:allow looppoll -- shutdown drain: runs after quit closes, bounded by the tasks already queued
	for {
		if _, ok := q.Pop(); !ok {
			return
		}
	}
}

// boundedGather joins a fixed number of shard results; terminates by
// construction, not a candidate.
func boundedGather(r *results, shards int) int {
	sum := 0
	for i := 0; i < shards; i++ {
		v, _ := r.Next()
		sum += v
	}
	return sum
}
