// Package ingest is a fixture of the cancellation contract on the
// write path's drain loops.
package ingest

type walIterator struct{ n int }

func (it *walIterator) Next() (int, bool) { it.n--; return it.n, it.n >= 0 }

// replayNoPoll drains the recovered log with no way to stop: a huge WAL
// pins the boot goroutine even after shutdown is requested.
func replayNoPoll(it *walIterator) int {
	applied := 0
	for { // want `unbounded drain loop never polls for cancellation`
		rec, ok := it.Next()
		if !ok {
			return applied
		}
		applied += rec
	}
}

// gatherScoped is the committer's greedy-drain shape: every iteration
// selects against the quit channel before advancing.
func gatherScoped(it *walIterator, quit <-chan struct{}) int {
	applied := 0
	for {
		select {
		case <-quit:
			return applied
		default:
		}
		rec, ok := it.Next()
		if !ok {
			return applied
		}
		applied += rec
	}
}

// replayBounded is a counting loop and terminates by construction.
func replayBounded(it *walIterator, n int) int {
	applied := 0
	for i := 0; i < n; i++ {
		rec, ok := it.Next()
		if !ok {
			break
		}
		applied += rec
	}
	return applied
}
