// Package roadnet is a fixture of the graph-search kernels.
package roadnet

type heap struct{ n int }

func (h *heap) Pop() (int, float64, bool) { h.n--; return h.n, 0, h.n >= 0 }
func (h *heap) Len() int                  { return h.n }

type canceller struct{}

func (c *canceller) check() error { return nil }

// drainNoPoll is the bug this analyzer exists for.
func drainNoPoll(h *heap) {
	for { // want `unbounded drain loop never polls for cancellation`
		if _, _, ok := h.Pop(); !ok {
			return
		}
	}
}

// condDrainNoPoll shows condition-only loops are candidates too.
func condDrainNoPoll(h *heap) {
	for h.Len() > 0 { // want `unbounded drain loop never polls for cancellation`
		h.Pop()
	}
}

// drainWithCheck polls the canceller each iteration.
func drainWithCheck(h *heap, c *canceller) error {
	for {
		if err := c.check(); err != nil {
			return err
		}
		if _, _, ok := h.Pop(); !ok {
			return nil
		}
	}
}

// drainWithSelect polls a done channel via select.
func drainWithSelect(h *heap, done <-chan struct{}) {
	for {
		select {
		case <-done:
			return
		default:
		}
		if _, _, ok := h.Pop(); !ok {
			return
		}
	}
}

// drainWithRecv polls by non-blocking channel receive inside the body
// of a nested bounded loop — still inside the unbounded loop's body.
func drainWithRecv(h *heap, done chan struct{}) {
	for {
		if len(done) > 0 {
			<-done
			return
		}
		if _, _, ok := h.Pop(); !ok {
			return
		}
	}
}

// runUntil's poll lives in the caller-supplied visit callback.
func runUntil(h *heap, visit func(v int) bool) {
	//uots:allow looppoll -- visit callback is the cancellation point; every caller polls there
	for {
		v, _, ok := h.Pop()
		if !ok || !visit(v) {
			return
		}
	}
}

// bareDirective has no reason, so the directive is inert.
func bareDirective(h *heap) {
	//uots:allow looppoll
	for { // want `unbounded drain loop never polls for cancellation`
		if _, _, ok := h.Pop(); !ok {
			return
		}
	}
}

// boundedCount terminates by construction; not a candidate.
func boundedCount(h *heap) {
	for i := 0; i < 64; i++ {
		h.Pop()
	}
}

// noDrain has no frontier method; not a candidate.
func noDrain() {
	n := 0
	for n < 10 {
		n++
	}
}

// litOnly only drains inside a nested function literal, which has its
// own frame and is judged where it is invoked.
func litOnly(h *heap) func() {
	for {
		f := func() { h.Pop() }
		return f
	}
}
