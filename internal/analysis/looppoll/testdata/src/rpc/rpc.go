// Package rpc is a fixture of the transport's retry and response-drain
// loops: network attempts must keep honouring caller cancellation.
package rpc

type attemptQueue struct{ n int }

func (q *attemptQueue) Pop() (int, bool) { q.n--; return q.n, q.n >= 0 }

type responseStream struct{ n int }

func (s *responseStream) Next() ([]byte, bool) { s.n--; return nil, s.n >= 0 }

// retryNoPoll walks the replica attempt queue with no cancellation
// check between network calls: a hung replica pins the caller past its
// deadline.
func retryNoPoll(q *attemptQueue) int {
	for { // want `unbounded drain loop never polls for cancellation`
		attempt, ok := q.Pop()
		if !ok {
			return -1
		}
		if attempt == 0 {
			return attempt
		}
	}
}

// drainNoPoll reads wire frames until the stream dries up, deaf to the
// request context.
func drainNoPoll(s *responseStream) int {
	n := 0
	for { // want `unbounded drain loop never polls for cancellation`
		_, ok := s.Next()
		if !ok {
			return n
		}
		n++
	}
}

// retryWithErr polls ctx.Err between attempts — the shape callGroup
// uses between backoff waits.
type ctxLike struct{}

func (ctxLike) Err() error { return nil }

func retryWithErr(ctx ctxLike, q *attemptQueue) int {
	for {
		if ctx.Err() != nil {
			return -1
		}
		attempt, ok := q.Pop()
		if !ok {
			return -1
		}
		if attempt == 0 {
			return attempt
		}
	}
}

// hedgedGather is the first-response-wins select: the hedge result
// channel races the done channel every iteration.
func hedgedGather(results <-chan int, done <-chan struct{}, s *responseStream) int {
	for {
		select {
		case v := <-results:
			s.Next()
			return v
		case <-done:
			return -1
		}
	}
}

// drainLosers empties what the cancelled hedge attempt already queued;
// it IS the cancellation path, so nothing can cancel it.
func drainLosers(s *responseStream) {
	//uots:allow looppoll -- hedge-loser drain: runs after the winner returned, bounded by frames already buffered
	for {
		if _, ok := s.Next(); !ok {
			return
		}
	}
}

// boundedAttempts is the capped retry ladder; terminates by
// construction, not a candidate.
func boundedAttempts(q *attemptQueue, max int) int {
	last := -1
	for i := 0; i < max; i++ {
		v, ok := q.Pop()
		if !ok {
			break
		}
		last = v
	}
	return last
}
