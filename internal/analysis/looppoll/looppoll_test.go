package looppoll_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/looppoll"
)

func TestLooppoll(t *testing.T) {
	analysistest.Run(t, "testdata", looppoll.Analyzer, "roadnet", "shard", "rpc", "ingest", "util")
}
