// Package looppoll makes sure unbounded expansion loops stay cancellable.
package looppoll

import (
	"go/ast"
	"go/token"

	"uots/internal/analysis"
)

const name = "looppoll"

// scopePkgs hold the heap/queue expansion loops: the engine core, the
// road-network search kernels, the sharded scatter-gather layer (whose
// worker drain loops must stay cancellable so one stuck shard cannot
// pin a pool slot forever), and the RPC transport (whose retry/hedge/
// probe loops must keep honouring caller cancellation between network
// attempts), and the ingest pipeline (whose queue-drain loops must stay
// scoped to the committer's quit channel).
var scopePkgs = map[string]bool{
	"core":    true,
	"roadnet": true,
	"shard":   true,
	"rpc":     true,
	"ingest":  true,
}

// drainNames are the methods that advance a frontier; a loop built
// around one of them runs until the structure empties, which on a large
// graph is effectively unbounded.
var drainNames = map[string]bool{
	"Pop":  true,
	"Next": true,
}

// pollNames are the call names recognised as cancellation polls
// (canceller.check, ctx.Err, ctx.Done, explicit poll helpers).
var pollNames = map[string]bool{
	"check": true, "Check": true,
	"Err": true, "Done": true,
	"poll": true, "Poll": true,
	"canceled": true, "Canceled": true,
}

// Analyzer flags unbounded drain loops with no cancellation poll.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `looppoll: unbounded heap/queue drain loops in internal/core,
internal/roadnet, internal/shard, internal/rpc and internal/ingest must
poll for cancellation.

A "for { ... heap.Pop() ... }" (or "for cond { ... }") expansion loop
runs for as long as the frontier lasts — on a metropolitan road network
that is millions of iterations, and if it never polls, a cancelled or
deadline-expired request keeps burning a CPU until the drain finishes.
Every such loop must contain a poll: a canceller check (check/Err/Done/
poll variants), a select statement, or a channel receive. Loops whose
poll lives in a caller-supplied visit callback must document that with
//uots:allow looppoll -- <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok {
				return true
			}
			checkLoop(pass, loop)
			return true
		})
	}
	return nil
}

func checkLoop(pass *analysis.Pass, loop *ast.ForStmt) {
	// Bounded counting loops (for i := 0; i < n; i++) terminate by
	// construction; only condition-less or condition-only loops drain
	// until empty.
	if loop.Init != nil || loop.Post != nil {
		return
	}
	if !callsDrain(loop.Body) || hasPoll(loop.Body) {
		return
	}
	if pass.Allowed(name, loop.Pos()) {
		return
	}
	pass.Reportf(loop.Pos(),
		"unbounded drain loop never polls for cancellation; add a canceller check inside the loop or document the external poll with //uots:allow looppoll -- reason")
}

// callsDrain reports whether the loop body (outside nested function
// literals) calls a frontier-advancing method such as Pop or Next.
func callsDrain(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && drainNames[sel.Sel.Name] {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasPoll reports whether the loop body contains any recognised
// cancellation poll, again skipping nested function literals.
func hasPoll(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if pollNames[fun.Name] {
					found = true
				}
			case *ast.SelectorExpr:
				if pollNames[fun.Sel.Name] {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
