// Package errcode keeps HTTP error responses on the typed coded-error
// path so clients always receive the structured JSON error envelope.
package errcode

import (
	"go/ast"
	"go/constant"

	"uots/internal/analysis"
)

const name = "errcode"

// scopePkgs are the packages that answer HTTP: the JSON serving layer
// and the gob RPC shard server. Both have a blessed error helper
// (writeError, writeWireError) producing a machine-readable envelope.
var scopePkgs = map[string]bool{
	"server": true,
	"rpc":    true,
}

// Analyzer flags ad-hoc HTTP error writes in the serving packages.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `errcode: forbid ad-hoc HTTP error responses in internal/server
and internal/rpc.

Handlers must emit 4xx/5xx responses only through the typed coded-error
helpers (writeError in the JSON layer, writeWireError on the gob wire),
which produce the machine-readable envelope clients, routers and the
fleet's alerting parse. Direct calls to http.Error / http.NotFound, or
WriteHeader with a constant status >= 400, bypass the envelope and
break that contract — on the RPC wire a plain-text body additionally
fails to gob-decode, turning a coded engine error into an opaque
transport error that charges the replica's health budget. Exempt
deliberate sites with //uots:allow errcode -- <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if analysis.IsPkgFunc(fn, "net/http", "Error") || analysis.IsPkgFunc(fn, "net/http", "NotFound") {
		if !pass.Allowed(name, call.Pos()) {
			pass.Reportf(call.Pos(),
				"http.%s writes a plain-text error, bypassing the coded JSON envelope; use the writeError helper (//uots:allow errcode -- reason to exempt)",
				fn.Name())
		}
		return
	}
	// w.WriteHeader(<constant >= 400>) outside the helper.
	if fn.Name() != "WriteHeader" || fn.Type() == nil {
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "WriteHeader" || len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return
	}
	code, ok := constant.Int64Val(tv.Value)
	if !ok || code < 400 {
		return
	}
	if pass.Allowed(name, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"WriteHeader(%d) emits an error status without the coded JSON envelope; use the writeError helper (//uots:allow errcode -- reason to exempt)",
		code)
}
