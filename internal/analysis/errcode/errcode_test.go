package errcode_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/errcode"
)

func TestErrcode(t *testing.T) {
	analysistest.Run(t, "testdata", errcode.Analyzer, "server", "rpc", "client")
}
