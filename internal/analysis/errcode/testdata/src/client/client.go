// Package client is out of scope: errcode only patrols the server package.
package client

import "net/http"

func probe(w http.ResponseWriter) {
	http.Error(w, "nope", 500) // ok: out of scope
}
