// Package rpc is a fixture of the gob wire layer: every error response
// must be the coded envelope writeWireError emits, because plain-text
// bodies fail to gob-decode and masquerade as transport faults.
package rpc

import "net/http"

// writeWireError is the blessed helper — non-constant status, so the
// WriteHeader inside it is not a candidate.
func writeWireError(w http.ResponseWriter, status int, code, msg string) {
	w.WriteHeader(status) // ok: non-constant status
	w.Write([]byte(code))
}

func handleSearch(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad variant", http.StatusBadRequest) // want `http\.Error writes a plain-text error`
}

func handleBatch(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusInternalServerError) // want `WriteHeader\(500\) emits an error status`
}

func handleEnveloped(w http.ResponseWriter, r *http.Request) {
	writeWireError(w, http.StatusBadRequest, "bad_query", "unknown variant")
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK) // ok: success status
}

func handleNotFound(w http.ResponseWriter, r *http.Request) {
	//uots:allow errcode -- unknown paths answer the stock 404: they are outside the /rpc/v1 wire contract
	http.NotFound(w, r)
}
