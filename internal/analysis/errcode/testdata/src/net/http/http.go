// Package http is a fixture stub of net/http, just enough surface for
// the errcode analyzer.
package http

const (
	StatusOK                  = 200
	StatusBadRequest          = 400
	StatusNotFound            = 404
	StatusInternalServerError = 500
)

type Request struct{}

type ResponseWriter interface {
	WriteHeader(statusCode int)
	Write(b []byte) (int, error)
}

func Error(w ResponseWriter, error string, code int) {}

func NotFound(w ResponseWriter, r *Request) {}
