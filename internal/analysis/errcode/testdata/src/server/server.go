// Package server is a fixture of the HTTP serving layer.
package server

import "net/http"

type apiError struct {
	Code    string
	Status  int
	Message string
}

// writeError is the blessed helper: the only place allowed to emit
// error statuses, and it needs a directive because it calls WriteHeader
// with whatever coded status the handler chose.
func writeError(w http.ResponseWriter, e apiError) {
	w.WriteHeader(e.Status) // ok: non-constant status
	w.Write([]byte(e.Code))
}

func handleSearch(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad query", http.StatusBadRequest) // want `http\.Error writes a plain-text error`
}

func handleLookup(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r) // want `http\.NotFound writes a plain-text error`
}

func handleRaw(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusInternalServerError) // want `WriteHeader\(500\) emits an error status`
}

func handleLiteral(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(404) // want `WriteHeader\(404\) emits an error status`
}

func handleOK(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK) // ok: success status
	writeError(w, apiError{Code: "not_found", Status: http.StatusNotFound})
}

func handleHealthz(w http.ResponseWriter, r *http.Request) {
	//uots:allow errcode -- plain-text 503 is the load-balancer health protocol, not an API response
	http.Error(w, "draining", 503)
}

func handleBare(w http.ResponseWriter, r *http.Request) {
	//uots:allow errcode
	http.Error(w, "oops", 500) // want `http\.Error writes a plain-text error`
}
