package lockscope_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/lockscope"
)

func TestLockScope(t *testing.T) {
	analysistest.Run(t, "testdata", lockscope.Analyzer, "shard", "ingest", "util")
}
