// Package sync stubs the standard library sync package for analyzer
// fixtures: spawnjoin and lockscope match by package path and type
// name, so only the declarations under test are needed.
package sync

// WaitGroup mirrors sync.WaitGroup.
type WaitGroup struct{ n int }

func (w *WaitGroup) Add(delta int) { w.n += delta }
func (w *WaitGroup) Done()         { w.n-- }
func (w *WaitGroup) Wait()         {}

// Mutex mirrors sync.Mutex.
type Mutex struct{ locked bool }

func (m *Mutex) Lock()   { m.locked = true }
func (m *Mutex) Unlock() { m.locked = false }

// RWMutex mirrors sync.RWMutex.
type RWMutex struct{ locked bool }

func (m *RWMutex) Lock()    { m.locked = true }
func (m *RWMutex) Unlock()  { m.locked = false }
func (m *RWMutex) RLock()   {}
func (m *RWMutex) RUnlock() {}

// Once mirrors sync.Once.
type Once struct{ done bool }

func (o *Once) Do(f func()) {
	if !o.done {
		o.done = true
		f()
	}
}
