// Package time stubs the standard library time package for the
// lockscope fixtures: only Sleep and Duration are matched.
package time

// Duration mirrors time.Duration.
type Duration int64

// Sleep mirrors time.Sleep.
func Sleep(d Duration) { _ = d }
