// Package ingest is a fixture of the lock contract on the write path:
// the WAL's append mutex and the batcher's admission lock.
package ingest

import "sync"

type wal struct {
	mu  sync.Mutex
	off int64
}

// appendGood is the WAL shape: one deferred unlock covers every error
// return in the encode/write/sync sequence.
func (w *wal) appendGood(n int64) int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.off += n
	return w.off
}

// appendLeaky forgets the error path.
func (w *wal) appendLeaky(n int64, fail bool) int64 {
	w.mu.Lock()
	if fail {
		return -1 // want `mutex w\.mu \(acquired with Lock\) is still held on this return path`
	}
	w.off += n
	w.mu.Unlock()
	return w.off
}

type batcher struct {
	mu     sync.RWMutex
	closed bool
	queue  chan int
}

// tryEnqueueGood is the real admission shape: the closed check and the
// non-blocking send share one read lock, and the select's default
// keeps the send from ever parking while it is held.
func (b *batcher) tryEnqueueGood(req int) bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return false
	}
	select {
	case b.queue <- req:
		return true
	default:
		return false
	}
}

// waitUnderLock parks on the acknowledgement channel while holding the
// admission lock: close() needs the write lock, so a wedged committer
// deadlocks shutdown.
func (b *batcher) waitUnderLock(ack chan int) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return <-ack // want `mutex b\.mu is held across a blocking operation \(channel receive\)`
}

// mismatchedRelease pairs RLock with Unlock.
func (b *batcher) mismatchedRelease() bool {
	b.mu.RLock()
	v := b.closed
	b.mu.Unlock() // want `mutex b\.mu acquired with RLock but released with Unlock`
	return v
}
