// Package util is outside the lockscope scope: identical leaks, no
// diagnostics.
package util

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) leak() {
	b.mu.Lock()
	b.n++
}
