// Package shard is a fixture of the lock scope contract.
package shard

import (
	"sync"
	"time"
)

type store struct {
	mu    sync.Mutex
	rw    sync.RWMutex
	items map[string]int
}

// deferGood is the canonical shape: defer pairs the release with every
// return path.
func (s *store) deferGood(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.items[k]
}

// returnWhileHeld leaks the lock on the early return.
func (s *store) returnWhileHeld(k string) (int, bool) {
	s.mu.Lock()
	v, ok := s.items[k]
	if !ok {
		return 0, false // want `mutex s\.mu \(acquired with Lock\) is still held on this return path`
	}
	s.mu.Unlock()
	return v, true
}

// handoffNoRelease acquires and never releases: held at function exit.
func (s *store) handoffNoRelease() {
	s.mu.Lock() // want `mutex s\.mu may remain held at function exit`
	s.items["pinned"]++
}

// branchRelease is the diskstore load() shape: unlock-then-return on
// the hit path, fall-through releases before the slow path.
func (s *store) branchRelease(k string) int {
	s.mu.Lock()
	if v, ok := s.items[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return -1
}

// inlineLoop is the Status shape: acquire and release inside each
// iteration.
func (s *store) inlineLoop(keys []string) int {
	total := 0
	for range keys {
		s.mu.Lock()
		total += len(s.items)
		s.mu.Unlock()
	}
	return total
}

// recvWhileHeld blocks on a channel receive with the lock held.
func (s *store) recvWhileHeld(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.items["v"] = <-ch // want `mutex s\.mu is held across a blocking operation \(channel receive\)`
}

// sendWhileHeld blocks on a channel send with the lock held.
func (s *store) sendWhileHeld(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- len(s.items) // want `mutex s\.mu is held across a blocking operation \(channel send\)`
}

// selectWhileHeld parks in a select with no default.
func (s *store) selectWhileHeld(a, b chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `mutex s\.mu is held across a blocking operation \(select without a default case\)`
	case v := <-a:
		s.items["a"] = v
	case v := <-b:
		s.items["b"] = v
	}
}

// pollWhileHeld uses a default case: non-blocking, no diagnostic for
// the select itself.
func (s *store) pollWhileHeld(a chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-a:
		s.items["a"] = v
	default:
	}
}

// sleepWhileHeld parks the goroutine with the lock held.
func (s *store) sleepWhileHeld() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(10) // want `mutex s\.mu is held across a blocking operation \(time\.Sleep\)`
}

// waitWhileHeld joins a WaitGroup with the lock held.
func (s *store) waitWhileHeld(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `mutex s\.mu is held across a blocking operation \(WaitGroup\.Wait\)`
}

// readGood pairs RLock with a deferred RUnlock.
func (s *store) readGood(k string) int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.items[k]
}

// doubleChecked is the engine executor shape: read-check under RLock,
// then upgrade with a deferred write unlock.
func (s *store) doubleChecked(k string) int {
	s.rw.RLock()
	v, ok := s.items[k]
	s.rw.RUnlock()
	if ok {
		return v
	}
	s.rw.Lock()
	defer s.rw.Unlock()
	s.items[k] = 1
	return 1
}

// mismatch releases a read lock with the write-side Unlock.
func (s *store) mismatch(k string) int {
	s.rw.RLock()
	v := s.items[k]
	s.rw.Unlock() // want `mutex s\.rw acquired with RLock but released with Unlock`
	return v
}

// deferredClosure releases through a deferred closure body.
func (s *store) deferredClosure(k string) int {
	s.mu.Lock()
	defer func() {
		s.items["seen"]++
		s.mu.Unlock()
	}()
	return s.items[k]
}

// beginQuery is the RemoteExecutor handoff shape: the read lock is
// deliberately transferred to the caller as a release func.
//
//uots:allow lockscope -- lock handoff: the query-lifetime read lock is returned to the caller, which releases it via the returned func
func (s *store) beginQuery() (func(), bool) {
	s.rw.RLock()
	if s.items == nil {
		s.rw.RUnlock()
		return nil, false
	}
	return s.rw.RUnlock, true
}

// bareDirective shows that a reasonless directive does not suppress.
func (s *store) bareDirective() {
	//uots:allow lockscope
	s.mu.Lock() // want `mutex s\.mu may remain held at function exit`
	s.items["pinned"]++
}
