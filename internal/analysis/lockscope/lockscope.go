// Package lockscope checks mutex discipline: a held lock must be
// released on every return path, and must not be held across blocking
// operations.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"

	"uots/internal/analysis"
)

const name = "lockscope"

// scopePkgs cover every package that guards shared state with a mutex
// on the query path: the batch planner's shared frontier, the shard
// result cache and engine, the RPC replica groups, the server's
// admission semaphore, the disk store's buffer, and the ingest WAL and
// commit queue (whose mutexes sit directly on the write path's group
// committer).
var scopePkgs = map[string]bool{
	"core":      true,
	"shard":     true,
	"rpc":       true,
	"server":    true,
	"diskstore": true,
	"ingest":    true,
}

// Analyzer flags locks that escape their scope or are held across
// blocking operations.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `lockscope: a held sync.Mutex or sync.RWMutex must be released on
every return path, and must not be held across blocking operations.

A lock that leaks past a return deadlocks the next caller; a lock held
across a channel operation, select, WaitGroup.Wait or time.Sleep couples
unrelated goroutines into a convoy (or a deadlock, if the blocked-on
party needs the same lock). Within each function body the analyzer
tracks Lock/RLock acquisitions and requires that every return statement
either executes under a matching deferred unlock or follows an unlock on
its own path. It also reports Lock released by RUnlock (and vice versa),
and channel sends, receives, selects without a default, WaitGroup.Wait
and time.Sleep reached while any lock is held.

Deliberate lock handoffs - a function that acquires a lock and returns
the release to its caller, like the query-lifetime read lock in
RemoteExecutor.beginQuery - must document the transfer with
//uots:allow lockscope -- <reason>.`,
	Run: run,
}

// heldLock is one acquisition being tracked through a function body.
type heldLock struct {
	recv     string // rendered receiver expression, e.g. "s.mu"
	write    bool   // acquired via Lock (RLock otherwise)
	deferred bool   // a matching deferred unlock is registered
	pos      token.Pos
}

func (h heldLock) acquireMethod() string {
	if h.write {
		return "Lock"
	}
	return "RLock"
}

func (h heldLock) releaseMethod() string {
	if h.write {
		return "Unlock"
	}
	return "RUnlock"
}

type checker struct {
	pass *analysis.Pass
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			// Every function body - declaration or literal - is an
			// independent lock scope. Nested literals are found by this
			// same traversal, so block() never descends into them.
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					c.checkFunc(n.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(n.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc runs the lock state machine over one function body and
// reports locks still held when control falls off the end.
func (c *checker) checkFunc(body *ast.BlockStmt) {
	held := c.block(body.List, nil)
	for _, h := range held {
		if h.deferred {
			continue
		}
		if c.pass.Allowed(name, h.pos) {
			continue
		}
		c.pass.Reportf(h.pos,
			"mutex %s may remain held at function exit; add defer %s.%s() after acquiring, or document a lock handoff with //uots:allow lockscope -- reason",
			h.recv, h.recv, h.releaseMethod())
	}
}

// block threads the held-lock state through a statement sequence.
func (c *checker) block(stmts []ast.Stmt, held []heldLock) []heldLock {
	for _, st := range stmts {
		held = c.stmt(st, held)
	}
	return held
}

// stmt processes one statement. Branch bodies run on a copy of the
// state: a release inside a conditional branch is branch-local (the
// unlock-then-return early exit), while the fall-through path keeps
// the lock until its own release.
func (c *checker) stmt(st ast.Stmt, held []heldLock) []heldLock {
	switch st := st.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if recv, method, ok := c.mutexOp(call); ok {
				switch method {
				case "Lock":
					return append(copyHeld(held), heldLock{recv: recv, write: true, pos: call.Pos()})
				case "RLock":
					return append(copyHeld(held), heldLock{recv: recv, write: false, pos: call.Pos()})
				case "Unlock":
					return c.release(held, recv, true, call.Pos(), false)
				case "RUnlock":
					return c.release(held, recv, false, call.Pos(), false)
				}
			}
		}
		c.checkBlocking(st, held)
		return held

	case *ast.DeferStmt:
		if recv, method, ok := c.mutexOp(st.Call); ok {
			switch method {
			case "Unlock":
				return c.release(held, recv, true, st.Call.Pos(), true)
			case "RUnlock":
				return c.release(held, recv, false, st.Call.Pos(), true)
			}
		}
		// defer func() { ...; mu.Unlock() }() registers the unlocks in
		// the literal's body as deferred releases.
		if lit, ok := ast.Unparen(st.Call.Fun).(*ast.FuncLit); ok {
			for _, inner := range unlockCalls(c, lit.Body) {
				held = c.release(held, inner.recv, inner.write, inner.pos, true)
			}
		}
		return held

	case *ast.ReturnStmt:
		c.checkBlocking(st, held)
		for _, h := range held {
			if h.deferred {
				continue
			}
			if c.pass.Allowed(name, st.Pos()) {
				continue
			}
			c.pass.Reportf(st.Pos(),
				"mutex %s (acquired with %s) is still held on this return path; release with defer %s.%s() immediately after locking, unlock on every branch, or document a lock handoff with //uots:allow lockscope -- reason",
				h.recv, h.acquireMethod(), h.recv, h.releaseMethod())
		}
		// The return consumed this path: drop the non-deferred locks so
		// the same acquisition is not re-reported at function exit.
		var rest []heldLock
		for _, h := range held {
			if h.deferred {
				rest = append(rest, h)
			}
		}
		return rest

	case *ast.IfStmt:
		if st.Init != nil {
			held = c.stmt(st.Init, held)
		}
		c.checkBlocking(st.Cond, held)
		c.block(st.Body.List, copyHeld(held))
		if st.Else != nil {
			c.stmt(st.Else, copyHeld(held))
		}
		return held

	case *ast.ForStmt:
		if st.Init != nil {
			held = c.stmt(st.Init, held)
		}
		if st.Cond != nil {
			c.checkBlocking(st.Cond, held)
		}
		c.block(st.Body.List, copyHeld(held))
		return held

	case *ast.RangeStmt:
		if len(held) > 0 && c.isChanExpr(st.X) {
			c.reportBlocking(st.Pos(), held, "range over a channel")
		}
		c.block(st.Body.List, copyHeld(held))
		return held

	case *ast.SwitchStmt:
		if st.Init != nil {
			held = c.stmt(st.Init, held)
		}
		if st.Tag != nil {
			c.checkBlocking(st.Tag, held)
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.block(cc.Body, copyHeld(held))
			}
		}
		return held

	case *ast.TypeSwitchStmt:
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				c.block(cc.Body, copyHeld(held))
			}
		}
		return held

	case *ast.SelectStmt:
		if len(held) > 0 && !selectHasDefault(st) {
			c.reportBlocking(st.Pos(), held, "select without a default case")
		}
		for _, clause := range st.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				c.block(cc.Body, copyHeld(held))
			}
		}
		return held

	case *ast.SendStmt:
		if len(held) > 0 {
			c.reportBlocking(st.Pos(), held, "channel send")
		}
		return held

	case *ast.BlockStmt:
		c.block(st.List, copyHeld(held))
		return held

	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, held)

	default:
		c.checkBlocking(st, held)
		return held
	}
}

// release resolves an unlock (immediate or deferred) against the held
// stack: last matching acquisition wins, a kind mismatch (Lock paired
// with RUnlock or RLock with Unlock) is reported, and an unlock with no
// local acquisition is ignored - that is the release half of a handoff.
func (c *checker) release(held []heldLock, recv string, write bool, pos token.Pos, isDefer bool) []heldLock {
	held = copyHeld(held)
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].recv == recv && held[i].write == write && !held[i].deferred {
			if isDefer {
				held[i].deferred = true
				return held
			}
			return append(held[:i], held[i+1:]...)
		}
	}
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].recv == recv && !held[i].deferred {
			if !c.pass.Allowed(name, pos) {
				rel := "Unlock"
				if !write {
					rel = "RUnlock"
				}
				c.pass.Reportf(pos,
					"mutex %s acquired with %s but released with %s; pair Lock with Unlock and RLock with RUnlock",
					recv, held[i].acquireMethod(), rel)
			}
			if isDefer {
				held[i].deferred = true
				return held
			}
			return append(held[:i], held[i+1:]...)
		}
	}
	return held
}

// checkBlocking scans the expressions of one statement (not nested
// function literals) for operations that block while a lock is held.
func (c *checker) checkBlocking(node ast.Node, held []heldLock) {
	if len(held) == 0 || node == nil {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its body is a separate lock scope
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.reportBlocking(n.Pos(), held, "channel receive")
			}
		case *ast.CallExpr:
			if desc, ok := c.blockingCall(n); ok {
				c.reportBlocking(n.Pos(), held, desc)
			}
		}
		return true
	})
}

// reportBlocking emits one diagnostic per held lock for a blocking
// operation, honouring allow directives at the operation site.
func (c *checker) reportBlocking(pos token.Pos, held []heldLock, what string) {
	if c.pass.Allowed(name, pos) {
		return
	}
	for _, h := range held {
		c.pass.Reportf(pos,
			"mutex %s is held across a blocking operation (%s); release the lock first, or document with //uots:allow lockscope -- reason",
			h.recv, what)
	}
}

// blockingCall recognises calls that park the goroutine:
// sync.WaitGroup.Wait and time.Sleep.
func (c *checker) blockingCall(call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	switch sel.Sel.Name {
	case "Wait":
		if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && tv.Type != nil {
			t := tv.Type
			if ptr, ok := t.Underlying().(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if analysis.IsNamedType(t, "sync", "WaitGroup") {
				return "WaitGroup.Wait", true
			}
		}
	case "Sleep":
		if fn := analysis.Callee(c.pass.TypesInfo, call); fn != nil {
			if pkg := fn.Pkg(); pkg != nil && analysis.PathBase(pkg.Path()) == "time" {
				return "time.Sleep", true
			}
		}
	}
	return "", false
}

// mutexOp matches recv.Lock/Unlock/RLock/RUnlock() where recv is a
// sync.Mutex or sync.RWMutex (possibly through a pointer).
func (c *checker) mutexOp(call *ast.CallExpr) (recv, method string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, found := c.pass.TypesInfo.Types[sel.X]
	if !found || tv.Type == nil {
		return "", "", false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	if !analysis.IsNamedType(t, "sync", "Mutex") && !analysis.IsNamedType(t, "sync", "RWMutex") {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// isChanExpr reports whether e has channel type.
func (c *checker) isChanExpr(e ast.Expr) bool {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, isChan := tv.Type.Underlying().(*types.Chan)
	return isChan
}

// deferredUnlock is one unlock call found inside a deferred closure.
type deferredUnlock struct {
	recv  string
	write bool
	pos   token.Pos
}

// unlockCalls collects the mutex releases in a deferred closure body.
func unlockCalls(c *checker, body *ast.BlockStmt) []deferredUnlock {
	var out []deferredUnlock
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv, method, ok := c.mutexOp(call); ok {
			switch method {
			case "Unlock":
				out = append(out, deferredUnlock{recv: recv, write: true, pos: call.Pos()})
			case "RUnlock":
				out = append(out, deferredUnlock{recv: recv, write: false, pos: call.Pos()})
			}
		}
		return true
	})
	return out
}

func selectHasDefault(st *ast.SelectStmt) bool {
	for _, clause := range st.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func copyHeld(held []heldLock) []heldLock {
	out := make([]heldLock, len(held))
	copy(out, held)
	return out
}
