package ctxflow_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a", "rpc", "ingest", "mainpkg")
}
