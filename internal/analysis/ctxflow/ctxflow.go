// Package ctxflow enforces the context-threading contract: code that has
// a caller context must pass it down, never mint a fresh one.
package ctxflow

import (
	"go/ast"
	"go/types"

	"uots/internal/analysis"
)

const name = "ctxflow"

// Analyzer flags dropped contexts.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `ctxflow: report context.Background()/context.TODO() calls and nil
context arguments outside the designated compat wrappers.

Every engine entry point threads context.Context; constructing a fresh
background context severs the caller's deadline and cancellation, so the
serving layer's guarantees (request deadlines, disconnect aborts,
graceful shutdown) silently stop applying to the work underneath. The
only legitimate fresh-context sites are process roots (func main / init
of package main, which are exempt) and explicitly documented compat
wrappers, which must carry:

	//uots:allow ctxflow -- <why this call has no caller context>

Passing a nil context where a callee accepts context.Context is flagged
for the same reason.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			exemptRoot := false
			if ok && fd.Recv == nil && pass.Pkg.Name() == "main" &&
				(fd.Name.Name == "main" || fd.Name.Name == "init") {
				// Process roots own the root context.
				exemptRoot = true
			}
			if exemptRoot {
				continue
			}
			ast.Inspect(decl, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				checkCall(pass, call)
				return true
			})
		}
	}
	return nil
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	if fn := analysis.Callee(pass.TypesInfo, call); fn != nil &&
		(analysis.IsPkgFunc(fn, "context", "Background") || analysis.IsPkgFunc(fn, "context", "TODO")) {
		if !pass.Allowed(name, call.Pos()) {
			pass.Reportf(call.Pos(),
				"context.%s() drops the caller's context; thread the ctx in scope or annotate the compat wrapper with //uots:allow ctxflow -- reason",
				fn.Name())
		}
		return
	}
	// nil passed in a context.Context parameter position.
	sig := callSignature(pass.TypesInfo, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	n := params.Len()
	if sig.Variadic() {
		n-- // a context parameter is never the variadic tail
	}
	for i := 0; i < n && i < len(call.Args); i++ {
		if !isContextType(params.At(i).Type()) {
			continue
		}
		tv, ok := pass.TypesInfo.Types[call.Args[i]]
		if ok && tv.IsNil() && !pass.Allowed(name, call.Args[i].Pos()) {
			pass.Reportf(call.Args[i].Pos(),
				"nil context passed to %s parameter; thread the caller's ctx (//uots:allow ctxflow -- reason to exempt)",
				params.At(i).Type())
		}
	}
}

// callSignature returns the signature of the called function or method,
// including calls through function-typed values. Conversions and
// built-ins return nil.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

func isContextType(t types.Type) bool {
	return analysis.IsNamedType(t, "context", "Context")
}
