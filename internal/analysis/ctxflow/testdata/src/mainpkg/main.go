// Command mainpkg shows the process-root exemption: main and init own
// the root context.
package main

import "context"

var sink context.Context

func init() {
	sink = context.Background() // ok: process root
}

func main() {
	sink = context.Background() // ok: process root
	helper()
}

func helper() {
	sink = context.Background() // want `drops the caller's context`
}
