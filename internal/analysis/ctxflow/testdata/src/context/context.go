// Package context stubs the standard library context package for
// analyzer fixtures: ctxflow matches by import path and identifier, so
// only the declarations under test are needed.
package context

// Context mirrors context.Context closely enough for the fixtures.
type Context interface {
	Done() <-chan struct{}
	Err() error
}

var background Context

// Background mirrors context.Background.
func Background() Context { return background }

// TODO mirrors context.TODO.
func TODO() Context { return background }
