// Package rpc exercises ctxflow on the transport's shapes: hedged
// attempts and retries must inherit the caller's context, while the
// lifetime-scoped health prober is a documented exemption.
package rpc

import "context"

// call stands in for one network attempt against a replica.
func call(ctx context.Context, replica int) error { return nil }

// hedgedDetached launches the hedge attempt on a fresh context: the
// caller's cancellation can no longer reach the duplicate request.
func hedgedDetached(ctx context.Context, primary, hedge int) error {
	go call(context.Background(), hedge) // want `context\.Background\(\) drops the caller's context`
	return call(ctx, primary)
}

// retryNil drops the context between attempts.
func retryNil(replica int) error {
	return call(nil, replica) // want `nil context passed`
}

// hedged threads the caller's context into both attempts; cancelling
// the caller cancels the loser too.
func hedged(ctx context.Context, primary, hedge int) error {
	go call(ctx, hedge)
	return call(ctx, primary)
}

// probeAll runs on the group's lifetime, not any caller's request.
//
//uots:allow ctxflow -- health probes have no inbound request context; they live and die with the group
func probeAll(replicas []int) {
	for _, r := range replicas {
		call(context.Background(), r)
	}
}
