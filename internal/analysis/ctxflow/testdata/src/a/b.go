package a

import "context"

// secondFile proves multi-file fixture packages are analyzed whole.
func secondFile() context.Context {
	return context.Background() // want `drops the caller's context`
}

// trailingAllow uses a same-line directive.
func trailingAllow() context.Context {
	return context.Background() //uots:allow ctxflow -- background poller root, spawned at startup
}
