// Package a exercises the ctxflow analyzer: flagged drops, allowed
// compat wrappers, and clean threading.
package a

import "context"

// SearchCtx stands in for a context-threaded engine entry point.
func SearchCtx(ctx context.Context, q int) error { return nil }

// Drop mints a fresh context although the caller supplied one.
func Drop(ctx context.Context, q int) error {
	return SearchCtx(context.Background(), q) // want `context\.Background\(\) drops the caller's context`
}

// DropTODO does the same with TODO.
func DropTODO(ctx context.Context, q int) error {
	return SearchCtx(context.TODO(), q) // want `context\.TODO\(\) drops the caller's context`
}

// NilCtx passes an explicit nil context.
func NilCtx(q int) error {
	return SearchCtx(nil, q) // want `nil context passed`
}

// Threads passes the caller's context and is clean.
func Threads(ctx context.Context, q int) error {
	return SearchCtx(ctx, q)
}

// Search is a designated compat wrapper for callers without a context.
//
//uots:allow ctxflow -- compat wrapper: documented entry point for callers without a context
func Search(q int) error {
	return SearchCtx(context.Background(), q)
}

// InlineAllow demonstrates a statement-level exemption.
func InlineAllow(q int) error {
	//uots:allow ctxflow -- detached lifetime: this work outlives the request on purpose
	return SearchCtx(context.Background(), q)
}

// BareDirective shows that an allow without a reason does not silence
// the analyzer.
func BareDirective(q int) error {
	//uots:allow ctxflow
	return SearchCtx(context.Background(), q) // want `drops the caller's context`
}

// WrongName shows that a directive for another analyzer does not
// silence ctxflow.
func WrongName(q int) error {
	//uots:allow nodrift -- reason that names the wrong analyzer
	return SearchCtx(context.Background(), q) // want `drops the caller's context`
}
