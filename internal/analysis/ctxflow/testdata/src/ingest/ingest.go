// Package ingest is a fixture of the context-threading contract on the
// write path: the submit/enqueue chain must carry the request context.
package ingest

import "context"

// enqueue stands in for the batcher's context-aware admission.
func enqueue(ctx context.Context, req int) error { return nil }

// submitDetached mints a fresh context, severing the client's
// disconnect from the queued wait.
func submitDetached(ctx context.Context, req int) error {
	return enqueue(context.Background(), req) // want `context\.Background\(\) drops the caller's context`
}

// submitNil passes an explicit nil.
func submitNil(req int) error {
	return enqueue(nil, req) // want `nil context passed`
}

// submit threads the request context and is clean.
func submit(ctx context.Context, req int) error {
	return enqueue(ctx, req)
}

// replay is a documented boot-time root: WAL recovery runs before any
// request exists.
//
//uots:allow ctxflow -- boot-time WAL replay has no caller context
func replay(req int) error {
	return enqueue(context.Background(), req)
}
