package cachealias_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/cachealias"
)

func TestCacheAlias(t *testing.T) {
	analysistest.Run(t, "testdata", cachealias.Analyzer, "shard", "other")
}
