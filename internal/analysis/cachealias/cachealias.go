// Package cachealias enforces the deep-copy contract of result caches
// and memo tables: cached values must not alias caller memory.
package cachealias

import (
	"go/ast"
	"go/types"
	"strings"

	"uots/internal/analysis"
)

const name = "cachealias"

// scopePkgs are the package directory names holding caches and memo
// tables whose entries outlive the request that created them: the shard
// result cache, the batch planner's memoized scans, the RPC layer, the
// serving layer, the disk store's record buffer, and the ingest
// service's per-generation engine/index cache.
var scopePkgs = map[string]bool{
	"core":      true,
	"shard":     true,
	"rpc":       true,
	"server":    true,
	"diskstore": true,
	"ingest":    true,
}

// getterNames are the method names treated as cache reads: what they
// return crosses the cache boundary and must be a fresh copy.
var getterNames = map[string]bool{
	"get": true, "Get": true,
	"load": true, "Load": true,
	"lookup": true, "Lookup": true,
	"fetch": true, "Fetch": true,
}

// Analyzer flags cache/memo methods that store or return
// reference-typed data without a deep copy.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `cachealias: cache and memo entries must deep-copy reference-typed
data on both put and get.

A cache entry outlives the request that created it and is served to many
later requests. Storing a caller's slice or map (or returning the stored
one) aliases live memory: one caller's in-place sort or truncation
silently corrupts every later hit of the same key — the exact Dists
slice-aliasing bug fixed in the shard result cache. Inside internal/core,
internal/shard, internal/rpc and internal/server, methods on types whose
name contains "cache" or "memo" must therefore:

 1. never store a reference-carrying parameter raw (launder it through a
    copy helper such as copyResults first);
 2. never deep-clone with a bare append when the element type itself
    carries slices or maps — the headers are copied, the backing arrays
    stay shared;
 3. in getters (get/load/lookup/fetch), return only freshly copied
    values, never internal storage.

Caches whose entries are immutable by documented contract may be
exempted with //uots:allow cachealias -- <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if !isCacheType(recvTypeName(fd)) {
				continue
			}
			checkStores(pass, fd)
			if getterNames[fd.Name.Name] {
				checkGetter(pass, fd)
			}
		}
	}
	return nil
}

func isCacheType(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "cache") || strings.Contains(l, "memo")
}

func recvTypeName(fd *ast.FuncDecl) string {
	if len(fd.Recv.List) != 1 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// checkStores applies the put-side rules: reference-carrying parameters
// (and their trivial aliases) must not reach a store position raw, and
// in-method clones of nested element types must be deep.
func checkStores(pass *analysis.Pass, fd *ast.FuncDecl) {
	tainted := taintedParams(pass, fd)
	if len(tainted) > 0 {
		// Propagate through trivial aliases (x := p, x = p).
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				src, ok := ast.Unparen(rhs).(*ast.Ident)
				if !ok || !tainted[pass.TypesInfo.Uses[src]] {
					continue
				}
				if dst, ok := as.Lhs[i].(*ast.Ident); ok {
					if obj := pass.TypesInfo.Defs[dst]; obj != nil {
						tainted[obj] = true
					} else if obj := pass.TypesInfo.Uses[dst]; obj != nil && !isFieldOrIndex(as.Lhs[i]) {
						tainted[obj] = true
					}
				}
			}
			return true
		})
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !isFieldOrIndex(lhs) {
					continue
				}
				reportRawStore(pass, tainted, n.Rhs[i])
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				reportRawStore(pass, tainted, elt)
			}
		case *ast.CallExpr:
			checkCall(pass, tainted, n)
		}
		return true
	})
}

// reportRawStore flags expr when it is a raw tainted identifier landing
// in a store position.
func reportRawStore(pass *analysis.Pass, tainted map[types.Object]bool, expr ast.Expr) {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || !tainted[pass.TypesInfo.Uses[id]] {
		return
	}
	if pass.Allowed(name, id.Pos()) {
		return
	}
	pass.Reportf(id.Pos(),
		"cache stores caller-owned %s without a deep copy: the entry aliases live memory and a later in-place mutation corrupts every hit of the key; launder it through a copy helper first (//uots:allow cachealias -- reason to exempt)",
		id.Name)
}

// checkCall handles the two call-shaped hazards: raw tainted arguments
// escaping into container methods, and shallow append-clones of nested
// element types.
func checkCall(pass *analysis.Pass, tainted map[types.Object]bool, call *ast.CallExpr) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name != "append" {
			return // free functions (copy helpers among them) may read params
		}
		if _, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); !ok {
			return
		}
		checkAppendClone(pass, call)
	case *ast.SelectorExpr:
		if isCopyName(fun.Sel.Name) {
			return
		}
		// A method call (s.lru.PushFront(res), m.Store(key, res)):
		// arguments escape into owned storage.
		if _, isSel := pass.TypesInfo.Selections[fun]; !isSel {
			return // package-qualified call, not a container method
		}
		for _, arg := range call.Args {
			reportRawStore(pass, tainted, arg)
		}
	}
}

// checkAppendClone flags append-based clones whose element type carries
// nested references: append copies the slice header per element, so the
// nested backing arrays stay shared — the shallow-copy bug class.
func checkAppendClone(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 2 || !call.Ellipsis.IsValid() {
		return
	}
	if !isFreshSlice(pass, call.Args[0]) {
		return
	}
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return
	}
	slice, ok := tv.Type.Underlying().(*types.Slice)
	if !ok || !carriesRefs(slice.Elem(), nil) {
		return
	}
	if pass.Allowed(name, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"shallow clone: append copies only the outer slice of %s, whose elements carry nested slices/maps that stay aliased; deep-copy per element, copyResults-style (//uots:allow cachealias -- reason to exempt)",
		types.TypeString(slice.Elem(), func(p *types.Package) string { return analysis.PathBase(p.Path()) }))
}

// isFreshSlice reports whether expr denotes new backing storage: a
// T(nil) conversion, a nil literal, or an empty composite literal — the
// clone idiom's first argument.
func isFreshSlice(pass *analysis.Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return len(e.Elts) == 0
	case *ast.CallExpr: // conversion like []Result(nil)
		if len(e.Args) != 1 {
			return false
		}
		if tv, ok := pass.TypesInfo.Types[e.Fun]; ok && tv.IsType() {
			return isFreshSlice(pass, e.Args[0])
		}
	}
	return false
}

// checkGetter enforces rule 3: getters return copies, never internal
// storage.
func checkGetter(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			checkReturned(pass, res)
		}
		return true
	})
}

func checkReturned(pass *analysis.Pass, expr ast.Expr) {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(expr)]
	if !ok || tv.Type == nil || !carriesRefs(tv.Type, nil) {
		return
	}
	if isSanctionedCopy(pass, expr) {
		return
	}
	if pass.Allowed(name, expr.Pos()) {
		return
	}
	pass.Reportf(expr.Pos(),
		"cache getter returns internal storage without a deep copy: callers receive aliased memory and their mutations corrupt later hits; return a fresh copy (//uots:allow cachealias -- reason to exempt)")
}

// isSanctionedCopy reports whether expr manufactures fresh memory: nil,
// a copy-helper call, a deep-safe append clone, a composite literal, or
// make.
func isSanctionedCopy(pass *analysis.Pass, expr ast.Expr) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return e.Name == "nil"
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		switch fun := ast.Unparen(e.Fun).(type) {
		case *ast.Ident:
			if isCopyName(fun.Name) || fun.Name == "make" {
				return true
			}
			if fun.Name == "append" {
				// A flat append clone is a real copy; a nested one is the
				// shallow-copy bug and checkAppendClone already flagged it,
				// so do not double-report here.
				return true
			}
		case *ast.SelectorExpr:
			return isCopyName(fun.Sel.Name)
		}
	}
	return false
}

// isFieldOrIndex reports whether expr names owned storage: a struct
// field or an indexed element, as opposed to a plain local.
func isFieldOrIndex(expr ast.Expr) bool {
	switch ast.Unparen(expr).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		return true
	}
	return false
}

func isCopyName(fn string) bool {
	l := strings.ToLower(fn)
	return strings.HasPrefix(l, "copy") || strings.HasPrefix(l, "clone") || strings.HasPrefix(l, "deep")
}

// taintedParams returns the reference-carrying parameters of fd.
func taintedParams(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return tainted
	}
	for _, field := range fd.Type.Params.List {
		for _, id := range field.Names {
			obj := pass.TypesInfo.Defs[id]
			if obj != nil && carriesRefs(obj.Type(), nil) {
				tainted[obj] = true
			}
		}
	}
	return tainted
}

// carriesRefs reports whether values of t share backing memory when
// assigned: slices, maps, pointers, channels, funcs, interfaces, and
// aggregates containing them. Strings are immutable and safe.
func carriesRefs(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false // recursive type: already being checked above
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	switch t := t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature, *types.Interface:
		return true
	case *types.Array:
		return carriesRefs(t.Elem(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if carriesRefs(t.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
