// Package other is outside the cachealias scope: identical code, no
// diagnostics.
package other

type Result struct {
	Dists []float64
}

type resultCache struct {
	byKey map[string][]Result
}

func (c *resultCache) put(key string, res []Result) {
	c.byKey[key] = res
}

func (c *resultCache) get(key string) ([]Result, bool) {
	r, ok := c.byKey[key]
	return r, ok
}
