// Package shard is a fixture of the result-cache deep-copy contract.
package shard

// Result mirrors the shape that caused the real bug: a flat struct
// carrying a nested slice (Dists) that a shallow copy leaves aliased.
type Result struct {
	Traj  int
	Score float64
	Dists []float64
}

// copyResults is the sanctioned deep-copy helper.
func copyResults(res []Result) []Result {
	cp := append([]Result(nil), res...)
	for i := range cp {
		cp[i].Dists = append([]float64(nil), cp[i].Dists...)
	}
	return cp
}

type resultCache struct {
	byKey map[string][]Result
	list  *pushList
}

type pushList struct{}

func (l *pushList) PushFront(v any) {}

// put stores the caller's slice raw: the canonical aliasing bug.
func (c *resultCache) put(key string, res []Result) {
	c.byKey[key] = res // want `cache stores caller-owned res without a deep copy`
}

// putAliased launders through a trivial alias, which copies nothing.
func (c *resultCache) putAliased(key string, res []Result) {
	stored := res
	c.byKey[key] = stored // want `cache stores caller-owned stored without a deep copy`
}

// putShallow clones the outer slice only; every Dists backing array is
// still shared with the caller.
func (c *resultCache) putShallow(key string, res []Result) {
	c.byKey[key] = append([]Result(nil), res...) // want `shallow clone: append copies only the outer slice`
}

// putContainer hands the raw parameter to an owned container.
func (c *resultCache) putContainer(key string, res []Result) {
	c.list.PushFront(res) // want `cache stores caller-owned res without a deep copy`
}

// putDeep is the contract-conforming shape.
func (c *resultCache) putDeep(key string, res []Result) {
	c.byKey[key] = copyResults(res)
}

// putOwned documents a deliberate ownership transfer.
//
//uots:allow cachealias -- ownership transfer: the batch planner hands the slice over and never touches it again
func (c *resultCache) putOwned(key string, res []Result) {
	c.byKey[key] = res
}

// putBare shows that a directive without a reason does not suppress.
func (c *resultCache) putBare(key string, res []Result) {
	//uots:allow cachealias
	c.byKey[key] = res // want `cache stores caller-owned res without a deep copy`
}

// get returns internal storage raw: later callers see the first
// caller's mutations.
func (c *resultCache) get(key string) ([]Result, bool) {
	r, ok := c.byKey[key]
	return r, ok // want `cache getter returns internal storage without a deep copy`
}

// getDeep is the contract-conforming read.
func (c *resultCache) getDeep(key string) ([]Result, bool) {
	r, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	return copyResults(r), true
}

// distCache holds flat slices: an append clone is a full copy there.
type distCache struct {
	byKey map[string][]float64
}

func (c *distCache) put(key string, d []float64) {
	c.byKey[key] = append([]float64(nil), d...)
}

func (c *distCache) get(key string) []float64 {
	return append([]float64(nil), c.byKey[key]...)
}

// scoreCache stores value types: nothing aliases, nothing to flag.
type scoreCache struct {
	byKey map[string]float64
}

func (c *scoreCache) put(key string, v float64) { c.byKey[key] = v }
func (c *scoreCache) get(key string) float64    { return c.byKey[key] }

// planner is not a cache type: raw stores are some other contract's
// business.
type planner struct {
	byKey map[string][]Result
}

func (p *planner) put(key string, res []Result) {
	p.byKey[key] = res
}
