// Package storefault enforces the typed store-fault contract between the
// trajectory stores and the engine.
package storefault

import (
	"go/ast"
	"go/types"

	"uots/internal/analysis"
)

const name = "storefault"

// storePkgs are the package directory names holding TrajStore
// implementations and the engine that recovers their faults.
var storePkgs = map[string]bool{
	"core":      true,
	"diskstore": true,
	"trajdb":    true,
}

// Analyzer checks both halves of the store-fault contract.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `storefault: enforce the typed panic contract of trajectory stores.

TrajStore access paths return no errors; an implementation that hits an
unrecoverable mid-query failure must panic with *trajdb.StoreError and
nothing else, because the engine's entry points recover exactly that
type — any other payload keeps unwinding and kills the process under
traffic. Two rules, inside the store packages (core, diskstore, trajdb):

 1. every panic(x) argument must have static type *trajdb.StoreError;
 2. every exported error-returning Engine method in internal/core must
    either defer recoverStoreFault(...) or be a single-statement wrapper
    delegating to a guarded sibling.

Deliberate exceptions (e.g. re-panicking a foreign recover() payload)
must carry //uots:allow storefault -- <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	base := analysis.PathBase(pass.Pkg.Path())
	if !storePkgs[base] {
		return nil
	}
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkPanic(pass, call)
			return true
		})
		if base == "core" {
			for _, decl := range file.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok {
					checkEntryPoint(pass, fd)
				}
			}
		}
	}
	return nil
}

// checkPanic flags panic arguments that are not *trajdb.StoreError.
func checkPanic(pass *analysis.Pass, call *ast.CallExpr) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok {
		return // shadowed identifier, not the builtin
	}
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if ok && isStoreErrorPtr(tv.Type) {
		return
	}
	if pass.Allowed(name, call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(),
		"store packages must panic with *trajdb.StoreError, not %s: untyped panics escape the engine's recover and kill the process (//uots:allow storefault -- reason to exempt)",
		describeType(tv))
}

func isStoreErrorPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	return ok && analysis.IsNamedType(ptr.Elem(), "trajdb", "StoreError")
}

func describeType(tv types.TypeAndValue) string {
	if tv.Type == nil {
		return "unknown"
	}
	return tv.Type.String()
}

// checkEntryPoint enforces the recover-to-ErrStoreFault defer on
// exported, error-returning Engine methods.
func checkEntryPoint(pass *analysis.Pass, fd *ast.FuncDecl) {
	if !fd.Name.IsExported() || fd.Body == nil || fd.Recv == nil || len(fd.Recv.List) != 1 {
		return
	}
	if !isEngineRecv(fd.Recv.List[0].Type) || !returnsError(pass, fd) {
		return
	}
	if isThinWrapper(fd) || hasRecoverDefer(fd.Body) {
		return
	}
	if pass.Allowed(name, fd.Name.Pos()) {
		return
	}
	pass.Reportf(fd.Name.Pos(),
		"exported Engine method %s returns an error but has no defer recoverStoreFault(...): a store panic mid-query would crash the process instead of surfacing as ErrStoreFault (//uots:allow storefault -- reason to exempt)",
		fd.Name.Name)
}

func isEngineRecv(t ast.Expr) bool {
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.Name == "Engine"
}

func returnsError(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		if t, ok := pass.TypesInfo.Types[field.Type]; ok && t.Type != nil && t.Type.String() == "error" {
			return true
		}
	}
	return false
}

// isThinWrapper reports whether the body is a single return delegating
// to a method on the same receiver (compat wrappers like
// Search → SearchCtx inherit the callee's guard).
func isThinWrapper(fd *ast.FuncDecl) bool {
	if len(fd.Body.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return false
	}
	ret, ok := fd.Body.List[0].(*ast.ReturnStmt)
	if !ok {
		return false
	}
	recv := fd.Recv.List[0].Names[0].Name
	for _, res := range ret.Results {
		call, ok := ast.Unparen(res).(*ast.CallExpr)
		if !ok {
			continue
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recv {
				return true
			}
		}
	}
	return false
}

// hasRecoverDefer looks for defer recoverStoreFault(...) anywhere in the
// body outside nested function literals.
func hasRecoverDefer(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.DeferStmt:
			switch fun := ast.Unparen(n.Call.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "recoverStoreFault" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "recoverStoreFault" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
