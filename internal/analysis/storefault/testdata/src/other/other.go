// Package other is out of scope: storefault only patrols the store
// packages, so plain panics here are fine.
package other

func boom() {
	panic("not a store package") // ok: out of scope
}
