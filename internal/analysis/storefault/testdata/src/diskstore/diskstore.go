// Package diskstore is a fixture TrajStore implementation.
package diskstore

import (
	"errors"

	"trajdb"
)

func readBlock(bad bool) {
	if bad {
		panic(errors.New("disk: short read")) // want `must panic with \*trajdb\.StoreError, not error`
	}
	panic(&trajdb.StoreError{Op: "readBlock"}) // ok
}

func repanic(r any) {
	//uots:allow storefault -- re-raising a foreign payload recovered from user callbacks
	panic(r)
}

func bareDirective(r any) {
	//uots:allow storefault
	panic(r) // want `must panic with \*trajdb\.StoreError`
}

func wrongName(r any) {
	//uots:allow nodrift -- wrong analyzer name, must not suppress
	panic(r) // want `must panic with \*trajdb\.StoreError`
}
