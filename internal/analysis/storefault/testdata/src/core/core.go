// Package core is a fixture of the engine package: exported Engine
// methods returning error must carry the recover-to-ErrStoreFault defer.
package core

import (
	"errors"

	"trajdb"
)

// Engine mirrors the real search engine type.
type Engine struct{}

var errStoreFault = errors.New("store fault")

func recoverStoreFault(err *error) {
	if r := recover(); r != nil {
		if _, ok := r.(*trajdb.StoreError); ok {
			*err = errStoreFault
			return
		}
		//uots:allow storefault -- foreign panic payload, re-raise as-is
		panic(r)
	}
}

// SearchCtx is guarded: the defer recovers store panics.
func (e *Engine) SearchCtx(q string) (err error) {
	defer recoverStoreFault(&err)
	return nil
}

// Search is a thin compat wrapper; the guard lives in SearchCtx.
func (e *Engine) Search(q string) error {
	return e.SearchCtx(q)
}

// SearchBatch lacks the defer entirely.
func (e *Engine) SearchBatch(qs []string) error { // want `SearchBatch returns an error but has no defer recoverStoreFault`
	for range qs {
	}
	return nil
}

// Stats returns no error, so the contract does not apply.
func (e *Engine) Stats() int { return 0 }

// lookup is unexported: internal helpers may rely on their callers' guard.
func (e *Engine) lookup(q string) error { return errors.New(q) }

//uots:allow storefault -- prototype path, guarded by the HTTP recovery middleware instead
func (e *Engine) Explain(q string) error {
	return errors.New(q)
}

// DeferInLit only defers inside a nested literal, which does not guard
// the method's own frame.
func (e *Engine) DeferInLit(q string) error { // want `DeferInLit returns an error but has no defer recoverStoreFault`
	f := func() (err error) {
		defer recoverStoreFault(&err)
		return nil
	}
	return f()
}
