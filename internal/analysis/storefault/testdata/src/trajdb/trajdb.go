// Package trajdb is a fixture stub of the real store-contract package.
package trajdb

// StoreError is the only payload stores may panic with.
type StoreError struct {
	Op  string
	Err error
}

func (e *StoreError) Error() string { return e.Op }

func rebuild(err error) {
	if err != nil {
		panic("trajdb: rebuild failed: " + err.Error()) // want `must panic with \*trajdb\.StoreError, not string`
	}
	panic(&StoreError{Op: "rebuild", Err: err}) // ok: typed payload
}
