package storefault_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/storefault"
)

func TestStorefault(t *testing.T) {
	analysistest.Run(t, "testdata", storefault.Analyzer, "trajdb", "diskstore", "core", "other")
}
