// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics. The repo
// builds with the standard library alone, so the x/tools module is not
// available; this package provides just enough of the same shape for the
// project-specific vet suite (cmd/uotsvet) and its analysistest-style
// test harness.
//
// # Allow directives
//
// All analyzers share one escape hatch: a comment of the form
//
//	//uots:allow <name>[,<name>...] -- <reason>
//
// suppresses the named analyzers' diagnostics. The reason is mandatory —
// a bare //uots:allow ctxflow is ignored and the diagnostic still fires —
// because every exemption in this codebase must document why the contract
// does not apply. A directive covers:
//
//   - the whole declaration, when it appears in a declaration's doc
//     comment;
//   - otherwise, the directive's own source line and the line below it
//     (trailing comments and comment-above-statement style).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one project contract check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //uots:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the analyzer's full documentation: the contract it
	// enforces and how to appease it.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Pass connects an Analyzer to one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags  []Diagnostic
	allows []allowSpan
	built  bool
	used   map[AllowKey]bool
}

// A Diagnostic is one reported contract violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// NewPass assembles a pass over a loaded package for one analyzer.
func NewPass(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) *Pass {
	return &Pass{Analyzer: a, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	if d.Analyzer == "" {
		d.Analyzer = p.Analyzer.Name
	}
	p.diags = append(p.diags, d)
}

// Reportf records a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostics returns the diagnostics reported so far, in source order.
func (p *Pass) Diagnostics() []Diagnostic {
	sort.SliceStable(p.diags, func(i, j int) bool { return p.diags[i].Pos < p.diags[j].Pos })
	return p.diags
}

// directivePrefix introduces an allow directive, in the //go:build style
// (no space after the slashes).
const directivePrefix = "//uots:allow"

// allowSpan is one parsed allow directive's coverage.
type allowSpan struct {
	names map[string]bool
	// pos is the directive comment's own position: the identity the
	// unused-allows audit matches suppressions against.
	pos token.Pos
	// Doc-attached directives cover [start, end].
	start, end token.Pos
	// Free-standing directives cover their own line and the next.
	file *token.File
	line int
}

// ParseAllowDirective parses one comment line. ok is false when the
// comment is not an allow directive or is missing the mandatory reason.
func ParseAllowDirective(text string) (names []string, reason string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return nil, "", false
	}
	rest := text[len(directivePrefix):]
	if rest == "" || (rest[0] != ' ' && rest[0] != '\t') {
		return nil, "", false // e.g. //uots:allowance — not ours
	}
	rest = strings.TrimSpace(rest)
	nameField, reason, _ := strings.Cut(rest, " ")
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(reason), "--"))
	reason = strings.TrimSpace(reason)
	for _, n := range strings.Split(nameField, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 || reason == "" {
		return nil, "", false // reason is mandatory
	}
	return names, reason, true
}

// buildAllows indexes every well-formed allow directive in the pass's
// files.
func (p *Pass) buildAllows() {
	if p.built {
		return
	}
	p.built = true
	for _, file := range p.Files {
		// Directives in a declaration doc comment cover the whole
		// declaration.
		docSpans := make(map[*ast.CommentGroup][2]token.Pos)
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Doc != nil {
					docSpans[d.Doc] = [2]token.Pos{d.Pos(), d.End()}
				}
			case *ast.GenDecl:
				if d.Doc != nil {
					docSpans[d.Doc] = [2]token.Pos{d.Pos(), d.End()}
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.ValueSpec:
						if s.Doc != nil {
							docSpans[s.Doc] = [2]token.Pos{s.Pos(), s.End()}
						}
					case *ast.TypeSpec:
						if s.Doc != nil {
							docSpans[s.Doc] = [2]token.Pos{s.Pos(), s.End()}
						}
					}
				}
			}
		}
		for _, group := range file.Comments {
			span, isDoc := docSpans[group]
			for _, c := range group.List {
				names, _, ok := ParseAllowDirective(c.Text)
				if !ok {
					continue
				}
				set := make(map[string]bool, len(names))
				for _, n := range names {
					set[n] = true
				}
				as := allowSpan{names: set, pos: c.Pos()}
				if isDoc {
					as.start, as.end = span[0], span[1]
				} else {
					as.file = p.Fset.File(c.Pos())
					as.line = as.file.Line(c.Pos())
				}
				p.allows = append(p.allows, as)
			}
		}
	}
}

// Allowed reports whether pos is covered by a well-formed
// //uots:allow directive naming the given analyzer. A match is
// recorded as a suppression for the unused-allows audit (the analyzers
// only consult Allowed for sites that would otherwise be flagged, so
// every match is a real suppression).
func (p *Pass) Allowed(name string, pos token.Pos) bool {
	p.buildAllows()
	for i := range p.allows {
		as := &p.allows[i]
		if !as.names[name] {
			continue
		}
		if as.start.IsValid() {
			if as.start <= pos && pos <= as.end {
				p.markUsed(name, as.pos)
				return true
			}
			continue
		}
		f := p.Fset.File(pos)
		if f == as.file {
			if line := f.Line(pos); line == as.line || line == as.line+1 {
				p.markUsed(name, as.pos)
				return true
			}
		}
	}
	return false
}

// An AllowKey identifies one (directive, analyzer) suppression: the
// directive comment's position plus the analyzer name it silenced.
type AllowKey struct {
	Pos  token.Pos
	Name string
}

func (p *Pass) markUsed(name string, pos token.Pos) {
	if p.used == nil {
		p.used = make(map[AllowKey]bool)
	}
	p.used[AllowKey{Pos: pos, Name: name}] = true
}

// UsedAllows returns every (directive, analyzer) pair whose directive
// suppressed at least one diagnostic during this pass.
func (p *Pass) UsedAllows() []AllowKey {
	keys := make([]AllowKey, 0, len(p.used))
	for k := range p.used {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Pos != keys[j].Pos {
			return keys[i].Pos < keys[j].Pos
		}
		return keys[i].Name < keys[j].Name
	})
	return keys
}

// An AllowDirective is one well-formed //uots:allow comment, as
// collected for the unused-allows audit.
type AllowDirective struct {
	Pos    token.Pos
	Names  []string
	Reason string
}

// CollectAllows lists every well-formed allow directive in files, in
// source order. Malformed directives (no names, missing reason) are
// skipped: they never suppress anything, so auditing them is the
// ordinary lint run's job, not the audit's.
func CollectAllows(files []*ast.File) []AllowDirective {
	var out []AllowDirective
	for _, file := range files {
		for _, group := range file.Comments {
			for _, c := range group.List {
				names, reason, ok := ParseAllowDirective(c.Text)
				if !ok {
					continue
				}
				out = append(out, AllowDirective{Pos: c.Pos(), Names: names, Reason: reason})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// InTestFile reports whether pos lies in a _test.go file. The contract
// analyzers exempt tests: tests legitimately construct fresh contexts,
// panic, and measure wall-clock time.
func (p *Pass) InTestFile(pos token.Pos) bool {
	f := p.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// PathBase returns the last element of an import path: the package
// directory name the scoped analyzers match on, so that both the real
// module paths (uots/internal/core) and the analysistest fixture paths
// (core) resolve identically.
func PathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Callee resolves the static callee of a call expression, or nil for
// calls through function values, type conversions, and built-ins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call: pkg.Fn(...).
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// IsPkgFunc reports whether fn is the package-level function
// pkgPath.name (not a method).
func IsPkgFunc(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// IsNamedType reports whether t is the named type pkgBase.name, where
// pkgBase is matched against the last element of the defining package's
// import path (see PathBase).
func IsNamedType(t types.Type, pkgBase, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && PathBase(obj.Pkg().Path()) == pkgBase
}
