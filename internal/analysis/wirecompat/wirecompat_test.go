package wirecompat_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/wirecompat"
)

func TestWireCompat(t *testing.T) {
	analysistest.Run(t, "testdata", wirecompat.Analyzer,
		"good/rpc", "bad/rpc", "unsafe/rpc", "nogolden/rpc")
}
