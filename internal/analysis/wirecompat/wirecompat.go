// Package wirecompat checks internal/rpc's wire structs: every field
// must be gob-wire-safe, and the exported field-set schema must match
// the checked-in golden so wire changes are deliberate.
package wirecompat

import (
	"crypto/sha256"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"uots/internal/analysis"
)

const name = "wirecompat"

// goldenFile sits next to wire.go and pins the wire schema. Regenerate
// with make wire-schema after a deliberate wire change.
const goldenFile = "wire_schema.golden"

// Analyzer checks gob safety and schema stability of the wire structs.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `wirecompat: structs declared in internal/rpc's wire.go must be
gob-wire-safe and their schema must match the checked-in golden.

The client and server exchange gob-encoded values of the wire structs,
and a mixed-version fleet decodes yesterday's bytes with today's types.
Two failure classes are caught here:

 - a field whose type cannot cross the wire at all: interfaces, funcs
   and channels make gob encoding fail at runtime, on the first request
   rather than at build time (core.BatchResult.Err is the canonical
   example - errors cross as (code, message) string pairs instead);
 - a silent schema change: adding, renaming or retyping an exported
   field changes what peers must understand, so the exported field-set
   of every struct reachable from the wire structs is fingerprinted into
   wire_schema.golden, and this analyzer fails until the golden is
   regenerated (make wire-schema) - turning every wire change into a
   reviewed diff.

A struct that deliberately carries a non-wire field documents it with
//uots:allow wirecompat -- <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if analysis.PathBase(pass.Pkg.Path()) != "rpc" {
		return nil
	}
	var wireFiles []*ast.File
	for _, file := range pass.Files {
		if filepath.Base(pass.Fset.Position(file.Pos()).Filename) == "wire.go" {
			wireFiles = append(wireFiles, file)
		}
	}
	if len(wireFiles) == 0 {
		return nil
	}
	unsafeFound := false
	var roots []*types.Named
	for _, file := range wireFiles {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if named := namedFor(pass, ts); named != nil {
					roots = append(roots, named)
				}
				if checkGobSafety(pass, ts.Name.Name, st) {
					unsafeFound = true
				}
			}
		}
	}
	// A schema of gob-unsafe structs is meaningless; restore safety
	// first, then reconcile the golden.
	if unsafeFound || len(roots) == 0 {
		return nil
	}
	checkGolden(pass, wireFiles[0], roots)
	return nil
}

// namedFor resolves the named type a wire struct declaration defines.
func namedFor(pass *analysis.Pass, ts *ast.TypeSpec) *types.Named {
	obj, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return nil
	}
	named, _ := obj.Type().(*types.Named)
	return named
}

// checkGobSafety reports every field of one wire struct whose type
// cannot be gob-encoded, returning whether any diagnostic (suppressed
// or not) applied.
func checkGobSafety(pass *analysis.Pass, structName string, st *ast.StructType) bool {
	found := false
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || tv.Type == nil {
			continue
		}
		bad := unsafeComponent(tv.Type, make(map[types.Type]bool))
		if bad == "" {
			continue
		}
		found = true
		if pass.Allowed(name, field.Pos()) {
			continue
		}
		fieldNames := "embedded field"
		if len(field.Names) > 0 {
			var ns []string
			for _, n := range field.Names {
				ns = append(ns, n.Name)
			}
			fieldNames = "field " + strings.Join(ns, ", ")
		}
		pass.Reportf(field.Pos(),
			"%s of wire struct %s contains %s, which gob cannot encode; carry a coded representation instead (see BatchEntry.ErrCode/ErrMsg), or document with //uots:allow wirecompat -- reason",
			fieldNames, structName, bad)
	}
	return found
}

// unsafeComponent walks a field type and names the first component gob
// cannot carry: an interface, function or channel. Strings come back
// empty for wire-safe types.
func unsafeComponent(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return "an interface (" + types.TypeString(t, qualifier) + ")"
	case *types.Signature:
		return "a func (" + types.TypeString(t, qualifier) + ")"
	case *types.Chan:
		return "a channel (" + types.TypeString(t, qualifier) + ")"
	case *types.Pointer:
		return unsafeComponent(u.Elem(), seen)
	case *types.Slice:
		return unsafeComponent(u.Elem(), seen)
	case *types.Array:
		return unsafeComponent(u.Elem(), seen)
	case *types.Map:
		if bad := unsafeComponent(u.Key(), seen); bad != "" {
			return bad
		}
		return unsafeComponent(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue // gob skips unexported fields
			}
			if bad := unsafeComponent(f.Type(), seen); bad != "" {
				return bad
			}
		}
	}
	return ""
}

// checkGolden renders the wire schema and compares it to the golden
// file next to wire.go, reporting on the wire file's package clause.
func checkGolden(pass *analysis.Pass, wireFile *ast.File, roots []*types.Named) {
	pos := wireFile.Name.Pos()
	if pass.Allowed(name, pos) {
		return
	}
	schema := Schema(roots)
	dir := filepath.Dir(pass.Fset.Position(wireFile.Pos()).Filename)
	goldenPath := filepath.Join(dir, goldenFile)
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		pass.Reportf(pos,
			"wire schema golden %s not found next to wire.go; generate it with make wire-schema and commit it",
			goldenFile)
		return
	}
	got := strings.TrimRight(schema, "\n")
	want := strings.TrimRight(string(golden), "\n")
	if got != want {
		pass.Reportf(pos,
			"wire schema (sha256 %s) does not match %s (sha256 %s); if the wire change is deliberate, regenerate with make wire-schema and coordinate a rolling upgrade",
			fingerprint(got), goldenFile, fingerprint(want))
	}
}

// Schema renders the canonical wire schema: a version header, then one
// block per named struct reachable from the roots through exported
// fields, blocks sorted by qualified name and fields sorted by name.
// The rendering must stay in lockstep with the reflect-based generator
// in internal/rpc's wire schema test: package-name qualifiers, one
// "  Name Type" line per exported field.
func Schema(roots []*types.Named) string {
	blocks := make(map[string][]string)
	seen := make(map[string]bool)
	var visit func(t types.Type)
	visitNamed := func(n *types.Named) {
		qname := types.TypeString(n, qualifier)
		if seen[qname] {
			return
		}
		seen[qname] = true
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			// A named non-struct (e.g. a named slice) may still reach
			// structs through its underlying type.
			visit(n.Underlying())
			return
		}
		var lines []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			lines = append(lines, "  "+f.Name()+" "+types.TypeString(f.Type(), qualifier))
			visit(f.Type())
		}
		sort.Strings(lines)
		blocks[qname] = lines
	}
	visit = func(t types.Type) {
		switch tt := t.(type) {
		case *types.Named:
			visitNamed(tt)
		case *types.Pointer:
			visit(tt.Elem())
		case *types.Slice:
			visit(tt.Elem())
		case *types.Array:
			visit(tt.Elem())
		case *types.Map:
			visit(tt.Key())
			visit(tt.Elem())
		case *types.Struct:
			// Unnamed struct: no block of its own, but its fields may
			// reach named types.
			for i := 0; i < tt.NumFields(); i++ {
				if tt.Field(i).Exported() {
					visit(tt.Field(i).Type())
				}
			}
		}
	}
	for _, r := range roots {
		visitNamed(r)
	}
	names := make([]string, 0, len(blocks))
	for qname := range blocks {
		names = append(names, qname)
	}
	sort.Strings(names)
	var b strings.Builder
	b.WriteString("wire schema v1\n")
	for _, qname := range names {
		b.WriteString("\n")
		b.WriteString(qname)
		b.WriteString("\n")
		for _, line := range blocks[qname] {
			b.WriteString(line)
			b.WriteString("\n")
		}
	}
	return b.String()
}

func qualifier(p *types.Package) string { return p.Name() }

func fingerprint(s string) string {
	sum := sha256.Sum256([]byte(s))
	return fmt.Sprintf("%x", sum[:6])
}
