package rpc // want `wire schema golden wire_schema\.golden not found`

// Msg is wire-safe, but nothing pins its schema yet.
type Msg struct {
	A int
}
