// Package rpc is a fixture wire file whose schema matches its golden.
package rpc

// Point is reached transitively through PingRequest.From.
type Point struct {
	X float64
	Y float64
}

// PingRequest is a wire struct; unexported fields stay off the schema.
type PingRequest struct {
	Seq     int
	From    Point
	Tags    []string
	private int
}

// PingResponse is a wire struct.
type PingResponse struct {
	Seq     int
	Elapsed float64
}
