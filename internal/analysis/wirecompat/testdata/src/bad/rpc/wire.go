package rpc // want `wire schema \(sha256 [0-9a-f]+\) does not match wire_schema\.golden`

// Msg grew a field without the golden being regenerated.
type Msg struct {
	A int
	B string
}
