// Package rpc is a fixture wire file with gob-unsafe fields. The
// golden check is skipped while safety diagnostics apply, so this
// fixture needs no wire_schema.golden.
package rpc

// Callback carries a func value.
type Callback struct {
	Fn func() // want `field Fn of wire struct Callback contains a func`
}

// Evented carries a channel.
type Evented struct {
	C chan int // want `field C of wire struct Evented contains a channel`
}

// Wrapped is the core.BatchResult.Err shape: an error interface.
type Wrapped struct {
	Code string
	Err  error // want `field Err of wire struct Wrapped contains an interface \(error\)`
}

// Hooks hides the func one container level down.
type Hooks struct {
	OnClose []func() // want `field OnClose of wire struct Hooks contains a func`
}

// LegacyEnvelope documents a deliberate non-wire field.
//
//uots:allow wirecompat -- in-process-only envelope: never serialized, kept in wire.go for field-layout locality
type LegacyEnvelope struct {
	Err error
}
