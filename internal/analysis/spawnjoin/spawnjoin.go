// Package spawnjoin makes sure every spawned goroutine has a provable
// join path: no fire-and-forget goroutines in the serving stack.
package spawnjoin

import (
	"go/ast"
	"go/token"
	"go/types"

	"uots/internal/analysis"
)

const name = "spawnjoin"

// scopePkgs hold the request-scoped concurrency: the engine's batch
// workers, the scatter-gather executor, the RPC transport's hedges and
// probers, the serving layer, and the ingest pipeline's group
// committer. A goroutine leaked there outlives its request, pins
// memory and pool slots, and races teardown.
var scopePkgs = map[string]bool{
	"core":   true,
	"shard":  true,
	"rpc":    true,
	"server": true,
	"ingest": true,
}

// Analyzer flags go statements with no provable join path.
var Analyzer = &analysis.Analyzer{
	Name: name,
	Doc: `spawnjoin: every go statement in internal/core, internal/shard,
internal/rpc, internal/server and internal/ingest must have a provable
join path.

A fire-and-forget goroutine outlives the request that spawned it: it
pins its captured memory, keeps running after cancellation, and races
engine teardown (the close-during-query contracts assume every worker is
joined before resources are released). A spawn is considered joined when
the goroutine's body (or, for go f() on a same-package function, f's
body) provably terminates into a collector:

 - it pairs with a sync.WaitGroup (defer wg.Done(), with the matching
   Add at the spawn site);
 - it delivers its result over a channel (a send the spawner receives);
 - it is lifetime-scoped: a select or receive on a quit/stop channel or
   ctx.Done() bounds it to its owner's lifetime, or it ranges over a
   channel its owner closes.

Goroutines joined by machinery the analyzer cannot see (cross-package
helpers, process-lifetime monitors) must document that with
//uots:allow spawnjoin -- <reason>.`,
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !scopePkgs[analysis.PathBase(pass.Pkg.Path())] {
		return nil
	}
	decls := declIndex(pass)
	for _, file := range pass.Files {
		if pass.InTestFile(file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if joined(pass, gs, decls) {
				return true
			}
			if pass.Allowed(name, gs.Pos()) {
				return true
			}
			pass.Reportf(gs.Pos(),
				"goroutine has no provable join path and may leak past request completion; pair it with a WaitGroup (Add/defer Done), collect its result from a channel, or scope it to a quit channel/context, and document external joins with //uots:allow spawnjoin -- reason")
			return true
		})
	}
	return nil
}

// declIndex maps every function object declared in the pass's files to
// its declaration, so go f() can be proven through f's body.
func declIndex(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	idx := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = fd
				}
			}
		}
	}
	return idx
}

// joined reports whether the spawned function's body contains a join:
// a WaitGroup Done, a channel send, or a lifetime-scoping channel
// operation.
func joined(pass *analysis.Pass, gs *ast.GoStmt, decls map[*types.Func]*ast.FuncDecl) bool {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return bodyJoins(pass, lit.Body)
	}
	if fn := analysis.Callee(pass.TypesInfo, gs.Call); fn != nil {
		if fd := decls[fn]; fd != nil && fd.Body != nil {
			return bodyJoins(pass, fd.Body)
		}
	}
	return false
}

// bodyJoins scans one goroutine body for join evidence.
func bodyJoins(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true // result-channel convention: the spawner receives
		case *ast.SelectStmt:
			found = true // worker loop selecting on quit/tasks
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true // receive: blocks until the owner signals
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true // terminates when the owner closes the channel
				}
			}
		case *ast.CallExpr:
			if isWaitGroupDone(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupDone matches wg.Done() on a sync.WaitGroup receiver.
func isWaitGroupDone(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return analysis.IsNamedType(t, "sync", "WaitGroup")
}
