package spawnjoin_test

import (
	"testing"

	"uots/internal/analysis/analysistest"
	"uots/internal/analysis/spawnjoin"
)

func TestSpawnJoin(t *testing.T) {
	analysistest.Run(t, "testdata", spawnjoin.Analyzer, "shard", "ingest", "util")
}
