// Package util is outside the spawnjoin scope: identical spawns, no
// diagnostics.
package util

func fireAndForget(f func()) {
	go f()
}
