// Package ingest is a fixture of the join contract on the write path:
// the group committer's shapes, good and bad.
package ingest

import "sync"

type batcher struct {
	wg    sync.WaitGroup
	queue chan int
	quit  chan struct{}
}

// startCommitter is the real committer shape: Add at the spawn site,
// defer Done first, the loop scoped to the quit channel.
func (b *batcher) startCommitter() {
	b.wg.Add(1)
	go func() {
		defer b.wg.Done()
		for {
			select {
			case <-b.quit:
				return
			case req := <-b.queue:
				_ = req
			}
		}
	}()
}

// asyncFsync is the tempting mistake: pushing the sync off the commit
// path with nothing joining it. The goroutine races Close's file
// teardown and leaks if the device wedges.
func asyncFsync(syncFn func()) {
	go func() { // want `goroutine has no provable join path`
		syncFn()
	}()
}

// ackForever spawns an unbounded retry pump nothing ever stops.
func ackForever(b *batcher, n *int) {
	go func() { // want `goroutine has no provable join path`
		for {
			*n++
		}
	}()
}

// ackByChannel delivers the commit acknowledgement; the waiter's
// receive joins it.
func ackByChannel() int {
	done := make(chan int, 1)
	go func() { done <- 1 }()
	return <-done
}

// drainScoped ranges over the queue; close(queue) in the owner bounds
// its lifetime.
func (b *batcher) drainScoped() {
	go func() {
		for req := range b.queue {
			_ = req
		}
	}()
}
