// Package shard is a fixture of the goroutine join contract.
package shard

import "sync"

// fireAndForget spawns an unprovable function value: nothing joins it.
func fireAndForget(f func()) {
	go f() // want `goroutine has no provable join path`
}

// leakySpin is the classic leak: no WaitGroup, no channel, no lifetime.
func leakySpin(n *int) {
	go func() { // want `goroutine has no provable join path`
		for {
			*n++
		}
	}()
}

// joinedByWaitGroup is the canonical worker shape.
func joinedByWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// joinedByChannel delivers its result; the spawner receives it.
func joinedByChannel() int {
	res := make(chan int, 1)
	go func() { res <- 42 }()
	return <-res
}

// pool is the worker-pool shape: the spawn site calls a same-package
// method whose body both pairs the WaitGroup and selects on quit.
type pool struct {
	wg   sync.WaitGroup
	quit chan struct{}
}

func (p *pool) start() {
	p.wg.Add(1)
	go p.work()
}

func (p *pool) work() {
	defer p.wg.Done()
	for {
		select {
		case <-p.quit:
			return
		}
	}
}

// rangeOverChannel terminates when the owner closes the jobs channel.
func rangeOverChannel(jobs chan int, out []int) {
	go func() {
		for j := range jobs {
			out[j]++
		}
	}()
}

// lifetimeScoped blocks on the owner's stop channel.
func lifetimeScoped(stop chan struct{}, cleanup func()) {
	go func() {
		<-stop
		cleanup()
	}()
}

// monitor documents a process-lifetime goroutine the analyzer cannot
// prove.
//
//uots:allow spawnjoin -- process-lifetime monitor: dies with the process, there is deliberately nothing to join
func monitor(tick func()) {
	go func() {
		for {
			tick()
		}
	}()
}

// bareDirective shows that a reasonless directive does not suppress.
func bareDirective(f func()) {
	//uots:allow spawnjoin
	go f() // want `goroutine has no provable join path`
}
