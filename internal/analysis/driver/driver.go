// Package driver runs a set of analysis.Analyzers over type-checked
// packages. It speaks two dialects:
//
//   - the cmd/go vet-tool protocol (go vet -vettool=bin/uotsvet ./...):
//     respond to -V=full and -flags, then accept a *.cfg JSON file per
//     package, type-checking from the export data cmd/go already built;
//   - a standalone mode (bin/uotsvet ./...): shell out to
//     `go list -e -deps -export -json` and load packages the same way.
//
// Both modes print diagnostics as file:line:col: [analyzer] message and
// exit non-zero when any diagnostic fires.
package driver

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"uots/internal/analysis"
)

// Main is the entry point shared by cmd/uotsvet. It never returns.
func Main(analyzers []*analysis.Analyzer) {
	progname := filepath.Base(os.Args[0])
	args := os.Args[1:]

	if len(args) == 1 && args[0] == "help" {
		printHelp(progname, analyzers)
		os.Exit(0)
	}
	if len(args) >= 1 && strings.HasPrefix(args[0], "-V") {
		// cmd/go version handshake: at least three fields, the third
		// must not be "devel". Hash the executable so edits to the
		// tool invalidate vet's result cache.
		fmt.Printf("%s version %s\n", progname, selfHash())
		os.Exit(0)
	}
	if len(args) >= 1 && args[0] == "-flags" {
		// We expose no analyzer flags to cmd/go.
		fmt.Println("[]")
		os.Exit(0)
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnitchecker(args[0], analyzers))
	}
	// Standalone-only flags, accepted anywhere before or between the
	// package patterns (cmd/go never passes them).
	var opts standaloneOptions
	var patterns []string
	for _, arg := range args {
		switch arg {
		case "-json":
			opts.jsonOut = true
		case "-unused-allows":
			opts.auditAllows = true
		default:
			patterns = append(patterns, arg)
		}
	}
	if len(patterns) == 0 {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] [-unused-allows] [package pattern ...] | go vet -vettool=%s ./...\n", progname, progname)
		os.Exit(1)
	}
	os.Exit(runStandalone(patterns, analyzers, opts))
}

// standaloneOptions are the flags of the standalone (non-vettool) mode.
type standaloneOptions struct {
	// jsonOut additionally prints the findings as a JSON array on
	// stdout (file/line/col/analyzer/message), for CI artifacts.
	jsonOut bool
	// auditAllows reports //uots:allow directives that suppressed no
	// diagnostic over the analyzed packages - stale escape hatches that
	// should be pruned.
	auditAllows bool
}

// finding is the JSON shape of one diagnostic.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func printHelp(progname string, analyzers []*analysis.Analyzer) {
	fmt.Printf("%s: project contract checks for the uots codebase\n\n", progname)
	for _, a := range analyzers {
		fmt.Printf("%s\n\n", a.Doc)
	}
}

// selfHash fingerprints the running binary for vet's cache key.
func selfHash() string {
	exe, err := os.Executable()
	if err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return fmt.Sprintf("%x", h.Sum(nil))
			}
		}
	}
	return "unversioned" // fallback; anything but "devel" satisfies cmd/go
}

// vetConfig mirrors the JSON cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnitchecker(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "uotsvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// We compute no cross-package facts, but cmd/go caches the output
	// file, so it must exist even in facts-only mode.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, info, err := typecheck(fset, cfg.ImportPath, cfg.Compiler, cfg.GoVersion, files, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "uotsvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	diags, _, err := runAnalyzers(analyzers, fset, files, pkg, info)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	printDiags(fset, diags)
	if len(diags) > 0 {
		return 2 // the vet-tool convention for "diagnostics reported"
	}
	return 0
}

// listPackage is the subset of `go list -json` output the standalone
// loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	ImportMap  map[string]string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

func runStandalone(patterns []string, analyzers []*analysis.Analyzer, opts standaloneOptions) int {
	cmd := exec.Command("go", append([]string{"list", "-e", "-deps", "-export", "-json=ImportPath,Dir,GoFiles,ImportMap,Export,DepOnly,Error"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if err := cmd.Start(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var targets []*listPackage
	index := make(map[string]*listPackage) // import path -> package
	importMap := make(map[string]string)   // merged source path -> canonical
	dec := json.NewDecoder(out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			fmt.Fprintf(os.Stderr, "uotsvet: go list: %v\n", err)
			return 1
		}
		pp := p
		index[p.ImportPath] = &pp
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
		if !p.DepOnly {
			targets = append(targets, &pp)
		}
	}
	if err := cmd.Wait(); err != nil {
		fmt.Fprintf(os.Stderr, "uotsvet: go list: %v\n", err)
		return 1
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		p, ok := index[path]
		if !ok || p.Export == "" {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(p.Export)
	}

	exit := 0
	findings := []finding{} // non-nil: -json prints [] when clean
	var stale []string
	totalAllows, usedAllows := 0, 0
	for _, p := range targets {
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "uotsvet: %s: %s\n", p.ImportPath, p.Error.Err)
			exit = 1
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var paths []string
		for _, f := range p.GoFiles {
			paths = append(paths, filepath.Join(p.Dir, f))
		}
		files, err := parseFiles(fset, paths)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		pkg, info, err := typecheck(fset, p.ImportPath, "gc", "", files, lookup)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uotsvet: typechecking %s: %v\n", p.ImportPath, err)
			exit = 1
			continue
		}
		diags, used, err := runAnalyzers(analyzers, fset, files, pkg, info)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
			continue
		}
		printDiags(fset, diags)
		if len(diags) > 0 {
			exit = 1
		}
		if opts.jsonOut {
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				findings = append(findings, finding{
					File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Analyzer: d.Analyzer, Message: d.Message,
				})
			}
		}
		if opts.auditAllows {
			s, total, inUse := auditAllows(fset, files, used)
			stale = append(stale, s...)
			totalAllows += total
			usedAllows += inUse
		}
	}
	if opts.jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			exit = 1
		}
	}
	if opts.auditAllows {
		for _, s := range stale {
			fmt.Fprintf(os.Stderr, "uotsvet: unused allow: %s\n", s)
		}
		fmt.Fprintf(os.Stderr, "uotsvet: allow audit: %d directive names, %d in use, %d stale\n",
			totalAllows, usedAllows, len(stale))
		if len(stale) > 0 {
			exit = 1
		}
	}
	return exit
}

// auditAllows compares the package's allow directives against the
// suppressions the analyzers actually performed. Each stale entry is
// one (directive, analyzer name) pair that silenced nothing - either
// the code it excused was fixed, or the directive never matched.
func auditAllows(fset *token.FileSet, files []*ast.File, used map[analysis.AllowKey]bool) (stale []string, total, inUse int) {
	for _, d := range analysis.CollectAllows(files) {
		for _, name := range d.Names {
			total++
			if used[analysis.AllowKey{Pos: d.Pos, Name: name}] {
				inUse++
				continue
			}
			stale = append(stale,
				fmt.Sprintf("%s: //uots:allow %s suppresses nothing; prune it (reason was: %s)",
					fset.Position(d.Pos), name, d.Reason))
		}
	}
	return stale, total, inUse
}

func parseFiles(fset *token.FileSet, paths []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, path := range paths {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// unsafeAwareImporter resolves "unsafe" itself and delegates the rest to
// the export-data importer.
type unsafeAwareImporter struct{ under types.Importer }

func (i unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return i.under.Import(path)
}

func typecheck(fset *token.FileSet, importPath, compiler, goVersion string, files []*ast.File, lookup func(string) (io.ReadCloser, error)) (*types.Package, *types.Info, error) {
	if compiler == "" {
		compiler = "gc"
	}
	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}
	conf := types.Config{
		Importer: unsafeAwareImporter{importer.ForCompiler(fset, compiler, lookup)},
		Sizes:    types.SizesFor(compiler, goarch),
	}
	if strings.HasPrefix(goVersion, "go") {
		conf.GoVersion = goVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

func runAnalyzers(analyzers []*analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, map[analysis.AllowKey]bool, error) {
	var diags []analysis.Diagnostic
	used := make(map[analysis.AllowKey]bool)
	for _, a := range analyzers {
		pass := analysis.NewPass(a, fset, files, pkg, info)
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("uotsvet: analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
		diags = append(diags, pass.Diagnostics()...)
		for _, k := range pass.UsedAllows() {
			used[k] = true
		}
	}
	return diags, used, nil
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
