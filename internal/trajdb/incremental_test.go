package trajdb

import (
	"math/rand/v2"
	"testing"

	"uots/internal/roadnet"
	"uots/internal/textual"
)

// mirrorTraj is the test's own record of one live trajectory, kept in
// insertion order so a reference store can be rebuilt from scratch at
// any checkpoint.
type mirrorTraj struct {
	samples  []Sample
	keywords textual.TermSet
}

// buildReference freezes the mirror's live set into an immutable store
// through the only code path the engine contract trusts: Builder.Add in
// insertion order. This is the oracle every incremental extension must
// match byte for byte.
func buildReference(t *testing.T, g *roadnet.Graph, vocab *textual.Vocab, live []mirrorTraj) *Store {
	t.Helper()
	b := NewBuilder(g, vocab)
	for _, mt := range live {
		if _, err := b.Add(mt.samples, mt.keywords); err != nil {
			t.Fatalf("reference Add: %v", err)
		}
	}
	return b.Freeze()
}

// requireStoresIdentical compares every index structure and payload of
// two stores: trajectory records, per-vertex posting lists, per-traj
// unique-vertex lists, bounding boxes, sample totals, and the keyword
// inverted index (postings and per-doc term sets for every interned
// term). A mismatch anywhere fails the test.
func requireStoresIdentical(t *testing.T, label string, got, want *Store) {
	t.Helper()
	if got.NumTrajectories() != want.NumTrajectories() {
		t.Fatalf("%s: %d trajectories, want %d", label, got.NumTrajectories(), want.NumTrajectories())
	}
	if got.TotalSamples() != want.TotalSamples() {
		t.Fatalf("%s: %d total samples, want %d", label, got.TotalSamples(), want.TotalSamples())
	}
	for id := 0; id < want.NumTrajectories(); id++ {
		a, b := got.Traj(TrajID(id)), want.Traj(TrajID(id))
		if a.ID != b.ID {
			t.Fatalf("%s: traj %d has ID %d, want %d", label, id, a.ID, b.ID)
		}
		if len(a.Samples) != len(b.Samples) {
			t.Fatalf("%s: traj %d has %d samples, want %d", label, id, len(a.Samples), len(b.Samples))
		}
		for i := range a.Samples {
			if a.Samples[i] != b.Samples[i] {
				t.Fatalf("%s: traj %d sample %d = %+v, want %+v", label, id, i, a.Samples[i], b.Samples[i])
			}
		}
		if len(a.Keywords) != len(b.Keywords) {
			t.Fatalf("%s: traj %d keywords %v, want %v", label, id, a.Keywords, b.Keywords)
		}
		for i := range a.Keywords {
			if a.Keywords[i] != b.Keywords[i] {
				t.Fatalf("%s: traj %d keywords %v, want %v", label, id, a.Keywords, b.Keywords)
			}
		}
		au, bu := got.UniqueVertices(TrajID(id)), want.UniqueVertices(TrajID(id))
		if len(au) != len(bu) {
			t.Fatalf("%s: traj %d unique vertices %v, want %v", label, id, au, bu)
		}
		for i := range au {
			if au[i] != bu[i] {
				t.Fatalf("%s: traj %d unique vertices %v, want %v", label, id, au, bu)
			}
		}
		if got.BBox(TrajID(id)) != want.BBox(TrajID(id)) {
			t.Fatalf("%s: traj %d bbox %+v, want %+v", label, id, got.BBox(TrajID(id)), want.BBox(TrajID(id)))
		}
	}
	for v := 0; v < want.Graph().NumVertices(); v++ {
		a, b := got.TrajsAtVertex(roadnet.VertexID(v)), want.TrajsAtVertex(roadnet.VertexID(v))
		if len(a) != len(b) {
			t.Fatalf("%s: vertex %d postings %v, want %v", label, v, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: vertex %d postings %v, want %v", label, v, a, b)
			}
		}
	}
	gx, wx := got.TextIndex(), want.TextIndex()
	if gx.NumDocs() != wx.NumDocs() {
		t.Fatalf("%s: text index has %d docs, want %d", label, gx.NumDocs(), wx.NumDocs())
	}
	vocabSize := 0
	if want.Vocab() != nil {
		vocabSize = want.Vocab().Size()
	}
	for term := 0; term < vocabSize; term++ {
		a, b := gx.Postings(textual.TermID(term)), wx.Postings(textual.TermID(term))
		if len(a) != len(b) {
			t.Fatalf("%s: term %d postings %v, want %v", label, term, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: term %d postings %v, want %v", label, term, a, b)
			}
		}
	}
	for d := 0; d < wx.NumDocs(); d++ {
		a, b := gx.DocTerms(textual.DocID(d)), wx.DocTerms(textual.DocID(d))
		if len(a) != len(b) {
			t.Fatalf("%s: doc %d terms %v, want %v", label, d, a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: doc %d terms %v, want %v", label, d, a, b)
			}
		}
	}
}

// randomTraj draws a short valid trajectory on g.
func randomTraj(rng *rand.Rand, g *roadnet.Graph, vocab *textual.Vocab) mirrorTraj {
	n := 1 + rng.IntN(6)
	samples := make([]Sample, n)
	tm := rng.Float64() * 1000
	for i := range samples {
		samples[i] = Sample{V: roadnet.VertexID(rng.IntN(g.NumVertices())), T: tm}
		tm += rng.Float64() * 100
	}
	var terms []textual.TermID
	for k := rng.IntN(4); k > 0; k-- {
		terms = append(terms, textual.TermID(rng.IntN(vocab.Size())))
	}
	return mirrorTraj{samples: samples, keywords: textual.NewTermSet(terms)}
}

// TestIncrementalSnapshotMatchesRebuild drives randomized add/remove/
// snapshot interleavings against a DynamicStore and proves, at every
// snapshot checkpoint, that the (possibly incrementally extended)
// snapshot is byte-identical to a from-scratch rebuild of the same live
// set — and that earlier pinned snapshots remain untouched after later
// extensions (the MVCC invariant at the store layer).
func TestIncrementalSnapshotMatchesRebuild(t *testing.T) {
	g := testGraph(t)
	vocab := textual.NewVocab()
	for _, term := range []string{"food", "museum", "park", "night", "river", "cheap"} {
		vocab.Intern(term)
	}

	for seed := uint64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
		d := NewDynamic(g, vocab)
		var live []mirrorTraj
		var handles []ExternalID

		// Pinned earlier snapshots with their reference live sets,
		// re-verified at the end: later extensions must not disturb them.
		type pin struct {
			snap *Store
			ref  []mirrorTraj
		}
		var pins []pin

		for step := 0; step < 120; step++ {
			switch op := rng.IntN(10); {
			case op < 6: // add
				mt := randomTraj(rng, g, vocab)
				id, err := d.Add(mt.samples, mt.keywords)
				if err != nil {
					t.Fatalf("seed %d step %d: Add: %v", seed, step, err)
				}
				live = append(live, mt)
				handles = append(handles, id)
			case op < 7 && len(handles) > 0: // remove
				i := rng.IntN(len(handles))
				if !d.Remove(handles[i]) {
					t.Fatalf("seed %d step %d: Remove(%d) said missing", seed, step, handles[i])
				}
				live = append(live[:i:i], live[i+1:]...)
				handles = append(handles[:i:i], handles[i+1:]...)
			default: // snapshot checkpoint
				snap, ids := d.Snapshot()
				if len(ids) != len(live) {
					t.Fatalf("seed %d step %d: snapshot has %d handles, want %d", seed, step, len(ids), len(live))
				}
				want := buildReference(t, g, vocab, live)
				requireStoresIdentical(t, "checkpoint", snap, want)
				pins = append(pins, pin{snap: snap, ref: append([]mirrorTraj(nil), live...)})
			}
		}

		// MVCC at the store layer: every pinned snapshot still matches
		// the reference of its own epoch, no matter what came after.
		for i, p := range pins {
			want := buildReference(t, g, vocab, p.ref)
			requireStoresIdentical(t, "pinned epoch", p.snap, want)
			_ = i
		}

		rebuilds, extensions := d.SnapshotStats()
		if rebuilds+extensions == 0 && len(pins) > 0 {
			t.Fatalf("seed %d: no snapshot work recorded across %d checkpoints", seed, len(pins))
		}
	}
}

// TestIncrementalExtensionIsUsed pins down the cost model: an add-only
// run of mutations between snapshots must take the extension path, and a
// removal must force exactly one full rebuild before extensions resume.
func TestIncrementalExtensionIsUsed(t *testing.T) {
	g := testGraph(t)
	vocab := textual.NewVocab()
	vocab.Intern("kw")
	d := NewDynamic(g, vocab)

	add := func(n int) []ExternalID {
		t.Helper()
		ids := make([]ExternalID, n)
		for i := range ids {
			id, err := d.Add([]Sample{{V: roadnet.VertexID(i % g.NumVertices()), T: float64(i)}}, vocab.InternAll([]string{"kw"}))
			if err != nil {
				t.Fatal(err)
			}
			ids[i] = id
		}
		return ids
	}

	add(5)
	d.Snapshot() // first snapshot: full rebuild
	if r, e := d.SnapshotStats(); r != 1 || e != 0 {
		t.Fatalf("after first snapshot: rebuilds=%d extensions=%d, want 1/0", r, e)
	}
	add(3)
	d.Snapshot() // add-only epoch: extension
	if r, e := d.SnapshotStats(); r != 1 || e != 1 {
		t.Fatalf("after add-only epoch: rebuilds=%d extensions=%d, want 1/1", r, e)
	}
	ids := add(2)
	d.Snapshot()
	if r, e := d.SnapshotStats(); r != 1 || e != 2 {
		t.Fatalf("after second add-only epoch: rebuilds=%d extensions=%d, want 1/2", r, e)
	}
	d.Remove(ids[0])
	d.Snapshot() // removal: full rebuild
	if r, e := d.SnapshotStats(); r != 2 || e != 2 {
		t.Fatalf("after removal epoch: rebuilds=%d extensions=%d, want 2/2", r, e)
	}
	add(1)
	d.Snapshot() // extensions resume on the rebuilt base
	if r, e := d.SnapshotStats(); r != 2 || e != 3 {
		t.Fatalf("after post-removal adds: rebuilds=%d extensions=%d, want 2/3", r, e)
	}
}

// TestDynamicFromStoreAdoptsSnapshot proves the boot path: seeding from
// an immutable store serves that exact store as the first snapshot
// (zero rebuild cost) and extends it incrementally from there.
func TestDynamicFromStoreAdoptsSnapshot(t *testing.T) {
	g := testGraph(t)
	svocab := textual.GenerateVocab(3, 8, 1, 11)
	seedStore, err := Generate(g, GenOptions{Count: 30, MeanSamples: 8, Vocab: svocab, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDynamicFromStore(seedStore)
	if d.Len() != seedStore.NumTrajectories() {
		t.Fatalf("seeded %d live, want %d", d.Len(), seedStore.NumTrajectories())
	}
	snap, ids := d.Snapshot()
	if snap != seedStore {
		t.Fatal("first snapshot is not the adopted seed store")
	}
	if r, e := d.SnapshotStats(); r != 0 || e != 0 {
		t.Fatalf("adoption cost: rebuilds=%d extensions=%d, want 0/0", r, e)
	}
	if len(ids) != seedStore.NumTrajectories() {
		t.Fatalf("%d snapshot handles, want %d", len(ids), seedStore.NumTrajectories())
	}
	if dense, ok := d.DenseID(ids[3]); !ok || dense != 3 {
		t.Fatalf("DenseID(%d) = %d,%v, want 3,true", ids[3], dense, ok)
	}

	// Extend on top of the adopted base and verify against an oracle
	// rebuilt from the seed's own records plus the new tail.
	var mirror []mirrorTraj
	for i := 0; i < seedStore.NumTrajectories(); i++ {
		tr := seedStore.Traj(TrajID(i))
		mirror = append(mirror, mirrorTraj{samples: tr.Samples, keywords: tr.Keywords})
	}
	extra := mirrorTraj{
		samples:  []Sample{{V: 1, T: 10}, {V: 2, T: 20}},
		keywords: seedStore.Vocab().InternAll([]string{"t0_kw0"}),
	}
	if _, err := d.Add(extra.samples, extra.keywords); err != nil {
		t.Fatal(err)
	}
	mirror = append(mirror, extra)
	grown, _ := d.Snapshot()
	if _, e := d.SnapshotStats(); e != 1 {
		t.Fatalf("extension not used on adopted base (extensions=%d)", e)
	}
	requireStoresIdentical(t, "adopted+extended", grown, buildReference(t, g, seedStore.Vocab(), mirror))
	// The adopted seed snapshot itself must be untouched.
	requireStoresIdentical(t, "seed after extension", seedStore, buildReference(t, g, seedStore.Vocab(), mirror[:len(mirror)-1]))
}
