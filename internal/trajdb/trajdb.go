// Package trajdb implements the trajectory-database substrate: the
// trajectory model (map-matched, timestamped sample sequences with textual
// attributes), an immutable in-memory store with the two access paths the
// UOTS engine needs — a vertex→trajectories inverted index for network
// expansion scanning and a keyword inverted index for textual scoring —
// plus a synthetic trip generator and binary serialization.
package trajdb

import (
	"errors"
	"fmt"
	"sort"

	"uots/internal/geo"
	"uots/internal/roadnet"
	"uots/internal/textual"
)

// TrajID identifies a trajectory in a Store. IDs are dense: a store with n
// trajectories uses IDs 0..n-1.
type TrajID int32

// SecondsPerDay is the length of the temporal domain. Timestamps are
// seconds of day in [0, SecondsPerDay): dates are dropped because daily
// commuting patterns repeat (the convention of this research line).
const SecondsPerDay = 24 * 60 * 60

// Sample is one map-matched trajectory point: a network vertex and the
// time of day it was visited, in seconds.
type Sample struct {
	V roadnet.VertexID
	T float64
}

// Trajectory is a finite time-ordered sequence of samples plus the trip's
// textual attributes. Between consecutive samples the object is assumed to
// follow a shortest path (the standard map-matched-trajectory model).
type Trajectory struct {
	ID       TrajID
	Samples  []Sample
	Keywords textual.TermSet
}

// Len returns the number of samples.
func (t *Trajectory) Len() int { return len(t.Samples) }

// Start returns the first sample's timestamp.
func (t *Trajectory) Start() float64 { return t.Samples[0].T }

// End returns the last sample's timestamp.
func (t *Trajectory) End() float64 { return t.Samples[len(t.Samples)-1].T }

// Duration returns End − Start in seconds.
func (t *Trajectory) Duration() float64 { return t.End() - t.Start() }

// Vertices returns the sample vertices in visit order (a fresh slice).
func (t *Trajectory) Vertices() []roadnet.VertexID {
	out := make([]roadnet.VertexID, len(t.Samples))
	for i, s := range t.Samples {
		out[i] = s.V
	}
	return out
}

// Errors reported by Builder.Add.
var (
	ErrNoSamples     = errors.New("trajdb: trajectory needs at least one sample")
	ErrVertexRange   = errors.New("trajdb: sample vertex out of graph range")
	ErrTimeOrder     = errors.New("trajdb: sample timestamps must be non-decreasing")
	ErrTimeRange     = errors.New("trajdb: sample timestamp outside [0, 86400)")
	ErrFrozenBuilder = errors.New("trajdb: builder already frozen")
)

// Builder accumulates trajectories and freezes them into a Store.
type Builder struct {
	g      *roadnet.Graph
	vocab  *textual.Vocab
	trajs  []Trajectory
	frozen bool
}

// NewBuilder returns a builder for trajectories on g. vocab is the keyword
// vocabulary used by AddWithKeywords; it may be nil when all trajectories
// are added with pre-interned term sets.
func NewBuilder(g *roadnet.Graph, vocab *textual.Vocab) *Builder {
	return &Builder{g: g, vocab: vocab}
}

// Count returns the number of trajectories added so far.
func (b *Builder) Count() int { return len(b.trajs) }

// ValidateSamples checks one trajectory's sample sequence against the
// store invariants: at least one sample, every vertex on the graph,
// timestamps non-decreasing within [0, SecondsPerDay). It is the exact
// rule set Builder.Add and DynamicStore.Add enforce, exported so write
// paths in front of the store (the ingest batcher) can reject bad input
// before queueing it.
func ValidateSamples(g *roadnet.Graph, samples []Sample) error {
	if len(samples) == 0 {
		return ErrNoSamples
	}
	n := roadnet.VertexID(g.NumVertices())
	prev := -1.0
	for i, s := range samples {
		if s.V < 0 || s.V >= n {
			return fmt.Errorf("%w: sample %d has vertex %d (graph has %d)", ErrVertexRange, i, s.V, n)
		}
		if s.T < 0 || s.T >= SecondsPerDay {
			return fmt.Errorf("%w: sample %d has t=%g", ErrTimeRange, i, s.T)
		}
		if s.T < prev {
			return fmt.Errorf("%w: sample %d has t=%g after %g", ErrTimeOrder, i, s.T, prev)
		}
		prev = s.T
	}
	return nil
}

// Add validates and appends a trajectory with an already-interned keyword
// set, returning its assigned ID.
func (b *Builder) Add(samples []Sample, keywords textual.TermSet) (TrajID, error) {
	if b.frozen {
		return -1, ErrFrozenBuilder
	}
	if err := ValidateSamples(b.g, samples); err != nil {
		return -1, err
	}
	id := TrajID(len(b.trajs))
	b.trajs = append(b.trajs, Trajectory{
		ID:       id,
		Samples:  append([]Sample(nil), samples...),
		Keywords: keywords,
	})
	return id, nil
}

// AddWithKeywords interns the keyword strings through the builder's vocab
// and appends the trajectory. It requires a non-nil vocab.
func (b *Builder) AddWithKeywords(samples []Sample, keywords []string) (TrajID, error) {
	if b.vocab == nil {
		return -1, errors.New("trajdb: AddWithKeywords requires a vocabulary")
	}
	return b.Add(samples, b.vocab.InternAll(keywords))
}

// Freeze builds the vertex and keyword indexes and returns the immutable
// Store. The builder must not be used afterwards.
func (b *Builder) Freeze() *Store {
	b.frozen = true
	s := &Store{
		g:        b.g,
		vocab:    b.vocab,
		trajs:    b.trajs,
		vertexIx: make([][]TrajID, b.g.NumVertices()),
		vertsOf:  make([][]int32, len(b.trajs)),
		textIx:   textual.NewIndex(),
	}
	for i := range s.trajs {
		t := &s.trajs[i]
		uniq, box := trajIndexEntry(b.g, t.Samples)
		s.vertsOf[i] = uniq
		for _, v := range uniq {
			s.vertexIx[v] = append(s.vertexIx[v], TrajID(i))
		}
		s.bboxes = append(s.bboxes, box)
		s.textIx.Add(textual.DocID(i), t.Keywords)
		s.totalSamples += len(t.Samples)
	}
	s.textIx.Freeze()
	return s
}

// trajIndexEntry derives one trajectory's per-store index data: the
// sorted unique vertex list (membership tests) and the planar bounding
// box of its samples. Freeze and the incremental snapshot extension
// must derive these identically, so the logic lives in one place.
func trajIndexEntry(g *roadnet.Graph, samples []Sample) ([]int32, geo.Rect) {
	vs := make([]int32, len(samples))
	for j, smp := range samples {
		vs[j] = int32(smp.V)
	}
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
	uniq := vs[:1]
	for _, v := range vs[1:] {
		if v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	box := geo.EmptyRect()
	for _, v := range uniq {
		box = box.ExtendPoint(g.Point(roadnet.VertexID(v)))
	}
	return uniq, box
}

// Store is an immutable trajectory database over one road network.
// It is safe for concurrent use.
type Store struct {
	g            *roadnet.Graph
	vocab        *textual.Vocab
	trajs        []Trajectory
	vertexIx     [][]TrajID // ascending trajectory IDs per vertex
	vertsOf      [][]int32  // ascending unique vertices per trajectory
	bboxes       []geo.Rect // bounding box of each trajectory's samples
	textIx       *textual.Index
	totalSamples int
}

// BBox returns the planar bounding rectangle of trajectory id's samples —
// the goal summary used by targeted (A*) distance queries.
func (s *Store) BBox(id TrajID) geo.Rect { return s.bboxes[id] }

// Graph returns the road network the trajectories live on.
func (s *Store) Graph() *roadnet.Graph { return s.g }

// Vocab returns the keyword vocabulary (nil if the store was built without
// one).
func (s *Store) Vocab() *textual.Vocab { return s.vocab }

// NumTrajectories returns the number of trajectories.
func (s *Store) NumTrajectories() int { return len(s.trajs) }

// TotalSamples returns the total sample count across all trajectories.
func (s *Store) TotalSamples() int { return s.totalSamples }

// AvgSamples returns the mean trajectory length in samples.
func (s *Store) AvgSamples() float64 {
	if len(s.trajs) == 0 {
		return 0
	}
	return float64(s.totalSamples) / float64(len(s.trajs))
}

// Traj returns the trajectory with the given ID. The result must not be
// modified.
func (s *Store) Traj(id TrajID) *Trajectory { return &s.trajs[id] }

// TrajsAtVertex returns the ascending list of trajectories that contain
// vertex v as a sample point — the inverted list scanned during network
// expansion. The result aliases the store's internal posting list, which
// an MVCC snapshot extension may share with every other generation of
// the store: it sits on the expansion hot path and is returned without a
// copy, so the caller must not modify it (an in-place sort or append
// would corrupt all generations at once). Callers that need to retain or
// reorder it must copy first; TestAliasedSliceContracts pins the
// aliasing so a silent contract change fails loudly.
func (s *Store) TrajsAtVertex(v roadnet.VertexID) []TrajID { return s.vertexIx[v] }

// ContainsVertex reports whether trajectory id has v among its samples.
func (s *Store) ContainsVertex(id TrajID, v roadnet.VertexID) bool {
	vs := s.vertsOf[id]
	i := sort.Search(len(vs), func(i int) bool { return vs[i] >= int32(v) })
	return i < len(vs) && vs[i] == int32(v)
}

// UniqueVertices returns the ascending unique vertex IDs of trajectory id.
// The result must not be modified.
func (s *Store) UniqueVertices(id TrajID) []roadnet.VertexID {
	vs := s.vertsOf[id]
	out := make([]roadnet.VertexID, len(vs))
	for i, v := range vs {
		out[i] = roadnet.VertexID(v)
	}
	return out
}

// TextIndex returns the keyword inverted index (DocID == TrajID).
func (s *Store) TextIndex() *textual.Index { return s.textIx }

// Keywords returns the keyword set of trajectory id. Like TrajsAtVertex
// it returns the internal slice without a copy (per-candidate scoring
// path): the result is shared with the text index and with every MVCC
// generation of this store, and must not be modified.
func (s *Store) Keywords(id TrajID) textual.TermSet { return s.trajs[id].Keywords }

// Stats summarizes a store for logging and experiment tables.
type Stats struct {
	Trajectories  int
	TotalSamples  int
	AvgSamples    float64
	AvgKeywords   float64
	VertexesTouch int // vertices with at least one trajectory
}

// Stats computes summary statistics.
func (s *Store) Stats() Stats {
	st := Stats{
		Trajectories: len(s.trajs),
		TotalSamples: s.totalSamples,
		AvgSamples:   s.AvgSamples(),
	}
	var kw int
	for i := range s.trajs {
		kw += len(s.trajs[i].Keywords)
	}
	if len(s.trajs) > 0 {
		st.AvgKeywords = float64(kw) / float64(len(s.trajs))
	}
	for _, l := range s.vertexIx {
		if len(l) > 0 {
			st.VertexesTouch++
		}
	}
	return st
}
