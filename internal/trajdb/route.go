package trajdb

import (
	"fmt"

	"uots/internal/roadnet"
)

// ReconstructRoute expands a trajectory's sample sequence into the full
// vertex path it implies under the map-matched-trajectory model (between
// consecutive samples the object follows a shortest path). The result
// starts at the first sample, visits every sample in order, and its
// length (km) is returned alongside. Consecutive identical samples
// collapse. An error is returned when two consecutive samples are
// disconnected in the network.
//
// The bidir workspace is reused across segments; pass nil to allocate one
// internally (callers reconstructing many routes should share one, but a
// shared workspace is not safe for concurrent use).
func ReconstructRoute(g *roadnet.Graph, t *Trajectory, bidir *roadnet.Bidirectional) ([]roadnet.VertexID, float64, error) {
	if t.Len() == 0 {
		return nil, 0, fmt.Errorf("trajdb: trajectory %d has no samples", t.ID)
	}
	if bidir == nil {
		bidir = roadnet.NewBidirectional(g)
	}
	route := []roadnet.VertexID{t.Samples[0].V}
	var total float64
	for i := 1; i < t.Len(); i++ {
		from, to := t.Samples[i-1].V, t.Samples[i].V
		if from == to {
			continue
		}
		seg, dist, ok := bidir.Path(from, to)
		if !ok {
			return nil, 0, fmt.Errorf("trajdb: trajectory %d: samples %d and %d are disconnected (%d → %d)",
				t.ID, i-1, i, from, to)
		}
		route = append(route, seg[1:]...)
		total += dist
	}
	return route, total, nil
}
