package trajdb

import (
	"errors"
	"sync"

	"uots/internal/roadnet"
	"uots/internal/textual"
)

// ExternalID is the stable handle a DynamicStore assigns to a trajectory.
// Unlike TrajID it survives deletions: dense TrajIDs are reassigned per
// snapshot, external handles never move.
type ExternalID int64

// DynamicStore is a mutable trajectory collection: trajectories can be
// added and removed at any time, and queries run against immutable dense
// snapshots (the engine requires dense IDs and frozen indexes). Snapshots
// are maintained incrementally for add-only mutation epochs — the common
// shape of a live ingest stream — by extending the previous snapshot's
// indexes with just the new trajectories (Store.extendWith), and fall
// back to the O(live) full rebuild after a removal. Either way a snapshot
// is built lazily on the first read after a mutation burst and cached
// until the next mutation.
//
// DynamicStore is safe for concurrent use.
type DynamicStore struct {
	g     *roadnet.Graph
	vocab *textual.Vocab

	mu     sync.Mutex
	live   map[ExternalID]*Trajectory // keyed by external handle
	order  []ExternalID               // insertion order of live handles
	nextID ExternalID
	gen    uint64 // bumped on every mutation; keys snapshot-scoped caches

	snap     *Store
	snapIDs  []ExternalID // dense TrajID → external handle for snap
	snapKeep map[ExternalID]TrajID

	// Incremental-maintenance state: the most recently built snapshot
	// stays around as the extension base, with the handles added since it
	// was built. A removal clears both (full rebuild required).
	base    *Store
	baseIDs []ExternalID
	pending []ExternalID // adds since base, in insertion order

	rebuilds   uint64 // full snapshot rebuilds performed
	extensions uint64 // incremental snapshot extensions performed
}

// NewDynamic returns an empty dynamic store over g. vocab may be nil when
// keywords are pre-interned.
func NewDynamic(g *roadnet.Graph, vocab *textual.Vocab) *DynamicStore {
	return &DynamicStore{
		g:     g,
		vocab: vocab,
		live:  make(map[ExternalID]*Trajectory),
	}
}

// NewDynamicFromStore seeds a dynamic store with the live set of an
// immutable store — the boot path of a serving process that loads a
// static corpus and then ingests on top of it. The trajectories are
// trusted (they were validated when s was built or deserialized) and are
// not copied; s must not be mutated afterwards, which Store's own
// immutability already guarantees. Handles are assigned in dense-ID
// order, so the first snapshot assigns every trajectory its original ID.
func NewDynamicFromStore(s *Store) *DynamicStore {
	d := NewDynamic(s.g, s.vocab)
	ids := make([]ExternalID, len(s.trajs))
	for i := range s.trajs {
		t := &s.trajs[i]
		id := d.nextID
		d.nextID++
		d.live[id] = &Trajectory{Samples: t.Samples, Keywords: t.Keywords}
		d.order = append(d.order, id)
		ids[i] = id
	}
	d.gen++ // the seed is a mutation: generation 0 stays "fresh empty store"
	// s already is the dense snapshot of this live set (handles were
	// assigned in dense-ID order), so adopt it instead of rebuilding:
	// the first snapshot read costs nothing and later add-only epochs
	// extend it incrementally.
	d.snap, d.snapIDs = s, ids
	d.base, d.baseIDs = s, ids
	d.snapKeep = make(map[ExternalID]TrajID, len(ids))
	for dense, ext := range ids {
		d.snapKeep[ext] = TrajID(dense)
	}
	return d
}

// Graph returns the road network the store's trajectories live on.
func (d *DynamicStore) Graph() *roadnet.Graph { return d.g }

// Vocab returns the store's vocabulary (nil when keywords are
// pre-interned by the caller).
func (d *DynamicStore) Vocab() *textual.Vocab { return d.vocab }

// Len returns the number of live trajectories.
func (d *DynamicStore) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.live)
}

// Add validates and inserts a trajectory, returning its stable handle.
func (d *DynamicStore) Add(samples []Sample, keywords textual.TermSet) (ExternalID, error) {
	// Validate through a throwaway builder so the rules stay in one place.
	b := NewBuilder(d.g, d.vocab)
	if _, err := b.Add(samples, keywords); err != nil {
		return -1, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextID
	d.nextID++
	d.live[id] = &Trajectory{
		Samples:  append([]Sample(nil), samples...),
		Keywords: keywords,
	}
	d.order = append(d.order, id)
	d.noteAdd(id)
	return id, nil
}

// AddWithKeywords interns the keywords through the store's vocabulary.
func (d *DynamicStore) AddWithKeywords(samples []Sample, keywords []string) (ExternalID, error) {
	if d.vocab == nil {
		return -1, errors.New("trajdb: AddWithKeywords requires a vocabulary")
	}
	return d.Add(samples, d.vocab.InternAll(keywords))
}

// Remove deletes a trajectory by handle, reporting whether it existed.
func (d *DynamicStore) Remove(id ExternalID) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.live[id]; !ok {
		return false
	}
	delete(d.live, id)
	d.invalidate()
	return true
}

// Get returns a live trajectory by handle. The result must not be
// modified.
func (d *DynamicStore) Get(id ExternalID) (*Trajectory, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	t, ok := d.live[id]
	return t, ok
}

// noteAdd records an addition: the cached snapshot is dropped (the next
// read rebuilds lazily, and DenseID must answer false until it does) but
// kept as the extension base so that read can extend it with just the
// pending tail instead of rebuilding from scratch. Callers hold d.mu.
func (d *DynamicStore) noteAdd(id ExternalID) {
	d.gen++
	if d.snap != nil {
		d.base, d.baseIDs = d.snap, d.snapIDs
	}
	d.snap, d.snapIDs, d.snapKeep = nil, nil, nil
	if d.base != nil {
		d.pending = append(d.pending, id)
	}
}

// invalidate drops the cached snapshot, the extension base, and advances
// the generation — the removal path, where dense IDs shift and only a
// full rebuild restores them. Callers hold d.mu.
func (d *DynamicStore) invalidate() {
	d.gen++
	d.snap = nil
	d.snapIDs = nil
	d.snapKeep = nil
	d.base = nil
	d.baseIDs = nil
	d.pending = nil
}

// Generation returns a counter that advances on every mutation (Add or
// Remove). Two equal generations bracket an unchanged live set, so any
// value derived from a snapshot — search results, partition layouts —
// may be cached under the generation it was computed at and dropped the
// moment the generation moves on. A fresh store is at generation 0.
func (d *DynamicStore) Generation() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.gen
}

// Snapshot returns an immutable dense store of the current live set plus
// the dense-ID→handle mapping, rebuilding only when the store mutated
// since the previous call. The snapshot remains valid (and consistent)
// after further mutations; only its contents are frozen in time.
func (d *DynamicStore) Snapshot() (*Store, []ExternalID) {
	snap, ids, _ := d.SnapshotGen()
	return snap, ids
}

// SnapshotGen is Snapshot plus the generation the snapshot belongs to,
// read atomically with the snapshot itself (reading Generation after
// Snapshot could observe a concurrent mutation's bump and mislabel the
// older snapshot). Callers keying caches by generation must use this.
func (d *DynamicStore) SnapshotGen() (*Store, []ExternalID, uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snap != nil {
		return d.snap, d.snapIDs, d.gen
	}
	if d.base != nil {
		// Only additions since the base snapshot: extend it with the
		// pending tail. Dense IDs are insertion-ordered in both paths, so
		// the extension is byte-identical to the rebuild it replaces
		// (property-tested in TestIncrementalSnapshotMatchesRebuild).
		trajs := make([]*Trajectory, len(d.pending))
		for i, id := range d.pending {
			trajs[i] = d.live[id]
		}
		d.snap = d.base.extendWith(trajs)
		d.snapIDs = append(append(make([]ExternalID, 0, len(d.baseIDs)+len(d.pending)), d.baseIDs...), d.pending...)
		d.extensions++
	} else {
		b := NewBuilder(d.g, d.vocab)
		ids := make([]ExternalID, 0, len(d.live))
		compact := d.order[:0]
		for _, id := range d.order {
			t, ok := d.live[id]
			if !ok {
				continue // removed
			}
			compact = append(compact, id)
			if _, err := b.Add(t.Samples, t.Keywords); err != nil {
				// Add validated these samples when they entered the store;
				// failure here means internal corruption. Panic with the
				// typed payload so engine entry points surface it as
				// ErrStoreFault instead of crashing the process.
				panic(&StoreError{Op: "snapshot", ID: TrajID(len(ids)), Err: err})
			}
			ids = append(ids, id)
		}
		d.order = compact
		d.snap = b.Freeze()
		d.snapIDs = ids
		d.rebuilds++
	}
	d.base, d.baseIDs, d.pending = d.snap, d.snapIDs, nil
	d.snapKeep = make(map[ExternalID]TrajID, len(d.snapIDs))
	for dense, ext := range d.snapIDs {
		d.snapKeep[ext] = TrajID(dense)
	}
	return d.snap, d.snapIDs, d.gen
}

// SnapshotStats reports how snapshots have been maintained so far: full
// O(live) rebuilds vs incremental add-only extensions. Exposed for the
// ingest stats surface and the equivalence tests.
func (d *DynamicStore) SnapshotStats() (rebuilds, extensions uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rebuilds, d.extensions
}

// DenseID translates a handle into the dense TrajID of the most recent
// snapshot. ok is false when the handle is not live or no snapshot has
// been taken since the last mutation.
func (d *DynamicStore) DenseID(id ExternalID) (TrajID, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.snapKeep == nil {
		return -1, false
	}
	dense, ok := d.snapKeep[id]
	return dense, ok
}
