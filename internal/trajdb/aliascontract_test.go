package trajdb

import (
	"testing"

	"uots/internal/textual"
)

// TestAliasedSliceContracts pins the documented aliasing contracts of the
// two hot-path accessors that return internal slices without a copy:
// TrajsAtVertex (expansion scan) and Keywords (per-candidate scoring).
// Both are shared across MVCC snapshot extensions, so a caller mutating
// either would corrupt every generation at once — the accessors' doc
// comments forbid it, and this test makes the sharing itself observable
// so a silent change to the contract (either direction: an accidental
// defensive copy on the hot path, or the extension ceasing to share)
// fails loudly and gets decided on purpose.
func TestAliasedSliceContracts(t *testing.T) {
	g := testGraph(t)
	vocab := textual.NewVocab()
	d := NewDynamic(g, vocab)

	if _, err := d.AddWithKeywords([]Sample{{V: 1, T: 100}, {V: 2, T: 200}}, []string{"food"}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddWithKeywords([]Sample{{V: 3, T: 300}}, []string{"art"}); err != nil {
		t.Fatal(err)
	}
	base, _ := d.Snapshot()

	// The accessors alias the store's internals — no copy on the hot path.
	if got := base.TrajsAtVertex(1); len(got) == 0 || &got[0] != &base.vertexIx[1][0] {
		t.Fatal("TrajsAtVertex no longer aliases the internal posting list")
	}
	if got := base.Keywords(0); len(got) == 0 || &got[0] != &base.trajs[0].Keywords[0] {
		t.Fatal("Keywords no longer aliases the internal term set")
	}

	// Extend the live set so the next snapshot takes the add-only path.
	if _, err := d.AddWithKeywords([]Sample{{V: 3, T: 500}, {V: 4, T: 600}}, []string{"food"}); err != nil {
		t.Fatal(err)
	}
	ext, _ := d.Snapshot()
	if _, extensions := d.SnapshotStats(); extensions == 0 {
		t.Fatal("second snapshot did not take the extension fast path")
	}

	// Posting lists for vertices the new trajectory never touches are
	// shared between generations...
	if bl, el := base.TrajsAtVertex(1), ext.TrajsAtVertex(1); &bl[0] != &el[0] {
		t.Error("untouched posting list not shared across snapshot extension")
	}
	// ...while touched ones are unshared before the append, so the old
	// generation cannot observe the new trajectory.
	bl, el := base.TrajsAtVertex(3), ext.TrajsAtVertex(3)
	if &bl[0] == &el[0] {
		t.Error("extension appended to a posting list the old generation can see")
	}
	if len(bl) != 1 || len(el) != 2 {
		t.Errorf("posting lengths: base %d (want 1), ext %d (want 2)", len(bl), len(el))
	}

	// Keyword term sets are shared across generations too (the extension
	// copies trajectory headers, not payloads).
	if bk, ek := base.Keywords(0), ext.Keywords(0); &bk[0] != &ek[0] {
		t.Error("keyword term set not shared across snapshot extension")
	}
}
