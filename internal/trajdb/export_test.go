package trajdb

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"uots/internal/textual"
)

func TestCSVRoundTrip(t *testing.T) {
	g := testGraph(t)
	vocab := textual.GenerateVocab(3, 12, 1, 5)
	db, err := Generate(g, GenOptions{Count: 40, MeanSamples: 10, Vocab: vocab, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportCSV(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ImportCSV(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrajectories() != db.NumTrajectories() {
		t.Fatalf("count %d vs %d", got.NumTrajectories(), db.NumTrajectories())
	}
	for id := 0; id < db.NumTrajectories(); id++ {
		a, b := db.Traj(TrajID(id)), got.Traj(TrajID(id))
		if a.Len() != b.Len() {
			t.Fatalf("traj %d length", id)
		}
		for i := range a.Samples {
			if a.Samples[i].V != b.Samples[i].V {
				t.Fatalf("traj %d sample %d vertex", id, i)
			}
			// Times round through 3 decimal places.
			if diff := a.Samples[i].T - b.Samples[i].T; diff > 0.001 || diff < -0.001 {
				t.Fatalf("traj %d sample %d time %g vs %g", id, i, a.Samples[i].T, b.Samples[i].T)
			}
		}
		if len(a.Keywords) != len(b.Keywords) {
			t.Fatalf("traj %d keywords %d vs %d", id, len(a.Keywords), len(b.Keywords))
		}
		// Keyword strings survive (IDs may be renumbered).
		aName := keywordStrings(db, TrajID(id))
		bName := keywordStrings(got, TrajID(id))
		if aName != bName {
			t.Fatalf("traj %d keywords %q vs %q", id, aName, bName)
		}
	}
}

func keywordStrings(s *Store, id TrajID) string {
	var names []string
	for _, k := range s.Keywords(id) {
		if n, ok := s.Vocab().Term(k); ok {
			names = append(names, n)
		}
	}
	// Keywords are sorted by TermID which differs across vocabularies;
	// normalize by sorting strings.
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	return strings.Join(names, "|")
}

func TestImportCSVRejectsBadInput(t *testing.T) {
	g := testGraph(t)
	cases := []struct{ name, csv string }{
		{"bad header", "a,b,c,d,e\n"},
		{"bad seq", "traj_id,seq,vertex,time_seconds,keywords\n0,x,1,0,\n"},
		{"bad vertex", "traj_id,seq,vertex,time_seconds,keywords\n0,0,x,0,\n"},
		{"bad time", "traj_id,seq,vertex,time_seconds,keywords\n0,0,1,x,\n"},
		{"seq gap", "traj_id,seq,vertex,time_seconds,keywords\n0,0,1,0,\n0,2,1,5,\n"},
		{"vertex range", "traj_id,seq,vertex,time_seconds,keywords\n0,0,99999,0,\n"},
		{"short row", "traj_id,seq,vertex,time_seconds,keywords\n0,0,1\n"},
	}
	for _, c := range cases {
		if _, err := ImportCSV(strings.NewReader(c.csv), g); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestExportGeoJSON(t *testing.T) {
	g := testGraph(t)
	vocab := textual.GenerateVocab(2, 8, 1, 7)
	db, err := Generate(g, GenOptions{Count: 10, MeanSamples: 8, Vocab: vocab, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportGeoJSON(&buf, db, 0, 3); err != nil {
		t.Fatal(err)
	}
	var fc struct {
		Type     string `json:"type"`
		Features []struct {
			Type     string `json:"type"`
			Geometry struct {
				Type        string       `json:"type"`
				Coordinates [][2]float64 `json:"coordinates"`
			} `json:"geometry"`
			Properties map[string]any `json:"properties"`
		} `json:"features"`
	}
	if err := json.Unmarshal(buf.Bytes(), &fc); err != nil {
		t.Fatal(err)
	}
	if fc.Type != "FeatureCollection" || len(fc.Features) != 2 {
		t.Fatalf("collection = %s with %d features", fc.Type, len(fc.Features))
	}
	f := fc.Features[0]
	if f.Geometry.Type != "LineString" {
		t.Errorf("geometry = %s", f.Geometry.Type)
	}
	if len(f.Geometry.Coordinates) != db.Traj(0).Len() {
		t.Errorf("coordinates %d, want %d", len(f.Geometry.Coordinates), db.Traj(0).Len())
	}
	if int(f.Properties["id"].(float64)) != 0 {
		t.Errorf("id property = %v", f.Properties["id"])
	}
	if _, ok := f.Properties["keywords"]; !ok {
		t.Error("keywords property missing")
	}
	// Whole-store export.
	buf.Reset()
	if err := ExportGeoJSON(&buf, db); err != nil {
		t.Fatal(err)
	}
	// Out-of-range id.
	if err := ExportGeoJSON(&buf, db, 999); err == nil {
		t.Error("out-of-range id accepted")
	}
}
