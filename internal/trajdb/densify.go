package trajdb

import (
	"fmt"

	"uots/internal/roadnet"
)

// Densify rebuilds a store with every trajectory's implied route made
// explicit: between consecutive samples the map-matched model assumes
// shortest-path travel, so the intermediate route vertices are inserted as
// samples with distance-proportional interpolated timestamps. Searches
// over a densified corpus measure distances to the *route*, not just to
// the recorded sample points — the most faithful reading of the
// trajectory model, at the cost of larger indexes (route-length × corpus
// memory).
//
// Trajectories whose consecutive samples are disconnected are copied
// unchanged (there is no route to make explicit).
func Densify(s *Store) (*Store, error) {
	b := NewBuilder(s.g, s.vocab)
	bidir := roadnet.NewBidirectional(s.g)
	for id := 0; id < s.NumTrajectories(); id++ {
		t := s.Traj(TrajID(id))
		dense, err := densifyOne(s.g, bidir, t)
		if err != nil {
			return nil, fmt.Errorf("trajdb: densifying trajectory %d: %w", id, err)
		}
		if _, err := b.Add(dense, t.Keywords); err != nil {
			return nil, fmt.Errorf("trajdb: densifying trajectory %d: %w", id, err)
		}
	}
	return b.Freeze(), nil
}

func densifyOne(g *roadnet.Graph, bidir *roadnet.Bidirectional, t *Trajectory) ([]Sample, error) {
	out := make([]Sample, 1, t.Len()*2)
	out[0] = t.Samples[0]
	for i := 1; i < t.Len(); i++ {
		prev, cur := t.Samples[i-1], t.Samples[i]
		if prev.V == cur.V {
			out = append(out, cur)
			continue
		}
		path, total, ok := bidir.Path(prev.V, cur.V)
		if !ok || total == 0 {
			out = append(out, cur) // disconnected or degenerate: keep as is
			continue
		}
		// Interpolate times along the path proportionally to distance.
		elapsed := cur.T - prev.T
		acc := 0.0
		for j := 1; j < len(path)-1; j++ {
			w, okW := g.EdgeWeight(path[j-1], path[j])
			if !okW {
				return nil, fmt.Errorf("route uses nonexistent edge {%d,%d}", path[j-1], path[j])
			}
			acc += w
			out = append(out, Sample{V: path[j], T: prev.T + elapsed*acc/total})
		}
		out = append(out, cur)
	}
	return out, nil
}
