package trajdb

import (
	"bytes"
	"strings"
	"testing"

	"uots/internal/roadnet"
	"uots/internal/textual"
)

func fuzzGraph(f *testing.F) *roadnet.Graph {
	f.Helper()
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 6, Cols: 6, Style: roadnet.StyleDense, Seed: 2,
	})
	if err != nil {
		f.Fatal(err)
	}
	return g
}

// FuzzReadStore asserts the binary store reader never panics: arbitrary
// bytes either parse into a valid store or error out.
func FuzzReadStore(f *testing.F) {
	g := fuzzGraph(f)
	vocab := textual.GenerateVocab(2, 6, 1, 1)
	db, err := Generate(g, GenOptions{Count: 8, MeanSamples: 5, Vocab: vocab, Seed: 3})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStore(&buf, db); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)*2/3])
	f.Add([]byte(trajMagic))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	mutated[len(mutated)-3] ^= 0x7F
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadStore(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		// A parsed store must satisfy its invariants.
		for id := 0; id < got.NumTrajectories(); id++ {
			tr := got.Traj(TrajID(id))
			if tr.Len() == 0 {
				t.Fatal("parsed trajectory has no samples")
			}
			prev := -1.0
			for _, s := range tr.Samples {
				if int(s.V) >= g.NumVertices() || s.V < 0 {
					t.Fatalf("sample vertex %d out of range", s.V)
				}
				if s.T < prev {
					t.Fatal("sample times not monotone")
				}
				prev = s.T
			}
		}
	})
}

// FuzzImportCSV asserts the CSV importer never panics on arbitrary text.
func FuzzImportCSV(f *testing.F) {
	g := fuzzGraph(f)
	db, err := Generate(g, GenOptions{Count: 4, MeanSamples: 4, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ExportCSV(&buf, db); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("traj_id,seq,vertex,time_seconds,keywords\n0,0,1,0,\n")
	f.Add("traj_id,seq,vertex,time_seconds,keywords\n")
	f.Add("")
	f.Add("garbage\nmore garbage")
	f.Add("traj_id,seq,vertex,time_seconds,keywords\n0,0,999999,0,\n")

	f.Fuzz(func(t *testing.T, data string) {
		got, err := ImportCSV(strings.NewReader(data), g)
		if err != nil {
			return
		}
		for id := 0; id < got.NumTrajectories(); id++ {
			if got.Traj(TrajID(id)).Len() == 0 {
				t.Fatal("imported trajectory has no samples")
			}
		}
	})
}
