package trajdb

import (
	"testing"

	"uots/internal/roadnet"
	"uots/internal/textual"
)

func benchStore(b *testing.B) *Store {
	b.Helper()
	g := roadnet.NRNLike(0.1, 2)
	vocab := textual.GenerateVocab(8, 60, 1, 3)
	db, err := Generate(g, GenOptions{Count: 10000, MeanSamples: 40, Vocab: vocab, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	return db
}

func BenchmarkGenerateCorpus(b *testing.B) {
	g := roadnet.NRNLike(0.1, 2)
	vocab := textual.GenerateVocab(8, 60, 1, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(g, GenOptions{Count: 2000, MeanSamples: 40, Vocab: vocab, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrajsAtVertex(b *testing.B) {
	db := benchStore(b)
	n := db.Graph().NumVertices()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.TrajsAtVertex(roadnet.VertexID(i % n))
	}
}

func BenchmarkContainsVertex(b *testing.B) {
	db := benchStore(b)
	n := db.Graph().NumVertices()
	t := db.NumTrajectories()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.ContainsVertex(TrajID(i%t), roadnet.VertexID(i%n))
	}
}
