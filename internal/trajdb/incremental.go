package trajdb

import (
	"uots/internal/geo"
	"uots/internal/textual"
)

// extendWith returns a new immutable Store covering s's trajectories
// plus trajs appended densely after them, leaving s untouched: queries
// pinned to s keep a consistent view while new snapshots serve the
// grown corpus. This is the add-only fast path of DynamicStore snapshot
// maintenance — O(new work + sharing bookkeeping) instead of the
// O(live) full rebuild: the outer index slices are copied (pointer
// copies), but per-vertex posting lists and text-index postings are
// shared with s except where a new trajectory actually touches them,
// and those are copied before being appended to so neither store can
// observe the other's writes.
//
// trajs must already satisfy the Builder.Add invariants (ValidateSamples
// plus interned keywords); DynamicStore guarantees that because every
// trajectory was validated when it entered the live set.
func (s *Store) extendWith(trajs []*Trajectory) *Store {
	n := len(s.trajs)
	next := &Store{
		g:            s.g,
		vocab:        s.vocab,
		trajs:        make([]Trajectory, n, n+len(trajs)),
		vertexIx:     make([][]TrajID, len(s.vertexIx)),
		vertsOf:      make([][]int32, n, n+len(trajs)),
		bboxes:       make([]geo.Rect, n, n+len(trajs)),
		totalSamples: s.totalSamples,
	}
	copy(next.trajs, s.trajs)
	copy(next.vertexIx, s.vertexIx)
	copy(next.vertsOf, s.vertsOf)
	copy(next.bboxes, s.bboxes)

	copied := make(map[int32]bool) // vertices whose posting list is already unshared
	termSets := make([]textual.TermSet, 0, len(trajs))
	for _, t := range trajs {
		id := TrajID(len(next.trajs))
		next.trajs = append(next.trajs, Trajectory{
			ID:       id,
			Samples:  append([]Sample(nil), t.Samples...),
			Keywords: t.Keywords,
		})
		uniq, box := trajIndexEntry(s.g, t.Samples)
		next.vertsOf = append(next.vertsOf, uniq)
		next.bboxes = append(next.bboxes, box)
		for _, v := range uniq {
			if !copied[v] {
				next.vertexIx[v] = append(make([]TrajID, 0, len(next.vertexIx[v])+1), next.vertexIx[v]...)
				copied[v] = true
			}
			next.vertexIx[v] = append(next.vertexIx[v], id)
		}
		next.totalSamples += len(t.Samples)
		termSets = append(termSets, t.Keywords)
	}
	next.textIx = s.textIx.Extend(termSets)
	return next
}
