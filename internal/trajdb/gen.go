package trajdb

import (
	"fmt"
	"math"
	"math/rand/v2"

	"uots/internal/geo"
	"uots/internal/roadnet"
	"uots/internal/textual"
)

// PathMode selects how the generator routes each synthetic trip.
type PathMode int

const (
	// ModeBiasedWalk routes trips with a destination-directed random walk:
	// O(length) per trip, realistic-looking paths, the default for large
	// corpora.
	ModeBiasedWalk PathMode = iota
	// ModeShortestPath routes trips along exact shortest paths (A*).
	// Slower but gives perfectly rational trips; use for small corpora and
	// tests.
	ModeShortestPath
)

// GenOptions parameterizes Generate.
type GenOptions struct {
	Count       int                     // number of trajectories
	MeanSamples int                     // target mean samples per trajectory (default 72, the BRN figure)
	Mode        PathMode                // routing strategy
	Vocab       *textual.SyntheticVocab // keyword universe; nil disables keywords
	KeywordsMin int                     // keywords per trip, uniform in [Min, Max] (defaults 3..8)
	KeywordsMax int
	TopicFocus  float64 // probability a keyword comes from the destination's topic (default 0.8)
	MinSpeedKmh float64 // per-trip speed drawn uniformly from [Min, Max] (defaults 20..50)
	MaxSpeedKmh float64
	Seed        uint64
}

func (o *GenOptions) applyDefaults() {
	if o.MeanSamples <= 1 {
		o.MeanSamples = 72
	}
	if o.KeywordsMin <= 0 {
		o.KeywordsMin = 3
	}
	if o.KeywordsMax < o.KeywordsMin {
		o.KeywordsMax = o.KeywordsMin + 5
	}
	if o.TopicFocus <= 0 || o.TopicFocus > 1 {
		o.TopicFocus = 0.8
	}
	if o.MinSpeedKmh <= 0 {
		o.MinSpeedKmh = 20
	}
	if o.MaxSpeedKmh < o.MinSpeedKmh {
		o.MaxSpeedKmh = o.MinSpeedKmh + 30
	}
}

// Generate synthesizes a trajectory corpus on g. Trips start at random
// vertices, head toward region-biased destinations, and carry keywords
// drawn mostly from the destination region's topic, giving the corpus the
// spatial–textual correlation that makes the preference parameter λ
// meaningful. Timestamps follow per-trip speeds over true edge lengths,
// with departure times spread over the day.
func Generate(g *roadnet.Graph, opts GenOptions) (*Store, error) {
	if opts.Count < 0 {
		return nil, fmt.Errorf("trajdb: negative trajectory count %d", opts.Count)
	}
	opts.applyDefaults()
	rng := rand.New(rand.NewPCG(opts.Seed, opts.Seed^0xa0761d6478bd642f))

	var vocab *textual.Vocab
	if opts.Vocab != nil {
		vocab = opts.Vocab.Vocab
	}
	b := NewBuilder(g, vocab)

	var astar *roadnet.AStar
	if opts.Mode == ModeShortestPath {
		astar = roadnet.NewAStar(g)
	}
	topics := 1
	if opts.Vocab != nil {
		topics = opts.Vocab.NumTopics()
	}
	regions := NewRegionTopics(g.Bounds(), topics)

	n := g.NumVertices()
	for i := 0; i < opts.Count; i++ {
		start := roadnet.VertexID(rng.IntN(n))
		length := sampleLength(opts.MeanSamples, rng)
		var path []roadnet.VertexID
		switch opts.Mode {
		case ModeShortestPath:
			path = shortestTrip(g, astar, start, length, rng)
		default:
			path = biasedWalk(g, start, length, rng)
		}
		if len(path) == 0 {
			path = []roadnet.VertexID{start}
		}
		samples := timestampPath(g, path, opts, rng)
		var kws textual.TermSet
		if opts.Vocab != nil {
			dest := g.Point(path[len(path)-1])
			topic := regions.TopicOf(dest)
			count := opts.KeywordsMin + rng.IntN(opts.KeywordsMax-opts.KeywordsMin+1)
			kws = opts.Vocab.DrawTermSet(topic, count, opts.TopicFocus, rng)
		}
		if _, err := b.Add(samples, kws); err != nil {
			return nil, fmt.Errorf("trajdb: generating trajectory %d: %w", i, err)
		}
	}
	return b.Freeze(), nil
}

// sampleLength draws a trip length (in samples) around mean: uniform in
// [mean/2, 3·mean/2], min 2.
func sampleLength(mean int, rng *rand.Rand) int {
	lo := mean / 2
	if lo < 2 {
		lo = 2
	}
	hi := mean + mean/2
	if hi <= lo {
		return lo
	}
	return lo + rng.IntN(hi-lo+1)
}

// biasedWalk walks from start toward a random destination point: with
// probability 0.85 it moves to the neighbour closest (in the plane) to the
// destination, otherwise to a uniformly random neighbour; it avoids
// immediately backtracking unless at a dead end.
func biasedWalk(g *roadnet.Graph, start roadnet.VertexID, steps int, rng *rand.Rand) []roadnet.VertexID {
	bounds := g.Bounds()
	dest := geo.Point{
		X: bounds.Min.X + rng.Float64()*bounds.Width(),
		Y: bounds.Min.Y + rng.Float64()*bounds.Height(),
	}
	path := make([]roadnet.VertexID, 1, steps)
	path[0] = start
	prev := roadnet.VertexID(-1)
	cur := start
	for len(path) < steps {
		to, _ := g.Neighbors(cur)
		if len(to) == 0 {
			break
		}
		next := roadnet.VertexID(-1)
		if rng.Float64() < 0.85 {
			bestD := math.Inf(1)
			for _, t := range to {
				tv := roadnet.VertexID(t)
				if tv == prev && len(to) > 1 {
					continue
				}
				if d := g.Point(tv).DistSq(dest); d < bestD {
					bestD = d
					next = tv
				}
			}
		} else {
			for tries := 0; tries < 4; tries++ {
				cand := roadnet.VertexID(to[rng.IntN(len(to))])
				if cand != prev || len(to) == 1 {
					next = cand
					break
				}
			}
		}
		if next < 0 {
			next = roadnet.VertexID(to[rng.IntN(len(to))])
		}
		prev, cur = cur, next
		path = append(path, cur)
		// Arrived near the destination: end the trip.
		if g.Point(cur).Dist(dest) < 0.05 {
			break
		}
	}
	return path
}

// shortestTrip picks a destination roughly `length` hops away (by planar
// distance heuristic) and routes via A*, subsampling the path down to the
// requested sample count if needed.
func shortestTrip(g *roadnet.Graph, astar *roadnet.AStar, start roadnet.VertexID, length int, rng *rand.Rand) []roadnet.VertexID {
	n := g.NumVertices()
	var best roadnet.VertexID = -1
	// Aim for a destination whose straight-line distance corresponds to
	// about `length` edges of mean length. Sample a handful of candidates
	// and keep the best fit.
	meanEdge := g.TotalEdgeLength() / math.Max(float64(g.NumEdges()), 1)
	target := float64(length) * meanEdge * 0.8
	bestGap := math.Inf(1)
	for c := 0; c < 8; c++ {
		cand := roadnet.VertexID(rng.IntN(n))
		if cand == start {
			continue
		}
		gap := math.Abs(g.Point(start).Dist(g.Point(cand)) - target)
		if gap < bestGap {
			bestGap = gap
			best = cand
		}
	}
	if best < 0 {
		return []roadnet.VertexID{start}
	}
	path, _, ok := astar.Path(start, best)
	if !ok {
		return []roadnet.VertexID{start}
	}
	return subsample(path, length)
}

// subsample thins path to at most maxLen vertices, always keeping both
// endpoints.
func subsample(path []roadnet.VertexID, maxLen int) []roadnet.VertexID {
	if len(path) <= maxLen || maxLen < 2 {
		return path
	}
	out := make([]roadnet.VertexID, 0, maxLen)
	step := float64(len(path)-1) / float64(maxLen-1)
	for i := 0; i < maxLen; i++ {
		out = append(out, path[int(math.Round(float64(i)*step))])
	}
	out[len(out)-1] = path[len(path)-1]
	return out
}

// timestampPath assigns a departure time and per-sample timestamps using
// true edge lengths and a per-trip speed. Consecutive identical vertices
// (possible after subsampling degenerate paths) get a small fixed dwell.
func timestampPath(g *roadnet.Graph, path []roadnet.VertexID, opts GenOptions, rng *rand.Rand) []Sample {
	speed := opts.MinSpeedKmh + rng.Float64()*(opts.MaxSpeedKmh-opts.MinSpeedKmh)
	kmPerSec := speed / 3600.0
	// Depart between 05:00 and 22:00 so trips stay within the day.
	start := 5*3600 + rng.Float64()*17*3600
	samples := make([]Sample, len(path))
	t := start
	samples[0] = Sample{V: path[0], T: t}
	for i := 1; i < len(path); i++ {
		w, ok := g.EdgeWeight(path[i-1], path[i])
		if !ok {
			// Subsampled gap: approximate with planar distance.
			w = g.Point(path[i-1]).Dist(g.Point(path[i]))
			if w == 0 {
				w = 0.01
			}
		}
		t += w / kmPerSec
		if t >= SecondsPerDay {
			t = SecondsPerDay - 1e-3 // clamp: trips must stay within the day
		}
		samples[i] = Sample{V: path[i], T: t}
	}
	return samples
}

// RegionTopics partitions the plane into a √t×√t grid of regions and
// assigns each region a topic, so that a location determines a keyword
// topic. The trajectory generator uses it for trip keywords and the
// experiment harness uses the same mapping to draw query keywords
// correlated with query locations.
type RegionTopics struct {
	bounds geo.Rect
	side   int
	topics int
}

// NewRegionTopics returns a region→topic mapping over bounds.
func NewRegionTopics(bounds geo.Rect, topics int) RegionTopics {
	side := int(math.Ceil(math.Sqrt(float64(topics))))
	if side < 1 {
		side = 1
	}
	return RegionTopics{bounds: bounds, side: side, topics: topics}
}

// TopicOf returns the topic of the region containing p.
func (r RegionTopics) TopicOf(p geo.Point) int {
	if r.topics <= 1 {
		return 0
	}
	w, h := r.bounds.Width(), r.bounds.Height()
	if w <= 0 || h <= 0 {
		return 0
	}
	cx := int(float64(r.side) * (p.X - r.bounds.Min.X) / w)
	cy := int(float64(r.side) * (p.Y - r.bounds.Min.Y) / h)
	if cx >= r.side {
		cx = r.side - 1
	}
	if cy >= r.side {
		cy = r.side - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return (cy*r.side + cx) % r.topics
}
