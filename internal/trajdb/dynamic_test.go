package trajdb

import (
	"sync"
	"testing"

	"uots/internal/textual"
)

func TestDynamicAddRemoveSnapshot(t *testing.T) {
	g := testGraph(t)
	vocab := textual.NewVocab()
	d := NewDynamic(g, vocab)

	a, err := d.AddWithKeywords([]Sample{{V: 1, T: 100}, {V: 2, T: 200}}, []string{"food"})
	if err != nil {
		t.Fatal(err)
	}
	bID, err := d.AddWithKeywords([]Sample{{V: 3, T: 300}}, []string{"art"})
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.AddWithKeywords([]Sample{{V: 4, T: 400}}, []string{"food", "art"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}

	snap, ids := d.Snapshot()
	if snap.NumTrajectories() != 3 || len(ids) != 3 {
		t.Fatalf("snapshot has %d trajectories", snap.NumTrajectories())
	}
	if ids[0] != a || ids[1] != bID || ids[2] != c {
		t.Fatalf("mapping = %v", ids)
	}
	if dense, ok := d.DenseID(bID); !ok || dense != 1 {
		t.Fatalf("DenseID(b) = (%d, %v)", dense, ok)
	}

	// Snapshot is cached while unmodified.
	snap2, _ := d.Snapshot()
	if snap2 != snap {
		t.Error("unchanged store should reuse the snapshot")
	}

	// Remove the middle trajectory: snapshot compacts, handles stay.
	if !d.Remove(bID) {
		t.Fatal("Remove(b) failed")
	}
	if d.Remove(bID) {
		t.Error("double remove succeeded")
	}
	snap3, ids3 := d.Snapshot()
	if snap3 == snap {
		t.Fatal("mutation must invalidate the snapshot")
	}
	if snap3.NumTrajectories() != 2 || ids3[0] != a || ids3[1] != c {
		t.Fatalf("post-remove mapping = %v", ids3)
	}
	// The old snapshot still reads consistently.
	if snap.NumTrajectories() != 3 {
		t.Error("old snapshot mutated")
	}
	// Dense IDs refer to the new snapshot.
	if dense, ok := d.DenseID(c); !ok || dense != 1 {
		t.Fatalf("DenseID(c) = (%d, %v)", dense, ok)
	}
	if _, ok := d.DenseID(bID); ok {
		t.Error("removed handle still resolves")
	}

	// Get by handle.
	if tr, ok := d.Get(a); !ok || tr.Samples[0].V != 1 {
		t.Error("Get(a) wrong")
	}
	if _, ok := d.Get(bID); ok {
		t.Error("Get(removed) succeeded")
	}
}

func TestDynamicValidation(t *testing.T) {
	g := testGraph(t)
	d := NewDynamic(g, nil)
	if _, err := d.Add(nil, nil); err == nil {
		t.Error("empty trajectory accepted")
	}
	if _, err := d.Add([]Sample{{V: 99999, T: 0}}, nil); err == nil {
		t.Error("bad vertex accepted")
	}
	if _, err := d.AddWithKeywords([]Sample{{V: 0, T: 0}}, []string{"x"}); err == nil {
		t.Error("AddWithKeywords without vocab accepted")
	}
}

func TestDynamicConcurrentMutation(t *testing.T) {
	g := testGraph(t)
	d := NewDynamic(g, nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(base int) {
			defer wg.Done()
			var mine []ExternalID
			for i := 0; i < 50; i++ {
				id, err := d.Add([]Sample{{V: 1, T: float64(base*100 + i)}}, nil)
				if err != nil {
					t.Error(err)
					return
				}
				mine = append(mine, id)
				if i%3 == 0 {
					d.Snapshot()
				}
				if i%5 == 4 {
					d.Remove(mine[0])
					mine = mine[1:]
				}
			}
		}(w)
	}
	wg.Wait()
	snap, ids := d.Snapshot()
	if snap.NumTrajectories() != d.Len() || len(ids) != d.Len() {
		t.Fatalf("final snapshot %d vs live %d", snap.NumTrajectories(), d.Len())
	}
	// All handles unique.
	seen := map[ExternalID]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate handle %d", id)
		}
		seen[id] = true
	}
}
