package trajdb

import "fmt"

// StoreError is the panic payload convention for unrecoverable storage
// failures hit on a trajectory-store access path mid-query. The store
// interface the engine runs on (core.TrajStore) returns no errors — its
// access paths sit inside tight search loops — so an implementation that
// loses its backing medium (truncated record file, failed device, injected
// fault) panics with a *StoreError instead of returning garbage. The
// engine's public entry points recover exactly this type and surface it to
// the caller as an ordinary error; any other panic value keeps unwinding.
type StoreError struct {
	Op  string // the access path that failed ("Traj", "read", "decode", ...)
	ID  TrajID // the trajectory record involved
	Err error  // the underlying cause
}

// Error implements error.
func (e *StoreError) Error() string {
	return fmt.Sprintf("store %s of trajectory %d: %v", e.Op, e.ID, e.Err)
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *StoreError) Unwrap() error { return e.Err }
