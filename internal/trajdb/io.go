package trajdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"uots/internal/roadnet"
	"uots/internal/textual"
)

// trajMagic identifies the binary trajectory-set format, version 1.
const trajMagic = "UOTSTRJ1"

// WriteStore serializes the trajectories and vocabulary of s (not the
// graph — serialize that separately with roadnet.WriteGraph) in a compact
// little-endian binary format.
func WriteStore(w io.Writer, s *Store) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(trajMagic); err != nil {
		return err
	}
	// Vocabulary: term count, then length-prefixed normalized strings in
	// TermID order.
	vocabSize := 0
	if s.vocab != nil {
		vocabSize = s.vocab.Size()
	}
	if err := writeU32(bw, uint32(vocabSize)); err != nil {
		return err
	}
	for id := 0; id < vocabSize; id++ {
		term, ok := s.vocab.Term(textual.TermID(id))
		if !ok {
			return fmt.Errorf("trajdb: vocabulary hole at term %d", id)
		}
		if err := writeU32(bw, uint32(len(term))); err != nil {
			return err
		}
		if _, err := bw.WriteString(term); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(len(s.trajs))); err != nil {
		return err
	}
	for i := range s.trajs {
		t := &s.trajs[i]
		if err := writeU32(bw, uint32(len(t.Samples))); err != nil {
			return err
		}
		for _, smp := range t.Samples {
			if err := writeU32(bw, uint32(smp.V)); err != nil {
				return err
			}
			if err := writeU64(bw, math.Float64bits(smp.T)); err != nil {
				return err
			}
		}
		if err := writeU32(bw, uint32(len(t.Keywords))); err != nil {
			return err
		}
		for _, k := range t.Keywords {
			if err := writeU32(bw, uint32(k)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadStore deserializes a trajectory set written by WriteStore and
// rebuilds its indexes over the given graph.
func ReadStore(r io.Reader, g *roadnet.Graph) (*Store, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(trajMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trajdb: reading magic: %w", err)
	}
	if string(magic) != trajMagic {
		return nil, fmt.Errorf("trajdb: bad magic %q", magic)
	}
	vocabSize, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("trajdb: reading vocab size: %w", err)
	}
	const maxReasonable = 1 << 30
	if vocabSize > maxReasonable {
		return nil, fmt.Errorf("trajdb: implausible vocab size %d", vocabSize)
	}
	vocab := textual.NewVocab()
	for i := uint32(0); i < vocabSize; i++ {
		n, err := readU32(br)
		if err != nil {
			return nil, fmt.Errorf("trajdb: reading term %d: %w", i, err)
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("trajdb: implausible term length %d", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("trajdb: reading term %d: %w", i, err)
		}
		id, ok := vocab.Intern(string(buf))
		if !ok || id != textual.TermID(i) {
			return nil, fmt.Errorf("trajdb: term %d (%q) does not re-intern to its ID", i, buf)
		}
	}
	count, err := readU32(br)
	if err != nil {
		return nil, fmt.Errorf("trajdb: reading trajectory count: %w", err)
	}
	if count > maxReasonable {
		return nil, fmt.Errorf("trajdb: implausible trajectory count %d", count)
	}
	b := NewBuilder(g, vocab)
	for i := uint32(0); i < count; i++ {
		ns, err := readU32(br)
		if err != nil {
			return nil, fmt.Errorf("trajdb: trajectory %d: %w", i, err)
		}
		if ns > maxReasonable {
			return nil, fmt.Errorf("trajdb: implausible sample count %d", ns)
		}
		samples := make([]Sample, ns)
		for j := range samples {
			v, err := readU32(br)
			if err != nil {
				return nil, fmt.Errorf("trajdb: trajectory %d sample %d: %w", i, j, err)
			}
			bits, err := readU64(br)
			if err != nil {
				return nil, fmt.Errorf("trajdb: trajectory %d sample %d: %w", i, j, err)
			}
			samples[j] = Sample{V: roadnet.VertexID(v), T: math.Float64frombits(bits)}
		}
		nk, err := readU32(br)
		if err != nil {
			return nil, fmt.Errorf("trajdb: trajectory %d keywords: %w", i, err)
		}
		if nk > maxReasonable {
			return nil, fmt.Errorf("trajdb: implausible keyword count %d", nk)
		}
		terms := make([]textual.TermID, nk)
		for j := range terms {
			k, err := readU32(br)
			if err != nil {
				return nil, fmt.Errorf("trajdb: trajectory %d keyword %d: %w", i, j, err)
			}
			if k >= vocabSize {
				return nil, fmt.Errorf("trajdb: trajectory %d keyword %d out of vocab (%d ≥ %d)", i, j, k, vocabSize)
			}
			terms[j] = textual.TermID(k)
		}
		if _, err := b.Add(samples, textual.NewTermSet(terms)); err != nil {
			return nil, fmt.Errorf("trajdb: trajectory %d: %w", i, err)
		}
	}
	return b.Freeze(), nil
}

func writeU32(w io.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func writeU64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r io.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func readU64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}
