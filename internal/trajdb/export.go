package trajdb

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"uots/internal/roadnet"
	"uots/internal/textual"
)

// CSV interop: one row per sample, long format —
//
//	traj_id,seq,vertex,time_seconds,keywords
//
// with the pipe-separated keyword list carried on each trajectory's first
// row (seq 0) only. The format round-trips through ImportCSV and is
// directly loadable into dataframe tooling.

// ExportCSV writes the whole store in the CSV interchange format.
func ExportCSV(w io.Writer, s *Store) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"traj_id", "seq", "vertex", "time_seconds", "keywords"}); err != nil {
		return err
	}
	for id := 0; id < s.NumTrajectories(); id++ {
		t := s.Traj(TrajID(id))
		kws := ""
		if s.vocab != nil && len(t.Keywords) > 0 {
			names := make([]string, 0, len(t.Keywords))
			for _, k := range t.Keywords {
				if name, ok := s.vocab.Term(k); ok {
					names = append(names, name)
				}
			}
			kws = strings.Join(names, "|")
		}
		for i, smp := range t.Samples {
			row := []string{
				strconv.Itoa(id),
				strconv.Itoa(i),
				strconv.Itoa(int(smp.V)),
				strconv.FormatFloat(smp.T, 'f', 3, 64),
				"",
			}
			if i == 0 {
				row[4] = kws
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ImportCSV reads the CSV interchange format into a new store over g.
// Rows may arrive grouped in any trajectory order, but samples within one
// trajectory must be in ascending seq order; trajectory IDs are reassigned
// densely in order of first appearance.
func ImportCSV(r io.Reader, g *roadnet.Graph) (*Store, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 5
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trajdb: reading CSV header: %w", err)
	}
	if header[0] != "traj_id" {
		return nil, fmt.Errorf("trajdb: unexpected CSV header %v", header)
	}
	type pending struct {
		samples  []Sample
		keywords []string
		lastSeq  int
		order    int
	}
	groups := make(map[string]*pending)
	orderN := 0
	for {
		row, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trajdb: reading CSV: %w", err)
		}
		seq, err := strconv.Atoi(row[1])
		if err != nil {
			return nil, fmt.Errorf("trajdb: bad seq %q: %w", row[1], err)
		}
		vertex, err := strconv.Atoi(row[2])
		if err != nil {
			return nil, fmt.Errorf("trajdb: bad vertex %q: %w", row[2], err)
		}
		ts, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			return nil, fmt.Errorf("trajdb: bad time %q: %w", row[3], err)
		}
		p := groups[row[0]]
		if p == nil {
			p = &pending{lastSeq: -1, order: orderN}
			orderN++
			groups[row[0]] = p
		}
		if seq != p.lastSeq+1 {
			return nil, fmt.Errorf("trajdb: trajectory %q has seq %d after %d", row[0], seq, p.lastSeq)
		}
		p.lastSeq = seq
		p.samples = append(p.samples, Sample{V: roadnet.VertexID(vertex), T: ts})
		if seq == 0 && row[4] != "" {
			p.keywords = strings.Split(row[4], "|")
		}
	}
	ordered := make([]*pending, 0, len(groups))
	for _, p := range groups {
		ordered = append(ordered, p)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].order < ordered[j].order })
	vocab := textual.NewVocab()
	b := NewBuilder(g, vocab)
	for _, p := range ordered {
		if _, err := b.AddWithKeywords(p.samples, p.keywords); err != nil {
			return nil, fmt.Errorf("trajdb: CSV trajectory %d: %w", p.order, err)
		}
	}
	return b.Freeze(), nil
}

// geoJSON types, kept minimal and local: the export needs nothing more.
type geoJSONFeatureCollection struct {
	Type     string           `json:"type"`
	Features []geoJSONFeature `json:"features"`
}

type geoJSONFeature struct {
	Type       string         `json:"type"`
	Geometry   geoJSONLine    `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geoJSONLine struct {
	Type        string       `json:"type"`
	Coordinates [][2]float64 `json:"coordinates"`
}

// ExportGeoJSON writes the given trajectories (all of them when ids is
// empty) as a GeoJSON FeatureCollection of LineStrings — one feature per
// trajectory with id, departure and keyword properties — for inspection
// in any map tool. Coordinates are the planar kilometre coordinates of
// the synthetic world (real data would be unprojected first).
func ExportGeoJSON(w io.Writer, s *Store, ids ...TrajID) error {
	if len(ids) == 0 {
		ids = make([]TrajID, s.NumTrajectories())
		for i := range ids {
			ids[i] = TrajID(i)
		}
	}
	fc := geoJSONFeatureCollection{Type: "FeatureCollection"}
	for _, id := range ids {
		if id < 0 || int(id) >= s.NumTrajectories() {
			return fmt.Errorf("trajdb: ExportGeoJSON: trajectory %d out of range", id)
		}
		t := s.Traj(id)
		coords := make([][2]float64, t.Len())
		for i, smp := range t.Samples {
			p := s.g.Point(smp.V)
			coords[i] = [2]float64{p.X, p.Y}
		}
		props := map[string]any{
			"id":      int(id),
			"departs": t.Start(),
			"samples": t.Len(),
		}
		if s.vocab != nil {
			var names []string
			for _, k := range t.Keywords {
				if name, ok := s.vocab.Term(k); ok {
					names = append(names, name)
				}
			}
			props["keywords"] = names
		}
		fc.Features = append(fc.Features, geoJSONFeature{
			Type:       "Feature",
			Geometry:   geoJSONLine{Type: "LineString", Coordinates: coords},
			Properties: props,
		})
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(fc); err != nil {
		return err
	}
	return bw.Flush()
}
