package trajdb

import (
	"bytes"
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"uots/internal/geo"
	"uots/internal/roadnet"
	"uots/internal/textual"
)

func testGraph(t *testing.T) *roadnet.Graph {
	t.Helper()
	g, err := roadnet.GenerateCity(roadnet.CityOptions{
		Rows: 10, Cols: 10, Style: roadnet.StyleDense, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderValidation(t *testing.T) {
	g := testGraph(t)
	b := NewBuilder(g, nil)
	if _, err := b.Add(nil, nil); !errors.Is(err, ErrNoSamples) {
		t.Errorf("no samples: %v", err)
	}
	if _, err := b.Add([]Sample{{V: 9999, T: 0}}, nil); !errors.Is(err, ErrVertexRange) {
		t.Errorf("vertex range: %v", err)
	}
	if _, err := b.Add([]Sample{{V: 0, T: -1}}, nil); !errors.Is(err, ErrTimeRange) {
		t.Errorf("negative time: %v", err)
	}
	if _, err := b.Add([]Sample{{V: 0, T: SecondsPerDay}}, nil); !errors.Is(err, ErrTimeRange) {
		t.Errorf("time past midnight: %v", err)
	}
	if _, err := b.Add([]Sample{{V: 0, T: 100}, {V: 1, T: 50}}, nil); !errors.Is(err, ErrTimeOrder) {
		t.Errorf("time order: %v", err)
	}
	id, err := b.Add([]Sample{{V: 0, T: 100}, {V: 1, T: 150}}, nil)
	if err != nil || id != 0 {
		t.Fatalf("valid add = (%d, %v)", id, err)
	}
	if _, err := b.AddWithKeywords([]Sample{{V: 0, T: 0}}, []string{"x"}); err == nil {
		t.Error("AddWithKeywords without vocab should fail")
	}
	b.Freeze()
	if _, err := b.Add([]Sample{{V: 0, T: 0}}, nil); !errors.Is(err, ErrFrozenBuilder) {
		t.Errorf("add after freeze: %v", err)
	}
}

func TestStoreIndexes(t *testing.T) {
	g := testGraph(t)
	vocab := textual.NewVocab()
	b := NewBuilder(g, vocab)
	id0, err := b.AddWithKeywords([]Sample{{V: 3, T: 100}, {V: 4, T: 200}, {V: 3, T: 300}}, []string{"food", "market"})
	if err != nil {
		t.Fatal(err)
	}
	id1, err := b.AddWithKeywords([]Sample{{V: 4, T: 500}}, []string{"art"})
	if err != nil {
		t.Fatal(err)
	}
	db := b.Freeze()
	if db.NumTrajectories() != 2 || db.TotalSamples() != 4 {
		t.Fatalf("shape = %d trajs, %d samples", db.NumTrajectories(), db.TotalSamples())
	}
	if db.AvgSamples() != 2 {
		t.Errorf("AvgSamples = %g", db.AvgSamples())
	}
	// Vertex inverted index.
	if got := db.TrajsAtVertex(3); len(got) != 1 || got[0] != id0 {
		t.Errorf("TrajsAtVertex(3) = %v", got)
	}
	if got := db.TrajsAtVertex(4); len(got) != 2 {
		t.Errorf("TrajsAtVertex(4) = %v", got)
	}
	if got := db.TrajsAtVertex(7); len(got) != 0 {
		t.Errorf("TrajsAtVertex(7) = %v", got)
	}
	// Membership and unique vertices.
	if !db.ContainsVertex(id0, 3) || db.ContainsVertex(id1, 3) {
		t.Error("ContainsVertex wrong")
	}
	if got := db.UniqueVertices(id0); len(got) != 2 {
		t.Errorf("UniqueVertices = %v (duplicates should collapse)", got)
	}
	// Trajectory accessors.
	tr := db.Traj(id0)
	if tr.Len() != 3 || tr.Start() != 100 || tr.End() != 300 || tr.Duration() != 200 {
		t.Error("trajectory accessors wrong")
	}
	if vs := tr.Vertices(); len(vs) != 3 || vs[0] != 3 || vs[2] != 3 {
		t.Errorf("Vertices = %v", vs)
	}
	// Text index.
	food, _ := vocab.Lookup("food")
	if got := db.TextIndex().Postings(food); len(got) != 1 || got[0] != textual.DocID(id0) {
		t.Errorf("text postings = %v", got)
	}
	if len(db.Keywords(id0)) != 2 {
		t.Errorf("Keywords = %v", db.Keywords(id0))
	}
	// BBox covers the trajectory's vertices.
	box := db.BBox(id0)
	if !box.Contains(g.Point(3)) || !box.Contains(g.Point(4)) {
		t.Error("BBox does not contain trajectory vertices")
	}
	// Stats.
	st := db.Stats()
	if st.Trajectories != 2 || st.AvgKeywords != 1.5 || st.VertexesTouch != 2 {
		t.Errorf("Stats = %+v", st)
	}
}

func TestGenerateCorpus(t *testing.T) {
	g := testGraph(t)
	vocab := textual.GenerateVocab(4, 20, 1, 3)
	db, err := Generate(g, GenOptions{Count: 300, MeanSamples: 20, Vocab: vocab, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTrajectories() != 300 {
		t.Fatalf("count = %d", db.NumTrajectories())
	}
	if avg := db.AvgSamples(); avg < 10 || avg > 30 {
		t.Errorf("AvgSamples = %g, want ≈ 20", avg)
	}
	for id := 0; id < db.NumTrajectories(); id++ {
		tr := db.Traj(TrajID(id))
		prev := -1.0
		for i, s := range tr.Samples {
			if s.T < prev {
				t.Fatalf("traj %d sample %d time goes backwards", id, i)
			}
			if s.T < 0 || s.T >= SecondsPerDay {
				t.Fatalf("traj %d sample %d time %g out of day", id, i, s.T)
			}
			prev = s.T
			if i > 0 {
				// Consecutive samples must be network-adjacent in walk mode.
				if _, ok := g.EdgeWeight(tr.Samples[i-1].V, s.V); !ok && tr.Samples[i-1].V != s.V {
					t.Fatalf("traj %d samples %d-%d not adjacent", id, i-1, i)
				}
			}
		}
		if len(tr.Keywords) == 0 {
			t.Fatalf("traj %d has no keywords", id)
		}
	}
}

func TestGenerateShortestPathMode(t *testing.T) {
	g := testGraph(t)
	db, err := Generate(g, GenOptions{Count: 50, MeanSamples: 15, Mode: ModeShortestPath, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumTrajectories() != 50 {
		t.Fatalf("count = %d", db.NumTrajectories())
	}
	// Shortest-path trips may be subsampled, so adjacency is not
	// guaranteed, but timestamps must still be valid and lengths sane.
	for id := 0; id < 50; id++ {
		tr := db.Traj(TrajID(id))
		if tr.Len() < 1 {
			t.Fatalf("traj %d empty", id)
		}
		if tr.Duration() < 0 {
			t.Fatalf("traj %d negative duration", id)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testGraph(t)
	vocab := textual.GenerateVocab(4, 20, 1, 3)
	a, err := Generate(g, GenOptions{Count: 40, Vocab: vocab, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	vocab2 := textual.GenerateVocab(4, 20, 1, 3)
	b, err := Generate(g, GenOptions{Count: 40, Vocab: vocab2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 40; id++ {
		ta, tb := a.Traj(TrajID(id)), b.Traj(TrajID(id))
		if ta.Len() != tb.Len() {
			t.Fatalf("traj %d lengths differ", id)
		}
		for i := range ta.Samples {
			if ta.Samples[i] != tb.Samples[i] {
				t.Fatalf("traj %d sample %d differs", id, i)
			}
		}
	}
}

func TestGenerateRejectsNegativeCount(t *testing.T) {
	g := testGraph(t)
	if _, err := Generate(g, GenOptions{Count: -1}); err == nil {
		t.Error("negative count should error")
	}
}

func TestStoreIORoundTrip(t *testing.T) {
	g := testGraph(t)
	vocab := textual.GenerateVocab(3, 10, 1, 8)
	db, err := Generate(g, GenOptions{Count: 60, MeanSamples: 12, Vocab: vocab, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteStore(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadStore(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrajectories() != db.NumTrajectories() {
		t.Fatalf("count %d vs %d", got.NumTrajectories(), db.NumTrajectories())
	}
	if got.Vocab().Size() != db.Vocab().Size() {
		t.Fatalf("vocab %d vs %d", got.Vocab().Size(), db.Vocab().Size())
	}
	for id := 0; id < db.NumTrajectories(); id++ {
		a, b := db.Traj(TrajID(id)), got.Traj(TrajID(id))
		if a.Len() != b.Len() {
			t.Fatalf("traj %d length", id)
		}
		for i := range a.Samples {
			if a.Samples[i].V != b.Samples[i].V || a.Samples[i].T != b.Samples[i].T {
				t.Fatalf("traj %d sample %d", id, i)
			}
		}
		if len(a.Keywords) != len(b.Keywords) {
			t.Fatalf("traj %d keywords", id)
		}
		for i := range a.Keywords {
			at, _ := db.Vocab().Term(a.Keywords[i])
			bt, _ := got.Vocab().Term(b.Keywords[i])
			if at != bt {
				t.Fatalf("traj %d keyword %d: %q vs %q", id, i, at, bt)
			}
		}
	}
}

func TestReadStoreRejectsGarbage(t *testing.T) {
	g := testGraph(t)
	if _, err := ReadStore(bytes.NewReader([]byte("nope")), g); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := ReadStore(bytes.NewReader([]byte(trajMagic)), g); err == nil {
		t.Error("truncated store should fail")
	}
}

func TestRegionTopics(t *testing.T) {
	bounds := geo.RectOf(geo.Point{X: 0, Y: 0}, geo.Point{X: 10, Y: 10})
	r := NewRegionTopics(bounds, 4)
	// Deterministic and in range.
	rng := rand.New(rand.NewPCG(2, 3))
	for i := 0; i < 200; i++ {
		p := geo.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		topic := r.TopicOf(p)
		if topic < 0 || topic >= 4 {
			t.Fatalf("topic %d out of range", topic)
		}
		if topic != r.TopicOf(p) {
			t.Fatal("TopicOf not deterministic")
		}
	}
	// Corners of a 2×2 partition land in different regions.
	tl := r.TopicOf(geo.Point{X: 1, Y: 9})
	br := r.TopicOf(geo.Point{X: 9, Y: 1})
	if tl == br {
		t.Error("opposite corners share a topic in a 2x2 partition")
	}
	// Points outside bounds clamp instead of panicking.
	if got := r.TopicOf(geo.Point{X: -5, Y: 50}); got < 0 || got >= 4 {
		t.Errorf("out-of-bounds topic %d", got)
	}
	// Single topic is always 0.
	one := NewRegionTopics(bounds, 1)
	if one.TopicOf(geo.Point{X: 3, Y: 3}) != 0 {
		t.Error("single-topic map should return 0")
	}
}

func TestSubsample(t *testing.T) {
	path := make([]roadnet.VertexID, 100)
	for i := range path {
		path[i] = roadnet.VertexID(i)
	}
	out := subsample(path, 10)
	if len(out) != 10 {
		t.Fatalf("subsample len = %d", len(out))
	}
	if out[0] != 0 || out[9] != 99 {
		t.Errorf("endpoints = %d, %d", out[0], out[9])
	}
	for i := 1; i < len(out); i++ {
		if out[i] <= out[i-1] {
			t.Fatalf("subsample not increasing: %v", out)
		}
	}
	short := []roadnet.VertexID{1, 2, 3}
	if got := subsample(short, 10); len(got) != 3 {
		t.Errorf("short path should be unchanged, got %v", got)
	}
}

func TestTimestampMonotone(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewPCG(6, 7))
	path := biasedWalk(g, 0, 500, rng) // long walk: clamping must not break order
	samples := timestampPath(g, path, GenOptions{MinSpeedKmh: 1, MaxSpeedKmh: 2}, rng)
	prev := math.Inf(-1)
	for i, s := range samples {
		if s.T < prev {
			t.Fatalf("sample %d time %g < %g", i, s.T, prev)
		}
		if s.T >= SecondsPerDay {
			t.Fatalf("sample %d time %g ≥ day end", i, s.T)
		}
		prev = s.T
	}
}

func TestReconstructRoute(t *testing.T) {
	g := testGraph(t)
	db, err := Generate(g, GenOptions{Count: 20, MeanSamples: 10, Mode: ModeShortestPath, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	bidir := roadnet.NewBidirectional(g)
	for id := 0; id < db.NumTrajectories(); id++ {
		tr := db.Traj(TrajID(id))
		route, dist, err := ReconstructRoute(g, tr, bidir)
		if err != nil {
			t.Fatalf("traj %d: %v", id, err)
		}
		if route[0] != tr.Samples[0].V {
			t.Fatalf("traj %d route starts at %d", id, route[0])
		}
		// Every consecutive route pair is a network edge.
		for i := 1; i < len(route); i++ {
			if _, ok := g.EdgeWeight(route[i-1], route[i]); !ok {
				t.Fatalf("traj %d route uses nonexistent edge {%d,%d}", id, route[i-1], route[i])
			}
		}
		// All samples appear in order along the route.
		j := 0
		for _, v := range route {
			if j < tr.Len() && tr.Samples[j].V == v {
				j++
				// Skip consecutive duplicate samples (already satisfied).
				for j < tr.Len() && tr.Samples[j].V == tr.Samples[j-1].V {
					j++
				}
			}
		}
		if j != tr.Len() {
			t.Fatalf("traj %d: only %d of %d samples on route", id, j, tr.Len())
		}
		if dist < 0 {
			t.Fatalf("traj %d negative route length", id)
		}
	}
	// Nil workspace allocates internally.
	if _, _, err := ReconstructRoute(g, db.Traj(0), nil); err != nil {
		t.Fatal(err)
	}
	// Single-sample trajectory.
	b := NewBuilder(g, nil)
	if _, err := b.Add([]Sample{{V: 2, T: 0}}, nil); err != nil {
		t.Fatal(err)
	}
	solo := b.Freeze()
	route, dist, err := ReconstructRoute(g, solo.Traj(0), bidir)
	if err != nil || len(route) != 1 || dist != 0 {
		t.Fatalf("solo route = (%v, %g, %v)", route, dist, err)
	}
}

func TestDensify(t *testing.T) {
	g := testGraph(t)
	vocab := textual.GenerateVocab(2, 8, 1, 9)
	db, err := Generate(g, GenOptions{Count: 30, MeanSamples: 8, Mode: ModeShortestPath, Vocab: vocab, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	dense, err := Densify(db)
	if err != nil {
		t.Fatal(err)
	}
	if dense.NumTrajectories() != db.NumTrajectories() {
		t.Fatalf("count changed: %d vs %d", dense.NumTrajectories(), db.NumTrajectories())
	}
	if dense.TotalSamples() < db.TotalSamples() {
		t.Errorf("densify shrank samples: %d vs %d", dense.TotalSamples(), db.TotalSamples())
	}
	for id := 0; id < db.NumTrajectories(); id++ {
		orig, dt := db.Traj(TrajID(id)), dense.Traj(TrajID(id))
		// Endpoints and keywords preserved.
		if dt.Samples[0] != orig.Samples[0] {
			t.Fatalf("traj %d start changed", id)
		}
		if dt.Samples[dt.Len()-1].V != orig.Samples[orig.Len()-1].V {
			t.Fatalf("traj %d end changed", id)
		}
		if len(dt.Keywords) != len(orig.Keywords) {
			t.Fatalf("traj %d keywords changed", id)
		}
		// Dense samples are network-adjacent and time-monotone.
		prev := -1.0
		for i, s := range dt.Samples {
			if s.T < prev-1e-9 {
				t.Fatalf("traj %d sample %d time goes backwards", id, i)
			}
			prev = s.T
			if i > 0 && dt.Samples[i-1].V != s.V {
				if _, ok := g.EdgeWeight(dt.Samples[i-1].V, s.V); !ok {
					t.Fatalf("traj %d dense samples %d-%d not adjacent", id, i-1, i)
				}
			}
		}
		// Every original sample still appears, in order.
		j := 0
		for _, s := range dt.Samples {
			if j < orig.Len() && s.V == orig.Samples[j].V {
				j++
			}
		}
		if j != orig.Len() {
			t.Fatalf("traj %d lost original samples (%d of %d found)", id, j, orig.Len())
		}
	}
}
