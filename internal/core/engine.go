package core

import (
	"fmt"
	"math"

	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// Engine answers UOTS queries over one trajectory store. It is immutable
// after construction and safe for concurrent use: every query allocates
// its own search state, so goroutines may call Search concurrently (the
// batch engine in batch.go relies on this).
type Engine struct {
	g    *roadnet.Graph
	db   TrajStore
	opts Options
}

// NewEngine creates an engine over db with the given options. A zero
// Options value selects the paper configuration. db may be any TrajStore
// implementation — the in-memory trajdb.Store or the disk-resident
// diskstore.Store.
func NewEngine(db TrajStore, opts Options) (*Engine, error) {
	if db == nil {
		return nil, ErrNilStore
	}
	if db.NumTrajectories() == 0 {
		return nil, ErrEmptyStore
	}
	opts, err := opts.normalize()
	if err != nil {
		return nil, err
	}
	if opts.Index != nil && opts.Index.NumTrajectories() != db.NumTrajectories() {
		// A stale or foreign index would bound the wrong trajectories —
		// silently wrong prunes — so a size mismatch is a hard error.
		return nil, fmt.Errorf("%w: index covers %d trajectories, store has %d",
			ErrIndexMismatch, opts.Index.NumTrajectories(), db.NumTrajectories())
	}
	return &Engine{g: db.Graph(), db: db, opts: opts}, nil
}

// Store returns the engine's trajectory store.
func (e *Engine) Store() TrajStore { return e.db }

// Options returns the engine's effective (normalized) options.
func (e *Engine) Options() Options { return e.opts }

// kernel maps a network distance to spatial similarity contribution
// e^{−d/γ} ∈ (0, 1]. Unreachable maps to 0.
func (e *Engine) kernel(d float64) float64 {
	if math.IsInf(d, 1) {
		return 0
	}
	return math.Exp(-d / e.opts.DistScale)
}

// textScore computes the configured textual similarity between the query
// keyword set and trajectory id's keywords.
func (e *Engine) textScore(query textual.TermSet, id trajdb.TrajID) float64 {
	switch e.opts.TextSim {
	case TextCosineIDF:
		return e.db.TextIndex().CosineIDF(query, textual.DocID(id))
	default:
		return textual.Jaccard(query, e.db.Keywords(id))
	}
}

// spatialFromDists folds per-location distances into the spatial
// similarity (1/|O|)·Σ e^{−dᵢ/γ}.
func (e *Engine) spatialFromDists(dists []float64) float64 {
	var sum float64
	for _, d := range dists {
		sum += e.kernel(d)
	}
	return sum / float64(len(dists))
}

// combine applies the linear combination λ·spatial + (1−λ)·textual.
func combine(lambda, spatial, textual float64) float64 {
	return lambda*spatial + (1-lambda)*textual
}

// Evaluate computes the exact similarity of one trajectory against a
// query, including per-location network distances. It is the reference
// scorer used by tests and by callers that want to explain a
// recommendation; it runs one early-terminating Dijkstra per query
// location and costs far more than an engine search amortizes per
// trajectory.
func (e *Engine) Evaluate(q Query, id trajdb.TrajID) (res Result, err error) {
	defer recoverStoreFault(nil, &err)
	q, err = q.normalize(e.g)
	if err != nil {
		return Result{}, err
	}
	if id < 0 || int(id) >= e.db.NumTrajectories() {
		return Result{}, ErrTrajRange
	}
	sssp := roadnet.NewSSSP(e.g)
	dists := e.exactDists(sssp, q.Locations, id)
	spatial := e.spatialFromDists(dists)
	text := e.textScore(q.Keywords, id)
	return Result{
		Traj:    id,
		Score:   combine(q.Lambda, spatial, text),
		Spatial: spatial,
		Textual: text,
		Dists:   dists,
	}, nil
}

// exactDists computes d(o, τ) for each query location o with an
// early-terminating Dijkstra whose target set is τ's vertex set.
func (e *Engine) exactDists(sssp *roadnet.SSSP, locations []roadnet.VertexID, id trajdb.TrajID) []float64 {
	dists := make([]float64, len(locations))
	for i, o := range locations {
		_, d := sssp.DistToSet(o, func(v roadnet.VertexID) bool {
			return e.db.ContainsVertex(id, v)
		})
		dists[i] = d
	}
	return dists
}
