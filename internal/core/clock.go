package core

import "time"

// stopwatch is the package's only wall-clock access point. Entry points
// call it once and invoke the returned function to fill the Elapsed /
// WallClock stats fields; everything else in the package must stay a
// pure function of (graph, store, query, seed) so replayed searches
// reproduce bit-identical results.
//
//uots:allow nodrift -- designated stats helper: elapsed time feeds SearchStats observability only, never scores or pruning
func stopwatch() func() time.Duration {
	start := time.Now()
	return func() time.Duration { return time.Since(start) }
}
