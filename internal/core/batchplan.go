package core

import (
	"context"
	"sync"
	"sync/atomic"

	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// Batch query planner with cross-query expansion sharing.
//
// A SearchBatch call's queries often reference the same source vertices
// (the "millions of users, few hotspots" serving shape): run
// independently, each query redoes an identical incremental network
// expansion from every shared source. The planner exploits a structural
// property of the expansion search: the settle stream of a source —
// the sequence of (vertex, distance) pairs Dijkstra produces — depends
// only on (graph, source vertex), never on the query consuming it. So
// the batch can run ONE shared frontier per distinct source vertex and
// let every query referencing that source replay the frontier's settle
// log through a private cursor, while all per-query state (admission,
// pruning bounds, scheduling, probes, top-k) stays untouched and
// paper-faithful. Because each query sees bit-identical inputs — the
// same settle sequence, the same radii, the same vertex→trajectory scan
// lists — its Results and SearchStats (except Elapsed) are byte-identical
// to an independent SearchCtx run; the cross-validation suite in
// batchplan_test.go asserts exactly that.
//
// The vertex→trajectory scans are memoized alongside the settle log
// (one TrajsAtVertex store call per settled vertex per frontier, shared
// by all consumers), and the whole structure is batch-scoped and keyed
// by store identity plus snapshot generation: an engine whose store or
// generation does not match the planner's falls back to private
// expanders, so a stale share can never serve wrong scans.
//
// Concurrency: frontiers advance lazily under a per-frontier mutex —
// the first cursor to need settle i performs it, later cursors replay
// it lock-cheap. Store-fault panics (*trajdb.StoreError) raised while
// extending a frontier propagate to the query that triggered the
// extension (recovered by its entry point's recoverStoreFault guard);
// the pending settle is kept un-logged so the next consumer retries the
// scan instead of observing a hole in the stream.

// expander abstracts the per-source settle stream consumed by the
// expansion search: a private Dijkstra (soloExpander) or a replay
// cursor over a batch-shared frontier (frontierCursor). The contract
// mirrors roadnet.Expander: next settles exactly one vertex in
// non-decreasing distance order and reports ok=false on exhaustion,
// after which radius reports roadnet.Unreachable; scan returns the
// trajectories passing through the vertex next just settled.
type expander interface {
	next() (v roadnet.VertexID, d float64, ok bool)
	radius() float64
	scan(v roadnet.VertexID) []trajdb.TrajID
}

// soloExpander is the independent path: one private Dijkstra per query
// source with direct store scans.
type soloExpander struct {
	exp *roadnet.Expander
	db  TrajStore
}

func (s soloExpander) next() (roadnet.VertexID, float64, bool) { return s.exp.Next() }
func (s soloExpander) radius() float64                         { return s.exp.Radius() }
func (s soloExpander) scan(v roadnet.VertexID) []trajdb.TrajID { return s.db.TrajsAtVertex(v) }

// frontierStep is one settled vertex of a shared frontier: the vertex,
// its exact distance from the source, and the memoized trajectory scan
// at that vertex.
type frontierStep struct {
	v     roadnet.VertexID
	d     float64
	trajs []trajdb.TrajID
}

// sharedFrontier is one expansion frontier shared by every query of a
// batch that references its source vertex. It advances an underlying
// roadnet.Expander lazily and records each settle (with its scan) so
// later consumers replay instead of re-expanding.
type sharedFrontier struct {
	bs *batchShare

	mu        sync.Mutex
	exp       *roadnet.Expander
	steps     []frontierStep
	exhausted bool

	// pending holds a settle whose scan has not been logged yet: if
	// TrajsAtVertex panics with a store fault, the Dijkstra step must
	// not be lost — the next consumer retries the scan only.
	pending      frontierStep
	pendingValid bool
}

// stepAt returns the i-th settle of this frontier, extending the
// underlying expansion as needed. ok is false once the source's
// reachable component is exhausted before step i.
func (f *sharedFrontier) stepAt(i int) (frontierStep, bool) {
	f.mu.Lock()
	// Deferred so a store-fault panic inside extend releases the
	// frontier for the other queries of the batch.
	defer f.mu.Unlock()
	for len(f.steps) <= i && !f.exhausted {
		f.extendLocked()
	}
	if i < len(f.steps) {
		return f.steps[i], true
	}
	return frontierStep{}, false
}

// extendLocked settles one more vertex and memoizes its scan. Called
// with f.mu held.
func (f *sharedFrontier) extendLocked() {
	if !f.pendingValid {
		v, d, ok := f.exp.Next()
		if !ok {
			f.exhausted = true
			return
		}
		f.pending = frontierStep{v: v, d: d}
		f.pendingValid = true
		f.bs.frontierSettles.Add(1)
	}
	// The scan list is copied once and shared read-only by every
	// consumer (TrajsAtVertex results are only valid until the next
	// store call on some implementations). May panic with a
	// *trajdb.StoreError: the pending settle survives for a retry.
	trajs := f.bs.db.TrajsAtVertex(f.pending.v)
	f.pending.trajs = append([]trajdb.TrajID(nil), trajs...)
	f.steps = append(f.steps, f.pending)
	f.pending = frontierStep{}
	f.pendingValid = false
}

// frontierCursor is one query source's private read position on a
// shared frontier. It implements expander with the exact observable
// behavior of a fresh roadnet.Expander at the same source: same settle
// sequence, same radii (0 before the first settle, Unreachable after
// exhaustion), same scan lists.
type frontierCursor struct {
	f   *sharedFrontier
	pos int
	rad float64
	cur []trajdb.TrajID // scan of the most recently settled vertex
}

func (c *frontierCursor) next() (roadnet.VertexID, float64, bool) {
	step, ok := c.f.stepAt(c.pos)
	if !ok {
		c.rad = roadnet.Unreachable
		c.cur = nil
		return -1, roadnet.Unreachable, false
	}
	c.pos++
	c.rad = step.d
	c.cur = step.trajs
	c.f.bs.servedSettles.Add(1)
	return step.v, step.d, true
}

func (c *frontierCursor) radius() float64 { return c.rad }

// scan returns the memoized trajectory list of the vertex the last next
// call settled. The argument is accepted for interface symmetry; a
// cursor's scan is always paired with its own settle stream.
func (c *frontierCursor) scan(roadnet.VertexID) []trajdb.TrajID { return c.cur }

// batchShare is the batch-scoped planner state: one shared frontier per
// distinct source vertex, keyed by (store identity, snapshot
// generation), plus the work counters SearchBatch folds into BatchStats.
type batchShare struct {
	g   *roadnet.Graph
	db  TrajStore
	gen uint64

	mu        sync.Mutex
	frontiers map[roadnet.VertexID]*sharedFrontier

	distinctSources atomic.Uint64 // frontiers created
	sourceRefs      atomic.Uint64 // per-query source references planned
	frontierSettles atomic.Uint64 // Dijkstra settles actually performed
	servedSettles   atomic.Uint64 // settles served to query cursors
}

// newBatchShare builds the planner state for one SearchBatch call on e.
// The snapshot generation is captured from stores that expose one
// (trajdb.DynamicStore); plain frozen stores key at generation 0.
func newBatchShare(e *Engine) *batchShare {
	bs := &batchShare{
		g:         e.g,
		db:        e.db,
		frontiers: make(map[roadnet.VertexID]*sharedFrontier),
	}
	if g, ok := e.db.(interface{ Generation() uint64 }); ok {
		bs.gen = g.Generation()
	}
	return bs
}

// matches reports whether the share was built for exactly this engine's
// store snapshot. Engines reached with a foreign or stale share fall
// back to private expanders — shared settle logs are only valid against
// the store they were scanned from.
func (bs *batchShare) matches(e *Engine) bool {
	if bs == nil || bs.db != e.db || bs.g != e.g {
		return false
	}
	if g, ok := e.db.(interface{ Generation() uint64 }); ok && g.Generation() != bs.gen {
		return false
	}
	return true
}

// cursorFor returns a fresh cursor on the shared frontier for src,
// creating the frontier on first reference.
func (bs *batchShare) cursorFor(src roadnet.VertexID) *frontierCursor {
	bs.mu.Lock()
	f, ok := bs.frontiers[src]
	if !ok {
		f = &sharedFrontier{bs: bs, exp: roadnet.NewExpander(bs.g, src)}
		bs.frontiers[src] = f
		bs.distinctSources.Add(1)
	}
	bs.sourceRefs.Add(1)
	bs.mu.Unlock()
	return &frontierCursor{f: f}
}

type batchShareKey struct{}

// contextWithBatchShare attaches the batch planner to the context, the
// same plumbing idiom as ContextWithSharedBound: SearchBatch attaches
// it once and every worker's SearchCtx picks it up in newExpansionState.
func contextWithBatchShare(ctx context.Context, bs *batchShare) context.Context {
	return context.WithValue(ctx, batchShareKey{}, bs)
}

// batchShareFrom extracts the batch planner, tolerating nil contexts
// the same way newCanceller does.
func batchShareFrom(ctx context.Context) *batchShare {
	if ctx == nil {
		return nil
	}
	bs, _ := ctx.Value(batchShareKey{}).(*batchShare)
	return bs
}
