package core

import (
	"errors"
	"math/rand/v2"
	"testing"

	"uots/internal/trajdb"
)

func int32ID(i int) trajdb.TrajID { return trajdb.TrajID(i) }

func TestDiversifiedSearchValidation(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(801, 802))
	q := f.randomQuery(rng, 2, 2, 0.5, 3)
	for _, mu := range []float64{-0.1, 1.0, 1.5} {
		if _, _, err := e.DiversifiedSearch(q, DiversifyOptions{Mu: mu}); !errors.Is(err, ErrBadDiversity) {
			t.Errorf("mu=%g accepted", mu)
		}
	}
}

func TestDiversifiedTopPickIsPlainTop(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(811, 812))
	for trial := 0; trial < 5; trial++ {
		q := f.randomQuery(rng, 2, 3, 0.5, 5)
		plain, _, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		div, _, err := e.DiversifiedSearch(q, DiversifyOptions{Mu: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		if len(div) != len(plain) {
			t.Fatalf("got %d diversified results, want %d", len(div), len(plain))
		}
		// The greedy MMR always starts with the best-scoring candidate.
		if div[0].Score != plain[0].Score {
			t.Errorf("first pick score %g != plain top %g", div[0].Score, plain[0].Score)
		}
	}
}

func TestDiversifiedReducesOverlap(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(821, 822))
	totalPlain, totalDiv := 0.0, 0.0
	trials := 0
	for trial := 0; trial < 10; trial++ {
		q := f.randomQuery(rng, 2, 3, 0.7, 5)
		plain, _, err := e.Search(q)
		if err != nil {
			t.Fatal(err)
		}
		div, _, err := e.DiversifiedSearch(q, DiversifyOptions{Mu: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain) < 2 || len(div) < 2 {
			continue
		}
		totalPlain += meanPairwiseOverlap(e, plain)
		totalDiv += meanPairwiseOverlap(e, div)
		trials++
	}
	if trials == 0 {
		t.Skip("no multi-result queries in fixture")
	}
	if totalDiv > totalPlain {
		t.Errorf("diversified mean overlap %.4f should not exceed plain %.4f",
			totalDiv/float64(trials), totalPlain/float64(trials))
	}
}

func meanPairwiseOverlap(e *Engine, rs []Result) float64 {
	var sum float64
	var n int
	for i := 0; i < len(rs); i++ {
		for j := i + 1; j < len(rs); j++ {
			sum += e.routeOverlap(rs[i].Traj, rs[j].Traj)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func TestRouteOverlapProperties(t *testing.T) {
	e, f := testEngineDefault(t)
	rng := rand.New(rand.NewPCG(831, 832))
	for trial := 0; trial < 50; trial++ {
		a := rng.IntN(f.db.NumTrajectories())
		b := rng.IntN(f.db.NumTrajectories())
		oab := e.routeOverlap(int32ID(a), int32ID(b))
		oba := e.routeOverlap(int32ID(b), int32ID(a))
		if oab != oba {
			t.Fatalf("overlap not symmetric: %g vs %g", oab, oba)
		}
		if oab < 0 || oab > 1 {
			t.Fatalf("overlap %g out of range", oab)
		}
		if a == b && oab != 1 {
			t.Fatalf("self overlap = %g", oab)
		}
	}
}
