package core

import (
	"math/rand/v2"
	"os"
	"testing"

	"uots/internal/roadnet"
	"uots/internal/textual"
	"uots/internal/trajdb"
)

// TestSoakWideRandomWorlds is a one-off wide soak (enabled by UOTS_SOAK).
func TestSoakWideRandomWorlds(t *testing.T) {
	if os.Getenv("UOTS_SOAK") == "" {
		t.Skip("set UOTS_SOAK=1 to run the wide soak")
	}
	for trial := 0; trial < 120; trial++ {
		seed := uint64(50000 + trial)
		rng := rand.New(rand.NewPCG(seed, seed^99))
		style := roadnet.StyleSparse
		if trial%2 == 0 {
			style = roadnet.StyleDense
		}
		g, err := roadnet.GenerateCity(roadnet.CityOptions{
			Rows: 5 + rng.IntN(14), Cols: 5 + rng.IntN(14), Style: style, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		vocab := textual.GenerateVocab(1+rng.IntN(6), 4+rng.IntN(40), 1.0, seed)
		mode := trajdb.ModeBiasedWalk
		if trial%3 == 0 {
			mode = trajdb.ModeShortestPath
		}
		db, err := trajdb.Generate(g, trajdb.GenOptions{
			Count: 1 + rng.IntN(300), MeanSamples: 2 + rng.IntN(30),
			Mode: mode, Vocab: vocab, Seed: seed ^ 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		var lm *roadnet.Landmarks
		if trial%2 == 1 {
			lm = roadnet.NewLandmarks(g, 1+rng.IntN(6), 0)
		}
		e, err := NewEngine(db, Options{
			Scheduling:        Scheduling(rng.IntN(3)),
			TextSim:           TextSim(rng.IntN(2)),
			RelabelEvery:      1 + rng.IntN(200),
			DisableTextProbe:  rng.IntN(3) == 0,
			ProbeRadiusFactor: 0.5 + rng.Float64()*6,
			DistScale:         0.2 + rng.Float64()*3,
			Landmarks:         lm,
		})
		if err != nil {
			t.Fatal(err)
		}
		for qi := 0; qi < 3; qi++ {
			locs := make([]roadnet.VertexID, 1+rng.IntN(7))
			for i := range locs {
				locs[i] = roadnet.VertexID(rng.IntN(g.NumVertices()))
			}
			var kws textual.TermSet
			if rng.IntN(5) > 0 {
				kws = vocab.DrawQueryTerms(rng.IntN(vocab.NumTopics()), 1+rng.IntN(5), 0.6, rng)
			}
			q := Query{Locations: locs, Keywords: kws, Lambda: float64(rng.IntN(21)) / 20, K: 1 + rng.IntN(15)}
			want, _, err := e.ExhaustiveSearch(q)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := e.Search(q)
			if err != nil {
				t.Fatal(err)
			}
			sameScores(t, "soak topk", got, want)
			theta := 0.2 + 0.75*rng.Float64()
			wantT, _, err := e.ExhaustiveThreshold(q, theta)
			if err != nil {
				t.Fatal(err)
			}
			gotT, _, err := e.SearchThreshold(q, theta)
			if err != nil {
				t.Fatal(err)
			}
			if len(gotT) != len(wantT) {
				t.Fatalf("trial %d: threshold sizes %d vs %d (θ=%.3f λ=%.2f)", trial, len(gotT), len(wantT), theta, q.Lambda)
			}
		}
	}
}
