package core

import (
	"context"
	"math/rand/v2"
	"testing"

	"uots/internal/obs"
)

// kindSet summarizes which event kinds appear in a trace.
func kindSet(events []obs.SpanEvent) map[string]int {
	m := make(map[string]int)
	for _, ev := range events {
		m[ev.Kind]++
	}
	return m
}

// lastTerminate returns the final terminate event, failing if absent.
func lastTerminate(t *testing.T, events []obs.SpanEvent) obs.SpanEvent {
	t.Helper()
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	last := events[len(events)-1]
	if last.Kind != TraceTerminate {
		t.Fatalf("last event kind = %q, want %q (events: %d)", last.Kind, TraceTerminate, len(events))
	}
	return last
}

func TestTracedSearchRecordsEvents(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(31, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 5)

	rec := obs.NewTraceRecorder(0)
	ctx := obs.ContextWithTracer(context.Background(), rec)
	res, stats, err := e.SearchCtx(ctx, q)
	if err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	events := rec.Events()
	if events[0].Kind != TraceBegin {
		t.Fatalf("first event kind = %q, want %q", events[0].Kind, TraceBegin)
	}
	if got, want := events[0].Value, float64(len(q.Locations)); got != want {
		t.Errorf("begin Value = %g, want |O| = %g", got, want)
	}
	kinds := kindSet(events)
	for _, k := range []string{TraceSourcePick, TraceAdmit, TraceComplete} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in trace (kinds: %v)", k, kinds)
		}
	}
	term := lastTerminate(t, events)
	if term.Note != TermBound && term.Note != TermExhausted {
		t.Errorf("termination cause = %q, want %q or %q", term.Note, TermBound, TermExhausted)
	}
	if term.Note == TermBound != stats.EarlyTerminated {
		t.Errorf("termination cause %q disagrees with stats.EarlyTerminated=%v", term.Note, stats.EarlyTerminated)
	}
	if kinds[TraceComplete] != stats.Candidates {
		t.Errorf("complete events = %d, want stats.Candidates = %d", kinds[TraceComplete], stats.Candidates)
	}

	// Source picks are coalesced: no two consecutive picks of one source.
	lastPick := -1
	for _, ev := range events {
		switch ev.Kind {
		case TraceSourcePick:
			if ev.Source == lastPick {
				t.Fatalf("consecutive source_pick of source %d not coalesced", ev.Source)
			}
			lastPick = ev.Source
		case TraceSourceDone:
			if ev.Source == lastPick {
				lastPick = -1
			}
		}
	}
}

// TestTraceDeterministic: replaying the same query yields a bit-identical
// event stream (events carry step ordinals, never wall-clock time).
func TestTraceDeterministic(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(32, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 5)

	runOnce := func() []obs.SpanEvent {
		rec := obs.NewTraceRecorder(0)
		ctx := obs.ContextWithTracer(context.Background(), rec)
		if _, _, err := e.SearchCtx(ctx, q); err != nil {
			t.Fatalf("SearchCtx: %v", err)
		}
		return rec.Events()
	}
	a, b := runOnce(), runOnce()
	if len(a) != len(b) {
		t.Fatalf("replay produced %d events, first run %d", len(b), len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs between runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestTraceCancelledQuery(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(33, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 5)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rec := obs.NewTraceRecorder(0)
	if _, _, err := e.SearchCtx(obs.ContextWithTracer(ctx, rec), q); err == nil {
		t.Fatal("cancelled search returned nil error")
	}
	term := lastTerminate(t, rec.Events())
	if term.Note != TermCancelled {
		t.Errorf("termination cause = %q, want %q", term.Note, TermCancelled)
	}
}

func TestTraceTextOnlyPath(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(34, 0))
	q := f.randomQuery(rng, 2, 4, 0.0, 5) // λ=0 → text-only fast path

	rec := obs.NewTraceRecorder(0)
	if _, _, err := e.SearchCtx(obs.ContextWithTracer(context.Background(), rec), q); err != nil {
		t.Fatalf("SearchCtx: %v", err)
	}
	term := lastTerminate(t, rec.Events())
	if term.Note != TermTextOnly {
		t.Errorf("termination cause = %q, want %q", term.Note, TermTextOnly)
	}
}

func TestTraceOrderAwareRerank(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(35, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 3)

	rec := obs.NewTraceRecorder(0)
	if _, _, err := e.OrderAwareSearchCtx(obs.ContextWithTracer(context.Background(), rec), q); err != nil {
		t.Fatalf("OrderAwareSearchCtx: %v", err)
	}
	kinds := kindSet(rec.Events())
	if kinds[TraceRerank] == 0 {
		t.Errorf("no %q events in order-aware trace (kinds: %v)", TraceRerank, kinds)
	}
}

func TestTraceDiversifiedPicks(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(36, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 4)

	rec := obs.NewTraceRecorder(0)
	res, _, err := e.DiversifiedSearchCtx(obs.ContextWithTracer(context.Background(), rec), q, DiversifyOptions{})
	if err != nil {
		t.Fatalf("DiversifiedSearchCtx: %v", err)
	}
	kinds := kindSet(rec.Events())
	if kinds[TraceSelect] != len(res) {
		t.Errorf("mmr_pick events = %d, want one per result = %d", kinds[TraceSelect], len(res))
	}
}

// TestDisabledTracerAddsZeroAllocs proves the un-traced hot path performs
// no tracer-related allocations: a search under a value-carrying context
// without a tracer allocates exactly as much as one under
// context.Background().
func TestDisabledTracerAddsZeroAllocs(t *testing.T) {
	e, f := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(37, 0))
	q := f.randomQuery(rng, 2, 3, 0.5, 5)

	type ctxKey struct{}
	plain := context.Background()
	valued := context.WithValue(context.Background(), ctxKey{}, "payload")

	measure := func(ctx context.Context) float64 {
		return testing.AllocsPerRun(10, func() {
			if _, _, err := e.SearchCtx(ctx, q); err != nil {
				t.Fatalf("SearchCtx: %v", err)
			}
		})
	}
	base := measure(plain)
	got := measure(valued)
	if got > base {
		t.Errorf("disabled tracer lookup allocates: %v allocs/op with a value ctx, %v with Background", got, base)
	}
}

func BenchmarkSearchCtxTracer(b *testing.B) {
	f := testFixture(b)
	e, err := NewEngine(f.db, Options{})
	if err != nil {
		b.Fatalf("NewEngine: %v", err)
	}
	rng := rand.New(rand.NewPCG(38, 0))
	q := f.randomQuery(rng, 2, 3, 0.5, 5)

	b.Run("disabled", func(b *testing.B) {
		ctx := context.Background()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := e.SearchCtx(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := obs.NewTraceRecorder(0)
			ctx := obs.ContextWithTracer(context.Background(), rec)
			if _, _, err := e.SearchCtx(ctx, q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
