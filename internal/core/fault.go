package core

import (
	"errors"
	"fmt"

	"uots/internal/trajdb"
)

// ErrStoreFault tags trajectory-store failures surfaced as query errors.
// TrajStore access paths return no errors, so implementations signal an
// unrecoverable mid-query failure by panicking with a *trajdb.StoreError
// (see that type's documentation); every public engine entry point
// recovers that panic and returns an error wrapping both ErrStoreFault and
// the StoreError instead of crashing the process. Test with
// errors.Is(err, core.ErrStoreFault), inspect with errors.As into
// *trajdb.StoreError.
var ErrStoreFault = errors.New("core: trajectory store failure")

// recoverStoreFault is the deferred guard at every public entry point: it
// converts a *trajdb.StoreError panic into an error on the named returns,
// discarding any partial result list (its scores may be incomplete), and
// re-panics on anything else. Stats keep whatever the search accumulated
// before the fault.
func recoverStoreFault(results *[]Result, err *error) {
	r := recover()
	if r == nil {
		return
	}
	se, ok := r.(*trajdb.StoreError)
	if !ok {
		//uots:allow storefault -- re-raising a foreign panic payload unchanged; only store faults are converted
		panic(r)
	}
	if results != nil {
		*results = nil
	}
	*err = fmt.Errorf("%w: %w", ErrStoreFault, se)
}
