package core

import (
	"context"
	"math"
	"sync"
	"testing"
)

func TestSharedBoundZeroValue(t *testing.T) {
	var b SharedBound
	if v, ok := b.Load(); ok || v != 0 {
		t.Fatalf("zero SharedBound loads (%g, %v), want no bound", v, ok)
	}
}

func TestSharedBoundRaiseIsMonotone(t *testing.T) {
	var b SharedBound
	b.Raise(0.4)
	if v, ok := b.Load(); !ok || v != 0.4 {
		t.Fatalf("Load after Raise(0.4) = (%g, %v)", v, ok)
	}
	// A lower publish never regresses the bound.
	b.Raise(0.2)
	if v, _ := b.Load(); v != 0.4 {
		t.Fatalf("Raise(0.2) regressed the bound to %g", v)
	}
	b.Raise(0.9)
	if v, _ := b.Load(); v != 0.9 {
		t.Fatalf("Raise(0.9) did not lift the bound (got %g)", v)
	}
}

func TestSharedBoundIgnoresUselessValues(t *testing.T) {
	var b SharedBound
	b.Raise(0)
	b.Raise(-1)
	b.Raise(math.NaN())
	if _, ok := b.Load(); ok {
		t.Fatal("non-positive/NaN Raise published a bound")
	}
	b.Raise(0.5)
	b.Raise(math.NaN())
	if v, _ := b.Load(); v != 0.5 {
		t.Fatalf("NaN Raise disturbed the bound (got %g)", v)
	}
}

func TestSharedBoundConcurrentRaisesKeepMax(t *testing.T) {
	var b SharedBound
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Every goroutine publishes a different interleaving; the
				// global max across all of them is (goroutines*perG-1)/N.
				b.Raise(float64(g*perG+i) / float64(goroutines*perG))
			}
		}(g)
	}
	wg.Wait()
	want := float64(goroutines*perG-1) / float64(goroutines*perG)
	if v, ok := b.Load(); !ok || v != want {
		t.Fatalf("after concurrent raises Load = (%g, %v), want %g", v, ok, want)
	}
}

func TestSharedBoundContextRoundTrip(t *testing.T) {
	if got := sharedBoundFrom(context.Background()); got != nil {
		t.Fatal("plain context carries a shared bound")
	}
	if got := sharedBoundFrom(nil); got != nil {
		t.Fatal("nil context should yield no bound")
	}
	var b SharedBound
	ctx := ContextWithSharedBound(context.Background(), &b)
	if got := sharedBoundFrom(ctx); got != &b {
		t.Fatal("context round-trip lost the bound")
	}
}
