package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"reflect"
	"testing"

	"uots/internal/index"
	"uots/internal/roadnet"
	"uots/internal/trajdb"
)

// testTrajBounds builds the precomputed interval index over the shared
// fixture once per process — construction runs K Dijkstras plus a full
// corpus scan and every test here wants the same value.
var (
	testBoundsVal *index.TrajBounds
	testBoundsLM  *roadnet.Landmarks
)

func testBounds(t *testing.T) (*index.TrajBounds, *roadnet.Landmarks) {
	t.Helper()
	f := testFixture(t)
	if testBoundsVal == nil {
		testBoundsLM = roadnet.NewLandmarks(f.g, 8, 0)
		testBoundsVal = index.NewTrajBounds(f.db, testBoundsLM)
	}
	return testBoundsVal, testBoundsLM
}

// pruneVariant pairs one entry point's plain and index-assisted runs so
// the oracle can diff them byte for byte.
type pruneVariant struct {
	name    string
	plain   func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error)
	indexed func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error)
}

func pruneVariants(tb *index.TrajBounds) []pruneVariant {
	same := func(run func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error)) pruneVariant {
		return pruneVariant{plain: run, indexed: run}
	}
	vs := []pruneVariant{
		same(func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.SearchCtx(ctx, q)
		}),
		same(func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.SearchThresholdCtx(ctx, q, 0.4)
		}),
		same(func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.ExhaustiveSearchCtx(ctx, q)
		}),
		same(func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
			return e.ExhaustiveThresholdCtx(ctx, q, 0.4)
		}),
		{
			// TextFirst takes the index per call rather than from the
			// engine, so the two sides differ only in TextFirstOptions.
			plain: func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
				return e.TextFirstSearchCtx(ctx, q, TextFirstOptions{})
			},
			indexed: func(e *Engine, ctx context.Context, q Query) ([]Result, SearchStats, error) {
				return e.TextFirstSearchCtx(ctx, q, TextFirstOptions{Index: tb})
			},
		},
	}
	names := []string{"Search", "SearchThreshold", "ExhaustiveSearch", "ExhaustiveThreshold", "TextFirst"}
	for i := range vs {
		vs[i].name = names[i]
	}
	return vs
}

// TestIndexPruningIsByteIdentical is the oracle the tentpole rests on:
// enabling Options.Index (or TextFirstOptions.Index) must change zero
// result bytes on every search variant — same IDs, same scores, same
// order, bit-for-bit — while actually pruning (a prune that never fires
// would make the test vacuous).
func TestIndexPruningIsByteIdentical(t *testing.T) {
	tb, _ := testBounds(t)
	plain, f := newTestEngine(t, Options{})
	pruned, _ := newTestEngine(t, Options{Index: tb})

	rng := rand.New(rand.NewPCG(523, 0))
	ctx := context.Background()
	prunes := 0
	for i := 0; i < 15; i++ {
		q := f.randomQuery(rng, 2+i%3, 2+i%4, 0.3+0.05*float64(i%9), 5+i%8)
		for _, v := range pruneVariants(tb) {
			want, _, err := v.plain(plain, ctx, q)
			if err != nil {
				t.Fatalf("query %d %s plain: %v", i, v.name, err)
			}
			got, stats, err := v.indexed(pruned, ctx, q)
			if err != nil {
				t.Fatalf("query %d %s indexed: %v", i, v.name, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d %s: indexed results diverge from plain\ngot  %+v\nwant %+v",
					i, v.name, got, want)
			}
			prunes += stats.LandmarkPrunes
		}
	}
	if prunes == 0 {
		t.Fatal("index-assisted runs never pruned anything; the oracle proved nothing")
	}
}

// TestIndexPruningMatchesLandmarkPruning: the interval index and the
// exact per-vertex ALT prune are interchangeable — both must agree with
// each other (both already agree with the unassisted engine above).
func TestIndexPruningMatchesLandmarkPruning(t *testing.T) {
	tb, lm := testBounds(t)
	viaLM, f := newTestEngine(t, Options{Landmarks: lm})
	viaIx, _ := newTestEngine(t, Options{Index: tb})
	rng := rand.New(rand.NewPCG(877, 0))
	for i := 0; i < 10; i++ {
		q := f.randomQuery(rng, 3, 3, 0.5, 10)
		want, _, err := viaLM.Search(q)
		if err != nil {
			t.Fatalf("query %d landmarks: %v", i, err)
		}
		got, _, err := viaIx.Search(q)
		if err != nil {
			t.Fatalf("query %d index: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: Options.Index and Options.Landmarks disagree\ngot  %+v\nwant %+v",
				i, got, want)
		}
	}
}

// TestIndexPruningUnderCancellation: the indexed engine observes a
// pre-cancelled context exactly like the plain one — context.Canceled,
// no partial results — and stays uncorrupted for the next query.
func TestIndexPruningUnderCancellation(t *testing.T) {
	tb, _ := testBounds(t)
	plain, f := newTestEngine(t, Options{})
	pruned, _ := newTestEngine(t, Options{Index: tb})
	rng := rand.New(rand.NewPCG(311, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 8)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	for _, v := range pruneVariants(tb) {
		res, _, err := v.indexed(pruned, cancelled, q)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", v.name, err)
		}
		if res != nil {
			t.Errorf("%s: %d results leaked out of a cancelled query", v.name, len(res))
		}
	}
	// The aborted runs must leave no state behind: a fresh context still
	// reproduces the plain engine byte for byte.
	for _, v := range pruneVariants(tb) {
		want, _, err := v.plain(plain, context.Background(), q)
		if err != nil {
			t.Fatalf("%s plain: %v", v.name, err)
		}
		got, _, err := v.indexed(pruned, context.Background(), q)
		if err != nil {
			t.Fatalf("%s indexed after cancel: %v", v.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: results diverged after a cancelled run\ngot  %+v\nwant %+v", v.name, got, want)
		}
	}
}

// TestIndexPruningUnderStoreFaults: with the index layered over a
// faulting store, every variant still surfaces mid-query store panics as
// ErrStoreFault; with a healthy wrapped store, results stay identical to
// the unwrapped plain engine (the index does not care what it prunes
// over).
func TestIndexPruningUnderStoreFaults(t *testing.T) {
	tb, _ := testBounds(t)
	f := testFixture(t)
	rng := rand.New(rand.NewPCG(641, 0))
	q := f.randomQuery(rng, 3, 4, 0.5, 8)

	faulty := NewFaultStore(f.db, FaultConfig{FailEveryTraj: 1, FailEveryKeywords: 1})
	e, err := NewEngine(faulty, Options{Index: tb})
	if err != nil {
		t.Fatalf("NewEngine over FaultStore: %v", err)
	}
	for _, v := range pruneVariants(tb) {
		if _, _, err := v.indexed(e, context.Background(), q); !errors.Is(err, ErrStoreFault) {
			t.Errorf("%s: err = %v, want ErrStoreFault", v.name, err)
		}
	}

	healthy := NewFaultStore(f.db, FaultConfig{})
	wrapped, err := NewEngine(healthy, Options{Index: tb})
	if err != nil {
		t.Fatalf("NewEngine over healthy FaultStore: %v", err)
	}
	plain, _ := newTestEngine(t, Options{})
	for _, v := range pruneVariants(tb) {
		want, _, err := v.plain(plain, context.Background(), q)
		if err != nil {
			t.Fatalf("%s plain: %v", v.name, err)
		}
		got, _, err := v.indexed(wrapped, context.Background(), q)
		if err != nil {
			t.Fatalf("%s wrapped: %v", v.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: wrapped-store results diverge from plain\ngot  %+v\nwant %+v", v.name, got, want)
		}
	}
}

// shortSource is an index.Source covering fewer trajectories than the
// fixture store — for exercising the coverage check.
type shortSource struct{ *trajdb.Store }

func (s shortSource) NumTrajectories() int { return s.Store.NumTrajectories() - 1 }

// TestIndexMismatchRejected: an index that does not cover the store is
// refused up front, both at engine construction and per TextFirst call —
// silently pruning with stale bounds would drop live trajectories.
func TestIndexMismatchRejected(t *testing.T) {
	_, lm := testBounds(t)
	f := testFixture(t)
	stale := index.NewTrajBounds(shortSource{f.db}, lm)
	if _, err := NewEngine(f.db, Options{Index: stale}); !errors.Is(err, ErrIndexMismatch) {
		t.Errorf("NewEngine: err = %v, want ErrIndexMismatch", err)
	}
	e, _ := newTestEngine(t, Options{})
	rng := rand.New(rand.NewPCG(17, 0))
	q := f.randomQuery(rng, 2, 3, 0.5, 5)
	if _, _, err := e.TextFirstSearch(q, TextFirstOptions{Index: stale}); !errors.Is(err, ErrIndexMismatch) {
		t.Errorf("TextFirstSearch: err = %v, want ErrIndexMismatch", err)
	}
}
