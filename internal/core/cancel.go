package core

import "context"

// Cancellation support. Every public entry point has a Ctx variant that
// polls the context at bounded intervals inside its hot loop and returns
// context.Canceled / context.DeadlineExceeded together with the stats of
// the work done so far. The paper's early-termination bounds cap the work
// of well-behaved queries; the context caps the work of everything else
// (disconnected clients, deadline-bearing servers, operator aborts).
//
// Polling cadence: checking a context costs a channel select, which is
// cheap but not free inside a loop that settles one Dijkstra vertex per
// iteration, so the loops consult the context once every cancelPollEvery
// units of work. A cancelled search therefore stops within one poll
// interval of the cancellation, never mid-invariant.

// cancelPollEvery is the bounded poll interval, in loop-specific work
// units (expansion steps, settled vertices, scored trajectories).
const cancelPollEvery = 64

// canceller wraps a context for cheap polling inside search loops. The
// zero value (and any context with a nil Done channel, e.g.
// context.Background) never reports cancellation and costs one nil check
// per poll.
type canceller struct {
	ctx  context.Context
	done <-chan struct{}
}

// newCanceller accepts nil for callers without a context.
//
//uots:allow ctxflow -- nil-ctx normalization: there is no caller context here by definition
func newCanceller(ctx context.Context) canceller {
	if ctx == nil {
		ctx = context.Background()
	}
	return canceller{ctx: ctx, done: ctx.Done()}
}

// check returns the context's error if it has been cancelled, nil
// otherwise. Callers apply their own modulo to bound the poll rate.
func (c canceller) check() error {
	if c.done == nil {
		return nil
	}
	select {
	case <-c.done:
		return c.ctx.Err()
	default:
		return nil
	}
}
